/**
 * @file
 * clare_server: one networked Clause Retrieval Server over a persisted
 * store.
 *
 * Prints "listening on PORT" once the socket is bound (an ephemeral
 * port when --port is omitted), then serves until SIGINT/SIGTERM.
 *
 * Usage:
 *   clare_server --store DIR [--port N] [--workers N] [--cache]
 *       [--wal FILE [--ingest FILE] [--ingest-delay-us N]]    (live)
 *       [--fault-seed N --fault-flip R --fault-transient R]   (disk)
 *       [--wire-seed N --wire-drop R --wire-truncate R
 *        --wire-corrupt R --wire-delay R]                     (wire)
 *
 * The disk knobs arm CrsConfig::faults (index/data corruption, the
 * degraded-scan path); the wire knobs arm NetServerConfig::wireFaults
 * (outbound frame drop/truncate/bit-flip/delay).  Both are the
 * deterministic seeded injector, so a cluster with one poisoned
 * backend is a reproducible experiment, not a flaky one.
 *
 * --wal attaches a crs::LiveStore: the store opens CURRENT-aware
 * (crs::openStore), committed WAL records past the manifest watermark
 * replay before serving starts, and a recovery banner reports what was
 * replayed.  --ingest streams clause lines from a file through the
 * live commit path on a background thread (one commit per clause) —
 * the crash-recovery smoke test kills the process mid-stream and
 * checks the reopened store serves exactly the committed prefix.
 *
 * SIGINT/SIGTERM shut down gracefully: stop accepting, drain in-flight
 * connections, finish the current ingest commit, and flush the WAL —
 * so an orchestrator's plain TERM never loses a committed update.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "crs/live_update.hh"
#include "crs/server.hh"
#include "crs/store_io.hh"
#include "net/server.hh"
#include "term/term_reader.hh"

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

const char *
value(const char *arg, const char *name)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace clare;

    std::string storeDir;
    std::string walPath;
    std::string ingestPath;
    unsigned long ingestDelayUs = 0;
    net::NetServerConfig netConfig;
    crs::CrsConfig crsConfig;
    bool cache = false;
    support::FaultConfig diskFaults;
    bool haveDiskFaults = false;
    support::FaultConfig wireFaults;
    bool haveWireFaults = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--store") == 0 && i + 1 < argc)
            storeDir = argv[++i];
        else if (const char *v = value(arg, "--store"))
            storeDir = v;
        else if (const char *v = value(arg, "--port"))
            netConfig.port =
                static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
        else if (const char *v = value(arg, "--workers"))
            crsConfig.workers = std::strtoul(v, nullptr, 10);
        else if (std::strcmp(arg, "--wal") == 0 && i + 1 < argc)
            walPath = argv[++i];
        else if (const char *v = value(arg, "--wal"))
            walPath = v;
        else if (std::strcmp(arg, "--ingest") == 0 && i + 1 < argc)
            ingestPath = argv[++i];
        else if (const char *v = value(arg, "--ingest"))
            ingestPath = v;
        else if (const char *v = value(arg, "--ingest-delay-us"))
            ingestDelayUs = std::strtoul(v, nullptr, 10);
        else if (std::strcmp(arg, "--cache") == 0)
            cache = true;
        else if (const char *v = value(arg, "--fault-seed")) {
            diskFaults.seed = std::strtoull(v, nullptr, 10);
            haveDiskFaults = true;
        } else if (const char *v = value(arg, "--fault-flip"))
            diskFaults.bitFlipRate = std::strtod(v, nullptr);
        else if (const char *v = value(arg, "--fault-transient"))
            diskFaults.transientReadRate = std::strtod(v, nullptr);
        else if (const char *v = value(arg, "--wire-seed")) {
            wireFaults.seed = std::strtoull(v, nullptr, 10);
            haveWireFaults = true;
        } else if (const char *v = value(arg, "--wire-drop"))
            wireFaults.frameDropRate = std::strtod(v, nullptr);
        else if (const char *v = value(arg, "--wire-truncate"))
            wireFaults.frameTruncateRate = std::strtod(v, nullptr);
        else if (const char *v = value(arg, "--wire-corrupt"))
            wireFaults.frameCorruptRate = std::strtod(v, nullptr);
        else if (const char *v = value(arg, "--wire-delay"))
            wireFaults.frameDelayRate = std::strtod(v, nullptr);
        else {
            std::fprintf(stderr, "unknown argument: %s\n", arg);
            return 2;
        }
    }
    if (storeDir.empty()) {
        std::fprintf(stderr,
                     "usage: clare_server --store DIR [--port N] "
                     "[--workers N] [--cache] [--wal FILE "
                     "[--ingest FILE] [--ingest-delay-us N]] "
                     "[fault knobs]\n");
        return 2;
    }

    try {
        term::SymbolTable symbols;
        crs::StoreWalInfo walInfo;
        crs::PredicateStore store =
            crs::openStore(storeDir, symbols, &walInfo);

        support::FaultInjector diskInjector(diskFaults);
        if (haveDiskFaults)
            crsConfig.faults = &diskInjector;
        crsConfig.cache.enabled = cache;

        crs::ClauseRetrievalServer server(symbols, store, crsConfig);

        std::unique_ptr<crs::LiveStore> live;
        if (!walPath.empty()) {
            live = std::make_unique<crs::LiveStore>(
                store, symbols, walPath, walInfo.appliedLsn);
            live->attachSink(&server);
            std::printf("wal recovered %zu commits (%llu tail bytes "
                        "discarded), head generation %llu\n",
                        live->recoveredCommits(),
                        static_cast<unsigned long long>(
                            live->wal().truncatedBytes()),
                        static_cast<unsigned long long>(
                            store.headGeneration()));
        }

        support::FaultInjector wireInjector(wireFaults);
        if (haveWireFaults)
            netConfig.wireFaults = &wireInjector;

        net::NetServer netServer(symbols, store, server, netConfig);
        netServer.start();
        std::printf("listening on %u\n",
                    static_cast<unsigned>(netServer.port()));
        std::fflush(stdout);

        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);

        // Background ingest: stream clause lines through the live
        // commit path, one durable commit each.  Progress lines let
        // the crash smoke correlate a kill point with the number of
        // commits the recovered store must serve.
        std::thread ingest;
        if (!ingestPath.empty() && live != nullptr) {
            ingest = std::thread([&] {
                try {
                    std::ifstream in(ingestPath);
                    term::TermReader reader(symbols);
                    std::string line;
                    std::size_t n = 0;
                    while (!g_stop.load() && std::getline(in, line)) {
                        if (line.empty())
                            continue;
                        live->assertz(reader.parseClause(line));
                        std::printf("ingested %zu\n", ++n);
                        std::fflush(stdout);
                        if (ingestDelayUs != 0)
                            std::this_thread::sleep_for(
                                std::chrono::microseconds(
                                    ingestDelayUs));
                    }
                    std::printf("ingest done\n");
                    std::fflush(stdout);
                } catch (const Error &e) {
                    std::fprintf(stderr, "ingest: %s\n", e.what());
                }
            });
        }

        while (!g_stop.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));

        // Graceful shutdown: drain connections, let the in-flight
        // ingest commit finish, flush the WAL.  Every update a client
        // saw acknowledged is durable when the process exits.
        if (ingest.joinable())
            ingest.join();
        netServer.stop();
        if (live != nullptr)
            live->wal().sync();
        std::printf("shutdown complete\n");
        std::fflush(stdout);
    } catch (const Error &e) {
        std::fprintf(stderr, "clare_server: %s\n", e.what());
        return 1;
    }
    return 0;
}
