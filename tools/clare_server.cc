/**
 * @file
 * clare_server: one networked Clause Retrieval Server over a persisted
 * store.
 *
 * Prints "listening on PORT" once the socket is bound (an ephemeral
 * port when --port is omitted), then serves until SIGINT/SIGTERM.
 *
 * Usage:
 *   clare_server --store DIR [--port N] [--workers N] [--cache]
 *       [--fault-seed N --fault-flip R --fault-transient R]   (disk)
 *       [--wire-seed N --wire-drop R --wire-truncate R
 *        --wire-corrupt R --wire-delay R]                     (wire)
 *
 * The disk knobs arm CrsConfig::faults (index/data corruption, the
 * degraded-scan path); the wire knobs arm NetServerConfig::wireFaults
 * (outbound frame drop/truncate/bit-flip/delay).  Both are the
 * deterministic seeded injector, so a cluster with one poisoned
 * backend is a reproducible experiment, not a flaky one.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "crs/server.hh"
#include "crs/store_io.hh"
#include "net/server.hh"

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

const char *
value(const char *arg, const char *name)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace clare;

    std::string storeDir;
    net::NetServerConfig netConfig;
    crs::CrsConfig crsConfig;
    bool cache = false;
    support::FaultConfig diskFaults;
    bool haveDiskFaults = false;
    support::FaultConfig wireFaults;
    bool haveWireFaults = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--store") == 0 && i + 1 < argc)
            storeDir = argv[++i];
        else if (const char *v = value(arg, "--store"))
            storeDir = v;
        else if (const char *v = value(arg, "--port"))
            netConfig.port =
                static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
        else if (const char *v = value(arg, "--workers"))
            crsConfig.workers = std::strtoul(v, nullptr, 10);
        else if (std::strcmp(arg, "--cache") == 0)
            cache = true;
        else if (const char *v = value(arg, "--fault-seed")) {
            diskFaults.seed = std::strtoull(v, nullptr, 10);
            haveDiskFaults = true;
        } else if (const char *v = value(arg, "--fault-flip"))
            diskFaults.bitFlipRate = std::strtod(v, nullptr);
        else if (const char *v = value(arg, "--fault-transient"))
            diskFaults.transientReadRate = std::strtod(v, nullptr);
        else if (const char *v = value(arg, "--wire-seed")) {
            wireFaults.seed = std::strtoull(v, nullptr, 10);
            haveWireFaults = true;
        } else if (const char *v = value(arg, "--wire-drop"))
            wireFaults.frameDropRate = std::strtod(v, nullptr);
        else if (const char *v = value(arg, "--wire-truncate"))
            wireFaults.frameTruncateRate = std::strtod(v, nullptr);
        else if (const char *v = value(arg, "--wire-corrupt"))
            wireFaults.frameCorruptRate = std::strtod(v, nullptr);
        else if (const char *v = value(arg, "--wire-delay"))
            wireFaults.frameDelayRate = std::strtod(v, nullptr);
        else {
            std::fprintf(stderr, "unknown argument: %s\n", arg);
            return 2;
        }
    }
    if (storeDir.empty()) {
        std::fprintf(stderr,
                     "usage: clare_server --store DIR [--port N] "
                     "[--workers N] [--cache] [fault knobs]\n");
        return 2;
    }

    try {
        term::SymbolTable symbols;
        crs::PredicateStore store = crs::loadStore(storeDir, symbols);

        support::FaultInjector diskInjector(diskFaults);
        if (haveDiskFaults)
            crsConfig.faults = &diskInjector;
        crsConfig.cache.enabled = cache;

        crs::ClauseRetrievalServer server(symbols, store, crsConfig);

        support::FaultInjector wireInjector(wireFaults);
        if (haveWireFaults)
            netConfig.wireFaults = &wireInjector;

        net::NetServer netServer(symbols, store, server, netConfig);
        netServer.start();
        std::printf("listening on %u\n",
                    static_cast<unsigned>(netServer.port()));
        std::fflush(stdout);

        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        while (!g_stop.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        netServer.stop();
    } catch (const Error &e) {
        std::fprintf(stderr, "clare_server: %s\n", e.what());
        return 1;
    }
    return 0;
}
