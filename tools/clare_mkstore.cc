/**
 * @file
 * clare_mkstore: build a persisted store (plus a query file) for the
 * networked serving tools.
 *
 * The persisted symbol table is the shared schema of the wire
 * protocol, so queries are generated *before* the store is saved:
 * every symbol a query mentions is interned into the table the store
 * persists, and clare_server / clare_client that open the same
 * directory agree on every id.
 *
 * With --shard N the same knowledge base is additionally split into N
 * per-predicate store slices (round-robin assignment over the
 * generated predicate order) under --out-dir, next to a shard catalog
 * that maps every predicate to its owning shard and every shard to R
 * replica backends (backend index = shard * R + replica, matching a
 * clare_router --backend list where each shard's replicas are listed
 * consecutively):
 *
 *   DIR/full/       the unsharded store (reference for bit-identity)
 *   DIR/slice-<s>/  shard s's slice: full symbol table, its
 *                   predicates only
 *   DIR/catalog.json
 *
 * Usage:
 *   clare_mkstore --out DIR [--queries FILE] [--predicates N]
 *                 [--clauses N] [--num-queries N] [--seed N]
 *   clare_mkstore --out-dir DIR --shard N [--replication R] [...]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "crs/store.hh"
#include "crs/store_io.hh"
#include "net/catalog.hh"
#include "term/term_writer.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace {

const char *
value(const char *arg, const char *name)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace clare;

    std::string out;
    std::string outDir;
    std::string queriesPath;
    std::uint32_t predicates = 8;
    std::uint32_t clauses = 200;
    std::uint32_t numQueries = 64;
    std::uint64_t seed = 1;
    std::uint32_t shards = 0;
    std::uint32_t replication = 1;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--out") == 0 && i + 1 < argc)
            out = argv[++i];
        else if (const char *v = value(arg, "--out"))
            out = v;
        else if (std::strcmp(arg, "--out-dir") == 0 && i + 1 < argc)
            outDir = argv[++i];
        else if (const char *v = value(arg, "--out-dir"))
            outDir = v;
        else if (std::strcmp(arg, "--queries") == 0 && i + 1 < argc)
            queriesPath = argv[++i];
        else if (const char *v = value(arg, "--queries"))
            queriesPath = v;
        else if (const char *v = value(arg, "--predicates"))
            predicates = std::strtoul(v, nullptr, 10);
        else if (const char *v = value(arg, "--clauses"))
            clauses = std::strtoul(v, nullptr, 10);
        else if (const char *v = value(arg, "--num-queries"))
            numQueries = std::strtoul(v, nullptr, 10);
        else if (const char *v = value(arg, "--seed"))
            seed = std::strtoull(v, nullptr, 10);
        else if (const char *v = value(arg, "--shard"))
            shards = std::strtoul(v, nullptr, 10);
        else if (const char *v = value(arg, "--replication"))
            replication = std::strtoul(v, nullptr, 10);
        else {
            std::fprintf(stderr, "unknown argument: %s\n", arg);
            return 2;
        }
    }
    if (shards > 0 && outDir.empty()) {
        std::fprintf(stderr,
                     "clare_mkstore: --shard needs --out-dir DIR\n");
        return 2;
    }
    if (shards > 0 && replication == 0) {
        std::fprintf(stderr,
                     "clare_mkstore: --replication must be >= 1\n");
        return 2;
    }
    if (!outDir.empty() && shards > 0 && out.empty())
        out = outDir + "/full";
    if (out.empty()) {
        std::fprintf(stderr,
                     "usage: clare_mkstore --out DIR [--queries FILE] "
                     "[--predicates N] [--clauses N] [--num-queries N] "
                     "[--seed N]\n"
                     "       clare_mkstore --out-dir DIR --shard N "
                     "[--replication R] [...]\n");
        return 2;
    }

    term::SymbolTable symbols;
    workload::KbGenerator generator(symbols);
    workload::KbSpec spec;
    spec.predicates = predicates;
    spec.clausesPerPredicate = clauses;
    spec.seed = seed;
    term::Program program = generator.generate(spec);

    // Queries first (see the file comment): their symbols must be in
    // the table before saveStore persists it.
    std::vector<std::string> queryLines;
    if (!queriesPath.empty()) {
        workload::QuerySpec querySpec;
        querySpec.seed = seed + 1;
        workload::QueryGenerator queries(symbols, querySpec);
        term::TermWriter writer(symbols);
        const std::vector<term::PredicateId> &preds =
            program.predicates();
        for (std::uint32_t i = 0; i < numQueries; ++i) {
            workload::GeneratedQuery q = queries.generate(
                program, preds[i % preds.size()]);
            queryLines.push_back(writer.write(q.arena, q.goal));
        }
    }

    crs::PredicateStore store(symbols,
                              scw::CodewordGenerator(scw::ScwConfig{}));
    store.addProgram(program);
    store.finalize();
    crs::saveStore(out, store, symbols);

    if (shards > 0) {
        // Round-robin predicates over the shards in generated order,
        // then persist one self-contained slice per shard.  Every
        // slice carries the full symbol table, so the catalog's
        // backends and the clients all share the protocol schema.
        const std::vector<term::PredicateId> &preds =
            program.predicates();
        net::ShardCatalog catalog;
        std::vector<std::vector<term::PredicateId>> slicePreds(shards);
        for (std::size_t i = 0; i < preds.size(); ++i) {
            std::uint32_t shard =
                static_cast<std::uint32_t>(i % shards);
            catalog.assign(preds[i], shard);
            slicePreds[shard].push_back(preds[i]);
        }
        for (std::uint32_t s = 0; s < shards; ++s) {
            std::vector<std::uint32_t> replicas;
            for (std::uint32_t r = 0; r < replication; ++r)
                replicas.push_back(s * replication + r);
            catalog.setReplicas(s, replicas);
            crs::saveStoreSlice(outDir + "/slice-" + std::to_string(s),
                                store, symbols, slicePreds[s]);
        }
        catalog.save(outDir + "/catalog.json");
        std::printf("catalog: %s/catalog.json (%u shards x %u "
                    "replicas)\n",
                    outDir.c_str(), shards, replication);
    }

    if (!queriesPath.empty()) {
        std::ofstream file(queriesPath);
        if (!file) {
            std::fprintf(stderr, "cannot write %s\n",
                         queriesPath.c_str());
            return 1;
        }
        for (const std::string &line : queryLines)
            file << line << "\n";
    }

    std::printf("store: %s (%u predicates, %u clauses each)\n",
                out.c_str(), predicates, clauses);
    if (!queriesPath.empty())
        std::printf("queries: %s (%zu goals)\n", queriesPath.c_str(),
                    queryLines.size());
    return 0;
}
