/**
 * @file
 * clare_client: smoke client for a clare_server / clare_router
 * endpoint.
 *
 * Opens the same persisted store as the servers (the symbol table is
 * the shared wire schema), parses a query file (one goal per line),
 * serves each over the wire, and — with --verify-local — also serves
 * each through an in-process ClauseRetrievalServer on the same store
 * and requires the two responses to be field-for-field identical,
 * modeled StageBreakdown ticks included.  This is the cluster
 * exactness check scripts/tier1.sh runs against a live 3-backend
 * router.
 *
 * Exit status: 0 when every query succeeded (and matched, under
 * --verify-local); 1 otherwise.
 *
 * With --batch N the queries travel as BatchRequest frames of up to N
 * items each (NetClient::serveBatch); --verify-local then compares
 * against the local batch front door (serveBatch on the same store),
 * which is the scatter/gather exactness check for a sharded router.
 *
 * Usage:
 *   clare_client --store DIR --port N --queries FILE
 *                [--verify-local] [--mode auto|software|fs1|fs2|two]
 *                [--batch N]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "crs/server.hh"
#include "crs/store_io.hh"
#include "net/client.hh"
#include "term/term_reader.hh"

namespace {

const char *
value(const char *arg, const char *name)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace clare;

    std::string storeDir;
    std::string queriesPath;
    std::uint16_t port = 0;
    bool verifyLocal = false;
    std::uint32_t batchSize = 0;
    std::optional<crs::SearchMode> mode;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--store") == 0 && i + 1 < argc)
            storeDir = argv[++i];
        else if (const char *v = value(arg, "--store"))
            storeDir = v;
        else if (std::strcmp(arg, "--queries") == 0 && i + 1 < argc)
            queriesPath = argv[++i];
        else if (const char *v = value(arg, "--queries"))
            queriesPath = v;
        else if (const char *v = value(arg, "--port"))
            port =
                static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
        else if (std::strcmp(arg, "--verify-local") == 0)
            verifyLocal = true;
        else if (const char *v = value(arg, "--batch"))
            batchSize = std::strtoul(v, nullptr, 10);
        else if (const char *v = value(arg, "--mode")) {
            if (std::strcmp(v, "auto") == 0)
                mode.reset();
            else if (std::strcmp(v, "software") == 0)
                mode = crs::SearchMode::SoftwareOnly;
            else if (std::strcmp(v, "fs1") == 0)
                mode = crs::SearchMode::Fs1Only;
            else if (std::strcmp(v, "fs2") == 0)
                mode = crs::SearchMode::Fs2Only;
            else if (std::strcmp(v, "two") == 0)
                mode = crs::SearchMode::TwoStage;
            else {
                std::fprintf(stderr, "unknown mode: %s\n", v);
                return 2;
            }
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg);
            return 2;
        }
    }
    if (storeDir.empty() || queriesPath.empty() || port == 0) {
        std::fprintf(stderr,
                     "usage: clare_client --store DIR --port N "
                     "--queries FILE [--verify-local] [--mode M] "
                     "[--batch N]\n");
        return 2;
    }

    try {
        term::SymbolTable symbols;
        crs::PredicateStore store = crs::loadStore(storeDir, symbols);
        std::unique_ptr<crs::ClauseRetrievalServer> local;
        if (verifyLocal)
            local = std::make_unique<crs::ClauseRetrievalServer>(
                symbols, store);

        std::ifstream file(queriesPath);
        if (!file) {
            std::fprintf(stderr, "cannot read %s\n",
                         queriesPath.c_str());
            return 1;
        }

        net::NetClient client(port, "server:" + std::to_string(port));
        term::TermReader reader(symbols);

        // Parse everything up front: batch items share the wire frame,
        // so their goal arenas must all be alive at send time.
        std::deque<term::ParsedTerm> parsedTerms;
        std::vector<crs::RetrievalRequest> requests;
        std::string line;
        while (std::getline(file, line)) {
            if (line.empty())
                continue;
            parsedTerms.push_back(reader.parseTerm(line));
            crs::RetrievalRequest request;
            request.arena = &parsedTerms.back().arena;
            request.goal = parsedTerms.back().root;
            request.mode = mode;
            requests.push_back(request);
        }

        std::uint64_t queries = 0, answers = 0, degraded = 0,
                      mismatches = 0, failures = 0;
        auto tally = [&](const crs::RetrievalResponse &remote,
                         const crs::RetrievalRequest &request,
                         bool viaBatch) {
            answers += remote.answers.size();
            degraded += remote.degraded ? 1 : 0;
            if (!local)
                return;
            // Verify against the matching local front door: batch
            // items against serveBatch (same modeled queue), single
            // requests against serve().
            crs::RetrievalResponse expect;
            if (viaBatch)
                expect = std::move(local->serveBatch({request})[0]);
            else
                expect = local->serve(request);
            if (!net::responsesIdentical(remote, expect)) {
                std::fprintf(
                    stderr,
                    "query %llu: wire response differs from "
                    "local serve() (%zu vs %zu answers, %llu vs "
                    "%llu elapsed ticks)\n",
                    static_cast<unsigned long long>(queries),
                    remote.answers.size(), expect.answers.size(),
                    static_cast<unsigned long long>(remote.elapsed),
                    static_cast<unsigned long long>(expect.elapsed));
                ++mismatches;
            }
        };

        if (batchSize > 1) {
            for (std::size_t at = 0; at < requests.size();
                 at += batchSize) {
                std::size_t end =
                    std::min(requests.size(),
                             at + static_cast<std::size_t>(batchSize));
                std::vector<crs::RetrievalRequest> chunk(
                    requests.begin() + static_cast<std::ptrdiff_t>(at),
                    requests.begin() + static_cast<std::ptrdiff_t>(end));
                std::vector<crs::RetrievalResponse> remote;
                try {
                    remote = client.serveBatch(chunk);
                } catch (const Error &e) {
                    std::fprintf(
                        stderr, "batch at query %zu failed: %s\n",
                        at + 1, e.what());
                    failures += chunk.size();
                    queries += chunk.size();
                    continue;
                }
                for (std::size_t i = 0; i < chunk.size(); ++i) {
                    ++queries;
                    tally(remote[i], chunk[i], true);
                }
            }
        } else {
            for (const crs::RetrievalRequest &request : requests) {
                ++queries;
                crs::RetrievalResponse remote;
                try {
                    remote = client.serve(request);
                } catch (const Error &e) {
                    std::fprintf(
                        stderr, "query %llu failed: %s\n",
                        static_cast<unsigned long long>(queries),
                        e.what());
                    ++failures;
                    continue;
                }
                tally(remote, request, false);
            }
        }

        std::printf("%llu queries, %llu answers, %llu degraded, "
                    "%llu failures",
                    static_cast<unsigned long long>(queries),
                    static_cast<unsigned long long>(answers),
                    static_cast<unsigned long long>(degraded),
                    static_cast<unsigned long long>(failures));
        if (local)
            std::printf(", %llu mismatches vs local serve()",
                        static_cast<unsigned long long>(mismatches));
        std::printf("\n");
        return (failures == 0 && mismatches == 0) ? 0 : 1;
    } catch (const Error &e) {
        std::fprintf(stderr, "clare_client: %s\n", e.what());
        return 1;
    }
}
