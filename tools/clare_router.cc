/**
 * @file
 * clare_router: the predicate-sharded front of a clare_server cluster.
 *
 * Prints "listening on PORT" once bound, then relays until
 * SIGINT/SIGTERM.
 *
 * Usage:
 *   clare_router --backend PORT [--backend PORT ...]
 *                [--port N] [--replication R] [--probe-ms N]
 *                [--catalog FILE]
 *
 * With --catalog the router routes by the shard catalog (predicate →
 * shard → replica backend indexes into the --backend list) instead of
 * hashing the predicate over all backends.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "net/router.hh"

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

const char *
value(const char *arg, const char *name)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace clare;

    net::RouterConfig config;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--backend") == 0 && i + 1 < argc)
            config.backendPorts.push_back(static_cast<std::uint16_t>(
                std::strtoul(argv[++i], nullptr, 10)));
        else if (const char *v = value(arg, "--backend"))
            config.backendPorts.push_back(static_cast<std::uint16_t>(
                std::strtoul(v, nullptr, 10)));
        else if (const char *v = value(arg, "--port"))
            config.port =
                static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
        else if (const char *v = value(arg, "--replication"))
            config.replication = std::strtoul(v, nullptr, 10);
        else if (const char *v = value(arg, "--probe-ms"))
            config.probeIntervalMillis = std::atoi(v);
        else if (std::strcmp(arg, "--catalog") == 0 && i + 1 < argc)
            config.catalogPath = argv[++i];
        else if (const char *v = value(arg, "--catalog"))
            config.catalogPath = v;
        else {
            std::fprintf(stderr, "unknown argument: %s\n", arg);
            return 2;
        }
    }
    if (config.backendPorts.empty()) {
        std::fprintf(stderr,
                     "usage: clare_router --backend PORT [--backend "
                     "PORT ...] [--port N] [--replication R] "
                     "[--catalog FILE]\n");
        return 2;
    }

    try {
        net::Router router(std::move(config));
        router.start();
        std::printf("listening on %u\n",
                    static_cast<unsigned>(router.port()));
        std::fflush(stdout);

        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        while (!g_stop.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        router.stop();
    } catch (const Error &e) {
        std::fprintf(stderr, "clare_router: %s\n", e.what());
        return 1;
    }
    return 0;
}
