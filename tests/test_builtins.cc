/**
 * @file
 * Tests for the operator-precedence parser extensions and the solver
 * built-ins: arithmetic (is/2, comparisons), cut, negation as
 * failure, term inspection and structural equality.
 */

#include <gtest/gtest.h>

#include "kb/arith.hh"
#include "kb/knowledge_base.hh"
#include "kb/resolution.hh"
#include "support/logging.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"

namespace clare::kb {
namespace {

// ---------------------------------------------------------------------
// Operator parsing.
// ---------------------------------------------------------------------

class OperatorParse : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    term::TermWriter writer{sym};

    std::string
    canonical(const std::string &text)
    {
        term::ParsedTerm t = reader.parseTerm(text);
        return writer.write(t.arena, t.root);
    }
};

TEST_F(OperatorParse, ArithmeticPrecedence)
{
    // The writer renders operators infix, preserving the parse.
    EXPECT_EQ(canonical("1 + 2 * 3"), "1+2*3");
    EXPECT_EQ(canonical("(1 + 2) * 3"), "(1+2)*3");
}

TEST_F(OperatorParse, LeftAssociativity)
{
    EXPECT_EQ(canonical("1 - 2 - 3"), "1-2-3");
    EXPECT_EQ(canonical("8 / 4 / 2"), "8/4/2");
    EXPECT_EQ(canonical("1 - (2 - 3)"), "1-(2-3)");
}

TEST_F(OperatorParse, IsAndComparisons)
{
    EXPECT_EQ(canonical("X is Y + 1"), "X is Y+1");
    EXPECT_EQ(canonical("X < Y"), "X<Y");
    EXPECT_EQ(canonical("X =< Y + Z"), "X=<Y+Z");
    EXPECT_EQ(canonical("A =:= B mod 2"), "A=:=B mod 2");
}

TEST_F(OperatorParse, XfxDoesNotChain)
{
    // "X = Y = Z" is a syntax error in standard Prolog (700 xfx).
    EXPECT_THROW(reader.parseTerm("X = Y = Z"), FatalError);
}

TEST_F(OperatorParse, MinusAfterTermIsInfix)
{
    EXPECT_EQ(canonical("X - 1"), "X-1");
    EXPECT_EQ(canonical("X-1"), "X-1");
    EXPECT_EQ(canonical("3-1"), "3-1");
    // Where a term is expected, '-3' is a literal; as an operand it
    // is parenthesized so the text reads back.
    EXPECT_EQ(canonical("f(-3)"), "f(-3)");
    EXPECT_EQ(canonical("1 + -3"), "1+(-3)");
}

TEST_F(OperatorParse, OperatorsNotInArgumentContext)
{
    // Inside argument lists operators still parse (precedence 999).
    EXPECT_EQ(canonical("f(1 + 2, X is 3)"), "f(1+2,X is 3)");
    EXPECT_EQ(canonical("[1 + 2, 3 * 4]"), "[1+2,3*4]");
}

TEST_F(OperatorParse, OperatorAtomsStillPlainAtoms)
{
    EXPECT_EQ(canonical("f(is, mod)"), "f(is,mod)");
    EXPECT_EQ(canonical("mod"), "mod");
}

TEST_F(OperatorParse, CutAndSemicolonAtoms)
{
    EXPECT_EQ(canonical("!"), "!");
    term::ParsedQuery q = reader.parseQuery("p(X), !, q(X).");
    EXPECT_EQ(q.goals.size(), 3u);
}

// ---------------------------------------------------------------------
// Arithmetic evaluation.
// ---------------------------------------------------------------------

class ArithTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    unify::Bindings bindings;

    Number
    eval(const std::string &text)
    {
        term::ParsedTerm t = reader.parseTerm(text);
        return evalArith(sym, t.arena, t.root, bindings);
    }
};

TEST_F(ArithTest, IntegerOps)
{
    EXPECT_EQ(eval("1 + 2 * 3").intValue, 7);
    EXPECT_EQ(eval("10 - 4 - 3").intValue, 3);
    EXPECT_EQ(eval("7 / 2").intValue, 3);
    EXPECT_EQ(eval("7 mod 3").intValue, 1);
    EXPECT_EQ(eval("(0 - 7) mod 3").intValue, 2);   // flooring mod
    EXPECT_EQ(eval("abs(0 - 5)").intValue, 5);
    EXPECT_EQ(eval("min(3, 9)").intValue, 3);
    EXPECT_EQ(eval("max(3, 9)").intValue, 9);
}

TEST_F(ArithTest, FloatPromotion)
{
    Number n = eval("1 + 2.5");
    EXPECT_TRUE(n.isFloat);
    EXPECT_DOUBLE_EQ(n.floatValue, 3.5);
    EXPECT_DOUBLE_EQ(eval("7.0 / 2").floatValue, 3.5);
}

TEST_F(ArithTest, Errors)
{
    EXPECT_THROW(eval("1 / 0"), FatalError);
    EXPECT_THROW(eval("1 mod 0"), FatalError);
    EXPECT_THROW(eval("X + 1"), FatalError);        // instantiation
    EXPECT_THROW(eval("foo + 1"), FatalError);      // type
    EXPECT_THROW(eval("1.5 mod 2"), FatalError);
}

TEST_F(ArithTest, Comparisons)
{
    EXPECT_LT(compareNumbers(Number::ofInt(1), Number::ofInt(2)), 0);
    EXPECT_EQ(compareNumbers(Number::ofInt(2), Number::ofFloat(2.0)), 0);
    EXPECT_GT(compareNumbers(Number::ofFloat(2.5), Number::ofInt(2)), 0);
}

// ---------------------------------------------------------------------
// Solver built-ins.
// ---------------------------------------------------------------------

class BuiltinSolver : public ::testing::Test
{
  protected:
    std::unique_ptr<KnowledgeBase> kb;
    std::unique_ptr<Solver> solver;

    void
    load(const std::string &text)
    {
        kb = std::make_unique<KnowledgeBase>();
        kb->consult(text);
        solver = std::make_unique<Solver>(*kb);
    }

    std::vector<std::string>
    values(const std::string &query, const std::string &var)
    {
        std::vector<std::string> out;
        for (const auto &s : solver->solve(query))
            out.push_back(s.bindings.at(var));
        return out;
    }
};

TEST_F(BuiltinSolver, IsEvaluates)
{
    load("double(X, Y) :- Y is X * 2.\n");
    EXPECT_EQ(values("double(21, D)", "D"),
              (std::vector<std::string>{"42"}));
    EXPECT_EQ(values("X is 1 + 2.5", "X"),
              (std::vector<std::string>{"3.5"}));
}

TEST_F(BuiltinSolver, IsChecksWhenBound)
{
    load("p(a).\n");
    EXPECT_EQ(solver->solve("4 is 2 + 2").size(), 1u);
    EXPECT_TRUE(solver->solve("5 is 2 + 2").empty());
}

TEST_F(BuiltinSolver, ComparisonsFilter)
{
    load("n(1).\nn(5).\nn(9).\n");
    EXPECT_EQ(values("n(X), X > 3", "X"),
              (std::vector<std::string>{"5", "9"}));
    EXPECT_EQ(values("n(X), X =< 5", "X"),
              (std::vector<std::string>{"1", "5"}));
    EXPECT_EQ(values("n(X), X =:= 5", "X"),
              (std::vector<std::string>{"5"}));
}

TEST_F(BuiltinSolver, NotUnifiable)
{
    load("p(a).\np(b).\n");
    EXPECT_EQ(values("p(X), X \\= a", "X"),
              (std::vector<std::string>{"b"}));
}

TEST_F(BuiltinSolver, StructuralEquality)
{
    load("p(a).\n");
    EXPECT_EQ(solver->solve("f(X) == f(X)").size(), 1u);
    EXPECT_TRUE(solver->solve("f(X) == f(Y)").empty());
    EXPECT_EQ(solver->solve("f(X) \\== f(Y)").size(), 1u);
    // == does not bind.
    EXPECT_TRUE(solver->solve("X == a").empty());
}

TEST_F(BuiltinSolver, CutCommitsToFirstClause)
{
    load("max(X, Y, X) :- X >= Y, !.\n"
         "max(_, Y, Y).\n");
    EXPECT_EQ(values("max(7, 3, M)", "M"),
              (std::vector<std::string>{"7"}));
    EXPECT_EQ(values("max(2, 9, M)", "M"),
              (std::vector<std::string>{"9"}));
}

TEST_F(BuiltinSolver, CutPrunesSiblingAlternatives)
{
    load("q(1).\nq(2).\nq(3).\n"
         "first(X) :- q(X), !.\n");
    EXPECT_EQ(values("first(X)", "X"),
              (std::vector<std::string>{"1"}));
}

TEST_F(BuiltinSolver, CutIsLocalToTheClause)
{
    load("a(1).\na(2).\n"
         "b(X) :- a(X), !.\n"
         "c(X, Y) :- a(X), b(Y).\n");
    // The cut inside b/1 does not prune a/1's alternatives in c/2.
    EXPECT_EQ(values("c(X, Y)", "X"),
              (std::vector<std::string>{"1", "2"}));
}

TEST_F(BuiltinSolver, NegationAsFailure)
{
    load("p(a).\np(b).\nforbidden(a).\n"
         "allowed(X) :- p(X), \\+ forbidden(X).\n");
    EXPECT_EQ(values("allowed(X)", "X"),
              (std::vector<std::string>{"b"}));
    // 'not' alias.
    EXPECT_EQ(values("p(X), not(forbidden(X))", "X"),
              (std::vector<std::string>{"b"}));
}

TEST_F(BuiltinSolver, NegationDoesNotBind)
{
    load("p(a).\n");
    auto solutions = solver->solve("\\+ p(b), p(X)");
    ASSERT_EQ(solutions.size(), 1u);
    EXPECT_EQ(solutions[0].bindings.at("X"), "a");
}

TEST_F(BuiltinSolver, CallMetaPredicate)
{
    load("p(a).\np(b).\n");
    EXPECT_EQ(values("G = p(X), call(G)", "X"),
              (std::vector<std::string>{"a", "b"}));
}

TEST_F(BuiltinSolver, TypeChecks)
{
    load("p(a).\n");
    EXPECT_EQ(solver->solve("atom(foo)").size(), 1u);
    EXPECT_TRUE(solver->solve("atom(1)").empty());
    EXPECT_EQ(solver->solve("integer(3)").size(), 1u);
    EXPECT_EQ(solver->solve("float(3.5)").size(), 1u);
    EXPECT_EQ(solver->solve("number(3)").size(), 1u);
    EXPECT_EQ(solver->solve("var(X)").size(), 1u);
    EXPECT_TRUE(solver->solve("X = 1, var(X)").empty());
    EXPECT_EQ(solver->solve("X = 1, nonvar(X)").size(), 1u);
    EXPECT_EQ(solver->solve("compound(f(a))").size(), 1u);
    EXPECT_EQ(solver->solve("compound([a])").size(), 1u);
    EXPECT_EQ(solver->solve("atomic(foo)").size(), 1u);
    EXPECT_TRUE(solver->solve("atomic(f(a))").empty());
}

TEST_F(BuiltinSolver, RecursiveArithmetic)
{
    load("fact(0, 1).\n"
         "fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.\n");
    EXPECT_EQ(values("fact(10, F)", "F"),
              (std::vector<std::string>{"3628800"}));
}

TEST_F(BuiltinSolver, ListLengthWithArithmetic)
{
    load("len([], 0).\n"
         "len([_ | T], N) :- len(T, M), N is M + 1.\n");
    EXPECT_EQ(values("len([a, b, c, d], N)", "N"),
              (std::vector<std::string>{"4"}));
}

TEST_F(BuiltinSolver, FindallCollectsAllSolutions)
{
    load("color(red).\ncolor(green).\ncolor(blue).\n");
    auto solutions = solver->solve("findall(C, color(C), L)");
    ASSERT_EQ(solutions.size(), 1u);
    EXPECT_EQ(solutions[0].bindings.at("L"), "[red,green,blue]");
}

TEST_F(BuiltinSolver, FindallEmptyGoalGivesNil)
{
    load("color(red).\n");
    auto solutions = solver->solve("findall(C, color(C), L), C = nope");
    // findall does not bind C outside; the empty case gives [].
    auto none = solver->solve("findall(X, fail, L)");
    ASSERT_EQ(none.size(), 1u);
    EXPECT_EQ(none[0].bindings.at("L"), "[]");
    ASSERT_EQ(solutions.size(), 1u);
}

TEST_F(BuiltinSolver, FindallTemplatesAreSnapshots)
{
    load("pair(1, a).\npair(2, b).\n");
    auto solutions = solver->solve("findall(f(X, Y), pair(X, Y), L)");
    ASSERT_EQ(solutions.size(), 1u);
    EXPECT_EQ(solutions[0].bindings.at("L"), "[f(1,a),f(2,b)]");
}

TEST_F(BuiltinSolver, BetweenEnumerates)
{
    load("p(a).\n");
    EXPECT_EQ(values("between(3, 6, X)", "X"),
              (std::vector<std::string>{"3", "4", "5", "6"}));
    EXPECT_TRUE(solver->solve("between(4, 2, X)").empty());
}

TEST_F(BuiltinSolver, BetweenChecksBoundValue)
{
    load("p(a).\n");
    EXPECT_EQ(solver->solve("between(1, 5, 3)").size(), 1u);
    EXPECT_TRUE(solver->solve("between(1, 5, 9)").empty());
    EXPECT_TRUE(solver->solve("between(1, 5, foo)").empty());
}

TEST_F(BuiltinSolver, BetweenWithArithmeticBounds)
{
    load("p(a).\n");
    EXPECT_EQ(values("between(1 + 1, 2 * 2, X)", "X"),
              (std::vector<std::string>{"2", "3", "4"}));
}

TEST_F(BuiltinSolver, AssertzAddsFacts)
{
    load("seed(1).\n");
    EXPECT_EQ(solver->solve("assertz(seed(2)), seed(2)").size(), 1u);
    EXPECT_EQ(values("seed(X)", "X"),
              (std::vector<std::string>{"1", "2"}));
}

TEST_F(BuiltinSolver, AssertaPutsClauseFirst)
{
    load("seed(1).\n");
    ASSERT_EQ(solver->solve("asserta(seed(0))").size(), 1u);
    EXPECT_EQ(values("seed(X)", "X"),
              (std::vector<std::string>{"0", "1"}));
}

TEST_F(BuiltinSolver, AssertRules)
{
    load("base(5).\n");
    ASSERT_EQ(solver->solve(
        "assertz((doubled(Y) :- base(X), Y is X * 2))").size(), 1u);
    EXPECT_EQ(values("doubled(D)", "D"),
              (std::vector<std::string>{"10"}));
}

TEST_F(BuiltinSolver, AssertedClausesSnapshotBindings)
{
    load("p(a).\n");
    ASSERT_EQ(solver->solve("X = canned, assertz(saved(X))").size(), 1u);
    EXPECT_EQ(values("saved(V)", "V"),
              (std::vector<std::string>{"canned"}));
}

TEST_F(BuiltinSolver, RetractRemovesFirstMatch)
{
    load("item(a).\nitem(b).\nitem(a).\n");
    ASSERT_EQ(solver->solve("retract(item(a))").size(), 1u);
    EXPECT_EQ(values("item(X)", "X"),
              (std::vector<std::string>{"b", "a"}));
    // Retracting a non-existent fact fails.
    EXPECT_TRUE(solver->solve("retract(item(zzz))").empty());
}

TEST_F(BuiltinSolver, RetractRuleWithBodyPattern)
{
    load("r(1).\nq(X) :- r(X).\nq(9).\n");
    // The bare-head pattern skips the rule and removes the fact.
    ASSERT_EQ(solver->solve("retract(q(9))").size(), 1u);
    EXPECT_EQ(values("q(X)", "X"), (std::vector<std::string>{"1"}));
    // The rule needs the ':-' pattern.
    ASSERT_EQ(solver->solve("retract((q(A) :- r(A)))").size(), 1u);
    EXPECT_TRUE(solver->solve("q(X)").empty());
}

TEST_F(BuiltinSolver, DynamicUpdateOfLargePredicateRejected)
{
    KbConfig config;
    config.largeThreshold = 2;
    kb = std::make_unique<KnowledgeBase>(config);
    kb->consult("big(a).\nbig(b).\nbig(c).\n");
    kb->compile();
    solver = std::make_unique<Solver>(*kb);
    EXPECT_THROW(solver->solve("assertz(big(d))"), FatalError);
    EXPECT_THROW(solver->solve("retract(big(a))"), FatalError);
    // Small predicates stay dynamic after compilation.
    EXPECT_EQ(solver->solve("assertz(note(1)), note(N)").size(), 1u);
}

TEST_F(BuiltinSolver, DisjunctionBranches)
{
    load("l(1).\nr(2).\n");
    EXPECT_EQ(values("(l(X) ; r(X))", "X"),
              (std::vector<std::string>{"1", "2"}));
    EXPECT_EQ(values("(fail ; r(X))", "X"),
              (std::vector<std::string>{"2"}));
    EXPECT_EQ(solver->solve("(l(_) ; r(_))").size(), 2u);
}

TEST_F(BuiltinSolver, ConjunctionControlTerm)
{
    load("a(1).\nb(2).\n");
    // A parenthesized conjunction inside a disjunction branch.
    EXPECT_EQ(values("(a(X), b(Y) ; fail)", "X"),
              (std::vector<std::string>{"1"}));
    // call/1 on a conjunction term.
    EXPECT_EQ(values("G = (a(X), b(_)), call(G)", "X"),
              (std::vector<std::string>{"1"}));
}

TEST_F(BuiltinSolver, ParenthesizedBodyRoundTrip)
{
    load("choice(X) :- (X = left ; X = right).\n");
    EXPECT_EQ(values("choice(C)", "C"),
              (std::vector<std::string>{"left", "right"}));
}

class LibraryTest : public BuiltinSolver
{
  protected:
    void
    SetUp() override
    {
        kb = std::make_unique<KnowledgeBase>();
        kb->loadLibrary();
        solver = std::make_unique<Solver>(*kb);
    }
};

TEST_F(LibraryTest, Append)
{
    EXPECT_EQ(values("append([a, b], [c], L)", "L"),
              (std::vector<std::string>{"[a,b,c]"}));
    EXPECT_EQ(values("append([], [x], L)", "L"),
              (std::vector<std::string>{"[x]"}));
    // Backwards mode: enumerate splits.
    auto splits = solver->solve("append(A, B, [1, 2])");
    EXPECT_EQ(splits.size(), 3u);
}

TEST_F(LibraryTest, MemberAndSelect)
{
    EXPECT_EQ(values("member(X, [p, q, r])", "X"),
              (std::vector<std::string>{"p", "q", "r"}));
    EXPECT_TRUE(solver->solve("member(z, [p, q])").empty());
    EXPECT_EQ(values("select(q, [p, q, r], L)", "L"),
              (std::vector<std::string>{"[p,r]"}));
}

TEST_F(LibraryTest, LengthAndReverse)
{
    EXPECT_EQ(values("length([a, b, c], N)", "N"),
              (std::vector<std::string>{"3"}));
    EXPECT_EQ(values("reverse([1, 2, 3], R)", "R"),
              (std::vector<std::string>{"[3,2,1]"}));
    EXPECT_EQ(values("last([x, y, z], L)", "L"),
              (std::vector<std::string>{"z"}));
}

TEST_F(LibraryTest, NthZero)
{
    EXPECT_EQ(values("nth0(1, [a, b, c], X)", "X"),
              (std::vector<std::string>{"b"}));
    EXPECT_EQ(values("nth0(N, [a, b], b)", "N"),
              (std::vector<std::string>{"1"}));
}

TEST_F(LibraryTest, NumericListFolds)
{
    EXPECT_EQ(values("sum_list([1, 2, 3, 4], S)", "S"),
              (std::vector<std::string>{"10"}));
    EXPECT_EQ(values("max_list([3, 9, 5], M)", "M"),
              (std::vector<std::string>{"9"}));
    EXPECT_EQ(values("min_list([3, 9, 5], M)", "M"),
              (std::vector<std::string>{"3"}));
}

TEST_F(LibraryTest, ComposesWithFindall)
{
    kb->consult("edge(a, b).\nedge(a, c).\nedge(b, d).\n");
    auto solutions = solver->solve(
        "findall(Y, edge(a, Y), L), length(L, N)");
    ASSERT_EQ(solutions.size(), 1u);
    EXPECT_EQ(solutions[0].bindings.at("N"), "2");
}

TEST_F(BuiltinSolver, FibonacciWithCut)
{
    // The solver is continuation-passing: C++ stack depth grows with
    // the proof size, so exponential proofs are kept modest here
    // (sanitizer builds have fat frames).
    load("fib(0, 0) :- !.\n"
         "fib(1, 1) :- !.\n"
         "fib(N, F) :- A is N - 1, B is N - 2, fib(A, X), fib(B, Y), "
         "F is X + Y.\n");
    EXPECT_EQ(values("fib(12, F)", "F"),
              (std::vector<std::string>{"144"}));
}

} // namespace
} // namespace clare::kb
