/**
 * @file
 * SCW+MB tests: codeword determinism, the match rule, mask-bit
 * semantics, truncation, the shared-variable blindness the paper
 * motivates FS2 with, serialization, and the index-never-dismisses
 * soundness property.
 */

#include <gtest/gtest.h>

#include "scw/analysis.hh"
#include "scw/codeword.hh"
#include "scw/index_file.hh"
#include "storage/clause_file.hh"
#include "support/random.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"
#include "unify/oracle.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare::scw {
namespace {

class ScwTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    CodewordGenerator gen;

    Signature
    encode(const std::string &text)
    {
        term::ParsedTerm t = reader.parseTerm(text);
        return gen.encode(t.arena, t.root);
    }

    bool
    matches(const std::string &query, const std::string &clause)
    {
        return gen.matches(encode(query), encode(clause));
    }
};

TEST_F(ScwTest, Deterministic)
{
    Signature a = encode("p(foo, 42)");
    Signature b = encode("p(foo, 42)");
    ASSERT_EQ(a.fields.size(), b.fields.size());
    for (std::size_t i = 0; i < a.fields.size(); ++i)
        EXPECT_TRUE(a.fields[i] == b.fields[i]);
    EXPECT_EQ(a.maskBits, b.maskBits);
}

TEST_F(ScwTest, IdenticalGroundTermsMatch)
{
    EXPECT_TRUE(matches("p(a, b)", "p(a, b)"));
}

TEST_F(ScwTest, DifferentConstantsUsuallyReject)
{
    int rejected = 0;
    for (int i = 0; i < 50; ++i) {
        std::string q = "p(k" + std::to_string(i) + ")";
        std::string c = "p(m" + std::to_string(i) + ")";
        if (!matches(q, c))
            ++rejected;
    }
    // Hash collisions allow a few false matches, but most reject.
    EXPECT_GT(rejected, 40);
}

TEST_F(ScwTest, QueryVariableMatchesAnything)
{
    EXPECT_TRUE(matches("p(X, b)", "p(whatever, b)"));
    EXPECT_TRUE(matches("p(X, Y)", "p(anything, at_all)"));
}

TEST_F(ScwTest, ClauseVariableMatchesAnything)
{
    EXPECT_TRUE(matches("p(foo)", "p(X)"));
}

TEST_F(ScwTest, VarBearingClauseStructureIsMasked)
{
    // f(A,b) must not be dismissed for the query f(a,X): the clause
    // argument contains a variable, so its field is masked.
    EXPECT_TRUE(matches("p(f(a, X))", "p(f(A, b))"));
}

TEST_F(ScwTest, GroundStructureSubsetRule)
{
    // Query f(a,X) encodes functor + 'a'; ground clause f(a,b)
    // includes both, so the subset test passes...
    EXPECT_TRUE(matches("p(f(a, X))", "p(f(a, b))"));
    // ...while f(c,b) misses the 'a' bits (modulo collisions).
    int rejected = 0;
    for (int i = 0; i < 30; ++i) {
        std::string q = "p(f(q" + std::to_string(i) + ", X))";
        std::string c = "p(f(r" + std::to_string(i) + ", b))";
        if (!matches(q, c))
            ++rejected;
    }
    EXPECT_GT(rejected, 21);
}

TEST_F(ScwTest, SharedVariablesAreInvisible)
{
    // The paper's married_couple(S,S) pathology: shared variables are
    // not encoded, so the index passes every clause of the predicate.
    EXPECT_TRUE(matches("married_couple(S, S)",
                        "married_couple(john, mary)"));
    EXPECT_TRUE(matches("married_couple(S, S)",
                        "married_couple(pat, pat)"));
}

TEST_F(ScwTest, TruncationBeyondTwelveArguments)
{
    // Arguments beyond the 12th are not encoded: mismatches there are
    // invisible to FS1 (a false-drop source).
    std::string q = "p(a,a,a,a,a,a,a,a,a,a,a,a,zzz)";
    std::string c = "p(a,a,a,a,a,a,a,a,a,a,a,a,yyy)";
    EXPECT_TRUE(matches(q, c));
    // Mismatch *within* the first 12 is caught (modulo collisions).
    std::string q2 = "p(zzz_distinct_lhs,a,a,a,a,a,a,a,a,a,a,a,x)";
    std::string c2 = "p(yyy_distinct_rhs,a,a,a,a,a,a,a,a,a,a,a,x)";
    EXPECT_FALSE(matches(q2, c2));
}

TEST_F(ScwTest, ListEncodingUsesElements)
{
    EXPECT_TRUE(matches("p([a, b])", "p([a, b])"));
    // An unterminated clause list is masked (tail variable).
    EXPECT_TRUE(matches("p([a, b])", "p([a | T])"));
}

TEST_F(ScwTest, SignatureSerializationRoundTrip)
{
    Signature sig = encode("p(f(a,X), 42, Y)");
    std::vector<std::uint8_t> bytes;
    gen.serialize(sig, bytes);
    EXPECT_EQ(bytes.size(), gen.signatureBytes());
    std::size_t offset = 0;
    Signature back = gen.deserialize(bytes, offset);
    EXPECT_EQ(back.maskBits, sig.maskBits);
    for (std::size_t i = 0; i < sig.fields.size(); ++i)
        EXPECT_TRUE(back.fields[i] == sig.fields[i]);
}

TEST_F(ScwTest, WiderFieldsAreMoreSelective)
{
    ScwConfig narrow;
    narrow.fieldBits = 4;
    ScwConfig wide;
    wide.fieldBits = 64;
    CodewordGenerator gnarrow(narrow);
    CodewordGenerator gwide(wide);

    term::ParsedTerm q = reader.parseTerm("p(q_probe)");
    int narrow_hits = 0;
    int wide_hits = 0;
    for (int i = 0; i < 200; ++i) {
        term::ParsedTerm c = reader.parseTerm(
            "p(c" + std::to_string(i) + ")");
        if (gnarrow.matches(gnarrow.encode(q.arena, q.root),
                            gnarrow.encode(c.arena, c.root)))
            ++narrow_hits;
        if (gwide.matches(gwide.encode(q.arena, q.root),
                          gwide.encode(c.arena, c.root)))
            ++wide_hits;
    }
    EXPECT_GE(narrow_hits, wide_hits);
    EXPECT_LT(wide_hits, 5);
}

TEST(SecondaryFile, BuildAndDecode)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    CodewordGenerator gen;

    auto clauses = reader.parseProgram("p(a).\np(b).\np(X).\n");
    storage::ClauseFileBuilder builder(writer);
    std::vector<Signature> sigs;
    for (const auto &c : clauses) {
        builder.add(c);
        sigs.push_back(gen.encode(c.arena(), c.head()));
    }
    storage::ClauseFile file = builder.finish();
    SecondaryFile index = SecondaryFile::build(gen, sigs, file);

    EXPECT_EQ(index.entryCount(), 3u);
    EXPECT_EQ(index.image().size(),
              index.entryBytes() * index.entryCount());
    for (std::size_t i = 0; i < 3; ++i) {
        IndexEntry entry = index.entry(gen, i);
        EXPECT_EQ(entry.ordinal, i);
        EXPECT_EQ(entry.clauseOffset, file.record(i).offset);
        EXPECT_EQ(entry.signature.maskBits, sigs[i].maskBits);
    }
}

TEST(SecondaryFile, IndexIsSmallerThanClauseFile)
{
    // The design rationale: scanning the secondary file beats scanning
    // the clause file because it is much smaller.
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 300;
    term::Program program = kbgen.generate(spec);

    term::TermWriter writer(sym);
    CodewordGenerator gen;
    storage::ClauseFileBuilder builder(writer);
    std::vector<Signature> sigs;
    for (const auto &pred : program.predicates()) {
        for (std::size_t i : program.clausesOf(pred)) {
            builder.add(program.clause(i));
            sigs.push_back(gen.encode(program.clause(i).arena(),
                                      program.clause(i).head()));
        }
    }
    storage::ClauseFile file = builder.finish();
    SecondaryFile index = SecondaryFile::build(gen, sigs, file);
    EXPECT_LT(index.image().size(), file.image().size());
}

TEST(ScwAnalysis, FillFactorBounds)
{
    EXPECT_DOUBLE_EQ(expectedFillFactor(16, 2, 0.0), 0.0);
    double low = expectedFillFactor(16, 2, 1.0);
    double high = expectedFillFactor(16, 2, 8.0);
    EXPECT_GT(low, 0.0);
    EXPECT_LT(low, high);
    EXPECT_LT(high, 1.0);
    // Infinitely many tokens saturate the field.
    EXPECT_NEAR(expectedFillFactor(16, 2, 1000.0), 1.0, 1e-9);
}

TEST(ScwAnalysis, WiderFieldsReduceFalseMatch)
{
    ScwConfig narrow;
    narrow.fieldBits = 4;
    ScwConfig wide;
    wide.fieldBits = 64;
    double pn = fieldFalseMatchProbability(narrow, 1.0, 1.0);
    double pw = fieldFalseMatchProbability(wide, 1.0, 1.0);
    EXPECT_GT(pn, pw);
    EXPECT_GT(pw, 0.0);
}

TEST(ScwAnalysis, MoreConstrainedFieldsReduceDropProbability)
{
    ScwConfig config;
    double one = falseDropProbability(config, 1, 1.0, 1.0);
    double four = falseDropProbability(config, 4, 1.0, 1.0);
    EXPECT_LT(four, one);
}

TEST(ScwAnalysis, MaskProbabilityRaisesDropProbability)
{
    ScwConfig config;
    double unmasked = falseDropProbability(config, 4, 1.0, 1.0, 0.0);
    double masked = falseDropProbability(config, 4, 1.0, 1.0, 0.5);
    EXPECT_GT(masked, unmasked);
    // All-masked clauses always drop through.
    EXPECT_DOUBLE_EQ(falseDropProbability(config, 4, 1.0, 1.0, 1.0),
                     1.0);
}

TEST(ScwAnalysis, TokenCounting)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    ScwConfig config;
    term::ParsedTerm t = reader.parseTerm("p(a, f(b, c), X, [1, 2])");
    // a=1; f(b,c)=3 (functor+2); X=0; [1,2]=3 (marker+2) -> 7/4.
    EXPECT_DOUBLE_EQ(measuredTokensPerField(t.arena, t.root, config),
                     7.0 / 4.0);
}

TEST(ScwAnalysis, PredictionTracksMeasurementWithinFactor)
{
    // The textbook approximation should land within a small factor of
    // the measured per-clause false-match probability.
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 1500;
    spec.arityMin = 2;
    spec.arityMax = 2;      // fixed arity: the formula applies exactly
    spec.structProb = 0.0;
    spec.listProb = 0.0;
    spec.atomVocabulary = 1200;
    spec.seed = 8;
    term::Program program = kbgen.generate(spec);
    const auto &pred = program.predicates()[0];

    ScwConfig config;
    config.fieldBits = 4;   // narrow fields: measurable collision rate
    CodewordGenerator gen(config);

    const term::Clause &tmpl = program.clause(
        program.clausesOf(pred)[3]);
    term::TermArena q_arena;
    term::TermRef goal = q_arena.import(tmpl.arena(), tmpl.head(), 0);
    Signature qsig = gen.encode(q_arena, goal);

    std::size_t false_matches = 0;
    std::size_t eligible = 0;
    for (std::size_t i : program.clausesOf(pred)) {
        const term::Clause &clause = program.clause(i);
        if (unify::wouldUnify(q_arena, goal, clause))
            continue;
        ++eligible;
        if (gen.matches(qsig, gen.encode(clause.arena(),
                                         clause.head())))
            ++false_matches;
    }
    double measured = static_cast<double>(false_matches) /
        static_cast<double>(eligible);
    double predicted = falseDropProbability(
        config, std::min(q_arena.arity(goal), config.encodedArgs),
        1.0, 1.0);
    EXPECT_GT(measured, predicted / 5.0);
    EXPECT_LT(measured, predicted * 5.0 + 0.01);
}

/**
 * Soundness property: the index never dismisses a clause that would
 * unify with the query (no false dismissals), across randomized
 * knowledge bases and queries.
 */
TEST(ScwProperty, NeverFalselyDismisses)
{
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 2;
    spec.clausesPerPredicate = 120;
    spec.varProb = 0.25;
    spec.sharedVarProb = 0.3;
    spec.structProb = 0.3;
    spec.listProb = 0.1;
    spec.seed = 42;
    term::Program program = kbgen.generate(spec);

    CodewordGenerator gen;
    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.5;
    qspec.sharedVarProb = 0.4;
    workload::QueryGenerator qgen(sym, qspec);

    std::uint64_t checked = 0;
    for (const auto &pred : program.predicates()) {
        for (int qi = 0; qi < 10; ++qi) {
            workload::GeneratedQuery q = qgen.generate(program, pred);
            Signature qsig = gen.encode(q.arena, q.goal);
            for (std::size_t i : program.clausesOf(pred)) {
                const term::Clause &clause = program.clause(i);
                bool unifies = unify::wouldUnify(q.arena, q.goal, clause);
                if (!unifies)
                    continue;
                Signature csig = gen.encode(clause.arena(),
                                            clause.head());
                EXPECT_TRUE(gen.matches(qsig, csig))
                    << "false dismissal for clause " << i;
                ++checked;
            }
        }
    }
    EXPECT_GT(checked, 100u);
}

// Regression: token kinds used to be XORed into bits 56-63 of the
// *raw* token value, so an integer with high bits set aliased a token
// of another kind.  Concretely, for an atom with symbol id s, the
// integer (Atom^Int)<<56 ^ s — i.e. 3<<56 ^ s — produced the exact
// same token as the atom itself, so p(<that int>) falsely matched
// p(a) and every such clause became a guaranteed false drop.
TEST_F(ScwTest, IntegerDoesNotAliasAtomTokenAcrossKinds)
{
    Signature clause = encode("p(a)");
    std::uint64_t s = sym.lookup("a");

    term::TermArena arena;
    term::TermRef alias = arena.makeInt(
        static_cast<std::int64_t>((3ULL << 56) ^ s));
    term::TermRef args[] = {alias};
    term::TermRef goal = arena.makeStruct(sym.intern("p"), args);
    Signature query = gen.encode(arena, goal);

    EXPECT_FALSE(gen.matches(query, clause))
        << "Int token aliased the Atom token of symbol " << s;
}

// The index-format version is what forces stores persisted under the
// old token scheme to be regenerated; encoding changes must bump it.
TEST_F(ScwTest, IndexFormatVersionCoversTokenScheme)
{
    EXPECT_GE(kIndexFormatVersion, 2);
}

} // namespace
} // namespace clare::scw
