/**
 * @file
 * Partial test unification tests: the figure-1 algorithm over PIF
 * streams, level semantics (1-5), cross-binding checks, operation
 * accounting, the paper's worked examples, and the central soundness
 * property — a filter miss implies full unification fails.
 */

#include <gtest/gtest.h>

#include "pif/encoder.hh"
#include "term/term_reader.hh"
#include "unify/oracle.hh"
#include "unify/pif_matcher.hh"
#include "unify/term_matcher.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare::unify {
namespace {

class MatcherTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    pif::Encoder encoder;

    PifMatchResult
    match(const std::string &query, const std::string &clause_head,
          int level = 3, bool cross_binding = true)
    {
        term::ParsedTerm q = reader.parseTerm(query);
        term::ParsedTerm c = reader.parseTerm(clause_head);
        pif::EncodedArgs qargs = encoder.encodeArgs(q.arena, q.root,
                                                    pif::Side::Query);
        pif::EncodedArgs cargs = encoder.encodeArgs(c.arena, c.root,
                                                    pif::Side::Db);
        PifMatcher matcher(PifMatchConfig{level, cross_binding});
        return matcher.match(cargs, qargs);
    }
};

TEST_F(MatcherTest, GroundEquality)
{
    EXPECT_TRUE(match("p(a, 1, 2.5)", "p(a, 1, 2.5)").hit);
    EXPECT_FALSE(match("p(a)", "p(b)").hit);
    EXPECT_FALSE(match("p(1)", "p(2)").hit);
    EXPECT_FALSE(match("p(1.5)", "p(2.5)").hit);
}

TEST_F(MatcherTest, TypeMismatch)
{
    EXPECT_FALSE(match("p(a)", "p(1)").hit);
    EXPECT_FALSE(match("p(1)", "p(1.0)").hit);
    EXPECT_FALSE(match("p(a)", "p(f(a))").hit);
    EXPECT_FALSE(match("p(f(a))", "p([a])").hit);
}

TEST_F(MatcherTest, OpCountsForSimpleMatch)
{
    PifMatchResult r = match("p(a, b)", "p(a, b)");
    EXPECT_EQ(r.count(TueOp::Match), 2u);
    EXPECT_EQ(r.datapathOps(), 2u);
}

TEST_F(MatcherTest, EarlyExitStopsCounting)
{
    PifMatchResult r = match("p(x, a)", "p(y, a)");
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.count(TueOp::Match), 1u);   // rejected at arg 1
}

TEST_F(MatcherTest, AnonymousVariableSkips)
{
    PifMatchResult r = match("p(_, b)", "p(whatever, b)");
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.count(TueOp::Skip), 1u);
    EXPECT_EQ(r.count(TueOp::Match), 1u);
}

TEST_F(MatcherTest, DbVariableStores)
{
    PifMatchResult r = match("p(a)", "p(X)");
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.count(TueOp::DbStore), 1u);
}

TEST_F(MatcherTest, QueryVariableStores)
{
    PifMatchResult r = match("p(X)", "p(a)");
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.count(TueOp::QueryStore), 1u);
}

TEST_F(MatcherTest, SharedQueryVariableFetchesAndCompares)
{
    // married_couple(S,S) vs (john,mary): store then fetch-mismatch.
    PifMatchResult r = match("married_couple(S, S)",
                             "married_couple(john, mary)");
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.count(TueOp::QueryStore), 1u);
    EXPECT_EQ(r.count(TueOp::QueryFetch), 1u);

    EXPECT_TRUE(match("married_couple(S, S)",
                      "married_couple(pat, pat)").hit);
}

TEST_F(MatcherTest, SharedDbVariableFetchesAndCompares)
{
    EXPECT_TRUE(match("p(a, a)", "p(X, X)").hit);
    PifMatchResult r = match("p(a, b)", "p(X, X)");
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.count(TueOp::DbStore), 1u);
    EXPECT_EQ(r.count(TueOp::DbFetch), 1u);
}

TEST_F(MatcherTest, PaperCrossBindingExample)
{
    // Section 3.3.6: query f(X,a,b) against clause f(A,a,A).  The
    // second occurrence of A is cross-bound to the query variable X.
    PifMatchResult r = match("f(X, a, b)", "f(A, a, A)");
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.count(TueOp::DbStore), 1u);
    EXPECT_EQ(r.count(TueOp::Match), 1u);
    EXPECT_EQ(r.count(TueOp::DbCrossBoundFetch), 1u);
}

TEST_F(MatcherTest, QueryCrossBoundFetch)
{
    // Query variable initially bound to a db variable, used again:
    // X first pairs with A (query store of a var item), then X's
    // second occurrence triggers the cross-bound fetch.
    PifMatchResult r = match("f(X, X)", "f(A, b)");
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.count(TueOp::QueryCrossBoundFetch), 1u);
}

TEST_F(MatcherTest, CyclicVarVarBindingPassesConservatively)
{
    // f(X,b,X) vs f(A,A,c): full unification fails (X=A=b conflicts
    // with X=c), but the var-var pair forms a two-element binding
    // cycle with no concrete terminal, so the ultimate-association
    // walk reports "unbound" and the filter passes the clause — a
    // documented false drop that host full unification removes.
    PifMatchResult r = match("f(X, b, X)", "f(A, A, c)");
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.count(TueOp::DbCrossBoundFetch), 1u);
    EXPECT_EQ(r.count(TueOp::QueryCrossBoundFetch), 1u);
}

TEST_F(MatcherTest, CrossBindingOffSkipsAllVariables)
{
    PifMatchResult r = match("married_couple(S, S)",
                             "married_couple(john, mary)",
                             3, /*cross_binding=*/false);
    EXPECT_TRUE(r.hit);     // the "original algorithm" false drop
    EXPECT_EQ(r.datapathOps(), 0u);
    EXPECT_EQ(r.count(TueOp::Skip), 2u);
}

TEST_F(MatcherTest, StructureHeadersAndElements)
{
    EXPECT_TRUE(match("p(f(a, b))", "p(f(a, b))").hit);
    EXPECT_FALSE(match("p(f(a, b))", "p(f(a, c))").hit);
    EXPECT_FALSE(match("p(f(a))", "p(g(a))").hit);
    EXPECT_FALSE(match("p(f(a))", "p(f(a, b))").hit);
}

TEST_F(MatcherTest, StructureElementVariables)
{
    EXPECT_TRUE(match("p(f(X, b))", "p(f(a, b))").hit);
    EXPECT_TRUE(match("p(f(a, b))", "p(f(A, b))").hit);
    // Shared element variables still checked at level 3.
    EXPECT_FALSE(match("p(f(X, X))", "p(f(a, b))").hit);
}

TEST_F(MatcherTest, Level3IsFirstLevelOnly)
{
    // Nested structures are pointers: only functor/arity compared, so
    // differing leaves pass (a false drop full unification removes).
    EXPECT_TRUE(match("p(f(g(a)))", "p(f(g(b)))").hit);
    // But differing nested functors are caught.
    EXPECT_FALSE(match("p(f(g(a)))", "p(f(h(a)))").hit);
}

TEST_F(MatcherTest, ListArityRules)
{
    EXPECT_TRUE(match("p([a, b])", "p([a, b])").hit);
    EXPECT_FALSE(match("p([a, b])", "p([a, b, c])").hit);
    EXPECT_FALSE(match("p([a])", "p([b])").hit);
}

TEST_F(MatcherTest, UnterminatedListPrefixRules)
{
    // [a,b|T] unifies with any list extending [a,b].
    EXPECT_TRUE(match("p([a, b, c])", "p([a, b | T])").hit);
    EXPECT_FALSE(match("p([a, b])", "p([a, b, c | T])").hit);
    EXPECT_TRUE(match("p([a | T])", "p([a, b | S])").hit);
    EXPECT_FALSE(match("p([x | T])", "p([y | S])").hit);
}

TEST_F(MatcherTest, ListVsAtomNil)
{
    EXPECT_FALSE(match("p([])", "p([a])").hit);
    EXPECT_TRUE(match("p([])", "p([])").hit);
}

TEST_F(MatcherTest, Level1TypeOnly)
{
    EXPECT_TRUE(match("p(a)", "p(b)", 1).hit);
    EXPECT_TRUE(match("p(1)", "p(2)", 1).hit);
    EXPECT_FALSE(match("p(a)", "p(1)", 1).hit);
    EXPECT_TRUE(match("p(f(a))", "p(g(b, c))", 1).hit);
    EXPECT_TRUE(match("p([a])", "p([b, c])", 1).hit);
}

TEST_F(MatcherTest, Level2ContentWithoutElements)
{
    EXPECT_FALSE(match("p(a)", "p(b)", 2).hit);
    EXPECT_FALSE(match("p(f(a))", "p(g(a))", 2).hit);     // functor
    EXPECT_FALSE(match("p(f(a))", "p(f(a, b))", 2).hit);  // arity
    EXPECT_TRUE(match("p(f(a))", "p(f(b))", 2).hit);      // elements!
    EXPECT_TRUE(match("p([a])", "p([b, c])", 2).hit);     // lists pass
}

TEST_F(MatcherTest, LevelMonotonicity)
{
    // Higher levels only reject more.
    const char *queries[] = {"p(a, f(x, Y), [u, v])",
                             "p(Z, f(Z, b), [u | T])"};
    const char *clauses[] = {"p(a, f(x, k), [u, v])",
                             "p(b, f(c, d), [w, v])",
                             "p(A, f(A, b), [u, x])"};
    for (const char *q : queries) {
        for (const char *c : clauses) {
            bool l1 = match(q, c, 1).hit;
            bool l2 = match(q, c, 2).hit;
            bool l3 = match(q, c, 3).hit;
            EXPECT_TRUE(l1 || !l2) << q << " vs " << c;
            EXPECT_TRUE(l2 || !l3) << q << " vs " << c;
        }
    }
}

TEST_F(MatcherTest, ArityZeroAlwaysHits)
{
    term::SymbolTable s2;
    term::TermReader r2(s2);
    term::ParsedTerm q = r2.parseTerm("go");
    term::ParsedTerm c = r2.parseTerm("go");
    TermMatcher matcher;
    EXPECT_TRUE(matcher.match(c.arena, c.root, q.arena, q.root).hit);
}

TEST_F(MatcherTest, TermMatcherPredicateGate)
{
    term::ParsedTerm q = reader.parseTerm("p(a)");
    term::ParsedTerm c = reader.parseTerm("q(a)");
    TermMatcher matcher;
    EXPECT_FALSE(matcher.match(c.arena, c.root, q.arena, q.root).hit);
}

TEST_F(MatcherTest, Level4FullDepth)
{
    term::ParsedTerm q = reader.parseTerm("p(f(g(a)))");
    term::ParsedTerm c = reader.parseTerm("p(f(g(b)))");
    TermMatcher l4(MatchConfig{4, false});
    EXPECT_FALSE(l4.match(c.arena, c.root, q.arena, q.root).hit);
    // Level 3 passes the same pair (nested leaves unseen).
    TermMatcher l3(MatchConfig{3, true});
    EXPECT_TRUE(l3.match(c.arena, c.root, q.arena, q.root).hit);
}

TEST_F(MatcherTest, Level4IgnoresVariableConsistency)
{
    term::ParsedTerm q = reader.parseTerm("p(S, S)");
    term::ParsedTerm c = reader.parseTerm("p(john, mary)");
    TermMatcher l4(MatchConfig{4, false});
    EXPECT_TRUE(l4.match(c.arena, c.root, q.arena, q.root).hit);
}

TEST_F(MatcherTest, Level5AddsCrossBindingToFullDepth)
{
    term::ParsedTerm q = reader.parseTerm("p(S, S)");
    term::ParsedTerm c = reader.parseTerm("p(john, mary)");
    TermMatcher l5(MatchConfig{5, false});  // level 5 forces checks
    EXPECT_FALSE(l5.match(c.arena, c.root, q.arena, q.root).hit);
}

TEST_F(MatcherTest, Level5DeepSharedVariables)
{
    term::ParsedTerm q = reader.parseTerm("p(f(X), g(X))");
    term::ParsedTerm c = reader.parseTerm("p(f(a), g(b))");
    TermMatcher l5(MatchConfig{5, true});
    EXPECT_FALSE(l5.match(c.arena, c.root, q.arena, q.root).hit);
    term::ParsedTerm c2 = reader.parseTerm("p(f(a), g(a))");
    EXPECT_TRUE(l5.match(c2.arena, c2.root, q.arena, q.root).hit);
}

/**
 * The soundness property (every level, cross binding on and off): a
 * filter miss implies full unification fails.  Randomized over
 * generated clause heads and derived queries.
 */
class MatcherSoundness : public ::testing::TestWithParam<
                             std::tuple<int, bool>>
{
};

TEST_P(MatcherSoundness, MissImpliesNoUnify)
{
    auto [level, cross_binding] = GetParam();

    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 2;
    spec.clausesPerPredicate = 150;
    spec.varProb = 0.25;
    spec.sharedVarProb = 0.35;
    spec.structProb = 0.3;
    spec.listProb = 0.12;
    spec.seed = 1000 + static_cast<std::uint64_t>(level);
    term::Program program = kbgen.generate(spec);

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.45;
    qspec.sharedVarProb = 0.4;
    qspec.seed = 77;
    workload::QueryGenerator qgen(sym, qspec);

    TermMatcher matcher(MatchConfig{level, cross_binding});
    std::uint64_t misses = 0;
    std::uint64_t hits = 0;
    for (const auto &pred : program.predicates()) {
        for (int qi = 0; qi < 8; ++qi) {
            workload::GeneratedQuery q = qgen.generate(program, pred);
            for (std::size_t i : program.clausesOf(pred)) {
                const term::Clause &clause = program.clause(i);
                MatchResult r = matcher.match(clause.arena(),
                                              clause.head(),
                                              q.arena, q.goal);
                if (r.hit) {
                    ++hits;
                    continue;
                }
                ++misses;
                EXPECT_FALSE(unify::wouldUnify(q.arena, q.goal, clause))
                    << "false dismissal at level " << level
                    << " cb=" << cross_binding << " clause " << i;
            }
        }
    }
    // The sweep must actually exercise both outcomes.
    EXPECT_GT(misses, 50u);
    EXPECT_GT(hits, 50u);
}

INSTANTIATE_TEST_SUITE_P(
    Levels, MatcherSoundness,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Bool()),
    [](const auto &info) {
        return "L" + std::to_string(std::get<0>(info.param)) +
            (std::get<1>(info.param) ? "_cb" : "_nocb");
    });

/** Higher levels are more selective on identical inputs. */
TEST(MatcherProperty, SelectivityImprovesWithLevel)
{
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 400;
    spec.varProb = 0.2;
    spec.sharedVarProb = 0.3;
    spec.structProb = 0.35;
    spec.seed = 5;
    term::Program program = kbgen.generate(spec);

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.6;
    workload::QueryGenerator qgen(sym, qspec);
    const auto &pred = program.predicates()[0];
    workload::GeneratedQuery q = qgen.generate(program, pred);

    std::array<std::uint64_t, 6> hits{};
    for (int level = 1; level <= 5; ++level) {
        TermMatcher matcher(MatchConfig{level, true});
        for (std::size_t i : program.clausesOf(pred)) {
            const term::Clause &clause = program.clause(i);
            if (matcher.match(clause.arena(), clause.head(), q.arena,
                              q.goal).hit) {
                ++hits[static_cast<std::size_t>(level)];
            }
        }
    }
    for (int level = 2; level <= 5; ++level)
        EXPECT_LE(hits[static_cast<std::size_t>(level)],
                  hits[static_cast<std::size_t>(level - 1)]);
}

} // namespace
} // namespace clare::unify
