/**
 * @file
 * Knowledge base and resolution tests: consult, clause-order
 * preservation, small/large classification, mixed relations, SLD
 * solutions (with and without CLARE retrieval) and built-ins.
 */

#include <gtest/gtest.h>

#include "kb/knowledge_base.hh"
#include "kb/resolution.hh"
#include "support/logging.hh"
#include "workload/kb_generator.hh"

namespace clare::kb {
namespace {

TEST(KnowledgeBaseTest, ConsultPreservesOrder)
{
    KnowledgeBase kb;
    kb.consult("p(b).\np(a).\np(c).\n");
    EXPECT_EQ(kb.clauseCount(), 3u);
    term::PredicateId p{kb.symbols().lookup("p"), 1};
    EXPECT_EQ(kb.program().clausesOf(p),
              (std::vector<std::size_t>{0, 1, 2}));
}

TEST(KnowledgeBaseTest, MixedRelationsAllowed)
{
    KnowledgeBase kb;
    kb.consult("p(a).\np(X) :- p(a).\np(b).\n");
    term::PredicateId p{kb.symbols().lookup("p"), 1};
    EXPECT_TRUE(kb.program().isMixedRelation(p));
}

TEST(KnowledgeBaseTest, CompileClassifiesBySize)
{
    KbConfig config;
    config.largeThreshold = 4;
    KnowledgeBase kb(config);
    kb.consult("small(a).\nsmall(b).\n");
    for (int i = 0; i < 10; ++i)
        kb.consult("big(k" + std::to_string(i) + ").\n");
    kb.compile();
    EXPECT_TRUE(kb.isLarge(
        term::PredicateId{kb.symbols().lookup("big"), 1}));
    EXPECT_FALSE(kb.isLarge(
        term::PredicateId{kb.symbols().lookup("small"), 1}));
    EXPECT_TRUE(kb.store().has(
        term::PredicateId{kb.symbols().lookup("big"), 1}));
}

TEST(KnowledgeBaseTest, ConsultAfterCompileRejected)
{
    KnowledgeBase kb;
    kb.consult("p(a).\n");
    kb.compile();
    EXPECT_THROW(kb.consult("p(b).\n"), FatalError);
}

TEST(KnowledgeBaseTest, ClausesForSmallPredicate)
{
    KnowledgeBase kb;
    kb.consult("p(a).\np(b).\n");
    term::SymbolTable &sym = kb.symbols();
    term::TermArena arena;
    term::TermRef arg = arena.makeVar(0, sym.intern("X"));
    term::TermRef goal = arena.makeStruct(sym.intern("p"),
                                          std::span(&arg, 1));
    RetrievedClauses r = kb.clausesFor(arena, goal);
    EXPECT_EQ(r.clauses.size(), 2u);
    EXPECT_FALSE(r.retrieval.has_value());
}

TEST(KnowledgeBaseTest, ClausesForLargePredicateUsesClare)
{
    KbConfig config;
    config.largeThreshold = 2;
    KnowledgeBase kb(config);
    kb.consult("p(a).\np(b).\np(a).\n");
    kb.compile();
    term::SymbolTable &sym = kb.symbols();
    term::TermArena arena;
    term::TermRef arg = arena.makeAtom(sym.intern("a"));
    term::TermRef goal = arena.makeStruct(sym.intern("p"),
                                          std::span(&arg, 1));
    RetrievedClauses r = kb.clausesFor(arena, goal);
    ASSERT_TRUE(r.retrieval.has_value());
    EXPECT_EQ(r.retrieval->answers,
              (std::vector<std::uint32_t>{0, 2}));
}

class SolverTest : public ::testing::Test
{
  protected:
    std::unique_ptr<KnowledgeBase> kb;
    std::unique_ptr<Solver> solver;

    void
    load(const std::string &text, bool compile = false,
         std::size_t threshold = 256)
    {
        KbConfig config;
        config.largeThreshold = threshold;
        kb = std::make_unique<KnowledgeBase>(config);
        kb->consult(text);
        if (compile)
            kb->compile();
        solver = std::make_unique<Solver>(*kb);
    }
};

TEST_F(SolverTest, GroundFactQueries)
{
    load("likes(mary, wine).\nlikes(john, beer).\n");
    EXPECT_EQ(solver->solve("likes(mary, wine)").size(), 1u);
    EXPECT_TRUE(solver->solve("likes(mary, beer)").empty());
}

TEST_F(SolverTest, VariableBindingReported)
{
    load("likes(mary, wine).\nlikes(john, beer).\n");
    auto solutions = solver->solve("likes(john, X)");
    ASSERT_EQ(solutions.size(), 1u);
    EXPECT_EQ(solutions[0].bindings.at("X"), "beer");
}

TEST_F(SolverTest, SolutionsInClauseOrder)
{
    load("p(c).\np(a).\np(b).\n");
    auto solutions = solver->solve("p(X)");
    ASSERT_EQ(solutions.size(), 3u);
    EXPECT_EQ(solutions[0].bindings.at("X"), "c");
    EXPECT_EQ(solutions[1].bindings.at("X"), "a");
    EXPECT_EQ(solutions[2].bindings.at("X"), "b");
}

TEST_F(SolverTest, RulesAndConjunction)
{
    load("parent(tom, bob).\n"
         "parent(bob, ann).\n"
         "grandparent(X, Z) :- parent(X, Y), parent(Y, Z).\n");
    auto solutions = solver->solve("grandparent(tom, Who)");
    ASSERT_EQ(solutions.size(), 1u);
    EXPECT_EQ(solutions[0].bindings.at("Who"), "ann");
}

TEST_F(SolverTest, RecursionWithBacktracking)
{
    load("parent(a, b).\nparent(b, c).\nparent(c, d).\n"
         "ancestor(X, Y) :- parent(X, Y).\n"
         "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n");
    auto solutions = solver->solve("ancestor(a, W)");
    ASSERT_EQ(solutions.size(), 3u);
    EXPECT_EQ(solutions[0].bindings.at("W"), "b");
    EXPECT_EQ(solutions[1].bindings.at("W"), "c");
    EXPECT_EQ(solutions[2].bindings.at("W"), "d");
}

TEST_F(SolverTest, BuiltinsTrueFailEquals)
{
    load("p(a).\n");
    EXPECT_EQ(solver->solve("true").size(), 1u);
    EXPECT_TRUE(solver->solve("fail").empty());
    auto eq = solver->solve("X = f(a, Y), Y = b");
    ASSERT_EQ(eq.size(), 1u);
    EXPECT_EQ(eq[0].bindings.at("X"), "f(a,b)");
}

TEST_F(SolverTest, SharedVariablesInQuery)
{
    load("married_couple(john, mary).\n"
         "married_couple(pat, pat).\n"
         "married_couple(X, X).\n");
    auto solutions = solver->solve("married_couple(S, S)");
    ASSERT_EQ(solutions.size(), 2u);
    EXPECT_EQ(solutions[0].bindings.at("S"), "pat");
}

TEST_F(SolverTest, MaxSolutionsLimit)
{
    load("p(a).\np(b).\np(c).\n");
    SolveOptions options;
    options.maxSolutions = 2;
    EXPECT_EQ(solver->solve("p(X)", options).size(), 2u);
}

TEST_F(SolverTest, StepBudgetStopsRunaway)
{
    load("loop(X) :- loop(X).\nloop(done).\n");
    SolveOptions options;
    options.maxSteps = 500;
    auto solutions = solver->solve("loop(Q)", options);
    EXPECT_TRUE(solver->stats().budgetExhausted);
}

TEST_F(SolverTest, ListsInSolutions)
{
    load("route(a, [a, b, c]).\n");
    auto solutions = solver->solve("route(a, [H | T])");
    ASSERT_EQ(solutions.size(), 1u);
    EXPECT_EQ(solutions[0].bindings.at("H"), "a");
    EXPECT_EQ(solutions[0].bindings.at("T"), "[b,c]");
}

TEST_F(SolverTest, LargePredicateResolvesThroughClare)
{
    std::string text;
    for (int i = 0; i < 40; ++i)
        text += "fact(k" + std::to_string(i) + ", v" +
            std::to_string(i % 5) + ").\n";
    text += "wanted(X) :- fact(X, v3).\n";
    load(text, /*compile=*/true, /*threshold=*/10);

    auto solutions = solver->solve("wanted(W)");
    EXPECT_EQ(solutions.size(), 8u);
    EXPECT_GT(solver->stats().retrievals, 0u);
    EXPECT_GT(solver->stats().retrievalTime, 0u);
}

TEST_F(SolverTest, ClareAndInMemoryAgree)
{
    std::string text;
    for (int i = 0; i < 30; ++i)
        text += "d(x" + std::to_string(i % 7) + ", y" +
            std::to_string(i % 3) + ").\n";

    load(text, /*compile=*/false);
    auto in_memory = solver->solve("d(x3, B)");

    load(text, /*compile=*/true, /*threshold=*/5);
    auto via_clare = solver->solve("d(x3, B)");

    ASSERT_EQ(in_memory.size(), via_clare.size());
    for (std::size_t i = 0; i < in_memory.size(); ++i)
        EXPECT_EQ(in_memory[i].bindings.at("B"),
                  via_clare[i].bindings.at("B"));
}

TEST_F(SolverTest, ForcedRetrievalModesAgree)
{
    std::string text;
    for (int i = 0; i < 25; ++i)
        text += "m(a" + std::to_string(i % 6) + ", b" +
            std::to_string(i % 4) + ").\n";
    load(text, /*compile=*/true, /*threshold=*/5);

    std::vector<std::string> baseline;
    for (crs::SearchMode mode : {crs::SearchMode::SoftwareOnly,
                                 crs::SearchMode::Fs1Only,
                                 crs::SearchMode::Fs2Only,
                                 crs::SearchMode::TwoStage}) {
        SolveOptions options;
        options.forceMode = mode;
        auto solutions = solver->solve("m(a2, Y)", options);
        std::vector<std::string> values;
        for (const auto &s : solutions)
            values.push_back(s.bindings.at("Y"));
        if (baseline.empty())
            baseline = values;
        else
            EXPECT_EQ(values, baseline)
                << crs::searchModeName(mode);
        EXPECT_FALSE(values.empty());
    }
}

} // namespace
} // namespace clare::kb
