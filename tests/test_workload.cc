/**
 * @file
 * Workload generator tests: determinism, parameter effects, the
 * family KB, and query generation.
 */

#include <gtest/gtest.h>

#include "term/term_writer.hh"
#include "unify/oracle.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare::workload {
namespace {

TEST(KbGeneratorTest, DeterministicForSeed)
{
    term::SymbolTable s1;
    term::SymbolTable s2;
    KbGenerator g1(s1);
    KbGenerator g2(s2);
    KbSpec spec;
    spec.predicates = 2;
    spec.clausesPerPredicate = 50;
    spec.varProb = 0.2;
    term::Program a = g1.generate(spec);
    term::Program b = g2.generate(spec);
    ASSERT_EQ(a.size(), b.size());
    term::TermWriter w1(s1);
    term::TermWriter w2(s2);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(w1.writeClause(a.clause(i)),
                  w2.writeClause(b.clause(i)));
}

TEST(KbGeneratorTest, SeedChangesOutput)
{
    term::SymbolTable sym;
    KbGenerator gen(sym);
    KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 30;
    term::Program a = gen.generate(spec);
    spec.seed = 2;
    term::Program b = gen.generate(spec);
    term::TermWriter writer(sym);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= writer.writeClause(a.clause(i)) !=
            writer.writeClause(b.clause(i));
    EXPECT_TRUE(any_diff);
}

TEST(KbGeneratorTest, CountsMatchSpec)
{
    term::SymbolTable sym;
    KbGenerator gen(sym);
    KbSpec spec;
    spec.predicates = 3;
    spec.clausesPerPredicate = 40;
    term::Program program = gen.generate(spec);
    EXPECT_EQ(program.size(), 120u);
    EXPECT_EQ(program.predicates().size(), 3u);
    for (const auto &pred : program.predicates()) {
        EXPECT_EQ(program.clausesOf(pred).size(), 40u);
        EXPECT_GE(pred.arity, spec.arityMin);
        EXPECT_LE(pred.arity, spec.arityMax);
    }
}

TEST(KbGeneratorTest, GroundSpecYieldsGroundFacts)
{
    term::SymbolTable sym;
    KbGenerator gen(sym);
    KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 50;
    spec.varProb = 0.0;
    spec.ruleFraction = 0.0;
    term::Program program = gen.generate(spec);
    for (std::size_t i = 0; i < program.size(); ++i)
        EXPECT_TRUE(program.clause(i).isGroundFact());
}

TEST(KbGeneratorTest, RuleFractionProducesRules)
{
    term::SymbolTable sym;
    KbGenerator gen(sym);
    KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 200;
    spec.ruleFraction = 0.5;
    term::Program program = gen.generate(spec);
    std::size_t rules = 0;
    for (std::size_t i = 0; i < program.size(); ++i)
        rules += program.clause(i).isFact() ? 0 : 1;
    EXPECT_GT(rules, 60u);
    EXPECT_LT(rules, 140u);
}

TEST(KbGeneratorTest, WarrenProfileRatios)
{
    KbSpec spec = KbSpec::warren(1000, 10);
    EXPECT_EQ(spec.clausesPerPredicate, 1000u);
    EXPECT_NEAR(spec.ruleFraction, 0.01, 1e-9);
}

TEST(KbGeneratorTest, FamilyKbHasMotivatingPredicates)
{
    term::SymbolTable sym;
    KbGenerator gen(sym);
    term::Program program = gen.generateFamily(200);
    term::PredicateId married{sym.lookup("married_couple"), 2};
    term::PredicateId parent{sym.lookup("parent"), 2};
    term::PredicateId ancestor{sym.lookup("ancestor"), 2};
    EXPECT_GE(program.clausesOf(married).size(), 200u);
    EXPECT_FALSE(program.clausesOf(parent).empty());
    EXPECT_EQ(program.clausesOf(ancestor).size(), 2u);

    // Some married_couple facts are reflexive (true answers for the
    // shared-variable query), most are not.
    std::size_t reflexive = 0;
    for (std::size_t i : program.clausesOf(married)) {
        const term::Clause &c = program.clause(i);
        if (c.arena().atomSymbol(c.arena().arg(c.head(), 0)) ==
            c.arena().atomSymbol(c.arena().arg(c.head(), 1))) {
            ++reflexive;
        }
    }
    EXPECT_GT(reflexive, 0u);
    EXPECT_LT(reflexive, 20u);
}

TEST(QueryGeneratorTest, BoundQueriesHaveAnswers)
{
    term::SymbolTable sym;
    KbGenerator kbgen(sym);
    KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 60;
    term::Program program = kbgen.generate(spec);

    QuerySpec qspec;
    qspec.boundArgProb = 1.0;       // exact copies of stored heads
    qspec.perturbProb = 0.0;
    QueryGenerator qgen(sym, qspec);
    const auto &pred = program.predicates()[0];
    for (int i = 0; i < 10; ++i) {
        GeneratedQuery q = qgen.generate(program, pred);
        bool any = false;
        for (std::size_t c : program.clausesOf(pred))
            any |= unify::wouldUnify(q.arena, q.goal,
                                     program.clause(c));
        EXPECT_TRUE(any) << "query " << i << " has no answers";
    }
}

TEST(QueryGeneratorTest, PerturbedQueriesMiss)
{
    term::SymbolTable sym;
    KbGenerator kbgen(sym);
    KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 30;
    spec.varProb = 0.0;
    term::Program program = kbgen.generate(spec);

    QuerySpec qspec;
    qspec.boundArgProb = 0.0;
    qspec.perturbProb = 1.0;        // every argument mismatches
    QueryGenerator qgen(sym, qspec);
    const auto &pred = program.predicates()[0];
    GeneratedQuery q = qgen.generate(program, pred);
    for (std::size_t c : program.clausesOf(pred))
        EXPECT_FALSE(unify::wouldUnify(q.arena, q.goal,
                                       program.clause(c)));
}

TEST(QueryGeneratorTest, GoalMatchesPredicate)
{
    term::SymbolTable sym;
    KbGenerator kbgen(sym);
    KbSpec spec;
    spec.predicates = 2;
    spec.clausesPerPredicate = 10;
    term::Program program = kbgen.generate(spec);
    QueryGenerator qgen(sym, QuerySpec{});
    for (const auto &pred : program.predicates()) {
        GeneratedQuery q = qgen.generate(program, pred);
        ASSERT_EQ(q.arena.kind(q.goal), term::TermKind::Struct);
        EXPECT_EQ(q.arena.functor(q.goal), pred.functor);
        EXPECT_EQ(q.arena.arity(q.goal), pred.arity);
    }
}

} // namespace
} // namespace clare::workload
