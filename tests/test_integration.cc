/**
 * @file
 * End-to-end integration tests reproducing the paper's headline
 * behaviours: the two-stage filter pipeline, the rate hierarchy (FS2
 * faster than the disk), false-drop reduction between stages, result
 * memory sizing, and the full KB -> CLARE -> resolution stack.
 */

#include <gtest/gtest.h>

#include "clare/board.hh"
#include "crs/server.hh"
#include "fs2/datapath.hh"
#include "kb/knowledge_base.hh"
#include "kb/resolution.hh"
#include "term/term_writer.hh"
#include "unify/oracle.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare {
namespace {

TEST(Integration, RateHierarchyHoldsAsInSection4)
{
    // FS1 at 4.5 MB/s and FS2's worst case at ~4.25 MB/s both exceed
    // the ~2 MB/s peak SMD transfer rate: the filters keep up with the
    // disk.
    fs1::Fs1Config fs1;
    double fs2_rate = fs2::worstCaseFilterRate();
    double disk_rate =
        storage::DiskGeometry::fujitsuM2351A().transferRate;
    EXPECT_GT(fs1.scanRate, disk_rate);
    EXPECT_GT(fs2_rate, disk_rate);
    EXPECT_GT(fs1.scanRate, fs2_rate);      // 4.5 > 4.25
}

TEST(Integration, Fs2NeverOverrunsPaperDisk)
{
    // Stream a realistic clause mix through FS2 fed by the modeled
    // SMD disk: no overruns must occur (the paper's design argument).
    term::SymbolTable sym;
    term::TermWriter writer(sym);
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 500;
    spec.varProb = 0.25;
    spec.sharedVarProb = 0.5;   // maximize cross-binding operations
    spec.structProb = 0.3;
    spec.seed = 17;
    term::Program program = kbgen.generate(spec);

    const auto &pred = program.predicates()[0];
    storage::ClauseFileBuilder builder(writer);
    for (std::size_t i : program.clausesOf(pred))
        builder.add(program.clause(i));
    storage::ClauseFile file = builder.finish();
    storage::DiskModel disk(storage::DiskGeometry::fujitsuM2351A());
    disk.load(file.image());

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.3;
    qspec.sharedVarProb = 0.6;
    workload::QueryGenerator qgen(sym, qspec);
    workload::GeneratedQuery q = qgen.generate(program, pred);

    fs2::Fs2Engine engine;
    engine.setQuery(q.arena, q.goal);
    fs2::Fs2SearchResult r = engine.search(file, &disk);
    EXPECT_EQ(r.overruns, 0u);
    // Disk-bound, as designed: the filter adds at most the final
    // clause's examination beyond the stream time.
    EXPECT_GE(r.elapsed, r.diskTime);
    EXPECT_LT(r.elapsed - r.diskTime, 10 * kMicrosecond);
}

TEST(Integration, TwoStageFalseDropReduction)
{
    // Section 2.2: "After the second stage, the percentage of false
    // drops will be reduced significantly."
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::Program program;
    workload::KbGenerator kbgen(sym);
    program = kbgen.generateFamily(400, /*seed=*/3);

    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();
    crs::ClauseRetrievalServer server(sym, store);

    term::ParsedTerm goal = reader.parseTerm("married_couple(S, S)");
    crs::RetrievalRequest request;
    request.arena = &goal.arena;
    request.goal = goal.root;
    request.mode = crs::SearchMode::Fs1Only;
    crs::RetrievalResponse fs1 = server.serve(request);
    request.mode = crs::SearchMode::TwoStage;
    crs::RetrievalResponse two = server.serve(request);
    ASSERT_EQ(fs1.answers, two.answers);
    EXPECT_GT(fs1.falseDropRate(), 0.9);    // index passes everything
    EXPECT_EQ(two.falseDropRate(), 0.0);    // FS2 removes the ghosts
}

TEST(Integration, ResultMemoryWorstCaseIsOneTrack)
{
    // 32 KB Result Memory == one disk track (the paper's sizing).
    fs2::ResultMemory rm;
    storage::DiskGeometry geometry =
        storage::DiskGeometry::fujitsuM2351A();
    EXPECT_EQ(rm.slotCount() * rm.slotBytes(), geometry.trackBytes());
}

TEST(Integration, DriverRoundTripThroughBoard)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    storage::ClauseFileBuilder builder(writer);
    for (const auto &c : reader.parseProgram(
             "connect(a, b).\nconnect(b, b).\nconnect(c, d).\n"))
        builder.add(c);
    storage::ClauseFile file = builder.finish();

    engine::ClareBoard board{scw::CodewordGenerator{}};
    engine::ClareDriver driver(board);
    term::ParsedQuery q = reader.parseQuery("connect(N, N)");
    fs2::Fs2SearchResult r = driver.fs2Search(q.arena, q.goals[0], file);
    EXPECT_EQ(r.acceptedOrdinals, (std::vector<std::uint32_t>{1}));

    // Read-result mode: the captured record reparses to the clause.
    std::vector<std::uint8_t> slot;
    {
        // The board still has FS2 selected after the driver sequence.
        board.write8(engine::kVmeWindowBase,
                     engine::ControlRegister::compose(
                         engine::OperationalMode::ReadResult,
                         engine::FilterSelect::Fs2));
        slot = board.fs2().results().slot(0);
    }
    storage::ClauseRecord rec = storage::ClauseFile::parseHeader(slot, 0);
    EXPECT_EQ(rec.ordinal, 1u);
}

TEST(Integration, FullStackFamilyQueries)
{
    kb::KbConfig config;
    config.largeThreshold = 64;
    kb::KnowledgeBase base(config);

    {
        workload::KbGenerator kbgen(base.symbols());
        term::Program family = kbgen.generateFamily(120, /*seed=*/21);
        term::TermWriter writer(base.symbols());
        for (std::size_t i = 0; i < family.size(); ++i)
            base.consult(writer.writeClause(family.clause(i)) + "\n");
    }
    base.compile();
    EXPECT_TRUE(base.isLarge(term::PredicateId{
        base.symbols().lookup("married_couple"), 2}));
    EXPECT_FALSE(base.isLarge(term::PredicateId{
        base.symbols().lookup("ancestor"), 2}));

    kb::Solver solver(base);
    auto couples = solver.solve("married_couple(S, S)");
    EXPECT_FALSE(couples.empty());
    for (const auto &s : couples)
        EXPECT_EQ(s.bindings.at("S").substr(0, 1), "s");
    EXPECT_GT(solver.stats().retrievals, 0u);

    // Mixed small/large resolution: ancestor rules (small, in-memory)
    // over parent facts (large, via CLARE).
    auto ancestors = solver.solve("ancestor(h0, A)");
    auto parents = solver.solve("parent(h0, A)");
    EXPECT_GE(ancestors.size(), parents.size());
}

TEST(Integration, ClareRetrievalNeverChangesAnswers)
{
    // The bottom line: for randomized queries, every retrieval mode
    // returns exactly the clauses full unification accepts, and the
    // candidate ordering preserves clause order.
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 150;
    spec.varProb = 0.2;
    spec.sharedVarProb = 0.4;
    spec.structProb = 0.3;
    spec.seed = 23;
    term::Program program = kbgen.generate(spec);

    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();
    crs::ClauseRetrievalServer server(sym, store);

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.5;
    qspec.sharedVarProb = 0.3;
    workload::QueryGenerator qgen(sym, qspec);
    const auto &pred = program.predicates()[0];

    for (int qi = 0; qi < 6; ++qi) {
        workload::GeneratedQuery q = qgen.generate(program, pred);
        std::vector<std::uint32_t> truth;
        for (std::size_t i : program.clausesOf(pred)) {
            if (unify::wouldUnify(q.arena, q.goal, program.clause(i)))
                truth.push_back(static_cast<std::uint32_t>(i));
        }
        for (crs::SearchMode mode : {crs::SearchMode::SoftwareOnly,
                                     crs::SearchMode::Fs1Only,
                                     crs::SearchMode::Fs2Only,
                                     crs::SearchMode::TwoStage}) {
            crs::RetrievalRequest request;
            request.arena = &q.arena;
            request.goal = q.goal;
            request.mode = mode;
            crs::RetrievalResponse r = server.serve(request);
            EXPECT_EQ(r.answers, truth)
                << crs::searchModeName(mode) << " query " << qi;
            EXPECT_TRUE(std::is_sorted(r.candidates.begin(),
                                       r.candidates.end()));
        }
    }
}

} // namespace
} // namespace clare
