/**
 * @file
 * Host-interface tests: the control register encoding of section 3,
 * the VME window, filter mutual exclusivity, and the driver's
 * documented mode sequences.
 */

#include <gtest/gtest.h>

#include "clare/board.hh"
#include "clare/control_register.hh"
#include "support/logging.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"

namespace clare::engine {
namespace {

TEST(ControlRegisterTest, ModeTableFromPaper)
{
    // | mode             | b0 | b1 |
    ControlRegister reg;
    reg.write(0x00);    // b0=0 b1=0
    EXPECT_EQ(reg.mode(), OperationalMode::ReadResult);
    reg.write(0x02);    // b0=0 b1=1
    EXPECT_EQ(reg.mode(), OperationalMode::Search);
    reg.write(0x01);    // b0=1 b1=0
    EXPECT_EQ(reg.mode(), OperationalMode::Microprogramming);
    reg.write(0x03);    // b0=1 b1=1
    EXPECT_EQ(reg.mode(), OperationalMode::SetQuery);
}

TEST(ControlRegisterTest, FilterSelectBit)
{
    ControlRegister reg;
    reg.write(0x00);
    EXPECT_EQ(reg.filter(), FilterSelect::Fs1);
    reg.write(0x04);
    EXPECT_EQ(reg.filter(), FilterSelect::Fs2);
}

TEST(ControlRegisterTest, MatchFoundBit)
{
    ControlRegister reg;
    EXPECT_FALSE(reg.matchFound());
    reg.setMatchFound(true);
    EXPECT_TRUE(reg.matchFound());
    EXPECT_EQ(reg.value() & 0x80, 0x80);
    reg.setMatchFound(false);
    EXPECT_FALSE(reg.matchFound());
}

TEST(ControlRegisterTest, ComposeRoundTrip)
{
    for (auto mode : {OperationalMode::ReadResult,
                      OperationalMode::Search,
                      OperationalMode::Microprogramming,
                      OperationalMode::SetQuery}) {
        for (auto filter : {FilterSelect::Fs1, FilterSelect::Fs2}) {
            ControlRegister reg;
            reg.write(ControlRegister::compose(mode, filter));
            EXPECT_EQ(reg.mode(), mode);
            EXPECT_EQ(reg.filter(), filter);
        }
    }
}

TEST(ControlRegisterTest, ModeNames)
{
    EXPECT_STREQ(operationalModeName(OperationalMode::Search), "Search");
    EXPECT_STREQ(operationalModeName(OperationalMode::SetQuery),
                 "Set Query");
}

class BoardTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    term::TermWriter writer{sym};
    ClareBoard board{scw::CodewordGenerator{}};
};

TEST_F(BoardTest, WindowBoundsEnforced)
{
    EXPECT_THROW(board.read8(kVmeWindowBase - 1), FatalError);
    EXPECT_THROW(board.write8(kVmeWindowEnd + 1, 0), FatalError);
}

TEST_F(BoardTest, ControlRegisterReadBack)
{
    board.write8(kVmeWindowBase, 0x06);     // Search, FS2
    EXPECT_EQ(board.read8(kVmeWindowBase) & 0x7f, 0x06);
    EXPECT_EQ(board.mode(), OperationalMode::Search);
    EXPECT_EQ(board.filter(), FilterSelect::Fs2);
}

TEST_F(BoardTest, HostCannotSetMatchBit)
{
    board.write8(kVmeWindowBase, 0xff);
    EXPECT_FALSE(board.read8(kVmeWindowBase) & 0x80);
    board.noteSearchOutcome(true);
    EXPECT_TRUE(board.read8(kVmeWindowBase) & 0x80);
    // Mode rewrites preserve the hardware-owned bit.
    board.write8(kVmeWindowBase, 0x00);
    EXPECT_TRUE(board.read8(kVmeWindowBase) & 0x80);
}

TEST_F(BoardTest, FiltersAreMutuallyExclusive)
{
    board.write8(kVmeWindowBase,
                 ControlRegister::compose(OperationalMode::Search,
                                          FilterSelect::Fs1));
    EXPECT_DEATH(board.fs2(), "mutually exclusive");
}

TEST_F(BoardTest, DriverSequenceForFs2)
{
    storage::ClauseFileBuilder builder(writer);
    for (const auto &c : reader.parseProgram(
             "married_couple(john, mary).\n"
             "married_couple(pat, pat).\n"))
        builder.add(c);
    storage::ClauseFile file = builder.finish();

    term::ParsedQuery q = reader.parseQuery("married_couple(S, S)");
    ClareDriver driver(board);
    fs2::Fs2SearchResult result = driver.fs2Search(q.arena, q.goals[0],
                                                   file);
    EXPECT_EQ(result.acceptedOrdinals,
              (std::vector<std::uint32_t>{1}));
    // The documented sequence: Microprogramming -> Set Query ->
    // Search -> Read Result.
    ASSERT_EQ(driver.lastSequence().size(), 4u);
    EXPECT_EQ(driver.lastSequence()[0],
              OperationalMode::Microprogramming);
    EXPECT_EQ(driver.lastSequence()[1], OperationalMode::SetQuery);
    EXPECT_EQ(driver.lastSequence()[2], OperationalMode::Search);
    EXPECT_EQ(driver.lastSequence()[3], OperationalMode::ReadResult);
    // b7 reflects the successful search.
    EXPECT_TRUE(board.read8(kVmeWindowBase) & 0x80);
}

TEST_F(BoardTest, DriverClearsMatchBitStaysOnMiss)
{
    storage::ClauseFileBuilder builder(writer);
    builder.add(reader.parseClause("p(a)."));
    storage::ClauseFile file = builder.finish();
    term::ParsedQuery q = reader.parseQuery("p(b)");
    ClareDriver driver(board);
    fs2::Fs2SearchResult result = driver.fs2Search(q.arena, q.goals[0],
                                                   file);
    EXPECT_TRUE(result.acceptedOrdinals.empty());
    EXPECT_FALSE(board.read8(kVmeWindowBase) & 0x80);
}

TEST_F(BoardTest, DriverFs1Sequence)
{
    storage::ClauseFileBuilder builder(writer);
    std::vector<scw::Signature> sigs;
    scw::CodewordGenerator gen;
    for (const auto &c : reader.parseProgram("p(a).\np(b).\n")) {
        sigs.push_back(gen.encode(c.arena(), c.head()));
        builder.add(c);
    }
    storage::ClauseFile file = builder.finish();
    scw::SecondaryFile index = scw::SecondaryFile::build(gen, sigs,
                                                         file);
    term::ParsedTerm q = reader.parseTerm("p(a)");
    ClareDriver driver(board);
    fs1::Fs1Result r = driver.fs1Search(gen.encode(q.arena, q.root),
                                        index);
    EXPECT_EQ(r.ordinals.size(), 1u);
    EXPECT_TRUE(board.read8(kVmeWindowBase) & 0x80);
}

TEST(VmeWindow, PaperAddressRange)
{
    EXPECT_EQ(kVmeWindowBase, 0xffff7e00u);
    EXPECT_EQ(kVmeWindowEnd, 0xffff7fffu);
    // The hex range spans 512 bytes (the paper's "128k" note is
    // inconsistent with its own hex range; we follow the hex range).
    EXPECT_EQ(kVmeWindowBytes, 512u);
}

} // namespace
} // namespace clare::engine
