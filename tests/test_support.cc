/**
 * @file
 * Unit tests for the support library: logging, simulated time, stats,
 * deterministic RNG, bit vectors and the table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/bitvec.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/sim_time.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace clare {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(clare_fatal("bad input %d", 42), FatalError);
}

TEST(Logging, FatalMessageContainsTextAndLocation)
{
    try {
        clare_fatal("code %d", 7);
        FAIL() << "should have thrown";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("code 7"), std::string::npos);
        EXPECT_NE(msg.find("test_support.cc"), std::string::npos);
    }
}

TEST(Logging, FormatHelper)
{
    EXPECT_EQ(detail::format("%s-%d", "x", 3), "x-3");
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    clare_assert(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

TEST(SimTime, UnitRatios)
{
    EXPECT_EQ(kNanosecond, 1000u * kPicosecond);
    EXPECT_EQ(kSecond, 1000u * kMillisecond);
    EXPECT_EQ(nanoseconds(105), 105u * kNanosecond);
    EXPECT_EQ(toNanoseconds(nanoseconds(235)), 235u);
}

TEST(SimTime, BytesPerSecond)
{
    // 1 byte per 235 ns is ~4.2553 MB/s (the paper's worst case).
    double rate = bytesPerSecond(1, nanoseconds(235));
    EXPECT_NEAR(rate, 4.2553e6, 1e3);
    EXPECT_EQ(bytesPerSecond(100, 0), 0.0);
}

TEST(SimTime, ClockAdvances)
{
    SimClock clock;
    EXPECT_EQ(clock.now(), 0u);
    clock.advance(10);
    EXPECT_EQ(clock.now(), 10u);
    EXPECT_EQ(clock.advanceTo(5), 0u);      // never backwards
    EXPECT_EQ(clock.now(), 10u);
    EXPECT_EQ(clock.advanceTo(25), 15u);
    EXPECT_EQ(clock.now(), 25u);
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
}

TEST(Stats, ScalarAccumulates)
{
    StatGroup group("g");
    Scalar &s = group.scalar("events");
    ++s;
    s += 4;
    EXPECT_EQ(s.value(), 5u);
    // Same name returns the same stat.
    EXPECT_EQ(group.scalar("events").value(), 5u);
}

TEST(Stats, DistributionMoments)
{
    StatGroup group("g");
    Distribution &d = group.distribution("lat");
    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatGroup group("fs2");
    group.scalar("hits", "matches found") += 12;
    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("fs2.hits"), std::string::npos);
    EXPECT_NE(os.str().find("12"), std::string::npos);
    EXPECT_NE(os.str().find("matches found"), std::string::npos);
}

TEST(Stats, ResetZeroes)
{
    StatGroup group("g");
    group.scalar("a") += 3;
    group.distribution("d").sample(1.0);
    group.reset();
    EXPECT_EQ(group.scalar("a").value(), 0u);
    EXPECT_EQ(group.distribution("d").count(), 0u);
}

TEST(Random, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Random, BelowInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, ChanceExtremes)
{
    Rng rng(1);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Random, IdentifierShape)
{
    Rng rng(4);
    std::string id = rng.identifier(8);
    EXPECT_EQ(id.size(), 8u);
    for (char c : id)
        EXPECT_TRUE(c >= 'a' && c <= 'z');
}

TEST(BitVec, SetTestClear)
{
    BitVec v(70);
    EXPECT_TRUE(v.none());
    v.set(0);
    v.set(69);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(69));
    EXPECT_FALSE(v.test(35));
    EXPECT_EQ(v.popcount(), 2u);
    v.clear(0);
    EXPECT_FALSE(v.test(0));
}

TEST(BitVec, SubsetSemantics)
{
    BitVec a(64);
    BitVec b(64);
    a.set(3);
    b.set(3);
    b.set(9);
    EXPECT_TRUE(a.subsetOf(b));
    EXPECT_FALSE(b.subsetOf(a));
    BitVec empty(64);
    EXPECT_TRUE(empty.subsetOf(a));
}

TEST(BitVec, OrAndOperators)
{
    BitVec a(40);
    BitVec b(40);
    a.set(1);
    b.set(2);
    a |= b;
    EXPECT_TRUE(a.test(1));
    EXPECT_TRUE(a.test(2));
    a &= b;
    EXPECT_FALSE(a.test(1));
    EXPECT_TRUE(a.test(2));
}

TEST(BitVec, AndNotIsZeroMatchesSubsetOf)
{
    BitVec a(130);
    BitVec b(130);
    EXPECT_TRUE(BitVec::andNotIsZero(a, b));    // empty a passes
    a.set(5);
    a.set(128);
    EXPECT_FALSE(BitVec::andNotIsZero(a, b));
    b.set(5);
    EXPECT_FALSE(BitVec::andNotIsZero(a, b));   // bit 128 still missing
    b.set(128);
    EXPECT_TRUE(BitVec::andNotIsZero(a, b));
    b.set(77);                                   // extra bits in b are fine
    EXPECT_TRUE(BitVec::andNotIsZero(a, b));
    EXPECT_EQ(BitVec::andNotIsZero(a, b), a.subsetOf(b));
    EXPECT_EQ(BitVec::andNotIsZero(b, a), b.subsetOf(a));
}

TEST(BitVec, PopcountCountsAcrossWordBoundaries)
{
    BitVec v(200);
    EXPECT_EQ(v.popcount(), 0u);
    for (std::size_t bit : {0u, 63u, 64u, 127u, 128u, 199u})
        v.set(bit);
    EXPECT_EQ(v.popcount(), 6u);
    v.clear(64);
    EXPECT_EQ(v.popcount(), 5u);
}

TEST(BitVec, WordAccessorsExposeBackingWords)
{
    BitVec v(70);
    v.set(1);
    v.set(65);
    ASSERT_EQ(v.wordCount(), 2u);
    EXPECT_EQ(v.word(0), std::uint64_t{1} << 1);
    EXPECT_EQ(v.word(1), std::uint64_t{1} << 1);
}

TEST(BitVec, DeserializeIntoReusesBackingWords)
{
    BitVec v(100);
    v.set(42);
    v.set(99);
    std::vector<std::uint8_t> bytes;
    v.serialize(bytes);

    BitVec scratch(100);
    scratch.set(7);
    std::size_t offset = 0;
    scratch.deserializeInto(bytes, offset, 100);
    EXPECT_EQ(offset, bytes.size());
    EXPECT_TRUE(scratch == v);
    EXPECT_FALSE(scratch.test(7));
}

TEST(BitVec, SerializeRoundTrip)
{
    BitVec v(100);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(99);
    std::vector<std::uint8_t> bytes;
    v.serialize(bytes);
    EXPECT_EQ(bytes.size(), BitVec::serializedBytes(100));
    std::size_t offset = 0;
    BitVec w = BitVec::deserialize(bytes, offset, 100);
    EXPECT_EQ(offset, bytes.size());
    EXPECT_TRUE(v == w);
}

TEST(BitVec, ToStringMsbFirst)
{
    BitVec v(4);
    v.set(0);
    EXPECT_EQ(v.toString(), "0001");
    v.set(3);
    EXPECT_EQ(v.toString(), "1001");
}

TEST(Table, RendersAlignedCells)
{
    Table t("Demo");
    t.header({"Op", "ns"});
    t.row({"MATCH", "105"});
    t.row({"QUERY_CROSS_BOUND_FETCH", "235"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("Demo"), std::string::npos);
    EXPECT_NE(s.find("MATCH"), std::string::npos);
    EXPECT_NE(s.find("235"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(4.25, 2), "4.25");
    EXPECT_EQ(Table::num(std::uint64_t{1234}), "1234");
}

} // namespace
} // namespace clare
