/**
 * @file
 * Randomized round-trip properties ("fuzz light"): arbitrary terms —
 * including operator-functor structures, negative literals, quoted
 * atoms, deep nesting and partial lists — must survive
 * write -> parse -> write as a fixed point, and their PIF encodings
 * must survive serialize -> deserialize exactly.
 */

#include <gtest/gtest.h>

#include "pif/encoder.hh"
#include "support/random.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"

namespace clare {
namespace {

/** Random term generator biased toward nasty shapes. */
class TermFuzzer
{
  public:
    TermFuzzer(term::SymbolTable &sym, std::uint64_t seed)
        : sym_(sym), rng_(seed)
    {}

    term::TermRef
    generate(term::TermArena &arena, int depth = 0)
    {
        double roll = rng_.uniform();
        if (depth >= 4)
            roll *= 0.55;   // force leaves at depth

        if (roll < 0.18) {
            static const char *atoms[] = {
                "a", "foo", "bar_baz", "q9", "[]", "mod", "is",
                "odd atom", "it's", "+", "with\\slash",
            };
            return arena.makeAtom(sym_.intern(
                atoms[rng_.below(std::size(atoms))]));
        }
        if (roll < 0.30)
            return arena.makeInt(rng_.range(-1000000, 1000000));
        if (roll < 0.36) {
            return arena.makeFloat(sym_.internFloat(
                static_cast<double>(rng_.range(-4000, 4000)) / 16.0));
        }
        if (roll < 0.46) {
            term::VarId v = static_cast<term::VarId>(rng_.below(6));
            return arena.makeVar(v, sym_.intern(
                "V" + std::to_string(v)));
        }
        if (roll < 0.70) {
            // Structures, sometimes with operator functors.
            static const char *functors[] = {
                "f", "g", "wrap", "+", "-", "*", "is", "=", "<",
                "\\+",
            };
            const char *name = functors[rng_.below(std::size(functors))];
            std::uint32_t arity;
            if (std::string(name) == "\\+") {
                arity = 1;
            } else if (std::string(name).find_first_of(
                           "+-*=<") != std::string::npos ||
                       std::string(name) == "is") {
                arity = 2;
            } else {
                arity = static_cast<std::uint32_t>(rng_.range(1, 3));
            }
            std::vector<term::TermRef> args;
            for (std::uint32_t i = 0; i < arity; ++i)
                args.push_back(generate(arena, depth + 1));
            return arena.makeStruct(sym_.intern(name), args);
        }
        // Lists, sometimes partial.
        std::uint32_t len = static_cast<std::uint32_t>(rng_.range(1, 4));
        std::vector<term::TermRef> elems;
        for (std::uint32_t i = 0; i < len; ++i)
            elems.push_back(generate(arena, depth + 1));
        term::TermRef tail = term::kNoTerm;
        if (rng_.chance(0.3)) {
            term::VarId v = static_cast<term::VarId>(6 + rng_.below(3));
            tail = arena.makeVar(v, sym_.intern(
                "T" + std::to_string(v)));
        }
        return arena.makeList(elems, tail);
    }

  private:
    term::SymbolTable &sym_;
    Rng rng_;
};

class FuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzRoundTrip, WriteParseWriteIsFixedPoint)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    TermFuzzer fuzzer(sym, GetParam());

    for (int i = 0; i < 200; ++i) {
        term::TermArena arena;
        term::TermRef t = fuzzer.generate(arena);
        std::string first = writer.write(arena, t);
        term::ParsedTerm back;
        ASSERT_NO_THROW(back = reader.parseTerm(first))
            << "unparseable: " << first;
        std::string second = writer.write(back.arena, back.root);
        EXPECT_EQ(second, first) << "iteration " << i;
    }
}

TEST_P(FuzzRoundTrip, PifWireRoundTrip)
{
    term::SymbolTable sym;
    TermFuzzer fuzzer(sym, GetParam() ^ 0x9e3779b9u);
    pif::Encoder encoder;

    for (int i = 0; i < 200; ++i) {
        term::TermArena arena;
        std::vector<term::TermRef> args;
        std::uint32_t arity = 1 + (i % 4);
        for (std::uint32_t a = 0; a < arity; ++a)
            args.push_back(fuzzer.generate(arena));
        term::TermRef head = arena.makeStruct(sym.intern("pred"), args);

        for (pif::Side side : {pif::Side::Db, pif::Side::Query}) {
            pif::EncodedArgs encoded = encoder.encodeArgs(arena, head,
                                                          side);
            std::vector<std::uint8_t> wire;
            for (const auto &item : encoded.items)
                pif::serializeItem(item, wire);
            std::size_t at = 0;
            std::size_t n = 0;
            while (at < wire.size()) {
                pif::PifItem item = pif::deserializeItem(wire, at);
                ASSERT_LT(n, encoded.items.size());
                EXPECT_EQ(item, encoded.items[n]);
                ++n;
            }
            EXPECT_EQ(n, encoded.items.size());
        }
    }
}

TEST_P(FuzzRoundTrip, ClauseSourceTextReparses)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    TermFuzzer fuzzer(sym, GetParam() + 17);

    for (int i = 0; i < 100; ++i) {
        term::TermArena arena;
        std::vector<term::TermRef> args;
        for (int a = 0; a < 2; ++a)
            args.push_back(fuzzer.generate(arena));
        term::TermRef head = arena.makeStruct(sym.intern("h"), args);
        std::vector<term::TermRef> body;
        if (i % 3 == 0)
            body.push_back(fuzzer.generate(arena, 2));

        // Bodies must be callable; wrap non-callable random terms.
        if (!body.empty()) {
            term::TermKind k = arena.kind(body[0]);
            if (k != term::TermKind::Atom &&
                k != term::TermKind::Struct) {
                term::TermRef g = body[0];
                body[0] = arena.makeStruct(sym.intern("call_wrap"),
                                           std::span(&g, 1));
            }
        }
        term::Clause clause(std::move(arena), head, std::move(body));
        std::string text = writer.writeClause(clause);
        term::Clause back;
        ASSERT_NO_THROW(back = reader.parseClause(text))
            << "unparseable clause: " << text;
        EXPECT_EQ(writer.writeClause(back), text);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 12345u,
                                           0xdeadbeefu));

} // namespace
} // namespace clare
