/**
 * @file
 * Randomized round-trip properties ("fuzz light"): arbitrary terms —
 * including operator-functor structures, negative literals, quoted
 * atoms, deep nesting and partial lists — must survive
 * write -> parse -> write as a fixed point, and their PIF encodings
 * must survive serialize -> deserialize exactly.
 *
 * The store-corruption fuzzer and the injected-fault sweep (ctest
 * label: faults) extend the same idea to the robustness layer: any
 * byte-level damage to a saved store, and any fault seed against a
 * live server, must end in a typed clare::Error or a correct answer —
 * never a crash, an abort, or silently wrong results.  Saved stores
 * carry the v3 bit-sliced plane section, so the corruption fuzzer also
 * exercises damaged planes; when a damaged store loads anyway, both
 * the row-major and the sliced scan path must answer identically.
 *
 * The sliced-oracle fuzz drives the word-parallel SlicedMatcher
 * against the structural PlaMatcher over random generator geometries,
 * arities (including past the encoding limit), mask densities, and
 * entry counts — the two matchers must agree entry-for-entry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crs/server.hh"
#include "crs/store_io.hh"
#include "crs/transaction.hh"
#include "fs1/pla_matcher.hh"
#include "fs1/sliced_matcher.hh"
#include "pif/encoder.hh"
#include "scw/bit_sliced_index.hh"
#include "storage/file_io.hh"
#include "support/fault_injector.hh"
#include "support/random.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"
#include "unify/oracle.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare {
namespace {

/** One goal through the unified front door. */
crs::RetrievalResponse
serveOne(crs::ClauseRetrievalServer &server, const term::TermArena &arena,
         term::TermRef goal, std::optional<crs::SearchMode> mode = {})
{
    crs::RetrievalRequest request;
    request.arena = &arena;
    request.goal = goal;
    request.mode = mode;
    return server.serve(request);
}

/** Random term generator biased toward nasty shapes. */
class TermFuzzer
{
  public:
    TermFuzzer(term::SymbolTable &sym, std::uint64_t seed)
        : sym_(sym), rng_(seed)
    {}

    term::TermRef
    generate(term::TermArena &arena, int depth = 0)
    {
        double roll = rng_.uniform();
        if (depth >= 4)
            roll *= 0.55;   // force leaves at depth

        if (roll < 0.18) {
            static const char *atoms[] = {
                "a", "foo", "bar_baz", "q9", "[]", "mod", "is",
                "odd atom", "it's", "+", "with\\slash",
            };
            return arena.makeAtom(sym_.intern(
                atoms[rng_.below(std::size(atoms))]));
        }
        if (roll < 0.30)
            return arena.makeInt(rng_.range(-1000000, 1000000));
        if (roll < 0.36) {
            return arena.makeFloat(sym_.internFloat(
                static_cast<double>(rng_.range(-4000, 4000)) / 16.0));
        }
        if (roll < 0.46) {
            term::VarId v = static_cast<term::VarId>(rng_.below(6));
            return arena.makeVar(v, sym_.intern(
                "V" + std::to_string(v)));
        }
        if (roll < 0.70) {
            // Structures, sometimes with operator functors.
            static const char *functors[] = {
                "f", "g", "wrap", "+", "-", "*", "is", "=", "<",
                "\\+",
            };
            const char *name = functors[rng_.below(std::size(functors))];
            std::uint32_t arity;
            if (std::string(name) == "\\+") {
                arity = 1;
            } else if (std::string(name).find_first_of(
                           "+-*=<") != std::string::npos ||
                       std::string(name) == "is") {
                arity = 2;
            } else {
                arity = static_cast<std::uint32_t>(rng_.range(1, 3));
            }
            std::vector<term::TermRef> args;
            for (std::uint32_t i = 0; i < arity; ++i)
                args.push_back(generate(arena, depth + 1));
            return arena.makeStruct(sym_.intern(name), args);
        }
        // Lists, sometimes partial.
        std::uint32_t len = static_cast<std::uint32_t>(rng_.range(1, 4));
        std::vector<term::TermRef> elems;
        for (std::uint32_t i = 0; i < len; ++i)
            elems.push_back(generate(arena, depth + 1));
        term::TermRef tail = term::kNoTerm;
        if (rng_.chance(0.3)) {
            term::VarId v = static_cast<term::VarId>(6 + rng_.below(3));
            tail = arena.makeVar(v, sym_.intern(
                "T" + std::to_string(v)));
        }
        return arena.makeList(elems, tail);
    }

  private:
    term::SymbolTable &sym_;
    Rng rng_;
};

class FuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzRoundTrip, WriteParseWriteIsFixedPoint)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    TermFuzzer fuzzer(sym, GetParam());

    for (int i = 0; i < 200; ++i) {
        term::TermArena arena;
        term::TermRef t = fuzzer.generate(arena);
        std::string first = writer.write(arena, t);
        term::ParsedTerm back;
        ASSERT_NO_THROW(back = reader.parseTerm(first))
            << "unparseable: " << first;
        std::string second = writer.write(back.arena, back.root);
        EXPECT_EQ(second, first) << "iteration " << i;
    }
}

TEST_P(FuzzRoundTrip, PifWireRoundTrip)
{
    term::SymbolTable sym;
    TermFuzzer fuzzer(sym, GetParam() ^ 0x9e3779b9u);
    pif::Encoder encoder;

    for (int i = 0; i < 200; ++i) {
        term::TermArena arena;
        std::vector<term::TermRef> args;
        std::uint32_t arity = 1 + (i % 4);
        for (std::uint32_t a = 0; a < arity; ++a)
            args.push_back(fuzzer.generate(arena));
        term::TermRef head = arena.makeStruct(sym.intern("pred"), args);

        for (pif::Side side : {pif::Side::Db, pif::Side::Query}) {
            pif::EncodedArgs encoded = encoder.encodeArgs(arena, head,
                                                          side);
            std::vector<std::uint8_t> wire;
            for (const auto &item : encoded.items)
                pif::serializeItem(item, wire);
            std::size_t at = 0;
            std::size_t n = 0;
            while (at < wire.size()) {
                pif::PifItem item = pif::deserializeItem(wire, at);
                ASSERT_LT(n, encoded.items.size());
                EXPECT_EQ(item, encoded.items[n]);
                ++n;
            }
            EXPECT_EQ(n, encoded.items.size());
        }
    }
}

TEST_P(FuzzRoundTrip, ClauseSourceTextReparses)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    TermFuzzer fuzzer(sym, GetParam() + 17);

    for (int i = 0; i < 100; ++i) {
        term::TermArena arena;
        std::vector<term::TermRef> args;
        for (int a = 0; a < 2; ++a)
            args.push_back(fuzzer.generate(arena));
        term::TermRef head = arena.makeStruct(sym.intern("h"), args);
        std::vector<term::TermRef> body;
        if (i % 3 == 0)
            body.push_back(fuzzer.generate(arena, 2));

        // Bodies must be callable; wrap non-callable random terms.
        if (!body.empty()) {
            term::TermKind k = arena.kind(body[0]);
            if (k != term::TermKind::Atom &&
                k != term::TermKind::Struct) {
                term::TermRef g = body[0];
                body[0] = arena.makeStruct(sym.intern("call_wrap"),
                                           std::span(&g, 1));
            }
        }
        term::Clause clause(std::move(arena), head, std::move(body));
        std::string text = writer.writeClause(clause);
        term::Clause back;
        ASSERT_NO_THROW(back = reader.parseClause(text))
            << "unparseable clause: " << text;
        EXPECT_EQ(writer.writeClause(back), text);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 12345u,
                                           0xdeadbeefu));

// ---------------------------------------------------------------------
// Store corruption and injected-fault sweeps.
// ---------------------------------------------------------------------

/** The per-mode answer sets of one fixed query against a server. */
std::vector<std::vector<std::uint32_t>>
answersPerMode(crs::ClauseRetrievalServer &server,
               term::SymbolTable &sym, const char *query)
{
    term::TermReader reader(sym);
    term::ParsedTerm q = reader.parseTerm(query);
    std::vector<std::vector<std::uint32_t>> out;
    for (crs::SearchMode mode : {crs::SearchMode::SoftwareOnly,
                                 crs::SearchMode::Fs1Only,
                                 crs::SearchMode::Fs2Only,
                                 crs::SearchMode::TwoStage})
        out.push_back(serveOne(server, q.arena, q.root, mode).answers);
    return out;
}

class StoreCorruptionFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    std::string dir_ = ::testing::TempDir() + "clare_fuzz_store";
    term::SymbolTable sym_;
    std::unique_ptr<crs::PredicateStore> store_;
    /** Pristine content of every store file, for restore after damage. */
    std::map<std::string, std::vector<std::uint8_t>> pristine_;
    std::vector<std::string> files_;
    std::vector<std::vector<std::uint32_t>> expected_;

    void
    SetUp() override
    {
        term::TermReader reader(sym_);
        term::Program program;
        for (auto &c : reader.parseProgram(
                 "p(a, 1).\np(b, 2).\np(a, 3).\np(c, 4).\n"
                 "q(a).\nq(b).\n"))
            program.add(std::move(c));
        store_ = std::make_unique<crs::PredicateStore>(
            sym_, scw::CodewordGenerator{});
        store_->addProgram(program);
        store_->finalize();
        crs::saveStore(dir_, *store_, sym_);

        for (const auto &dirent :
             std::filesystem::directory_iterator(dir_)) {
            std::string path = dirent.path().string();
            pristine_[path] = storage::readBytes(path);
            files_.push_back(path);
        }
        std::sort(files_.begin(), files_.end()); // iteration order varies

        crs::ClauseRetrievalServer server(sym_, *store_);
        expected_ = answersPerMode(server, sym_, "p(a, X)");
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
};

TEST_P(StoreCorruptionFuzz, DamagedStoresFailTypedOrAnswerCorrectly)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 40; ++iter) {
        const std::string &victim = files_[rng.below(files_.size())];
        std::vector<std::uint8_t> bytes = pristine_[victim];
        switch (rng.below(3)) {
        case 0: // truncate
            bytes.resize(rng.below(bytes.size() + 1));
            break;
        case 1: { // flip one bit
            std::uint64_t bit = rng.below(bytes.size() * 8);
            bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
            break;
        }
        default: { // zero a byte range
            std::size_t at = rng.below(bytes.size());
            std::size_t n = std::min<std::size_t>(
                bytes.size() - at,
                static_cast<std::size_t>(rng.range(1, 16)));
            std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                      bytes.begin() + static_cast<std::ptrdiff_t>(at + n),
                      0);
            break;
        }
        }
        storage::writeBytes(victim, bytes);

        try {
            term::SymbolTable fresh;
            crs::PredicateStore loaded = crs::loadStore(dir_, fresh);
            // The mutation slipped past the load (e.g. it re-created
            // the original bytes): retrieval must still be correct —
            // through the row-major path and through the loaded
            // bit-sliced plane alike.
            crs::ClauseRetrievalServer server(fresh, loaded);
            EXPECT_EQ(answersPerMode(server, fresh, "p(a, X)"),
                      expected_)
                << "iteration " << iter << " on " << victim;
            crs::CrsConfig sliced_cfg;
            sliced_cfg.fs1.sliced = true;
            crs::ClauseRetrievalServer sliced(fresh, loaded, sliced_cfg);
            EXPECT_EQ(answersPerMode(sliced, fresh, "p(a, X)"),
                      expected_)
                << "sliced, iteration " << iter << " on " << victim;
        } catch (const Error &) {
            // Typed rejection is the expected outcome.  Anything else
            // — a crash, an abort, an unknown exception — fails the
            // test at the harness level.
        }

        storage::writeBytes(victim, pristine_[victim]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreCorruptionFuzz,
                         ::testing::Values(101u, 202u, 303u));

TEST(InjectedFaultSweep, NoSeedCrashesTheServer)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    std::string text;
    for (int i = 0; i < 80; ++i) {
        text += "p(k" + std::to_string(i % 6) + ", v" +
            std::to_string(i) + ").\n";
    }
    term::Program program;
    for (auto &c : reader.parseProgram(text))
        program.add(std::move(c));
    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();

    crs::ClauseRetrievalServer clean(sym, store);
    std::vector<std::vector<std::uint32_t>> expected =
        answersPerMode(clean, sym, "p(k2, V)");

    support::FaultConfig config;
    config.bitFlipRate = 0.3;
    config.transientReadRate = 0.3;
    config.delayRate = 0.2;
    int served = 0;
    for (config.seed = 1; config.seed <= 48; ++config.seed) {
        support::FaultInjector inj(config);
        crs::CrsConfig cfg;
        cfg.faults = &inj;
        crs::ClauseRetrievalServer faulty(sym, store, cfg);
        term::ParsedTerm q = reader.parseTerm("p(k2, V)");
        const crs::SearchMode modes[] = {crs::SearchMode::SoftwareOnly,
                                         crs::SearchMode::Fs1Only,
                                         crs::SearchMode::Fs2Only,
                                         crs::SearchMode::TwoStage};
        for (std::size_t m = 0; m < 4; ++m) {
            try {
                crs::RetrievalResponse r = serveOne(
                    faulty, q.arena, q.root, modes[m]);
                ++served;
                // Degraded or not, answers never change.
                EXPECT_EQ(r.answers, expected[m])
                    << "seed " << config.seed << " mode " << m;
            } catch (const IoError &) {
                // Bounded retries exhausted: typed, not a crash.
            }
        }
    }
    // The sweep must not degenerate into all-permanent failures.
    EXPECT_GT(served, 0);
}

// ---------------------------------------------------------------------
// Cache-interleave fuzz: random queries against a cache-enabled server
// with invalidating transactions mixed in, every answer checked
// against the ground-truth unification oracle.
// ---------------------------------------------------------------------

class CacheInterleaveFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheInterleaveFuzz, CachedAnswersAlwaysMatchTheOracle)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    std::string text;
    for (int p = 0; p < 3; ++p)
        for (int i = 0; i < 40; ++i) {
            text += "p" + std::to_string(p) + "(k" +
                std::to_string(i % 7) + ", v" + std::to_string(i % 11) +
                ").\n";
        }
    term::Program program;
    for (auto &c : reader.parseProgram(text))
        program.add(std::move(c));
    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();

    crs::CrsConfig config;
    config.cache.enabled = true;
    config.cache.goalCapacity = 8;      // small: force evictions too
    config.cache.survivorCapacity = 8;
    crs::ClauseRetrievalServer server(sym, store, config);
    crs::ClauseRetrievalServer plain(sym, store);
    crs::LockManager locks;

    // Goal pool: ground, half-ground, and fully variable shapes.
    std::vector<term::ParsedTerm> goals;
    for (int p = 0; p < 3; ++p) {
        for (int k = 0; k < 7; k += 2) {
            goals.push_back(reader.parseTerm(
                "p" + std::to_string(p) + "(k" + std::to_string(k) +
                ", X)"));
            goals.push_back(reader.parseTerm(
                "p" + std::to_string(p) + "(k" + std::to_string(k) +
                ", v" + std::to_string(k) + ")"));
        }
        goals.push_back(reader.parseTerm(
            "p" + std::to_string(p) + "(X, Y)"));
    }

    const crs::SearchMode modes[] = {crs::SearchMode::SoftwareOnly,
                                     crs::SearchMode::Fs1Only,
                                     crs::SearchMode::Fs2Only,
                                     crs::SearchMode::TwoStage};
    Rng rng(GetParam());
    for (int iter = 0; iter < 300; ++iter) {
        if (rng.chance(0.15)) {
            // An invalidating update transaction on a random predicate.
            term::PredicateId pred{
                sym.intern("p" + std::to_string(rng.below(3))), 2};
            crs::Transaction tx(locks, 1, &server);
            ASSERT_TRUE(tx.acquire(pred, crs::LockKind::Exclusive));
            tx.commit();
            continue;
        }
        const term::ParsedTerm &goal = goals[rng.below(goals.size())];
        crs::RetrievalRequest request;
        request.arena = &goal.arena;
        request.goal = goal.root;
        request.mode = modes[rng.below(4)];
        request.bypassCache = rng.chance(0.1);
        crs::RetrievalResponse got = server.serve(request);

        // Ground truth, recomputed from the program: the per-predicate
        // ordinals whose clause head truly unifies with the goal.
        term::PredicateId pred{goal.arena.functor(goal.root),
                               goal.arena.arity(goal.root)};
        std::vector<std::uint32_t> expected;
        std::uint32_t ordinal = 0;
        for (std::size_t ci : program.clausesOf(pred)) {
            if (unify::wouldUnify(goal.arena, goal.root,
                                  program.clause(ci)))
                expected.push_back(ordinal);
            ++ordinal;
        }
        EXPECT_EQ(got.answers, expected)
            << "iteration " << iter << " mode "
            << static_cast<int>(*request.mode)
            << (request.bypassCache ? " (bypass)" : "");

        // And the cached pipeline never diverges from a cache-free
        // server on any payload field.
        crs::RetrievalRequest same = request;
        same.bypassCache = false;
        crs::RetrievalResponse ref = plain.serve(same);
        EXPECT_EQ(got.candidates, ref.candidates) << "iteration " << iter;
        EXPECT_EQ(got.answers, ref.answers) << "iteration " << iter;
        EXPECT_EQ(got.indexEntriesScanned, ref.indexEntriesScanned)
            << "iteration " << iter;
        EXPECT_EQ(got.clausesExamined, ref.clausesExamined)
            << "iteration " << iter;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheInterleaveFuzz,
                         ::testing::Values(7u, 77u, 777u));

// ---------------------------------------------------------------------
// Sliced-oracle fuzz: the word-parallel matcher vs the PLA plane.
// ---------------------------------------------------------------------

class SlicedOracleFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SlicedOracleFuzz, SlicedMatcherAgreesWithPlaMatcher)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 8; ++iter) {
        term::SymbolTable sym;
        scw::ScwConfig scw_config;
        const std::uint32_t widths[] = {8, 12, 16, 24, 32};
        scw_config.fieldBits = widths[rng.below(std::size(widths))];
        scw_config.bitsPerTerm =
            static_cast<std::uint32_t>(rng.range(1, 3));
        scw::CodewordGenerator gen(scw_config);

        workload::KbSpec spec;
        spec.predicates = 1;
        spec.clausesPerPredicate =
            static_cast<std::uint32_t>(rng.range(1, 260));
        spec.arityMin = static_cast<std::uint32_t>(rng.range(1, 6));
        // Sometimes past the 12-argument hardware encoding limit.
        spec.arityMax = spec.arityMin +
            static_cast<std::uint32_t>(rng.range(0, 9));
        spec.varProb = rng.uniform() * 0.7;     // mask density
        spec.structProb = rng.uniform() * 0.4;
        spec.seed = GetParam() * 1000 + static_cast<std::uint64_t>(iter);
        workload::KbGenerator kbgen(sym);
        term::Program program = kbgen.generate(spec);
        const auto &pred = program.predicates()[0];

        term::TermWriter writer(sym);
        storage::ClauseFileBuilder builder(writer);
        std::vector<scw::Signature> sigs;
        for (std::size_t i : program.clausesOf(pred)) {
            const term::Clause &c = program.clause(i);
            builder.add(c);
            sigs.push_back(gen.encode(c.arena(), c.head()));
        }
        storage::ClauseFile file = builder.finish();
        scw::SecondaryFile index =
            scw::SecondaryFile::build(gen, sigs, file);
        scw::BitSlicedIndex plane =
            scw::BitSlicedIndex::build(gen, index);

        workload::QuerySpec qspec;
        qspec.boundArgProb = rng.uniform();
        qspec.sharedVarProb = rng.uniform() * 0.5;
        qspec.seed = spec.seed + 7;
        workload::QueryGenerator qgen(sym, qspec);

        fs1::SlicedMatcher matcher;
        for (int q = 0; q < 4; ++q) {
            workload::GeneratedQuery gq = qgen.generate(program, pred);
            scw::Signature query = gen.encode(gq.arena, gq.goal);

            // Full file plus one random sub-range per query.
            std::size_t count = index.entryCount();
            std::size_t begin = rng.below(count + 1);
            std::size_t end = begin + rng.below(count - begin + 1);
            for (scw::EntryRange range :
                 {scw::EntryRange{0, count},
                  scw::EntryRange{begin, end}}) {
                fs1::PlaMatcher pla(gen);
                pla.setQuery(query);
                std::vector<std::uint32_t> want_offsets, want_ordinals;
                for (std::size_t i = range.begin; i < range.end; ++i) {
                    scw::IndexEntry entry = index.entry(gen, i);
                    if (pla.present(entry.signature)) {
                        want_offsets.push_back(entry.clauseOffset);
                        want_ordinals.push_back(entry.ordinal);
                    }
                }
                fs1::SlicedMatcher::Hits got =
                    matcher.scanRange(plane, query, range);
                EXPECT_EQ(got.clauseOffsets, want_offsets)
                    << "iter " << iter << " query " << q << " range ["
                    << range.begin << ", " << range.end << ")";
                EXPECT_EQ(got.ordinals, want_ordinals)
                    << "iter " << iter << " query " << q << " range ["
                    << range.begin << ", " << range.end << ")";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlicedOracleFuzz,
                         ::testing::Values(5u, 55u, 555u));

TEST(InjectedFaultSweep, SlicedServerDegradesIdentically)
{
    // The sliced twin of NoSeedCrashesTheServer: with the plane built
    // and fs1.sliced on, every fault seed still yields either a typed
    // error or the exact clean-run answers.
    term::SymbolTable sym;
    term::TermReader reader(sym);
    std::string text;
    for (int i = 0; i < 80; ++i) {
        text += "p(k" + std::to_string(i % 6) + ", v" +
            std::to_string(i) + ").\n";
    }
    term::Program program;
    for (auto &c : reader.parseProgram(text))
        program.add(std::move(c));
    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.buildSlicedIndexes();
    store.finalize();

    crs::ClauseRetrievalServer clean(sym, store);
    std::vector<std::vector<std::uint32_t>> expected =
        answersPerMode(clean, sym, "p(k2, V)");

    support::FaultConfig config;
    config.bitFlipRate = 0.3;
    config.transientReadRate = 0.3;
    config.delayRate = 0.2;
    int served = 0;
    for (config.seed = 1; config.seed <= 32; ++config.seed) {
        support::FaultInjector inj(config);
        crs::CrsConfig cfg;
        cfg.faults = &inj;
        cfg.fs1.sliced = true;
        crs::ClauseRetrievalServer faulty(sym, store, cfg);
        term::ParsedTerm q = reader.parseTerm("p(k2, V)");
        const crs::SearchMode modes[] = {crs::SearchMode::SoftwareOnly,
                                         crs::SearchMode::Fs1Only,
                                         crs::SearchMode::Fs2Only,
                                         crs::SearchMode::TwoStage};
        for (std::size_t m = 0; m < 4; ++m) {
            try {
                crs::RetrievalResponse r = serveOne(
                    faulty, q.arena, q.root, modes[m]);
                ++served;
                EXPECT_EQ(r.answers, expected[m])
                    << "seed " << config.seed << " mode " << m;
            } catch (const IoError &) {
                // Bounded retries exhausted: typed, not a crash.
            }
        }
    }
    EXPECT_GT(served, 0);
}

// ---------------------------------------------------------------------
// Kernel-sweep fuzz: the same seed replayed across every dispatch
// target — each supported FS1 kernel crossed with interpreted and
// compiled FS2 — must produce byte-identical responses and stage
// breakdowns (unsupported ISAs are skipped, not failed).
// ---------------------------------------------------------------------

class KernelSweepFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(KernelSweepFuzz, DispatchTargetsAreBitIdentical)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 3; ++iter) {
        term::SymbolTable sym;
        workload::KbSpec spec;
        spec.predicates = 2;
        spec.clausesPerPredicate =
            static_cast<std::uint32_t>(rng.range(40, 300));
        spec.arityMin = 2;
        spec.arityMax = static_cast<std::uint32_t>(rng.range(2, 5));
        spec.varProb = rng.uniform() * 0.4;
        spec.structProb = rng.uniform() * 0.4;
        spec.listProb = rng.uniform() * 0.2;
        spec.seed = GetParam() * 100 + static_cast<std::uint64_t>(iter);
        workload::KbGenerator kbgen(sym);
        term::Program program = kbgen.generate(spec);
        crs::PredicateStore store(sym, scw::CodewordGenerator{});
        store.addProgram(program);
        store.buildSlicedIndexes();
        store.finalize();

        workload::QuerySpec qspec;
        qspec.boundArgProb = 0.5;
        qspec.sharedVarProb = 0.3;
        qspec.seed = spec.seed + 13;
        workload::QueryGenerator qgen(sym, qspec);
        struct Goal
        {
            workload::GeneratedQuery q;
            crs::SearchMode mode;
        };
        std::vector<Goal> goals;
        const crs::SearchMode modes[] = {crs::SearchMode::SoftwareOnly,
                                         crs::SearchMode::Fs1Only,
                                         crs::SearchMode::Fs2Only,
                                         crs::SearchMode::TwoStage};
        for (int g = 0; g < 6; ++g) {
            const auto &pred = program.predicates()[
                rng.below(program.predicates().size())];
            goals.push_back(Goal{qgen.generate(program, pred),
                                 modes[rng.below(4)]});
        }

        // The baseline target: row-major FS1, interpreted FS2.
        auto responses = [&](const crs::CrsConfig &cfg) {
            crs::ClauseRetrievalServer server(sym, store, cfg);
            std::vector<crs::RetrievalResponse> out;
            for (const Goal &goal : goals)
                out.push_back(serveOne(server, goal.q.arena,
                                       goal.q.goal, goal.mode));
            return out;
        };
        std::vector<crs::RetrievalResponse> expected =
            responses(crs::CrsConfig{});

        for (fs1::Fs1Kernel kernel : {fs1::Fs1Kernel::Scalar64,
                                      fs1::Fs1Kernel::Avx2,
                                      fs1::Fs1Kernel::Avx512}) {
            if (!fs1::kernelSupported(kernel))
                continue;
            for (bool compiled : {false, true}) {
                crs::CrsConfig cfg;
                cfg.fs1.sliced = true;
                cfg.fs1.kernel = kernel;
                cfg.fs2.compiled = compiled;
                std::vector<crs::RetrievalResponse> got = responses(cfg);
                ASSERT_EQ(got.size(), expected.size());
                for (std::size_t i = 0; i < got.size(); ++i) {
                    const std::string label = std::string("iter ") +
                        std::to_string(iter) + " " +
                        fs1::kernelName(kernel) +
                        (compiled ? " compiled" : " interpreted") +
                        " goal " + std::to_string(i);
                    const crs::RetrievalResponse &a = expected[i];
                    const crs::RetrievalResponse &b = got[i];
                    EXPECT_EQ(a.answers, b.answers) << label;
                    EXPECT_EQ(a.candidates, b.candidates) << label;
                    EXPECT_EQ(a.indexEntriesScanned,
                              b.indexEntriesScanned) << label;
                    EXPECT_EQ(a.fs1Hits, b.fs1Hits) << label;
                    EXPECT_EQ(a.clausesExamined, b.clausesExamined)
                        << label;
                    EXPECT_EQ(a.filterOps, b.filterOps) << label;
                    EXPECT_EQ(a.breakdown.queueWait,
                              b.breakdown.queueWait) << label;
                    EXPECT_EQ(a.breakdown.cacheTime,
                              b.breakdown.cacheTime) << label;
                    EXPECT_EQ(a.breakdown.indexTime,
                              b.breakdown.indexTime) << label;
                    EXPECT_EQ(a.breakdown.filterTime,
                              b.breakdown.filterTime) << label;
                    EXPECT_EQ(a.breakdown.hostUnifyTime,
                              b.breakdown.hostUnifyTime) << label;
                    EXPECT_EQ(a.elapsed, b.elapsed) << label;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelSweepFuzz,
                         ::testing::Values(3u, 33u, 333u));

} // namespace
} // namespace clare
