/**
 * @file
 * WAL and live-update tests: the write-ahead log's framing and
 * torn-tail recovery (truncation and bit-flip fuzz), MVCC snapshot
 * visibility, the delta-plane-vs-full-rebuild exactness oracle
 * (answers AND modeled ticks), byte-granular crash kill-point fuzzers
 * through commit and checkpoint, and the CURRENT checkpoint
 * round-trip.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "crs/live_update.hh"
#include "crs/server.hh"
#include "crs/store.hh"
#include "crs/store_io.hh"
#include "storage/wal.hh"
#include "support/errors.hh"
#include "support/fault_injector.hh"
#include "term/term_reader.hh"

namespace clare::crs {
namespace {

namespace fs = std::filesystem;

/** Self-deleting scratch directory. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "clare-wal-XXXXXX").string();
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (::mkdtemp(buf.data()) == nullptr)
            throw IoError(tmpl, "mkdtemp failed");
        path = buf.data();
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

std::unique_ptr<PredicateStore>
makeStore(const term::SymbolTable &sym, term::TermReader &reader,
          const std::string &text, bool sliced)
{
    term::Program program;
    for (auto &c : reader.parseProgram(text))
        program.add(std::move(c));
    auto store = std::make_unique<PredicateStore>(
        sym, scw::CodewordGenerator{});
    store->addProgram(program);
    if (sliced)
        store->buildSlicedIndexes();
    store->finalize();
    return store;
}

RetrievalResponse
serveOn(ClauseRetrievalServer &server, term::TermReader &reader,
        const std::string &goal_text, SearchMode mode,
        std::optional<std::uint64_t> snapshot = {})
{
    term::ParsedTerm goal = reader.parseTerm(goal_text);
    RetrievalRequest request;
    request.arena = &goal.arena;
    request.goal = goal.root;
    request.mode = mode;
    request.snapshot = snapshot;
    return server.serve(request);
}

/** Bit-identity across the whole response: answers AND modeled time. */
void
expectSameResponse(const RetrievalResponse &a, const RetrievalResponse &b,
                   const std::string &what)
{
    EXPECT_EQ(a.mode, b.mode) << what;
    EXPECT_EQ(a.candidates, b.candidates) << what;
    EXPECT_EQ(a.answers, b.answers) << what;
    EXPECT_EQ(a.indexEntriesScanned, b.indexEntriesScanned) << what;
    EXPECT_EQ(a.fs1Hits, b.fs1Hits) << what;
    EXPECT_EQ(a.clausesExamined, b.clausesExamined) << what;
    EXPECT_EQ(a.filterOps, b.filterOps) << what;
    EXPECT_EQ(a.breakdown.queueWait, b.breakdown.queueWait) << what;
    EXPECT_EQ(a.breakdown.cacheTime, b.breakdown.cacheTime) << what;
    EXPECT_EQ(a.breakdown.indexTime, b.breakdown.indexTime) << what;
    EXPECT_EQ(a.breakdown.filterTime, b.breakdown.filterTime) << what;
    EXPECT_EQ(a.breakdown.hostUnifyTime, b.breakdown.hostUnifyTime)
        << what;
    EXPECT_EQ(a.elapsed, b.elapsed) << what;
    EXPECT_EQ(a.degraded, b.degraded) << what;
}

constexpr SearchMode kAllModes[] = {
    SearchMode::SoftwareOnly, SearchMode::Fs1Only, SearchMode::Fs2Only,
    SearchMode::TwoStage};

const char *const kBaseProgram =
    "edge(a, b).\n"
    "edge(b, c).\n"
    "edge(a, a).\n"
    "edge(c, d).\n"
    "edge(d, a).\n"
    "link(a, b, c).\n"
    "link(b, c, d).\n";

const char *const kOracleQueries[] = {
    "edge(a, X)", "edge(X, Y)", "edge(X, d)", "edge(f, f)",
    "link(a, X, Y)"};

// ---------------------------------------------------------------------
// Wal framing and recovery
// ---------------------------------------------------------------------

TEST(Wal, RoundTripAndLsns)
{
    TempDir dir;
    const std::string path = dir.path + "/wal.log";
    {
        storage::Wal w(path);
        EXPECT_EQ(w.baseLsn(), 0u);
        EXPECT_EQ(w.tailLsn(), 0u);
        EXPECT_EQ(w.append(storage::Wal::RecordKind::Assert, {1, 2, 3}),
                  0u);
        w.commit();
        w.append(storage::Wal::RecordKind::Retract, {9});
        w.append(storage::Wal::RecordKind::Assert, {});
        w.commit();
    }
    storage::Wal r(path);
    EXPECT_EQ(r.truncatedBytes(), 0u);
    ASSERT_EQ(r.recovered().size(), 5u);
    using K = storage::Wal::RecordKind;
    const K kinds[] = {K::Assert, K::Commit, K::Retract, K::Assert,
                       K::Commit};
    std::uint64_t prev_lsn = 0;
    for (std::size_t i = 0; i < r.recovered().size(); ++i) {
        EXPECT_EQ(r.recovered()[i].kind, kinds[i]) << i;
        if (i > 0) {
            EXPECT_GT(r.recovered()[i].lsn, prev_lsn) << i;
        }
        prev_lsn = r.recovered()[i].lsn;
    }
    EXPECT_EQ(r.recovered()[0].payload,
              (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_EQ(r.recovered()[2].payload, (std::vector<std::uint8_t>{9}));
    // The next LSN continues from the durable tail.
    EXPECT_EQ(r.tailLsn(), fs::file_size(path) - storage::kWalHeaderBytes);
}

TEST(Wal, BufferedRecordsDieWithTheProcess)
{
    TempDir dir;
    const std::string path = dir.path + "/wal.log";
    {
        storage::Wal w(path);
        w.append(storage::Wal::RecordKind::Assert, {1});
        w.commit();
        // Appended but never synced: must not survive.
        w.append(storage::Wal::RecordKind::Assert, {2});
    }
    storage::Wal r(path);
    EXPECT_EQ(r.recovered().size(), 2u);
    EXPECT_EQ(r.truncatedBytes(), 0u);
}

TEST(Wal, SyncedButUncommittedTailIsDiscarded)
{
    TempDir dir;
    const std::string path = dir.path + "/wal.log";
    {
        storage::Wal w(path);
        w.append(storage::Wal::RecordKind::Assert, {1});
        w.commit();
        w.append(storage::Wal::RecordKind::Assert, {2});
        w.sync(); // durable, but no commit boundary
    }
    storage::Wal r(path);
    EXPECT_EQ(r.recovered().size(), 2u);
    EXPECT_GT(r.truncatedBytes(), 0u);
    // Recovery truncated the file; a re-open is clean.
    storage::Wal r2(path);
    EXPECT_EQ(r2.recovered().size(), 2u);
    EXPECT_EQ(r2.truncatedBytes(), 0u);
}

TEST(Wal, PartialHeaderRecoversToEmptyLog)
{
    TempDir dir;
    const std::string path = dir.path + "/wal.log";
    writeFileBytes(path, {0x43, 0x4c, 0x57});
    storage::Wal w(path);
    EXPECT_TRUE(w.recovered().empty());
    EXPECT_EQ(w.truncatedBytes(), 3u);
    EXPECT_EQ(fs::file_size(path), storage::kWalHeaderBytes);
}

TEST(Wal, DamagedHeaderIsTypedCorruption)
{
    TempDir dir;
    const std::string path = dir.path + "/wal.log";
    {
        storage::Wal w(path);
        w.append(storage::Wal::RecordKind::Assert, {1});
        w.commit();
    }
    const std::vector<std::uint8_t> pristine = readFileBytes(path);
    for (std::size_t at : {std::size_t{0}, std::size_t{4},
                           std::size_t{8}, std::size_t{16},
                           std::size_t{19}}) {
        std::vector<std::uint8_t> bad = pristine;
        bad[at] ^= 0x40;
        writeFileBytes(path, bad);
        EXPECT_THROW(storage::Wal w(path), CorruptionError)
            << "header byte " << at;
    }
}

/**
 * Torn-tail truncation fuzz: cut the log at EVERY byte.  Recovery must
 * always succeed (never abort, never mis-answer) and must recover
 * exactly the commits wholly contained in the prefix.
 */
TEST(Wal, TruncationFuzzRecoversToLastCommit)
{
    TempDir dir;
    const std::string path = dir.path + "/wal.log";
    {
        storage::Wal w(path);
        w.append(storage::Wal::RecordKind::Assert, {1, 2, 3, 4});
        w.append(storage::Wal::RecordKind::Assert, {5});
        w.commit();
        w.append(storage::Wal::RecordKind::Retract, {6, 7});
        w.commit();
        w.append(storage::Wal::RecordKind::Assert, {8, 9, 10});
        w.commit();
    }
    const std::vector<std::uint8_t> pristine = readFileBytes(path);
    std::vector<storage::Wal::Record> full;
    {
        storage::Wal w(path);
        full = w.recovered();
    }
    ASSERT_EQ(full.size(), 7u);

    // End offset of record i in the file: the next record's start (its
    // LSN is its start offset past the header) or the file size.
    auto recordEnd = [&](std::size_t i) {
        return i + 1 < full.size()
            ? storage::kWalHeaderBytes + full[i + 1].lsn
            : pristine.size();
    };

    const std::string cutPath = dir.path + "/cut.log";
    for (std::size_t cut = 0; cut <= pristine.size(); ++cut) {
        writeFileBytes(cutPath,
                       std::vector<std::uint8_t>(
                           pristine.begin(),
                           pristine.begin() +
                               static_cast<std::ptrdiff_t>(cut)));
        if (cut < storage::kWalHeaderBytes) {
            storage::Wal w(cutPath);
            EXPECT_TRUE(w.recovered().empty()) << "cut " << cut;
            continue;
        }
        // Records surviving: the longest prefix ending at a Commit
        // record wholly inside the cut.
        std::size_t expect = 0;
        for (std::size_t i = 0; i < full.size(); ++i)
            if (full[i].kind == storage::Wal::RecordKind::Commit &&
                recordEnd(i) <= cut)
                expect = i + 1;
        storage::Wal w(cutPath);
        ASSERT_EQ(w.recovered().size(), expect) << "cut " << cut;
        for (std::size_t i = 0; i < expect; ++i) {
            EXPECT_EQ(w.recovered()[i].kind, full[i].kind);
            EXPECT_EQ(w.recovered()[i].lsn, full[i].lsn);
            EXPECT_EQ(w.recovered()[i].payload, full[i].payload);
        }
    }
}

/**
 * Bit-flip fuzz: flip one bit at every byte.  A header flip is typed
 * corruption; any body flip recovers a commit-bounded *prefix* of the
 * pristine records — never garbage, never an abort.
 */
TEST(Wal, BitFlipFuzzRecoversAPrefix)
{
    TempDir dir;
    const std::string path = dir.path + "/wal.log";
    {
        storage::Wal w(path);
        w.append(storage::Wal::RecordKind::Assert, {1, 2, 3, 4});
        w.commit();
        w.append(storage::Wal::RecordKind::Retract, {5, 6});
        w.append(storage::Wal::RecordKind::Assert, {7});
        w.commit();
    }
    const std::vector<std::uint8_t> pristine = readFileBytes(path);
    std::vector<storage::Wal::Record> full;
    {
        storage::Wal w(path);
        full = w.recovered();
    }

    const std::string flipPath = dir.path + "/flip.log";
    for (std::size_t at = 0; at < pristine.size(); ++at) {
        for (std::uint8_t bit : {0, 7}) {
            std::vector<std::uint8_t> bad = pristine;
            bad[at] ^= static_cast<std::uint8_t>(1u << bit);
            writeFileBytes(flipPath, bad);
            if (at < storage::kWalHeaderBytes) {
                EXPECT_THROW(storage::Wal w(flipPath), CorruptionError)
                    << "header byte " << at;
                continue;
            }
            storage::Wal w(flipPath);
            ASSERT_LE(w.recovered().size(), full.size())
                << "byte " << at;
            // Whatever survived is a prefix, ending at a boundary.
            for (std::size_t i = 0; i < w.recovered().size(); ++i) {
                EXPECT_EQ(w.recovered()[i].kind, full[i].kind)
                    << "byte " << at;
                EXPECT_EQ(w.recovered()[i].payload, full[i].payload)
                    << "byte " << at;
            }
            if (!w.recovered().empty()) {
                EXPECT_EQ(w.recovered().back().kind,
                          storage::Wal::RecordKind::Commit)
                    << "byte " << at;
            }
        }
    }
}

// ---------------------------------------------------------------------
// MVCC snapshot visibility
// ---------------------------------------------------------------------

TEST(LiveUpdate, SnapshotReadersPinOldGenerations)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    TempDir dir;
    auto store = makeStore(sym, reader, kBaseProgram, true);
    LiveStore live(*store, sym, dir.path + "/wal.log");
    ClauseRetrievalServer server(sym, *store);

    const term::PredicateId edge{sym.lookup("edge"), 2};
    RetrievalResponse pre =
        serveOn(server, reader, "edge(X, Y)", SearchMode::TwoStage);
    std::shared_ptr<const StoredPredicate> pinned =
        store->predicateVersion(edge);
    ASSERT_NE(pinned, nullptr);
    EXPECT_EQ(pinned->generation, 0u);

    std::uint64_t gen =
        live.assertz(reader.parseClause("edge(z, z)."));
    EXPECT_EQ(gen, 1u);
    EXPECT_EQ(store->headGeneration(), 1u);

    // The pinned version is untouched by the commit.
    EXPECT_EQ(pinned->clauses.clauseCount(), 5u);
    EXPECT_EQ(store->predicateVersion(edge)->clauses.clauseCount(), 6u);
    EXPECT_EQ(store->predicateVersion(edge)->generation, 1u);
    EXPECT_EQ(store->predicateVersion(edge, 0)->generation, 0u);
    // A future-generation snapshot resolves to the head.
    EXPECT_EQ(store->predicateVersion(edge, 99)->generation, 1u);

    // Snapshot reads are bit-identical to the quiesced pre-state.
    RetrievalResponse snap = serveOn(server, reader, "edge(X, Y)",
                                     SearchMode::TwoStage, 0);
    expectSameResponse(snap, pre, "snapshot@0 vs pre-commit");
    // The head sees the new clause.
    RetrievalResponse head =
        serveOn(server, reader, "edge(X, Y)", SearchMode::TwoStage);
    EXPECT_EQ(head.answers.size(), pre.answers.size() + 1);
}

TEST(LiveUpdate, BrandNewPredicateFollowsStoreIndexing)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    for (bool sliced : {true, false}) {
        TempDir dir;
        auto store = makeStore(sym, reader, kBaseProgram, sliced);
        LiveStore live(*store, sym, dir.path + "/wal.log");
        live.assertz(reader.parseClause("fresh(a)."));
        const term::PredicateId p{sym.lookup("fresh"), 1};
        ASSERT_TRUE(store->has(p));
        auto v = store->predicateVersion(p);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(v->clauses.clauseCount(), 1u);
        // A predicate born after generation 0 has no gen-0 version.
        EXPECT_EQ(store->predicateVersion(p, 0), nullptr);
        // New predicates match the store's indexing flavor so scans
        // stay tick-identical with the rest of the store.
        EXPECT_EQ(v->sliced != nullptr, sliced);
        EXPECT_EQ(v->deltaSliced, nullptr);

        ClauseRetrievalServer server(sym, *store);
        RetrievalResponse r = serveOn(server, reader, "fresh(X)",
                                      SearchMode::TwoStage);
        EXPECT_EQ(r.answers, (std::vector<std::uint32_t>{0}));
    }
}

// ---------------------------------------------------------------------
// Delta plane vs full rebuild (the exactness oracle)
// ---------------------------------------------------------------------

TEST(LiveUpdate, AssertzDeltaIsBitIdenticalToRebuild)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    for (bool sliced : {true, false}) {
        TempDir dir;
        auto live_store = makeStore(sym, reader, kBaseProgram, sliced);
        LiveStore live(*live_store, sym, dir.path + "/wal.log");
        ClauseRetrievalServer live_server(sym, *live_store);

        // Two commits: one single assertz, one multi-op transaction.
        live.assertz(reader.parseClause("edge(a, e)."));
        {
            LiveStore::Update txn = live.begin();
            txn.assertz(reader.parseClause("edge(e, b)."));
            txn.assertz(reader.parseClause("edge(f, f)."));
            txn.commit();
        }

        const std::string rebuilt_text = std::string(kBaseProgram) +
            "edge(a, e).\nedge(e, b).\nedge(f, f).\n";
        auto ref_store = makeStore(sym, reader, rebuilt_text, sliced);
        ClauseRetrievalServer ref_server(sym, *ref_store);

        const term::PredicateId edge{sym.lookup("edge"), 2};
        auto v = live_store->predicateVersion(edge);
        ASSERT_NE(v, nullptr);
        // Composite images are byte-identical to the from-scratch build.
        EXPECT_EQ(v->index.image(), ref_store->predicate(edge).index.image());
        ASSERT_EQ(v->clauses.clauseCount(), 8u);
        for (std::size_t i = 0; i < v->clauses.clauseCount(); ++i)
            EXPECT_EQ(v->clauses.sourceText(i),
                      ref_store->predicate(edge).clauses.sourceText(i));
        if (sliced) {
            // The base plane is shared; only the tail got a delta.
            ASSERT_NE(v->deltaSliced, nullptr);
            EXPECT_EQ(v->baseEntries, 5u);
            EXPECT_EQ(v->sliced->entryCount(), 5u);
            EXPECT_EQ(v->deltaSliced->entryCount(), 3u);
        } else {
            EXPECT_EQ(v->sliced, nullptr);
            EXPECT_EQ(v->deltaSliced, nullptr);
        }

        for (const char *goal : kOracleQueries)
            for (SearchMode mode : kAllModes) {
                RetrievalResponse a =
                    serveOn(live_server, reader, goal, mode);
                RetrievalResponse b =
                    serveOn(ref_server, reader, goal, mode);
                expectSameResponse(
                    a, b,
                    std::string(goal) + " " + searchModeName(mode) +
                        (sliced ? " sliced" : " row-major"));
            }

        // serveBatch over the delta-carrying store matches too.
        std::vector<term::ParsedTerm> goals;
        for (const char *goal : kOracleQueries)
            goals.push_back(reader.parseTerm(goal));
        std::vector<RetrievalRequest> batch;
        for (const term::ParsedTerm &g : goals) {
            RetrievalRequest request;
            request.arena = &g.arena;
            request.goal = g.root;
            request.mode = SearchMode::TwoStage;
            batch.push_back(request);
        }
        std::vector<RetrievalResponse> live_batch =
            live_server.serveBatch(batch);
        std::vector<RetrievalResponse> ref_batch =
            ref_server.serveBatch(batch);
        ASSERT_EQ(live_batch.size(), ref_batch.size());
        for (std::size_t i = 0; i < live_batch.size(); ++i)
            expectSameResponse(live_batch[i], ref_batch[i],
                               "batch " + std::string(kOracleQueries[i]));
    }
}

TEST(LiveUpdate, CompactionIsBitIdenticalToRebuild)
{
    const char *const base =
        "item(a, 1).\n"
        "item(b, 2).\n"
        "item(c, 3).\n"
        "item(d, 4).\n";
    term::SymbolTable sym;
    term::TermReader reader(sym);
    for (bool sliced : {true, false}) {
        TempDir dir;
        auto live_store = makeStore(sym, reader, base, sliced);
        LiveStore live(*live_store, sym, dir.path + "/wal.log");
        ClauseRetrievalServer live_server(sym, *live_store);

        // First grow a delta, then force a compaction that folds it.
        live.assertz(reader.parseClause("item(e, 5)."));
        {
            LiveStore::Update txn = live.begin();
            txn.asserta(reader.parseClause("item(z, 0)."));
            term::ParsedTerm pat = reader.parseTerm("item(b, 2)");
            EXPECT_TRUE(txn.retract(pat.arena, pat.root));
            txn.commit();
        }

        const char *const rebuilt_text =
            "item(z, 0).\n"
            "item(a, 1).\n"
            "item(c, 3).\n"
            "item(d, 4).\n"
            "item(e, 5).\n";
        auto ref_store = makeStore(sym, reader, rebuilt_text, sliced);
        ClauseRetrievalServer ref_server(sym, *ref_store);

        const term::PredicateId item{sym.lookup("item"), 2};
        auto v = live_store->predicateVersion(item);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(v->index.image(),
                  ref_store->predicate(item).index.image());
        // Compaction folds the delta back into one full plane.
        EXPECT_EQ(v->deltaSliced, nullptr);
        EXPECT_EQ(v->baseEntries, 0u);
        EXPECT_EQ(v->sliced != nullptr, sliced);

        for (const char *goal : {"item(X, Y)", "item(z, X)",
                                 "item(b, X)", "item(X, 5)"})
            for (SearchMode mode : kAllModes)
                expectSameResponse(
                    serveOn(live_server, reader, goal, mode),
                    serveOn(ref_server, reader, goal, mode),
                    std::string(goal) + " " + searchModeName(mode));
    }
}

TEST(LiveUpdate, RetractConvenienceReportsMatch)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    TempDir dir;
    auto store = makeStore(sym, reader, kBaseProgram, true);
    LiveStore live(*store, sym, dir.path + "/wal.log");

    term::ParsedTerm hit = reader.parseTerm("edge(c, d)");
    std::optional<std::uint64_t> gen = live.retract(hit.arena, hit.root);
    ASSERT_TRUE(gen.has_value());
    EXPECT_EQ(*gen, 1u);

    term::ParsedTerm miss = reader.parseTerm("edge(q, q)");
    EXPECT_FALSE(live.retract(miss.arena, miss.root).has_value());
    // The failed retract published nothing and logged nothing.
    EXPECT_EQ(store->headGeneration(), 1u);

    const term::PredicateId edge{sym.lookup("edge"), 2};
    EXPECT_EQ(store->predicateVersion(edge)->clauses.clauseCount(), 4u);
}

// ---------------------------------------------------------------------
// Update transaction semantics
// ---------------------------------------------------------------------

struct CountingSink : CacheInvalidationSink
{
    std::map<term::PredicateId, int> counts;

    void
    invalidatePredicate(const term::PredicateId &pred) override
    {
        ++counts[pred];
    }
};

TEST(LiveUpdate, AbortAndEmptyCommitPublishNothing)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    TempDir dir;
    auto store = makeStore(sym, reader, kBaseProgram, true);
    LiveStore live(*store, sym, dir.path + "/wal.log");
    CountingSink sink;
    live.attachSink(&sink);

    const std::uint64_t tail_before = live.wal().tailLsn();
    {
        LiveStore::Update txn = live.begin();
        txn.assertz(reader.parseClause("edge(x, y)."));
        txn.abort();
    }
    {
        // Destruction of an un-committed transaction aborts it.
        LiveStore::Update txn = live.begin();
        txn.assertz(reader.parseClause("edge(x, y)."));
    }
    EXPECT_EQ(store->headGeneration(), 0u);
    EXPECT_EQ(live.wal().tailLsn(), tail_before);
    EXPECT_TRUE(sink.counts.empty());

    // An empty commit is a no-op returning the current generation.
    LiveStore::Update txn = live.begin();
    EXPECT_EQ(txn.commit(), 0u);
    EXPECT_EQ(live.wal().tailLsn(), tail_before);
}

TEST(LiveUpdate, MultiPredicateTransactionIsOneGeneration)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    TempDir dir;
    auto store = makeStore(sym, reader, kBaseProgram, true);
    LiveStore live(*store, sym, dir.path + "/wal.log");
    CountingSink sink;
    live.attachSink(&sink);

    LiveStore::Update txn = live.begin();
    txn.assertz(reader.parseClause("edge(p, q)."));
    txn.assertz(reader.parseClause("link(p, q, r)."));
    EXPECT_EQ(txn.commit(), 1u);
    EXPECT_EQ(store->headGeneration(), 1u);

    const term::PredicateId edge{sym.lookup("edge"), 2};
    const term::PredicateId link{sym.lookup("link"), 3};
    EXPECT_EQ(store->predicateVersion(edge)->generation, 1u);
    EXPECT_EQ(store->predicateVersion(link)->generation, 1u);
    // Exactly one invalidation per touched predicate, after publish.
    EXPECT_EQ(sink.counts[edge], 1);
    EXPECT_EQ(sink.counts[link], 1);
    EXPECT_EQ(sink.counts.size(), 2u);
}

// ---------------------------------------------------------------------
// Crash kill-point fuzzers
// ---------------------------------------------------------------------

/**
 * Kill the process (CrashError) at every byte of the commit's durable
 * write, then recover onto a fresh store.  The recovered state must be
 * exactly the pre-commit or the post-commit state — answers and ticks.
 */
TEST(WalKillPoints, CommitSweepRecoversPreOrPostState)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);

    auto pre_store = makeStore(sym, reader, kBaseProgram, true);
    ClauseRetrievalServer pre_server(sym, *pre_store);
    const std::string post_text = std::string(kBaseProgram) +
        "edge(a, e).\nedge(e, b).\n";
    auto post_store = makeStore(sym, reader, post_text, true);
    ClauseRetrievalServer post_server(sym, *post_store);

    RetrievalResponse pre_all =
        serveOn(pre_server, reader, "edge(X, Y)", SearchMode::TwoStage);
    RetrievalResponse pre_fs1 =
        serveOn(pre_server, reader, "edge(a, X)", SearchMode::Fs1Only);
    RetrievalResponse post_all =
        serveOn(post_server, reader, "edge(X, Y)", SearchMode::TwoStage);
    RetrievalResponse post_fs1 =
        serveOn(post_server, reader, "edge(a, X)", SearchMode::Fs1Only);

    std::size_t killed = 0;
    bool survived = false;
    for (std::uint64_t k = 0; !survived; ++k) {
        ASSERT_LT(k, 5000u) << "commit stream implausibly large";
        TempDir dir;
        const std::string wal_path = dir.path + "/wal.log";
        auto store = makeStore(sym, reader, kBaseProgram, true);
        support::FaultConfig config;
        config.killSite = "wal.commit";
        config.killAtByte = k;
        support::FaultInjector injector(config);
        bool crashed = false;
        {
            LiveStore live(*store, sym, wal_path, 0, &injector);
            try {
                LiveStore::Update txn = live.begin();
                txn.assertz(reader.parseClause("edge(a, e)."));
                txn.assertz(reader.parseClause("edge(e, b)."));
                txn.commit();
            } catch (const CrashError &) {
                crashed = true;
                ++killed;
            }
        }
        if (crashed) {
            // Nothing may have been published past the crash.
            EXPECT_EQ(store->headGeneration(), 0u) << "k=" << k;
            // The armed site reports its trigger (coverage contract).
            bool found = false;
            for (const support::SiteReport &s : injector.sites())
                if (s.site == "wal.commit") {
                    found = true;
                    EXPECT_GE(s.consulted, 1u);
                    EXPECT_EQ(s.triggered, 1u);
                }
            EXPECT_TRUE(found) << "k=" << k;
        }

        // Recover onto a fresh pre-commit store, no faults.
        auto rec_store = makeStore(sym, reader, kBaseProgram, true);
        LiveStore rec(*rec_store, sym, wal_path);
        ClauseRetrievalServer rec_server(sym, *rec_store);
        RetrievalResponse r_all = serveOn(rec_server, reader,
                                          "edge(X, Y)",
                                          SearchMode::TwoStage);
        RetrievalResponse r_fs1 = serveOn(rec_server, reader,
                                          "edge(a, X)",
                                          SearchMode::Fs1Only);
        if (crashed) {
            // A torn commit record can never replay.
            EXPECT_EQ(rec.recoveredCommits(), 0u) << "k=" << k;
            expectSameResponse(r_all, pre_all, "pre k=" +
                               std::to_string(k));
            expectSameResponse(r_fs1, pre_fs1, "pre k=" +
                               std::to_string(k));
        } else {
            survived = true;
            EXPECT_EQ(rec.recoveredCommits(), 1u) << "k=" << k;
            expectSameResponse(r_all, post_all, "post k=" +
                               std::to_string(k));
            expectSameResponse(r_fs1, post_fs1, "post k=" +
                               std::to_string(k));
        }
    }
    // The sweep must actually have exercised the kill point.
    EXPECT_GT(killed, 20u);
}

/**
 * Kill checkpoint at injector-chosen byte offsets through the store
 * files and the CURRENT flip ("checkpoint" site), and through the WAL
 * reset ("wal.checkpoint" site).  Recovery via openStore + replay must
 * always reconstruct the committed (post-commit) state: checkpoints
 * move bytes, never logical state.
 */
TEST(WalKillPoints, CheckpointSweepAlwaysRecoversCommittedState)
{
    term::SymbolTable ref_sym;
    term::TermReader ref_reader(ref_sym);
    const std::string post_text =
        std::string(kBaseProgram) + "edge(a, e).\n";
    auto post_store = makeStore(ref_sym, ref_reader, post_text, true);
    ClauseRetrievalServer post_server(ref_sym, *post_store);
    RetrievalResponse post_ref = serveOn(post_server, ref_reader,
                                         "edge(X, Y)",
                                         SearchMode::TwoStage);
    // Reference for the post-recovery commit made inside runOne.
    const std::string post2_text = post_text + "edge(e, b).\n";
    auto post2_store = makeStore(ref_sym, ref_reader, post2_text, true);
    ClauseRetrievalServer post2_server(ref_sym, *post2_store);
    RetrievalResponse post2_ref = serveOn(post2_server, ref_reader,
                                          "edge(X, Y)",
                                          SearchMode::TwoStage);

    auto runOne = [&](const std::string &site, std::uint64_t kill_at,
                      bool &crashed) {
        TempDir root;
        {
            term::SymbolTable s0;
            term::TermReader r0(s0);
            auto st = makeStore(s0, r0, kBaseProgram, true);
            saveStore(root.path, *st, s0);
        }
        term::SymbolTable sym;
        term::TermReader reader(sym);
        StoreWalInfo info;
        PredicateStore store = openStore(root.path, sym, &info);
        support::FaultConfig config;
        config.killSite = site;
        config.killAtByte = kill_at;
        support::FaultInjector injector(config);
        crashed = false;
        {
            LiveStore live(store, sym, root.path + "/wal.log",
                           info.appliedLsn, &injector);
            live.assertz(reader.parseClause("edge(a, e)."));
            try {
                live.checkpoint(root.path);
            } catch (const CrashError &) {
                crashed = true;
            }
        }

        // Recover: CURRENT-aware open + WAL replay from the watermark.
        term::SymbolTable rec_sym;
        term::TermReader rec_reader(rec_sym);
        StoreWalInfo rec_info;
        PredicateStore rec_store = openStore(root.path, rec_sym,
                                             &rec_info);
        LiveStore rec(rec_store, rec_sym, root.path + "/wal.log",
                      rec_info.appliedLsn);
        ClauseRetrievalServer rec_server(rec_sym, rec_store);
        RetrievalResponse r = serveOn(rec_server, rec_reader,
                                      "edge(X, Y)",
                                      SearchMode::TwoStage);
        expectSameResponse(r, post_ref,
                           site + " k=" + std::to_string(kill_at));
        EXPECT_LE(rec.recoveredCommits(), 1u);
        if (!crashed) {
            // A completed checkpoint replays nothing.
            EXPECT_TRUE(rec_info.present);
            EXPECT_EQ(rec.recoveredCommits(), 0u);
        }

        // Regression: a commit made *after* the first recovery must
        // survive the next recovery too.  A crash tearing the WAL
        // header during reset() used to leave baseLsn = 0 under a
        // manifest watermark of N, so this commit's LSNs fell below
        // the watermark and the second replay silently skipped it —
        // committed data lost with no error.
        rec.assertz(rec_reader.parseClause("edge(e, b)."));
        term::SymbolTable sym2;
        term::TermReader reader2(sym2);
        StoreWalInfo info2;
        PredicateStore store2 = openStore(root.path, sym2, &info2);
        LiveStore rec2(store2, sym2, root.path + "/wal.log",
                       info2.appliedLsn);
        EXPECT_GE(rec2.recoveredCommits(), 1u)
            << site << " k=" << kill_at;
        ClauseRetrievalServer server2(sym2, store2);
        expectSameResponse(
            serveOn(server2, reader2, "edge(X, Y)",
                    SearchMode::TwoStage),
            post2_ref,
            site + " post-recovery commit k=" + std::to_string(kill_at));
    };

    // Sweep the checkpoint file stream at a byte stride (the stream is
    // kilobytes; every single byte would cost nothing in coverage but
    // minutes in store rebuilds), always including the first bytes of
    // the stream and, implicitly, the CURRENT flip at its end.
    std::size_t killed = 0;
    bool survived = false;
    std::uint64_t k = 0;
    std::size_t iterations = 0;
    while (!survived) {
        ASSERT_LT(++iterations, 500u) << "checkpoint stream runaway";
        bool crashed = false;
        runOne("checkpoint", k, crashed);
        if (crashed)
            ++killed;
        else
            survived = true;
        k = k < 8 ? k + 1 : k + 127;
    }
    EXPECT_GT(killed, 10u);

    // The WAL reset is its own stream; its header is 20 bytes.  The
    // commit before it already wrote `commit_bytes`, so probe the
    // whole reset window beyond that.
    std::uint64_t commit_bytes = 0;
    {
        TempDir dir;
        term::SymbolTable sym;
        term::TermReader reader(sym);
        auto store = makeStore(sym, reader, kBaseProgram, true);
        LiveStore live(*store, sym, dir.path + "/wal.log");
        live.assertz(reader.parseClause("edge(a, e)."));
        commit_bytes = live.wal().tailLsn();
    }
    std::size_t reset_killed = 0;
    for (std::uint64_t off = 0; off < storage::kWalHeaderBytes; ++off) {
        bool crashed = false;
        runOne("wal.checkpoint", commit_bytes + off, crashed);
        EXPECT_TRUE(crashed) << "reset offset " << off;
        if (crashed)
            ++reset_killed;
    }
    EXPECT_EQ(reset_killed, storage::kWalHeaderBytes);
}

// ---------------------------------------------------------------------
// Checkpoint round-trip (no faults)
// ---------------------------------------------------------------------

TEST(LiveUpdate, CheckpointRoundTrip)
{
    TempDir root;
    {
        term::SymbolTable s0;
        term::TermReader r0(s0);
        auto st = makeStore(s0, r0, kBaseProgram, true);
        saveStore(root.path, *st, s0);
    }

    std::uint64_t applied = 0;
    {
        term::SymbolTable sym;
        term::TermReader reader(sym);
        StoreWalInfo info;
        PredicateStore store = openStore(root.path, sym, &info);
        EXPECT_FALSE(info.present);
        LiveStore live(store, sym, root.path + "/wal.log",
                       info.appliedLsn);
        live.assertz(reader.parseClause("edge(a, e)."));
        live.assertz(reader.parseClause("edge(e, b)."));
        live.checkpoint(root.path);
        applied = live.appliedLsn();
        EXPECT_GT(applied, 0u);
        EXPECT_TRUE(fs::exists(root.path + "/CURRENT"));
    }

    // Reopen: the checkpoint carries the state; the WAL is empty.
    term::SymbolTable sym;
    term::TermReader reader(sym);
    StoreWalInfo info;
    PredicateStore store = openStore(root.path, sym, &info);
    EXPECT_TRUE(info.present);
    EXPECT_EQ(info.appliedLsn, applied);
    LiveStore live(store, sym, root.path + "/wal.log", info.appliedLsn);
    EXPECT_EQ(live.recoveredCommits(), 0u);

    const term::PredicateId edge{sym.lookup("edge"), 2};
    const StoredPredicate &stored = store.predicate(edge);
    EXPECT_EQ(stored.clauses.clauseCount(), 7u);
    // The checkpoint folded the delta into one full plane.
    ASSERT_NE(stored.sliced, nullptr);
    EXPECT_EQ(stored.sliced->entryCount(), stored.index.entryCount());
    EXPECT_EQ(stored.deltaSliced, nullptr);

    // And the reopened store answers like a from-scratch build.
    term::SymbolTable ref_sym;
    term::TermReader ref_reader(ref_sym);
    const std::string post_text = std::string(kBaseProgram) +
        "edge(a, e).\nedge(e, b).\n";
    auto ref_store = makeStore(ref_sym, ref_reader, post_text, true);
    ClauseRetrievalServer ref_server(ref_sym, *ref_store);
    ClauseRetrievalServer server(sym, store);
    for (const char *goal : kOracleQueries)
        for (SearchMode mode : kAllModes)
            expectSameResponse(
                serveOn(server, reader, goal, mode),
                serveOn(ref_server, ref_reader, goal, mode),
                std::string(goal) + " " + searchModeName(mode));

    // Post-checkpoint commits replay on the next open.
    live.assertz(reader.parseClause("edge(g, g)."));
    term::SymbolTable sym2;
    StoreWalInfo info2;
    PredicateStore store2 = openStore(root.path, sym2, &info2);
    LiveStore live2(store2, sym2, root.path + "/wal.log",
                    info2.appliedLsn);
    EXPECT_EQ(live2.recoveredCommits(), 1u);
    EXPECT_EQ(store2.predicateVersion(
                  term::PredicateId{sym2.lookup("edge"), 2})
                  ->clauses.clauseCount(),
              8u);
}

} // namespace
} // namespace clare::crs
