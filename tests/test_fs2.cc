/**
 * @file
 * FS2 tests: the datapath timing model against Table 1 and the figure
 * 6-12 route arithmetic, the microinstruction format and assembler,
 * the map ROM, the Double Buffer and Result Memory, and the
 * microcoded engine's exact agreement with the functional matcher
 * (hit/miss, operation counts, and accepted clause sets) over
 * randomized workloads.
 */

#include <gtest/gtest.h>

#include <set>

#include "fs2/datapath.hh"
#include "fs2/double_buffer.hh"
#include "fs2/fs2_engine.hh"
#include "fs2/map_rom.hh"
#include "fs2/microcode.hh"
#include "fs2/result_memory.hh"
#include "storage/clause_file.hh"
#include "support/logging.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"
#include "unify/pif_matcher.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare::fs2 {
namespace {

using unify::TueOp;

// ---------------------------------------------------------------------
// Datapath timing: Table 1 and the figure route calculations.
// ---------------------------------------------------------------------

struct Table1Row
{
    TueOp op;
    int figure;
    std::uint64_t ns;
};

class Table1 : public ::testing::TestWithParam<Table1Row>
{
};

TEST_P(Table1, ExecutionTimeMatchesPaper)
{
    const Table1Row &row = GetParam();
    EXPECT_EQ(operationTimeNs(row.op), row.ns);
    EXPECT_EQ(operationSpec(row.op).figure, row.figure);
    EXPECT_EQ(operationTime(row.op), nanoseconds(row.ns));
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table1,
    ::testing::Values(
        Table1Row{TueOp::Match, 6, 105},
        Table1Row{TueOp::DbStore, 7, 95},
        Table1Row{TueOp::QueryStore, 8, 115},
        Table1Row{TueOp::DbFetch, 9, 105},
        Table1Row{TueOp::QueryFetch, 10, 170},
        Table1Row{TueOp::DbCrossBoundFetch, 11, 170},
        Table1Row{TueOp::QueryCrossBoundFetch, 12, 235}),
    [](const auto &info) { return tueOpName(info.param.op); });

TEST(Datapath, MatchRouteBreakdown)
{
    // Figure 6: db 40 ns, query 75 ns, comparison 30 ns.
    const OperationSpec &spec = operationSpec(TueOp::Match);
    ASSERT_EQ(spec.cycles.size(), 1u);
    EXPECT_EQ(spec.cycles[0].dbRoute.delayNs(), 40u);
    EXPECT_EQ(spec.cycles[0].queryRoute.delayNs(), 75u);
    EXPECT_EQ(spec.cycles[0].delayNs(), 75u);
}

TEST(Datapath, QueryFetchFirstCycleIs120)
{
    // Figure 10's printed calculation: 120 + 20 + 30 = 170.
    const OperationSpec &spec = operationSpec(TueOp::QueryFetch);
    ASSERT_EQ(spec.cycles.size(), 2u);
    EXPECT_EQ(spec.cycles[0].queryRoute.delayNs(), 120u);
    EXPECT_EQ(spec.cycles[1].queryRoute.delayNs(), 20u);
}

TEST(Datapath, QueryCrossBoundCycles)
{
    // Figure 12: 95 + 65 + 45 + 30 = 235.
    const OperationSpec &spec = operationSpec(
        TueOp::QueryCrossBoundFetch);
    ASSERT_EQ(spec.cycles.size(), 3u);
    EXPECT_EQ(spec.cycles[0].delayNs(), 95u);
    EXPECT_EQ(spec.cycles[1].delayNs(), 65u);
    EXPECT_EQ(spec.cycles[2].delayNs(), 45u);
}

TEST(Datapath, ComponentDelaysMatchFigures)
{
    EXPECT_EQ(componentDelayNs(Component::DoubleBufferOut), 20u);
    EXPECT_EQ(componentDelayNs(Component::Sel3), 20u);
    EXPECT_EQ(componentDelayNs(Component::QueryMemoryRead), 35u);
    EXPECT_EQ(componentDelayNs(Component::DbMemoryRead), 25u);
    EXPECT_EQ(componentDelayNs(Component::DbMemoryWrite), 20u);
    EXPECT_EQ(componentDelayNs(Component::Comparator), 30u);
}

TEST(Datapath, WorstCaseRateIsAbout4Point25MBps)
{
    // Section 4: "approximately 4.25 Mbytes/second".
    double rate = worstCaseFilterRate();
    EXPECT_NEAR(rate / 1e6, 4.25, 0.02);
    // Faster than the ~2 MB/s peak disk rate.
    EXPECT_GT(rate, 2.0e6);
}

TEST(Datapath, SkipHasNoDatapathTime)
{
    EXPECT_EQ(operationTimeNs(TueOp::Skip), 0u);
}

TEST(Datapath, RouteDescribe)
{
    const OperationSpec &spec = operationSpec(TueOp::Match);
    std::string db = spec.cycles[0].dbRoute.describe();
    EXPECT_NE(db.find("Double Buffer"), std::string::npos);
    EXPECT_NE(db.find("Sel1"), std::string::npos);
}

// ---------------------------------------------------------------------
// Microcode format and assembler.
// ---------------------------------------------------------------------

TEST(Microcode, EncodeDecodeRoundTrip)
{
    MicroInstruction insn;
    insn.seqOp = SeqOp::JumpIfNotCond;
    insn.cond = Cond::QCtrZero;
    insn.addr = 0x5a5;
    insn.tueOp = MicroTueOp::QueryFetchMatch;
    insn.advanceDb = true;
    insn.decQCtr = true;
    insn.loadArgCtr = true;
    MicroInstruction back = MicroInstruction::decode(insn.encode());
    EXPECT_EQ(back.seqOp, insn.seqOp);
    EXPECT_EQ(back.cond, insn.cond);
    EXPECT_EQ(back.addr, insn.addr);
    EXPECT_EQ(back.tueOp, insn.tueOp);
    EXPECT_EQ(back.advanceDb, insn.advanceDb);
    EXPECT_FALSE(back.advanceQuery);
    EXPECT_TRUE(back.decQCtr);
    EXPECT_TRUE(back.loadArgCtr);
}

TEST(Microcode, DisassembleMentionsFields)
{
    MicroInstruction insn;
    insn.seqOp = SeqOp::JumpIfCond;
    insn.cond = Cond::ArgCtrZero;
    insn.addr = 0x12;
    insn.tueOp = MicroTueOp::Match;
    std::string text = insn.disassemble();
    EXPECT_NE(text.find("JCC"), std::string::npos);
    EXPECT_NE(text.find("ARGCTR=0"), std::string::npos);
    EXPECT_NE(text.find("MATCH"), std::string::npos);
}

TEST(Microcode, AssemblerResolvesForwardReferences)
{
    MicroAssembler as;
    MicroInstruction i{};
    i.seqOp = SeqOp::Jump;
    as.label("start");
    as.emit(i, "end");
    as.label("end");
    i = {};
    i.seqOp = SeqOp::Accept;
    as.emit(i);
    Microprogram prog = as.finish("start");
    EXPECT_EQ(prog.entry, 0u);
    MicroInstruction first = MicroInstruction::decode(prog.words[0]);
    EXPECT_EQ(first.addr, as.address("end"));
}

TEST(Microcode, DuplicateLabelPanics)
{
    MicroAssembler as;
    as.label("x");
    EXPECT_DEATH(as.label("x"), "duplicate");
}

TEST(Microcode, MatchProgramFitsControlStore)
{
    RoutineAddresses routines;
    Microprogram prog = assembleMatchProgram(3, routines);
    EXPECT_LE(prog.size(), kControlStoreWords);
    EXPECT_GT(prog.size(), 20u);
    EXPECT_NE(routines.matchSimple, routines.matchComplex);
}

TEST(Microcode, Level1ProgramAliasesComplexToSimple)
{
    RoutineAddresses routines;
    assembleMatchProgram(1, routines);
    EXPECT_EQ(routines.matchSimple, routines.matchComplex);
}

// ---------------------------------------------------------------------
// The WCS interpreter driven directly with hand-written microcode.
// ---------------------------------------------------------------------

TEST(WcsTest, RunsHandWrittenProgram)
{
    // A degenerate program: accept any clause after one MATCH.
    MicroAssembler as;
    MicroInstruction i{};
    as.label("entry");
    i.loadArgCtr = true;
    as.emit(i);
    i = {};
    i.tueOp = MicroTueOp::Match;
    as.emit(i);
    i = {};
    i.seqOp = SeqOp::JumpIfNotCond;
    i.cond = Cond::Hit;
    as.emit(i, "bad");
    i = {};
    i.seqOp = SeqOp::Accept;
    as.emit(i);
    as.label("bad");
    i = {};
    i.seqOp = SeqOp::Reject;
    as.emit(i);
    Microprogram prog = as.finish("entry");

    Wcs wcs;
    wcs.loadProgram(prog);
    RoutineAddresses routines;  // unused: no CALLMAP in this program
    wcs.loadMapRom(MapRom::program(3, true, routines));

    TestUnificationEngine tue;
    tue.resetForClause(0, 0);
    pif::PifItem atom_a{pif::kAtomPointer, 7, 0};
    pif::PifItem atom_b{pif::kAtomPointer, 9, 0};
    pif::EncodedArgs query;
    query.items = {atom_a};
    query.argIndex = {0};

    std::vector<pif::PifItem> same{atom_a};
    EXPECT_EQ(wcs.runClause(tue, same, 1, query),
              ClauseVerdict::Accepted);
    std::vector<pif::PifItem> other{atom_b};
    EXPECT_EQ(wcs.runClause(tue, other, 1, query),
              ClauseVerdict::Rejected);
    EXPECT_GT(wcs.instructionsExecuted(), 0u);
}

TEST(WcsTest, SearchWithoutProgramPanics)
{
    Wcs wcs;
    TestUnificationEngine tue;
    pif::EncodedArgs query;
    std::vector<pif::PifItem> items;
    EXPECT_DEATH(wcs.runClause(tue, items, 0, query),
                 "microprogramming");
}

TEST(WcsTest, RunawayProgramIsCaught)
{
    MicroAssembler as;
    MicroInstruction i{};
    as.label("entry");
    i.seqOp = SeqOp::Jump;
    as.emit(i, "entry");    // infinite self-loop
    Microprogram prog = as.finish("entry");

    WcsConfig config;
    config.maxStepsPerClause = 1000;
    Wcs wcs(config);
    wcs.loadProgram(prog);
    TestUnificationEngine tue;
    pif::EncodedArgs query;
    std::vector<pif::PifItem> items;
    EXPECT_DEATH(wcs.runClause(tue, items, 0, query), "exceeded");
}

TEST(WcsTest, SequencerOverheadAccumulates)
{
    MicroAssembler as;
    MicroInstruction i{};
    as.label("entry");
    i.seqOp = SeqOp::Accept;
    as.emit(i);
    Microprogram prog = as.finish("entry");

    WcsConfig config;
    config.sequencerOverhead = nanoseconds(125);
    Wcs wcs(config);
    wcs.loadProgram(prog);
    TestUnificationEngine tue;
    pif::EncodedArgs query;
    std::vector<pif::PifItem> items;
    wcs.runClause(tue, items, 0, query);
    EXPECT_EQ(wcs.instructionsExecuted(), 1u);
    EXPECT_EQ(wcs.sequencerTime(), nanoseconds(125));
    wcs.resetStats();
    EXPECT_EQ(wcs.sequencerTime(), 0u);
}

// ---------------------------------------------------------------------
// Map ROM.
// ---------------------------------------------------------------------

TEST(MapRomTest, DispatchRules)
{
    RoutineAddresses routines;
    routines.skip = 1;
    routines.dbStore = 2;
    routines.dbFetch = 3;
    routines.queryStore = 4;
    routines.queryFetch = 5;
    routines.matchSimple = 6;
    routines.matchComplex = 7;
    MapRom rom = MapRom::program(3, true, routines);

    using TC = pif::TagClass;
    EXPECT_EQ(rom.lookup(TC::AnonymousVar, TC::Atom), 1u);
    EXPECT_EQ(rom.lookup(TC::Atom, TC::AnonymousVar), 1u);
    EXPECT_EQ(rom.lookup(TC::FirstDbVar, TC::Atom), 2u);
    EXPECT_EQ(rom.lookup(TC::SubDbVar, TC::FirstQueryVar), 3u);
    EXPECT_EQ(rom.lookup(TC::Atom, TC::FirstQueryVar), 4u);
    EXPECT_EQ(rom.lookup(TC::Integer, TC::SubQueryVar), 5u);
    EXPECT_EQ(rom.lookup(TC::Atom, TC::Atom), 6u);
    EXPECT_EQ(rom.lookup(TC::StructInline, TC::StructInline), 7u);
    EXPECT_EQ(rom.lookup(TC::StructInline, TC::TermListInline), 7u);
    EXPECT_EQ(rom.lookup(TC::StructPointer, TC::StructInline), 6u);
    // Impossible pairs trap.
    EXPECT_EQ(rom.lookup(TC::FirstQueryVar, TC::Atom), kMapTrap);
    EXPECT_EQ(rom.lookup(TC::Atom, TC::FirstDbVar), kMapTrap);
}

TEST(MapRomTest, CrossBindingOffSendsVariablesToSkip)
{
    RoutineAddresses routines;
    routines.skip = 9;
    routines.dbStore = 2;
    routines.queryFetch = 5;
    routines.matchSimple = 6;
    routines.matchComplex = 7;
    MapRom rom = MapRom::program(3, false, routines);
    using TC = pif::TagClass;
    EXPECT_EQ(rom.lookup(TC::FirstDbVar, TC::Atom), 9u);
    EXPECT_EQ(rom.lookup(TC::Atom, TC::SubQueryVar), 9u);
}

// ---------------------------------------------------------------------
// Double Buffer and Result Memory.
// ---------------------------------------------------------------------

TEST(DoubleBufferTest, PipelinesDeliveryAndProcessing)
{
    DoubleBuffer buffer(1024);
    // Clause 1 delivered at t=100, takes 50 to process.
    EXPECT_EQ(buffer.admit(100, 50, 100), 150u);
    EXPECT_EQ(buffer.stallTime(), 100u);
    // Clause 2 delivered at t=120 (while clause 1 processes): starts
    // at 150.
    EXPECT_EQ(buffer.admit(120, 30, 100), 180u);
    EXPECT_EQ(buffer.stallTime(), 100u);
    // Clause 3 delivered at 500: engine stalls 320.
    EXPECT_EQ(buffer.admit(500, 10, 100), 510u);
    EXPECT_EQ(buffer.stallTime(), 420u);
    EXPECT_EQ(buffer.clauses(), 3u);
}

TEST(DoubleBufferTest, OverrunDetection)
{
    DoubleBuffer buffer(1024);
    buffer.admit(100, 1000, 100);       // slow processing
    buffer.admit(200, 1000, 100);       // delivered while busy
    EXPECT_GE(buffer.overruns(), 1u);
}

TEST(DoubleBufferTest, EqualTimestampDeliveryCountsOverrun)
{
    // Regression: a clause delivered at exactly the same instant as
    // its predecessor (zero-length record, coalesced DMA completion)
    // still finds the bank busy; the old `prevDelivered_ < delivered`
    // comparison silently skipped the overrun check for it.
    DoubleBuffer buffer(1024);
    buffer.admit(100, 1000, 100);       // busy until 1100
    buffer.admit(100, 10, 100);         // same timestamp, bank busy
    EXPECT_EQ(buffer.overruns(), 1u);
    // Reordered history (later clause delivered earlier) still stays
    // exempt: the guard only fires for monotone delivery times.
    buffer.reset();
    buffer.admit(100, 1000, 100);
    buffer.admit(50, 10, 100);
    EXPECT_EQ(buffer.overruns(), 0u);
}

TEST(DoubleBufferTest, OversizedClauseIsFatal)
{
    DoubleBuffer buffer(64);
    EXPECT_THROW(buffer.admit(0, 0, 65), FatalError);
}

TEST(ResultMemoryTest, CapturesCommittedClauses)
{
    ResultMemory rm(32 * 1024, 512);
    EXPECT_EQ(rm.slotCount(), 64u);
    std::vector<std::uint8_t> a{1, 2, 3};
    std::vector<std::uint8_t> b{4, 5};
    rm.beginClause(a.data(), static_cast<std::uint32_t>(a.size()));
    rm.commit();
    rm.beginClause(b.data(), static_cast<std::uint32_t>(b.size()));
    rm.discard();
    std::vector<std::uint8_t> c{6};
    rm.beginClause(c.data(), 1);
    rm.commit();
    EXPECT_EQ(rm.satisfierCount(), 2u);
    EXPECT_EQ(rm.slot(0), a);
    EXPECT_EQ(rm.slot(1), c);
}

TEST(ResultMemoryTest, SixBitCounterOverflow)
{
    ResultMemory rm(2 * 512, 512);      // two slots only
    std::vector<std::uint8_t> data{9};
    for (int i = 0; i < 3; ++i) {
        rm.beginClause(data.data(), 1);
        rm.commit();
    }
    EXPECT_EQ(rm.satisfierCount(), 2u);
    EXPECT_TRUE(rm.overflowed());
}

TEST(ResultMemoryTest, SlotTruncation)
{
    ResultMemory rm(1024, 512);
    std::vector<std::uint8_t> big(600, 7);
    rm.beginClause(big.data(), 600);
    rm.commit();
    EXPECT_TRUE(rm.clauseTruncated());
    EXPECT_EQ(rm.slot(0).size(), 512u);
}

TEST(ResultMemoryTest, ResetClearsAllStickyStateForReplay)
{
    // Regression: a replayed query must not inherit the previous
    // query's overflow / truncation / dropped-satisfier state.
    ResultMemory rm(2 * 512, 512);      // two slots only
    std::vector<std::uint8_t> big(600, 7);
    for (int i = 0; i < 3; ++i) {       // overflows the 6-bit counter
        rm.beginClause(big.data(), 600);
        rm.commit();                    // and truncates every clause
    }
    ASSERT_TRUE(rm.overflowed());
    ASSERT_TRUE(rm.clauseTruncated());
    ASSERT_GT(rm.droppedSatisfiers(), 0u);

    rm.reset();
    EXPECT_EQ(rm.satisfierCount(), 0u);
    EXPECT_FALSE(rm.overflowed());
    EXPECT_FALSE(rm.clauseTruncated());
    EXPECT_EQ(rm.droppedSatisfiers(), 0u);

    // A replay is indistinguishable from the same query on a fresh
    // memory.
    ResultMemory fresh(2 * 512, 512);
    std::vector<std::uint8_t> small{1, 2, 3};
    for (ResultMemory *m : {&rm, &fresh}) {
        m->beginClause(small.data(), 3);
        m->commit();
    }
    EXPECT_EQ(rm.satisfierCount(), fresh.satisfierCount());
    EXPECT_EQ(rm.slot(0), fresh.slot(0));
    EXPECT_EQ(rm.overflowed(), fresh.overflowed());
    EXPECT_EQ(rm.clauseTruncated(), fresh.clauseTruncated());
}

TEST(ResultMemoryTest, WorstCaseSizingMatchesOneTrack)
{
    // 32 KB / 512-byte sectors = 64 clauses: one disk track.
    ResultMemory rm;
    storage::DiskGeometry g = storage::DiskGeometry::fujitsuM2351A();
    EXPECT_EQ(rm.slotCount() * rm.slotBytes(), g.trackBytes());
}

// ---------------------------------------------------------------------
// The full engine.
// ---------------------------------------------------------------------

class Fs2EngineTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    term::TermWriter writer{sym};

    storage::ClauseFile
    build(const std::string &text)
    {
        storage::ClauseFileBuilder builder(writer);
        for (const auto &c : reader.parseProgram(text))
            builder.add(c);
        return builder.finish();
    }
};

TEST_F(Fs2EngineTest, MarriedCoupleScenario)
{
    storage::ClauseFile file = build(
        "married_couple(john, mary).\n"
        "married_couple(pat, pat).\n"
        "married_couple(X, X).\n");
    term::ParsedQuery q = reader.parseQuery("married_couple(S, S)");
    Fs2Engine engine;
    engine.setQuery(q.arena, q.goals[0]);
    Fs2SearchResult r = engine.search(file);
    EXPECT_EQ(r.acceptedOrdinals, (std::vector<std::uint32_t>{1, 2}));
    EXPECT_EQ(r.clausesExamined, 3u);
    EXPECT_EQ(r.satisfiers, 2u);
}

TEST_F(Fs2EngineTest, BusyTimeIsTable1Weighted)
{
    storage::ClauseFile file = build("p(a, b).\n");
    term::ParsedQuery q = reader.parseQuery("p(a, b)");
    Fs2Engine engine;
    engine.setQuery(q.arena, q.goals[0]);
    Fs2SearchResult r = engine.search(file);
    // Two MATCH operations at 105 ns each.
    EXPECT_EQ(r.ops[static_cast<std::size_t>(TueOp::Match)], 2u);
    EXPECT_EQ(r.tueBusyTime, nanoseconds(210));
    EXPECT_EQ(r.sequencerTime, 0u);
}

TEST_F(Fs2EngineTest, SequencerOverheadConfigurable)
{
    storage::ClauseFile file = build("p(a).\n");
    term::ParsedQuery q = reader.parseQuery("p(a)");
    Fs2Config config;
    config.sequencerOverhead = nanoseconds(125);    // the 8 MHz clock
    Fs2Engine engine(config);
    engine.setQuery(q.arena, q.goals[0]);
    Fs2SearchResult r = engine.search(file);
    EXPECT_GT(r.sequencerTime, 0u);
    EXPECT_EQ(r.sequencerTime,
              nanoseconds(125) * r.microInstructions);
}

TEST_F(Fs2EngineTest, WithDiskElapsedIsDiskBound)
{
    std::string text;
    for (int i = 0; i < 50; ++i)
        text += "p(a" + std::to_string(i) + ", b).\n";
    storage::ClauseFile file = build(text);
    term::ParsedQuery q = reader.parseQuery("p(X, b)");
    storage::DiskModel disk(storage::DiskGeometry::fujitsuM2351A());
    disk.load(file.image());

    Fs2Engine engine;
    engine.setQuery(q.arena, q.goals[0]);
    Fs2SearchResult r = engine.search(file, &disk);
    // The filter is far faster than the disk: elapsed is the disk
    // stream time plus at most the final clause's examination, the
    // engine never overruns, and it mostly stalls.
    EXPECT_GE(r.elapsed, r.diskTime);
    EXPECT_LT(r.elapsed - r.diskTime, 10 * kMicrosecond);
    EXPECT_EQ(r.overruns, 0u);
    EXPECT_GT(r.stallTime, 0u);
    EXPECT_GT(r.filterRate(), disk.geometry().transferRate);
}

TEST_F(Fs2EngineTest, SearchSelectedExaminesOnlyCandidates)
{
    storage::ClauseFile file = build(
        "p(a).\np(b).\np(a).\np(c).\np(a).\n");
    term::ParsedQuery q = reader.parseQuery("p(a)");
    Fs2Engine engine;
    engine.setQuery(q.arena, q.goals[0]);
    Fs2SearchResult r = engine.searchSelected(file, {0, 2, 3});
    EXPECT_EQ(r.clausesExamined, 3u);
    EXPECT_EQ(r.acceptedOrdinals, (std::vector<std::uint32_t>{0, 2}));
}

TEST_F(Fs2EngineTest, PredicateMismatchIsFatal)
{
    storage::ClauseFile file = build("p(a).\n");
    term::ParsedQuery q = reader.parseQuery("q(a)");
    Fs2Engine engine;
    engine.setQuery(q.arena, q.goals[0]);
    EXPECT_THROW(engine.search(file), FatalError);
}

TEST_F(Fs2EngineTest, SearchBeforeSetQueryPanics)
{
    storage::ClauseFile file = build("p(a).\n");
    Fs2Engine engine;
    EXPECT_DEATH(engine.search(file), "Set Query");
}

TEST_F(Fs2EngineTest, ZeroArityPredicate)
{
    storage::ClauseFile file = build("go.\ngo.\n");
    term::ParsedQuery q = reader.parseQuery("go");
    Fs2Engine engine;
    engine.setQuery(q.arena, q.goals[0]);
    Fs2SearchResult r = engine.search(file);
    EXPECT_EQ(r.acceptedOrdinals.size(), 2u);
}

TEST_F(Fs2EngineTest, ResultMemoryHoldsAcceptedRecords)
{
    storage::ClauseFile file = build("p(a).\np(b).\np(a).\n");
    term::ParsedQuery q = reader.parseQuery("p(a)");
    Fs2Engine engine;
    engine.setQuery(q.arena, q.goals[0]);
    Fs2SearchResult r = engine.search(file);
    ASSERT_EQ(r.satisfiers, 2u);
    // Read Result mode: slot 0 holds clause 0's record bytes.
    std::vector<std::uint8_t> slot0 = engine.results().slot(0);
    const storage::ClauseRecord &rec = file.record(0);
    std::vector<std::uint8_t> expected(
        file.image().begin() + rec.offset,
        file.image().begin() + rec.offset + rec.length);
    EXPECT_EQ(slot0, expected);
}

TEST_F(Fs2EngineTest, TracingRecordsRoutes)
{
    storage::ClauseFile file = build("p(a).\n");
    term::ParsedQuery q = reader.parseQuery("p(X)");
    Fs2Engine engine;
    engine.tue().setTracing(true);
    engine.setQuery(q.arena, q.goals[0]);
    engine.search(file);
    ASSERT_FALSE(engine.tue().trace().empty());
    EXPECT_EQ(engine.tue().trace()[0].op, TueOp::QueryStore);
    EXPECT_NE(engine.tue().trace()[0].route.find("Sel6"),
              std::string::npos);
}

/**
 * The central equivalence property: the microcoded engine and the
 * functional stream matcher agree exactly — verdicts, accepted sets
 * and operation counts — across randomized clause sets and queries,
 * at every level and cross-binding setting.
 */
class EngineEquivalence : public ::testing::TestWithParam<
                              std::tuple<int, bool>>
{
};

TEST_P(EngineEquivalence, MatchesFunctionalModel)
{
    auto [level, cross_binding] = GetParam();

    term::SymbolTable sym;
    term::TermWriter writer(sym);
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 2;
    spec.clausesPerPredicate = 120;
    spec.varProb = 0.25;
    spec.sharedVarProb = 0.35;
    spec.structProb = 0.3;
    spec.listProb = 0.1;
    spec.seed = 31 + static_cast<std::uint64_t>(level);
    term::Program program = kbgen.generate(spec);

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.45;
    qspec.sharedVarProb = 0.4;
    qspec.seed = 3;
    workload::QueryGenerator qgen(sym, qspec);

    pif::Encoder encoder;
    unify::PifMatcher matcher(
        unify::PifMatchConfig{level, cross_binding});

    for (const auto &pred : program.predicates()) {
        storage::ClauseFileBuilder builder(writer);
        for (std::size_t i : program.clausesOf(pred))
            builder.add(program.clause(i));
        storage::ClauseFile file = builder.finish();

        for (int qi = 0; qi < 5; ++qi) {
            workload::GeneratedQuery q = qgen.generate(program, pred);
            pif::EncodedArgs qargs = encoder.encodeArgs(
                q.arena, q.goal, pif::Side::Query);

            Fs2Config config;
            config.level = level;
            config.crossBinding = cross_binding;
            Fs2Engine engine(config);
            engine.setQuery(qargs, pred);
            Fs2SearchResult hw = engine.search(file);

            unify::TueOpCounts sw_ops{};
            std::vector<std::uint32_t> sw_accepted;
            for (std::size_t i = 0; i < file.clauseCount(); ++i) {
                unify::PifMatchResult m = matcher.match(
                    file.decodeArgs(i), qargs);
                if (m.hit)
                    sw_accepted.push_back(
                        static_cast<std::uint32_t>(i));
                for (std::size_t o = 0; o < unify::kTueOpCount; ++o)
                    sw_ops[o] += m.opCounts[o];
            }

            EXPECT_EQ(hw.acceptedOrdinals, sw_accepted)
                << "accepted sets diverge at level " << level;
            EXPECT_EQ(hw.ops, sw_ops)
                << "op counts diverge at level " << level;
        }
    }
}

/**
 * The compiled routines against their oracle: the AOT-lowered matcher
 * must reproduce the interpreter bit for bit — verdicts, Table-1 op
 * streams, microinstruction counts, and every timing field — across
 * randomized clause sets, at every level and cross-binding setting.
 * Nonzero sequencer overhead so the tick streams actually diverge if
 * an instruction is mis-counted.
 */
TEST_P(EngineEquivalence, CompiledRoutinesMatchInterpreter)
{
    auto [level, cross_binding] = GetParam();

    term::SymbolTable sym;
    term::TermWriter writer(sym);
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 2;
    spec.clausesPerPredicate = 120;
    spec.varProb = 0.25;
    spec.sharedVarProb = 0.35;
    spec.structProb = 0.3;
    spec.listProb = 0.1;
    spec.seed = 97 + static_cast<std::uint64_t>(level);
    term::Program program = kbgen.generate(spec);

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.45;
    qspec.sharedVarProb = 0.4;
    qspec.seed = 11;
    workload::QueryGenerator qgen(sym, qspec);
    pif::Encoder encoder;

    for (const auto &pred : program.predicates()) {
        storage::ClauseFileBuilder builder(writer);
        for (std::size_t i : program.clausesOf(pred))
            builder.add(program.clause(i));
        storage::ClauseFile file = builder.finish();

        for (int qi = 0; qi < 5; ++qi) {
            workload::GeneratedQuery q = qgen.generate(program, pred);
            pif::EncodedArgs qargs = encoder.encodeArgs(
                q.arena, q.goal, pif::Side::Query);

            Fs2Config config;
            config.level = level;
            config.crossBinding = cross_binding;
            config.sequencerOverhead = 125 * kNanosecond;

            Fs2Engine interp(config);
            interp.setQuery(qargs, pred);
            Fs2SearchResult expected = interp.search(file);

            config.compiled = true;
            Fs2Engine compiled(config);
            compiled.setQuery(qargs, pred);
            Fs2SearchResult got = compiled.search(file);

            const std::string label = "level " +
                std::to_string(level) +
                (cross_binding ? " cb" : " nocb") + " query " +
                std::to_string(qi);
            EXPECT_EQ(got.acceptedOrdinals, expected.acceptedOrdinals)
                << label;
            EXPECT_EQ(got.ops, expected.ops) << label;
            EXPECT_EQ(got.microInstructions, expected.microInstructions)
                << label;
            EXPECT_EQ(got.tueBusyTime, expected.tueBusyTime) << label;
            EXPECT_EQ(got.sequencerTime, expected.sequencerTime)
                << label;
            EXPECT_EQ(got.elapsed, expected.elapsed) << label;
            EXPECT_EQ(got.clausesExamined, expected.clausesExamined)
                << label;
            EXPECT_EQ(got.bytesStreamed, expected.bytesStreamed)
                << label;
            EXPECT_EQ(got.satisfiers, expected.satisfiers) << label;
            EXPECT_EQ(got.stallTime, expected.stallTime) << label;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EngineEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Bool()),
    [](const auto &info) {
        return "L" + std::to_string(std::get<0>(info.param)) +
            (std::get<1>(info.param) ? "_cb" : "_nocb");
    });

// ---------------------------------------------------------------------
// WCS accounting: the sequencer clock is instructions x overhead.
// ---------------------------------------------------------------------

TEST(WcsAccountingTest, SequencerTimeIsInstructionsTimesOverhead)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    storage::ClauseFileBuilder builder(writer);
    for (auto &c : reader.parseProgram(
             "p(a, f(b, c)).\np(X, g(X)).\np(b, [1, 2, 3]).\n"))
        builder.add(c);
    storage::ClauseFile file = builder.finish();
    term::ParsedQuery q = reader.parseQuery("p(X, Y)");

    for (Tick overhead : {Tick{0}, 125 * kNanosecond, 7 * kNanosecond}) {
        for (bool compiled : {false, true}) {
            Fs2Config config;
            config.sequencerOverhead = overhead;
            config.compiled = compiled;
            Fs2Engine engine(config);
            engine.setQuery(q.arena, q.goals[0]);
            Fs2SearchResult r = engine.search(file);
            EXPECT_GT(r.microInstructions, 0u);
            EXPECT_EQ(r.sequencerTime,
                      static_cast<Tick>(r.microInstructions) * overhead)
                << "overhead " << overhead << (compiled ? " compiled"
                                                        : " interpreted");
        }
    }
}

} // namespace
} // namespace clare::fs2
