/**
 * @file
 * Tests for the selector-level TUE structural model: memory reset
 * semantics, observable store effects (the data really lands at the
 * addressed cell), cross-bound reference walking, and exact
 * equivalence — verdicts and per-pair operation sequences — with the
 * shared functional core over randomized variable-heavy streams.
 */

#include <gtest/gtest.h>

#include "fs2/tue_datapath.hh"
#include "pif/encoder.hh"
#include "term/term_reader.hh"
#include "unify/pair_engine.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare::fs2 {
namespace {

using pif::PifItem;
using unify::TueOp;

class TueDatapathTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    pif::Encoder encoder;
    TueDatapath dp;

    pif::EncodedArgs
    encode(const std::string &text, pif::Side side)
    {
        term::ParsedTerm t = reader.parseTerm(text);
        return encoder.encodeArgs(t.arena, t.root, side);
    }
};

TEST_F(TueDatapathTest, QueryMemoryLayout)
{
    pif::EncodedArgs q = encode("p(X, a, X)", pif::Side::Query);
    dp.loadQuery(q);
    dp.resetForClause(0);
    EXPECT_EQ(dp.queryItem(1).content, sym.lookup("a"));
    EXPECT_FALSE(dp.queryCell(0).bound);    // X starts unbound
}

TEST_F(TueDatapathTest, DbStoreDepositsQueryArgument)
{
    pif::EncodedArgs q = encode("p(foo)", pif::Side::Query);
    pif::EncodedArgs c = encode("p(V)", pif::Side::Db);
    dp.loadQuery(q);
    dp.resetForClause(c.varSlots);

    TueExecResult r = dp.execute(c.items[0], 0);
    EXPECT_TRUE(r.hit);
    ASSERT_EQ(r.performed, (std::vector<TueOp>{TueOp::DbStore}));
    // Figure 7's effect: the query item now sits in DB Memory at the
    // variable's offset.
    ASSERT_TRUE(dp.dbCell(0).bound);
    EXPECT_EQ(dp.dbCell(0).item, q.items[0]);
}

TEST_F(TueDatapathTest, QueryStoreDepositsDbArgument)
{
    pif::EncodedArgs q = encode("p(X)", pif::Side::Query);
    pif::EncodedArgs c = encode("p(bar)", pif::Side::Db);
    dp.loadQuery(q);
    dp.resetForClause(0);

    TueExecResult r = dp.execute(c.items[0], 0);
    EXPECT_TRUE(r.hit);
    ASSERT_EQ(r.performed, (std::vector<TueOp>{TueOp::QueryStore}));
    ASSERT_TRUE(dp.queryCell(0).bound);
    EXPECT_EQ(dp.queryCell(0).item, c.items[0]);
}

TEST_F(TueDatapathTest, SubsequentFetchComparesBinding)
{
    pif::EncodedArgs q = encode("p(S, S)", pif::Side::Query);
    dp.loadQuery(q);

    // married_couple(john, mary): mismatch caught on the fetch.
    pif::EncodedArgs miss = encode("p(john, mary)", pif::Side::Db);
    dp.resetForClause(0);
    EXPECT_TRUE(dp.execute(miss.items[0], 0).hit);
    TueExecResult r = dp.execute(miss.items[1], 1);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.performed, (std::vector<TueOp>{TueOp::QueryFetch}));

    // (pat, pat) passes.
    pif::EncodedArgs hit = encode("p(pat, pat)", pif::Side::Db);
    dp.resetForClause(0);
    EXPECT_TRUE(dp.execute(hit.items[0], 0).hit);
    EXPECT_TRUE(dp.execute(hit.items[1], 1).hit);
}

TEST_F(TueDatapathTest, ResetClearsBothMemories)
{
    pif::EncodedArgs q = encode("p(X)", pif::Side::Query);
    pif::EncodedArgs c = encode("p(bar)", pif::Side::Db);
    dp.loadQuery(q);
    dp.resetForClause(1);
    dp.execute(c.items[0], 0);
    EXPECT_TRUE(dp.queryCell(0).bound);
    dp.resetForClause(1);
    EXPECT_FALSE(dp.queryCell(0).bound);
    EXPECT_FALSE(dp.dbCell(0).bound);
}

TEST_F(TueDatapathTest, PaperCrossBindingWalk)
{
    // Section 3.3.6: f(X,a,b) against f(A,a,A).
    pif::EncodedArgs q = encode("f(X, a, b)", pif::Side::Query);
    pif::EncodedArgs c = encode("f(A, a, A)", pif::Side::Db);
    dp.loadQuery(q);
    dp.resetForClause(c.varSlots);

    TueExecResult r0 = dp.execute(c.items[0], 0);
    EXPECT_TRUE(r0.hit);    // mutual var-var store
    EXPECT_EQ(r0.performed,
              (std::vector<TueOp>{TueOp::DbStore, TueOp::QueryStore}));
    // DB Memory holds the reference to the query variable.
    EXPECT_TRUE(pif::isQueryVarItem(dp.dbCell(0).item));

    EXPECT_TRUE(dp.execute(c.items[1], 1).hit);     // a vs a

    TueExecResult r2 = dp.execute(c.items[2], 2);   // Sub-DV A vs b
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.performed,
              (std::vector<TueOp>{TueOp::DbCrossBoundFetch}));
}

TEST_F(TueDatapathTest, QueryCrossBoundFetchFires)
{
    pif::EncodedArgs q = encode("f(X, X)", pif::Side::Query);
    pif::EncodedArgs c = encode("f(A, b)", pif::Side::Db);
    dp.loadQuery(q);
    dp.resetForClause(c.varSlots);
    dp.execute(c.items[0], 0);
    TueExecResult r = dp.execute(c.items[1], 1);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.performed,
              (std::vector<TueOp>{TueOp::QueryCrossBoundFetch}));
}

TEST_F(TueDatapathTest, ComplexHeaderMatch)
{
    pif::EncodedArgs q = encode("p(f(a, b))", pif::Side::Query);
    dp.loadQuery(q);
    dp.resetForClause(0);
    pif::EncodedArgs same = encode("p(f(x, y))", pif::Side::Db);
    // Header-level compare of f/2 vs f/2 passes; elements are the
    // sequencer's business.
    EXPECT_TRUE(dp.execute(same.items[0], 0).hit);
    pif::EncodedArgs other = encode("p(g(x, y))", pif::Side::Db);
    EXPECT_FALSE(dp.execute(other.items[0], 0).hit);
}

/**
 * Equivalence property: over randomized variable-heavy argument
 * streams (simple arguments, so pairs align one to one), the
 * structural machine and the functional PairEngine produce identical
 * verdicts and identical per-pair operation sequences.
 */
TEST(TueDatapathEquivalence, MatchesPairEngine)
{
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 400;
    spec.arityMin = 4;
    spec.arityMax = 6;
    spec.varProb = 0.45;
    spec.sharedVarProb = 0.5;
    spec.structProb = 0.0;      // simple args: pairs align 1:1
    spec.listProb = 0.0;
    spec.atomVocabulary = 6;    // plenty of accidental matches
    spec.seed = 77;
    term::Program program = kbgen.generate(spec);
    const auto &pred = program.predicates()[0];

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.35;
    qspec.sharedVarProb = 0.6;
    qspec.seed = 5;
    workload::QueryGenerator qgen(sym, qspec);

    pif::Encoder encoder;
    for (int qi = 0; qi < 8; ++qi) {
        workload::GeneratedQuery q = qgen.generate(program, pred);
        pif::EncodedArgs qargs = encoder.encodeArgs(q.arena, q.goal,
                                                    pif::Side::Query);
        TueDatapath dp;
        dp.loadQuery(qargs);
        unify::PairEngine engine(3, true);

        for (std::size_t ci : program.clausesOf(pred)) {
            const term::Clause &clause = program.clause(ci);
            pif::EncodedArgs cargs = encoder.encodeArgs(
                clause.arena(), clause.head(), pif::Side::Db);

            dp.resetForClause(cargs.varSlots);
            engine.reset(cargs.varSlots, qargs.varSlots);

            for (std::size_t a = 0; a < cargs.items.size(); ++a) {
                std::vector<TueOp> functional_ops;
                bool functional_hit = engine.matchPair(
                    cargs.items[a], qargs.items[a],
                    [&functional_ops](TueOp op) {
                        functional_ops.push_back(op);
                    });
                TueExecResult structural = dp.execute(cargs.items[a], a);
                ASSERT_EQ(structural.hit, functional_hit)
                    << "verdict divergence, clause " << ci
                    << " arg " << a;
                ASSERT_EQ(structural.performed, functional_ops)
                    << "op divergence, clause " << ci << " arg " << a;
                if (!functional_hit)
                    break;  // both reject: next clause
            }
        }
    }
}

} // namespace
} // namespace clare::fs2
