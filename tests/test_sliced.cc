/**
 * @file
 * The bit-sliced FS1 index plane (ctest label: sliced).
 *
 * The contract under test is exactness: the word-parallel kernel is a
 * host-side optimization, so every observable — survivor sets (order
 * included), entriesScanned, bytesScanned, busyTime, the full server
 * response — must be bit-identical to the row-major scan at any worker
 * count and any batch width.  The suite property-tests the
 * SlicedMatcher against the structural PlaMatcher across generator
 * configurations, mask densities, and entry counts straddling 64-entry
 * word boundaries; round-trips the persisted v3 plane section; and
 * checks that a corrupted plane is a typed load error, never wrong
 * survivors.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "crs/server.hh"
#include "crs/store.hh"
#include "crs/store_io.hh"
#include "fs1/fs1_engine.hh"
#include "fs1/pla_matcher.hh"
#include "fs1/sliced_matcher.hh"
#include "scw/bit_sliced_index.hh"
#include "storage/file_io.hh"
#include "support/errors.hh"
#include "support/thread_pool.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare {
namespace {

/** One generated predicate compiled to all three index forms. */
struct BuiltIndex
{
    scw::CodewordGenerator generator;
    storage::ClauseFile file;
    scw::SecondaryFile index;
    scw::BitSlicedIndex plane;
    std::vector<scw::Signature> queries;
};

BuiltIndex
buildIndex(term::SymbolTable &sym, scw::ScwConfig scw_config,
           const workload::KbSpec &spec, std::size_t query_count,
           double bound_arg_prob)
{
    BuiltIndex out{scw::CodewordGenerator(scw_config), {}, {}, {}, {}};
    workload::KbGenerator kbgen(sym);
    term::Program program = kbgen.generate(spec);
    const auto &pred = program.predicates()[0];

    term::TermWriter writer(sym);
    storage::ClauseFileBuilder builder(writer);
    std::vector<scw::Signature> sigs;
    for (std::size_t i : program.clausesOf(pred)) {
        const term::Clause &c = program.clause(i);
        builder.add(c);
        sigs.push_back(out.generator.encode(c.arena(), c.head()));
    }
    out.file = builder.finish();
    out.index = scw::SecondaryFile::build(out.generator, sigs, out.file);
    out.plane = scw::BitSlicedIndex::build(out.generator, out.index);

    workload::QuerySpec qspec;
    qspec.boundArgProb = bound_arg_prob;
    qspec.seed = spec.seed + 1000;
    workload::QueryGenerator qgen(sym, qspec);
    for (std::size_t q = 0; q < query_count; ++q) {
        workload::GeneratedQuery gq = qgen.generate(program, pred);
        out.queries.push_back(out.generator.encode(gq.arena, gq.goal));
    }
    return out;
}

/** PlaMatcher survivors of @p query over @p range, in entry order. */
std::vector<scw::IndexEntry>
plaSurvivors(const BuiltIndex &built, const scw::Signature &query,
             const scw::EntryRange &range)
{
    fs1::PlaMatcher pla(built.generator);
    pla.setQuery(query);
    std::vector<scw::IndexEntry> hits;
    for (std::size_t i = range.begin; i < range.end; ++i) {
        scw::IndexEntry entry = built.index.entry(built.generator, i);
        if (pla.present(entry.signature))
            hits.push_back(std::move(entry));
    }
    return hits;
}

void
expectSameHits(const std::vector<scw::IndexEntry> &expected,
               const fs1::SlicedMatcher::Hits &got,
               const std::string &label)
{
    ASSERT_EQ(got.clauseOffsets.size(), expected.size()) << label;
    ASSERT_EQ(got.ordinals.size(), expected.size()) << label;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got.clauseOffsets[i], expected[i].clauseOffset)
            << label << " hit " << i;
        EXPECT_EQ(got.ordinals[i], expected[i].ordinal)
            << label << " hit " << i;
    }
}

// ---------------------------------------------------------------------
// SlicedMatcher vs PlaMatcher: the exactness property.
// ---------------------------------------------------------------------

TEST(SlicedMatcherTest, AgreesWithPlaAcrossConfigsAndMaskDensities)
{
    struct Case
    {
        std::uint32_t fieldBits;
        std::uint32_t bitsPerTerm;
        std::uint32_t arityMin, arityMax;
        std::uint32_t clauses;      // straddle 64-entry word boundaries
        double varProb;             // mask-plane density
    };
    const Case cases[] = {
        {16, 2, 1, 3, 63, 0.0},     // ground, just under one word
        {16, 2, 1, 3, 64, 0.15},    // exactly one word
        {16, 2, 2, 4, 65, 0.35},    // one word + 1 entry
        {8, 1, 1, 2, 130, 0.6},     // narrow fields, mask-heavy
        {32, 3, 2, 5, 200, 0.1},    // wide fields
        {16, 2, 10, 14, 90, 0.2},   // arity past the encoding limit
    };
    for (const Case &c : cases) {
        term::SymbolTable sym;
        scw::ScwConfig scw_config;
        scw_config.fieldBits = c.fieldBits;
        scw_config.bitsPerTerm = c.bitsPerTerm;
        workload::KbSpec spec;
        spec.predicates = 1;
        spec.clausesPerPredicate = c.clauses;
        spec.arityMin = c.arityMin;
        spec.arityMax = c.arityMax;
        spec.varProb = c.varProb;
        spec.structProb = 0.2;
        spec.seed = 7 + c.clauses;
        BuiltIndex built = buildIndex(sym, scw_config, spec, 6, 0.7);
        ASSERT_EQ(built.plane.entryCount(), built.index.entryCount());

        scw::EntryRange all{0, built.index.entryCount()};
        fs1::SlicedMatcher matcher;
        for (std::size_t q = 0; q < built.queries.size(); ++q) {
            std::string label = std::to_string(c.clauses) + " clauses, "
                + std::to_string(c.fieldBits) + " bits, query "
                + std::to_string(q);
            expectSameHits(
                plaSurvivors(built, built.queries[q], all),
                matcher.scanRange(built.plane, built.queries[q], all),
                label);
        }
    }
}

TEST(SlicedMatcherTest, PartialRangesAreEdgeMaskedExactly)
{
    term::SymbolTable sym;
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 150;
    spec.varProb = 0.25;
    spec.seed = 21;
    BuiltIndex built = buildIndex(sym, {}, spec, 3, 0.6);

    // Ranges deliberately misaligned with the 64-entry word grid,
    // including within-one-word and empty ranges.
    const scw::EntryRange ranges[] = {
        {0, 1},   {0, 63},  {1, 64},   {63, 65}, {64, 128},
        {65, 67}, {17, 93}, {100, 150}, {149, 150}, {70, 70},
    };
    fs1::SlicedMatcher matcher;
    for (const scw::EntryRange &range : ranges) {
        for (std::size_t q = 0; q < built.queries.size(); ++q) {
            std::string label = "range [" + std::to_string(range.begin) +
                ", " + std::to_string(range.end) + ") query " +
                std::to_string(q);
            expectSameHits(
                plaSurvivors(built, built.queries[q], range),
                matcher.scanRange(built.plane, built.queries[q], range),
                label);
        }
    }
}

TEST(SlicedMatcherTest, ScanBatchMatchesPerQueryScans)
{
    term::SymbolTable sym;
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 127;
    spec.varProb = 0.2;
    spec.seed = 33;
    BuiltIndex built = buildIndex(sym, {}, spec, 9, 0.8);

    fs1::SlicedMatcher matcher;
    std::vector<fs1::SlicedMatcher::Hits> batch =
        matcher.scanBatch(built.plane, built.queries);
    ASSERT_EQ(batch.size(), built.queries.size());
    scw::EntryRange all{0, built.index.entryCount()};
    for (std::size_t q = 0; q < built.queries.size(); ++q) {
        fs1::SlicedMatcher single;
        fs1::SlicedMatcher::Hits expected =
            single.scanRange(built.plane, built.queries[q], all);
        EXPECT_EQ(batch[q].clauseOffsets, expected.clauseOffsets)
            << "query " << q;
        EXPECT_EQ(batch[q].ordinals, expected.ordinals) << "query " << q;
    }
}

// ---------------------------------------------------------------------
// Fs1Engine: sliced scans are bit-identical, shards and batches alike.
// ---------------------------------------------------------------------

void
expectSameResult(const fs1::Fs1Result &a, const fs1::Fs1Result &b,
                 const std::string &label)
{
    EXPECT_EQ(a.clauseOffsets, b.clauseOffsets) << label;
    EXPECT_EQ(a.ordinals, b.ordinals) << label;
    EXPECT_EQ(a.entriesScanned, b.entriesScanned) << label;
    EXPECT_EQ(a.bytesScanned, b.bytesScanned) << label;
    EXPECT_EQ(a.busyTime, b.busyTime) << label;
}

TEST(Fs1SlicedEngineTest, SearchBitIdenticalAtAnyWorkerCount)
{
    term::SymbolTable sym;
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 321;
    spec.varProb = 0.15;
    spec.seed = 44;
    BuiltIndex built = buildIndex(sym, {}, spec, 5, 0.7);

    fs1::Fs1Engine scalar(built.generator);
    fs1::Fs1Config sliced_config;
    sliced_config.sliced = true;
    fs1::Fs1Engine sliced(built.generator, sliced_config);

    support::ThreadPool pool(4);
    for (const scw::Signature &query : built.queries) {
        fs1::Fs1Result baseline = scalar.search(built.index, query);
        for (std::uint32_t shards : {1u, 2u, 4u, 7u}) {
            fs1::Fs1Result got = sliced.search(
                built.index, &built.plane, query,
                shards > 1 ? &pool : nullptr, shards);
            expectSameResult(baseline, got,
                             std::to_string(shards) + " shards");
            EXPECT_EQ(got.shards,
                      shards > 1 ? shards : 1u);
        }
    }
}

TEST(Fs1SlicedEngineTest, SearchBatchIdenticalToPerQuerySearches)
{
    term::SymbolTable sym;
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 256;
    spec.varProb = 0.2;
    spec.seed = 55;
    BuiltIndex built = buildIndex(sym, {}, spec, 8, 0.8);

    fs1::Fs1Config config;
    config.sliced = true;
    fs1::Fs1Engine engine(built.generator, config);
    std::vector<obs::Observer> no_obs(built.queries.size());
    std::vector<fs1::Fs1Result> batch = engine.searchBatch(
        built.index, &built.plane, built.queries, no_obs);
    ASSERT_EQ(batch.size(), built.queries.size());

    fs1::Fs1Engine scalar(built.generator);
    for (std::size_t q = 0; q < built.queries.size(); ++q) {
        fs1::Fs1Result expected =
            scalar.search(built.index, built.queries[q]);
        expectSameResult(expected, batch[q],
                         "query " + std::to_string(q));
    }
}

TEST(Fs1SlicedEngineTest, MissingPlaneFallsBackToScalarScan)
{
    term::SymbolTable sym;
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 80;
    spec.seed = 66;
    BuiltIndex built = buildIndex(sym, {}, spec, 2, 0.7);

    fs1::Fs1Config config;
    config.sliced = true;
    fs1::Fs1Engine engine(built.generator, config);
    fs1::Fs1Engine scalar(built.generator);
    for (const scw::Signature &query : built.queries) {
        expectSameResult(scalar.search(built.index, query),
                         engine.search(built.index, nullptr, query,
                                       nullptr, 1),
                         "null plane");
    }
}

// ---------------------------------------------------------------------
// Persistence: the v3 CLSX section round-trips, corruption is typed.
// ---------------------------------------------------------------------

class SlicedStoreTest : public ::testing::Test
{
  protected:
    std::string dir_ = ::testing::TempDir() + "clare_sliced_store";
    term::SymbolTable sym_;
    std::unique_ptr<crs::PredicateStore> store_;

    void
    SetUp() override
    {
        term::TermReader reader(sym_);
        term::Program program;
        for (auto &c : reader.parseProgram(
                 "p(a, 1).\np(b, 2).\np(a, 3).\np(c, 4).\n"
                 "q(a).\nq(b).\nq(c).\n"))
            program.add(std::move(c));
        store_ = std::make_unique<crs::PredicateStore>(
            sym_, scw::CodewordGenerator{});
        store_->addProgram(program);
        store_->buildSlicedIndexes();
        store_->finalize();
        crs::saveStore(dir_, *store_, sym_);
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string
    idxPathOf(std::uint32_t arity) const
    {
        for (const term::PredicateId &pred : store_->predicates()) {
            if (pred.arity == arity)
                return dir_ + "/pred_" + std::to_string(pred.functor) +
                    "_" + std::to_string(pred.arity) + ".idx";
        }
        ADD_FAILURE() << "no predicate of arity " << arity;
        return "";
    }
};

TEST_F(SlicedStoreTest, BuildSlicedIndexesIsIdempotent)
{
    for (const term::PredicateId &pred : store_->predicates())
        ASSERT_NE(store_->predicate(pred).sliced, nullptr);
    const scw::BitSlicedIndex *before =
        store_->predicate(store_->predicates()[0]).sliced.get();
    store_->buildSlicedIndexes();
    EXPECT_EQ(store_->predicate(store_->predicates()[0]).sliced.get(),
              before);
}

TEST_F(SlicedStoreTest, V3RoundTripCarriesIdenticalPlanes)
{
    term::SymbolTable fresh;
    crs::PredicateStore loaded = crs::loadStore(dir_, fresh);
    ASSERT_EQ(loaded.predicates().size(), store_->predicates().size());
    for (const term::PredicateId &pred : loaded.predicates()) {
        const crs::StoredPredicate &got = loaded.predicate(pred);
        ASSERT_NE(got.sliced, nullptr);
        EXPECT_TRUE(*got.sliced ==
                    scw::BitSlicedIndex::build(loaded.generator(),
                                               got.index));
        EXPECT_TRUE(*got.sliced ==
                    *store_->predicate(pred).sliced);
    }
}

TEST_F(SlicedStoreTest, SaveWithoutPrebuiltPlanesStillWritesV3)
{
    // A store whose planes were never built saves a transient
    // transpose, so every v3 store loads with planes available.
    term::SymbolTable sym2;
    term::TermReader reader(sym2);
    term::Program program;
    for (auto &c : reader.parseProgram("r(x).\nr(y).\n"))
        program.add(std::move(c));
    crs::PredicateStore plain(sym2, scw::CodewordGenerator{});
    plain.addProgram(program);
    plain.finalize();
    std::string dir = ::testing::TempDir() + "clare_sliced_transient";
    crs::saveStore(dir, plain, sym2);

    term::SymbolTable fresh;
    crs::PredicateStore loaded = crs::loadStore(dir, fresh);
    for (const term::PredicateId &pred : loaded.predicates())
        EXPECT_NE(loaded.predicate(pred).sliced, nullptr);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

TEST_F(SlicedStoreTest, CorruptPlaneSectionIsTypedLoadError)
{
    // Flip a plane word *inside* the page frame (re-framing keeps the
    // page CRC valid), so only the CLSX section CRC can catch it.
    std::string idx = idxPathOf(2);
    std::vector<std::uint8_t> payload = storage::readFramedBytes(idx);
    std::size_t entry_bytes = 0;
    for (const term::PredicateId &pred : store_->predicates())
        if (pred.arity == 2)
            entry_bytes = store_->predicate(pred).index.image().size();
    ASSERT_GT(payload.size(), entry_bytes + 40);
    payload[entry_bytes + 40] ^= 0x04;
    storage::writeFramedBytes(idx, payload);

    term::SymbolTable fresh;
    try {
        crs::loadStore(dir_, fresh);
        FAIL() << "corrupt plane section loaded";
    } catch (const CorruptionError &e) {
        EXPECT_NE(std::string(e.what()).find("sliced plane section"),
                  std::string::npos) << e.what();
    }
}

TEST_F(SlicedStoreTest, TrailingBytesAfterPlaneSectionRejected)
{
    std::string idx = idxPathOf(1);
    std::vector<std::uint8_t> payload = storage::readFramedBytes(idx);
    payload.push_back(0);
    storage::writeFramedBytes(idx, payload);
    // The framed size change is caught by the store audit; what must
    // never happen is a silent load.
    term::SymbolTable fresh;
    EXPECT_THROW(crs::loadStore(dir_, fresh), CorruptionError);
}

// ---------------------------------------------------------------------
// Server: --sliced + batchWidth is bit-identical to the plain server.
// ---------------------------------------------------------------------

class SlicedServerTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    std::unique_ptr<crs::PredicateStore> store;
    std::unique_ptr<term::TermReader> reader;
    std::vector<term::ParsedTerm> goals;

    void
    SetUp() override
    {
        workload::KbGenerator kbgen(sym);
        workload::KbSpec spec;
        spec.predicates = 3;
        spec.clausesPerPredicate = 150;
        spec.arityMin = 2;
        spec.arityMax = 2;
        spec.varProb = 0.1;
        spec.seed = 47;
        term::Program program = kbgen.generate(spec);
        store = std::make_unique<crs::PredicateStore>(
            sym, scw::CodewordGenerator{});
        store->addProgram(program);
        store->buildSlicedIndexes();
        store->finalize();
        reader = std::make_unique<term::TermReader>(sym);
        for (const char *text :
             {"p0(a1, X)", "p0(a2, X)", "p0(a3, X)", "p0(a1, b)",
              "p1(a4, X)", "p1(a5, X)", "p2(a6, X)", "p2(a7, X)"}) {
            goals.push_back(reader->parseTerm(text));
        }
    }

    std::unique_ptr<crs::ClauseRetrievalServer>
    makeServer(crs::CrsConfig config = {})
    {
        return std::make_unique<crs::ClauseRetrievalServer>(sym, *store,
                                                            config);
    }

    static crs::RetrievalRequest
    request(const term::ParsedTerm &goal,
            crs::SearchMode mode = crs::SearchMode::TwoStage)
    {
        crs::RetrievalRequest r;
        r.arena = &goal.arena;
        r.goal = goal.root;
        r.mode = mode;
        return r;
    }

    /** A batch mixing FS1 modes with non-FS1 ones, repeated goals. */
    std::vector<crs::RetrievalRequest>
    mixedBatch() const
    {
        std::vector<crs::RetrievalRequest> batch;
        for (int round = 0; round < 2; ++round) {
            for (std::size_t g = 0; g < goals.size(); ++g) {
                batch.push_back(request(goals[g]));
                if (g % 3 == 0)
                    batch.push_back(request(
                        goals[g], crs::SearchMode::SoftwareOnly));
                if (g % 4 == 1)
                    batch.push_back(request(
                        goals[g], crs::SearchMode::Fs1Only));
            }
        }
        return batch;
    }

    static void
    expectIdentical(const crs::RetrievalResponse &a,
                    const crs::RetrievalResponse &b,
                    const std::string &label)
    {
        EXPECT_EQ(a.mode, b.mode) << label;
        EXPECT_EQ(a.candidates, b.candidates) << label;
        EXPECT_EQ(a.answers, b.answers) << label;
        EXPECT_EQ(a.indexEntriesScanned, b.indexEntriesScanned) << label;
        EXPECT_EQ(a.fs1Hits, b.fs1Hits) << label;
        EXPECT_EQ(a.clausesExamined, b.clausesExamined) << label;
        EXPECT_EQ(a.filterOps, b.filterOps) << label;
        EXPECT_EQ(a.breakdown.queueWait, b.breakdown.queueWait) << label;
        EXPECT_EQ(a.breakdown.indexTime, b.breakdown.indexTime) << label;
        EXPECT_EQ(a.breakdown.filterTime, b.breakdown.filterTime)
            << label;
        EXPECT_EQ(a.breakdown.hostUnifyTime, b.breakdown.hostUnifyTime)
            << label;
        EXPECT_EQ(a.elapsed, b.elapsed) << label;
        EXPECT_EQ(a.elapsed, a.breakdown.serviceTime()) << label;
    }
};

TEST_F(SlicedServerTest, ServeBatchIdenticalAcrossWidthsAndWorkers)
{
    std::vector<crs::RetrievalRequest> batch = mixedBatch();
    for (std::uint32_t workers : {1u, 2u, 4u}) {
        crs::CrsConfig plain_config;
        plain_config.workers = workers;
        auto plain = makeServer(plain_config);
        std::vector<crs::RetrievalResponse> expected =
            plain->serveBatch(batch);

        for (std::uint32_t width : {2u, 4u, 8u}) {
            crs::CrsConfig config;
            config.workers = workers;
            config.fs1.sliced = true;
            config.batchWidth = width;
            auto server = makeServer(config);
            std::vector<crs::RetrievalResponse> got =
                server->serveBatch(batch);
            ASSERT_EQ(got.size(), expected.size());
            for (std::size_t i = 0; i < got.size(); ++i) {
                expectIdentical(expected[i], got[i],
                                "workers " + std::to_string(workers) +
                                    " width " + std::to_string(width) +
                                    " request " + std::to_string(i));
            }
        }
    }
}

TEST_F(SlicedServerTest, SlicedSingleRequestsMatchPlainServer)
{
    auto plain = makeServer();
    crs::CrsConfig config;
    config.fs1.sliced = true;
    auto sliced = makeServer(config);
    for (const term::ParsedTerm &goal : goals) {
        for (crs::SearchMode mode : {crs::SearchMode::Fs1Only,
                                     crs::SearchMode::TwoStage}) {
            expectIdentical(plain->serve(request(goal, mode)),
                            sliced->serve(request(goal, mode)),
                            crs::searchModeSlug(mode));
        }
    }
}

TEST_F(SlicedServerTest, BatchWidthConfigValidation)
{
    crs::CrsConfig config;
    config.batchWidth = 4;      // requires fs1.sliced
    EXPECT_THROW(makeServer(config), crs::ConfigError);
    config.fs1.sliced = true;
    EXPECT_NO_THROW(makeServer(config));
    config.batchWidth = 0;
    EXPECT_THROW(makeServer(config), crs::ConfigError);
    config.batchWidth = 257;
    EXPECT_THROW(makeServer(config), crs::ConfigError);
}

// ---------------------------------------------------------------------
// Kernel registry: detection, parsing, validation, dispatch.
// ---------------------------------------------------------------------

/** Concrete kernels the host can run, scalar oracle first. */
std::vector<fs1::Fs1Kernel>
supportedKernels()
{
    std::vector<fs1::Fs1Kernel> out;
    for (fs1::Fs1Kernel k : {fs1::Fs1Kernel::Scalar64,
                             fs1::Fs1Kernel::Avx2,
                             fs1::Fs1Kernel::Avx512})
        if (fs1::kernelSupported(k))
            out.push_back(k);
    return out;
}

TEST(KernelRegistryTest, ScalarAlwaysAvailableAndAutoResolves)
{
    EXPECT_TRUE(fs1::kernelSupported(fs1::Fs1Kernel::Scalar64));
    EXPECT_TRUE(fs1::kernelSupported(fs1::Fs1Kernel::Auto));
    fs1::Fs1Kernel resolved = fs1::resolveKernel(fs1::Fs1Kernel::Auto);
    EXPECT_NE(resolved, fs1::Fs1Kernel::Auto);
    EXPECT_TRUE(fs1::kernelSupported(resolved));
    // Explicit choices pass through unresolved.
    EXPECT_EQ(fs1::resolveKernel(fs1::Fs1Kernel::Scalar64),
              fs1::Fs1Kernel::Scalar64);
    EXPECT_NE(fs1::kernelFn(fs1::Fs1Kernel::Scalar64), nullptr);
}

TEST(KernelRegistryTest, NamesRoundTripAndRejectJunk)
{
    for (fs1::Fs1Kernel k : {fs1::Fs1Kernel::Auto,
                             fs1::Fs1Kernel::Scalar64,
                             fs1::Fs1Kernel::Avx2,
                             fs1::Fs1Kernel::Avx512}) {
        fs1::Fs1Kernel parsed;
        ASSERT_TRUE(fs1::parseKernelName(fs1::kernelName(k), parsed))
            << fs1::kernelName(k);
        EXPECT_EQ(parsed, k);
    }
    fs1::Fs1Kernel parsed = fs1::Fs1Kernel::Avx2;
    EXPECT_FALSE(fs1::parseKernelName("sse9", parsed));
    EXPECT_FALSE(fs1::parseKernelName("", parsed));
    EXPECT_FALSE(fs1::parseKernelName("AVX2", parsed));
    EXPECT_EQ(parsed, fs1::Fs1Kernel::Avx2);    // no write on failure
}

TEST(KernelRegistryTest, UnsupportedExplicitKernelIsConfigError)
{
    // An unsupported ISA must be a typed config rejection, not a
    // runtime crash.  On hosts supporting everything there is nothing
    // to reject; the validator accepting all supported choices is
    // still asserted.
    for (fs1::Fs1Kernel k : {fs1::Fs1Kernel::Avx2,
                             fs1::Fs1Kernel::Avx512}) {
        crs::CrsConfig config;
        config.fs1.sliced = true;
        config.fs1.kernel = k;
        if (fs1::kernelSupported(k))
            EXPECT_NO_THROW(config.validate()) << fs1::kernelName(k);
        else
            EXPECT_THROW(config.validate(), crs::ConfigError)
                << fs1::kernelName(k);
    }
}

// ---------------------------------------------------------------------
// Edge-mask derivation: the shared helper, all partial-word cases.
// ---------------------------------------------------------------------

TEST(EdgeMasksTest, CoversEveryPartialWordCase)
{
    constexpr std::uint64_t kOnes = ~std::uint64_t{0};

    // Full single word.
    fs1::EdgeMasks m = fs1::edgeMasks(0, 64);
    EXPECT_EQ(m.firstWord, 0u);
    EXPECT_EQ(m.wordEnd, 1u);
    EXPECT_EQ(m.lastWord, 0u);
    EXPECT_EQ(m.firstMask, kOnes);
    EXPECT_EQ(m.lastMask, kOnes);       // word-aligned end: no shift

    // Single entry.
    m = fs1::edgeMasks(0, 1);
    EXPECT_EQ(m.wordCount(), 1u);
    EXPECT_EQ(m.firstMask, kOnes);
    EXPECT_EQ(m.lastMask, std::uint64_t{1});

    // Just under a word.
    m = fs1::edgeMasks(0, 63);
    EXPECT_EQ(m.wordCount(), 1u);
    EXPECT_EQ(m.lastMask, kOnes >> 1);

    // One word plus one entry.
    m = fs1::edgeMasks(0, 65);
    EXPECT_EQ(m.wordCount(), 2u);
    EXPECT_EQ(m.lastWord, 1u);
    EXPECT_EQ(m.lastMask, std::uint64_t{1});

    // Same-word range: both masks land on word 1, and their AND keeps
    // exactly bits [1, 3).
    m = fs1::edgeMasks(65, 67);
    EXPECT_EQ(m.firstWord, 1u);
    EXPECT_EQ(m.lastWord, 1u);
    EXPECT_EQ(m.wordCount(), 1u);
    EXPECT_EQ(m.firstMask & m.lastMask, std::uint64_t{0x6});

    // Mid-word begin, word-aligned end.
    m = fs1::edgeMasks(70, 128);
    EXPECT_EQ(m.firstWord, 1u);
    EXPECT_EQ(m.wordEnd, 2u);
    EXPECT_EQ(m.firstMask, kOnes << 6);
    EXPECT_EQ(m.lastMask, kOnes);

    // Word-aligned begin, mid-word end, multi-word.
    m = fs1::edgeMasks(64, 200);
    EXPECT_EQ(m.firstWord, 1u);
    EXPECT_EQ(m.wordEnd, 4u);
    EXPECT_EQ(m.lastWord, 3u);
    EXPECT_EQ(m.firstMask, kOnes);
    EXPECT_EQ(m.lastMask, (std::uint64_t{1} << 8) - 1);
}

// ---------------------------------------------------------------------
// Boundary geometries vs the PLA oracle, on every supported kernel.
// ---------------------------------------------------------------------

TEST(SlicedKernelTest, BoundaryRangesAgreeWithPlaOnEveryKernel)
{
    term::SymbolTable sym;
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 193;     // three words + one entry
    spec.varProb = 0.25;
    spec.seed = 91;
    BuiltIndex built = buildIndex(sym, {}, spec, 4, 0.6);

    // Every length the issue calls out (0, 1, 63, 64, 65), plus
    // same-word and word-aligned-end ranges, at offsets that exercise
    // both aligned and misaligned begins.
    const scw::EntryRange ranges[] = {
        {0, 0},     {64, 64},   {100, 100},         // empty
        {0, 1},     {63, 64},   {64, 65}, {192, 193},
        {0, 63},    {1, 64},    {65, 128},          // length 63
        {0, 64},    {64, 128},  {128, 192},         // length 64
        {0, 65},    {63, 128},  {128, 193},         // length 65
        {65, 67},   {190, 193},                     // same-word
        {7, 64},    {70, 192},                      // word-aligned end
        {0, 193},                                   // whole plane
    };
    for (fs1::Fs1Kernel kernel : supportedKernels()) {
        fs1::SlicedMatcher matcher(kernel);
        EXPECT_EQ(matcher.kernel(), kernel);
        for (const scw::EntryRange &range : ranges) {
            for (std::size_t q = 0; q < built.queries.size(); ++q) {
                std::string label = std::string(fs1::kernelName(kernel))
                    + " range [" + std::to_string(range.begin) + ", "
                    + std::to_string(range.end) + ") query "
                    + std::to_string(q);
                expectSameHits(
                    plaSurvivors(built, built.queries[q], range),
                    matcher.scanRange(built.plane, built.queries[q],
                                      range),
                    label);
            }
        }
    }
}

TEST(SlicedKernelTest, BoundaryPlaneSizesAgreeAcrossKernels)
{
    // Whole planes of the boundary entry counts: the slack bits past
    // the last entry are the hazard here, not range edges.
    for (std::uint32_t clauses : {1u, 63u, 64u, 65u}) {
        term::SymbolTable sym;
        workload::KbSpec spec;
        spec.predicates = 1;
        spec.clausesPerPredicate = clauses;
        spec.varProb = 0.2;
        spec.seed = 120 + clauses;
        BuiltIndex built = buildIndex(sym, {}, spec, 3, 0.5);
        scw::EntryRange all{0, built.index.entryCount()};
        for (fs1::Fs1Kernel kernel : supportedKernels()) {
            fs1::SlicedMatcher matcher(kernel);
            for (std::size_t q = 0; q < built.queries.size(); ++q) {
                expectSameHits(
                    plaSurvivors(built, built.queries[q], all),
                    matcher.scanRange(built.plane, built.queries[q],
                                      all),
                    std::string(fs1::kernelName(kernel)) + " " +
                        std::to_string(clauses) + " clauses, query " +
                        std::to_string(q));
            }
        }
    }
}

TEST(SlicedKernelTest, EngineBitIdenticalAcrossKernelsShardsAndBatches)
{
    term::SymbolTable sym;
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 321;
    spec.varProb = 0.15;
    spec.seed = 77;
    BuiltIndex built = buildIndex(sym, {}, spec, 6, 0.7);

    fs1::Fs1Engine scalar(built.generator);
    support::ThreadPool pool(4);
    std::vector<obs::Observer> no_obs(built.queries.size());
    for (fs1::Fs1Kernel kernel : supportedKernels()) {
        fs1::Fs1Config config;
        config.sliced = true;
        config.kernel = kernel;
        fs1::Fs1Engine engine(built.generator, config);
        const std::string name = fs1::kernelName(kernel);

        for (const scw::Signature &query : built.queries) {
            fs1::Fs1Result baseline = scalar.search(built.index, query);
            for (std::uint32_t shards : {1u, 3u, 7u}) {
                expectSameResult(
                    baseline,
                    engine.search(built.index, &built.plane, query,
                                  shards > 1 ? &pool : nullptr, shards),
                    name + " " + std::to_string(shards) + " shards");
            }
        }
        std::vector<fs1::Fs1Result> batch = engine.searchBatch(
            built.index, &built.plane, built.queries, no_obs);
        ASSERT_EQ(batch.size(), built.queries.size());
        for (std::size_t q = 0; q < built.queries.size(); ++q)
            expectSameResult(scalar.search(built.index,
                                           built.queries[q]),
                             batch[q],
                             name + " batch query " + std::to_string(q));
    }
}

} // namespace
} // namespace clare
