/**
 * @file
 * The fault-injection suite (ctest label: faults): determinism of the
 * seeded fault oracle, bounded retry and typed failure in the disk
 * model, corruption detection in every checksummed on-disk format,
 * whole-store discrepancy auditing, Result Memory overflow accounting,
 * and the CRS degradation contract — a corrupt or unreadable index
 * downgrades the query to a full scan with the *same answer set* as a
 * clean run, never a crash and never silent garbage.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "crs/server.hh"
#include "crs/store_io.hh"
#include "fs2/fs2_engine.hh"
#include "fs2/result_memory.hh"
#include "pif/type_tags.hh"
#include "storage/disk_model.hh"
#include "storage/file_io.hh"
#include "support/crc32.hh"
#include "support/fault_injector.hh"
#include "term/term_reader.hh"

namespace clare {
namespace {

// ---------------------------------------------------------------------
// The deterministic fault oracle.
// ---------------------------------------------------------------------

support::FaultConfig
mixedRates(std::uint64_t seed)
{
    support::FaultConfig config;
    config.seed = seed;
    config.bitFlipRate = 0.5;
    config.transientReadRate = 0.4;
    config.delayRate = 0.3;
    config.truncateRate = 0.5;
    return config;
}

TEST(FaultInjectorTest, DecisionsAreAPureFunctionOfTheSeed)
{
    support::FaultInjector a(mixedRates(7));
    support::FaultInjector b(mixedRates(7));
    for (std::uint64_t key = 0; key < 128; ++key) {
        for (std::uint32_t attempt = 0; attempt < 4; ++attempt) {
            EXPECT_EQ(a.transientError("disk.data", key, attempt),
                      b.transientError("disk.data", key, attempt));
        }
        EXPECT_EQ(a.corruptChunk("disk.index", key),
                  b.corruptChunk("disk.index", key));
        EXPECT_EQ(a.chunkDelay("disk.data", key),
                  b.chunkDelay("disk.data", key));
    }
    EXPECT_EQ(a.truncatedSize("file", "/kb/pred_1_2.kbc", 9999),
              b.truncatedSize("file", "/kb/pred_1_2.kbc", 9999));
}

TEST(FaultInjectorTest, DifferentSeedsInjectDifferentFaults)
{
    support::FaultInjector a(mixedRates(1));
    support::FaultInjector b(mixedRates(2));
    int differing = 0;
    for (std::uint64_t key = 0; key < 256; ++key) {
        if (a.corruptChunk("disk.data", key) !=
            b.corruptChunk("disk.data", key))
            ++differing;
    }
    EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, SitesAreIndependentChannels)
{
    support::FaultInjector inj(mixedRates(5));
    int differing = 0;
    for (std::uint64_t key = 0; key < 256; ++key) {
        if (inj.corruptChunk("disk.index", key) !=
            inj.corruptChunk("disk.data", key))
            ++differing;
    }
    EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, SiteCoverageReportTracksArmedConsults)
{
    // The coverage report exists so a fuzz sweep can prove its armed
    // sites actually fired — a silently dead site is a sweep that
    // tests nothing.
    support::FaultConfig config;
    config.seed = 13;
    config.bitFlipRate = 0.5;
    config.transientReadRate = 0.25;
    support::FaultInjector inj(config);
    EXPECT_TRUE(inj.sites().empty());

    std::uint64_t flips = 0;
    for (std::uint64_t key = 0; key < 128; ++key)
        flips += inj.corruptChunk("disk.index", key) ? 1 : 0;
    std::uint64_t transients = 0;
    for (std::uint64_t key = 0; key < 128; ++key)
        transients += inj.transientError("disk.data", key, 0) ? 1 : 0;
    // Un-armed families never count as consults: delay is off, and no
    // kill point is armed.
    inj.chunkDelay("disk.data", 1);
    inj.killOffset("wal.commit", 0, 100);

    std::vector<support::SiteReport> sites = inj.sites();
    ASSERT_EQ(sites.size(), 2u); // sorted by site name
    EXPECT_EQ(sites[0].site, "disk.data");
    EXPECT_EQ(sites[0].consulted, 128u);
    EXPECT_EQ(sites[0].triggered, transients);
    EXPECT_EQ(sites[1].site, "disk.index");
    EXPECT_EQ(sites[1].consulted, 128u);
    EXPECT_EQ(sites[1].triggered, flips);
    // At these rates over 128 draws, a dead site means a broken oracle.
    EXPECT_GT(flips, 0u);
    EXPECT_GT(transients, 0u);
}

TEST(FaultInjectorTest, KillPointConsultsReportThroughSites)
{
    support::FaultConfig config;
    config.killSite = "wal.commit";
    config.killAtByte = 50;
    support::FaultInjector inj(config);
    // Armed site, range misses the kill byte: consulted, not triggered.
    EXPECT_FALSE(inj.killOffset("wal.commit", 0, 10).has_value());
    // Different site: not even a consult.
    EXPECT_FALSE(inj.killOffset("wal.checkpoint", 0, 100).has_value());
    // Range covering the kill byte: triggered.
    ASSERT_TRUE(inj.killOffset("wal.commit", 40, 60).has_value());

    std::vector<support::SiteReport> sites = inj.sites();
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0].site, "wal.commit");
    EXPECT_EQ(sites[0].consulted, 2u);
    EXPECT_EQ(sites[0].triggered, 1u);
    // A kill-only config must not arm the probabilistic fault paths.
    EXPECT_FALSE(config.anyFaults());
}

TEST(FaultInjectorTest, ZeroRatesInjectNothing)
{
    support::FaultConfig config;
    config.seed = 99;
    support::FaultInjector inj(config);
    EXPECT_FALSE(config.anyFaults());
    for (std::uint64_t key = 0; key < 64; ++key) {
        EXPECT_FALSE(inj.transientError("disk.data", key, 0));
        EXPECT_FALSE(inj.corruptChunk("disk.data", key));
        EXPECT_EQ(inj.chunkDelay("disk.data", key), 0u);
    }
    EXPECT_EQ(inj.truncatedSize("file", "/x", 1234u), 1234u);
    support::RangeFaults rf = inj.rangeFaults("disk.data", 0, 1 << 20, 3);
    EXPECT_EQ(rf.retries, 0u);
    EXPECT_EQ(rf.corruptChunks, 0u);
    EXPECT_EQ(rf.delayTicks, 0u);
    EXPECT_FALSE(rf.permanent);
}

TEST(FaultInjectorTest, FlipBitFlipsExactlyOneBit)
{
    support::FaultInjector inj(mixedRates(3));
    std::vector<std::uint8_t> buf(256);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i * 31);
    std::vector<std::uint8_t> orig = buf;

    std::uint64_t bit = inj.flipBit("disk.data", 17, buf.data(),
                                    buf.size());
    ASSERT_LT(bit, buf.size() * 8u);
    int flipped = 0;
    for (std::size_t i = 0; i < buf.size(); ++i) {
        std::uint8_t delta = buf[i] ^ orig[i];
        while (delta != 0) {
            flipped += delta & 1;
            delta >>= 1;
        }
    }
    EXPECT_EQ(flipped, 1);
    EXPECT_NE(buf[bit / 8] & (1u << (bit % 8)),
              orig[bit / 8] & (1u << (bit % 8)));
}

TEST(FaultInjectorTest, RangeFaultsUseAbsoluteChunkBoundaries)
{
    // Folding [0, 2 chunks) must agree with folding each chunk alone:
    // faults are pinned to disk locations, not to access patterns.
    support::FaultInjector inj(mixedRates(11));
    const std::uint32_t chunk = inj.config().chunkBytes;
    support::RangeFaults whole = inj.rangeFaults("disk.data", 0,
                                                 2ull * chunk, 4);
    support::RangeFaults lo = inj.rangeFaults("disk.data", 0, chunk, 4);
    support::RangeFaults hi = inj.rangeFaults("disk.data", chunk, chunk,
                                              4);
    EXPECT_EQ(whole.retries, lo.retries + hi.retries);
    EXPECT_EQ(whole.corruptChunks, lo.corruptChunks + hi.corruptChunks);
    EXPECT_EQ(whole.delayTicks, lo.delayTicks + hi.delayTicks);
    EXPECT_EQ(whole.permanent, lo.permanent || hi.permanent);

    // An unaligned range still faults the chunks it touches.
    support::RangeFaults off = inj.rangeFaults("disk.data", chunk / 2,
                                               chunk, 4);
    EXPECT_EQ(off.corruptChunks, lo.corruptChunks + hi.corruptChunks);
}

TEST(FaultInjectorTest, CertainTransientErrorsArePermanent)
{
    support::FaultConfig config;
    config.seed = 4;
    config.transientReadRate = 1.0;
    support::FaultInjector inj(config);
    support::RangeFaults rf = inj.rangeFaults("disk.data", 0, 4096, 8);
    EXPECT_TRUE(rf.permanent);
}

// ---------------------------------------------------------------------
// CRC-32.
// ---------------------------------------------------------------------

TEST(Crc32Test, MatchesTheIeeeCheckValue)
{
    const char *check = "123456789";
    EXPECT_EQ(support::crc32(
                  reinterpret_cast<const std::uint8_t *>(check), 9),
              0xCBF43926u);
}

TEST(Crc32Test, PageChecksumsCoverTheShortFinalPage)
{
    std::vector<std::uint8_t> data(10000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    std::vector<std::uint32_t> crcs = support::pageChecksums(
        data.data(), data.size());
    ASSERT_EQ(crcs.size(), 3u);
    EXPECT_EQ(crcs[0], support::crc32(data.data(), 4096));
    EXPECT_EQ(crcs[2], support::crc32(data.data() + 8192,
                                      data.size() - 8192));
    EXPECT_TRUE(support::pageChecksums(nullptr, 0).empty());
}

TEST(Crc32Test, DetectsEverySingleBitFlip)
{
    std::vector<std::uint8_t> page(512);
    for (std::size_t i = 0; i < page.size(); ++i)
        page[i] = static_cast<std::uint8_t>(i * 7 + 3);
    std::uint32_t clean = support::crc32(page.data(), page.size());
    for (std::size_t bit = 0; bit < page.size() * 8; ++bit) {
        page[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_NE(support::crc32(page.data(), page.size()), clean)
            << "bit " << bit;
        page[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
}

// ---------------------------------------------------------------------
// Disk streams under injected faults.
// ---------------------------------------------------------------------

class DiskStreamFaultTest : public ::testing::Test
{
  protected:
    storage::DiskModel disk_{storage::DiskGeometry::fujitsuM2351A()};

    void
    SetUp() override
    {
        std::vector<std::uint8_t> image(3 * 4096 + 100);
        for (std::size_t i = 0; i < image.size(); ++i)
            image[i] = static_cast<std::uint8_t>(i * 13 + 1);
        disk_.load(std::move(image));
    }

    /** Stream the whole image, returning (delivered bytes, end tick). */
    std::pair<std::vector<std::uint8_t>, Tick>
    streamAll(const support::FaultInjector *faults,
              storage::RetryPolicy retry = {},
              obs::MetricsRegistry *metrics = nullptr)
    {
        std::vector<std::uint8_t> delivered;
        obs::Observer obs{nullptr, metrics};
        Tick end = disk_.stream(
            0, disk_.image().size(), 4096, 0,
            [&](const std::uint8_t *data, std::uint32_t n, Tick) {
                delivered.insert(delivered.end(), data, data + n);
            },
            obs, 0, faults, retry);
        return {std::move(delivered), end};
    }

    static std::uint64_t
    counterValue(const obs::MetricsRegistry &metrics,
                 const std::string &name)
    {
        for (const auto &c : metrics.counters()) {
            if (c.name == name)
                return c.value;
        }
        return 0;
    }
};

TEST_F(DiskStreamFaultTest, ZeroRateInjectorIsBitIdenticalToNone)
{
    support::FaultInjector idle{support::FaultConfig{}};
    auto [clean_bytes, clean_end] = streamAll(nullptr);
    auto [idle_bytes, idle_end] = streamAll(&idle);
    EXPECT_EQ(clean_bytes, disk_.image());
    EXPECT_EQ(idle_bytes, clean_bytes);
    EXPECT_EQ(idle_end, clean_end);
}

TEST_F(DiskStreamFaultTest, TransientErrorsCostReseeksAndAreCounted)
{
    support::FaultConfig config;
    config.transientReadRate = 0.5;
    // Pick a seed whose transient draws force at least one retry but
    // never exhaust the bound, so the stream must still succeed.
    std::uint32_t retries = 0;
    for (config.seed = 1; config.seed < 64; ++config.seed) {
        support::FaultInjector probe(config);
        support::RangeFaults rf = probe.rangeFaults(
            "disk.data", 0, disk_.image().size(), 8);
        if (rf.retries > 0 && !rf.permanent) {
            retries = rf.retries;
            break;
        }
    }
    ASSERT_GT(retries, 0u) << "no usable seed below 64";

    support::FaultInjector inj(config);
    obs::MetricsRegistry metrics;
    auto [clean_bytes, clean_end] = streamAll(nullptr);
    auto [bytes, end] = streamAll(&inj, {.maxAttempts = 8}, &metrics);

    EXPECT_EQ(bytes, clean_bytes); // transient errors never corrupt
    EXPECT_EQ(end, clean_end +
              static_cast<Tick>(retries) * disk_.accessTime());
    EXPECT_EQ(counterValue(metrics, "disk.retry.attempts"), retries);
    EXPECT_EQ(counterValue(metrics, "disk.retry.exhausted"), 0u);
}

TEST_F(DiskStreamFaultTest, ExhaustedRetriesThrowTypedIoError)
{
    support::FaultConfig config;
    config.seed = 9;
    config.transientReadRate = 1.0;
    support::FaultInjector inj(config);
    obs::MetricsRegistry metrics;
    EXPECT_THROW(streamAll(&inj, {.maxAttempts = 3}, &metrics), IoError);
    EXPECT_EQ(counterValue(metrics, "disk.retry.exhausted"), 1u);
    EXPECT_EQ(counterValue(metrics, "disk.retry.attempts"), 3u);
}

TEST_F(DiskStreamFaultTest, CorruptChunksFlipOneBitButSpareTheMaster)
{
    support::FaultConfig config;
    config.seed = 21;
    config.bitFlipRate = 1.0;
    support::FaultInjector inj(config);
    std::vector<std::uint8_t> master = disk_.image();
    obs::MetricsRegistry metrics;
    auto [bytes, end] = streamAll(&inj, {}, &metrics);
    (void)end;

    EXPECT_EQ(disk_.image(), master); // scratch-copy corruption only
    ASSERT_EQ(bytes.size(), master.size());
    // Every 4096-byte chunk was delivered with exactly one flipped bit.
    std::size_t chunks = (master.size() + 4095) / 4096;
    for (std::size_t c = 0; c < chunks; ++c) {
        std::size_t lo = c * 4096;
        std::size_t hi = std::min(master.size(), lo + 4096);
        int flipped = 0;
        for (std::size_t i = lo; i < hi; ++i) {
            std::uint8_t delta = bytes[i] ^ master[i];
            while (delta != 0) {
                flipped += delta & 1;
                delta >>= 1;
            }
        }
        EXPECT_EQ(flipped, 1) << "chunk " << c;
    }
    EXPECT_EQ(counterValue(metrics, "disk.faults.bit_flips"), chunks);
}

TEST_F(DiskStreamFaultTest, DelayedChunksShiftTheWholeStream)
{
    support::FaultConfig config;
    config.seed = 2;
    config.delayRate = 1.0;
    config.delayTicks = kMillisecond;
    support::FaultInjector inj(config);
    auto [clean_bytes, clean_end] = streamAll(nullptr);
    auto [bytes, end] = streamAll(&inj);
    EXPECT_EQ(bytes, clean_bytes);
    std::size_t chunks = (disk_.image().size() + 4095) / 4096;
    EXPECT_EQ(end, clean_end + static_cast<Tick>(chunks) * kMillisecond);
}

// ---------------------------------------------------------------------
// Checksummed on-disk formats: every single-bit flip is detected.
// ---------------------------------------------------------------------

class FormatFaultTest : public ::testing::Test
{
  protected:
    std::string path_ = ::testing::TempDir() + "clare_faults.bin";

    void TearDown() override { std::remove(path_.c_str()); }

    /**
     * Flip one bit in every byte of the file in turn and require the
     * loader to reject each mutation with a CorruptionError.
     */
    template <typename LoadFn>
    void
    expectEveryByteFlipDetected(LoadFn load)
    {
        std::vector<std::uint8_t> pristine = storage::readBytes(path_);
        for (std::size_t i = 0; i < pristine.size(); ++i) {
            std::vector<std::uint8_t> bytes = pristine;
            bytes[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
            storage::writeBytes(path_, bytes);
            EXPECT_THROW(load(), CorruptionError) << "byte " << i;
        }
        storage::writeBytes(path_, pristine);
    }

    storage::ClauseFile
    buildClauseFile()
    {
        term::SymbolTable sym;
        term::TermReader reader(sym);
        term::TermWriter writer(sym);
        storage::ClauseFileBuilder builder(writer);
        for (const auto &c : reader.parseProgram(
                 "p(a, [1, 2]).\np(f(X), Y) :- p(Y, [1, 2]).\n"
                 "p(zzz, 4.25).\n"))
            builder.add(c);
        return builder.finish();
    }
};

TEST_F(FormatFaultTest, ClauseFileRejectsEveryBitFlip)
{
    storage::saveClauseFile(path_, buildClauseFile());
    expectEveryByteFlipDetected(
        [&] { storage::loadClauseFile(path_); });
}

TEST_F(FormatFaultTest, V1FlippedTagByteIsTypedCorruptionNotACrash)
{
    // A v1 clause file has no page checksums, and its load-time walk
    // parses only record headers — a flipped tag byte *inside* the PIF
    // item stream loads without complaint.  The damage must then
    // surface as a typed CorruptionError when the stream is decoded
    // for the engine: not a clare_fatal abort (invalid tag), and not a
    // map-ROM trap abort (a tag that is valid but belongs to the query
    // side).
    storage::ClauseFile file = buildClauseFile();
    auto write_v1 = [&](const std::vector<std::uint8_t> &image) {
        std::vector<std::uint8_t> out;
        auto put = [&](std::uint32_t v) {
            for (int i = 0; i < 4; ++i)
                out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        };
        put(storage::kClauseFileMagic);
        put(storage::kClauseFileVersionCompat);
        put(file.predicate().functor);
        put(file.predicate().arity);
        put(static_cast<std::uint32_t>(file.clauseCount()));
        put(static_cast<std::uint32_t>(image.size()));
        out.insert(out.end(), image.begin(), image.end());
        storage::writeBytes(path_, out);
    };

    // The first item's tag byte of clause 0.
    const std::size_t tag_at =
        file.record(0).offset + storage::kRecordHeaderBytes;
    const std::uint8_t flips[] = {
        0x00,                   // not a PIF tag at all
        pif::kFirstQueryVar,    // valid tag, wrong side of the stream
        0xff,                   // in-line list of arity 31: overrun
    };
    for (std::uint8_t bad : flips) {
        std::vector<std::uint8_t> image = file.image();
        ASSERT_NE(image[tag_at], bad);
        image[tag_at] = bad;
        write_v1(image);

        storage::ClauseFile damaged = storage::loadClauseFile(path_);
        ASSERT_EQ(damaged.clauseCount(), file.clauseCount());

        EXPECT_THROW(damaged.decodeArgs(0), CorruptionError)
            << "tag 0x" << std::hex << static_cast<int>(bad);

        // End to end: the same damage reached through an FS2 search
        // over the loaded file (the engine decodes each record as the
        // stream arrives).
        pif::EncodedArgs qargs;
        qargs.items.push_back(pif::PifItem{pif::kFirstQueryVar, 0, 0});
        qargs.items.push_back(pif::PifItem{pif::kFirstQueryVar, 1, 0});
        qargs.varSlots = 2;
        qargs.argIndex = {0, 1};
        fs2::Fs2Engine engine;
        engine.setQuery(qargs, damaged.predicate());
        EXPECT_THROW(engine.search(damaged), CorruptionError)
            << "tag 0x" << std::hex << static_cast<int>(bad);
    }

    // The pristine image still decodes and retrieves cleanly through
    // the same v1 vehicle.
    write_v1(file.image());
    storage::ClauseFile clean = storage::loadClauseFile(path_);
    EXPECT_NO_THROW(clean.decodeArgs(0));
}

TEST_F(FormatFaultTest, FramedBytesRejectEveryBitFlip)
{
    std::vector<std::uint8_t> payload(5000);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 97 + 5);
    storage::writeFramedBytes(path_, payload);
    EXPECT_EQ(storage::readFramedBytes(path_), payload);
    expectEveryByteFlipDetected(
        [&] { storage::readFramedBytes(path_); });
}

TEST_F(FormatFaultTest, FramedBytesRoundTripEmptyPayload)
{
    storage::writeFramedBytes(path_, {});
    EXPECT_TRUE(storage::readFramedBytes(path_).empty());
}

TEST_F(FormatFaultTest, SymbolTableRejectsEveryBitFlip)
{
    term::SymbolTable sym;
    sym.intern("alpha");
    sym.intern("beta");
    sym.internFloat(2.5);
    storage::saveSymbolTable(path_, sym);
    expectEveryByteFlipDetected([&] {
        term::SymbolTable fresh;
        storage::loadSymbolTable(path_, fresh);
    });
}

TEST_F(FormatFaultTest, VersionOneClauseFileStillLoads)
{
    storage::ClauseFile original = buildClauseFile();

    // Hand-assemble the v1 layout (header without checksums, image at
    // byte 24) to prove read compatibility with pre-CRC stores.
    std::vector<std::uint8_t> v1;
    auto put = [&](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            v1.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    put(storage::kClauseFileMagic);
    put(1);
    put(original.predicate().functor);
    put(original.predicate().arity);
    put(static_cast<std::uint32_t>(original.clauseCount()));
    put(static_cast<std::uint32_t>(original.image().size()));
    v1.insert(v1.end(), original.image().begin(), original.image().end());
    storage::writeBytes(path_, v1);

    storage::ClauseFile loaded = storage::loadClauseFile(path_);
    EXPECT_EQ(loaded.predicate(), original.predicate());
    EXPECT_EQ(loaded.clauseCount(), original.clauseCount());
    EXPECT_EQ(loaded.image(), original.image());
}

TEST_F(FormatFaultTest, VersionOneSymbolTableStillLoads)
{
    term::SymbolTable sym;
    sym.intern("gamma");
    sym.internFloat(-1.5);

    std::vector<std::uint8_t> v1;
    auto put = [&](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            v1.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    put(storage::kSymbolFileMagic);
    put(1);
    put(sym.atomCount());
    put(sym.floatCount());
    for (std::uint32_t i = 0; i < sym.atomCount(); ++i) {
        const std::string &name = sym.name(i);
        put(static_cast<std::uint32_t>(name.size()));
        v1.insert(v1.end(), name.begin(), name.end());
    }
    for (std::uint32_t i = 0; i < sym.floatCount(); ++i) {
        double v = sym.floatValue(i);
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        put(static_cast<std::uint32_t>(bits));
        put(static_cast<std::uint32_t>(bits >> 32));
    }
    storage::writeBytes(path_, v1);

    term::SymbolTable fresh;
    storage::loadSymbolTable(path_, fresh);
    EXPECT_EQ(fresh.atomCount(), sym.atomCount());
    EXPECT_EQ(fresh.lookup("gamma"), sym.lookup("gamma"));
    EXPECT_DOUBLE_EQ(fresh.floatValue(0), -1.5);
}

// ---------------------------------------------------------------------
// Whole-store audit and manifest compatibility.
// ---------------------------------------------------------------------

class StoreFaultTest : public ::testing::Test
{
  protected:
    std::string dir_ = ::testing::TempDir() + "clare_store_faults";
    term::SymbolTable sym_;
    std::unique_ptr<crs::PredicateStore> store_;

    void
    SetUp() override
    {
        term::TermReader reader(sym_);
        term::Program program;
        for (auto &c : reader.parseProgram(
                 "p(a, 1).\np(b, 2).\np(a, 3).\np(c, 4).\n"
                 "q(a).\nq(b).\n"))
            program.add(std::move(c));
        store_ = std::make_unique<crs::PredicateStore>(
            sym_, scw::CodewordGenerator{});
        store_->addProgram(program);
        store_->finalize();
        crs::saveStore(dir_, *store_, sym_);
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string
    stemOf(std::uint32_t arity) const
    {
        for (const term::PredicateId &pred : store_->predicates()) {
            if (pred.arity == arity)
                return "pred_" + std::to_string(pred.functor) + "_" +
                    std::to_string(pred.arity);
        }
        ADD_FAILURE() << "no predicate of arity " << arity;
        return "";
    }
};

TEST_F(StoreFaultTest, AuditListsEveryDiscrepancyInOneError)
{
    std::string missing = stemOf(2) + ".kbc";
    std::string resized = stemOf(1) + ".idx";
    std::filesystem::remove(dir_ + "/" + missing);
    {
        std::ofstream grow(dir_ + "/" + resized,
                           std::ios::binary | std::ios::app);
        grow << "junk";
    }
    storage::writeBytes(dir_ + "/pred_777_3.kbc", {1, 2, 3});

    term::SymbolTable fresh;
    try {
        crs::loadStore(dir_, fresh);
        FAIL() << "damaged store loaded";
    } catch (const CorruptionError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("3 store discrepancies"), std::string::npos)
            << what;
        EXPECT_NE(what.find("missing file '" + missing + "'"),
                  std::string::npos) << what;
        EXPECT_NE(what.find("'" + resized + "'"), std::string::npos)
            << what;
        EXPECT_NE(what.find("manifest says"), std::string::npos) << what;
        EXPECT_NE(what.find("extra file 'pred_777_3.kbc'"),
                  std::string::npos) << what;
    }
}

TEST_F(StoreFaultTest, CorruptIndexPayloadIsTypedError)
{
    std::string idx = dir_ + "/" + stemOf(2) + ".idx";
    std::vector<std::uint8_t> bytes = storage::readBytes(idx);
    bytes[bytes.size() - 1] ^= 0x10; // payload tail: page CRC mismatch
    storage::writeBytes(idx, bytes);
    term::SymbolTable fresh;
    EXPECT_THROW(crs::loadStore(dir_, fresh), CorruptionError);
}

TEST_F(StoreFaultTest, VersionTwoStoreStillLoads)
{
    // Downgrade the saved store in place to the v2 layout: manifest
    // without the index-format line or file sizes, raw (unframed)
    // secondary files.
    std::vector<std::string> pred_lines;
    std::string scw_line;
    {
        std::ifstream in(dir_ + "/manifest.txt");
        std::string line;
        while (std::getline(in, line)) {
            if (line.rfind("scw ", 0) == 0)
                scw_line = line;
            if (line.rfind("pred ", 0) == 0) {
                std::istringstream fields(line);
                std::string word, stem;
                std::uint32_t functor = 0, arity = 0;
                fields >> word >> functor >> arity >> stem;
                pred_lines.push_back("pred " + std::to_string(functor) +
                                     " " + std::to_string(arity) + " " +
                                     stem);
                std::vector<std::uint8_t> raw = storage::readFramedBytes(
                    dir_ + "/" + stem + ".idx");
                // A real v2 secondary file is the bare entry image —
                // drop the v3 bit-sliced plane section.
                raw.resize(store_
                               ->predicate(term::PredicateId{functor,
                                                             arity})
                               .index.image()
                               .size());
                storage::writeBytes(dir_ + "/" + stem + ".idx", raw);
            }
        }
    }
    ASSERT_EQ(pred_lines.size(), 2u);
    ASSERT_FALSE(scw_line.empty());
    {
        std::ofstream out(dir_ + "/manifest.txt");
        out << "clare-store 2\n" << scw_line << '\n';
        for (const std::string &p : pred_lines)
            out << p << '\n';
    }

    term::SymbolTable fresh;
    crs::PredicateStore loaded = crs::loadStore(dir_, fresh);
    EXPECT_EQ(loaded.predicates().size(), store_->predicates().size());
    EXPECT_EQ(loaded.dataBytes(), store_->dataBytes());
    EXPECT_EQ(loaded.indexBytes(), store_->indexBytes());

    crs::ClauseRetrievalServer original(sym_, *store_);
    crs::ClauseRetrievalServer reloaded(fresh, loaded);
    term::TermReader reader(sym_);
    term::TermReader fresh_reader(fresh);
    term::ParsedTerm q1 = reader.parseTerm("p(a, X)");
    term::ParsedTerm q2 = fresh_reader.parseTerm("p(a, X)");
    for (crs::SearchMode mode : {crs::SearchMode::SoftwareOnly,
                                 crs::SearchMode::Fs1Only,
                                 crs::SearchMode::Fs2Only,
                                 crs::SearchMode::TwoStage}) {
        crs::RetrievalRequest ra;
        ra.arena = &q1.arena;
        ra.goal = q1.root;
        ra.mode = mode;
        crs::RetrievalRequest rb;
        rb.arena = &q2.arena;
        rb.goal = q2.root;
        rb.mode = mode;
        crs::RetrievalResponse a = original.serve(ra);
        crs::RetrievalResponse b = reloaded.serve(rb);
        EXPECT_EQ(a.candidates, b.candidates);
        EXPECT_EQ(a.answers, b.answers);
    }
}

// ---------------------------------------------------------------------
// Result Memory overflow accounting.
// ---------------------------------------------------------------------

TEST(ResultMemoryOverflowTest, ExactlySixtyFourSatisfiersFit)
{
    fs2::ResultMemory rm; // paper sizing: 32 KB / 512 B = 64 slots
    ASSERT_EQ(rm.slotCount(), 64u);
    std::uint8_t byte = 0xaa;
    for (int i = 0; i < 64; ++i) {
        rm.beginClause(&byte, 1);
        rm.commit();
    }
    EXPECT_EQ(rm.satisfierCount(), 64u);
    EXPECT_FALSE(rm.overflowed());
    EXPECT_EQ(rm.droppedSatisfiers(), 0u);
}

TEST(ResultMemoryOverflowTest, SatisfierSixtyFiveOverflowsExplicitly)
{
    fs2::ResultMemory rm;
    for (int i = 0; i < 65; ++i) {
        std::uint8_t byte = static_cast<std::uint8_t>(i);
        rm.beginClause(&byte, 1);
        rm.commit();
    }
    EXPECT_EQ(rm.satisfierCount(), 64u);
    EXPECT_TRUE(rm.overflowed());
    EXPECT_EQ(rm.droppedSatisfiers(), 1u);
    // The real 6-bit counter would wrap and overwrite slot 0; the
    // model must preserve it.
    EXPECT_EQ(rm.slot(0), std::vector<std::uint8_t>{0});
}

TEST(ResultMemoryOverflowTest, ResetClearsOverflowState)
{
    fs2::ResultMemory rm;
    for (int i = 0; i < 70; ++i) {
        std::uint8_t byte = 1;
        rm.beginClause(&byte, 1);
        rm.commit();
    }
    EXPECT_TRUE(rm.overflowed());
    rm.reset();
    EXPECT_FALSE(rm.overflowed());
    EXPECT_EQ(rm.droppedSatisfiers(), 0u);
    EXPECT_EQ(rm.satisfierCount(), 0u);
}

// ---------------------------------------------------------------------
// CRS graceful degradation.
// ---------------------------------------------------------------------

class CrsFaultTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym_;
    std::unique_ptr<crs::PredicateStore> store_;

    void
    SetUp() override
    {
        term::TermReader reader(sym_);
        std::string text;
        for (int i = 0; i < 96; ++i) {
            text += "p(k" + std::to_string(i % 8) + ", v" +
                std::to_string(i) + ").\n";
        }
        text += "p(X, X).\n";
        term::Program program;
        for (auto &c : reader.parseProgram(text))
            program.add(std::move(c));
        store_ = std::make_unique<crs::PredicateStore>(
            sym_, scw::CodewordGenerator{});
        store_->addProgram(program);
        store_->finalize();
    }

    crs::RetrievalResponse
    ask(crs::ClauseRetrievalServer &server, crs::SearchMode mode)
    {
        term::TermReader reader(sym_);
        term::ParsedTerm q = reader.parseTerm("p(k3, V)");
        crs::RetrievalRequest request;
        request.arena = &q.arena;
        request.goal = q.root;
        request.mode = mode;
        return server.serve(request);
    }

    const crs::StoredPredicate &
    storedP() const
    {
        for (const term::PredicateId &pred : store_->predicates()) {
            if (pred.arity == 2)
                return store_->predicate(pred);
        }
        throw std::logic_error("p/2 not stored");
    }

    static std::uint64_t
    counterValue(crs::ClauseRetrievalServer &server,
                 const std::string &name)
    {
        for (const auto &c : server.metrics().counters()) {
            if (c.name == name)
                return c.value;
        }
        return 0;
    }
};

TEST_F(CrsFaultTest, CorruptIndexDegradesToFullScanWithSameAnswers)
{
    crs::ClauseRetrievalServer clean(sym_, *store_);
    crs::RetrievalResponse clean_two = ask(clean,
                                           crs::SearchMode::TwoStage);
    crs::RetrievalResponse clean_fs2 = ask(clean,
                                           crs::SearchMode::Fs2Only);

    support::FaultConfig config;
    config.seed = 42;
    config.bitFlipRate = 1.0; // every delivered index page is corrupt
    support::FaultInjector inj(config);
    crs::CrsConfig cfg;
    cfg.faults = &inj;
    crs::ClauseRetrievalServer faulty(sym_, *store_, cfg);

    crs::RetrievalResponse r = ask(faulty, crs::SearchMode::TwoStage);
    EXPECT_TRUE(r.degraded);
    EXPECT_GT(r.corruptIndexPages, 0u);
    EXPECT_EQ(r.mode, crs::SearchMode::Fs2Only);
    // The degradation contract: same answers as any clean mode, and
    // the same candidates a clean full scan would examine.
    EXPECT_EQ(r.answers, clean_two.answers);
    EXPECT_EQ(r.candidates, clean_fs2.candidates);
    EXPECT_GT(r.breakdown.indexTime, 0u); // the read that found damage

    EXPECT_EQ(counterValue(faulty, "crs.degraded.queries"), 1u);
    EXPECT_GT(counterValue(faulty, "crs.degraded.corrupt_index_pages"),
              0u);

    // Modes that never touch FS1 are not degraded by index damage.
    crs::RetrievalResponse soft = ask(faulty,
                                      crs::SearchMode::SoftwareOnly);
    EXPECT_FALSE(soft.degraded);
    EXPECT_EQ(soft.answers, clean_two.answers);
}

TEST_F(CrsFaultTest, UnreadableIndexDegradesWithoutCorruptPages)
{
    crs::ClauseRetrievalServer clean(sym_, *store_);
    crs::RetrievalResponse clean_two = ask(clean,
                                           crs::SearchMode::TwoStage);

    // Find a seed where the index range fails every bounded attempt
    // but the data range stays readable, so degradation — not a data
    // IoError — is the outcome under test.
    const crs::StoredPredicate &sp = storedP();
    crs::CrsConfig cfg;
    support::FaultConfig config;
    config.transientReadRate = 0.8;
    bool found = false;
    for (config.seed = 1; config.seed < 512 && !found; ++config.seed) {
        support::FaultInjector probe(config);
        bool index_dead = probe.rangeFaults(
            "disk.index", sp.indexFileOffset, sp.index.image().size(),
            cfg.retry.maxAttempts).permanent;
        bool data_dead = probe.rangeFaults(
            "disk.data", sp.clauseFileOffset, sp.clauses.image().size(),
            cfg.retry.maxAttempts).permanent;
        found = index_dead && !data_dead;
    }
    ASSERT_TRUE(found) << "no usable seed below 512";
    --config.seed; // the loop increments past the match

    support::FaultInjector inj(config);
    cfg.faults = &inj;
    crs::ClauseRetrievalServer faulty(sym_, *store_, cfg);
    crs::RetrievalResponse r = ask(faulty, crs::SearchMode::TwoStage);
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.corruptIndexPages, 0u);
    EXPECT_EQ(r.answers, clean_two.answers);
    EXPECT_EQ(counterValue(faulty, "crs.degraded.queries"), 1u);
}

TEST_F(CrsFaultTest, PermanentDataFailureIsTypedIoError)
{
    support::FaultConfig config;
    config.seed = 3;
    config.transientReadRate = 1.0;
    support::FaultInjector inj(config);
    crs::CrsConfig cfg;
    cfg.faults = &inj;
    crs::ClauseRetrievalServer faulty(sym_, *store_, cfg);
    EXPECT_THROW(ask(faulty, crs::SearchMode::Fs2Only), IoError);
}

TEST_F(CrsFaultTest, TransientFaultsPreserveAnswersAndChargeRetries)
{
    crs::ClauseRetrievalServer clean(sym_, *store_);
    crs::RetrievalResponse clean_two = ask(clean,
                                           crs::SearchMode::TwoStage);

    support::FaultConfig config;
    config.transientReadRate = 0.5;
    int successes = 0;
    bool charged = false;
    for (config.seed = 1; config.seed <= 20; ++config.seed) {
        support::FaultInjector inj(config);
        crs::CrsConfig cfg;
        cfg.faults = &inj;
        cfg.retry.maxAttempts = 8;
        crs::ClauseRetrievalServer faulty(sym_, *store_, cfg);
        try {
            crs::RetrievalResponse r = ask(faulty,
                                           crs::SearchMode::TwoStage);
            ++successes;
            EXPECT_EQ(r.answers, clean_two.answers)
                << "seed " << config.seed;
            EXPECT_GE(r.elapsed, clean_two.elapsed);
            if (counterValue(faulty, "disk.retry.attempts") > 0) {
                charged = true;
                EXPECT_GT(r.elapsed, clean_two.elapsed);
            }
        } catch (const IoError &) {
            // Some seeds exhaust the bounded retries: a typed error,
            // never a crash.
        }
    }
    EXPECT_GT(successes, 0);
    EXPECT_TRUE(charged) << "no seed below 21 forced a retry";
}

TEST_F(CrsFaultTest, NullAndIdleInjectorsAreBitIdentical)
{
    crs::ClauseRetrievalServer plain(sym_, *store_);
    support::FaultInjector idle{support::FaultConfig{.seed = 77}};
    crs::CrsConfig cfg;
    cfg.faults = &idle; // no rates set: the server must ignore it
    crs::ClauseRetrievalServer gated(sym_, *store_, cfg);

    for (crs::SearchMode mode : {crs::SearchMode::SoftwareOnly,
                                 crs::SearchMode::Fs1Only,
                                 crs::SearchMode::Fs2Only,
                                 crs::SearchMode::TwoStage}) {
        crs::RetrievalResponse a = ask(plain, mode);
        crs::RetrievalResponse b = ask(gated, mode);
        EXPECT_EQ(a.candidates, b.candidates);
        EXPECT_EQ(a.answers, b.answers);
        EXPECT_EQ(a.elapsed, b.elapsed);
        EXPECT_EQ(a.breakdown.indexTime, b.breakdown.indexTime);
        EXPECT_EQ(a.breakdown.filterTime, b.breakdown.filterTime);
        EXPECT_EQ(a.breakdown.hostUnifyTime, b.breakdown.hostUnifyTime);
        EXPECT_FALSE(b.degraded);
    }
}

TEST_F(CrsFaultTest, RetryPolicyIsValidated)
{
    crs::CrsConfig cfg;
    cfg.retry.maxAttempts = 0;
    EXPECT_THROW(cfg.validate(), crs::ConfigError);
    cfg.retry.maxAttempts = 65;
    EXPECT_THROW(cfg.validate(), crs::ConfigError);
    cfg.retry.maxAttempts = 64;
    EXPECT_NO_THROW(cfg.validate());
}

} // namespace
} // namespace clare
