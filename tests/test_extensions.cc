/**
 * @file
 * Tests for the extension modules: the structural FS1 PLA matcher
 * (exact agreement with the behavioural match rule), clause-file
 * persistence, and the multi-client CRS simulation.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include <filesystem>

#include "crs/client_sim.hh"
#include "crs/store_io.hh"
#include "fs1/pla_matcher.hh"
#include "storage/file_io.hh"
#include "support/logging.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare {
namespace {

// ---------------------------------------------------------------------
// PLA matcher.
// ---------------------------------------------------------------------

TEST(PlaMatcherTest, RequiresQueryLoad)
{
    fs1::PlaMatcher pla{scw::CodewordGenerator{}};
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::ParsedTerm t = reader.parseTerm("p(a)");
    scw::CodewordGenerator gen;
    scw::Signature sig = gen.encode(t.arena, t.root);
    EXPECT_DEATH(pla.present(sig), "Set Query");
}

TEST(PlaMatcherTest, FieldCellSemantics)
{
    fs1::FieldMatchCell cell;
    BitVec query(16);
    query.set(3);
    query.set(7);
    cell.loadComparand(query);

    BitVec superset(16);
    superset.set(3);
    superset.set(7);
    superset.set(11);
    EXPECT_TRUE(cell.evaluate(superset, false));

    BitVec missing(16);
    missing.set(3);
    EXPECT_FALSE(cell.evaluate(missing, false));
    // The mask line overrides the AND plane.
    EXPECT_TRUE(cell.evaluate(missing, true));
}

TEST(PlaMatcherTest, ActivityCountersReflectFullEvaluation)
{
    scw::CodewordGenerator gen;
    fs1::PlaMatcher pla{gen};
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::ParsedTerm q = reader.parseTerm("p(a, b)");
    pla.setQuery(gen.encode(q.arena, q.root));

    term::ParsedTerm c = reader.parseTerm("p(x, y)");
    pla.present(gen.encode(c.arena, c.root));
    // Every field cell evaluates every entry — no short circuit.
    EXPECT_EQ(pla.cellEvaluations(), gen.config().encodedArgs);
    EXPECT_EQ(pla.addressLatches(), 0u);
}

TEST(PlaMatcherTest, AgreesWithBehaviouralRule)
{
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 300;
    spec.varProb = 0.2;
    spec.structProb = 0.3;
    spec.seed = 44;
    term::Program program = kbgen.generate(spec);
    const auto &pred = program.predicates()[0];

    scw::CodewordGenerator gen;
    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.5;
    workload::QueryGenerator qgen(sym, qspec);

    for (int qi = 0; qi < 6; ++qi) {
        workload::GeneratedQuery q = qgen.generate(program, pred);
        scw::Signature qsig = gen.encode(q.arena, q.goal);
        fs1::PlaMatcher pla{gen};
        pla.setQuery(qsig);
        for (std::size_t i : program.clausesOf(pred)) {
            const term::Clause &clause = program.clause(i);
            scw::Signature csig = gen.encode(clause.arena(),
                                             clause.head());
            EXPECT_EQ(pla.present(csig), gen.matches(qsig, csig))
                << "clause " << i;
        }
    }
}

TEST(PlaMatcherTest, ScanMatchesEngineSearch)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    scw::CodewordGenerator gen;

    storage::ClauseFileBuilder builder(writer);
    std::vector<scw::Signature> sigs;
    for (const auto &c : reader.parseProgram(
             "p(a).\np(b).\np(X).\np(a).\n")) {
        sigs.push_back(gen.encode(c.arena(), c.head()));
        builder.add(c);
    }
    storage::ClauseFile file = builder.finish();
    scw::SecondaryFile index = scw::SecondaryFile::build(gen, sigs,
                                                         file);

    term::ParsedTerm q = reader.parseTerm("p(a)");
    scw::Signature qsig = gen.encode(q.arena, q.root);

    fs1::PlaMatcher pla{gen};
    pla.setQuery(qsig);
    auto structural = pla.scan(index);

    fs1::Fs1Engine engine(gen);
    fs1::Fs1Result behavioural = engine.search(index, qsig);

    ASSERT_EQ(structural.size(), behavioural.ordinals.size());
    for (std::size_t i = 0; i < structural.size(); ++i)
        EXPECT_EQ(structural[i].ordinal, behavioural.ordinals[i]);
}

// ---------------------------------------------------------------------
// Clause-file persistence.
// ---------------------------------------------------------------------

class FileIoTest : public ::testing::Test
{
  protected:
    std::string path_ = ::testing::TempDir() + "clare_test.kbc";

    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(FileIoTest, BytesRoundTrip)
{
    std::vector<std::uint8_t> data{1, 2, 3, 250, 0, 99};
    storage::writeBytes(path_, data);
    EXPECT_EQ(storage::readBytes(path_), data);
}

TEST_F(FileIoTest, MissingFileIsTypedIoError)
{
    EXPECT_THROW(storage::readBytes("/nonexistent/nope"), IoError);
    EXPECT_THROW(storage::loadClauseFile("/nonexistent/nope"),
                 IoError);
}

TEST_F(FileIoTest, ClauseFileRoundTrip)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    storage::ClauseFileBuilder builder(writer);
    for (const auto &c : reader.parseProgram(
             "p(a, [1, 2]).\np(f(X), Y) :- p(Y, [1, 2]).\np(_, _).\n"))
        builder.add(c);
    storage::ClauseFile original = builder.finish();

    storage::saveClauseFile(path_, original);
    storage::ClauseFile loaded = storage::loadClauseFile(path_);

    EXPECT_EQ(loaded.predicate(), original.predicate());
    ASSERT_EQ(loaded.clauseCount(), original.clauseCount());
    EXPECT_EQ(loaded.image(), original.image());
    for (std::size_t i = 0; i < loaded.clauseCount(); ++i) {
        EXPECT_EQ(loaded.sourceText(i), original.sourceText(i));
        EXPECT_EQ(loaded.decodeArgs(i).items,
                  original.decodeArgs(i).items);
    }
}

TEST_F(FileIoTest, CorruptMagicRejected)
{
    std::vector<std::uint8_t> junk(64, 0xab);
    storage::writeBytes(path_, junk);
    EXPECT_THROW(storage::loadClauseFile(path_), CorruptionError);
}

TEST_F(FileIoTest, TruncatedImageRejected)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    storage::ClauseFileBuilder builder(writer);
    builder.add(reader.parseClause("p(a)."));
    storage::saveClauseFile(path_, builder.finish());

    std::vector<std::uint8_t> bytes = storage::readBytes(path_);
    bytes.resize(bytes.size() - 4);
    storage::writeBytes(path_, bytes);
    EXPECT_THROW(storage::loadClauseFile(path_), CorruptionError);
}

// ---------------------------------------------------------------------
// Whole-store persistence.
// ---------------------------------------------------------------------

class StoreIoTest : public ::testing::Test
{
  protected:
    std::string dir_ = ::testing::TempDir() + "clare_store_test";

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
};

TEST_F(StoreIoTest, SymbolTableRoundTrip)
{
    term::SymbolTable sym;
    sym.intern("alpha");
    sym.intern("beta with spaces");
    sym.internFloat(3.25);
    sym.internFloat(-0.5);
    std::filesystem::create_directories(dir_);
    storage::saveSymbolTable(dir_ + "/sym.tbl", sym);

    term::SymbolTable fresh;
    storage::loadSymbolTable(dir_ + "/sym.tbl", fresh);
    EXPECT_EQ(fresh.atomCount(), sym.atomCount());
    EXPECT_EQ(fresh.lookup("alpha"), sym.lookup("alpha"));
    EXPECT_EQ(fresh.lookup("beta with spaces"),
              sym.lookup("beta with spaces"));
    EXPECT_DOUBLE_EQ(fresh.floatValue(0), 3.25);
    EXPECT_DOUBLE_EQ(fresh.floatValue(1), -0.5);
}

TEST_F(StoreIoTest, LoadRequiresFreshTable)
{
    term::SymbolTable sym;
    sym.intern("x");
    std::filesystem::create_directories(dir_);
    storage::saveSymbolTable(dir_ + "/sym.tbl", sym);
    term::SymbolTable dirty;
    dirty.intern("pollutant");
    EXPECT_THROW(storage::loadSymbolTable(dir_ + "/sym.tbl", dirty),
                 FatalError);
}

TEST_F(StoreIoTest, StoreRoundTripPreservesRetrieval)
{
    // Build, save, load in a fresh process-like context, and compare
    // retrieval results for every mode.
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::Program program;
    for (auto &c : reader.parseProgram(
             "route(a, b, 3).\nroute(b, c, 2).\nroute(X, X, 0).\n"
             "route(c, d, 7).\n"
             "fare(economy, 10.5).\nfare(business, 99.5).\n"))
        program.add(std::move(c));

    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();
    crs::saveStore(dir_, store, sym);

    term::SymbolTable fresh;
    crs::PredicateStore loaded = crs::loadStore(dir_, fresh);
    EXPECT_EQ(loaded.predicates().size(), store.predicates().size());
    EXPECT_EQ(loaded.dataBytes(), store.dataBytes());
    EXPECT_EQ(loaded.indexBytes(), store.indexBytes());

    crs::ClauseRetrievalServer original_server(sym, store);
    crs::ClauseRetrievalServer loaded_server(fresh, loaded);
    term::TermReader fresh_reader(fresh);

    for (const char *query : {"route(S, S, W)", "route(a, Y, C)",
                              "fare(K, P)"}) {
        term::ParsedTerm q1 = reader.parseTerm(query);
        term::ParsedTerm q2 = fresh_reader.parseTerm(query);
        for (crs::SearchMode mode : {crs::SearchMode::SoftwareOnly,
                                     crs::SearchMode::Fs1Only,
                                     crs::SearchMode::Fs2Only,
                                     crs::SearchMode::TwoStage}) {
            crs::RetrievalRequest ra;
            ra.arena = &q1.arena;
            ra.goal = q1.root;
            ra.mode = mode;
            crs::RetrievalRequest rb;
            rb.arena = &q2.arena;
            rb.goal = q2.root;
            rb.mode = mode;
            crs::RetrievalResponse a = original_server.serve(ra);
            crs::RetrievalResponse b = loaded_server.serve(rb);
            EXPECT_EQ(a.candidates, b.candidates)
                << query << " " << crs::searchModeName(mode);
            EXPECT_EQ(a.answers, b.answers)
                << query << " " << crs::searchModeName(mode);
        }
    }
}

TEST_F(StoreIoTest, MissingDirectoryIsFatal)
{
    term::SymbolTable sym;
    EXPECT_THROW(crs::loadStore(dir_ + "/nope", sym), IoError);
}

// ---------------------------------------------------------------------
// Multi-client simulation.
// ---------------------------------------------------------------------

class ClientSimTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    std::unique_ptr<crs::PredicateStore> store;

    void
    SetUp() override
    {
        term::TermReader reader(sym);
        term::Program program;
        for (auto &c : reader.parseProgram(
                 "stock(widget, 10).\nstock(gadget, 3).\n"
                 "price(widget, 5).\nprice(gadget, 9).\n"))
            program.add(std::move(c));
        store = std::make_unique<crs::PredicateStore>(
            sym, scw::CodewordGenerator{});
        store->addProgram(program);
        store->finalize();
    }
};

TEST_F(ClientSimTest, ReadersShareOneRound)
{
    crs::ClientSimulation sim(sym, *store);
    for (int i = 0; i < 4; ++i) {
        crs::ClientId c = sim.addClient();
        sim.addJob(c, "stock(widget, N)");
    }
    crs::SimulationResult r = sim.run();
    EXPECT_EQ(r.totalJobs, 4u);
    EXPECT_EQ(r.totalWaits, 0u);
    EXPECT_EQ(r.rounds, 2u);    // one working round + the empty check
}

TEST_F(ClientSimTest, WriterSerializesReaders)
{
    crs::ClientSimulation sim(sym, *store);
    crs::ClientId writer = sim.addClient();
    sim.addJob(writer, "stock(widget, 7)", /*exclusive=*/true);
    crs::ClientId reader1 = sim.addClient();
    sim.addJob(reader1, "stock(widget, N)");
    crs::ClientId reader2 = sim.addClient();
    sim.addJob(reader2, "stock(gadget, N)");

    crs::SimulationResult r = sim.run();
    EXPECT_EQ(r.totalJobs, 3u);
    // reader1 conflicts with the writer on stock/2; reader2 hits a
    // different... no: same predicate stock/2 — both readers wait one
    // round behind the exclusive holder.
    EXPECT_GE(r.totalWaits, 2u);
    ASSERT_EQ(r.clients.size(), 3u);
    EXPECT_EQ(r.clients[0].lockWaits, 0u);      // writer went first
    EXPECT_GE(r.clients[1].lockWaits, 1u);
}

TEST_F(ClientSimTest, DisjointPredicatesRunConcurrently)
{
    crs::ClientSimulation sim(sym, *store);
    crs::ClientId a = sim.addClient();
    sim.addJob(a, "stock(widget, N)", /*exclusive=*/true);
    crs::ClientId b = sim.addClient();
    sim.addJob(b, "price(widget, P)", /*exclusive=*/true);
    crs::SimulationResult r = sim.run();
    EXPECT_EQ(r.totalWaits, 0u);
    EXPECT_EQ(r.rounds, 2u);
}

TEST_F(ClientSimTest, QueuesDrainInOrder)
{
    crs::ClientSimulation sim(sym, *store);
    crs::ClientId c = sim.addClient();
    for (int i = 0; i < 5; ++i)
        sim.addJob(c, "price(gadget, P)");
    crs::SimulationResult r = sim.run();
    EXPECT_EQ(r.totalJobs, 5u);
    ASSERT_EQ(r.clients.size(), 1u);
    EXPECT_EQ(r.clients[0].completed, 5u);
    EXPECT_GT(r.clients[0].busyTime, 0u);
    EXPECT_GT(r.makespan, 0u);
}

TEST_F(ClientSimTest, UnknownClientIsFatal)
{
    crs::ClientSimulation sim(sym, *store);
    EXPECT_THROW(sim.addJob(42, "stock(widget, N)"), FatalError);
}

} // namespace
} // namespace clare
