/**
 * @file
 * Concurrency coverage for the sharded retrieval pipeline: thread-pool
 * primitives, FS1 shard determinism (bit-identical candidates and
 * answers at any worker count), serveBatch() equivalence with the
 * sequential loop, shard-accumulated busy-time accounting, and
 * thread-safe statistics, transaction/lock-manager edge cases
 * (re-acquisition, upgrade, partial acquireAll failure), and live-update
 * interleaving: a writer thread streaming assertz commits through a
 * LiveStore while concurrent serveBatch() readers prove that
 * snapshot-pinned reads stay bit-identical to the quiesced pre-commit
 * reference.  These tests carry the `tsan` ctest label so a
 * -DCLARE_SANITIZE=thread build exercises them under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "crs/live_update.hh"
#include "crs/server.hh"
#include "crs/store.hh"
#include "crs/transaction.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"
#include "term/term_reader.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare {
namespace {

/** One goal through the unified front door. */
crs::RetrievalResponse
serveOne(crs::ClauseRetrievalServer &server, const term::TermArena &arena,
         term::TermRef goal, std::optional<crs::SearchMode> mode = {})
{
    crs::RetrievalRequest request;
    request.arena = &arena;
    request.goal = goal;
    request.mode = mode;
    return server.serve(request);
}

// ---------------------------------------------------------------------
// ThreadPool primitives.
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    support::ThreadPool pool(3);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> touched(kCount);
    pool.parallelFor(kCount, [&](std::size_t i) {
        touched[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline)
{
    support::ThreadPool pool(0);
    int calls = 0;
    pool.parallelFor(5, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 5);
    EXPECT_EQ(pool.async([] { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, AsyncReturnsValues)
{
    support::ThreadPool pool(2);
    auto a = pool.async([] { return 7; });
    auto b = pool.async([] { return std::string("ok"); });
    EXPECT_EQ(a.get(), 7);
    EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerDoesNotDeadlock)
{
    // The serveBatch pipeline runs sharded scans from inside a pool
    // task; the construct must complete even when the nested loop's
    // helper jobs can never be picked up by another worker.
    support::ThreadPool pool(1);
    auto fut = pool.async([&pool] {
        std::atomic<int> n{0};
        pool.parallelFor(8, [&](std::size_t) {
            n.fetch_add(1, std::memory_order_relaxed);
        });
        return n.load();
    });
    EXPECT_EQ(fut.get(), 8);
}

// ---------------------------------------------------------------------
// Thread-safe statistics.
// ---------------------------------------------------------------------

TEST(StatsConcurrencyTest, ConcurrentScalarUpdatesDoNotLose)
{
    StatGroup group("g");
    Scalar &counter = group.scalar("n");
    support::ThreadPool pool(4);
    constexpr std::size_t kIters = 10000;
    pool.parallelFor(kIters, [&](std::size_t) { counter += 2; });
    EXPECT_EQ(counter.value(), 2 * kIters);
}

TEST(StatsConcurrencyTest, ConcurrentRegistrationAndSampling)
{
    StatGroup group("g");
    support::ThreadPool pool(4);
    pool.parallelFor(64, [&](std::size_t i) {
        // Half the indices hit one shared distribution, half register
        // interleaved names — registration must be race-free too.
        group.distribution("d" + std::to_string(i % 4))
            .sample(static_cast<double>(i));
        ++group.scalar("s" + std::to_string(i % 8));
    });
    std::uint64_t samples = 0;
    for (int d = 0; d < 4; ++d)
        samples += group.distribution("d" + std::to_string(d)).count();
    EXPECT_EQ(samples, 64u);
}

// ---------------------------------------------------------------------
// Shard ranges.
// ---------------------------------------------------------------------

TEST(ShardRangeTest, PartitionIsContiguousAndComplete)
{
    scw::CodewordGenerator gen;
    scw::SecondaryFile file = scw::SecondaryFile::fromImage(
        std::vector<std::uint8_t>(10 * (gen.signatureBytes() + 8)), 10,
        gen.signatureBytes() + 8);
    for (std::size_t shards : {1u, 2u, 3u, 7u, 10u, 32u}) {
        std::vector<scw::EntryRange> ranges = file.shardRanges(shards);
        ASSERT_FALSE(ranges.empty());
        EXPECT_LE(ranges.size(), std::min<std::size_t>(shards, 10));
        EXPECT_EQ(ranges.front().begin, 0u);
        EXPECT_EQ(ranges.back().end, 10u);
        for (std::size_t s = 1; s < ranges.size(); ++s)
            EXPECT_EQ(ranges[s].begin, ranges[s - 1].end);
    }
    EXPECT_TRUE(file.shardRanges(0).empty());
}

// ---------------------------------------------------------------------
// Engine-level sharded scan.  The server clamps its fan-out to the
// host's core count, so this test drives Fs1Engine directly with an
// explicit pool and shard width to cover the scan/merge path with real
// threads on any hardware.
// ---------------------------------------------------------------------

TEST(Fs1ShardedScanTest, MatchesSequentialScanForAnyShardWidth)
{
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 500;
    spec.varProb = 0.1;
    spec.seed = 29;
    term::Program program = kbgen.generate(spec);
    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();
    const crs::StoredPredicate &stored =
        store.predicate(program.predicates()[0]);

    term::TermReader reader(sym);
    term::ParsedTerm goal = reader.parseTerm("p0(a1, B)");
    scw::Signature sig = store.generator().encode(goal.arena, goal.root);

    fs1::Fs1Engine engine(store.generator(), fs1::Fs1Config{});
    fs1::Fs1Result seq = engine.search(stored.index, sig);
    ASSERT_GT(seq.entriesScanned, 0u);

    support::ThreadPool pool(3);
    for (std::uint32_t shards : {2u, 4u, 16u}) {
        fs1::Fs1Result par =
            engine.search(stored.index, sig, &pool, shards);
        EXPECT_EQ(par.ordinals, seq.ordinals) << shards << " shards";
        EXPECT_EQ(par.clauseOffsets, seq.clauseOffsets);
        EXPECT_EQ(par.entriesScanned, seq.entriesScanned);
        EXPECT_EQ(par.bytesScanned, seq.bytesScanned);
        // Shard byte counts are summed before the single tick
        // conversion, so timing is identical at any shard width.
        EXPECT_EQ(par.busyTime, seq.busyTime);
        EXPECT_EQ(par.shards, shards);
    }
}

// ---------------------------------------------------------------------
// Retrieval pipeline determinism.
// ---------------------------------------------------------------------

class PipelineTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::Program program;
    std::unique_ptr<crs::PredicateStore> store;
    std::vector<workload::GeneratedQuery> queries;

    void
    SetUp() override
    {
        workload::KbGenerator kbgen(sym);
        workload::KbSpec spec;
        spec.predicates = 3;
        spec.clausesPerPredicate = 300;
        spec.varProb = 0.1;
        spec.structProb = 0.25;
        spec.seed = 17;
        program = kbgen.generate(spec);

        store = std::make_unique<crs::PredicateStore>(
            sym, scw::CodewordGenerator{});
        store->addProgram(program);
        store->finalize();

        workload::QuerySpec qspec;
        qspec.boundArgProb = 0.6;
        qspec.sharedVarProb = 0.2;
        qspec.seed = 23;
        workload::QueryGenerator qgen(sym, qspec);
        for (int i = 0; i < 12; ++i) {
            const auto &pred =
                program.predicates()[i % program.predicates().size()];
            queries.push_back(qgen.generate(program, pred));
        }
    }

    std::unique_ptr<crs::ClauseRetrievalServer>
    makeServer(std::uint32_t workers)
    {
        crs::CrsConfig config;
        config.workers = workers;
        return std::make_unique<crs::ClauseRetrievalServer>(
            sym, *store, config);
    }
};

TEST_F(PipelineTest, ShardedRetrievalIsBitIdenticalAcrossWorkerCounts)
{
    auto baseline = makeServer(1);
    for (std::uint32_t workers : {2u, 8u}) {
        auto server = makeServer(workers);
        for (const workload::GeneratedQuery &q : queries) {
            for (crs::SearchMode mode : {crs::SearchMode::Fs1Only,
                                         crs::SearchMode::TwoStage}) {
                crs::RetrievalResponse seq =
                    serveOne(*baseline, q.arena, q.goal, mode);
                crs::RetrievalResponse par =
                    serveOne(*server, q.arena, q.goal, mode);
                EXPECT_EQ(par.candidates, seq.candidates)
                    << workers << " workers";
                EXPECT_EQ(par.answers, seq.answers)
                    << workers << " workers";
                EXPECT_EQ(par.indexEntriesScanned,
                          seq.indexEntriesScanned);
                // Shard byte counts are summed before the tick
                // conversion, so the timing matches to the tick.
                EXPECT_EQ(par.breakdown.indexTime,
                          seq.breakdown.indexTime);
                EXPECT_EQ(par.elapsed, seq.elapsed);
            }
        }
    }
}

TEST_F(PipelineTest, ServeBatchMatchesSequentialLoop)
{
    using Request = crs::RetrievalRequest;
    std::vector<Request> batch;
    for (std::size_t i = 0; i < queries.size(); ++i) {
        Request r;
        r.arena = &queries[i].arena;
        r.goal = queries[i].goal;
        // Mix explicit modes with auto-selection.
        if (i % 3 == 0)
            r.mode = crs::SearchMode::TwoStage;
        else if (i % 3 == 1)
            r.mode = crs::SearchMode::Fs1Only;
        batch.push_back(r);
    }

    auto seq_server = makeServer(1);
    std::vector<crs::RetrievalResponse> expected;
    for (const Request &r : batch) {
        expected.push_back(seq_server->serve(r));
    }

    for (std::uint32_t workers : {1u, 2u, 8u}) {
        auto server = makeServer(workers);
        std::vector<crs::RetrievalResponse> got =
            server->serveBatch(batch);
        ASSERT_EQ(got.size(), expected.size()) << workers << " workers";
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].mode, expected[i].mode) << "query " << i;
            EXPECT_EQ(got[i].candidates, expected[i].candidates)
                << "query " << i << ", " << workers << " workers";
            EXPECT_EQ(got[i].answers, expected[i].answers)
                << "query " << i << ", " << workers << " workers";
            EXPECT_EQ(got[i].elapsed, expected[i].elapsed)
                << "query " << i << ", " << workers << " workers";
        }
    }
}

TEST_F(PipelineTest, SharedServerStatsAggregateAcrossWorkers)
{
    auto server = makeServer(4);
    std::uint64_t scanned = 0;
    for (const workload::GeneratedQuery &q : queries) {
        crs::RetrievalResponse r = serveOne(
            *server, q.arena, q.goal, crs::SearchMode::Fs1Only);
        scanned += r.indexEntriesScanned;
    }
    EXPECT_EQ(server->fs1Stats().scalar("entriesScanned").value(),
              scanned);
    EXPECT_EQ(server->fs1Stats().scalar("searches").value(),
              queries.size());
}

// ---------------------------------------------------------------------
// Transaction / lock-manager edge cases.  These pin the exact contract
// the live-update path depends on: held-lock bookkeeping must release
// exactly once, commit must invalidate exactly the predicates written,
// and neither abort path may invalidate anything.
// ---------------------------------------------------------------------

struct CountingSink : crs::CacheInvalidationSink
{
    std::map<term::PredicateId, int> counts;
    void
    invalidatePredicate(const term::PredicateId &pred) override
    {
        ++counts[pred];
    }
};

TEST(TransactionEdgeTest, ReacquiredLockReleasesExactlyOnce)
{
    crs::LockManager lm;
    const term::PredicateId p{3, 2};
    crs::Transaction tx(lm, 7);
    EXPECT_TRUE(tx.acquire(p, crs::LockKind::Shared));
    EXPECT_TRUE(tx.acquire(p, crs::LockKind::Shared));
    // A duplicate held-lock entry would double-release here and trip
    // the manager's unheld-lock assert.
    tx.commit();
    EXPECT_FALSE(lm.holds(7, p));
    EXPECT_EQ(lm.holders(p), 0u);
}

TEST(TransactionEdgeTest, SharedThenExclusiveInvalidatesOnceOnCommit)
{
    crs::LockManager lm;
    CountingSink sink;
    const term::PredicateId p{3, 2};
    crs::Transaction tx(lm, 7, &sink);
    EXPECT_TRUE(tx.acquire(p, crs::LockKind::Shared));
    // The sole sharer is granted the in-place strengthen; the held
    // record must follow it so commit treats the predicate as written.
    EXPECT_TRUE(tx.acquire(p, crs::LockKind::Exclusive));
    EXPECT_EQ(lm.holders(p), 1u);
    tx.commit();
    EXPECT_EQ(sink.counts[p], 1);
    EXPECT_FALSE(lm.holds(7, p));
}

TEST(TransactionEdgeTest, UpgradeMarksPredicateWritten)
{
    crs::LockManager lm;
    CountingSink sink;
    const term::PredicateId p{4, 1};
    crs::Transaction co(lm, 1);
    ASSERT_TRUE(co.acquire(p, crs::LockKind::Shared));
    crs::Transaction tx(lm, 2, &sink);
    ASSERT_TRUE(tx.acquire(p, crs::LockKind::Shared));
    // A co-sharer blocks the upgrade and must not corrupt the held
    // record: tx still reads as a plain sharer.
    EXPECT_FALSE(tx.upgrade(p));
    co.commit();
    // Now the sole sharer; the upgrade succeeds and is idempotent.
    EXPECT_TRUE(tx.upgrade(p));
    EXPECT_TRUE(tx.upgrade(p));
    tx.commit();
    EXPECT_EQ(sink.counts[p], 1);
    EXPECT_EQ(lm.holders(p), 0u);
}

TEST(TransactionEdgeTest, FailedAcquireAllKeepsPriorLocks)
{
    crs::LockManager lm;
    const term::PredicateId a{1, 1};
    const term::PredicateId b{2, 1};
    const term::PredicateId c{3, 1};
    crs::Transaction blocker(lm, 1);
    ASSERT_TRUE(blocker.acquire(b, crs::LockKind::Exclusive));
    crs::Transaction tx(lm, 2);
    ASSERT_TRUE(tx.acquire(a, crs::LockKind::Shared));
    // The batch sorts to {a, b, c} and fails at b.  Only locks the
    // call newly created may be rolled back — `a` predates it.
    EXPECT_FALSE(tx.acquireAll({c, b, a}, crs::LockKind::Shared));
    EXPECT_TRUE(lm.holds(2, a));
    EXPECT_FALSE(lm.holds(2, c));
    tx.commit();
    EXPECT_EQ(lm.holders(a), 0u);
    blocker.abort();
    EXPECT_EQ(lm.holders(b), 0u);
}

TEST(TransactionEdgeTest, FailedAcquireAllDowngradesInPlaceUpgrades)
{
    crs::LockManager lm;
    CountingSink sink;
    const term::PredicateId a{1, 1};
    const term::PredicateId b{2, 1};
    crs::Transaction blocker(lm, 1);
    ASSERT_TRUE(blocker.acquire(b, crs::LockKind::Exclusive));
    crs::Transaction tx(lm, 2, &sink);
    ASSERT_TRUE(tx.acquire(a, crs::LockKind::Shared));
    // The batch sorts to {a, b}: `a` is strengthened in place to
    // exclusive, then `b` conflicts.  Rollback must restore `a` to
    // Shared, not leave it escalated.
    EXPECT_FALSE(tx.acquireAll({a, b}, crs::LockKind::Exclusive));
    EXPECT_EQ(lm.heldKind(2, a), crs::LockKind::Shared);
    // The proof of the downgrade: a co-sharer can join again (an
    // escalated lock would refuse), and an exclusive grab cannot.
    crs::Transaction sharer(lm, 3);
    EXPECT_TRUE(sharer.acquire(a, crs::LockKind::Shared));
    EXPECT_FALSE(lm.acquire(4, a, crs::LockKind::Exclusive));
    sharer.abort();
    // And the held record kept its pre-call strength: commit must not
    // treat `a` as written.
    tx.commit();
    EXPECT_TRUE(sink.counts.empty());
    EXPECT_EQ(lm.holders(a), 0u);
    blocker.abort();
}

TEST(TransactionEdgeTest, DestructorAbortNeverInvalidates)
{
    crs::LockManager lm;
    CountingSink sink;
    const term::PredicateId p{5, 2};
    {
        crs::Transaction tx(lm, 9, &sink);
        ASSERT_TRUE(tx.acquire(p, crs::LockKind::Exclusive));
    }
    EXPECT_TRUE(sink.counts.empty());
    EXPECT_EQ(lm.holders(p), 0u);
}

// ---------------------------------------------------------------------
// Live-update interleaving: a writer thread streams single-clause
// assertz commits through a LiveStore while reader threads hammer
// serveBatch() on the same server.  Reads pinned at snapshot 0 must be
// bit-identical (answers AND modeled ticks) to the reference captured
// before the writer started, at any worker count; unpinned head reads
// may only grow (the stream is assertz-only) and must equal a quiesced
// from-scratch rebuild once the writer joins.
// ---------------------------------------------------------------------

TEST(LiveInterleavingTest, SnapshotReadsAreIsolatedFromAStreamingWriter)
{
    constexpr const char *kLiveBase =
        "edge(a, b). edge(b, c). edge(a, a). edge(c, d). edge(d, a).\n"
        "link(a, b, c). link(b, c, d).\n";
    const std::vector<std::string> goal_texts = {
        "edge(a, X)", "edge(X, Y)", "edge(X, d)", "link(a, X, Y)"};
    constexpr int kStream = 24;

    for (std::uint32_t workers : {1u, 4u}) {
        SCOPED_TRACE(std::to_string(workers) + " workers");
        term::SymbolTable sym;
        term::TermReader reader(sym);

        auto build = [&](const std::string &text) {
            term::Program program;
            for (auto &c : reader.parseProgram(text))
                program.add(std::move(c));
            auto store = std::make_unique<crs::PredicateStore>(
                sym, scw::CodewordGenerator{});
            store->addProgram(program);
            store->buildSlicedIndexes();
            store->finalize();
            return store;
        };
        auto store = build(kLiveBase);

        const std::string wal_path =
            ::testing::TempDir() + "live_interleave_" +
            std::to_string(workers) + ".wal";
        std::remove(wal_path.c_str());
        crs::LiveStore live(*store, sym, wal_path);

        crs::CrsConfig config;
        config.workers = workers;
        crs::ClauseRetrievalServer server(sym, *store, config);
        live.attachSink(&server);

        // Pre-parse every clause the writer will stream so all symbol
        // interning happens before a second thread exists — the
        // SymbolTable is unsynchronized, and once the names are in the
        // table the commit path only performs lookups.
        std::vector<term::Clause> stream;
        std::string streamed_text;
        for (int i = 0; i < kStream; ++i) {
            std::string text = "edge(w" + std::to_string(i) + ", w" +
                               std::to_string(i + 1) + ").";
            stream.push_back(reader.parseClause(text));
            streamed_text += text + "\n";
        }

        std::vector<term::ParsedTerm> goals;
        for (const std::string &text : goal_texts)
            goals.push_back(reader.parseTerm(text));
        std::vector<crs::RetrievalRequest> pinned;
        std::vector<crs::RetrievalRequest> head;
        for (std::size_t i = 0; i < goals.size(); ++i) {
            crs::RetrievalRequest r;
            r.arena = &goals[i].arena;
            r.goal = goals[i].root;
            r.mode = (i % 2 == 0) ? crs::SearchMode::TwoStage
                                  : crs::SearchMode::Fs1Only;
            head.push_back(r);
            r.snapshot = 0;
            pinned.push_back(r);
        }

        // Reference captured while quiesced, before the first commit.
        const std::vector<crs::RetrievalResponse> expected =
            server.serveBatch(pinned);
        ASSERT_EQ(expected.size(), pinned.size());

        std::atomic<bool> done{false};
        std::thread writer([&] {
            for (const term::Clause &clause : stream)
                live.assertz(clause);
            done.store(true, std::memory_order_release);
        });

        // Pinned reader: every batch must be bit-identical to the
        // pre-write reference no matter what the writer publishes.
        std::thread snap_reader([&] {
            do {
                std::vector<crs::RetrievalResponse> got =
                    server.serveBatch(pinned);
                ASSERT_EQ(got.size(), expected.size());
                for (std::size_t i = 0; i < got.size(); ++i) {
                    EXPECT_EQ(got[i].mode, expected[i].mode) << i;
                    EXPECT_EQ(got[i].candidates, expected[i].candidates)
                        << "goal " << i;
                    EXPECT_EQ(got[i].answers, expected[i].answers)
                        << "goal " << i;
                    EXPECT_EQ(got[i].indexEntriesScanned,
                              expected[i].indexEntriesScanned)
                        << "goal " << i;
                    EXPECT_EQ(got[i].elapsed, expected[i].elapsed)
                        << "goal " << i;
                }
            } while (!done.load(std::memory_order_acquire));
        });

        // Head reader: unpinned batches race the writer; with an
        // assertz-only stream the all-variables scan can only grow.
        std::thread head_reader([&] {
            do {
                std::vector<crs::RetrievalResponse> got =
                    server.serveBatch(head);
                ASSERT_EQ(got.size(), expected.size());
                for (std::size_t i = 0; i < got.size(); ++i) {
                    EXPECT_GE(got[i].answers, expected[i].answers)
                        << "goal " << i;
                }
            } while (!done.load(std::memory_order_acquire));
        });

        writer.join();
        snap_reader.join();
        head_reader.join();
        EXPECT_EQ(store->headGeneration(),
                  static_cast<std::uint64_t>(kStream));

        // Quiesced: the pinned view still reads pre-write...
        std::vector<crs::RetrievalResponse> still =
            server.serveBatch(pinned);
        for (std::size_t i = 0; i < still.size(); ++i) {
            EXPECT_EQ(still[i].answers, expected[i].answers) << i;
            EXPECT_EQ(still[i].elapsed, expected[i].elapsed) << i;
        }

        // ...and the head view is bit-identical to a from-scratch
        // rebuild of base + stream (shared symbol table, so signatures
        // and modeled ticks must match exactly).
        auto rebuilt = build(kLiveBase + streamed_text);
        crs::ClauseRetrievalServer ref_server(sym, *rebuilt, config);
        std::vector<crs::RetrievalResponse> live_head =
            server.serveBatch(head);
        std::vector<crs::RetrievalResponse> ref_head =
            ref_server.serveBatch(head);
        ASSERT_EQ(live_head.size(), ref_head.size());
        for (std::size_t i = 0; i < live_head.size(); ++i) {
            EXPECT_EQ(live_head[i].candidates, ref_head[i].candidates)
                << "goal " << i;
            EXPECT_EQ(live_head[i].answers, ref_head[i].answers)
                << "goal " << i;
            EXPECT_EQ(live_head[i].indexEntriesScanned,
                      ref_head[i].indexEntriesScanned)
                << "goal " << i;
            EXPECT_EQ(live_head[i].elapsed, ref_head[i].elapsed)
                << "goal " << i;
        }
        std::remove(wal_path.c_str());
    }
}

} // namespace
} // namespace clare
