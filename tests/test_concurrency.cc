/**
 * @file
 * Concurrency coverage for the sharded retrieval pipeline: thread-pool
 * primitives, FS1 shard determinism (bit-identical candidates and
 * answers at any worker count), serveBatch() equivalence with the
 * sequential loop, shard-accumulated busy-time accounting, and
 * thread-safe statistics.  These tests carry the `tsan` ctest label so
 * a -DCLARE_SANITIZE=thread build exercises them under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "crs/server.hh"
#include "crs/store.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"
#include "term/term_reader.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare {
namespace {

/** One goal through the unified front door. */
crs::RetrievalResponse
serveOne(crs::ClauseRetrievalServer &server, const term::TermArena &arena,
         term::TermRef goal, std::optional<crs::SearchMode> mode = {})
{
    crs::RetrievalRequest request;
    request.arena = &arena;
    request.goal = goal;
    request.mode = mode;
    return server.serve(request);
}

// ---------------------------------------------------------------------
// ThreadPool primitives.
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    support::ThreadPool pool(3);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> touched(kCount);
    pool.parallelFor(kCount, [&](std::size_t i) {
        touched[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline)
{
    support::ThreadPool pool(0);
    int calls = 0;
    pool.parallelFor(5, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 5);
    EXPECT_EQ(pool.async([] { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, AsyncReturnsValues)
{
    support::ThreadPool pool(2);
    auto a = pool.async([] { return 7; });
    auto b = pool.async([] { return std::string("ok"); });
    EXPECT_EQ(a.get(), 7);
    EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerDoesNotDeadlock)
{
    // The serveBatch pipeline runs sharded scans from inside a pool
    // task; the construct must complete even when the nested loop's
    // helper jobs can never be picked up by another worker.
    support::ThreadPool pool(1);
    auto fut = pool.async([&pool] {
        std::atomic<int> n{0};
        pool.parallelFor(8, [&](std::size_t) {
            n.fetch_add(1, std::memory_order_relaxed);
        });
        return n.load();
    });
    EXPECT_EQ(fut.get(), 8);
}

// ---------------------------------------------------------------------
// Thread-safe statistics.
// ---------------------------------------------------------------------

TEST(StatsConcurrencyTest, ConcurrentScalarUpdatesDoNotLose)
{
    StatGroup group("g");
    Scalar &counter = group.scalar("n");
    support::ThreadPool pool(4);
    constexpr std::size_t kIters = 10000;
    pool.parallelFor(kIters, [&](std::size_t) { counter += 2; });
    EXPECT_EQ(counter.value(), 2 * kIters);
}

TEST(StatsConcurrencyTest, ConcurrentRegistrationAndSampling)
{
    StatGroup group("g");
    support::ThreadPool pool(4);
    pool.parallelFor(64, [&](std::size_t i) {
        // Half the indices hit one shared distribution, half register
        // interleaved names — registration must be race-free too.
        group.distribution("d" + std::to_string(i % 4))
            .sample(static_cast<double>(i));
        ++group.scalar("s" + std::to_string(i % 8));
    });
    std::uint64_t samples = 0;
    for (int d = 0; d < 4; ++d)
        samples += group.distribution("d" + std::to_string(d)).count();
    EXPECT_EQ(samples, 64u);
}

// ---------------------------------------------------------------------
// Shard ranges.
// ---------------------------------------------------------------------

TEST(ShardRangeTest, PartitionIsContiguousAndComplete)
{
    scw::CodewordGenerator gen;
    scw::SecondaryFile file = scw::SecondaryFile::fromImage(
        std::vector<std::uint8_t>(10 * (gen.signatureBytes() + 8)), 10,
        gen.signatureBytes() + 8);
    for (std::size_t shards : {1u, 2u, 3u, 7u, 10u, 32u}) {
        std::vector<scw::EntryRange> ranges = file.shardRanges(shards);
        ASSERT_FALSE(ranges.empty());
        EXPECT_LE(ranges.size(), std::min<std::size_t>(shards, 10));
        EXPECT_EQ(ranges.front().begin, 0u);
        EXPECT_EQ(ranges.back().end, 10u);
        for (std::size_t s = 1; s < ranges.size(); ++s)
            EXPECT_EQ(ranges[s].begin, ranges[s - 1].end);
    }
    EXPECT_TRUE(file.shardRanges(0).empty());
}

// ---------------------------------------------------------------------
// Engine-level sharded scan.  The server clamps its fan-out to the
// host's core count, so this test drives Fs1Engine directly with an
// explicit pool and shard width to cover the scan/merge path with real
// threads on any hardware.
// ---------------------------------------------------------------------

TEST(Fs1ShardedScanTest, MatchesSequentialScanForAnyShardWidth)
{
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 500;
    spec.varProb = 0.1;
    spec.seed = 29;
    term::Program program = kbgen.generate(spec);
    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();
    const crs::StoredPredicate &stored =
        store.predicate(program.predicates()[0]);

    term::TermReader reader(sym);
    term::ParsedTerm goal = reader.parseTerm("p0(a1, B)");
    scw::Signature sig = store.generator().encode(goal.arena, goal.root);

    fs1::Fs1Engine engine(store.generator(), fs1::Fs1Config{});
    fs1::Fs1Result seq = engine.search(stored.index, sig);
    ASSERT_GT(seq.entriesScanned, 0u);

    support::ThreadPool pool(3);
    for (std::uint32_t shards : {2u, 4u, 16u}) {
        fs1::Fs1Result par =
            engine.search(stored.index, sig, &pool, shards);
        EXPECT_EQ(par.ordinals, seq.ordinals) << shards << " shards";
        EXPECT_EQ(par.clauseOffsets, seq.clauseOffsets);
        EXPECT_EQ(par.entriesScanned, seq.entriesScanned);
        EXPECT_EQ(par.bytesScanned, seq.bytesScanned);
        // Shard byte counts are summed before the single tick
        // conversion, so timing is identical at any shard width.
        EXPECT_EQ(par.busyTime, seq.busyTime);
        EXPECT_EQ(par.shards, shards);
    }
}

// ---------------------------------------------------------------------
// Retrieval pipeline determinism.
// ---------------------------------------------------------------------

class PipelineTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::Program program;
    std::unique_ptr<crs::PredicateStore> store;
    std::vector<workload::GeneratedQuery> queries;

    void
    SetUp() override
    {
        workload::KbGenerator kbgen(sym);
        workload::KbSpec spec;
        spec.predicates = 3;
        spec.clausesPerPredicate = 300;
        spec.varProb = 0.1;
        spec.structProb = 0.25;
        spec.seed = 17;
        program = kbgen.generate(spec);

        store = std::make_unique<crs::PredicateStore>(
            sym, scw::CodewordGenerator{});
        store->addProgram(program);
        store->finalize();

        workload::QuerySpec qspec;
        qspec.boundArgProb = 0.6;
        qspec.sharedVarProb = 0.2;
        qspec.seed = 23;
        workload::QueryGenerator qgen(sym, qspec);
        for (int i = 0; i < 12; ++i) {
            const auto &pred =
                program.predicates()[i % program.predicates().size()];
            queries.push_back(qgen.generate(program, pred));
        }
    }

    std::unique_ptr<crs::ClauseRetrievalServer>
    makeServer(std::uint32_t workers)
    {
        crs::CrsConfig config;
        config.workers = workers;
        return std::make_unique<crs::ClauseRetrievalServer>(
            sym, *store, config);
    }
};

TEST_F(PipelineTest, ShardedRetrievalIsBitIdenticalAcrossWorkerCounts)
{
    auto baseline = makeServer(1);
    for (std::uint32_t workers : {2u, 8u}) {
        auto server = makeServer(workers);
        for (const workload::GeneratedQuery &q : queries) {
            for (crs::SearchMode mode : {crs::SearchMode::Fs1Only,
                                         crs::SearchMode::TwoStage}) {
                crs::RetrievalResponse seq =
                    serveOne(*baseline, q.arena, q.goal, mode);
                crs::RetrievalResponse par =
                    serveOne(*server, q.arena, q.goal, mode);
                EXPECT_EQ(par.candidates, seq.candidates)
                    << workers << " workers";
                EXPECT_EQ(par.answers, seq.answers)
                    << workers << " workers";
                EXPECT_EQ(par.indexEntriesScanned,
                          seq.indexEntriesScanned);
                // Shard byte counts are summed before the tick
                // conversion, so the timing matches to the tick.
                EXPECT_EQ(par.breakdown.indexTime,
                          seq.breakdown.indexTime);
                EXPECT_EQ(par.elapsed, seq.elapsed);
            }
        }
    }
}

TEST_F(PipelineTest, ServeBatchMatchesSequentialLoop)
{
    using Request = crs::RetrievalRequest;
    std::vector<Request> batch;
    for (std::size_t i = 0; i < queries.size(); ++i) {
        Request r;
        r.arena = &queries[i].arena;
        r.goal = queries[i].goal;
        // Mix explicit modes with auto-selection.
        if (i % 3 == 0)
            r.mode = crs::SearchMode::TwoStage;
        else if (i % 3 == 1)
            r.mode = crs::SearchMode::Fs1Only;
        batch.push_back(r);
    }

    auto seq_server = makeServer(1);
    std::vector<crs::RetrievalResponse> expected;
    for (const Request &r : batch) {
        expected.push_back(seq_server->serve(r));
    }

    for (std::uint32_t workers : {1u, 2u, 8u}) {
        auto server = makeServer(workers);
        std::vector<crs::RetrievalResponse> got =
            server->serveBatch(batch);
        ASSERT_EQ(got.size(), expected.size()) << workers << " workers";
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].mode, expected[i].mode) << "query " << i;
            EXPECT_EQ(got[i].candidates, expected[i].candidates)
                << "query " << i << ", " << workers << " workers";
            EXPECT_EQ(got[i].answers, expected[i].answers)
                << "query " << i << ", " << workers << " workers";
            EXPECT_EQ(got[i].elapsed, expected[i].elapsed)
                << "query " << i << ", " << workers << " workers";
        }
    }
}

TEST_F(PipelineTest, SharedServerStatsAggregateAcrossWorkers)
{
    auto server = makeServer(4);
    std::uint64_t scanned = 0;
    for (const workload::GeneratedQuery &q : queries) {
        crs::RetrievalResponse r = serveOne(
            *server, q.arena, q.goal, crs::SearchMode::Fs1Only);
        scanned += r.indexEntriesScanned;
    }
    EXPECT_EQ(server->fs1Stats().scalar("entriesScanned").value(),
              scanned);
    EXPECT_EQ(server->fs1Stats().scalar("searches").value(),
              queries.size());
}

} // namespace
} // namespace clare
