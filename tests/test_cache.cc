/**
 * @file
 * The three-level retrieval cache hierarchy (ctest label: cache).
 *
 * L1 — storage::DiskModel track cache: hit skips the seek and streams
 * at memory speed, miss pays full disk timing and fills, corrupted
 * deliveries are never admitted, and the disabled state is
 * bit-identical to the pre-cache model.
 *
 * L2 — scw::SignatureCache + fs1::SurvivorCache: repeated (canonical)
 * goals skip encoding and the index scan; the replayed Fs1Result is
 * verbatim.
 *
 * L3 — crs::GoalCache: a hit replays the full response payload
 * bit-identically while charging only the modeled cache lookup;
 * entries invalidate per predicate through crs::Transaction commit.
 *
 * Shared invariants: cold and bypassed requests are bit-identical to
 * a cache-disabled server, and batch results are identical at any
 * worker count.  These tests also carry the concurrency coverage the
 * tier-1 TSan stage runs (-DCLARE_SANITIZE=thread, ctest -L cache).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "crs/server.hh"
#include "crs/store.hh"
#include "crs/transaction.hh"
#include "fs1/fs1_engine.hh"
#include "storage/disk_model.hh"
#include "support/lru.hh"
#include "support/thread_pool.hh"
#include "term/canonical.hh"
#include "term/term_reader.hh"
#include "workload/kb_generator.hh"

namespace clare {
namespace {

// ---------------------------------------------------------------------
// support::LruCache — the shared substrate.
// ---------------------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsed)
{
    support::LruCache<int, std::string> cache(2);
    EXPECT_FALSE(cache.put(1, "one"));
    EXPECT_FALSE(cache.put(2, "two"));
    EXPECT_TRUE(cache.put(3, "three"));   // evicts 1
    EXPECT_EQ(cache.get(1), nullptr);
    ASSERT_NE(cache.get(2), nullptr);
    EXPECT_EQ(*cache.get(3), "three");
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, GetPromotesToMostRecent)
{
    support::LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    ASSERT_NE(cache.get(1), nullptr);     // 2 is now least-recent
    cache.put(3, 30);                     // evicts 2
    EXPECT_NE(cache.get(1), nullptr);
    EXPECT_EQ(cache.get(2), nullptr);
    EXPECT_NE(cache.get(3), nullptr);
}

TEST(LruCacheTest, PutOverwritesWithoutEviction)
{
    support::LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    EXPECT_FALSE(cache.put(1, 11));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(*cache.get(1), 11);
}

TEST(LruCacheTest, CapacityZeroIsInertNoop)
{
    support::LruCache<int, int> cache(0);
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.put(1, 10));
    EXPECT_EQ(cache.get(1), nullptr);
    EXPECT_FALSE(cache.contains(1));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, EraseIfRemovesMatchingEntries)
{
    support::LruCache<int, int> cache(8);
    for (int i = 0; i < 6; ++i)
        cache.put(i, i * 10);
    std::size_t removed =
        cache.eraseIf([](int key, int) { return key % 2 == 0; });
    EXPECT_EQ(removed, 3u);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(1));
}

// ---------------------------------------------------------------------
// term::canonicalKey — the renaming-invariant cache key.
// ---------------------------------------------------------------------

class CanonicalKeyTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};

    std::string
    key(const std::string &text)
    {
        term::ParsedTerm t = reader.parseTerm(text);
        return term::canonicalKey(t.arena, t.root);
    }

    std::uint64_t
    hash(const std::string &text)
    {
        term::ParsedTerm t = reader.parseTerm(text);
        return term::canonicalHash(t.arena, t.root);
    }
};

TEST_F(CanonicalKeyTest, RenamedVariablesShareOneKey)
{
    EXPECT_EQ(key("p(X, Y)"), key("p(A, B)"));
    EXPECT_EQ(key("f(X, g(X, Z))"), key("f(Q, g(Q, R))"));
}

TEST_F(CanonicalKeyTest, SharedVariablesAreDistinguished)
{
    EXPECT_NE(key("p(X, X)"), key("p(X, Y)"));
    EXPECT_EQ(key("p(X, X)"), key("p(B, B)"));
}

TEST_F(CanonicalKeyTest, AnonymousVariablesAreAlwaysFresh)
{
    // _ never co-refers, so p(_, _) has the shape of p(X, Y).
    EXPECT_EQ(key("p(_, _)"), key("p(X, Y)"));
    EXPECT_NE(key("p(_, _)"), key("p(X, X)"));
}

TEST_F(CanonicalKeyTest, GroundContentIsDistinguished)
{
    EXPECT_NE(key("p(a, X)"), key("p(b, X)"));
    EXPECT_NE(key("p(1, X)"), key("p(2, X)"));
    EXPECT_NE(key("p(a)"), key("q(a)"));
    EXPECT_NE(key("p(a)"), key("p(a, b)"));
    EXPECT_NE(key("p([a, b])"), key("p([a | T])"));
}

TEST_F(CanonicalKeyTest, HashFollowsKeyEquality)
{
    EXPECT_EQ(hash("p(X, Y)"), hash("p(A, B)"));
    EXPECT_NE(hash("p(a, X)"), hash("p(b, X)"));
}

// ---------------------------------------------------------------------
// L1: the DiskModel track cache.
// ---------------------------------------------------------------------

class DiskCacheTest : public ::testing::Test
{
  protected:
    storage::DiskModel disk{storage::DiskGeometry::fujitsuM2351A()};
    obs::MetricsRegistry metrics;
    obs::Observer obs{nullptr, &metrics};

    void
    SetUp() override
    {
        // 8 tracks of data.
        std::vector<std::uint8_t> image(
            8ull * disk.geometry().trackBytes());
        for (std::size_t i = 0; i < image.size(); ++i)
            image[i] = static_cast<std::uint8_t>(i * 7 + 3);
        disk.load(std::move(image));
    }

    std::uint64_t
    counter(const std::string &name) const
    {
        for (const auto &c : metrics.counters())
            if (c.name == name)
                return c.value;
        return 0;
    }
};

TEST_F(DiskCacheTest, DisabledModelReadMatchesAnalyticTiming)
{
    storage::ReadTiming rt = disk.modelRead(100, 5000, obs);
    EXPECT_EQ(rt.access, disk.accessTime());
    EXPECT_EQ(rt.transfer, disk.transferTime(5000));
    EXPECT_FALSE(rt.cacheHit);
    // Disabled cache must not even create the counters, so default
    // runs keep a bit-identical metrics dump.
    EXPECT_TRUE(metrics.counters().empty());
}

TEST_F(DiskCacheTest, MissFillsThenHitSkipsSeek)
{
    disk.configureCache({.capacityTracks = 4, .cacheRate = 200.0e6});
    storage::ReadTiming miss = disk.modelRead(0, 40000, obs);
    EXPECT_FALSE(miss.cacheHit);
    EXPECT_EQ(miss.access, disk.accessTime());
    EXPECT_EQ(miss.transfer, disk.transferTime(40000));
    EXPECT_EQ(disk.cachedTracks(), 2u);   // 40000 bytes, 32 KB tracks

    storage::ReadTiming hit = disk.modelRead(0, 40000, obs);
    EXPECT_TRUE(hit.cacheHit);
    EXPECT_EQ(hit.access, 0u);
    EXPECT_LT(hit.transfer, miss.transfer);
    EXPECT_EQ(counter("disk.cache.hit"), 1u);
    EXPECT_EQ(counter("disk.cache.miss"), 1u);
}

TEST_F(DiskCacheTest, CapacityPressureEvictsLeastRecentTracks)
{
    disk.configureCache({.capacityTracks = 2, .cacheRate = 200.0e6});
    const std::uint64_t track = disk.geometry().trackBytes();
    disk.modelRead(0 * track, 100, obs);
    disk.modelRead(1 * track, 100, obs);
    disk.modelRead(2 * track, 100, obs);  // evicts track 0
    EXPECT_EQ(disk.cachedTracks(), 2u);
    EXPECT_GE(counter("disk.cache.evict"), 1u);
    EXPECT_FALSE(disk.modelRead(0, 100, obs).cacheHit);
}

TEST_F(DiskCacheTest, RangeWiderThanCapacityIsNotAdmitted)
{
    // Scan resistance: one full-image sweep must not flush the cache.
    disk.configureCache({.capacityTracks = 2, .cacheRate = 200.0e6});
    disk.modelRead(0, 100, obs);
    disk.modelRead(disk.geometry().trackBytes(), 100, obs);
    ASSERT_EQ(disk.cachedTracks(), 2u);
    disk.modelRead(0, disk.image().size(), obs);   // 8-track sweep
    EXPECT_EQ(disk.cachedTracks(), 2u);
    EXPECT_TRUE(disk.modelRead(0, 100, obs).cacheHit);
}

TEST_F(DiskCacheTest, DropCacheEmptiesResidentSet)
{
    disk.configureCache({.capacityTracks = 4, .cacheRate = 200.0e6});
    disk.modelRead(0, 1000, obs);
    ASSERT_GT(disk.cachedTracks(), 0u);
    disk.dropCache();
    EXPECT_EQ(disk.cachedTracks(), 0u);
}

TEST_F(DiskCacheTest, StreamHitDeliversSameBytesWithoutAccessTime)
{
    disk.configureCache({.capacityTracks = 4, .cacheRate = 200.0e6});
    auto stream_all = [&](std::uint64_t len) {
        std::vector<std::uint8_t> bytes;
        Tick end = disk.stream(
            0, len, 4096, 0,
            [&](const std::uint8_t *d, std::uint32_t n, Tick) {
                bytes.insert(bytes.end(), d, d + n);
            },
            obs);
        return std::make_pair(std::move(bytes), end);
    };
    auto [cold_bytes, cold_end] = stream_all(50000);
    auto [warm_bytes, warm_end] = stream_all(50000);
    EXPECT_EQ(warm_bytes, cold_bytes);
    EXPECT_LT(warm_end, cold_end);
    // The hit pays no seek/rotation at all: pure cache-rate transfer.
    EXPECT_LT(warm_end, disk.accessTime());
}

TEST_F(DiskCacheTest, CorruptedDeliveryIsNeverAdmitted)
{
    disk.configureCache({.capacityTracks = 4, .cacheRate = 200.0e6});
    support::FaultConfig config;
    config.seed = 11;
    config.bitFlipRate = 1.0;     // every chunk delivered corrupt
    support::FaultInjector faults(config);
    std::vector<std::uint8_t> delivered;
    disk.stream(
        0, 8192, 4096, 0,
        [&](const std::uint8_t *d, std::uint32_t n, Tick) {
            delivered.insert(delivered.end(), d, d + n);
        },
        obs, 0, &faults);
    ASSERT_NE(delivered,
              std::vector<std::uint8_t>(disk.image().begin(),
                                        disk.image().begin() + 8192));
    // The poisoned range must not be resident: a re-read goes to the
    // platters (and, fault-free this time, delivers clean bytes).
    EXPECT_EQ(disk.cachedTracks(), 0u);
    EXPECT_FALSE(disk.modelRead(0, 8192, obs).cacheHit);
}

// ---------------------------------------------------------------------
// FS1 shard spans telescope to the merged busy time (satellite fix:
// span ticks and busyTime derive from one cumulative conversion).
// ---------------------------------------------------------------------

TEST(Fs1SpanAccountingTest, ShardSpanTicksSumToMergedBusyTime)
{
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 777;   // odd count → uneven shards
    spec.seed = 5;
    term::Program program = kbgen.generate(spec);
    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();
    const crs::StoredPredicate &stored =
        store.predicate(program.predicates()[0]);

    term::TermReader reader(sym);
    term::ParsedTerm goal = reader.parseTerm("p0(a1, B)");
    scw::Signature sig = store.generator().encode(goal.arena, goal.root);

    fs1::Fs1Engine engine(store.generator(), fs1::Fs1Config{});
    support::ThreadPool pool(3);
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    obs::Observer obs{&tracer, &metrics};
    for (std::uint32_t shards : {1u, 3u, 7u}) {
        tracer.clear();
        fs1::Fs1Result result =
            engine.search(stored.index, sig, &pool, shards, obs);
        Tick span_sum = 0;
        for (const obs::SpanRecord &span : tracer.snapshot())
            if (span.name == "fs1.shard")
                span_sum += span.simTicks;
        EXPECT_EQ(span_sum, result.busyTime) << shards << " shards";
    }
}

// ---------------------------------------------------------------------
// L2/L3: the server-side caches.
// ---------------------------------------------------------------------

class ServerCacheTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::Program program;
    std::unique_ptr<crs::PredicateStore> store;
    std::unique_ptr<term::TermReader> reader;
    std::vector<term::ParsedTerm> goals;

    void
    SetUp() override
    {
        workload::KbGenerator kbgen(sym);
        workload::KbSpec spec;
        spec.predicates = 3;
        spec.clausesPerPredicate = 200;
        spec.arityMin = 2;
        spec.arityMax = 2;
        spec.varProb = 0.1;
        spec.seed = 41;
        program = kbgen.generate(spec);
        store = std::make_unique<crs::PredicateStore>(
            sym, scw::CodewordGenerator{});
        store->addProgram(program);
        store->finalize();
        reader = std::make_unique<term::TermReader>(sym);
        for (const char *text :
             {"p0(a1, X)", "p0(a2, X)", "p1(a3, X)", "p1(a4, X)",
              "p2(a5, X)", "p2(a6, X)"}) {
            goals.push_back(reader->parseTerm(text));
        }
    }

    crs::CrsConfig
    cachedConfig() const
    {
        crs::CrsConfig config;
        config.cache.enabled = true;
        return config;
    }

    std::unique_ptr<crs::ClauseRetrievalServer>
    makeServer(crs::CrsConfig config = {})
    {
        return std::make_unique<crs::ClauseRetrievalServer>(sym, *store,
                                                            config);
    }

    static crs::RetrievalRequest
    request(const term::ParsedTerm &goal,
            crs::SearchMode mode = crs::SearchMode::TwoStage)
    {
        crs::RetrievalRequest r;
        r.arena = &goal.arena;
        r.goal = goal.root;
        r.mode = mode;
        return r;
    }

    static std::uint64_t
    counter(const crs::ClauseRetrievalServer &server,
            const std::string &name)
    {
        for (const auto &c : server.metrics().counters())
            if (c.name == name)
                return c.value;
        return 0;
    }

    /** Payload equality: every field full unification depends on. */
    static void
    expectSamePayload(const crs::RetrievalResponse &a,
                      const crs::RetrievalResponse &b)
    {
        EXPECT_EQ(a.mode, b.mode);
        EXPECT_EQ(a.candidates, b.candidates);
        EXPECT_EQ(a.answers, b.answers);
        EXPECT_EQ(a.indexEntriesScanned, b.indexEntriesScanned);
        EXPECT_EQ(a.fs1Hits, b.fs1Hits);
        EXPECT_EQ(a.clausesExamined, b.clausesExamined);
        EXPECT_EQ(a.filterOps, b.filterOps);
        EXPECT_EQ(a.degraded, b.degraded);
        EXPECT_EQ(a.resultOverflow, b.resultOverflow);
        EXPECT_EQ(a.satisfiersRequeued, b.satisfiersRequeued);
    }

    /** Full bit-identity: payload plus every timing field. */
    static void
    expectIdentical(const crs::RetrievalResponse &a,
                    const crs::RetrievalResponse &b)
    {
        expectSamePayload(a, b);
        EXPECT_EQ(a.breakdown.queueWait, b.breakdown.queueWait);
        EXPECT_EQ(a.breakdown.cacheTime, b.breakdown.cacheTime);
        EXPECT_EQ(a.breakdown.indexTime, b.breakdown.indexTime);
        EXPECT_EQ(a.breakdown.filterTime, b.breakdown.filterTime);
        EXPECT_EQ(a.breakdown.hostUnifyTime, b.breakdown.hostUnifyTime);
        EXPECT_EQ(a.elapsed, b.elapsed);
    }
};

TEST_F(ServerCacheTest, ColdRequestIsBitIdenticalToCacheDisabledServer)
{
    auto plain = makeServer();
    auto cached = makeServer(cachedConfig());
    for (const term::ParsedTerm &goal : goals) {
        crs::RetrievalResponse a = plain->serve(request(goal));
        crs::RetrievalResponse b = cached->serve(request(goal));
        expectIdentical(a, b);
        EXPECT_EQ(b.breakdown.cacheTime, 0u);
    }
}

TEST_F(ServerCacheTest, HitAfterMissReplaysPayloadBitIdentically)
{
    auto server = makeServer(cachedConfig());
    crs::RetrievalResponse miss = server->serve(request(goals[0]));
    crs::RetrievalResponse hit = server->serve(request(goals[0]));
    expectSamePayload(miss, hit);
    EXPECT_EQ(hit.breakdown.cacheTime,
              server->config().cache.goalHitCost);
    EXPECT_EQ(hit.breakdown.indexTime, 0u);
    EXPECT_EQ(hit.breakdown.filterTime, 0u);
    EXPECT_EQ(hit.breakdown.hostUnifyTime, 0u);
    EXPECT_EQ(hit.elapsed, hit.breakdown.serviceTime());
    EXPECT_LT(hit.elapsed, miss.elapsed);
    EXPECT_EQ(counter(*server, "crs.cache.hits"), 1u);
    EXPECT_EQ(counter(*server, "crs.cache.misses"), 1u);
}

TEST_F(ServerCacheTest, RenamedGoalHitsTheSameEntry)
{
    auto server = makeServer(cachedConfig());
    term::ParsedTerm a = reader->parseTerm("p0(a1, Xvar)");
    term::ParsedTerm b = reader->parseTerm("p0(a1, Other)");
    crs::RetrievalResponse first = server->serve(request(a));
    crs::RetrievalResponse second = server->serve(request(b));
    expectSamePayload(first, second);
    EXPECT_EQ(counter(*server, "crs.cache.hits"), 1u);
}

TEST_F(ServerCacheTest, BypassOnWarmServerMatchesCacheDisabledServer)
{
    auto plain = makeServer();
    auto cached = makeServer(cachedConfig());
    cached->serve(request(goals[0]));     // warm every level
    cached->serve(request(goals[0]));
    crs::RetrievalRequest bypass = request(goals[0]);
    bypass.bypassCache = true;
    crs::RetrievalResponse a = plain->serve(request(goals[0]));
    crs::RetrievalResponse b = cached->serve(bypass);
    expectIdentical(a, b);
    // And the bypass neither consulted nor refreshed the caches: the
    // next normal request is still a hit.
    std::uint64_t hits = counter(*cached, "crs.cache.hits");
    cached->serve(request(goals[0]));
    EXPECT_EQ(counter(*cached, "crs.cache.hits"), hits + 1);
}

TEST_F(ServerCacheTest, SurvivorMemoServesRepeatedSignatureAcrossModes)
{
    // Same goal, different mode: a different L3 key but the same
    // query signature, so the FS1 survivor set replays from L2b.
    auto server = makeServer(cachedConfig());
    crs::RetrievalResponse two_stage =
        server->serve(request(goals[0], crs::SearchMode::TwoStage));
    crs::RetrievalResponse fs1_only =
        server->serve(request(goals[0], crs::SearchMode::Fs1Only));
    EXPECT_EQ(fs1_only.breakdown.cacheTime,
              server->config().cache.survivorHitCost);
    EXPECT_EQ(fs1_only.breakdown.indexTime, 0u);
    EXPECT_EQ(fs1_only.indexEntriesScanned,
              two_stage.indexEntriesScanned);
    EXPECT_EQ(fs1_only.fs1Hits, two_stage.fs1Hits);
    EXPECT_EQ(fs1_only.answers, two_stage.answers);

    // The replayed payload is bit-identical to a real scan's.
    auto plain = makeServer();
    crs::RetrievalResponse recomputed =
        plain->serve(request(goals[0], crs::SearchMode::Fs1Only));
    expectSamePayload(recomputed, fs1_only);
}

TEST_F(ServerCacheTest, TransactionCommitInvalidatesOnlyItsPredicate)
{
    auto server = makeServer(cachedConfig());
    server->serve(request(goals[0]));     // p0
    server->serve(request(goals[2]));     // p1
    ASSERT_EQ(server->goalCacheSize(), 2u);

    crs::LockManager locks;
    term::PredicateId p0{sym.intern("p0"), 2};
    {
        crs::Transaction tx(locks, 1, server.get());
        ASSERT_TRUE(tx.acquire(p0, crs::LockKind::Exclusive));
        tx.commit();
    }
    EXPECT_EQ(server->goalCacheSize(), 1u);
    EXPECT_EQ(counter(*server, "crs.cache.invalidations"), 1u);

    // p0 recomputes (and the survivor memo is dead too — the commit
    // bumped the index generation); p1 still hits.
    std::uint64_t misses = counter(*server, "crs.cache.misses");
    crs::RetrievalResponse again = server->serve(request(goals[0]));
    EXPECT_EQ(counter(*server, "crs.cache.misses"), misses + 1);
    EXPECT_EQ(again.breakdown.cacheTime, 0u);
    std::uint64_t hits = counter(*server, "crs.cache.hits");
    server->serve(request(goals[2]));
    EXPECT_EQ(counter(*server, "crs.cache.hits"), hits + 1);
}

TEST_F(ServerCacheTest, AbortedTransactionInvalidatesNothing)
{
    auto server = makeServer(cachedConfig());
    server->serve(request(goals[0]));
    ASSERT_EQ(server->goalCacheSize(), 1u);
    crs::LockManager locks;
    {
        crs::Transaction tx(locks, 1, server.get());
        ASSERT_TRUE(tx.acquire(term::PredicateId{sym.intern("p0"), 2},
                               crs::LockKind::Exclusive));
        tx.abort();
    }
    EXPECT_EQ(server->goalCacheSize(), 1u);
    EXPECT_EQ(counter(*server, "crs.cache.invalidations"), 0u);
}

TEST_F(ServerCacheTest, EvictionUnderCapacityPressure)
{
    crs::CrsConfig config = cachedConfig();
    config.cache.goalCapacity = 2;
    auto server = makeServer(config);
    server->serve(request(goals[0]));
    server->serve(request(goals[1]));
    server->serve(request(goals[2]));     // evicts goals[0]
    EXPECT_EQ(server->goalCacheSize(), 2u);
    EXPECT_EQ(counter(*server, "crs.cache.evictions"), 1u);
    std::uint64_t misses = counter(*server, "crs.cache.misses");
    server->serve(request(goals[0]));     // recomputes
    EXPECT_EQ(counter(*server, "crs.cache.misses"), misses + 1);
}

TEST_F(ServerCacheTest, BatchResponsesIdenticalAtAnyWorkerCount)
{
    std::vector<crs::RetrievalRequest> batch;
    for (int round = 0; round < 3; ++round)
        for (const term::ParsedTerm &goal : goals)
            batch.push_back(request(goal));

    crs::CrsConfig sequential = cachedConfig();
    auto baseline = makeServer(sequential);
    std::vector<crs::RetrievalResponse> expected =
        baseline->serveBatch(batch);

    for (std::uint32_t workers : {2u, 8u}) {
        crs::CrsConfig config = cachedConfig();
        config.workers = workers;
        auto server = makeServer(config);
        std::vector<crs::RetrievalResponse> got =
            server->serveBatch(batch);
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            expectSamePayload(expected[i], got[i]);
            // Service timing is pipeline-independent; only queueWait
            // reflects the overlap model.
            EXPECT_EQ(expected[i].breakdown.serviceTime(),
                      got[i].breakdown.serviceTime());
            EXPECT_EQ(expected[i].elapsed, got[i].elapsed);
        }
        // Repeated goals were served from cache in both runs.
        EXPECT_GT(counter(*server, "crs.cache.hits"), 0u);
    }
}

TEST_F(ServerCacheTest, ConcurrentServesStayCorrectUnderSharedCaches)
{
    // The L3 cache (and both L2 memos) are shared mutable state under
    // concurrent serve() callers; TSan runs this via ctest -L cache.
    auto plain = makeServer();
    std::vector<crs::RetrievalResponse> expected;
    expected.reserve(goals.size());
    for (const term::ParsedTerm &goal : goals)
        expected.push_back(plain->serve(request(goal)));

    auto server = makeServer(cachedConfig());
    constexpr int kThreads = 4;
    constexpr int kRounds = 8;
    std::vector<std::thread> threads;
    std::vector<int> failures(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int r = 0; r < kRounds; ++r) {
                std::size_t g = (t + r) % goals.size();
                crs::RetrievalResponse got =
                    server->serve(request(goals[g]));
                if (got.candidates != expected[g].candidates ||
                    got.answers != expected[g].answers) {
                    ++failures[t];
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(failures[t], 0) << "thread " << t;
}

TEST_F(ServerCacheTest, CacheConfigValidation)
{
    crs::CrsConfig config = cachedConfig();
    config.cache.goalCapacity = 0;
    EXPECT_THROW(makeServer(config), crs::ConfigError);
    config = cachedConfig();
    config.cache.survivorCapacity = 0;
    EXPECT_THROW(makeServer(config), crs::ConfigError);
    config = cachedConfig();
    config.cache.goalHitCost = 2 * kSecond;
    EXPECT_THROW(makeServer(config), crs::ConfigError);
    // Disabled caches skip the capacity checks entirely.
    config = crs::CrsConfig{};
    config.cache.goalCapacity = 0;
    EXPECT_NO_THROW(makeServer(config));
}

} // namespace
} // namespace clare
