/**
 * @file
 * Full-unification tests: bindings/trail, atoms through nested
 * structures and partial lists, occurs check, and solution rendering.
 */

#include <gtest/gtest.h>

#include "term/term_reader.hh"
#include "term/term_writer.hh"
#include "unify/bindings.hh"
#include "unify/unify.hh"

namespace clare::unify {
namespace {

class UnifyTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    term::TermWriter writer{sym};

    /**
     * Parse two terms into one arena (shared variable namespace: the
     * same name is the same variable) and unify them.
     */
    bool
    unifies(const std::string &a, const std::string &b,
            bool occurs_check = false)
    {
        term::ParsedTerm t = reader.parseTerm("pair(" + a + "," + b
                                              + ")");
        arena_ = std::move(t.arena);
        bindings_ = Bindings();
        UnifyOptions options;
        options.occursCheck = occurs_check;
        return unifyTerms(arena_, arena_.arg(t.root, 0),
                          arena_.arg(t.root, 1), bindings_, options);
    }

    term::TermArena arena_;
    Bindings bindings_;
};

TEST_F(UnifyTest, IdenticalAtoms)
{
    EXPECT_TRUE(unifies("a", "a"));
    EXPECT_FALSE(unifies("a", "b"));
}

TEST_F(UnifyTest, Numbers)
{
    EXPECT_TRUE(unifies("42", "42"));
    EXPECT_FALSE(unifies("42", "43"));
    EXPECT_TRUE(unifies("2.5", "2.5"));
    EXPECT_FALSE(unifies("2.5", "2.25"));
    // An integer and a float with the same value do not unify.
    EXPECT_FALSE(unifies("2", "2.0"));
}

TEST_F(UnifyTest, KindMismatches)
{
    EXPECT_FALSE(unifies("a", "f(a)"));
    EXPECT_FALSE(unifies("f(a)", "[a]"));
    EXPECT_FALSE(unifies("[]", "[a]"));
    EXPECT_FALSE(unifies("1", "a"));
}

TEST_F(UnifyTest, VariableBindsEitherSide)
{
    EXPECT_TRUE(unifies("X", "foo"));
    EXPECT_TRUE(unifies("foo", "X"));
    EXPECT_TRUE(unifies("X", "Y"));
    EXPECT_TRUE(unifies("X", "X"));
}

TEST_F(UnifyTest, StructuresRecursively)
{
    EXPECT_TRUE(unifies("f(X, b)", "f(a, Y)"));
    EXPECT_FALSE(unifies("f(a, b)", "f(a, c)"));
    EXPECT_FALSE(unifies("f(a)", "g(a)"));
    EXPECT_FALSE(unifies("f(a)", "f(a, b)"));
}

TEST_F(UnifyTest, SharedVariableConsistency)
{
    EXPECT_TRUE(unifies("f(X, X)", "f(a, a)"));
    EXPECT_FALSE(unifies("f(X, X)", "f(a, b)"));
}

TEST_F(UnifyTest, CrossBindingChain)
{
    // X = A, then A's second occurrence must equal b, forcing X = b;
    // the third position then fails on c.
    EXPECT_TRUE(unifies("f(X, a, b)", "f(A, a, A)"));
    EXPECT_FALSE(unifies("f(X, X, b)", "f(c, A, A)"));
    EXPECT_TRUE(unifies("f(X, X, b)", "f(b, A, A)"));
}

TEST_F(UnifyTest, DeepStructures)
{
    EXPECT_TRUE(unifies("f(g(h(X)), X)", "f(g(h(a)), a)"));
    EXPECT_FALSE(unifies("f(g(h(X)), X)", "f(g(h(a)), b)"));
}

TEST_F(UnifyTest, ProperLists)
{
    EXPECT_TRUE(unifies("[a, b, c]", "[a, b, c]"));
    EXPECT_FALSE(unifies("[a, b]", "[a, b, c]"));
    EXPECT_TRUE(unifies("[X, b]", "[a, Y]"));
}

TEST_F(UnifyTest, PartialListAgainstProper)
{
    EXPECT_TRUE(unifies("[a | T]", "[a, b, c]"));
    EXPECT_FALSE(unifies("[a, b, c | T]", "[a, b]"));
    EXPECT_TRUE(unifies("[a, b | T]", "[a, b]"));  // T = []
}

TEST_F(UnifyTest, PartialListsBothSides)
{
    EXPECT_TRUE(unifies("[a | T1]", "[a, b | T2]"));
    EXPECT_FALSE(unifies("[a | T1]", "[b | T2]"));
}

TEST_F(UnifyTest, BoundTailIsFollowed)
{
    // T is bound to [b] by the first pair element, making the second
    // comparison [a,b] vs [a,b].
    EXPECT_TRUE(unifies("g(T, [a | T])", "g([b], [a, b])"));
    EXPECT_FALSE(unifies("g(T, [a | T])", "g([b], [a, c])"));
}

TEST_F(UnifyTest, ListElementStructures)
{
    EXPECT_TRUE(unifies("[f(X)]", "[f(a)]"));
    EXPECT_FALSE(unifies("[f(a)]", "[g(a)]"));
}

TEST_F(UnifyTest, OccursCheckRejectsCyclicBinding)
{
    EXPECT_TRUE(unifies("X", "f(X)"));                  // off: allowed
    EXPECT_FALSE(unifies("X", "f(X)", true));           // on: rejected
    EXPECT_FALSE(unifies("X", "[a, X]", true));
    EXPECT_TRUE(unifies("X", "f(Y)", true));
}

TEST_F(UnifyTest, FailureRollsBackBindings)
{
    // After a failed unification no bindings remain.
    EXPECT_FALSE(unifies("f(X, a)", "f(b, c)"));
    EXPECT_EQ(bindings_.boundCount(), 0u);
}

TEST(Bindings, TrailUndo)
{
    term::TermArena arena;
    term::TermRef a = arena.makeAtom(3);
    arena.makeVar(0, 1);
    Bindings b;
    b.grow(2);
    TrailMark mark = b.mark();
    b.bind(0, a);
    EXPECT_TRUE(b.isBound(0));
    b.undo(mark);
    EXPECT_FALSE(b.isBound(0));
}

TEST(Bindings, DerefFollowsChains)
{
    term::TermArena arena;
    term::TermRef v0 = arena.makeVar(0, 1);
    term::TermRef v1 = arena.makeVar(1, 2);
    term::TermRef a = arena.makeAtom(9);
    Bindings b;
    b.grow(2);
    b.bind(0, v1);
    b.bind(1, a);
    EXPECT_EQ(b.deref(arena, v0), a);
}

TEST(ResolveTerm, AppliesBindings)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);

    term::ParsedTerm t = reader.parseTerm("pair(f(X, [a|Y]), g(X, Y))");
    term::TermArena arena = std::move(t.arena);
    Bindings b;
    // Bind X = 42, Y = [b].
    term::VarId x = t.varNames.at("X");
    term::VarId y = t.varNames.at("Y");
    b.grow(arena.varCeiling());
    b.bind(x, arena.makeInt(42));
    term::TermRef belem = arena.makeAtom(sym.intern("b"));
    b.bind(y, arena.makeList(std::span(&belem, 1)));

    term::TermArena out;
    term::TermRef resolved = resolveTerm(arena, arena.arg(t.root, 0), b,
                                         out);
    EXPECT_EQ(writer.write(out, resolved), "f(42,[a,b])");
}

TEST(ResolveTerm, UnboundVariablesSurvive)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    term::ParsedTerm t = reader.parseTerm("f(X)");
    Bindings b;
    term::TermArena out;
    term::TermRef r = resolveTerm(t.arena, t.root, b, out);
    EXPECT_EQ(writer.write(out, r), "f(X)");
}

} // namespace
} // namespace clare::unify
