/**
 * @file
 * FS1 tests: index scanning correctness against the software matcher,
 * rate accounting, and candidate-set quality.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fs1/fs1_engine.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"
#include "unify/oracle.hh"
#include "workload/kb_generator.hh"

namespace clare::fs1 {
namespace {

class Fs1Test : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    term::TermWriter writer{sym};
    scw::CodewordGenerator gen;

    std::vector<term::Clause> clauses;
    storage::ClauseFile file;
    scw::SecondaryFile index;

    void
    buildKb(const std::string &text)
    {
        clauses = reader.parseProgram(text);
        storage::ClauseFileBuilder builder(writer);
        std::vector<scw::Signature> sigs;
        for (const auto &c : clauses) {
            builder.add(c);
            sigs.push_back(gen.encode(c.arena(), c.head()));
        }
        file = builder.finish();
        index = scw::SecondaryFile::build(gen, sigs, file);
    }

    Fs1Result
    search(const std::string &query)
    {
        term::ParsedTerm q = reader.parseTerm(query);
        Fs1Engine engine(gen);
        return engine.search(index, gen.encode(q.arena, q.root));
    }
};

TEST_F(Fs1Test, ExactMatchSelected)
{
    buildKb("p(a).\np(b).\np(c).\n");
    Fs1Result r = search("p(b)");
    ASSERT_EQ(r.ordinals.size(), 1u);
    EXPECT_EQ(r.ordinals[0], 1u);
    EXPECT_EQ(r.clauseOffsets[0], file.record(1).offset);
    EXPECT_EQ(r.entriesScanned, 3u);
}

TEST_F(Fs1Test, VariableQuerySelectsAll)
{
    buildKb("p(a).\np(b).\np(c).\n");
    EXPECT_EQ(search("p(X)").ordinals.size(), 3u);
}

TEST_F(Fs1Test, ClauseVariablesAlwaysSelected)
{
    buildKb("p(a).\np(X).\n");
    Fs1Result r = search("p(zzz)");
    ASSERT_EQ(r.ordinals.size(), 1u);
    EXPECT_EQ(r.ordinals[0], 1u);   // only the p(X) clause
}

TEST_F(Fs1Test, SharedVariableQuerySelectsEverything)
{
    // The paper's motivating pathology: FS1 alone cannot use the
    // shared-variable constraint.
    buildKb("married_couple(john, mary).\n"
            "married_couple(pat, pat).\n"
            "married_couple(ann, bob).\n");
    Fs1Result r = search("married_couple(S, S)");
    EXPECT_EQ(r.ordinals.size(), 3u);
}

TEST_F(Fs1Test, BusyTimeFollowsScanRate)
{
    buildKb("p(a).\np(b).\np(c).\np(d).\n");
    Fs1Result r = search("p(a)");
    EXPECT_EQ(r.bytesScanned, index.image().size());
    double seconds = toSeconds(r.busyTime);
    EXPECT_NEAR(seconds,
                static_cast<double>(r.bytesScanned) / 4.5e6, 1e-9);
}

TEST_F(Fs1Test, ScanRateConfigurable)
{
    buildKb("p(a).\np(b).\n");
    term::ParsedTerm q = reader.parseTerm("p(a)");
    Fs1Config slow;
    slow.scanRate = 1.0e6;
    Fs1Engine engine(gen, slow);
    Fs1Result r = engine.search(index, gen.encode(q.arena, q.root));
    EXPECT_NEAR(toSeconds(r.busyTime),
                static_cast<double>(r.bytesScanned) / 1.0e6, 1e-9);
}

// Regression: the double→Tick conversion used to truncate, dropping
// up to one tick per call (and, once scans were sharded, up to one
// tick per sub-scan had each shard converted separately).
TEST_F(Fs1Test, BusyTimeRoundsToNearestTick)
{
    buildKb("p(a).\np(b).\np(c).\np(d).\n");
    term::ParsedTerm q = reader.parseTerm("p(a)");
    Fs1Config cfg;
    cfg.scanRate = 7.0e6;   // bytes/rate lands between ticks
    Fs1Engine engine(gen, cfg);
    Fs1Result r = engine.search(index, gen.encode(q.arena, q.root));

    double exact = static_cast<double>(r.bytesScanned) / cfg.scanRate *
        static_cast<double>(kSecond);
    double fraction = exact - std::floor(exact);
    ASSERT_GE(fraction, 0.5)
        << "KB layout changed; pick a clause count whose byte total "
           "has a >= 0.5 tick fraction at this rate";
    EXPECT_EQ(r.busyTime, static_cast<Tick>(std::llround(exact)));
    EXPECT_GT(r.busyTime, static_cast<Tick>(exact));    // trunc value
}

TEST_F(Fs1Test, CandidateSetIsSupersetOfAnswers)
{
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 200;
    spec.varProb = 0.15;
    spec.structProb = 0.25;
    spec.seed = 11;
    term::Program program = kbgen.generate(spec);

    storage::ClauseFileBuilder builder(writer);
    std::vector<scw::Signature> sigs;
    std::vector<term::Clause> all;
    const auto &pred = program.predicates()[0];
    for (std::size_t i : program.clausesOf(pred)) {
        const term::Clause &c = program.clause(i);
        builder.add(c);
        sigs.push_back(gen.encode(c.arena(), c.head()));
        term::TermArena arena;
        term::TermRef head = arena.import(c.arena(), c.head(), 0);
        all.emplace_back(std::move(arena), head,
                         std::vector<term::TermRef>{});
    }
    storage::ClauseFile f = builder.finish();
    scw::SecondaryFile idx = scw::SecondaryFile::build(gen, sigs, f);

    // A ground query copied from clause 17's head.
    term::TermArena q_arena;
    term::TermRef goal = q_arena.import(all[17].arena(), all[17].head(),
                                        0);
    Fs1Engine engine(gen);
    Fs1Result r = engine.search(idx, gen.encode(q_arena, goal));

    std::set<std::uint32_t> selected(r.ordinals.begin(),
                                     r.ordinals.end());
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (unify::wouldUnify(q_arena, goal, all[i])) {
            EXPECT_TRUE(selected.count(static_cast<std::uint32_t>(i)))
                << "false dismissal of clause " << i;
        }
    }
    EXPECT_TRUE(selected.count(17));
}

} // namespace
} // namespace clare::fs1
