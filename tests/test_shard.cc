/**
 * @file
 * The data-sharding layer (ctest labels: shard, net, faults).
 *
 * Catalog: the JSON document round-trips exactly (save -> load ->
 * operator==, identical replica lookups), and validate() rejects a
 * catalog that does not fit the backend list.  Slices: a store slice
 * persisted by saveStoreSlice is a complete self-contained store —
 * the full symbol table travels with every slice, so symbol ids in
 * queries and answers are identical across the full store and every
 * slice, and a slice-backed serve() is bit-identical to the
 * full-store serve() for the slice's predicates.
 *
 * Cluster: a 3-shard x 2-replica cluster (six backends, each loading
 * only its slice) behind a catalog-routed Router answers a
 * mixed-predicate wire batch bit-identically — answers AND modeled
 * StageBreakdown ticks — to a local serveBatch() of the same requests
 * on the unsharded store; a poisoned slice replica stays invisible
 * (the router holds the degraded reply and hunts its twin); and a
 * catalog reload rebalances a shard onto a new backend without
 * breaking the exactness contract.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "crs/server.hh"
#include "crs/store_io.hh"
#include "net/catalog.hh"
#include "net/client.hh"
#include "net/router.hh"
#include "net/server.hh"
#include "net/wire.hh"
#include "support/fault_injector.hh"
#include "support/random.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare {
namespace {

/** The predicate a generated query goal targets. */
term::PredicateId
goalPredicate(const workload::GeneratedQuery &q)
{
    if (q.arena.kind(q.goal) == term::TermKind::Atom)
        return {q.arena.atomSymbol(q.goal), 0};
    return {q.arena.functor(q.goal), q.arena.arity(q.goal)};
}

// ---------------------------------------------------------------------
// Shard catalog.
// ---------------------------------------------------------------------

net::ShardCatalog
makeCatalog()
{
    net::ShardCatalog catalog;
    catalog.assign({10, 2}, 0);
    catalog.assign({11, 3}, 1);
    catalog.assign({12, 0}, 2);
    catalog.assign({13, 2}, 0);
    catalog.setReplicas(0, {0, 1});
    catalog.setReplicas(1, {2, 3});
    catalog.setReplicas(2, {4, 5});
    return catalog;
}

TEST(ShardCatalogTest, JsonRoundTrip)
{
    net::ShardCatalog catalog = makeCatalog();
    std::string path =
        ::testing::TempDir() + "clare_catalog_roundtrip.json";
    catalog.save(path);
    net::ShardCatalog loaded = net::ShardCatalog::load(path);
    EXPECT_TRUE(catalog == loaded);
    EXPECT_EQ(loaded.shardCount(), 3u);
    EXPECT_EQ(loaded.predicateCount(), 4u);
    for (const auto &[pred, shard] : catalog.assignments()) {
        ASSERT_NE(loaded.replicasOf(pred), nullptr);
        EXPECT_EQ(*loaded.replicasOf(pred), *catalog.replicasOf(pred));
        EXPECT_EQ(loaded.shardOf(pred), shard);
    }
    EXPECT_EQ(loaded.replicasOf({99, 9}), nullptr);
    std::filesystem::remove(path);
}

TEST(ShardCatalogTest, ValidateRejectsMisfits)
{
    net::ShardCatalog catalog = makeCatalog();
    catalog.validate(6); // fits: backend indexes 0..5
    // Backend index 5 is out of range for a 5-backend cluster.
    EXPECT_THROW(catalog.validate(5), Error);
    // A shard with no replicas cannot serve its predicates.
    net::ShardCatalog empty;
    empty.assign({1, 1}, 0);
    empty.setReplicas(0, {});
    EXPECT_THROW(empty.validate(4), Error);
}

TEST(ShardCatalogTest, DamagedJsonIsTyped)
{
    EXPECT_THROW(net::ShardCatalog::fromJson(
                     *json::Value::parse("{\"clare-catalog\": 2}"),
                     "test"),
                 CorruptionError);
    // Duplicate predicate assignment: one owner per predicate.
    std::optional<json::Value> dup = json::Value::parse(
        "{\"clare-catalog\": 1, \"shards\": 1, \"replicas\": [[0]], "
        "\"predicates\": [{\"functor\": 1, \"arity\": 2, \"shard\": 0},"
        " {\"functor\": 1, \"arity\": 2, \"shard\": 0}]}");
    ASSERT_TRUE(dup.has_value());
    EXPECT_THROW(net::ShardCatalog::fromJson(*dup, "test"),
                 CorruptionError);
}

// ---------------------------------------------------------------------
// Store slices.
// ---------------------------------------------------------------------

class StoreSliceTest : public ::testing::Test
{
  protected:
    std::string dir_ = ::testing::TempDir() + "clare_slice_store";
    term::SymbolTable sym_;
    term::Program program_;
    std::vector<workload::GeneratedQuery> queries_;
    std::unique_ptr<crs::PredicateStore> store_;

    void
    SetUp() override
    {
        std::filesystem::remove_all(dir_);
        workload::KbGenerator kbgen(sym_);
        workload::KbSpec spec;
        spec.predicates = 6;
        spec.clausesPerPredicate = 32;
        spec.arityMin = 2;
        spec.arityMax = 3;
        spec.atomVocabulary = 40;
        spec.seed = 23;
        program_ = kbgen.generate(spec);

        workload::QuerySpec qspec;
        qspec.seed = 31;
        qspec.boundArgProb = 0.7;
        workload::QueryGenerator qgen(sym_, qspec);
        for (std::size_t i = 0; i < 18; ++i)
            queries_.push_back(qgen.generate(
                program_,
                program_.predicates()[i % program_.predicates().size()]));

        store_ = std::make_unique<crs::PredicateStore>(
            sym_, scw::CodewordGenerator{});
        store_->addProgram(program_);
        store_->finalize();
        crs::saveStore(dir_ + "/full", *store_, sym_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }
};

TEST_F(StoreSliceTest, SliceIsSelfContainedAndSymbolFaithful)
{
    // Slice = first half of the predicates.
    const std::vector<term::PredicateId> &preds = program_.predicates();
    std::vector<term::PredicateId> half(preds.begin(),
                                        preds.begin() + 3);
    crs::saveStoreSlice(dir_ + "/slice", *store_, sym_, half);

    term::SymbolTable sliceSym;
    crs::PredicateStore slice = crs::loadStore(dir_ + "/slice", sliceSym);

    // The full symbol table travels with the slice: every id resolves
    // to the same text, so goal/answer symbol ids are portable across
    // the full store and every slice.
    ASSERT_EQ(sliceSym.atomCount(), sym_.atomCount());
    for (term::SymbolId id = 0;
         id < static_cast<term::SymbolId>(sym_.atomCount()); ++id)
        EXPECT_EQ(sliceSym.name(id), sym_.name(id));

    // Exactly the sliced predicates, nothing else.
    EXPECT_EQ(slice.predicates().size(), half.size());
    for (const term::PredicateId &pred : half)
        EXPECT_TRUE(slice.has(pred));
    for (std::size_t i = 3; i < preds.size(); ++i)
        EXPECT_FALSE(slice.has(preds[i]));
}

TEST_F(StoreSliceTest, SliceServeIsBitIdenticalToFullStore)
{
    const std::vector<term::PredicateId> &preds = program_.predicates();
    std::vector<term::PredicateId> half(preds.begin(),
                                        preds.begin() + 3);
    crs::saveStoreSlice(dir_ + "/slice", *store_, sym_, half);

    term::SymbolTable fullSym, sliceSym;
    crs::PredicateStore full = crs::loadStore(dir_ + "/full", fullSym);
    crs::PredicateStore slice = crs::loadStore(dir_ + "/slice", sliceSym);
    crs::ClauseRetrievalServer fullServer(fullSym, full);
    crs::ClauseRetrievalServer sliceServer(sliceSym, slice);

    for (const workload::GeneratedQuery &q : queries_) {
        if (!slice.has(goalPredicate(q)))
            continue;
        crs::RetrievalRequest request;
        request.arena = &q.arena;
        request.goal = q.goal;
        crs::RetrievalResponse a = fullServer.serve(request);
        crs::RetrievalResponse b = sliceServer.serve(request);
        EXPECT_TRUE(net::responsesIdentical(a, b));
    }
}

TEST_F(StoreSliceTest, SliceOfAMissingPredicateIsTyped)
{
    EXPECT_THROW(crs::saveStoreSlice(dir_ + "/bad", *store_, sym_,
                                     {term::PredicateId{9999, 7}}),
                 Error);
}

// ---------------------------------------------------------------------
// Sharded cluster: slices + catalog + router scatter/gather.
// ---------------------------------------------------------------------

/** One slice-backed backend. */
struct SliceBackend
{
    term::SymbolTable symbols;
    std::unique_ptr<crs::PredicateStore> store;
    std::unique_ptr<crs::ClauseRetrievalServer> server;
    std::unique_ptr<net::NetServer> net;
};

class ShardClusterTest : public ::testing::Test
{
  protected:
    static constexpr std::uint32_t kShards = 3;
    static constexpr std::uint32_t kReplicas = 2;

    std::string dir_ = ::testing::TempDir() + "clare_shard_cluster";
    term::SymbolTable sym_;
    term::Program program_;
    std::vector<workload::GeneratedQuery> queries_;
    std::unique_ptr<crs::PredicateStore> store_;
    /** The unsharded reference: the same authoritative front door. */
    std::unique_ptr<crs::ClauseRetrievalServer> local_;
    net::ShardCatalog catalog_;
    std::vector<std::unique_ptr<SliceBackend>> backends_;

    void
    SetUp() override
    {
        std::filesystem::remove_all(dir_);
        workload::KbGenerator kbgen(sym_);
        workload::KbSpec spec;
        spec.predicates = 6;
        spec.clausesPerPredicate = 32;
        spec.arityMin = 2;
        spec.arityMax = 3;
        spec.atomVocabulary = 40;
        spec.seed = 41;
        program_ = kbgen.generate(spec);

        // Mixed-predicate query stream (queries BEFORE saveStore so
        // the persisted schema covers them).
        workload::QuerySpec qspec;
        qspec.seed = 43;
        qspec.boundArgProb = 0.7;
        workload::QueryGenerator qgen(sym_, qspec);
        Rng rng(47);
        for (int i = 0; i < 24; ++i)
            queries_.push_back(qgen.generate(
                program_, program_.predicates()[
                              rng.below(program_.predicates().size())]));

        store_ = std::make_unique<crs::PredicateStore>(
            sym_, scw::CodewordGenerator{});
        store_->addProgram(program_);
        store_->finalize();
        crs::saveStore(dir_ + "/full", *store_, sym_);
        local_ = std::make_unique<crs::ClauseRetrievalServer>(
            sym_, *store_);

        // Round-robin the predicates over kShards slices and persist
        // each slice; replicas for shard s are backends s*R .. s*R+R-1.
        const std::vector<term::PredicateId> &preds =
            program_.predicates();
        std::vector<std::vector<term::PredicateId>> slicePreds(kShards);
        for (std::size_t i = 0; i < preds.size(); ++i) {
            std::uint32_t shard = static_cast<std::uint32_t>(i % kShards);
            catalog_.assign(preds[i], shard);
            slicePreds[shard].push_back(preds[i]);
        }
        for (std::uint32_t s = 0; s < kShards; ++s) {
            std::vector<std::uint32_t> replicas;
            for (std::uint32_t r = 0; r < kReplicas; ++r)
                replicas.push_back(s * kReplicas + r);
            catalog_.setReplicas(s, replicas);
            crs::saveStoreSlice(sliceDir(s), *store_, sym_,
                                slicePreds[s]);
        }
    }

    void
    TearDown() override
    {
        for (auto &b : backends_)
            if (b->net)
                b->net->stop();
        backends_.clear();
        std::filesystem::remove_all(dir_);
    }

    std::string
    sliceDir(std::uint32_t shard) const
    {
        return dir_ + "/slice-" + std::to_string(shard);
    }

    /** Spawn a backend serving @p storeDir (a slice or the full store). */
    SliceBackend &
    spawnBackend(const std::string &storeDir,
                 crs::CrsConfig crs_config = {})
    {
        auto b = std::make_unique<SliceBackend>();
        b->store = std::make_unique<crs::PredicateStore>(
            crs::loadStore(storeDir, b->symbols));
        b->server = std::make_unique<crs::ClauseRetrievalServer>(
            b->symbols, *b->store, crs_config);
        b->net = std::make_unique<net::NetServer>(
            b->symbols, *b->store, *b->server, net::NetServerConfig{});
        b->net->start();
        backends_.push_back(std::move(b));
        return *backends_.back();
    }

    /** Spawn the full kShards x kReplicas slice cluster in catalog
     *  backend-index order; @p poisonedBackend (if set) gets the
     *  seeded disk fault injector. */
    void
    spawnCluster(const support::FaultInjector *faults = nullptr,
                 std::uint32_t poisonedBackend = 0)
    {
        for (std::uint32_t s = 0; s < kShards; ++s) {
            for (std::uint32_t r = 0; r < kReplicas; ++r) {
                crs::CrsConfig config;
                if (faults &&
                    s * kReplicas + r == poisonedBackend)
                    config.faults = faults;
                spawnBackend(sliceDir(s), config);
            }
        }
    }

    net::RouterConfig
    routerConfig() const
    {
        net::RouterConfig config;
        for (const auto &b : backends_)
            config.backendPorts.push_back(b->net->port());
        config.backendTimeoutMillis = 1000;
        return config;
    }

    std::vector<crs::RetrievalRequest>
    batchRequests(std::optional<crs::SearchMode> mode = {}) const
    {
        std::vector<crs::RetrievalRequest> batch;
        for (const workload::GeneratedQuery &q : queries_) {
            crs::RetrievalRequest request;
            request.arena = &q.arena;
            request.goal = q.goal;
            request.mode = mode;
            batch.push_back(request);
        }
        return batch;
    }
};

TEST_F(ShardClusterTest, MixedBatchScatterGatherIsBitIdentical)
{
    spawnCluster();
    net::Router router(routerConfig());
    router.setCatalog(catalog_);
    router.start();

    net::NetClient client(router.port(), "test-client");
    std::vector<crs::RetrievalRequest> batch = batchRequests();
    std::vector<crs::RetrievalResponse> wire = client.serveBatch(batch);
    std::vector<crs::RetrievalResponse> ref = local_->serveBatch(batch);
    ASSERT_EQ(wire.size(), ref.size());
    for (std::size_t i = 0; i < wire.size(); ++i) {
        EXPECT_TRUE(net::responsesIdentical(wire[i], ref[i]))
            << "batch item " << i;
        EXPECT_EQ(wire[i].elapsed, ref[i].elapsed);
        EXPECT_EQ(wire[i].breakdown.queueWait, ref[i].breakdown.queueWait);
    }

    // The batch really scattered: one sub-batch per shard touched.
    EXPECT_EQ(router.metrics().counter("router.batches").value(), 1u);
    EXPECT_EQ(router.metrics().counter("router.batch_items").value(),
              batch.size());
    EXPECT_EQ(router.metrics().counter("router.subbatches").value(),
              static_cast<std::uint64_t>(kShards));
    router.stop();
}

TEST_F(ShardClusterTest, SingleRequestsRouteByCatalog)
{
    spawnCluster();
    net::Router router(routerConfig());
    router.setCatalog(catalog_);
    router.start();

    // replicasOf is exactly the catalog's list, not the hash policy.
    for (const term::PredicateId &pred : store_->predicates()) {
        ASSERT_TRUE(catalog_.shardOf(pred).has_value());
        EXPECT_EQ(router.replicasOf(pred),
                  *catalog_.replicasOf(pred));
    }

    net::NetClient client(router.port(), "test-client");
    for (const workload::GeneratedQuery &q : queries_) {
        crs::RetrievalRequest request;
        request.arena = &q.arena;
        request.goal = q.goal;
        crs::RetrievalResponse wire = client.serve(request);
        crs::RetrievalResponse ref = local_->serve(request);
        EXPECT_TRUE(net::responsesIdentical(wire, ref));
    }
    router.stop();
}

TEST_F(ShardClusterTest, PoisonedSliceReplicaIsInvisible)
{
    // Backend 0 (shard 0's first replica) reads flip bits on half its
    // index pages; its twin replica is clean.  The router must hold
    // the degraded reply, hunt the twin, and answer bit-identically
    // to the unsharded reference — with the counter split intact:
    // degraded hunts are not failovers.
    support::FaultConfig fault_config;
    fault_config.seed = 42;
    fault_config.bitFlipRate = 0.5;
    support::FaultInjector injector(fault_config);
    spawnCluster(&injector, 0);

    net::Router router(routerConfig());
    router.setCatalog(catalog_);
    router.start();

    net::NetClient client(router.port(), "test-client");
    for (const workload::GeneratedQuery &q : queries_) {
        crs::RetrievalRequest request;
        request.arena = &q.arena;
        request.goal = q.goal;
        request.mode = crs::SearchMode::Fs1Only;
        crs::RetrievalResponse wire = client.serve(request);
        crs::RetrievalResponse ref = local_->serve(request);
        EXPECT_TRUE(net::responsesIdentical(wire, ref));
        EXPECT_FALSE(wire.degraded);
    }
    EXPECT_GT(router.metrics().counter("router.degraded_retries").value(),
              0u);
    EXPECT_EQ(router.metrics().counter("router.failovers").value(), 0u);
    router.stop();
}

TEST_F(ShardClusterTest, CatalogReloadRebalancesAShard)
{
    spawnCluster();
    // A seventh backend holding a copy of shard 0's slice — the
    // rebalance target.
    std::filesystem::copy(sliceDir(0), dir_ + "/slice-0-copy",
                          std::filesystem::copy_options::recursive);
    spawnBackend(dir_ + "/slice-0-copy");

    net::RouterConfig config = routerConfig();
    std::string catalogPath = dir_ + "/catalog.json";
    catalog_.save(catalogPath);
    config.catalogPath = catalogPath;
    net::Router router(config);
    router.start();

    term::PredicateId shard0Pred = program_.predicates()[0];
    ASSERT_EQ(catalog_.shardOf(shard0Pred), 0u);
    EXPECT_EQ(router.replicasOf(shard0Pred),
              (std::vector<std::uint32_t>{0, 1}));

    // Rebalance: shard 0 moves to the new backend (index 6), catalog
    // is rewritten on disk and reloaded through the admin surface.
    catalog_.setReplicas(0, {6});
    catalog_.save(catalogPath);
    router.reloadCatalog();
    EXPECT_EQ(router.replicasOf(shard0Pred),
              (std::vector<std::uint32_t>{6}));
    EXPECT_EQ(router.metrics().counter("router.catalog_reloads").value(),
              1u);

    // Traffic still answers bit-identically after the move.
    net::NetClient client(router.port(), "test-client");
    for (const workload::GeneratedQuery &q : queries_) {
        crs::RetrievalRequest request;
        request.arena = &q.arena;
        request.goal = q.goal;
        crs::RetrievalResponse wire = client.serve(request);
        crs::RetrievalResponse ref = local_->serve(request);
        EXPECT_TRUE(net::responsesIdentical(wire, ref));
    }
    router.stop();
}

TEST_F(ShardClusterTest, UncataloguedPredicateAnswersUnavailable)
{
    spawnCluster();
    net::ShardCatalog partial;
    // Only shard 0's predicates are routable.
    for (const auto &[pred, shard] : catalog_.assignments())
        if (shard == 0)
            partial.assign(pred, 0);
    partial.setReplicas(0, {0, 1});
    net::Router router(routerConfig());
    router.setCatalog(partial);
    router.start();

    net::NetClient client(router.port(), "test-client");
    bool sawUnavailable = false;
    for (const workload::GeneratedQuery &q : queries_) {
        crs::RetrievalRequest request;
        request.arena = &q.arena;
        request.goal = q.goal;
        if (partial.shardOf(goalPredicate(q)).has_value()) {
            crs::RetrievalResponse wire = client.serve(request);
            crs::RetrievalResponse ref = local_->serve(request);
            EXPECT_TRUE(net::responsesIdentical(wire, ref));
        } else {
            try {
                client.serve(request);
                FAIL() << "expected Unavailable";
            } catch (const net::RemoteError &e) {
                EXPECT_EQ(e.code(), net::ErrorCode::Unavailable);
                sawUnavailable = true;
            }
        }
    }
    EXPECT_TRUE(sawUnavailable);
    router.stop();
}

} // namespace
} // namespace clare
