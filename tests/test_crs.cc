/**
 * @file
 * CRS tests: predicate store layout, the four retrieval modes (answer
 * equality, candidate-set quality ordering), mode selection, and the
 * lock manager / transactions.
 */

#include <gtest/gtest.h>

#include "crs/server.hh"
#include "crs/store.hh"
#include "crs/transaction.hh"
#include "support/logging.hh"
#include "term/term_reader.hh"
#include "workload/kb_generator.hh"

namespace clare::crs {
namespace {

class CrsTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    std::unique_ptr<PredicateStore> store;
    std::unique_ptr<ClauseRetrievalServer> server;

    void
    buildStore(const std::string &text)
    {
        term::Program program;
        for (auto &c : reader.parseProgram(text))
            program.add(std::move(c));
        store = std::make_unique<PredicateStore>(
            sym, scw::CodewordGenerator{});
        store->addProgram(program);
        store->finalize();
        server = std::make_unique<ClauseRetrievalServer>(sym, *store);
    }

    RetrievalResponse
    retrieve(const std::string &goal_text, SearchMode mode)
    {
        term::ParsedTerm goal = reader.parseTerm(goal_text);
        RetrievalRequest request;
        request.arena = &goal.arena;
        request.goal = goal.root;
        request.mode = mode;
        return server->serve(request);
    }
};

TEST_F(CrsTest, StoreLayout)
{
    buildStore("p(a).\np(b).\nq(c, d).\n");
    term::PredicateId p{sym.lookup("p"), 1};
    term::PredicateId q{sym.lookup("q"), 2};
    EXPECT_TRUE(store->has(p));
    EXPECT_TRUE(store->has(q));
    EXPECT_FALSE(store->has(term::PredicateId{sym.lookup("p"), 2}));
    EXPECT_EQ(store->predicate(p).clauses.clauseCount(), 2u);
    EXPECT_EQ(store->dataDisk().image().size(), store->dataBytes());
    EXPECT_EQ(store->indexDisk().image().size(), store->indexBytes());
    // q's clause file sits after p's in the disk image.
    EXPECT_GT(store->predicate(q).clauseFileOffset, 0u);
}

TEST_F(CrsTest, RuleFractionTracked)
{
    buildStore("r(a).\nr(X) :- r(a).\nr(b).\nr(Y) :- r(b).\n");
    term::PredicateId r{sym.lookup("r"), 1};
    EXPECT_DOUBLE_EQ(store->predicate(r).ruleFraction, 0.5);
}

TEST_F(CrsTest, UnknownPredicateIsFatal)
{
    buildStore("p(a).\n");
    EXPECT_THROW(retrieve("nosuch(a)", SearchMode::SoftwareOnly),
                 FatalError);
}

TEST_F(CrsTest, AllModesAgreeOnAnswers)
{
    buildStore(
        "edge(a, b).\n"
        "edge(b, c).\n"
        "edge(a, a).\n"
        "edge(X, X).\n"
        "edge(c, d).\n");
    for (SearchMode mode : {SearchMode::SoftwareOnly,
                            SearchMode::Fs1Only, SearchMode::Fs2Only,
                            SearchMode::TwoStage}) {
        RetrievalResponse r = retrieve("edge(a, Y)", mode);
        EXPECT_EQ(r.answers, (std::vector<std::uint32_t>{0, 2, 3}))
            << searchModeName(mode);
        // Candidates are always a superset of answers, in order.
        EXPECT_GE(r.candidates.size(), r.answers.size());
    }
}

TEST_F(CrsTest, SharedVariableAnswersAcrossModes)
{
    buildStore(
        "married_couple(john, mary).\n"
        "married_couple(pat, pat).\n"
        "married_couple(X, X).\n"
        "married_couple(ann, bob).\n");
    for (SearchMode mode : {SearchMode::SoftwareOnly,
                            SearchMode::Fs1Only, SearchMode::Fs2Only,
                            SearchMode::TwoStage}) {
        RetrievalResponse r = retrieve("married_couple(S, S)", mode);
        EXPECT_EQ(r.answers, (std::vector<std::uint32_t>{1, 2}))
            << searchModeName(mode);
    }
}

TEST_F(CrsTest, Fs2ReducesFalseDropsVersusFs1)
{
    buildStore(
        "married_couple(john, mary).\n"
        "married_couple(pat, pat).\n"
        "married_couple(ann, bob).\n"
        "married_couple(eve, adam).\n");
    RetrievalResponse fs1 = retrieve("married_couple(S, S)",
                                   SearchMode::Fs1Only);
    RetrievalResponse two = retrieve("married_couple(S, S)",
                                   SearchMode::TwoStage);
    // FS1 passes the whole predicate; FS2 keeps only the true answer.
    EXPECT_EQ(fs1.candidates.size(), 4u);
    EXPECT_EQ(two.candidates.size(), 1u);
    EXPECT_LT(two.falseDrops(), fs1.falseDrops());
}

TEST_F(CrsTest, TwoStageCandidatesSubsetOfFs1)
{
    buildStore(
        "p(a, b).\np(a, c).\np(b, b).\np(X, Y).\np(a, a).\n");
    RetrievalResponse fs1 = retrieve("p(a, Z)", SearchMode::Fs1Only);
    RetrievalResponse two = retrieve("p(a, Z)", SearchMode::TwoStage);
    for (std::uint32_t c : two.candidates) {
        EXPECT_NE(std::find(fs1.candidates.begin(), fs1.candidates.end(),
                            c), fs1.candidates.end());
    }
}

// Regression: falseDrops() computed candidates - answers on unsigned
// sizes, so a false *negative* (an answer the filter missed, i.e. a
// filter-correctness bug) underflowed to ~2^64 instead of reporting
// anything usable.  Release builds clamp at zero and expose the
// violation through falseNegatives(); debug builds assert.
TEST_F(CrsTest, FalseDropsClampInsteadOfUnderflowing)
{
    RetrievalResponse r;
    r.candidates = {3};
    r.answers = {3, 7};     // one answer the filter never produced
#ifdef NDEBUG
    EXPECT_EQ(r.falseDrops(), 0u);
    EXPECT_EQ(r.falseDropRate(), 0.0);
#else
    EXPECT_DEATH(r.falseDrops(), "false negative");
#endif
    EXPECT_EQ(r.falseNegatives(), 1u);

    RetrievalResponse ok;
    ok.candidates = {1, 2, 3};
    ok.answers = {2};
    EXPECT_EQ(ok.falseDrops(), 2u);
    EXPECT_EQ(ok.falseNegatives(), 0u);
}

TEST_F(CrsTest, TimingFieldsPopulated)
{
    buildStore("p(a).\np(b).\np(c).\n");
    RetrievalResponse sw = retrieve("p(a)", SearchMode::SoftwareOnly);
    EXPECT_GT(sw.breakdown.filterTime, 0u);
    EXPECT_GT(sw.elapsed, 0u);
    RetrievalResponse fs1 = retrieve("p(a)", SearchMode::Fs1Only);
    EXPECT_GT(fs1.breakdown.indexTime, 0u);
    RetrievalResponse two = retrieve("p(a)", SearchMode::TwoStage);
    EXPECT_GT(two.breakdown.indexTime, 0u);
    EXPECT_GT(two.elapsed, two.breakdown.indexTime);
    // The breakdown is the authoritative accounting: its service time
    // (queue wait excluded) is exactly the reported latency.
    EXPECT_EQ(two.breakdown.serviceTime(), two.elapsed);
    EXPECT_EQ(two.breakdown.queueWait, 0u);
    EXPECT_EQ(two.breakdown.total(), two.elapsed);
}

TEST_F(CrsTest, ProfileQuery)
{
    buildStore("p(a).\n");      // store content irrelevant here
    term::ParsedTerm t = reader.parseTerm("q(a, X, f(Y), X, g(b))");
    QueryProfile prof = ClauseRetrievalServer::profileQuery(t.arena,
                                                            t.root);
    EXPECT_EQ(prof.arity, 5u);
    EXPECT_EQ(prof.groundArgs, 2u);         // a, g(b)
    EXPECT_EQ(prof.variableArgs, 2u);       // X, X
    EXPECT_TRUE(prof.hasSharedVars);        // X twice
    EXPECT_TRUE(prof.hasVarBearingStructures);  // f(Y)
}

TEST_F(CrsTest, ModeSelectionHeuristics)
{
    buildStore(
        "fact_pred(a, b).\nfact_pred(c, d).\n"
        "rule_pred(a) :- fact_pred(a, b).\n"
        "rule_pred(b) :- fact_pred(c, d).\n"
        "rule_pred(c).\n");
    auto mode_for = [&](const std::string &text) {
        term::ParsedTerm t = reader.parseTerm(text);
        return server->selectMode(t.arena, t.root);
    };
    // Shared variables need FS2; with ground args the index helps too.
    EXPECT_EQ(mode_for("fact_pred(S, S)"), SearchMode::Fs2Only);
    EXPECT_EQ(mode_for("fact_pred(a, f(X, X))"), SearchMode::TwoStage);
    // All-variable queries cannot be filtered.
    EXPECT_EQ(mode_for("fact_pred(X, Y)"), SearchMode::SoftwareOnly);
    // Ground query on a fact-intensive predicate: the index suffices.
    EXPECT_EQ(mode_for("fact_pred(a, b)"), SearchMode::Fs1Only);
    // Ground query on a rule-intensive predicate: two stages.
    EXPECT_EQ(mode_for("rule_pred(a)"), SearchMode::TwoStage);
}

TEST_F(CrsTest, ServeDefaultsToSelectedMode)
{
    buildStore("p(a, b).\np(c, d).\n");
    term::ParsedTerm t = reader.parseTerm("p(a, X)");
    RetrievalRequest request;
    request.arena = &t.arena;
    request.goal = t.root;
    RetrievalResponse r = server->serve(request);
    EXPECT_EQ(r.mode, server->selectMode(t.arena, t.root));
}

// ---------------------------------------------------------------------
// Locks and transactions.
// ---------------------------------------------------------------------

term::PredicateId
pred(std::uint32_t functor, std::uint32_t arity = 1)
{
    return term::PredicateId{functor, arity};
}

TEST(LockManagerTest, SharedLocksCoexist)
{
    LockManager lm;
    EXPECT_TRUE(lm.acquire(1, pred(10), LockKind::Shared));
    EXPECT_TRUE(lm.acquire(2, pred(10), LockKind::Shared));
    EXPECT_EQ(lm.holders(pred(10)), 2u);
}

TEST(LockManagerTest, ExclusiveExcludes)
{
    LockManager lm;
    EXPECT_TRUE(lm.acquire(1, pred(10), LockKind::Exclusive));
    EXPECT_FALSE(lm.acquire(2, pred(10), LockKind::Shared));
    EXPECT_FALSE(lm.acquire(2, pred(10), LockKind::Exclusive));
    // Re-entrant for the owner.
    EXPECT_TRUE(lm.acquire(1, pred(10), LockKind::Exclusive));
    EXPECT_TRUE(lm.acquire(1, pred(10), LockKind::Shared));
}

TEST(LockManagerTest, SharedBlocksExclusiveFromOthers)
{
    LockManager lm;
    EXPECT_TRUE(lm.acquire(1, pred(10), LockKind::Shared));
    EXPECT_FALSE(lm.acquire(2, pred(10), LockKind::Exclusive));
}

TEST(LockManagerTest, UpgradeWhenSoleSharer)
{
    LockManager lm;
    EXPECT_TRUE(lm.acquire(1, pred(10), LockKind::Shared));
    EXPECT_TRUE(lm.upgrade(1, pred(10)));
    EXPECT_FALSE(lm.acquire(2, pred(10), LockKind::Shared));
}

TEST(LockManagerTest, UpgradeFailsWithOtherSharers)
{
    LockManager lm;
    EXPECT_TRUE(lm.acquire(1, pred(10), LockKind::Shared));
    EXPECT_TRUE(lm.acquire(2, pred(10), LockKind::Shared));
    EXPECT_FALSE(lm.upgrade(1, pred(10)));
}

TEST(LockManagerTest, ReleaseMakesWayForWriters)
{
    LockManager lm;
    EXPECT_TRUE(lm.acquire(1, pred(10), LockKind::Shared));
    lm.release(1, pred(10));
    EXPECT_TRUE(lm.acquire(2, pred(10), LockKind::Exclusive));
}

TEST(LockManagerTest, ReleaseAll)
{
    LockManager lm;
    lm.acquire(1, pred(10), LockKind::Shared);
    lm.acquire(1, pred(11), LockKind::Exclusive);
    lm.releaseAll(1);
    EXPECT_FALSE(lm.holds(1, pred(10)));
    EXPECT_TRUE(lm.acquire(2, pred(11), LockKind::Exclusive));
}

TEST(TransactionTest, CommitReleasesLocks)
{
    LockManager lm;
    {
        Transaction tx(lm, 1);
        EXPECT_TRUE(tx.acquire(pred(10), LockKind::Exclusive));
        EXPECT_TRUE(lm.holds(1, pred(10)));
        tx.commit();
    }
    EXPECT_FALSE(lm.holds(1, pred(10)));
}

TEST(TransactionTest, DestructorAborts)
{
    LockManager lm;
    {
        Transaction tx(lm, 1);
        EXPECT_TRUE(tx.acquire(pred(10), LockKind::Shared));
    }
    EXPECT_FALSE(lm.holds(1, pred(10)));
}

TEST(TransactionTest, AcquireAllIsAtomic)
{
    LockManager lm;
    lm.acquire(2, pred(11), LockKind::Exclusive);
    Transaction tx(lm, 1);
    // 11 is blocked, so neither 10 nor 12 may be kept.
    EXPECT_FALSE(tx.acquireAll({pred(12), pred(10), pred(11)},
                               LockKind::Shared));
    EXPECT_FALSE(lm.holds(1, pred(10)));
    EXPECT_FALSE(lm.holds(1, pred(12)));
    EXPECT_TRUE(tx.acquireAll({pred(10), pred(12)}, LockKind::Shared));
    tx.commit();
}

} // namespace
} // namespace clare::crs
