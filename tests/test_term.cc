/**
 * @file
 * Unit tests for the symbol table, term arena, clauses and programs.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "term/clause.hh"
#include "term/symbol_table.hh"
#include "term/term.hh"

namespace clare::term {
namespace {

TEST(SymbolTable, ReservedSymbols)
{
    SymbolTable sym;
    EXPECT_EQ(sym.intern("[]"), SymbolTable::kNil);
    EXPECT_EQ(sym.intern("."), SymbolTable::kDot);
    EXPECT_EQ(sym.name(SymbolTable::kNil), "[]");
}

TEST(SymbolTable, InternIsIdempotent)
{
    SymbolTable sym;
    SymbolId a = sym.intern("foo");
    SymbolId b = sym.intern("foo");
    EXPECT_EQ(a, b);
    EXPECT_EQ(sym.name(a), "foo");
}

TEST(SymbolTable, DistinctNamesDistinctIds)
{
    SymbolTable sym;
    EXPECT_NE(sym.intern("foo"), sym.intern("bar"));
}

TEST(SymbolTable, LookupWithoutInterning)
{
    SymbolTable sym;
    EXPECT_EQ(sym.lookup("ghost"), kNoSymbol);
    sym.intern("ghost");
    EXPECT_NE(sym.lookup("ghost"), kNoSymbol);
    EXPECT_EQ(sym.atomCount(), 3u);     // [] . ghost
}

TEST(SymbolTable, FloatInterning)
{
    SymbolTable sym;
    FloatId a = sym.internFloat(3.25);
    FloatId b = sym.internFloat(3.25);
    FloatId c = sym.internFloat(1.5);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_DOUBLE_EQ(sym.floatValue(a), 3.25);
}

TEST(TermArena, AtomRoundTrip)
{
    TermArena arena;
    TermRef t = arena.makeAtom(7);
    EXPECT_EQ(arena.kind(t), TermKind::Atom);
    EXPECT_EQ(arena.atomSymbol(t), 7u);
}

TEST(TermArena, IntRoundTripIncludingNegative)
{
    TermArena arena;
    for (std::int64_t v : {std::int64_t{0}, std::int64_t{42},
                           std::int64_t{-1}, std::int64_t{1} << 40,
                           -(std::int64_t{1} << 40)}) {
        TermRef t = arena.makeInt(v);
        EXPECT_EQ(arena.intValue(t), v);
    }
}

TEST(TermArena, VarTracking)
{
    TermArena arena;
    TermRef v = arena.makeVar(3, 11);
    EXPECT_EQ(arena.varId(v), 3u);
    EXPECT_EQ(arena.varName(v), 11u);
    EXPECT_FALSE(arena.isAnonymous(v));
    TermRef anon = arena.makeVar(4);
    EXPECT_TRUE(arena.isAnonymous(anon));
    EXPECT_EQ(arena.varCeiling(), 5u);
}

TEST(TermArena, StructArgs)
{
    TermArena arena;
    TermRef a = arena.makeAtom(1);
    TermRef b = arena.makeInt(5);
    TermRef args[] = {a, b};
    TermRef s = arena.makeStruct(9, args);
    EXPECT_EQ(arena.kind(s), TermKind::Struct);
    EXPECT_EQ(arena.functor(s), 9u);
    EXPECT_EQ(arena.arity(s), 2u);
    EXPECT_EQ(arena.arg(s, 0), a);
    EXPECT_EQ(arena.arg(s, 1), b);
}

TEST(TermArena, TerminatedAndUnterminatedLists)
{
    TermArena arena;
    TermRef e = arena.makeAtom(2);
    TermRef proper = arena.makeList(std::span(&e, 1));
    EXPECT_TRUE(arena.isTerminatedList(proper));
    EXPECT_EQ(arena.listTail(proper), kNoTerm);

    TermRef tail = arena.makeVar(0, 5);
    TermRef partial = arena.makeList(std::span(&e, 1), tail);
    EXPECT_FALSE(arena.isTerminatedList(partial));
    EXPECT_EQ(arena.listTail(partial), tail);
}

TEST(TermArena, ImportStandardizesApart)
{
    TermArena src;
    TermRef v = src.makeVar(0, 3);
    TermRef args[] = {v, v};
    TermRef s = src.makeStruct(8, args);

    TermArena dst;
    dst.makeVar(0, 1);      // occupy var 0
    TermRef copy = dst.import(src, s, 10);
    EXPECT_EQ(dst.varId(dst.arg(copy, 0)), 10u);
    EXPECT_EQ(dst.varId(dst.arg(copy, 1)), 10u);
}

TEST(TermArena, ImportPreservesStructure)
{
    TermArena src;
    TermRef inner_args[] = {src.makeInt(1), src.makeAtom(4)};
    TermRef inner = src.makeStruct(6, inner_args);
    TermRef tail = src.makeVar(2, 7);
    TermRef list_elems[] = {inner, src.makeFloat(0)};
    TermRef list = src.makeList(list_elems, tail);

    TermArena dst;
    TermRef copy = dst.import(src, list, 0);
    EXPECT_TRUE(TermArena::equal(src, list, dst, copy));
}

TEST(TermArena, EqualDistinguishesKinds)
{
    TermArena a;
    TermArena b;
    EXPECT_FALSE(TermArena::equal(a, a.makeAtom(1), b, b.makeInt(1)));
    EXPECT_TRUE(TermArena::equal(a, a.makeAtom(1), b, b.makeAtom(1)));
    EXPECT_FALSE(TermArena::equal(a, a.makeAtom(1), b, b.makeAtom(2)));
}

TEST(TermArena, EqualComparesListTermination)
{
    TermArena a;
    TermRef e1 = a.makeAtom(2);
    TermRef proper = a.makeList(std::span(&e1, 1));
    TermArena b;
    TermRef e2 = b.makeAtom(2);
    TermRef t = b.makeVar(0, 3);
    TermRef partial = b.makeList(std::span(&e2, 1), t);
    EXPECT_FALSE(TermArena::equal(a, proper, b, partial));
}

TEST(TermKindName, CoversAll)
{
    EXPECT_STREQ(termKindName(TermKind::Atom), "atom");
    EXPECT_STREQ(termKindName(TermKind::List), "list");
}

Clause
makeFact(SymbolTable &sym, const char *functor,
         std::initializer_list<const char *> atoms)
{
    TermArena arena;
    std::vector<TermRef> args;
    for (const char *a : atoms)
        args.push_back(arena.makeAtom(sym.intern(a)));
    TermRef head = arena.makeStruct(sym.intern(functor), args);
    return Clause(std::move(arena), head, {});
}

TEST(Clause, FactDetection)
{
    SymbolTable sym;
    Clause fact = makeFact(sym, "p", {"a", "b"});
    EXPECT_TRUE(fact.isFact());
    EXPECT_TRUE(fact.isGroundFact());
    EXPECT_EQ(fact.predicate().arity, 2u);
}

TEST(Clause, NonGroundFact)
{
    SymbolTable sym;
    TermArena arena;
    TermRef args[] = {arena.makeVar(0, sym.intern("X")),
                      arena.makeAtom(sym.intern("a"))};
    TermRef head = arena.makeStruct(sym.intern("p"), args);
    Clause clause(std::move(arena), head, {});
    EXPECT_TRUE(clause.isFact());
    EXPECT_FALSE(clause.isGroundFact());
}

TEST(Clause, RuleIsNotFact)
{
    SymbolTable sym;
    TermArena arena;
    TermRef arg = arena.makeAtom(sym.intern("a"));
    TermRef head = arena.makeStruct(sym.intern("p"), std::span(&arg, 1));
    TermRef goal = arena.makeAtom(sym.intern("true"));
    Clause clause(std::move(arena), head, {goal});
    EXPECT_FALSE(clause.isFact());
}

TEST(Clause, HeadMustBeCallable)
{
    SymbolTable sym;
    TermArena arena;
    TermRef head = arena.makeInt(3);
    EXPECT_THROW(Clause(std::move(arena), head, {}), FatalError);
}

TEST(Program, PreservesGlobalOrder)
{
    SymbolTable sym;
    Program prog;
    prog.add(makeFact(sym, "p", {"a"}));
    prog.add(makeFact(sym, "q", {"b"}));
    prog.add(makeFact(sym, "p", {"c"}));
    EXPECT_EQ(prog.size(), 3u);
    PredicateId p{sym.intern("p"), 1};
    ASSERT_EQ(prog.clausesOf(p).size(), 2u);
    EXPECT_EQ(prog.clausesOf(p)[0], 0u);
    EXPECT_EQ(prog.clausesOf(p)[1], 2u);
}

TEST(Program, PredicatesInFirstAppearanceOrder)
{
    SymbolTable sym;
    Program prog;
    prog.add(makeFact(sym, "q", {"a"}));
    prog.add(makeFact(sym, "p", {"b"}));
    ASSERT_EQ(prog.predicates().size(), 2u);
    EXPECT_EQ(prog.predicates()[0].functor, sym.intern("q"));
}

TEST(Program, MixedRelationDetection)
{
    SymbolTable sym;
    Program prog;
    prog.add(makeFact(sym, "p", {"a"}));
    PredicateId p{sym.intern("p"), 1};
    EXPECT_FALSE(prog.isMixedRelation(p));

    TermArena arena;
    TermRef arg = arena.makeVar(0, sym.intern("X"));
    TermRef head = arena.makeStruct(sym.intern("p"), std::span(&arg, 1));
    prog.add(Clause(std::move(arena), head, {}));
    EXPECT_TRUE(prog.isMixedRelation(p));
}

TEST(Program, UnknownPredicateHasNoClauses)
{
    SymbolTable sym;
    Program prog;
    EXPECT_TRUE(prog.clausesOf(PredicateId{sym.intern("none"), 3})
                    .empty());
}

} // namespace
} // namespace clare::term
