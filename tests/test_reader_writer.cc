/**
 * @file
 * Parser and writer tests: Edinburgh-syntax round trips, variable
 * scoping, lists, comments and error reporting.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"

namespace clare::term {
namespace {

class ReaderTest : public ::testing::Test
{
  protected:
    SymbolTable sym;
    TermReader reader{sym};
    TermWriter writer{sym};

    std::string
    roundTrip(const std::string &text)
    {
        ParsedTerm t = reader.parseTerm(text);
        return writer.write(t.arena, t.root);
    }
};

TEST_F(ReaderTest, Atom)
{
    ParsedTerm t = reader.parseTerm("hello");
    EXPECT_EQ(t.arena.kind(t.root), TermKind::Atom);
    EXPECT_EQ(sym.name(t.arena.atomSymbol(t.root)), "hello");
}

TEST_F(ReaderTest, AtomWithUnderscoresAndDigits)
{
    EXPECT_EQ(roundTrip("married_couple2"), "married_couple2");
}

TEST_F(ReaderTest, QuotedAtom)
{
    ParsedTerm t = reader.parseTerm("'Hello World'");
    EXPECT_EQ(sym.name(t.arena.atomSymbol(t.root)), "Hello World");
    EXPECT_EQ(roundTrip("'Hello World'"), "'Hello World'");
}

TEST_F(ReaderTest, QuotedAtomEscapes)
{
    ParsedTerm t = reader.parseTerm("'it\\'s'");
    EXPECT_EQ(sym.name(t.arena.atomSymbol(t.root)), "it's");
}

TEST_F(ReaderTest, Integers)
{
    ParsedTerm t = reader.parseTerm("42");
    EXPECT_EQ(t.arena.intValue(t.root), 42);
    ParsedTerm n = reader.parseTerm("-17");
    EXPECT_EQ(n.arena.intValue(n.root), -17);
}

TEST_F(ReaderTest, Floats)
{
    ParsedTerm t = reader.parseTerm("3.5");
    EXPECT_EQ(t.arena.kind(t.root), TermKind::Float);
    EXPECT_DOUBLE_EQ(sym.floatValue(t.arena.floatId(t.root)), 3.5);
    ParsedTerm e = reader.parseTerm("1.5e2");
    EXPECT_DOUBLE_EQ(sym.floatValue(e.arena.floatId(e.root)), 150.0);
}

TEST_F(ReaderTest, NegativeFloat)
{
    ParsedTerm t = reader.parseTerm("-2.25");
    EXPECT_DOUBLE_EQ(sym.floatValue(t.arena.floatId(t.root)), -2.25);
}

TEST_F(ReaderTest, Variables)
{
    ParsedTerm t = reader.parseTerm("f(X, Y, X)");
    EXPECT_EQ(t.varNames.size(), 2u);
    EXPECT_EQ(t.arena.varId(t.arena.arg(t.root, 0)),
              t.arena.varId(t.arena.arg(t.root, 2)));
    EXPECT_NE(t.arena.varId(t.arena.arg(t.root, 0)),
              t.arena.varId(t.arena.arg(t.root, 1)));
}

TEST_F(ReaderTest, AnonymousVariablesAreDistinct)
{
    ParsedTerm t = reader.parseTerm("f(_, _)");
    TermRef a = t.arena.arg(t.root, 0);
    TermRef b = t.arena.arg(t.root, 1);
    EXPECT_TRUE(t.arena.isAnonymous(a));
    EXPECT_NE(t.arena.varId(a), t.arena.varId(b));
    EXPECT_TRUE(t.varNames.empty());
}

TEST_F(ReaderTest, UnderscorePrefixedVariableIsNamed)
{
    ParsedTerm t = reader.parseTerm("f(_Foo, _Foo)");
    EXPECT_EQ(t.arena.varId(t.arena.arg(t.root, 0)),
              t.arena.varId(t.arena.arg(t.root, 1)));
}

TEST_F(ReaderTest, NestedStructures)
{
    EXPECT_EQ(roundTrip("f(g(h(a)), b)"), "f(g(h(a)),b)");
}

TEST_F(ReaderTest, EmptyList)
{
    ParsedTerm t = reader.parseTerm("[]");
    EXPECT_EQ(t.arena.kind(t.root), TermKind::Atom);
    EXPECT_EQ(t.arena.atomSymbol(t.root), SymbolTable::kNil);
}

TEST_F(ReaderTest, ProperList)
{
    ParsedTerm t = reader.parseTerm("[a, b, c]");
    EXPECT_EQ(t.arena.kind(t.root), TermKind::List);
    EXPECT_EQ(t.arena.arity(t.root), 3u);
    EXPECT_TRUE(t.arena.isTerminatedList(t.root));
}

TEST_F(ReaderTest, PartialList)
{
    ParsedTerm t = reader.parseTerm("[a, b | Tail]");
    EXPECT_FALSE(t.arena.isTerminatedList(t.root));
    EXPECT_EQ(t.arena.arity(t.root), 2u);
    EXPECT_EQ(roundTrip("[a,b|T]"), "[a,b|T]");
}

TEST_F(ReaderTest, NestedListTailSplices)
{
    // [a|[b,c]] is the same term as [a,b,c].
    ParsedTerm t = reader.parseTerm("[a|[b,c]]");
    EXPECT_EQ(t.arena.arity(t.root), 3u);
    EXPECT_TRUE(t.arena.isTerminatedList(t.root));
}

TEST_F(ReaderTest, ListOfStructures)
{
    EXPECT_EQ(roundTrip("[f(X),g(Y)]"), "[f(X),g(Y)]");
}

TEST_F(ReaderTest, ParenthesizedTerm)
{
    EXPECT_EQ(roundTrip("(foo)"), "foo");
}

TEST_F(ReaderTest, EqualsSugar)
{
    ParsedTerm t = reader.parseTerm("X = f(Y)");
    EXPECT_EQ(t.arena.kind(t.root), TermKind::Struct);
    EXPECT_EQ(sym.name(t.arena.functor(t.root)), "=");
    EXPECT_EQ(t.arena.arity(t.root), 2u);
}

TEST_F(ReaderTest, LineComments)
{
    ParsedTerm t = reader.parseTerm("% comment\nfoo % trailing\n");
    EXPECT_EQ(sym.name(t.arena.atomSymbol(t.root)), "foo");
}

TEST_F(ReaderTest, BlockComments)
{
    ParsedTerm t = reader.parseTerm("/* a\nb */ foo");
    EXPECT_EQ(sym.name(t.arena.atomSymbol(t.root)), "foo");
}

TEST_F(ReaderTest, UnterminatedBlockCommentFails)
{
    EXPECT_THROW(reader.parseTerm("/* oops"), FatalError);
}

TEST_F(ReaderTest, TrailingGarbageFails)
{
    EXPECT_THROW(reader.parseTerm("foo bar"), FatalError);
}

TEST_F(ReaderTest, UnbalancedParenFails)
{
    EXPECT_THROW(reader.parseTerm("f(a"), FatalError);
}

TEST_F(ReaderTest, UnterminatedQuoteFails)
{
    EXPECT_THROW(reader.parseTerm("'abc"), FatalError);
}

TEST_F(ReaderTest, BadListTailFails)
{
    EXPECT_THROW(reader.parseTerm("[a|b]"), FatalError);
}

TEST_F(ReaderTest, FactClause)
{
    Clause c = reader.parseClause("likes(mary, wine).");
    EXPECT_TRUE(c.isFact());
    EXPECT_EQ(c.predicate().arity, 2u);
}

TEST_F(ReaderTest, RuleClause)
{
    Clause c = reader.parseClause(
        "grandparent(X, Z) :- parent(X, Y), parent(Y, Z).");
    EXPECT_FALSE(c.isFact());
    EXPECT_EQ(c.body().size(), 2u);
    EXPECT_EQ(c.varCount(), 3u);
}

TEST_F(ReaderTest, ClauseMissingDotFails)
{
    EXPECT_THROW(reader.parseClause("p(a)"), FatalError);
}

TEST_F(ReaderTest, ProgramMultipleClauses)
{
    auto clauses = reader.parseProgram(
        "p(a).\n"
        "p(b).\n"
        "q(X) :- p(X).\n");
    ASSERT_EQ(clauses.size(), 3u);
    EXPECT_TRUE(clauses[0].isFact());
    EXPECT_FALSE(clauses[2].isFact());
}

TEST_F(ReaderTest, ProgramVariablesScopedPerClause)
{
    auto clauses = reader.parseProgram("p(X).\nq(X).\n");
    // Each clause has its own variable numbering starting at 0.
    EXPECT_EQ(clauses[0].varCount(), 1u);
    EXPECT_EQ(clauses[1].varCount(), 1u);
}

TEST_F(ReaderTest, EmptyProgram)
{
    EXPECT_TRUE(reader.parseProgram("  % nothing here\n").empty());
}

TEST_F(ReaderTest, QueryWithPrefix)
{
    ParsedQuery q = reader.parseQuery("?- p(X), q(X).");
    EXPECT_EQ(q.goals.size(), 2u);
    EXPECT_EQ(q.varNames.size(), 1u);
}

TEST_F(ReaderTest, QueryWithoutPrefixOrDot)
{
    ParsedQuery q = reader.parseQuery("p(a)");
    EXPECT_EQ(q.goals.size(), 1u);
}

TEST_F(ReaderTest, QueryWithEquals)
{
    ParsedQuery q = reader.parseQuery("X = f(a), p(X).");
    EXPECT_EQ(q.goals.size(), 2u);
}

TEST_F(ReaderTest, WriterQuotesWhenNeeded)
{
    TermArena arena;
    TermRef t = arena.makeAtom(sym.intern("needs quoting"));
    EXPECT_EQ(writer.write(arena, t), "'needs quoting'");
    TermRef ok = arena.makeAtom(sym.intern("no_quotes"));
    EXPECT_EQ(writer.write(arena, ok), "no_quotes");
}

TEST_F(ReaderTest, WriterFloatAlwaysReadsBackAsFloat)
{
    TermArena arena;
    TermRef t = arena.makeFloat(sym.internFloat(2.0));
    std::string text = writer.write(arena, t);
    ParsedTerm back = reader.parseTerm(text);
    EXPECT_EQ(back.arena.kind(back.root), TermKind::Float);
}

TEST_F(ReaderTest, WriteClauseRoundTrip)
{
    Clause c = reader.parseClause("p(X, [a|X]) :- q(X), r.");
    std::string text = writer.writeClause(c);
    Clause back = reader.parseClause(text);
    EXPECT_EQ(writer.writeClause(back), text);
}

TEST_F(ReaderTest, ClauseRoundTripPreservesStructure)
{
    const char *source = "route(f(1,2.5),[x,y|T],'odd atom').";
    Clause a = reader.parseClause(source);
    Clause b = reader.parseClause(writer.writeClause(a));
    EXPECT_TRUE(TermArena::equal(a.arena(), a.head(),
                                 b.arena(), b.head()));
}

} // namespace
} // namespace clare::term
