/**
 * @file
 * PIF tests: the Appendix-A1 tag scheme, item wire format, and the
 * clause/query encoder (variable classification, in-line vs pointer
 * complex terms, integer in-line encoding).
 */

#include <gtest/gtest.h>

#include "pif/encoder.hh"
#include "pif/pif_item.hh"
#include "pif/type_tags.hh"
#include "support/logging.hh"
#include "term/term_reader.hh"

namespace clare::pif {
namespace {

TEST(TypeTags, FixedTagValuesMatchTableA1)
{
    EXPECT_EQ(kAnonymousVar, 0x20);
    EXPECT_EQ(kFirstQueryVar, 0x27);
    EXPECT_EQ(kSubQueryVar, 0x25);
    EXPECT_EQ(kFirstDbVar, 0x26);
    EXPECT_EQ(kSubDbVar, 0x24);
    EXPECT_EQ(kAtomPointer, 0x08);
    EXPECT_EQ(kFloatPointer, 0x09);
}

TEST(TypeTags, FamilyBasePatterns)
{
    EXPECT_EQ(kStructInlineBase, 0x60);     // 011a aaaa
    EXPECT_EQ(kStructPointerBase, 0x40);    // 010a aaaa
    EXPECT_EQ(kTermListInlineBase, 0xe0);   // 111a aaaa
    EXPECT_EQ(kUntermListInlineBase, 0xa0); // 101a aaaa
    EXPECT_EQ(kTermListPointerBase, 0xc0);  // 110a aaaa
    EXPECT_EQ(kUntermListPointerBase, 0x80);// 100a aaaa
}

TEST(TypeTags, IntegerFamily)
{
    for (std::uint32_t n = 0; n <= 0xf; ++n) {
        Tag tag = makeIntegerTag(n);
        EXPECT_TRUE(isValidTag(tag));
        EXPECT_EQ(tagClass(tag), TagClass::Integer);
        EXPECT_EQ(tagIntNibble(tag), n);
    }
}

TEST(TypeTags, ComplexArityField)
{
    Tag tag = makeComplexTag(kStructInlineBase, 17);
    EXPECT_EQ(tagArity(tag), 17u);
    EXPECT_TRUE(isInlineComplexTag(tag));
    EXPECT_FALSE(isListTag(tag));
}

TEST(TypeTags, ZeroArityComplexIsInvalid)
{
    EXPECT_FALSE(isValidTag(0x60));     // struct in-line, arity 0
    EXPECT_FALSE(isValidTag(0xe0));     // list in-line, arity 0
}

TEST(TypeTags, Categories)
{
    EXPECT_EQ(tagCategory(kAtomPointer), TagCategory::Simple);
    EXPECT_EQ(tagCategory(kAnonymousVar), TagCategory::Variable);
    EXPECT_EQ(tagCategory(makeComplexTag(kTermListInlineBase, 2)),
              TagCategory::Complex);
}

TEST(TypeTags, ListPredicates)
{
    EXPECT_TRUE(isListTag(makeComplexTag(kUntermListPointerBase, 5)));
    EXPECT_TRUE(isUntermListTag(makeComplexTag(kUntermListInlineBase, 1)));
    EXPECT_FALSE(isUntermListTag(makeComplexTag(kTermListInlineBase, 1)));
}

TEST(TypeTags, OnlyStructPointerHasExtension)
{
    EXPECT_TRUE(tagHasExtension(makeComplexTag(kStructPointerBase, 3)));
    EXPECT_FALSE(tagHasExtension(makeComplexTag(kStructInlineBase, 3)));
    EXPECT_FALSE(tagHasExtension(makeComplexTag(kTermListPointerBase, 3)));
    EXPECT_FALSE(tagHasExtension(kAtomPointer));
}

TEST(TypeTags, EnumerationIsConsistent)
{
    auto tags = allValidTags();
    EXPECT_EQ(tags.size(), countSupportedTags());
    for (Tag t : tags)
        EXPECT_TRUE(isValidTag(t));
    // 5 variables + 2 pointer simples + 16 integers + 6 complex
    // families x 31 arities.
    EXPECT_EQ(tags.size(), 5u + 2u + 16u + 6u * 31u);
}

TEST(TypeTags, InvalidTagsRejected)
{
    EXPECT_FALSE(isValidTag(0x00));
    EXPECT_FALSE(isValidTag(0x21));
    EXPECT_FALSE(isValidTag(0x0a));
}

TEST(PifItem, IntegerRoundTrip)
{
    for (std::int64_t v : {std::int64_t{0}, std::int64_t{1},
                           std::int64_t{-1}, std::int64_t{123456789},
                           (std::int64_t{1} << 35) - 1,
                           -(std::int64_t{1} << 35)}) {
        PifItem item = PifItem::makeInteger(v);
        EXPECT_EQ(item.integerValue(), v) << v;
    }
}

TEST(PifItem, IntegerRange)
{
    EXPECT_TRUE(PifItem::integerFits((std::int64_t{1} << 35) - 1));
    EXPECT_FALSE(PifItem::integerFits(std::int64_t{1} << 35));
    EXPECT_TRUE(PifItem::integerFits(-(std::int64_t{1} << 35)));
    EXPECT_FALSE(PifItem::integerFits(-(std::int64_t{1} << 35) - 1));
}

TEST(PifItem, WireSizeDependsOnExtension)
{
    PifItem atom{kAtomPointer, 7, 0};
    EXPECT_EQ(atom.wireBytes(), 5u);
    PifItem sptr{makeComplexTag(kStructPointerBase, 2), 7, 99};
    EXPECT_EQ(sptr.wireBytes(), 9u);
}

TEST(PifItem, SerializeRoundTrip)
{
    std::vector<PifItem> items = {
        PifItem{kAtomPointer, 0x01020304, 0},
        PifItem{makeComplexTag(kStructPointerBase, 3), 5, 0xdeadbeef},
        PifItem::makeInteger(-42),
        PifItem{kFirstDbVar, 2, 0},
    };
    std::vector<std::uint8_t> bytes;
    for (const auto &item : items)
        serializeItem(item, bytes);
    EXPECT_EQ(bytes.size(), wireSize(items));

    std::size_t offset = 0;
    for (const auto &expected : items) {
        PifItem got = deserializeItem(bytes, offset);
        EXPECT_EQ(got, expected);
    }
    EXPECT_EQ(offset, bytes.size());
}

TEST(PifItem, DeserializeRejectsBadTag)
{
    std::vector<std::uint8_t> bytes = {0x00, 1, 2, 3, 4};
    std::size_t offset = 0;
    EXPECT_THROW(deserializeItem(bytes, offset), FatalError);
}

TEST(PifItem, DeserializeRejectsTruncation)
{
    std::vector<std::uint8_t> bytes = {kAtomPointer, 1, 2};
    std::size_t offset = 0;
    EXPECT_THROW(deserializeItem(bytes, offset), FatalError);
}

TEST(PifItem, VarItemHelpers)
{
    EXPECT_TRUE(isQueryVarItem(PifItem{kFirstQueryVar, 0, 0}));
    EXPECT_TRUE(isQueryVarItem(PifItem{kSubQueryVar, 0, 0}));
    EXPECT_TRUE(isDbVarItem(PifItem{kSubDbVar, 0, 0}));
    EXPECT_FALSE(isDbVarItem(PifItem{kFirstQueryVar, 0, 0}));
    EXPECT_TRUE(isAnonVarItem(PifItem{kAnonymousVar, 0, 0}));
    EXPECT_FALSE(isNamedVarItem(PifItem{kAnonymousVar, 0, 0}));
}

class EncoderTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    Encoder encoder;

    EncodedArgs
    encode(const std::string &text, Side side)
    {
        term::ParsedTerm t = reader.parseTerm(text);
        return encoder.encodeArgs(t.arena, t.root, side);
    }
};

TEST_F(EncoderTest, GroundFactArguments)
{
    EncodedArgs args = encode("p(foo, 42, 2.5)", Side::Db);
    ASSERT_EQ(args.argCount(), 3u);
    EXPECT_EQ(tagClass(args.items[0].tag), TagClass::Atom);
    EXPECT_EQ(args.items[0].content, sym.lookup("foo"));
    EXPECT_EQ(tagClass(args.items[1].tag), TagClass::Integer);
    EXPECT_EQ(args.items[1].integerValue(), 42);
    EXPECT_EQ(tagClass(args.items[2].tag), TagClass::Float);
    EXPECT_EQ(args.varSlots, 0u);
}

TEST_F(EncoderTest, VariableClassificationDbSide)
{
    EncodedArgs args = encode("p(X, Y, X)", Side::Db);
    EXPECT_EQ(tagClass(args.items[0].tag), TagClass::FirstDbVar);
    EXPECT_EQ(tagClass(args.items[1].tag), TagClass::FirstDbVar);
    EXPECT_EQ(tagClass(args.items[2].tag), TagClass::SubDbVar);
    EXPECT_EQ(args.items[0].content, args.items[2].content);
    EXPECT_NE(args.items[0].content, args.items[1].content);
    EXPECT_EQ(args.varSlots, 2u);
}

TEST_F(EncoderTest, VariableClassificationQuerySide)
{
    EncodedArgs args = encode("p(S, S)", Side::Query);
    EXPECT_EQ(tagClass(args.items[0].tag), TagClass::FirstQueryVar);
    EXPECT_EQ(tagClass(args.items[1].tag), TagClass::SubQueryVar);
}

TEST_F(EncoderTest, AnonymousVariables)
{
    EncodedArgs args = encode("p(_, _)", Side::Db);
    EXPECT_EQ(args.items[0].tag, kAnonymousVar);
    EXPECT_EQ(args.items[1].tag, kAnonymousVar);
    EXPECT_EQ(args.varSlots, 0u);
}

TEST_F(EncoderTest, InlineStructureLayout)
{
    EncodedArgs args = encode("p(f(a, X), b)", Side::Db);
    // Items: struct-header, a, X, b.
    ASSERT_EQ(args.items.size(), 4u);
    EXPECT_EQ(tagClass(args.items[0].tag), TagClass::StructInline);
    EXPECT_EQ(tagArity(args.items[0].tag), 2u);
    EXPECT_EQ(args.items[0].content, sym.lookup("f"));
    EXPECT_EQ(tagClass(args.items[1].tag), TagClass::Atom);
    EXPECT_EQ(tagClass(args.items[2].tag), TagClass::FirstDbVar);
    EXPECT_EQ(args.argIndex[0], 0u);
    EXPECT_EQ(args.argIndex[1], 3u);
    EXPECT_EQ(itemWidth(args.items, 0), 3u);
}

TEST_F(EncoderTest, NestedComplexBecomesPointer)
{
    EncodedArgs args = encode("p(f(g(a)))", Side::Db);
    // Items: f-header, g-pointer (the nested struct is NOT in-lined).
    ASSERT_EQ(args.items.size(), 2u);
    EXPECT_EQ(tagClass(args.items[1].tag), TagClass::StructPointer);
    EXPECT_EQ(args.items[1].content, sym.lookup("g"));
    EXPECT_TRUE(args.items[1].hasExtension());
}

TEST_F(EncoderTest, NestedListBecomesPointer)
{
    EncodedArgs args = encode("p(f([a,b]))", Side::Db);
    ASSERT_EQ(args.items.size(), 2u);
    EXPECT_EQ(tagClass(args.items[1].tag), TagClass::TermListPointer);
    EXPECT_EQ(tagArity(args.items[1].tag), 2u);
}

TEST_F(EncoderTest, TerminatedListInline)
{
    EncodedArgs args = encode("p([a, b, c])", Side::Db);
    EXPECT_EQ(tagClass(args.items[0].tag), TagClass::TermListInline);
    EXPECT_EQ(tagArity(args.items[0].tag), 3u);
    EXPECT_EQ(args.items.size(), 4u);
}

TEST_F(EncoderTest, UnterminatedListOmitsTailItem)
{
    EncodedArgs args = encode("p([a, b | T])", Side::Db);
    EXPECT_EQ(tagClass(args.items[0].tag), TagClass::UntermListInline);
    EXPECT_EQ(tagArity(args.items[0].tag), 2u);
    // Header + 2 elements; the tail variable is not emitted.
    EXPECT_EQ(args.items.size(), 3u);
    EXPECT_EQ(args.varSlots, 0u);
}

TEST_F(EncoderTest, WideStructureBecomesPointerWithSaturatedArity)
{
    std::string text = "p(f(";
    for (int i = 0; i < 40; ++i) {
        if (i)
            text += ",";
        text += "a";
    }
    text += "))";
    EncodedArgs args = encode(text, Side::Db);
    ASSERT_EQ(args.items.size(), 1u);
    EXPECT_EQ(tagClass(args.items[0].tag), TagClass::StructPointer);
    EXPECT_EQ(tagArity(args.items[0].tag), kMaxInlineArity);
}

TEST_F(EncoderTest, MaxInlineArityStaysInline)
{
    std::string text = "p(f(";
    for (std::uint32_t i = 0; i < kMaxInlineArity; ++i) {
        if (i)
            text += ",";
        text += "a";
    }
    text += "))";
    EncodedArgs args = encode(text, Side::Db);
    EXPECT_EQ(tagClass(args.items[0].tag), TagClass::StructInline);
    EXPECT_EQ(args.items.size(), 1u + kMaxInlineArity);
}

TEST_F(EncoderTest, ZeroArityPredicate)
{
    term::ParsedTerm t = reader.parseTerm("halt");
    EncodedArgs args = encoder.encodeArgs(t.arena, t.root, Side::Db);
    EXPECT_EQ(args.argCount(), 0u);
    EXPECT_TRUE(args.items.empty());
}

TEST_F(EncoderTest, EncodeTermSingleArgument)
{
    term::ParsedTerm t = reader.parseTerm("f(a)");
    EncodedArgs args = encoder.encodeTerm(t.arena, t.root, Side::Query);
    EXPECT_EQ(args.argCount(), 1u);
    EXPECT_EQ(tagClass(args.items[0].tag), TagClass::StructInline);
}

TEST_F(EncoderTest, OversizedIntegerIsFatal)
{
    term::TermArena arena;
    term::TermRef big = arena.makeInt(std::int64_t{1} << 40);
    term::TermRef head = arena.makeStruct(sym.intern("p"),
                                          std::span(&big, 1));
    EXPECT_THROW(encoder.encodeArgs(arena, head, Side::Db), FatalError);
}

TEST_F(EncoderTest, VarSlotsCountDistinctVars)
{
    EncodedArgs args = encode("p(A, f(B, A), C)", Side::Db);
    EXPECT_EQ(args.varSlots, 3u);
}

TEST_F(EncoderTest, PointerValuesAreClauseLocalAndDistinct)
{
    EncodedArgs args = encode("p(f(g(a), g(b)))", Side::Db);
    ASSERT_EQ(args.items.size(), 3u);
    EXPECT_NE(args.items[1].extension, args.items[2].extension);
}

} // namespace
} // namespace clare::pif
