/**
 * @file
 * Storage tests: the disk timing model and the compiled clause file
 * (framing, decode, source-text round trips, order preservation).
 */

#include <gtest/gtest.h>

#include "storage/clause_file.hh"
#include "storage/disk_model.hh"
#include "support/logging.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"

namespace clare::storage {
namespace {

TEST(DiskGeometry, TrackBytes)
{
    DiskGeometry g;
    g.bytesPerSector = 512;
    g.sectorsPerTrack = 64;
    EXPECT_EQ(g.trackBytes(), 32u * 1024u);
}

TEST(DiskGeometry, PresetsMatchPaperRates)
{
    DiskGeometry smd = DiskGeometry::fujitsuM2351A();
    EXPECT_DOUBLE_EQ(smd.transferRate, 2.0e6);  // "circa 2 Mbytes/s"
    DiskGeometry scsi = DiskGeometry::micropolis1325();
    EXPECT_LT(scsi.transferRate, smd.transferRate);
}

TEST(DiskModel, TransferTimeIsLinear)
{
    DiskModel disk(DiskGeometry::fujitsuM2351A());
    Tick t1 = disk.transferTime(1000);
    Tick t2 = disk.transferTime(2000);
    EXPECT_EQ(t2, 2 * t1);
    // 2 MB at 2 MB/s is one second.
    EXPECT_EQ(disk.transferTime(2'000'000), kSecond);
}

TEST(DiskModel, AccessTimeIncludesRotation)
{
    DiskGeometry g = DiskGeometry::fujitsuM2351A();
    DiskModel disk(g);
    EXPECT_GT(disk.accessTime(), g.averageSeek);
}

TEST(DiskModel, StreamDeliversChunksInOrder)
{
    DiskModel disk(DiskGeometry::fujitsuM2351A());
    std::vector<std::uint8_t> image(10000);
    for (std::size_t i = 0; i < image.size(); ++i)
        image[i] = static_cast<std::uint8_t>(i & 0xff);
    disk.load(image);

    std::vector<std::uint32_t> sizes;
    std::vector<Tick> times;
    std::uint64_t total = 0;
    Tick end = disk.stream(100, 5000, 1024, 0,
        [&](const std::uint8_t *data, std::uint32_t n, Tick t) {
            EXPECT_EQ(data[0],
                      static_cast<std::uint8_t>((100 + total) & 0xff));
            sizes.push_back(n);
            times.push_back(t);
            total += n;
        });
    EXPECT_EQ(total, 5000u);
    EXPECT_EQ(sizes.front(), 1024u);
    EXPECT_EQ(sizes.back(), 5000u % 1024u);
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_GT(times[i], times[i - 1]);
    EXPECT_EQ(end, times.back());
    EXPECT_EQ(end, disk.accessTime() + disk.transferTime(5000));
}

TEST(DiskModel, StreamEmptyRange)
{
    DiskModel disk(DiskGeometry::fujitsuM2351A());
    disk.load(std::vector<std::uint8_t>(100));
    Tick end = disk.stream(0, 0, 512, 42,
        [](const std::uint8_t *, std::uint32_t, Tick) {
            FAIL() << "no chunks expected";
        });
    EXPECT_EQ(end, 42u);
}

TEST(DiskModel, StreamOutOfRangePanics)
{
    DiskModel disk(DiskGeometry::fujitsuM2351A());
    disk.load(std::vector<std::uint8_t>(10));
    EXPECT_DEATH(disk.stream(5, 10, 4, 0,
        [](const std::uint8_t *, std::uint32_t, Tick) {}), "exceeds");
}

class ClauseFileTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
    term::TermWriter writer{sym};

    ClauseFile
    build(const std::string &program_text)
    {
        ClauseFileBuilder builder(writer);
        for (const auto &clause : reader.parseProgram(program_text))
            builder.add(clause);
        return builder.finish();
    }
};

TEST_F(ClauseFileTest, RecordsInOrder)
{
    ClauseFile file = build("p(a).\np(b).\np(c).\n");
    ASSERT_EQ(file.clauseCount(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(file.record(i).ordinal, i);
    EXPECT_LT(file.record(0).offset, file.record(1).offset);
}

TEST_F(ClauseFileTest, SourceTextRoundTrip)
{
    ClauseFile file = build("p(a, z).\np(f(X), [u|T]) :- q(X).\n");
    EXPECT_EQ(file.sourceText(0), "p(a,z).");
    term::Clause back = reader.parseClause(file.sourceText(1));
    EXPECT_FALSE(back.isFact());
    EXPECT_EQ(back.predicate().arity, 2u);
}

TEST_F(ClauseFileTest, FlagsDistinguishFactsAndRules)
{
    ClauseFile file = build("p(a).\np(X).\np(b) :- p(a).\n");
    EXPECT_TRUE(file.record(0).isFact());
    EXPECT_TRUE(file.record(0).isGroundFact());
    EXPECT_TRUE(file.record(1).isFact());
    EXPECT_FALSE(file.record(1).isGroundFact());
    EXPECT_FALSE(file.record(2).isFact());
}

TEST_F(ClauseFileTest, DecodeArgsMatchesFreshEncoding)
{
    ClauseFile file = build("p(f(X, a), X, [1, 2]).\n");
    pif::EncodedArgs decoded = file.decodeArgs(0);
    term::Clause clause = reader.parseClause(file.sourceText(0));
    pif::Encoder encoder;
    pif::EncodedArgs fresh = encoder.encodeArgs(clause.arena(),
                                                clause.head(),
                                                pif::Side::Db);
    ASSERT_EQ(decoded.items.size(), fresh.items.size());
    for (std::size_t i = 0; i < decoded.items.size(); ++i)
        EXPECT_EQ(decoded.items[i], fresh.items[i]) << "item " << i;
    EXPECT_EQ(decoded.argIndex, fresh.argIndex);
    EXPECT_EQ(decoded.varSlots, fresh.varSlots);
}

TEST_F(ClauseFileTest, HeaderWalkCoversWholeImage)
{
    ClauseFile file = build("p(a).\np(f(b)).\np([x,y]).\n");
    std::size_t offset = 0;
    std::size_t count = 0;
    while (offset < file.image().size()) {
        ClauseRecord rec = ClauseFile::parseHeader(file.image(), offset);
        EXPECT_EQ(rec.ordinal, count);
        offset += rec.length;
        ++count;
    }
    EXPECT_EQ(count, 3u);
    EXPECT_EQ(offset, file.image().size());
}

TEST_F(ClauseFileTest, MixedPredicatesRejected)
{
    ClauseFileBuilder builder(writer);
    builder.add(reader.parseClause("p(a)."));
    EXPECT_THROW(builder.add(reader.parseClause("q(a).")), FatalError);
    ClauseFileBuilder builder2(writer);
    builder2.add(reader.parseClause("p(a)."));
    EXPECT_THROW(builder2.add(reader.parseClause("p(a, b).")),
                 FatalError);
}

TEST_F(ClauseFileTest, TruncatedImageIsFatal)
{
    ClauseFile file = build("p(a).\n");
    std::vector<std::uint8_t> cut(file.image().begin(),
                                  file.image().end() - 3);
    EXPECT_THROW(ClauseFile::parseHeader(cut, file.record(0).offset + 1),
                 FatalError);
}

TEST_F(ClauseFileTest, BuilderReusableAfterFinish)
{
    ClauseFileBuilder builder(writer);
    builder.add(reader.parseClause("p(a)."));
    ClauseFile first = builder.finish();
    builder.add(reader.parseClause("q(b)."));
    ClauseFile second = builder.finish();
    EXPECT_EQ(first.clauseCount(), 1u);
    EXPECT_EQ(second.clauseCount(), 1u);
    EXPECT_EQ(second.predicate().functor, sym.lookup("q"));
}

} // namespace
} // namespace clare::storage
