/**
 * @file
 * Observability tests: span nesting and cross-thread recording, the
 * metrics registry under concurrency, histogram bucketing, the JSON
 * model round trip, config validation, and the integration guarantee
 * that a response's StageBreakdown accounts for its elapsed time at
 * any worker count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "crs/api.hh"
#include "crs/server.hh"
#include "crs/store.hh"
#include "support/json.hh"
#include "support/obs.hh"
#include "support/thread_pool.hh"
#include "term/term_reader.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare {
namespace {

// ---------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------

TEST(ObsSpan, ImplicitNestingFollowsScope)
{
    obs::Tracer tracer;
    {
        obs::ScopedSpan outer(&tracer, "outer");
        EXPECT_EQ(obs::currentSpan(), outer.id());
        {
            obs::ScopedSpan inner(&tracer, "inner");
            EXPECT_EQ(obs::currentSpan(), inner.id());
        }
        EXPECT_EQ(obs::currentSpan(), outer.id());
    }
    EXPECT_EQ(obs::currentSpan(), 0u);

    std::vector<obs::SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    // Inner finishes first.
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[1].name, "outer");
    EXPECT_EQ(spans[0].parent, spans[1].id);
    EXPECT_EQ(spans[1].parent, 0u);
}

TEST(ObsSpan, NullTracerIsInert)
{
    obs::ScopedSpan span(nullptr, "ignored");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(obs::currentSpan(), 0u);
    span.attr("k", std::uint64_t{1});   // must not crash
    span.setSimTicks(5);
}

TEST(ObsSpan, ExplicitParentCrossesThreads)
{
    obs::Tracer tracer;
    support::ThreadPool pool(3);
    obs::SpanId root_id = 0;
    {
        obs::ScopedSpan root(&tracer, "root");
        root_id = root.id();
        pool.parallelFor(8, [&](std::size_t i) {
            obs::ScopedSpan child(&tracer, "child", root_id);
            child.attr("index", static_cast<std::uint64_t>(i));
            child.addSimTicks(static_cast<Tick>(i));
        });
    }
    std::vector<obs::SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 9u);
    std::size_t children = 0;
    for (const obs::SpanRecord &s : spans) {
        if (s.name == "child") {
            ++children;
            EXPECT_EQ(s.parent, root_id);
        }
    }
    EXPECT_EQ(children, 8u);
    // Ids are unique.
    std::vector<obs::SpanId> ids;
    for (const obs::SpanRecord &s : spans)
        ids.push_back(s.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(ObsSpan, AttrsAndSimTicksRecorded)
{
    obs::Tracer tracer;
    {
        obs::ScopedSpan span(&tracer, "s");
        span.attr("str", std::string("v"));
        span.attr("num", std::uint64_t{42});
        span.setSimTicks(7 * kMicrosecond);
    }
    std::vector<obs::SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].simTicks, 7 * kMicrosecond);
    ASSERT_EQ(spans[0].attrs.size(), 2u);
    EXPECT_EQ(spans[0].attrs[0].key, "str");
    EXPECT_EQ(std::get<std::string>(spans[0].attrs[0].value), "v");
    EXPECT_EQ(std::get<std::uint64_t>(spans[0].attrs[1].value), 42u);
}

TEST(ObsSpan, ClearDropsSpansButNotIds)
{
    obs::Tracer tracer;
    { obs::ScopedSpan a(&tracer, "a"); }
    obs::SpanId before = 0;
    { obs::ScopedSpan b(&tracer, "b"); before = b.id(); }
    tracer.clear();
    EXPECT_EQ(tracer.spanCount(), 0u);
    obs::ScopedSpan c(&tracer, "c");
    EXPECT_GT(c.id(), before);
}

// ---------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------

TEST(ObsMetrics, CounterGaugeBasics)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("c", "a counter");
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    // Same name returns the same instrument.
    EXPECT_EQ(&reg.counter("c"), &c);
    reg.gauge("g").set(2.5);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
}

TEST(ObsMetrics, CountersAreThreadSafe)
{
    obs::MetricsRegistry reg;
    support::ThreadPool pool(4);
    constexpr std::size_t kTasks = 64;
    constexpr std::uint64_t kPerTask = 1000;
    pool.parallelFor(kTasks, [&](std::size_t) {
        // Registration from many threads must also be safe.
        obs::Counter &c = reg.counter("shared");
        for (std::uint64_t i = 0; i < kPerTask; ++i)
            ++c;
    });
    EXPECT_EQ(reg.counter("shared").value(), kTasks * kPerTask);
}

TEST(ObsMetrics, HistogramBucketing)
{
    obs::Histogram h({1.0, 10.0, 100.0});
    ASSERT_EQ(h.buckets(), 4u);     // 3 bounds + overflow
    h.record(0.5);      // <= 1
    h.record(1.0);      // exact bound lands in its own bucket
    h.record(5.0);      // <= 10
    h.record(100.0);    // exact last bound
    h.record(1e6);      // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ObsMetrics, HistogramConcurrentRecords)
{
    obs::MetricsRegistry reg;
    obs::Histogram &h = reg.histogram("lat", {10.0, 100.0});
    support::ThreadPool pool(4);
    pool.parallelFor(32, [&](std::size_t i) {
        for (int j = 0; j < 100; ++j)
            h.record(static_cast<double>(i));
    });
    EXPECT_EQ(h.count(), 3200u);
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < h.buckets(); ++b)
        total += h.bucketCount(b);
    EXPECT_EQ(total, 3200u);
}

TEST(ObsMetrics, ExponentialBounds)
{
    std::vector<double> b = obs::Histogram::exponential(1.0, 10.0, 4);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_DOUBLE_EQ(b[0], 1.0);
    EXPECT_DOUBLE_EQ(b[3], 1000.0);
}

TEST(ObsMetrics, HistogramPercentile)
{
    obs::Histogram h({10.0, 20.0, 40.0});
    EXPECT_DOUBLE_EQ(obs::histogramPercentile(h, 0.5), 0.0); // empty

    // 10 samples in [0,10], 10 in (10,20] — the median sits exactly at
    // the first bucket's upper bound, p75 halfway into the second.
    for (int i = 0; i < 10; ++i)
        h.record(5.0);
    for (int i = 0; i < 10; ++i)
        h.record(15.0);
    EXPECT_DOUBLE_EQ(obs::histogramPercentile(h, 0.5), 10.0);
    EXPECT_DOUBLE_EQ(obs::histogramPercentile(h, 0.75), 15.0);
    EXPECT_DOUBLE_EQ(obs::histogramPercentile(h, 1.0), 20.0);
    // q = 0 clamps to the first sample's rank, interpolated from the
    // bucket's lower edge.
    EXPECT_DOUBLE_EQ(obs::histogramPercentile(h, 0.0), 1.0);

    // Overflow samples pin the estimate to the last finite bound.
    h.record(1e9);
    EXPECT_DOUBLE_EQ(obs::histogramPercentile(h, 1.0), 40.0);
}

// ---------------------------------------------------------------------
// JSON model and exporters.
// ---------------------------------------------------------------------

TEST(ObsJson, ValueRoundTrip)
{
    json::Value doc = json::Value::object();
    doc.set("name", "bench \"quoted\" \n");
    doc.set("count", std::uint64_t{123456789012345});
    doc.set("rate", 0.25);
    doc.set("flag", true);
    doc.set("nothing", json::Value());
    json::Value arr = json::Value::array();
    arr.push(1).push(2).push(3);
    doc.set("items", std::move(arr));

    for (int indent : {0, 2}) {
        std::string text = doc.dump(indent);
        std::string err;
        std::optional<json::Value> back = json::Value::parse(text, &err);
        ASSERT_TRUE(back.has_value()) << err;
        EXPECT_EQ(back->find("name")->str(), "bench \"quoted\" \n");
        // Integers below 2^53 survive exactly.
        EXPECT_EQ(back->find("count")->number(), 123456789012345.0);
        EXPECT_DOUBLE_EQ(back->find("rate")->number(), 0.25);
        EXPECT_TRUE(back->find("flag")->boolean());
        EXPECT_TRUE(back->find("nothing")->isNull());
        ASSERT_EQ(back->find("items")->size(), 3u);
        EXPECT_EQ(back->find("items")->at(2).number(), 3.0);
    }
}

TEST(ObsJson, ParseRejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(json::Value::parse("{", &err).has_value());
    EXPECT_FALSE(json::Value::parse("[1, 2,]", &err).has_value());
    EXPECT_FALSE(json::Value::parse("{\"a\": 1} trailing",
                                    &err).has_value());
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(json::Value::parse("\"unterminated", &err).has_value());
}

TEST(ObsJson, UnicodeEscapesDecodeToUtf8)
{
    std::optional<json::Value> v =
        json::Value::parse("\"a\\u00e9\\u20ac\"");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->str(), "a\xc3\xa9\xe2\x82\xac");
}

TEST(ObsJson, ExportRoundTrip)
{
    obs::MetricsRegistry reg;
    reg.counter("hits", "stuff") += 7;
    reg.gauge("workers").set(4);
    reg.histogram("lat", {1.0, 10.0}).record(3.0);
    obs::Tracer tracer;
    {
        obs::ScopedSpan root(&tracer, "root");
        obs::ScopedSpan child(&tracer, "child");
        child.setSimTicks(11);
    }

    json::Value doc = obs::exportJson(&reg, &tracer);
    std::string err;
    std::optional<json::Value> back = json::Value::parse(doc.dump(2),
                                                         &err);
    ASSERT_TRUE(back.has_value()) << err;

    const json::Value *metrics = back->find("metrics");
    ASSERT_NE(metrics, nullptr);
    const json::Value *counters = metrics->find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_EQ(counters->size(), 1u);
    EXPECT_EQ(counters->at(0).find("name")->str(), "hits");
    EXPECT_EQ(counters->at(0).find("value")->number(), 7.0);
    const json::Value *hists = metrics->find("histograms");
    ASSERT_NE(hists, nullptr);
    EXPECT_EQ(hists->at(0).find("count")->number(), 1.0);

    const json::Value *spans = back->find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_EQ(spans->size(), 2u);
    // Completion order: child first, rooted under "root".
    EXPECT_EQ(spans->at(0).find("name")->str(), "child");
    EXPECT_EQ(spans->at(0).find("parent")->number(),
              spans->at(1).find("id")->number());
    EXPECT_EQ(spans->at(0).find("sim_ticks")->number(), 11.0);
}

TEST(ObsJson, CsvRows)
{
    obs::MetricsRegistry reg;
    reg.counter("a.b") += 2;
    reg.histogram("h", {1.0}).record(0.5);
    std::string csv = obs::metricsCsv(reg);
    EXPECT_NE(csv.find("kind,name,value\n"), std::string::npos);
    EXPECT_NE(csv.find("counter,a.b,2"), std::string::npos);
    EXPECT_NE(csv.find("histogram,h.le_1,1"), std::string::npos);
    EXPECT_NE(csv.find("histogram,h.overflow,0"), std::string::npos);
}

// ---------------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------------

TEST(ObsConfig, ValidateAcceptsDefaults)
{
    crs::CrsConfig config;
    EXPECT_NO_THROW(config.validate());
    config.workers = 8;
    config.fs1.paceScale = 4.0;
    EXPECT_NO_THROW(config.validate());
}

TEST(ObsConfig, ValidateNamesTheOffendingField)
{
    auto field_of = [](crs::CrsConfig config) -> std::string {
        try {
            config.validate();
        } catch (const crs::ConfigError &e) {
            return e.field();
        }
        return "";
    };

    crs::CrsConfig config;
    config.workers = 0;
    EXPECT_EQ(field_of(config), "workers");

    config = {};
    config.fs1.scanRate = 0.0;
    EXPECT_EQ(field_of(config), "fs1.scanRate");

    config = {};
    config.fs1.paceScale = -1.0;
    EXPECT_EQ(field_of(config), "fs1.paceScale");

    config = {};
    config.fs2.level = 0;
    EXPECT_EQ(field_of(config), "fs2.level");

    config = {};
    config.fs2.resultSlotBytes = config.fs2.resultMemoryBytes + 1;
    EXPECT_EQ(field_of(config), "fs2.resultSlotBytes");

    config = {};
    config.host.perCandidateUnify = 2 * kSecond;
    EXPECT_EQ(field_of(config), "host.perCandidateUnify");
}

TEST(ObsConfig, ServerConstructorValidates)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::Program program;
    for (auto &c : reader.parseProgram("p(a).\n"))
        program.add(std::move(c));
    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();

    crs::CrsConfig config;
    config.workers = 0;
    EXPECT_THROW(crs::ClauseRetrievalServer(sym, store, config),
                 crs::ConfigError);
}

// ---------------------------------------------------------------------
// Integration: the unified front door and its accounting.
// ---------------------------------------------------------------------

class ObsPipelineTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    std::unique_ptr<crs::PredicateStore> store;
    std::vector<workload::GeneratedQuery> queries;

    void
    SetUp() override
    {
        workload::KbGenerator kbgen(sym);
        workload::KbSpec spec;
        spec.predicates = 1;
        spec.clausesPerPredicate = 600;
        spec.atomVocabulary = 120;
        spec.varProb = 0.05;
        spec.structProb = 0.2;
        spec.seed = 77;
        term::Program program = kbgen.generate(spec);
        const auto &pred = program.predicates()[0];

        store = std::make_unique<crs::PredicateStore>(
            sym, scw::CodewordGenerator{});
        store->addProgram(program);
        store->finalize();

        workload::QuerySpec qspec;
        qspec.boundArgProb = 0.8;
        qspec.sharedVarProb = 0.1;
        qspec.seed = 5;
        workload::QueryGenerator qgen(sym, qspec);
        for (int i = 0; i < 12; ++i)
            queries.push_back(qgen.generate(program, pred));
    }

    std::vector<crs::RetrievalRequest>
    makeBatch(bool trace = false) const
    {
        std::vector<crs::RetrievalRequest> batch;
        for (std::size_t i = 0; i < queries.size(); ++i) {
            crs::RetrievalRequest r;
            r.arena = &queries[i].arena;
            r.goal = queries[i].goal;
            if (i % 2 == 0)
                r.mode = crs::SearchMode::TwoStage;
            r.trace.enabled = trace;
            batch.push_back(r);
        }
        return batch;
    }

    std::unique_ptr<crs::ClauseRetrievalServer>
    makeServer(std::uint32_t workers)
    {
        crs::CrsConfig config;
        config.workers = workers;
        return std::make_unique<crs::ClauseRetrievalServer>(
            sym, *store, config);
    }
};

TEST_F(ObsPipelineTest, BreakdownSumsToElapsedSequential)
{
    auto server = makeServer(1);
    for (const crs::RetrievalRequest &req : makeBatch()) {
        crs::RetrievalResponse r = server->serve(req);
        // workers == 1: no queueing, the sum is exact.
        EXPECT_EQ(r.breakdown.queueWait, 0u);
        EXPECT_EQ(r.breakdown.serviceTime(), r.elapsed);
        EXPECT_EQ(r.breakdown.total(), r.elapsed);
        EXPECT_EQ(r.breakdown.indexTime + r.breakdown.filterTime +
                      r.breakdown.hostUnifyTime,
                  r.elapsed);
    }
}

TEST_F(ObsPipelineTest, BreakdownSumsToElapsedPipelined)
{
    auto seq = makeServer(1);
    auto par = makeServer(4);
    std::vector<crs::RetrievalRequest> batch = makeBatch();
    std::vector<crs::RetrievalResponse> base = seq->serveBatch(batch);
    std::vector<crs::RetrievalResponse> out = par->serveBatch(batch);
    ASSERT_EQ(out.size(), base.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        // Queue wait is extra accounting on top of the (identical)
        // service time: total() minus the wait is exactly elapsed.
        EXPECT_EQ(out[i].breakdown.total() - out[i].breakdown.queueWait,
                  out[i].elapsed);
        EXPECT_EQ(out[i].breakdown.serviceTime(), out[i].elapsed);
        EXPECT_EQ(out[i].elapsed, base[i].elapsed) << i;
        EXPECT_EQ(out[i].candidates, base[i].candidates) << i;
        EXPECT_EQ(out[i].answers, base[i].answers) << i;
    }
}

TEST_F(ObsPipelineTest, ServeIsDeterministicAcrossInstances)
{
    // Two freshly constructed servers over the same store answer the
    // unified front door bit-identically -- the property the networked
    // tier's replicas rely on.
    auto a = makeServer(1);
    auto b = makeServer(1);
    for (const workload::GeneratedQuery &q : queries) {
        crs::RetrievalRequest req;
        req.arena = &q.arena;
        req.goal = q.goal;
        req.mode = crs::SearchMode::TwoStage;
        crs::RetrievalResponse ra = a->serve(req);
        crs::RetrievalResponse rb = b->serve(req);
        EXPECT_EQ(ra.candidates, rb.candidates);
        EXPECT_EQ(ra.answers, rb.answers);
        EXPECT_EQ(ra.elapsed, rb.elapsed);

        crs::RetrievalRequest auto_req;
        auto_req.arena = &q.arena;
        auto_req.goal = q.goal;
        crs::RetrievalResponse aa = a->serve(auto_req);
        crs::RetrievalResponse ab = b->serve(auto_req);
        EXPECT_EQ(aa.mode, ab.mode);
        EXPECT_EQ(aa.answers, ab.answers);
    }

    std::vector<crs::RetrievalRequest> batch = makeBatch();
    std::vector<crs::RetrievalResponse> many = a->serveBatch(batch);
    std::vector<crs::RetrievalResponse> served = b->serveBatch(batch);
    ASSERT_EQ(many.size(), served.size());
    for (std::size_t i = 0; i < many.size(); ++i) {
        EXPECT_EQ(many[i].candidates, served[i].candidates);
        EXPECT_EQ(many[i].answers, served[i].answers);
        EXPECT_EQ(many[i].elapsed, served[i].elapsed);
    }
}

TEST_F(ObsPipelineTest, TracingIsPerRequestOptIn)
{
    auto server = makeServer(1);

    crs::RetrievalRequest plain;
    plain.arena = &queries[0].arena;
    plain.goal = queries[0].goal;
    plain.mode = crs::SearchMode::TwoStage;
    crs::RetrievalResponse r0 = server->serve(plain);
    EXPECT_EQ(r0.traceSpan, 0u);
    EXPECT_EQ(server->tracer().spanCount(), 0u);

    crs::RetrievalRequest traced = plain;
    traced.trace.enabled = true;
    crs::RetrievalResponse r1 = server->serve(traced);
    EXPECT_NE(r1.traceSpan, 0u);
    ASSERT_GT(server->tracer().spanCount(), 0u);

    // The trace is a tree rooted at the response's span: every span
    // is the root or has a recorded parent, and the stage spans are
    // present under it.
    std::vector<obs::SpanRecord> spans = server->tracer().snapshot();
    std::map<obs::SpanId, const obs::SpanRecord *> by_id;
    for (const obs::SpanRecord &s : spans)
        by_id[s.id] = &s;
    std::size_t fs1_spans = 0, fs2_spans = 0, unify_spans = 0;
    for (const obs::SpanRecord &s : spans) {
        if (s.id != r1.traceSpan) {
            ASSERT_TRUE(by_id.count(s.parent) == 1)
                << s.name << " has unknown parent";
        }
        fs1_spans += s.name == "fs1.scan";
        fs2_spans += s.name == "fs2.search";
        unify_spans += s.name == "crs.host_unify";
    }
    EXPECT_EQ(by_id.at(r1.traceSpan)->name, "crs.retrieve");
    EXPECT_EQ(by_id.at(r1.traceSpan)->simTicks, r1.elapsed);
    EXPECT_EQ(fs1_spans, 1u);
    EXPECT_EQ(fs2_spans, 1u);
    EXPECT_EQ(unify_spans, 1u);
}

TEST_F(ObsPipelineTest, MetricsAccumulateAcrossRetrievals)
{
    auto server = makeServer(2);
    std::vector<crs::RetrievalRequest> batch = makeBatch();
    server->serveBatch(batch);
    obs::MetricsRegistry &m = server->metrics();
    EXPECT_EQ(m.counter("crs.queries").value(), batch.size());
    EXPECT_EQ(m.counter("crs.batches").value(), 1u);
    EXPECT_GT(m.counter("fs1.searches").value(), 0u);
    EXPECT_GT(m.counter("fs1.entries_scanned").value(), 0u);
    EXPECT_GT(m.counter("fs2.clauses_examined").value(), 0u);
    EXPECT_GT(m.counter("crs.host_unify_clauses").value(), 0u);
    EXPECT_EQ(m.histogram("crs.elapsed_us", {}).count(), batch.size());

    // The Table 1 op mix surfaces as fs2.op.* counters.
    bool any_op = false;
    for (const auto &view : m.counters())
        any_op = any_op || view.name.rfind("fs2.op.", 0) == 0;
    EXPECT_TRUE(any_op);
}

TEST_F(ObsPipelineTest, BatchTraceParentsShardScans)
{
    auto server = makeServer(4);
    std::vector<crs::RetrievalRequest> batch = makeBatch(true);
    std::vector<crs::RetrievalResponse> out = server->serveBatch(batch);
    std::vector<obs::SpanRecord> spans = server->tracer().snapshot();
    ASSERT_FALSE(spans.empty());
    std::map<obs::SpanId, const obs::SpanRecord *> by_id;
    for (const obs::SpanRecord &s : spans)
        by_id[s.id] = &s;
    // Exactly one batch root; every other span reaches it through
    // recorded parents (i.e. pool-side scan spans are not orphaned).
    std::size_t roots = 0;
    for (const obs::SpanRecord &s : spans) {
        if (s.parent == 0) {
            ++roots;
            EXPECT_EQ(s.name, "crs.batch");
        } else {
            EXPECT_EQ(by_id.count(s.parent), 1u) << s.name;
        }
    }
    EXPECT_EQ(roots, 1u);
    for (const crs::RetrievalResponse &r : out)
        EXPECT_NE(r.traceSpan, 0u);
}

} // namespace
} // namespace clare
