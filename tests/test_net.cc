/**
 * @file
 * The networked serving tier (ctest labels: net, faults).
 *
 * Codec layer: the frame envelope detects every single-bit flip in
 * header or payload; the TLV request/response/error payloads round
 * trip exactly (including the degraded / overflow flags) and tolerate
 * unknown tags; the recursive-PIF goal codec is a fixed point under
 * encode -> decode -> encode and rejects damaged streams with a typed
 * CorruptionError.
 *
 * Live loopback: a NetServer answers bit-identically (answers AND
 * modeled StageBreakdown ticks) to a local serve() of the same goal; a
 * 3-replica cluster behind the Router stays bit-identical even when
 * one backend's store is poisoned by the fault injector (the degraded
 * path is visible only in counters); wire faults (dropped, truncated,
 * bit-flipped, delayed frames) surface as typed IoError /
 * CorruptionError at the client and as failover — never a crash or a
 * wrong answer; admission control sheds with Error(Overloaded), and a
 * malformed request answers Error(BadRequest) without losing the
 * connection.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "crs/server.hh"
#include "crs/store_io.hh"
#include "net/client.hh"
#include "net/frame.hh"
#include "net/router.hh"
#include "net/server.hh"
#include "net/term_codec.hh"
#include "net/wire.hh"
#include "support/fault_injector.hh"
#include "support/random.hh"
#include "term/term_reader.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

namespace clare {
namespace {

// ---------------------------------------------------------------------
// Frame envelope.
// ---------------------------------------------------------------------

TEST(FrameTest, RoundTrip)
{
    std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
    std::vector<std::uint8_t> frame;
    net::encodeFrame(net::FrameType::Request, payload, frame);
    ASSERT_EQ(frame.size(), net::kFrameHeaderBytes + payload.size());

    net::FrameHeader header =
        net::decodeFrameHeader(frame.data(), "test");
    EXPECT_EQ(header.type, net::FrameType::Request);
    EXPECT_EQ(header.payloadBytes, payload.size());
    net::verifyFramePayload(header, frame.data() + net::kFrameHeaderBytes,
                            payload.size(), "test");
}

TEST(FrameTest, EmptyPayloadRoundTrip)
{
    std::vector<std::uint8_t> frame;
    net::encodeFrame(net::FrameType::Health, {}, frame);
    net::FrameHeader header =
        net::decodeFrameHeader(frame.data(), "test");
    EXPECT_EQ(header.type, net::FrameType::Health);
    EXPECT_EQ(header.payloadBytes, 0u);
    net::verifyFramePayload(header, nullptr, 0, "test");
}

TEST(FrameTest, EverySingleBitFlipIsDetected)
{
    std::vector<std::uint8_t> payload(64);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 37 + 5);
    std::vector<std::uint8_t> clean;
    net::encodeFrame(net::FrameType::Response, payload, clean);

    for (std::size_t bit = 0; bit < clean.size() * 8; ++bit) {
        std::vector<std::uint8_t> frame = clean;
        frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));

        bool detected = false;
        try {
            net::FrameHeader header =
                net::decodeFrameHeader(frame.data(), "test");
            if (header.payloadBytes != payload.size()) {
                detected = true;    // receiver would misframe; the CRC
                                    // of the re-sliced payload catches
                                    // it — count the length mismatch.
            } else {
                net::verifyFramePayload(
                    header, frame.data() + net::kFrameHeaderBytes,
                    payload.size(), "test");
            }
        } catch (const CorruptionError &) {
            detected = true;
        }
        EXPECT_TRUE(detected) << "bit " << bit << " flipped undetected";
    }
}

TEST(FrameTest, InsaneLengthRejected)
{
    std::vector<std::uint8_t> frame;
    net::encodeFrame(net::FrameType::Request, {1, 2, 3}, frame);
    // Patch the length field to something past the payload bound.
    frame[8] = 0xff;
    frame[9] = 0xff;
    frame[10] = 0xff;
    frame[11] = 0x7f;
    EXPECT_THROW(net::decodeFrameHeader(frame.data(), "test"),
                 CorruptionError);
}

// ---------------------------------------------------------------------
// TLV payload codecs.
// ---------------------------------------------------------------------

TEST(WireCodecTest, RequestRoundTrip)
{
    net::WireRequest request;
    request.id = 0x1122334455667788ull;
    request.predicate = term::PredicateId{42, 3};
    request.goalPif = {9, 8, 7, 6};
    request.mode = crs::SearchMode::Fs2Only;
    request.bypassCache = true;

    net::WireRequest out =
        net::decodeRequest(net::encodeRequest(request), "test");
    EXPECT_EQ(out.id, request.id);
    EXPECT_EQ(out.predicate, request.predicate);
    EXPECT_EQ(out.goalPif, request.goalPif);
    ASSERT_TRUE(out.mode.has_value());
    EXPECT_EQ(*out.mode, crs::SearchMode::Fs2Only);
    EXPECT_TRUE(out.bypassCache);

    // Auto mode (absent field) round trips as absent.
    request.mode.reset();
    request.bypassCache = false;
    out = net::decodeRequest(net::encodeRequest(request), "test");
    EXPECT_FALSE(out.mode.has_value());
    EXPECT_FALSE(out.bypassCache);
}

/** A response with every field set to a distinctive value. */
crs::RetrievalResponse
sampleResponse()
{
    crs::RetrievalResponse r;
    r.mode = crs::SearchMode::TwoStage;
    r.candidates = {3, 5, 8, 13};
    r.answers = {5, 13};
    r.indexEntriesScanned = 1234;
    r.fs1Hits = 77;
    r.clausesExamined = 55;
    for (std::size_t i = 0; i < r.filterOps.size(); ++i)
        r.filterOps[i] = 1000 + i;
    r.breakdown.queueWait = 11;
    r.breakdown.cacheTime = 22;
    r.breakdown.indexTime = 33;
    r.breakdown.filterTime = 44;
    r.breakdown.hostUnifyTime = 55;
    r.elapsed = 165;
    r.degraded = true;
    r.corruptIndexPages = 2;
    r.resultOverflow = true;
    r.satisfiersRequeued = 9;
    return r;
}

TEST(WireCodecTest, ResponseRoundTripAllFields)
{
    crs::RetrievalResponse r = sampleResponse();
    net::WireResponse out =
        net::decodeResponse(net::encodeResponse(99, r), "test");
    EXPECT_EQ(out.id, 99u);
    EXPECT_TRUE(net::responsesIdentical(out.response, r));
    EXPECT_TRUE(out.response.degraded);
    EXPECT_TRUE(out.response.resultOverflow);
    EXPECT_EQ(out.response.corruptIndexPages, 2u);
    EXPECT_EQ(out.response.satisfiersRequeued, 9u);

    // And with the flag fields back at their defaults.
    r.degraded = false;
    r.resultOverflow = false;
    r.corruptIndexPages = 0;
    r.satisfiersRequeued = 0;
    out = net::decodeResponse(net::encodeResponse(7, r), "test");
    EXPECT_TRUE(net::responsesIdentical(out.response, r));
}

TEST(WireCodecTest, UnknownTagsAreSkipped)
{
    // A future peer appends a field this version has never heard of;
    // decoding must skip it and keep everything else.
    auto unknown = [](std::vector<std::uint8_t> payload) {
        payload.push_back(200);    // tag nobody owns
        payload.push_back(3);      // length, little-endian u32
        payload.push_back(0);
        payload.push_back(0);
        payload.push_back(0);
        payload.push_back(0xaa);
        payload.push_back(0xbb);
        payload.push_back(0xcc);
        return payload;
    };

    net::WireRequest request;
    request.id = 4;
    request.predicate = term::PredicateId{1, 2};
    request.goalPif = {1, 2, 3};
    net::WireRequest req_out = net::decodeRequest(
        unknown(net::encodeRequest(request)), "test");
    EXPECT_EQ(req_out.id, 4u);
    EXPECT_EQ(req_out.goalPif, request.goalPif);

    crs::RetrievalResponse r = sampleResponse();
    net::WireResponse rsp_out = net::decodeResponse(
        unknown(net::encodeResponse(5, r)), "test");
    EXPECT_TRUE(net::responsesIdentical(rsp_out.response, r));
}

TEST(WireCodecTest, ErrorRoundTrip)
{
    std::vector<std::uint8_t> payload =
        net::encodeError(net::ErrorCode::Overloaded, "go away");
    net::WireError out = net::decodeError(payload, "test");
    EXPECT_EQ(out.code, net::ErrorCode::Overloaded);
    EXPECT_EQ(out.message, "go away");
}

TEST(WireCodecTest, TruncatedPayloadIsTyped)
{
    crs::RetrievalResponse r = sampleResponse();
    std::vector<std::uint8_t> payload = net::encodeResponse(1, r);
    for (std::size_t cut : {1ul, 5ul, payload.size() / 2,
                            payload.size() - 1}) {
        std::vector<std::uint8_t> damaged(payload.begin(),
                                          payload.begin() + cut);
        EXPECT_THROW(net::decodeResponse(damaged, "test"),
                     CorruptionError)
            << "cut at " << cut;
    }
    EXPECT_THROW(net::decodeRequest({1, 2}, "test"), CorruptionError);
    EXPECT_THROW(net::decodeError({}, "test"), CorruptionError);
}

TEST(WireCodecTest, ResponseFuzzRoundTrip)
{
    Rng rng(2024);
    for (int round = 0; round < 200; ++round) {
        crs::RetrievalResponse r;
        r.mode = static_cast<crs::SearchMode>(rng.below(4));
        for (std::uint32_t i = 0; i < rng.below(20); ++i)
            r.candidates.push_back(
                static_cast<std::uint32_t>(rng.below(100000)));
        for (std::uint32_t i = 0; i < rng.below(10); ++i)
            r.answers.push_back(
                static_cast<std::uint32_t>(rng.below(100000)));
        r.indexEntriesScanned = rng.next();
        r.fs1Hits = rng.next();
        r.clausesExamined = rng.next();
        for (auto &op : r.filterOps)
            op = rng.next();
        r.breakdown.queueWait = rng.next();
        r.breakdown.cacheTime = rng.next();
        r.breakdown.indexTime = rng.next();
        r.breakdown.filterTime = rng.next();
        r.breakdown.hostUnifyTime = rng.next();
        r.elapsed = rng.next();
        r.degraded = rng.chance(0.5);
        r.resultOverflow = rng.chance(0.5);
        r.corruptIndexPages =
            static_cast<std::uint32_t>(rng.below(100));
        r.satisfiersRequeued =
            static_cast<std::uint32_t>(rng.below(64));

        std::uint64_t id = rng.next();
        net::WireResponse out = net::decodeResponse(
            net::encodeResponse(id, r), "fuzz");
        EXPECT_EQ(out.id, id) << "round " << round;
        EXPECT_TRUE(net::responsesIdentical(out.response, r))
            << "round " << round;
        EXPECT_EQ(out.response.degraded, r.degraded);
        EXPECT_EQ(out.response.resultOverflow, r.resultOverflow);
    }
}

TEST(WireCodecTest, DamagedPayloadFuzzNeverCrashes)
{
    // Bit-flip and truncate encoded payloads at random: decoding must
    // either succeed (the damage hit redundant bytes) or raise a typed
    // CorruptionError — nothing else.  (On the wire the frame CRC
    // catches these first; this is defense in depth for the codec.)
    crs::RetrievalResponse r = sampleResponse();
    std::vector<std::uint8_t> payload = net::encodeResponse(12, r);
    Rng rng(7);
    for (int round = 0; round < 500; ++round) {
        std::vector<std::uint8_t> damaged = payload;
        if (rng.chance(0.3))
            damaged.resize(rng.below(damaged.size()));
        for (std::uint32_t flips = 0; flips <= rng.below(4); ++flips) {
            if (damaged.empty())
                break;
            damaged[rng.below(damaged.size())] ^=
                static_cast<std::uint8_t>(1u << rng.below(8));
        }
        try {
            net::decodeResponse(damaged, "fuzz");
        } catch (const CorruptionError &) {
            // Typed rejection is the expected outcome.
        }
    }
}

// ---------------------------------------------------------------------
// Goal codec.
// ---------------------------------------------------------------------

class GoalCodecTest : public ::testing::Test
{
  protected:
    term::SymbolTable sym;
    term::TermReader reader{sym};
};

TEST_F(GoalCodecTest, EncodeDecodeEncodeIsFixedPoint)
{
    // Variable names do not travel, so decoded terms are not textually
    // identical — but the encoding is canonical in variable *slots*,
    // so re-encoding the decoded term must reproduce the exact bytes.
    const char *goals[] = {
        "p(a, b, c)",
        "p(X, Y, X)",    // sharing must be preserved
        "route(city(nyc), city(sf), Cost)",
        "p(f(g(h(X))), X)",
        "p([1, 2, 3], [a | T])",
        "p([], -17, 3.5)",
        "atom_goal",
        "p([a, f(X), [b, c] | Rest], X)",
    };
    for (const char *text : goals) {
        term::ParsedTerm goal = reader.parseTerm(text);
        std::vector<std::uint8_t> bytes =
            net::encodeGoal(goal.arena, goal.root);

        term::TermArena arena;
        term::TermRef decoded =
            net::decodeGoal(bytes, sym, arena, "test");
        std::vector<std::uint8_t> again =
            net::encodeGoal(arena, decoded);
        EXPECT_EQ(bytes, again) << text;
    }
}

TEST_F(GoalCodecTest, TruncatedStreamsAreTyped)
{
    term::ParsedTerm goal =
        reader.parseTerm("p(f(X, [1, 2]), g(X), h(a))");
    std::vector<std::uint8_t> bytes =
        net::encodeGoal(goal.arena, goal.root);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        std::vector<std::uint8_t> damaged(bytes.begin(),
                                          bytes.begin() + cut);
        term::TermArena arena;
        EXPECT_THROW(net::decodeGoal(damaged, sym, arena, "test"),
                     CorruptionError)
            << "cut at " << cut;
    }

    // Trailing garbage is also a malformed stream, not ignored.
    std::vector<std::uint8_t> extra = bytes;
    extra.push_back(0);
    term::TermArena arena;
    EXPECT_THROW(net::decodeGoal(extra, sym, arena, "test"),
                 CorruptionError);
}

TEST_F(GoalCodecTest, OverLimitTermsFailAtTheSender)
{
    // Arity past the 5-bit PIF field cannot travel.
    std::string wide = "p(a0";
    for (int i = 1; i < 40; ++i)
        wide += ", a" + std::to_string(i);
    wide += ")";
    term::ParsedTerm goal = reader.parseTerm(wide);
    EXPECT_THROW(net::encodeGoal(goal.arena, goal.root), Error);
}

// ---------------------------------------------------------------------
// Live loopback cluster.
// ---------------------------------------------------------------------

/** One in-process backend: its own copy of the persisted schema. */
struct Backend
{
    term::SymbolTable symbols;
    std::unique_ptr<crs::PredicateStore> store;
    std::unique_ptr<crs::ClauseRetrievalServer> server;
    std::unique_ptr<net::NetServer> net;
};

class NetClusterTest : public ::testing::Test
{
  protected:
    std::string dir_ = ::testing::TempDir() + "clare_net_store";
    term::SymbolTable sym_;
    term::Program program_;
    std::vector<workload::GeneratedQuery> queries_;
    std::unique_ptr<crs::PredicateStore> store_;
    /** The local reference: the same single authoritative serve(). */
    std::unique_ptr<crs::ClauseRetrievalServer> local_;
    std::vector<std::unique_ptr<Backend>> backends_;

    void
    SetUp() override
    {
        std::filesystem::remove_all(dir_);

        workload::KbGenerator kbgen(sym_);
        workload::KbSpec spec;
        spec.predicates = 3;
        spec.clausesPerPredicate = 48;
        spec.arityMin = 2;
        spec.arityMax = 3;
        spec.atomVocabulary = 40;
        spec.seed = 17;
        program_ = kbgen.generate(spec);

        // Queries BEFORE saveStore so their symbols persist in the
        // shared schema every backend loads.
        workload::QuerySpec qspec;
        qspec.seed = 9;
        qspec.boundArgProb = 0.7;
        workload::QueryGenerator qgen(sym_, qspec);
        Rng rng(5);
        for (int i = 0; i < 12; ++i) {
            const auto &pred = program_.predicates()[
                rng.below(program_.predicates().size())];
            queries_.push_back(qgen.generate(program_, pred));
        }

        store_ = std::make_unique<crs::PredicateStore>(
            sym_, scw::CodewordGenerator{});
        store_->addProgram(program_);
        store_->finalize();
        crs::saveStore(dir_, *store_, sym_);
        local_ = std::make_unique<crs::ClauseRetrievalServer>(
            sym_, *store_);
    }

    void
    TearDown() override
    {
        for (auto &b : backends_)
            if (b->net)
                b->net->stop();
        backends_.clear();
        std::filesystem::remove_all(dir_);
    }

    Backend &
    spawnBackend(crs::CrsConfig crs_config = {},
                 net::NetServerConfig net_config = {})
    {
        auto b = std::make_unique<Backend>();
        b->store = std::make_unique<crs::PredicateStore>(
            crs::loadStore(dir_, b->symbols));
        b->server = std::make_unique<crs::ClauseRetrievalServer>(
            b->symbols, *b->store, crs_config);
        b->net = std::make_unique<net::NetServer>(
            b->symbols, *b->store, *b->server, net_config);
        b->net->start();
        backends_.push_back(std::move(b));
        return *backends_.back();
    }

    crs::RetrievalResponse
    serveLocal(const workload::GeneratedQuery &q,
               std::optional<crs::SearchMode> mode)
    {
        crs::RetrievalRequest request;
        request.arena = &q.arena;
        request.goal = q.goal;
        request.mode = mode;
        return local_->serve(request);
    }
};

TEST_F(NetClusterTest, LoopbackServeIsBitIdenticalToLocal)
{
    Backend &backend = spawnBackend();
    net::NetClient client(backend.net->port(), "test-client");

    const std::optional<crs::SearchMode> modes[] = {
        std::nullopt, crs::SearchMode::SoftwareOnly,
        crs::SearchMode::Fs1Only, crs::SearchMode::Fs2Only,
        crs::SearchMode::TwoStage};
    for (const workload::GeneratedQuery &q : queries_) {
        for (const auto &mode : modes) {
            crs::RetrievalRequest request;
            request.arena = &q.arena;
            request.goal = q.goal;
            request.mode = mode;
            crs::RetrievalResponse wire = client.serve(request);
            crs::RetrievalResponse ref = serveLocal(q, mode);
            EXPECT_TRUE(net::responsesIdentical(wire, ref));
            EXPECT_EQ(wire.elapsed, ref.elapsed);
            EXPECT_EQ(wire.breakdown.indexTime, ref.breakdown.indexTime);
        }
    }
}

TEST_F(NetClusterTest, HealthProbeAnswersJson)
{
    Backend &backend = spawnBackend();
    net::NetClient client(backend.net->port(), "test-client");
    json::Value health = client.health();
    const json::Value *status = health.find("status");
    ASSERT_NE(status, nullptr);
    EXPECT_EQ(status->str(), "ok");
    const json::Value *predicates = health.find("predicates");
    ASSERT_NE(predicates, nullptr);
    EXPECT_EQ(static_cast<std::size_t>(predicates->number()),
              store_->predicates().size());
}

TEST_F(NetClusterTest, PoisonedReplicaIsInvisibleThroughTheRouter)
{
    // Backend 2's disk is poisoned: half its index page reads flip a
    // bit, so its own retrievals degrade (full FS2 scan fallback).
    // With replication 3 the router holds any degraded answer and
    // hunts a clean replica — every response through the router must
    // be bit-identical to the clean local serve(), degraded flag
    // included.
    support::FaultConfig fault_config;
    fault_config.seed = 42;
    fault_config.bitFlipRate = 0.5;
    support::FaultInjector injector(fault_config);
    crs::CrsConfig poisoned;
    poisoned.faults = &injector;

    spawnBackend();
    spawnBackend();
    spawnBackend(poisoned);

    net::RouterConfig router_config;
    for (auto &b : backends_)
        router_config.backendPorts.push_back(b->net->port());
    router_config.replication = 3;
    router_config.backendTimeoutMillis = 1000;
    net::Router router(router_config);
    router.start();

    net::NetClient client(router.port(), "test-client");
    for (const workload::GeneratedQuery &q : queries_) {
        for (crs::SearchMode mode : {crs::SearchMode::Fs1Only,
                                     crs::SearchMode::TwoStage}) {
            crs::RetrievalRequest request;
            request.arena = &q.arena;
            request.goal = q.goal;
            request.mode = mode;
            crs::RetrievalResponse wire = client.serve(request);
            crs::RetrievalResponse ref = serveLocal(q, mode);
            EXPECT_TRUE(net::responsesIdentical(wire, ref));
            EXPECT_FALSE(wire.degraded);
        }
    }
    EXPECT_GT(router.metrics().counter("router.relayed").value(), 0u);
    router.stop();
}

TEST_F(NetClusterTest, RouterShardsByPredicate)
{
    spawnBackend();
    spawnBackend();
    spawnBackend();
    net::RouterConfig router_config;
    for (auto &b : backends_)
        router_config.backendPorts.push_back(b->net->port());
    router_config.replication = 2;
    net::Router router(router_config);

    // The replica set is a pure function of the predicate: same
    // predicate -> same replicas (cache locality), and some pair of
    // predicates must land on different primaries with 3 backends.
    bool spread = false;
    std::vector<std::uint32_t> first;
    for (const term::PredicateId &pred : store_->predicates()) {
        std::vector<std::uint32_t> replicas = router.replicasOf(pred);
        ASSERT_EQ(replicas.size(), 2u);
        EXPECT_EQ(replicas, router.replicasOf(pred));
        if (first.empty())
            first = replicas;
        else if (replicas != first)
            spread = true;
    }
    EXPECT_TRUE(spread);
}

TEST_F(NetClusterTest, WireFaultsSurfaceTypedAndNeverWrong)
{
    // A hostile wire on the backend's outbound leg: drops, truncations,
    // bit flips, and delays, drawn per frame from the seeded oracle.
    // Every client call must either succeed with the bit-identical
    // response or throw the typed taxonomy; after a transport error the
    // client reconnects and continues.
    support::FaultConfig fault_config;
    fault_config.seed = 2027;
    fault_config.frameDropRate = 0.08;
    fault_config.frameTruncateRate = 0.08;
    fault_config.frameCorruptRate = 0.10;
    fault_config.frameDelayRate = 0.05;
    fault_config.frameDelayMillis = 5;
    support::FaultInjector injector(fault_config);
    net::NetServerConfig net_config;
    net_config.wireFaults = &injector;

    Backend &backend = spawnBackend({}, net_config);
    net::NetClient client(backend.net->port(), "test-client", 500);

    int ok = 0, transport = 0, corrupt = 0;
    for (int round = 0; round < 60; ++round) {
        const workload::GeneratedQuery &q =
            queries_[round % queries_.size()];
        crs::RetrievalRequest request;
        request.arena = &q.arena;
        request.goal = q.goal;
        request.mode = crs::SearchMode::TwoStage;
        try {
            crs::RetrievalResponse wire = client.serve(request);
            EXPECT_TRUE(net::responsesIdentical(
                wire, serveLocal(q, crs::SearchMode::TwoStage)));
            ++ok;
        } catch (const CorruptionError &) {
            ++corrupt;
        } catch (const IoError &) {
            ++transport;
        }
    }
    // The sweep is deterministic per seed; with these rates all three
    // outcomes must appear, and served answers were all identical.
    EXPECT_GT(ok, 0);
    EXPECT_GT(transport, 0);
    EXPECT_GT(corrupt, 0);
}

TEST_F(NetClusterTest, RouterFailsOverAHostileWire)
{
    // Backend 1 answers through a faulty wire; backend 2 is clean.
    // With replication 2 the router absorbs every wire fault as a
    // failover, so the client sees only clean, bit-identical answers.
    support::FaultConfig fault_config;
    fault_config.seed = 11;
    fault_config.frameDropRate = 0.2;
    fault_config.frameCorruptRate = 0.2;
    support::FaultInjector injector(fault_config);
    net::NetServerConfig faulty_wire;
    faulty_wire.wireFaults = &injector;

    spawnBackend({}, faulty_wire);
    spawnBackend();

    net::RouterConfig router_config;
    for (auto &b : backends_)
        router_config.backendPorts.push_back(b->net->port());
    router_config.replication = 2;
    router_config.backendTimeoutMillis = 300;
    net::Router router(router_config);
    router.start();

    net::NetClient client(router.port(), "test-client", 5000);
    for (const workload::GeneratedQuery &q : queries_) {
        crs::RetrievalRequest request;
        request.arena = &q.arena;
        request.goal = q.goal;
        request.mode = crs::SearchMode::TwoStage;
        crs::RetrievalResponse wire = client.serve(request);
        EXPECT_TRUE(net::responsesIdentical(
            wire, serveLocal(q, crs::SearchMode::TwoStage)));
    }
    router.stop();
}

TEST_F(NetClusterTest, AdmissionControlShedsExcessConnections)
{
    net::NetServerConfig net_config;
    net_config.maxConnections = 1;
    Backend &backend = spawnBackend({}, net_config);

    // First client occupies the only slot.
    net::NetClient first(backend.net->port(), "first", 1000);
    crs::RetrievalRequest request;
    request.arena = &queries_[0].arena;
    request.goal = queries_[0].goal;
    ASSERT_NO_THROW(first.serve(request));

    // The second connection is shed at the door: Error(Overloaded) if
    // the goodbye frame arrives, IoError if the close races it.
    net::NetClient second(backend.net->port(), "second", 1000);
    bool shed = false;
    try {
        second.serve(request);
    } catch (const net::RemoteError &e) {
        shed = e.code() == net::ErrorCode::Overloaded;
    } catch (const IoError &) {
        shed = true;
    }
    EXPECT_TRUE(shed);

    // The first client's slot still works.
    EXPECT_NO_THROW(first.serve(request));
}

TEST_F(NetClusterTest, BadRequestAnswersTypedAndKeepsConnection)
{
    Backend &backend = spawnBackend();
    net::ClientStream stream(backend.net->port(), "raw-client", 1000);

    // Garbage that passes the frame CRC but fails request validation.
    net::ReceivedFrame reply = stream.call(
        net::FrameType::Request, {0xde, 0xad, 0xbe, 0xef});
    ASSERT_EQ(reply.type, net::FrameType::Error);
    EXPECT_EQ(net::decodeError(reply.payload, "raw").code,
              net::ErrorCode::BadRequest);

    // An unknown predicate is validated before serve() can fault.
    net::WireRequest unknown_pred;
    unknown_pred.id = 1;
    unknown_pred.predicate = term::PredicateId{999999, 7};
    term::TermReader reader(sym_);
    term::ParsedTerm goal = reader.parseTerm("zzz_not_stored(a)");
    unknown_pred.goalPif = net::encodeGoal(goal.arena, goal.root);
    reply = stream.call(net::FrameType::Request,
                        net::encodeRequest(unknown_pred));
    ASSERT_EQ(reply.type, net::FrameType::Error);
    EXPECT_EQ(net::decodeError(reply.payload, "raw").code,
              net::ErrorCode::BadRequest);

    // Same connection, now a well-formed request: still served.
    const workload::GeneratedQuery &q = queries_[0];
    net::WireRequest good;
    good.id = 2;
    good.predicate =
        q.arena.kind(q.goal) == term::TermKind::Atom
            ? term::PredicateId{q.arena.atomSymbol(q.goal), 0}
            : term::PredicateId{q.arena.functor(q.goal),
                                q.arena.arity(q.goal)};
    good.goalPif = net::encodeGoal(q.arena, q.goal);
    reply = stream.call(net::FrameType::Request,
                        net::encodeRequest(good));
    ASSERT_EQ(reply.type, net::FrameType::Response);
    net::WireResponse wire = net::decodeResponse(reply.payload, "raw");
    EXPECT_EQ(wire.id, 2u);
    EXPECT_TRUE(net::responsesIdentical(wire.response,
                                        serveLocal(q, std::nullopt)));
}

// ---------------------------------------------------------------------
// Router event-loop and shed-path regressions.
// ---------------------------------------------------------------------

TEST_F(NetClusterTest, HungBackendProbeDoesNotStallUnrelatedClients)
{
    // Backend 1 is a bound listener that never accepts: a connect
    // parks in the backlog and a Health probe hangs until the backend
    // timeout.  Probes run on a dedicated thread, so the hang must
    // cost the event loop nothing — requests routed to the healthy
    // backend 0 keep completing while the probe thread waits out its
    // timeout.  (The regression: probes used to run inline on the
    // epoll thread, stalling every client for backendTimeoutMillis.)
    Backend &healthy = spawnBackend();
    net::Listener hung(0);

    net::RouterConfig router_config;
    router_config.backendPorts = {healthy.net->port(), hung.port()};
    router_config.backendTimeoutMillis = 1500;
    router_config.probeIntervalMillis = 50;
    net::Router router(router_config);

    // Pin every predicate to backend 0 so no request touches the
    // hung backend — only the probe thread does.
    net::ShardCatalog catalog;
    for (const term::PredicateId &pred : store_->predicates())
        catalog.assign(pred, 0);
    catalog.setReplicas(0, {0});
    router.setCatalog(catalog);
    router.start();

    // Let the probe thread enter its first hang.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));

    net::NetClient client(router.port(), "test-client", 5000);
    auto begin = std::chrono::steady_clock::now();
    for (int round = 0; round < 10; ++round) {
        const workload::GeneratedQuery &q = queries_[
            static_cast<std::size_t>(round) % queries_.size()];
        crs::RetrievalRequest request;
        request.arena = &q.arena;
        request.goal = q.goal;
        crs::RetrievalResponse wire = client.serve(request);
        EXPECT_TRUE(net::responsesIdentical(
            wire, serveLocal(q, std::nullopt)));
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - begin);
    // Well under one backend timeout: a single inline probe stall
    // would already blow this budget.
    EXPECT_LT(elapsed.count(), 1200);
    router.stop();
}

TEST_F(NetClusterTest, RouterShedsWithACompleteErrorFrame)
{
    Backend &backend = spawnBackend();
    net::RouterConfig router_config;
    router_config.backendPorts = {backend.net->port()};
    router_config.maxConnections = 0; // every accept is shed
    net::Router router(router_config);
    router.start();

    // The goodbye must be a complete, decodable Error(Overloaded)
    // frame — never a torn header the client reports as corruption.
    // (The regression: the shed path used a single ::send and could
    // emit a partial frame.)
    for (int i = 0; i < 8; ++i) {
        net::NetClient client(router.port(), "shed-client", 1000);
        crs::RetrievalRequest request;
        request.arena = &queries_[0].arena;
        request.goal = queries_[0].goal;
        try {
            client.serve(request);
            FAIL() << "expected the shed goodbye";
        } catch (const net::RemoteError &e) {
            EXPECT_EQ(e.code(), net::ErrorCode::Overloaded);
        } catch (const IoError &) {
            // Close raced the send before the frame hit the socket —
            // acceptable; a CorruptionError (torn frame) is not.
        }
    }
    EXPECT_GT(router.metrics().counter("router.shed").value(), 0u);
    router.stop();
}

TEST_F(NetClusterTest, FailoversAndDegradedRetriesCountSeparately)
{
    // Replica order [poisoned, clean]: every degraded reply from the
    // poisoned replica is held while the clean twin is tried.  Those
    // hunts are degraded_retries, NOT failovers — nothing failed.
    support::FaultConfig fault_config;
    fault_config.seed = 42;
    fault_config.bitFlipRate = 0.5;
    support::FaultInjector injector(fault_config);
    crs::CrsConfig poisoned;
    poisoned.faults = &injector;
    spawnBackend(poisoned);
    spawnBackend();

    net::ShardCatalog catalog;
    for (const term::PredicateId &pred : store_->predicates())
        catalog.assign(pred, 0);

    {
        catalog.setReplicas(0, {0, 1});
        net::RouterConfig router_config;
        router_config.backendPorts = {backends_[0]->net->port(),
                                      backends_[1]->net->port()};
        router_config.probeIntervalMillis = 10000; // no probe interference
        net::Router router(router_config);
        router.setCatalog(catalog);
        router.start();

        net::NetClient client(router.port(), "test-client");
        for (const workload::GeneratedQuery &q : queries_) {
            crs::RetrievalRequest request;
            request.arena = &q.arena;
            request.goal = q.goal;
            request.mode = crs::SearchMode::Fs1Only;
            crs::RetrievalResponse wire = client.serve(request);
            EXPECT_TRUE(net::responsesIdentical(
                wire, serveLocal(q, crs::SearchMode::Fs1Only)));
        }
        EXPECT_GT(
            router.metrics().counter("router.degraded_retries").value(),
            0u);
        EXPECT_EQ(router.metrics().counter("router.failovers").value(),
                  0u);
        router.stop();
    }

    // Replica order [dead, clean]: the connect failure is a real
    // failover and must not count as a degraded retry.
    std::uint16_t deadPort;
    {
        net::Listener ephemeral(0);
        deadPort = ephemeral.port();
    } // closed: connections now refused
    {
        net::RouterConfig router_config;
        router_config.backendPorts = {deadPort,
                                      backends_[1]->net->port()};
        router_config.backendTimeoutMillis = 500;
        router_config.probeIntervalMillis = 10000;
        net::Router router(router_config);
        router.setCatalog(catalog);
        router.start();

        net::NetClient client(router.port(), "test-client");
        crs::RetrievalRequest request;
        request.arena = &queries_[0].arena;
        request.goal = queries_[0].goal;
        crs::RetrievalResponse wire = client.serve(request);
        EXPECT_TRUE(net::responsesIdentical(
            wire, serveLocal(queries_[0], std::nullopt)));
        EXPECT_GT(router.metrics().counter("router.failovers").value(),
                  0u);
        EXPECT_EQ(
            router.metrics().counter("router.degraded_retries").value(),
            0u);
        router.stop();
    }
}

} // namespace
} // namespace clare
