/**
 * @file
 * A Warren-profile knowledge base ("3000 predicates, 30000 rules,
 * 3000000 facts, 30 Mbytes") scaled down to run in seconds, stored
 * through the CRS, and exercised with a mixed query workload.  The
 * example reports aggregate retrieval statistics per search mode —
 * the benchmark style of Williams/Massey/Crammond [6,7] the paper
 * says the finished hardware would be evaluated with.
 */

#include <cstdio>

#include "crs/server.hh"
#include "support/logging.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

int
main()
{
    using namespace clare;
    setQuiet(true);

    // Warren's ratios at 1/100 scale: 30 predicates x 1000 facts with
    // ~1% rules.
    term::SymbolTable sym;
    workload::KbGenerator generator(sym);
    workload::KbSpec spec = workload::KbSpec::warren(
        /*facts_per_predicate=*/1000, /*predicates=*/30);
    term::Program program = generator.generate(spec);

    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();
    crs::ClauseRetrievalServer server(sym, store);

    std::printf("Warren-profile KB (1/100 scale): %zu clauses, "
                "%zu predicates\n", program.size(),
                program.predicates().size());
    std::printf("clause files: %llu KB, secondary (index) files: "
                "%llu KB\n\n",
                static_cast<unsigned long long>(
                    store.dataBytes() / 1024),
                static_cast<unsigned long long>(
                    store.indexBytes() / 1024));

    // A mixed query workload over random predicates.
    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.55;
    qspec.sharedVarProb = 0.25;
    qspec.perturbProb = 0.05;
    qspec.seed = 2;
    workload::QueryGenerator qgen(sym, qspec);

    constexpr int kQueries = 40;
    Rng pick(77);

    struct Totals
    {
        std::uint64_t candidates = 0;
        std::uint64_t answers = 0;
        Tick elapsed = 0;
    };
    Totals totals[4];
    std::uint64_t auto_uses[4] = {};

    for (int i = 0; i < kQueries; ++i) {
        const term::PredicateId &pred =
            program.predicates()[pick.below(
                program.predicates().size())];
        workload::GeneratedQuery q = qgen.generate(program, pred);

        ++auto_uses[static_cast<std::size_t>(
            server.selectMode(q.arena, q.goal))];

        for (crs::SearchMode mode : {crs::SearchMode::SoftwareOnly,
                                     crs::SearchMode::Fs1Only,
                                     crs::SearchMode::Fs2Only,
                                     crs::SearchMode::TwoStage}) {
            crs::RetrievalRequest request;
            request.arena = &q.arena;
            request.goal = q.goal;
            request.mode = mode;
            crs::RetrievalResponse r = server.serve(request);
            Totals &t = totals[static_cast<std::size_t>(mode)];
            t.candidates += r.candidates.size();
            t.answers += r.answers.size();
            t.elapsed += r.elapsed;
        }
    }

    std::printf("%d random queries, every mode (answers are identical "
                "by construction):\n\n", kQueries);
    std::printf("%-16s %12s %9s %14s %16s\n", "mode", "candidates",
                "answers", "mean elapsed", "auto-selected");
    for (std::size_t m = 0; m < 4; ++m) {
        const Totals &t = totals[m];
        std::printf("%-16s %12llu %9llu %11.2f ms %13llu/%d\n",
                    crs::searchModeName(
                        static_cast<crs::SearchMode>(m)),
                    static_cast<unsigned long long>(t.candidates),
                    static_cast<unsigned long long>(t.answers),
                    static_cast<double>(t.elapsed) /
                        (kQueries * kMillisecond),
                    static_cast<unsigned long long>(auto_uses[m]),
                    kQueries);
    }

    std::printf("\nshape: the hardware modes trade index scans for "
                "candidate-set quality; the\nCRS heuristic routes each "
                "query to the mode its variable pattern calls for.\n");
    return 0;
}
