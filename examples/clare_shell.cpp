/**
 * @file
 * An interactive shell over the integrated knowledge base: a tiny
 * Prolog top level whose clause retrieval runs through the CLARE
 * stack for large predicates.
 *
 * Commands:
 *   ?- goal1, goal2.        run a query (prints bindings)
 *   :consult file.pl        consult a program file
 *   :assert clause.         add one clause (before compilation)
 *   :compile                classify predicates, build the store
 *   :stats                  retrieval statistics of the last query
 *   :listing                print the consulted program
 *   :halt                   leave
 *
 * Anything else is treated as a query.  Non-interactive use:
 *   echo 'p(a). % ...' > kb.pl
 *   printf ':consult kb.pl\n?- p(X).\n:halt\n' | ./clare_shell
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "kb/knowledge_base.hh"
#include "kb/resolution.hh"
#include "support/logging.hh"
#include "term/term_writer.hh"

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

int
main()
{
    using namespace clare;

    kb::KbConfig config;
    config.largeThreshold = 64;
    kb::KnowledgeBase base(config);
    kb::Solver solver(base);
    kb::SolveStats last_stats;

    std::printf("CLARE shell — type ':halt' to leave, '?- goal.' to "
                "query.\n");
    std::string line;
    while (true) {
        std::printf("clare> ");
        std::fflush(stdout);
        if (!std::getline(std::cin, line))
            break;
        std::string input = trim(line);
        if (input.empty())
            continue;

        try {
            if (input == ":halt" || input == "halt.") {
                break;
            } else if (input.rfind(":consult ", 0) == 0) {
                std::string path = trim(input.substr(9));
                std::ifstream in(path);
                if (!in) {
                    std::printf("cannot open '%s'\n", path.c_str());
                    continue;
                }
                std::stringstream buffer;
                buffer << in.rdbuf();
                base.consult(buffer.str());
                std::printf("consulted '%s' (%zu clauses total)\n",
                            path.c_str(), base.clauseCount());
            } else if (input.rfind(":assert ", 0) == 0) {
                base.consult(input.substr(8));
                std::printf("ok (%zu clauses)\n", base.clauseCount());
            } else if (input == ":compile") {
                base.compile();
                std::size_t large = 0;
                for (const auto &pred : base.program().predicates())
                    large += base.isLarge(pred) ? 1 : 0;
                std::printf("compiled: %zu predicate(s) disk-resident "
                            "behind CLARE\n", large);
            } else if (input == ":listing") {
                term::TermWriter writer(base.symbols());
                for (std::size_t i = 0; i < base.clauseCount(); ++i)
                    std::printf("%s\n",
                                writer.writeClause(
                                    base.program().clause(i)).c_str());
            } else if (input == ":stats") {
                std::printf("last query: %llu steps, %llu CLARE "
                            "retrievals, %llu candidates, %llu false "
                            "drops, retrieval time %.2f ms\n",
                            static_cast<unsigned long long>(
                                last_stats.steps),
                            static_cast<unsigned long long>(
                                last_stats.retrievals),
                            static_cast<unsigned long long>(
                                last_stats.candidatesRetrieved),
                            static_cast<unsigned long long>(
                                last_stats.retrievalFalseDrops),
                            static_cast<double>(
                                last_stats.retrievalTime) /
                                kMillisecond);
            } else {
                // A query (with or without the "?-" prefix).
                kb::SolveOptions options;
                options.maxSolutions = 10;
                auto solutions = solver.solve(input, options);
                last_stats = solver.stats();
                if (solutions.empty()) {
                    std::printf("no.\n");
                } else {
                    for (const auto &s : solutions) {
                        if (s.bindings.empty()) {
                            std::printf("yes.\n");
                            break;
                        }
                        std::string sep;
                        for (const auto &kv : s.bindings) {
                            std::printf("%s%s = %s", sep.c_str(),
                                        kv.first.c_str(),
                                        kv.second.c_str());
                            sep = ", ";
                        }
                        std::printf("\n");
                    }
                    if (solutions.size() >= options.maxSolutions)
                        std::printf("... (stopped after %llu)\n",
                                    static_cast<unsigned long long>(
                                        options.maxSolutions));
                }
            }
        } catch (const FatalError &e) {
            std::printf("error: %s\n", e.what());
        }
    }
    std::printf("bye.\n");
    return 0;
}
