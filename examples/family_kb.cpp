/**
 * @file
 * The paper's motivating scenario: a family knowledge base with the
 * married_couple predicate, queried with the shared-variable query
 * married_couple(Same_surname, Same_surname) that defeats codeword
 * indexing (section 2.1) and is rescued by FS2's cross-binding checks
 * (section 2.2).
 *
 * The example drives the CLARE board through the documented host
 * sequence and compares all four CRS search modes on the pathological
 * query.
 */

#include <cstdio>

#include "clare/board.hh"
#include "crs/server.hh"
#include "support/logging.hh"
#include "term/term_reader.hh"
#include "workload/kb_generator.hh"

int
main()
{
    using namespace clare;
    setQuiet(true);

    // A synthetic family KB: ~1000 couples, ~2% of them "reflexive"
    // (the true answers), parent/person facts and ancestor rules.
    term::SymbolTable sym;
    workload::KbGenerator generator(sym);
    term::Program program = generator.generateFamily(1000, /*seed=*/11);

    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();
    crs::ClauseRetrievalServer server(sym, store);

    term::PredicateId married{sym.lookup("married_couple"), 2};
    std::printf("family KB: %zu clauses total, %zu married_couple "
                "facts (%llu KB on disk)\n\n",
                program.size(), program.clausesOf(married).size(),
                static_cast<unsigned long long>(
                    store.dataBytes() / 1024));

    // The pathological query.
    term::TermReader reader(sym);
    term::ParsedTerm query =
        reader.parseTerm("married_couple(Same_surname, Same_surname)");

    std::printf("query: married_couple(Same_surname, Same_surname)\n");
    std::printf("%-16s %12s %9s %9s %12s\n", "mode", "candidates",
                "answers", "FD rate", "elapsed");
    for (crs::SearchMode mode : {crs::SearchMode::SoftwareOnly,
                                 crs::SearchMode::Fs1Only,
                                 crs::SearchMode::Fs2Only,
                                 crs::SearchMode::TwoStage}) {
        crs::RetrievalRequest request;
        request.arena = &query.arena;
        request.goal = query.root;
        request.mode = mode;
        crs::RetrievalResponse r = server.serve(request);
        std::printf("%-16s %12zu %9zu %9.3f %9.2f ms\n",
                    crs::searchModeName(mode), r.candidates.size(),
                    r.answers.size(), r.falseDropRate(),
                    static_cast<double>(r.elapsed) / kMillisecond);
    }
    std::printf("\nCRS auto-selects: %s (shared variables are "
                "invisible to the codeword index)\n\n",
                crs::searchModeName(
                    server.selectMode(query.arena, query.root)));

    // Drive the board directly, the way the device driver would.
    const crs::StoredPredicate &stored = store.predicate(married);
    engine::ClareBoard board{scw::CodewordGenerator{}};
    engine::ClareDriver driver(board);
    fs2::Fs2SearchResult hw = driver.fs2Search(query.arena, query.root,
                                               stored.clauses);
    std::printf("raw FS2 board search: %llu clauses examined, %u "
                "satisfiers captured,\ncontrol register b7=%d, TUE busy "
                "%.2f ms, %llu microinstructions\n",
                static_cast<unsigned long long>(hw.clausesExamined),
                hw.satisfiers,
                (board.read8(engine::kVmeWindowBase) & 0x80) ? 1 : 0,
                static_cast<double>(hw.tueBusyTime) / kMillisecond,
                static_cast<unsigned long long>(hw.microInstructions));

    std::printf("\nfirst few satisfiers (Read Result mode):\n");
    for (std::uint32_t i = 0; i < hw.satisfiers && i < 5; ++i) {
        std::printf("  %s\n",
                    stored.clauses.sourceText(
                        hw.acceptedOrdinals[i]).c_str());
    }
    return 0;
}
