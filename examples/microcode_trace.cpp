/**
 * @file
 * A look inside the FS2: disassembles the matching microprogram the
 * query is translated into, dumps the compiled PIF streams for a
 * clause/query pair, and traces every TUE datapath operation — which
 * selectors route what, how long each figure-6..12 route takes — while
 * the engine filters a handful of clauses, including the paper's
 * f(X,a,b) vs f(A,a,A) cross-binding example.
 */

#include <cstdio>

#include "fs2/fs2_engine.hh"
#include "pif/encoder.hh"
#include "storage/clause_file.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"

int
main()
{
    using namespace clare;

    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);

    // The clause set, including the section-3.3.6 example clause.
    const char *program_text =
        "f(A, a, A).\n"
        "f(b, a, c).\n"
        "f(g(1, 2), a, [x, y]).\n";
    storage::ClauseFileBuilder builder(writer);
    for (const auto &clause : reader.parseProgram(program_text))
        builder.add(clause);
    storage::ClauseFile file = builder.finish();

    // The section-3.3.6 query.
    term::ParsedQuery query = reader.parseQuery("f(X, a, b)");

    // --- the microprogram the query is translated into --------------
    fs2::Fs2Engine engine;
    engine.setQuery(query.arena, query.goals[0]);

    std::printf("microprogram (%zu words of the %zu-word WCS, entry "
                "@%03x):\n\n", engine.microprogram().size(),
                fs2::kControlStoreWords, engine.microprogram().entry);
    for (std::size_t addr = 0; addr < engine.microprogram().size();
         ++addr) {
        fs2::MicroInstruction insn = fs2::MicroInstruction::decode(
            engine.microprogram().words[addr]);
        std::printf("  %03zx: %016llx  %s\n", addr,
                    static_cast<unsigned long long>(
                        engine.microprogram().words[addr]),
                    insn.disassemble().c_str());
    }

    // --- the compiled PIF streams ------------------------------------
    pif::Encoder encoder;
    std::printf("\nquery  f(X, a, b) compiles to (Query Memory):\n");
    pif::EncodedArgs qargs = encoder.encodeArgs(query.arena,
                                                query.goals[0],
                                                pif::Side::Query);
    for (const auto &item : qargs.items)
        std::printf("  %s\n", item.toString().c_str());

    for (std::size_t c = 0; c < file.clauseCount(); ++c) {
        std::printf("\nclause %zu  %s compiles to:\n", c,
                    file.sourceText(c).c_str());
        for (const auto &item : file.decodeArgs(c).items)
            std::printf("  %s\n", item.toString().c_str());
    }

    // --- the search, with the TUE datapath trace on ------------------
    engine.tue().setTracing(true);
    fs2::Fs2SearchResult result = engine.search(file);

    std::printf("\nTUE datapath trace (%zu operations):\n",
                engine.tue().trace().size());
    for (const auto &entry : engine.tue().trace()) {
        std::printf("\n  %s  (%llu ns)  db=%s  query=%s  -> %s\n",
                    tueOpName(entry.op),
                    static_cast<unsigned long long>(entry.timeNs),
                    entry.dbItem.toString().c_str(),
                    entry.queryItem.toString().c_str(),
                    entry.hit ? "HIT" : "MISS");
        std::printf("    %s\n", entry.route.c_str());
    }

    std::printf("\nresult: clauses accepted =");
    for (std::uint32_t o : result.acceptedOrdinals)
        std::printf(" %u", o);
    std::printf("  (clause 0 via the DB_CROSS_BOUND_FETCH of figure "
                "11)\n");
    std::printf("TUE busy %llu ns over %llu clauses; %llu "
                "microinstructions executed\n",
                static_cast<unsigned long long>(
                    toNanoseconds(result.tueBusyTime)),
                static_cast<unsigned long long>(result.clausesExamined),
                static_cast<unsigned long long>(
                    result.microInstructions));
    return 0;
}
