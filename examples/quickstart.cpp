/**
 * @file
 * Quickstart: consult a small program, compile the big predicate to
 * the disk-resident store, and run queries through the full stack —
 * parser, knowledge base, CLARE retrieval, and SLD resolution.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "kb/knowledge_base.hh"
#include "kb/resolution.hh"

int
main()
{
    using namespace clare;

    // 1. A knowledge base whose predicates become disk-resident once
    //    they reach 8 clauses (absurdly low, to show the machinery).
    kb::KbConfig config;
    config.largeThreshold = 8;
    kb::KnowledgeBase base(config);

    // 2. Consult a program: facts and rules, in source order, mixed
    //    relations allowed.
    base.consult(R"prolog(
        % A small route network.
        edge(edinburgh, glasgow, 76).
        edge(edinburgh, newcastle, 193).
        edge(glasgow, carlisle, 157).
        edge(newcastle, carlisle, 94).
        edge(carlisle, manchester, 193).
        edge(manchester, birmingham, 139).
        edge(birmingham, london, 190).
        edge(newcastle, leeds, 150).
        edge(leeds, manchester, 70).
        edge(glasgow, glasgow, 0).          % a reflexive edge

        % Reachability rules (a mixed, recursive predicate).
        path(A, B) :- edge(A, B, _).
        path(A, B) :- edge(A, C, _), path(C, B).
    )prolog");

    // 3. Compile: edge/3 (10 clauses) goes to the CLARE-backed store;
    //    path/2 stays in memory.
    base.compile();
    std::printf("knowledge base: %zu clauses; edge/3 is %s\n\n",
                base.clauseCount(),
                base.isLarge(term::PredicateId{
                    base.symbols().lookup("edge"), 3})
                    ? "disk-resident (retrieved via CLARE)"
                    : "in memory");

    // 4. Ask queries.
    kb::Solver solver(base);

    std::printf("?- edge(edinburgh, Where, Miles).\n");
    for (const auto &s : solver.solve("edge(edinburgh, Where, Miles)"))
        std::printf("   Where = %s, Miles = %s\n",
                    s.bindings.at("Where").c_str(),
                    s.bindings.at("Miles").c_str());

    std::printf("\n?- edge(X, X, _).        %% shared variable\n");
    for (const auto &s : solver.solve("edge(X, X, _)"))
        std::printf("   X = %s\n", s.bindings.at("X").c_str());

    std::printf("\n?- path(edinburgh, london).\n");
    kb::SolveOptions one;
    one.maxSolutions = 1;
    auto reachable = solver.solve("path(edinburgh, london)", one);
    std::printf("   %s\n", reachable.empty() ? "no" : "yes");

    // 5. What did CLARE do for us?
    const kb::SolveStats &stats = solver.stats();
    std::printf("\nlast query: %llu CLARE retrievals, %llu candidates, "
                "%llu false drops,\nmodeled retrieval latency %llu us\n",
                static_cast<unsigned long long>(stats.retrievals),
                static_cast<unsigned long long>(
                    stats.candidatesRetrieved),
                static_cast<unsigned long long>(
                    stats.retrievalFalseDrops),
                static_cast<unsigned long long>(
                    stats.retrievalTime / kMicrosecond));
    return 0;
}
