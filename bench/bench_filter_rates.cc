/**
 * @file
 * Experiment R1 — the section-4 rate argument: FS1 scans at up to
 * 4.5 MB/s, FS2's worst case is ~4.25 MB/s (one 235 ns operation per
 * byte, the paper's accounting), and both exceed the ~2 MB/s peak SMD
 * disk rate, so the filters keep up with the disk.
 *
 * Beyond reproducing the arithmetic, this harness sweeps operation
 * mixes (per-op filter rates under the paper's per-byte convention),
 * reports the *effective* rate of the simulated engine over real
 * clause streams (bytes streamed / TUE busy time — much higher,
 * because a 5-byte item costs one operation), and sweeps disk speed
 * to find where the filter would start to overrun.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "fs1/fs1_engine.hh"
#include "fs2/datapath.hh"
#include "fs2/fs2_engine.hh"
#include "storage/clause_file.hh"
#include "support/table.hh"
#include "term/term_writer.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

using namespace clare;
using unify::TueOp;

int
main(int argc, char **argv)
{
    std::string json_path = bench::jsonPathArg(argc, argv);
    json::Value json_rows = json::Value::array();

    // --- the paper's per-op arithmetic -----------------------------
    Table rates("Per-operation filter rate (paper convention: one "
                "operation per byte)");
    rates.header({"Operation", "ns/op", "Rate (MB/s)"});
    for (TueOp op : {TueOp::Match, TueOp::DbStore, TueOp::QueryStore,
                     TueOp::DbFetch, TueOp::QueryFetch,
                     TueOp::DbCrossBoundFetch,
                     TueOp::QueryCrossBoundFetch}) {
        double rate = 1e9 / static_cast<double>(
            fs2::operationTimeNs(op));
        rates.row({tueOpName(op),
                   std::to_string(fs2::operationTimeNs(op)),
                   Table::num(rate / 1e6, 2)});
        json::Value row = json::Value::object();
        row.set("sweep", "per_op_rate");
        row.set("op", tueOpName(op));
        row.set("ns_per_op", fs2::operationTimeNs(op));
        row.set("bytes_per_second", rate);
        json_rows.push(std::move(row));
    }
    rates.print(std::cout);

    double fs2_worst = fs2::worstCaseFilterRate();
    double fs1_rate = fs1::Fs1Config{}.scanRate;
    double smd = storage::DiskGeometry::fujitsuM2351A().transferRate;
    double scsi = storage::DiskGeometry::micropolis1325().transferRate;
    std::printf("\nFS1 scan rate:            %s (paper: up to "
                "4.5 MB/s)\n", bench::formatRate(fs1_rate).c_str());
    std::printf("FS2 worst-case rate:      %s (paper: ~4.25 MB/s)\n",
                bench::formatRate(fs2_worst).c_str());
    std::printf("SMD disk peak rate:       %s (paper: circa 2 MB/s)\n",
                bench::formatRate(smd).c_str());
    std::printf("SCSI disk rate:           %s\n",
                bench::formatRate(scsi).c_str());
    std::printf("=> FS2 worst case %s the SMD peak: the filter keeps "
                "up with the disk.\n\n",
                fs2_worst > smd ? "EXCEEDS" : "falls below");
    {
        json::Value row = json::Value::object();
        row.set("sweep", "headline_rates");
        row.set("fs1_scan_rate", fs1_rate);
        row.set("fs2_worst_rate", fs2_worst);
        row.set("smd_disk_rate", smd);
        row.set("scsi_disk_rate", scsi);
        json_rows.push(std::move(row));
    }

    // --- 8 MHz clock quantization ablation --------------------------
    // The WCS runs from an 8 MHz clock (125 ns); the paper's execution
    // times are asynchronous datapath delays.  A synchronously clocked
    // implementation would round every operation up to whole cycles:
    {
        Table clocked("Ablation: asynchronous datapath vs 8 MHz "
                      "synchronous clocking");
        clocked.header({"Operation", "Async (ns)", "Cycles @125ns",
                        "Clocked (ns)", "Clocked rate (MB/s)"});
        std::uint64_t worst_clocked = 0;
        for (TueOp op : {TueOp::Match, TueOp::DbStore,
                         TueOp::QueryStore, TueOp::DbFetch,
                         TueOp::QueryFetch, TueOp::DbCrossBoundFetch,
                         TueOp::QueryCrossBoundFetch}) {
            std::uint64_t async_ns = fs2::operationTimeNs(op);
            std::uint64_t cycles = (async_ns + 124) / 125;
            std::uint64_t clocked_ns = cycles * 125;
            worst_clocked = std::max(worst_clocked, clocked_ns);
            clocked.row({tueOpName(op), std::to_string(async_ns),
                         std::to_string(cycles),
                         std::to_string(clocked_ns),
                         Table::num(1e3 / static_cast<double>(
                             clocked_ns), 2)});
        }
        clocked.print(std::cout);
        std::printf("\nclocked worst case: %s — still above the 2 MB/s "
                    "disk, so the paper's\nconclusion survives "
                    "synchronous clocking (with less margin: %.2f vs "
                    "%.2f MB/s).\n\n",
                    bench::formatRate(1e9 / static_cast<double>(
                        worst_clocked)).c_str(),
                    1e3 / static_cast<double>(worst_clocked),
                    fs2::worstCaseFilterRate() / 1e6);
    }

    // --- effective rates over simulated clause streams -------------
    term::SymbolTable sym;
    term::TermWriter writer(sym);
    workload::KbGenerator kbgen(sym);

    Table effective("Effective FS2 rate over simulated clause streams "
                    "(bytes / TUE busy time)");
    effective.header({"Workload", "Clauses", "Bytes", "Ops", "Busy",
                      "Effective rate", "Overruns @2MB/s"});

    struct Mix
    {
        const char *name;
        double var_prob;
        double shared_prob;
        double struct_prob;
        double query_shared;
    };
    const Mix mixes[] = {
        {"ground facts, ground query", 0.0, 0.0, 0.1, 0.0},
        {"moderate vars", 0.2, 0.3, 0.2, 0.2},
        {"var-heavy, shared-var query", 0.4, 0.7, 0.3, 0.8},
    };

    for (const Mix &mix : mixes) {
        workload::KbSpec spec;
        spec.predicates = 1;
        spec.clausesPerPredicate = 800;
        spec.varProb = mix.var_prob;
        spec.sharedVarProb = mix.shared_prob;
        spec.structProb = mix.struct_prob;
        spec.seed = 9;
        term::Program program = kbgen.generate(spec);
        const auto &pred = program.predicates()[0];

        storage::ClauseFileBuilder builder(writer);
        for (std::size_t i : program.clausesOf(pred))
            builder.add(program.clause(i));
        storage::ClauseFile file = builder.finish();
        storage::DiskModel disk(storage::DiskGeometry::fujitsuM2351A());
        disk.load(file.image());

        workload::QuerySpec qspec;
        qspec.boundArgProb = 0.4;
        qspec.sharedVarProb = mix.query_shared;
        workload::QueryGenerator qgen(sym, qspec);
        workload::GeneratedQuery q = qgen.generate(program, pred);

        fs2::Fs2Engine engine;
        engine.setQuery(q.arena, q.goal);
        fs2::Fs2SearchResult r = engine.search(file, &disk);

        std::uint64_t ops = 0;
        for (std::size_t i = 0; i < unify::kTueOpCount; ++i)
            if (static_cast<TueOp>(i) != TueOp::Skip)
                ops += r.ops[i];
        effective.row({mix.name, std::to_string(r.clausesExamined),
                       std::to_string(r.bytesStreamed),
                       std::to_string(ops),
                       bench::formatTime(r.tueBusyTime),
                       bench::formatRate(r.filterRate()),
                       std::to_string(r.overruns)});
        json::Value row = json::Value::object();
        row.set("sweep", "effective_rate");
        row.set("workload", mix.name);
        row.set("clauses", r.clausesExamined);
        row.set("bytes_streamed", r.bytesStreamed);
        row.set("tue_ops", ops);
        row.set("bytes_per_second", r.filterRate());
        row.set("overruns", static_cast<std::uint64_t>(r.overruns));
        json_rows.push(std::move(row));
    }
    effective.print(std::cout);

    // --- disk-rate sweep: where would FS2 start to overrun? --------
    Table sweep("Disk-rate sweep (var-heavy workload): stall vs "
                "overrun crossover");
    sweep.header({"Disk rate", "Elapsed", "Engine stall", "Overruns"});
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 600;
    spec.varProb = 0.4;
    spec.sharedVarProb = 0.7;
    spec.seed = 10;
    term::Program program = kbgen.generate(spec);
    const auto &pred = program.predicates()[0];
    storage::ClauseFileBuilder builder(writer);
    for (std::size_t i : program.clausesOf(pred))
        builder.add(program.clause(i));
    storage::ClauseFile file = builder.finish();

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.3;
    qspec.sharedVarProb = 0.8;
    workload::QueryGenerator qgen(sym, qspec);
    workload::GeneratedQuery q = qgen.generate(program, pred);

    for (double mbps : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
        storage::DiskGeometry geometry =
            storage::DiskGeometry::fujitsuM2351A();
        geometry.transferRate = mbps * 1e6;
        storage::DiskModel disk(geometry);
        disk.load(file.image());

        fs2::Fs2Engine engine;
        engine.setQuery(q.arena, q.goal);
        fs2::Fs2SearchResult r = engine.search(file, &disk);
        sweep.row({Table::num(mbps, 1) + " MB/s",
                   bench::formatTime(r.elapsed),
                   bench::formatTime(r.stallTime),
                   std::to_string(r.overruns)});
        json::Value row = json::Value::object();
        row.set("sweep", "disk_rate");
        row.set("disk_bytes_per_second", mbps * 1e6);
        row.set("elapsed_ticks", r.elapsed);
        row.set("stall_ticks", r.stallTime);
        row.set("overruns", static_cast<std::uint64_t>(r.overruns));
        json_rows.push(std::move(row));
    }
    sweep.print(std::cout);
    std::printf("\nShape check: at the paper's 2 MB/s the engine only "
                "stalls (disk-bound);\noverruns appear only far beyond "
                "the era's disk rates.\n");
    if (!bench::writeBenchJson(json_path, "filter_rates",
                               std::move(json_rows)))
        return 1;
    return 0;
}
