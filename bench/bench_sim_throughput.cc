/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): host-side throughput
 * of the building blocks — PIF encoding, codeword generation, the
 * stream matcher, the microcoded FS2 engine, and full unification.
 * These measure the *simulator*, not the modeled hardware; they bound
 * how large an experiment the benches can sweep.
 */

#include <benchmark/benchmark.h>

#include "fs2/fs2_engine.hh"
#include "pif/encoder.hh"
#include "scw/codeword.hh"
#include "storage/clause_file.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"
#include "unify/oracle.hh"
#include "unify/pif_matcher.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

using namespace clare;

namespace {

/** Shared fixture data built once. */
struct Corpus
{
    term::SymbolTable sym;
    term::Program program;
    term::PredicateId pred;
    storage::ClauseFile file;
    workload::GeneratedQuery query;
    pif::EncodedArgs queryArgs;

    Corpus()
    {
        workload::KbGenerator kbgen(sym);
        workload::KbSpec spec;
        spec.predicates = 1;
        spec.clausesPerPredicate = 1000;
        spec.varProb = 0.2;
        spec.sharedVarProb = 0.3;
        spec.structProb = 0.3;
        spec.seed = 2;
        program = kbgen.generate(spec);
        pred = program.predicates()[0];

        term::TermWriter writer(sym);
        storage::ClauseFileBuilder builder(writer);
        for (std::size_t i : program.clausesOf(pred))
            builder.add(program.clause(i));
        file = builder.finish();

        workload::QuerySpec qspec;
        qspec.boundArgProb = 0.5;
        qspec.sharedVarProb = 0.4;
        workload::QueryGenerator qgen(sym, qspec);
        query = qgen.generate(program, pred);
        pif::Encoder encoder;
        queryArgs = encoder.encodeArgs(query.arena, query.goal,
                                       pif::Side::Query);
    }

    static Corpus &
    instance()
    {
        static Corpus corpus;
        return corpus;
    }
};

void
BM_PifEncodeClauseHead(benchmark::State &state)
{
    Corpus &c = Corpus::instance();
    pif::Encoder encoder;
    std::size_t i = 0;
    const auto &ordinals = c.program.clausesOf(c.pred);
    for (auto _ : state) {
        const term::Clause &clause = c.program.clause(
            ordinals[i++ % ordinals.size()]);
        benchmark::DoNotOptimize(encoder.encodeArgs(
            clause.arena(), clause.head(), pif::Side::Db));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PifEncodeClauseHead);

void
BM_CodewordEncode(benchmark::State &state)
{
    Corpus &c = Corpus::instance();
    scw::CodewordGenerator gen;
    std::size_t i = 0;
    const auto &ordinals = c.program.clausesOf(c.pred);
    for (auto _ : state) {
        const term::Clause &clause = c.program.clause(
            ordinals[i++ % ordinals.size()]);
        benchmark::DoNotOptimize(gen.encode(clause.arena(),
                                            clause.head()));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodewordEncode);

void
BM_StreamMatcherPerClause(benchmark::State &state)
{
    Corpus &c = Corpus::instance();
    unify::PifMatcher matcher;
    std::vector<pif::EncodedArgs> heads;
    for (std::size_t i = 0; i < c.file.clauseCount(); ++i)
        heads.push_back(c.file.decodeArgs(i));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            matcher.match(heads[i++ % heads.size()], c.queryArgs));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamMatcherPerClause);

void
BM_Fs2EngineWholeFile(benchmark::State &state)
{
    Corpus &c = Corpus::instance();
    for (auto _ : state) {
        fs2::Fs2Engine engine;
        engine.setQuery(c.queryArgs, c.pred);
        benchmark::DoNotOptimize(engine.search(c.file));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(
                                c.file.clauseCount()));
}
BENCHMARK(BM_Fs2EngineWholeFile);

void
BM_FullUnificationOracle(benchmark::State &state)
{
    Corpus &c = Corpus::instance();
    const auto &ordinals = c.program.clausesOf(c.pred);
    std::size_t i = 0;
    for (auto _ : state) {
        const term::Clause &clause = c.program.clause(
            ordinals[i++ % ordinals.size()]);
        benchmark::DoNotOptimize(
            unify::wouldUnify(c.query.arena, c.query.goal, clause));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullUnificationOracle);

} // namespace
