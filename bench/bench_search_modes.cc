/**
 * @file
 * Experiment C1 — the four CRS search modes of section 2.2 across the
 * query/KB natures the paper says drive the choice: fact-intensive vs
 * rule-intensive predicates, and ground vs shared-variable vs
 * all-variable queries.  For every cell the harness reports candidate
 * quality and end-to-end retrieval latency, plus the mode the CRS
 * heuristic would pick.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"
#include "workload/kb_generator.hh"

using namespace clare;

namespace {

/** Build a KB with a controllable rule fraction. */
term::Program
makeKb(term::SymbolTable &sym, double rule_fraction, std::uint64_t seed)
{
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 2000;
    spec.arityMin = 3;
    spec.arityMax = 3;
    spec.varProb = rule_fraction > 0 ? 0.15 : 0.0;
    spec.sharedVarProb = 0.2;
    spec.structProb = 0.2;
    spec.ruleFraction = rule_fraction;
    spec.seed = seed;
    return kbgen.generate(spec);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string json_path = bench::jsonPathArg(argc, argv);
    // --fault-seed=N (+ --fault-flip/--fault-transient/--fault-delay
    // rates) runs the whole experiment against deterministically
    // faulty disks; absent, the run is bit-identical to a fault-free
    // build.
    std::optional<support::FaultConfig> fault_config =
        bench::faultConfigArg(argc, argv);
    // --cache (+ --cache-l3/--cache-l2/--cache-l1-tracks sizes,
    // --cache-bypass) runs the experiment with the retrieval cache
    // hierarchy enabled; absent, the run is bit-identical to a
    // cache-free build.  Note the caches are disabled automatically
    // while fault injection is armed.
    bench::CacheKnobs cache_knobs = bench::cacheConfigArg(argc, argv);
    std::unique_ptr<support::FaultInjector> injector;
    crs::CrsConfig crs_config;
    if (cache_knobs.enabled && !fault_config) {
        cache_knobs.apply(crs_config);
        std::printf("cache hierarchy armed: l3=%u l2=%u/%u "
                    "l1_tracks=%u%s\n\n",
                    crs_config.cache.goalCapacity,
                    crs_config.cache.signatureCapacity,
                    crs_config.cache.survivorCapacity,
                    cache_knobs.l1Tracks,
                    cache_knobs.bypass ? " (bypassed requests)" : "");
    }
    if (fault_config) {
        injector = std::make_unique<support::FaultInjector>(*fault_config);
        crs_config.faults = injector.get();
        std::printf("fault injection armed: seed=%llu flip=%.3g "
                    "transient=%.3g delay=%.3g\n\n",
                    static_cast<unsigned long long>(fault_config->seed),
                    fault_config->bitFlipRate,
                    fault_config->transientReadRate,
                    fault_config->delayRate);
    }
    json::Value json_rows = json::Value::array();
    // Kept alive across KB kinds so the final JSON export can include
    // the last server's cumulative metrics (and spans when tracing);
    // the server references its symbol table, so that lives here too.
    std::vector<std::unique_ptr<term::SymbolTable>> live_syms;
    std::unique_ptr<bench::CompiledStore> last_store;

    struct KbKind
    {
        const char *name;
        double ruleFraction;
    };
    const KbKind kbs[] = {
        {"fact-intensive", 0.0},
        {"rule-intensive", 0.6},
    };

    for (const KbKind &kbkind : kbs) {
        live_syms.push_back(std::make_unique<term::SymbolTable>());
        term::SymbolTable &sym = *live_syms.back();
        term::Program program = makeKb(sym, kbkind.ruleFraction, 19);
        last_store = std::make_unique<bench::CompiledStore>(
            bench::compileStore(sym, program, {}, crs_config));
        bench::CompiledStore &cs = *last_store;
        cache_knobs.apply(*cs.store);
        term::TermReader reader(sym);
        const auto &pred = program.predicates()[0];

        // Query templates against predicate p0/3, derived from a
        // stored ground head where one exists.
        std::string ground_head;
        {
            term::TermWriter writer(sym);
            for (std::size_t i : program.clausesOf(pred)) {
                if (program.clause(i).isGroundFact()) {
                    ground_head = writer.write(
                        program.clause(i).arena(),
                        program.clause(i).head());
                    break;
                }
            }
            if (ground_head.empty())
                ground_head = writer.write(program.clause(0).arena(),
                                           program.clause(0).head());
        }

        struct QueryKind
        {
            const char *name;
            std::string text;
        };
        const QueryKind queries[] = {
            {"ground", ground_head},
            {"one free variable", "p0(Q1, Q2, " +
                ground_head.substr(ground_head.find('(') + 1,
                                   ground_head.find(',') -
                                   ground_head.find('(') - 1) + ")"},
            {"shared variables", "p0(S, S, _)"},
            {"all variables", "p0(A, B, C)"},
        };

        for (const QueryKind &qk : queries) {
            term::ParsedTerm goal = reader.parseTerm(qk.text);
            Table t(std::string("KB: ") + kbkind.name + "  |  query: " +
                    qk.name + "  (" + qk.text + ")");
            t.header({"Mode", "Candidates", "Answers", "FD rate",
                      "Index", "Filter", "Host unify", "Total"});
            for (crs::SearchMode mode : {crs::SearchMode::SoftwareOnly,
                                         crs::SearchMode::Fs1Only,
                                         crs::SearchMode::Fs2Only,
                                         crs::SearchMode::TwoStage}) {
                crs::RetrievalRequest req;
                req.arena = &goal.arena;
                req.goal = goal.root;
                req.mode = mode;
                req.bypassCache = cache_knobs.bypass;
                // Spans go into the JSON export; skip them otherwise.
                req.trace.enabled = !json_path.empty();
                crs::RetrievalResponse r;
                try {
                    r = cs.server->serve(req);
                } catch (const IoError &e) {
                    // Bounded retries exhausted at this fault seed.
                    t.row({crs::searchModeName(mode), "-", "-", "-",
                           "-", "-", "-", "unreadable"});
                    json::Value row = json::Value::object();
                    row.set("mode", crs::searchModeSlug(mode));
                    row.set("kb", kbkind.name);
                    row.set("query", qk.name);
                    row.set("io_error", std::string(e.what()));
                    json_rows.push(std::move(row));
                    continue;
                }
                std::string mode_cell = crs::searchModeName(mode);
                if (r.degraded)
                    mode_cell += " (degraded)";
                t.row({mode_cell,
                       std::to_string(r.candidates.size()),
                       std::to_string(r.answers.size()),
                       Table::num(r.falseDropRate(), 3),
                       bench::formatTime(r.breakdown.indexTime),
                       bench::formatTime(r.breakdown.filterTime),
                       bench::formatTime(r.breakdown.hostUnifyTime),
                       bench::formatTime(r.elapsed)});
                json::Value row = bench::responseJson(r);
                row.set("kb", kbkind.name);
                row.set("query", qk.name);
                // Only armed runs carry the degradation fields, so a
                // default run's JSON is byte-stable across builds.
                if (fault_config) {
                    row.set("degraded", r.degraded);
                    row.set("corrupt_index_pages",
                            static_cast<std::uint64_t>(
                                r.corruptIndexPages));
                }
                json_rows.push(std::move(row));
            }
            t.print(std::cout);
            std::printf("CRS heuristic selects: %s\n\n",
                        crs::searchModeName(cs.server->selectMode(
                            goal.arena, goal.root)));
        }
    }

    std::printf("shape checks: ground queries on fact-intensive KBs "
                "are won by FS1 (small\ncandidate fetch); shared-"
                "variable queries need FS2 to avoid host-unifying the\n"
                "whole predicate; rule-intensive KBs blunt the index "
                "(masked fields), favouring\nthe two-stage filter; "
                "all-variable queries cannot be filtered at all.\n");

    if (!bench::writeBenchJson(json_path, "search_modes",
                               std::move(json_rows),
                               last_store->server.get()))
        return 1;
    return 0;
}
