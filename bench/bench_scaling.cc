/**
 * @file
 * Experiment S1 — the footnote-† motivation: conventional Prolog
 * systems "were unable to cope with more than about 60k clauses and
 * even then the overhead of loading these clauses into main memory
 * was very high".
 *
 * The harness sweeps knowledge-base size and compares, per query:
 *
 *   - a conventional in-memory Prolog system model: every clause of
 *     the predicate must first be LOADED from disk into memory (paid
 *     on first touch, amortizable), then scanned with software
 *     unification; above a memory budget the system simply cannot
 *     hold the predicate (the 60k-clause wall),
 *   - CLARE retrieval (two-stage hardware filter), which streams from
 *     disk per query and needs no resident copy.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench_util.hh"
#include "fs1/fs1_engine.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "term/term_writer.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

using namespace clare;

namespace {

/**
 * Experiment S4 — host scan rate of the bit-sliced FS1 kernel: the
 * row-major scan decodes every entry's signature per query, while the
 * transposed plane evaluates 64 entries per word op and touches only
 * the planes whose query bits are set; batch widths > 1 then amortize
 * plane memory traffic across same-predicate queries.  Survivor sets
 * (and all modeled timing) are checked bit-identical per row.
 */
void
slicedScanSweep(json::Value &json_rows)
{
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 60000;
    spec.atomVocabulary = 4000;
    spec.varProb = 0.05;
    spec.structProb = 0.2;
    spec.seed = 9;
    term::Program program = kbgen.generate(spec);
    const auto &pred = program.predicates()[0];

    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.buildSlicedIndexes();
    store.finalize();
    const crs::StoredPredicate &stored = store.predicate(pred);

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.9;
    qspec.sharedVarProb = 0.0;
    qspec.perturbProb = 0.0;
    qspec.seed = 12;
    workload::QueryGenerator qgen(sym, qspec);
    std::vector<scw::Signature> queries;
    for (int i = 0; i < 16; ++i) {
        workload::GeneratedQuery q = qgen.generate(program, pred);
        queries.push_back(store.generator().encode(q.arena, q.goal));
    }
    const double batch_bytes =
        static_cast<double>(stored.index.image().size()) *
        static_cast<double>(queries.size());
    constexpr int kReps = 3;

    fs1::Fs1Engine row_major(store.generator(), {});
    fs1::Fs1Config sliced_config;
    sliced_config.sliced = true;
    fs1::Fs1Engine sliced(store.generator(), sliced_config);

    // One timed pass: all queries, grouped `width` at a time (width 0
    // = row-major per-query scans).
    auto run = [&](const fs1::Fs1Engine &engine, std::size_t width) {
        std::vector<fs1::Fs1Result> results;
        for (std::size_t q0 = 0; q0 < queries.size();
             q0 += std::max<std::size_t>(width, 1)) {
            std::size_t count =
                std::min(std::max<std::size_t>(width, 1),
                         queries.size() - q0);
            std::vector<scw::Signature> group(
                queries.begin() + static_cast<std::ptrdiff_t>(q0),
                queries.begin() + static_cast<std::ptrdiff_t>(q0 +
                                                              count));
            std::vector<obs::Observer> obss(count);
            std::vector<fs1::Fs1Result> part = engine.searchBatch(
                stored.index, stored.sliced.get(), group, obss);
            for (fs1::Fs1Result &r : part)
                results.push_back(std::move(r));
        }
        return results;
    };

    Table t("Bit-sliced FS1 kernel: host scan rate vs batch width "
            "(60k entries, 16 queries)");
    t.header({"Kernel", "Width", "Wall time", "Scan rate", "Speedup",
              "Identical results"});

    std::vector<fs1::Fs1Result> baseline;
    double base_seconds = 0.0;
    struct Variant { const char *name; bool is_sliced; std::size_t width; };
    for (const Variant v : {Variant{"row-major", false, 1},
                            Variant{"sliced", true, 1},
                            Variant{"sliced", true, 4},
                            Variant{"sliced", true, 8},
                            Variant{"sliced", true, 16}}) {
        const fs1::Fs1Engine &engine = v.is_sliced ? sliced : row_major;
        run(engine, v.width);    // warm-up
        auto start = std::chrono::steady_clock::now();
        std::vector<fs1::Fs1Result> results;
        for (int rep = 0; rep < kReps; ++rep)
            results = run(engine, v.width);
        auto stop = std::chrono::steady_clock::now();
        double seconds =
            std::chrono::duration<double>(stop - start).count() / kReps;

        bool identical = true;
        if (!v.is_sliced) {
            baseline = results;
            base_seconds = seconds;
        } else {
            for (std::size_t i = 0; i < results.size(); ++i) {
                identical = identical &&
                    results[i].clauseOffsets ==
                        baseline[i].clauseOffsets &&
                    results[i].ordinals == baseline[i].ordinals &&
                    results[i].entriesScanned ==
                        baseline[i].entriesScanned &&
                    results[i].bytesScanned ==
                        baseline[i].bytesScanned &&
                    results[i].busyTime == baseline[i].busyTime;
            }
        }

        char wall[32], speedup[32];
        std::snprintf(wall, sizeof(wall), "%.2f ms", seconds * 1e3);
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      base_seconds / seconds);
        t.row({v.name, std::to_string(v.width), wall,
               bench::formatRate(batch_bytes / seconds), speedup,
               identical ? "yes" : "NO"});

        json::Value row = json::Value::object();
        row.set("sweep", "sliced_scan_rate");
        row.set("sliced", v.is_sliced);
        row.set("batch_width", static_cast<std::uint64_t>(v.width));
        row.set("wall_seconds", seconds);
        row.set("bytes_per_second", batch_bytes / seconds);
        row.set("speedup", base_seconds / seconds);
        row.set("identical", identical);
        json_rows.push(std::move(row));
    }
    t.print(std::cout);
    std::printf("\nshape: slicing wins even at width 1 (only the "
                "query's set bits load plane rows,\nno per-entry "
                "decode); widths > 1 reuse each cache-resident plane "
                "block across\nthe batch.  Survivors, scan statistics, "
                "and modeled busy time are bit-identical\nto the "
                "row-major kernel in every row.\n");
}

/**
 * Experiment S2 — host-side scaling of the sharded retrieval
 * pipeline: wall-clock throughput of a query batch as the worker
 * count grows, with a bit-identical-results check against the
 * single-threaded path.  (The simulated Ticks model the 1989 hardware
 * and are identical at every worker count; this table measures the
 * *simulator host's* clock, i.e. how fast the production server core
 * actually runs retrievals.)
 */
void
workerScalingSweep(const bench::SlicedKnobs &knobs,
                   json::Value &json_rows)
{
    using Request = crs::RetrievalRequest;

    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 20000;
    spec.atomVocabulary = 4000;
    spec.varProb = 0.05;
    spec.structProb = 0.2;
    spec.seed = 9;
    term::Program program = kbgen.generate(spec);
    const auto &pred = program.predicates()[0];

    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    if (knobs.sliced)
        store.buildSlicedIndexes();
    store.finalize();

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.9;
    qspec.sharedVarProb = 0.0;
    qspec.perturbProb = 0.0;
    qspec.seed = 12;
    workload::QueryGenerator qgen(sym, qspec);
    std::vector<workload::GeneratedQuery> queries;
    std::vector<Request> batch;
    for (int i = 0; i < 24; ++i)
        queries.push_back(qgen.generate(program, pred));
    for (const workload::GeneratedQuery &q : queries)
        batch.push_back(Request{&q.arena, q.goal,
                                crs::SearchMode::TwoStage});

    Table t("Sharded pipeline: wall-clock throughput vs workers "
            "(20k clauses, 24 two-stage queries)");
    t.header({"Workers", "Wall time", "Queries/s", "Speedup",
              "Identical results"});

    std::vector<crs::RetrievalResponse> baseline;
    double base_seconds = 0.0;
    for (std::uint32_t workers : {1u, 2u, 4u, 8u}) {
        crs::CrsConfig config;
        config.workers = workers;
        knobs.apply(config);
        crs::ClauseRetrievalServer server(sym, store, config);
        // Warm-up pass so allocator/page effects don't skew the 1-
        // worker baseline.
        server.serveBatch(batch);

        auto start = std::chrono::steady_clock::now();
        std::vector<crs::RetrievalResponse> results =
            server.serveBatch(batch);
        auto stop = std::chrono::steady_clock::now();
        double seconds =
            std::chrono::duration<double>(stop - start).count();

        bool identical = true;
        if (workers == 1) {
            baseline = results;
            base_seconds = seconds;
        } else {
            for (std::size_t i = 0; i < results.size(); ++i) {
                identical = identical &&
                    results[i].candidates == baseline[i].candidates &&
                    results[i].answers == baseline[i].answers &&
                    results[i].elapsed == baseline[i].elapsed;
            }
        }

        char qps[32], speedup[32];
        std::snprintf(qps, sizeof(qps), "%.1f",
                      static_cast<double>(batch.size()) / seconds);
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      base_seconds / seconds);
        char wall[32];
        std::snprintf(wall, sizeof(wall), "%.1f ms", seconds * 1e3);
        t.row({std::to_string(workers), wall, qps, speedup,
               identical ? "yes" : "NO"});

        Tick queue_wait = 0;
        for (const crs::RetrievalResponse &r : results)
            queue_wait += r.breakdown.queueWait;
        json::Value row = json::Value::object();
        row.set("sweep", "worker_scaling");
        row.set("workers", workers);
        row.set("sliced", knobs.sliced);
        if (knobs.batchWidth > 0)
            row.set("batch_width", knobs.batchWidth);
        row.set("wall_seconds", seconds);
        row.set("identical", identical);
        row.set("total_queue_wait_ticks", queue_wait);
        json_rows.push(std::move(row));
    }
    t.print(std::cout);
    unsigned cores = std::thread::hardware_concurrency();
    std::printf("\nhost cores: %u\n", cores);
    std::printf("shape: the FS1 index scan shards across the worker "
                "pool and overlaps the next\nquery's scan with the "
                "current query's FS2 + host unification, so wall-clock\n"
                "throughput scales with the host's cores while "
                "candidates, answers, and\nsimulated Ticks stay "
                "bit-identical.  On a host with fewer cores than\n"
                "workers expect parity, not speedup: the pipeline "
                "timeshares one core and the\nrows only demonstrate "
                "that results do not depend on the worker count.\n");
}

/**
 * Experiment S3 — paced device replay: the FS1 engine is hardware the
 * host *waits on*, not computes, so here each scan shard sleeps its
 * modeled device time (scaled down 4x from the 4.5 MB/s rate).
 * Sharding makes concurrent shards wait concurrently and the pipeline
 * hides query k+1's device wait under query k's host work, so the
 * sweep shows genuine wall-clock speedup even on a single host core —
 * the paper's reason for overlapping FS1 with FS2.
 */
void
pacedDeviceSweep(json::Value &json_rows)
{
    using Request = crs::RetrievalRequest;

    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 20000;
    spec.atomVocabulary = 4000;
    spec.varProb = 0.05;
    spec.structProb = 0.2;
    spec.seed = 9;
    term::Program program = kbgen.generate(spec);
    const auto &pred = program.predicates()[0];

    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.9;
    qspec.sharedVarProb = 0.0;
    qspec.perturbProb = 0.0;
    qspec.seed = 12;
    workload::QueryGenerator qgen(sym, qspec);
    std::vector<workload::GeneratedQuery> queries;
    std::vector<Request> batch;
    for (int i = 0; i < 12; ++i)
        queries.push_back(qgen.generate(program, pred));
    for (const workload::GeneratedQuery &q : queries)
        batch.push_back(Request{&q.arena, q.goal,
                                crs::SearchMode::TwoStage});

    Table t("Paced device replay: wall-clock vs workers (device waits "
            "slept at 1/4 scale)");
    t.header({"Workers", "Wall time", "Queries/s", "Speedup",
              "Identical results"});

    std::vector<crs::RetrievalResponse> baseline;
    double base_seconds = 0.0;
    for (std::uint32_t workers : {1u, 2u, 4u, 8u}) {
        crs::CrsConfig config;
        config.workers = workers;
        config.fs1.paceScale = 4.0;
        crs::ClauseRetrievalServer server(sym, store, config);
        server.serveBatch(batch);    // warm-up

        auto start = std::chrono::steady_clock::now();
        std::vector<crs::RetrievalResponse> results =
            server.serveBatch(batch);
        auto stop = std::chrono::steady_clock::now();
        double seconds =
            std::chrono::duration<double>(stop - start).count();

        bool identical = true;
        if (workers == 1) {
            baseline = results;
            base_seconds = seconds;
        } else {
            for (std::size_t i = 0; i < results.size(); ++i) {
                identical = identical &&
                    results[i].candidates == baseline[i].candidates &&
                    results[i].answers == baseline[i].answers &&
                    results[i].elapsed == baseline[i].elapsed;
            }
        }

        char wall[32], qps[32], speedup[32];
        std::snprintf(wall, sizeof(wall), "%.1f ms", seconds * 1e3);
        std::snprintf(qps, sizeof(qps), "%.1f",
                      static_cast<double>(batch.size()) / seconds);
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      base_seconds / seconds);
        t.row({std::to_string(workers), wall, qps, speedup,
               identical ? "yes" : "NO"});

        json::Value row = json::Value::object();
        row.set("sweep", "paced_device");
        row.set("workers", workers);
        row.set("wall_seconds", seconds);
        row.set("identical", identical);
        json_rows.push(std::move(row));
    }
    t.print(std::cout);
    std::printf("\nshape: device waits, unlike host compute, overlap "
                "on any core count: sharding\nsplits one query's wait "
                "across workers, and the pipeline keeps up to "
                "`workers`\nscans in flight so their waits overlap "
                "each other and the back half.  Simulated\nTicks are "
                "untouched by pacing and stay bit-identical.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string json_path = bench::jsonPathArg(argc, argv);
    bench::SlicedKnobs sliced_knobs = bench::slicedConfigArg(argc, argv);
    json::Value json_rows = json::Value::array();

    // A 4 MB Sun3/160-class memory budget, minus system overhead:
    // the footnote's benchmark machine.
    constexpr std::uint64_t kMemoryBudget = 3u * 1024 * 1024;
    crs::HostCostModel host;    // M68020-class software costs

    Table t("KB size sweep: in-memory Prolog vs CLARE retrieval "
            "(one query over the predicate)");
    t.header({"Clauses", "KB bytes", "Fits 3MB?", "Load time",
              "In-mem scan", "CLARE (FS1+FS2)", "CLARE answers"});

    for (std::uint32_t clauses : {1000u, 4000u, 16000u, 60000u,
                                  120000u}) {
        term::SymbolTable sym;
        workload::KbGenerator kbgen(sym);
        workload::KbSpec spec;
        spec.predicates = 1;
        spec.clausesPerPredicate = clauses;
        spec.atomVocabulary = 2000;
        spec.varProb = 0.05;
        spec.structProb = 0.2;
        spec.seed = 3;
        term::Program program = kbgen.generate(spec);
        const auto &pred = program.predicates()[0];

        bench::CompiledStore cs = bench::compileStore(sym, program);
        const crs::StoredPredicate &stored =
            cs.store->predicate(pred);
        std::uint64_t kb_bytes = stored.clauses.image().size();
        bool fits = kb_bytes <= kMemoryBudget;

        // Conventional system: load whole predicate from disk, then
        // software-scan every clause (per-clause overhead only; the
        // partial-match ops are a second-order term here).
        const storage::DiskModel &disk = cs.store->dataDisk();
        Tick load = disk.accessTime() + disk.transferTime(kb_bytes);
        Tick scan = host.perClause * clauses;

        // CLARE: two-stage retrieval per query.
        workload::QuerySpec qspec;
        qspec.boundArgProb = 0.8;
        qspec.sharedVarProb = 0.0;
        qspec.perturbProb = 0.0;    // queries always have answers
        qspec.seed = 5;
        workload::QueryGenerator qgen(sym, qspec);
        workload::GeneratedQuery q = qgen.generate(program, pred);
        crs::RetrievalResponse r = bench::serveOne(
            *cs.server, q.arena, q.goal, crs::SearchMode::TwoStage);

        t.row({std::to_string(clauses), std::to_string(kb_bytes),
               fits ? "yes" : "NO",
               bench::formatTime(load),
               fits ? bench::formatTime(scan) : "(cannot run)",
               bench::formatTime(r.elapsed),
               std::to_string(r.answers.size())});

        json::Value row = bench::responseJson(r);
        row.set("sweep", "kb_size");
        row.set("clauses", clauses);
        row.set("kb_bytes", kb_bytes);
        json_rows.push(std::move(row));
    }
    t.print(std::cout);

    std::printf("\nshape: the in-memory system pays a load that grows "
                "with KB size and hits the\nmemory wall around the "
                "60k-clause mark, while CLARE's per-query retrieval\n"
                "scans the (much smaller) index at 4.5 MB/s and "
                "fetches only candidates.\n\n");

    // Per-query amortization at a scale that does NOT fit memory:
    // the conventional system would need >3 MB resident (infeasible
    // on the footnote's 4 MB workstation), so its line is
    // hypothetical; CLARE pays per query but needs no resident copy.
    {
        term::SymbolTable sym;
        workload::KbGenerator kbgen(sym);
        workload::KbSpec spec;
        spec.predicates = 1;
        spec.clausesPerPredicate = 120000;
        spec.varProb = 0.05;
        spec.seed = 3;
        term::Program program = kbgen.generate(spec);
        const auto &pred = program.predicates()[0];
        bench::CompiledStore cs = bench::compileStore(sym, program);

        const storage::DiskModel &disk = cs.store->dataDisk();
        std::uint64_t kb_bytes =
            cs.store->predicate(pred).clauses.image().size();
        Tick load = disk.accessTime() + disk.transferTime(kb_bytes);
        Tick scan = host.perClause * 120000;

        workload::QuerySpec qspec;
        qspec.boundArgProb = 0.8;
        qspec.perturbProb = 0.0;
        qspec.seed = 6;
        workload::QueryGenerator qgen(sym, qspec);
        workload::GeneratedQuery q = qgen.generate(program, pred);
        crs::RetrievalResponse r = bench::serveOne(
            *cs.server, q.arena, q.goal, crs::SearchMode::TwoStage);

        Table amortize("Amortization (120k clauses, ~11 MB — exceeds "
                       "the 4 MB workstation)");
        amortize.header({"Queries",
                         "In-memory (hypothetical, needs >3MB RAM)",
                         "CLARE (N retrievals, no resident copy)"});
        for (std::uint64_t n : {1u, 10u, 100u, 1000u}) {
            amortize.row({std::to_string(n),
                          bench::formatTime(load + scan * n),
                          bench::formatTime(r.elapsed * n)});
        }
        amortize.print(std::cout);
        std::printf("\nshape: once the KB exceeds main memory the "
                    "conventional system simply cannot\nrun; CLARE "
                    "trades per-query disk traffic for unbounded KB "
                    "size — the design's\npoint. Where both run, a "
                    "resident copy amortizes better, which is why the\n"
                    "PDBM keeps SMALL modules in memory and sends only "
                    "LARGE ones through CLARE.\n");
    }

    std::printf("\n");
    workerScalingSweep(sliced_knobs, json_rows);
    std::printf("\n");
    pacedDeviceSweep(json_rows);
    std::printf("\n");
    slicedScanSweep(json_rows);

    if (!bench::writeBenchJson(json_path, "scaling",
                               std::move(json_rows)))
        return 1;
    return 0;
}
