/**
 * @file
 * Experiment A1 — Appendix Table A1: the CLARE data-type scheme.
 *
 * Prints the implemented tag scheme row by row (tag patterns, content
 * and extension fields) and the valid-tag enumeration, then exercises
 * an encode/serialize/decode round trip over every tag family to show
 * the wire format is self-consistent.  The paper states "107 data
 * types are supported"; the table as printed spans a larger valid tag
 * space (5 variables + 2 pointer simples + 16 integer nibbles + 6
 * complex families x 31 arities = 209), and gives no decomposition of
 * the 107 — both numbers are reported.
 */

#include <cstdio>
#include <iostream>

#include "pif/encoder.hh"
#include "pif/pif_item.hh"
#include "support/table.hh"
#include "term/term_reader.hh"

using namespace clare;
using namespace clare::pif;

int
main()
{
    Table scheme("Table A1: CLARE Data Type Scheme (as implemented)");
    scheme.header({"Item", "Type Tag", "Content", "Extension"});
    scheme.row({"Anonymous Var", "0010 0000 (0x20)", "-", "-"});
    scheme.row({"First Query Var", "0010 0111 (0x27)",
                "variable offset", "-"});
    scheme.row({"Subsequent Query Var", "0010 0101 (0x25)",
                "variable offset", "-"});
    scheme.row({"First DB Var", "0010 0110 (0x26)",
                "variable offset", "-"});
    scheme.row({"Subsequent DB Var", "0010 0100 (0x24)",
                "variable offset", "-"});
    scheme.rule();
    scheme.row({"Atom Pointer", "0000 1000 (0x08)",
                "symbol table offset", "-"});
    scheme.row({"Float Pointer", "0000 1001 (0x09)",
                "symbol table offset", "-"});
    scheme.row({"Integer In-line", "0001 nnnn (0x1N)",
                "ls 32 bits (nnnn = ms nibble)", "-"});
    scheme.rule();
    scheme.row({"Structure In-line", "011a aaaa",
                "functor offset; elements follow", "-"});
    scheme.row({"Structure Pointer", "010a aaaa", "functor offset",
                "pointer to structure"});
    scheme.row({"Terminated List In-line", "111a aaaa",
                "-; elements follow", "-"});
    scheme.row({"Unterminated List In-line", "101a aaaa",
                "-; elements follow", "-"});
    scheme.row({"Terminated List Pointer", "110a aaaa",
                "pointer to list (DB side)", "-"});
    scheme.row({"Unterminated List Pointer", "100a aaaa",
                "pointer to list (DB side)", "-"});
    scheme.print(std::cout);

    std::printf("\nValid tag bytes implemented: %zu "
                "(paper reports \"107 data types\"; Table A1 as printed "
                "spans 209)\n", countSupportedTags());

    Table families("Valid tags per family");
    families.header({"Family", "Count"});
    std::size_t counts[14] = {};
    for (Tag t : allValidTags())
        ++counts[static_cast<std::size_t>(tagClass(t))];
    for (std::size_t i = 0; i < 14; ++i) {
        if (counts[i]) {
            families.row({tagClassName(static_cast<TagClass>(i)),
                          std::to_string(counts[i])});
        }
    }
    families.print(std::cout);

    // Round-trip exercise across all families.
    term::SymbolTable sym;
    term::TermReader reader(sym);
    const char *samples[] = {
        "p(_, X, X, atom, 3.25, -42, 34359738367)",
        "p(f(a, Y, 3), g(h(k)), [1, 2, 3], [a | T], f([x, y]), q, r)",
        "p(f(a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,a,"
        "a,a,a,a,a,a), x, y, z, w, u, v)",
    };
    Encoder encoder;
    std::size_t items_total = 0;
    std::size_t bytes_total = 0;
    for (const char *text : samples) {
        term::ParsedTerm t = reader.parseTerm(text);
        for (Side side : {Side::Db, Side::Query}) {
            EncodedArgs args = encoder.encodeArgs(t.arena, t.root, side);
            std::vector<std::uint8_t> wire;
            for (const auto &item : args.items)
                serializeItem(item, wire);
            std::size_t at = 0;
            std::size_t n = 0;
            while (at < wire.size()) {
                PifItem back = deserializeItem(wire, at);
                if (!(back == args.items[n])) {
                    std::printf("ROUND TRIP FAILED at item %zu\n", n);
                    return 1;
                }
                ++n;
            }
            items_total += args.items.size();
            bytes_total += wire.size();
        }
    }
    std::printf("\nencode/serialize/decode round trip: %zu items, "
                "%zu wire bytes, all families — OK\n",
                items_total, bytes_total);
    return 0;
}
