/**
 * @file
 * Experiment C2 — multi-client access through the CRS ("simultaneous
 * access by multiple clients which involves procedures for concurrency
 * control and transaction handling", section 2.2).
 *
 * Sweeps the client count under read-heavy and update-heavy workloads
 * and reports lock waits, rounds, and makespan: readers of one
 * predicate share rounds, updates serialize them, and working sets
 * over disjoint predicates scale without contention.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench_util.hh"
#include "crs/client_sim.hh"
#include "crs/server.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "term/term_reader.hh"
#include "workload/kb_generator.hh"

using namespace clare;

namespace {

/**
 * The batched front door: every client's pending retrievals enter one
 * retrieveMany() call and the sharded pipeline serves them — FS1 of
 * query k+1 overlapped with FS2 + host unification of query k.  The
 * table sweeps the worker count and reports real wall-clock makespan
 * for the whole batch, checking answers stay bit-identical to the
 * sequential path.
 */
void
batchedFrontDoorSweep(const bench::SlicedKnobs &knobs,
                      json::Value &json_rows)
{
    using Request = crs::ClauseRetrievalServer::Request;

    // A read-heavy working set large enough that retrieval cost is
    // the index scan, as in the paper's disk-resident modules.
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 4;
    spec.clausesPerPredicate = 5000;
    spec.arityMin = 2;
    spec.arityMax = 2;
    spec.atomVocabulary = 2000;
    spec.seed = 19;
    term::Program program = kbgen.generate(spec);
    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    if (knobs.sliced)
        store.buildSlicedIndexes();
    store.finalize();

    term::TermReader reader(sym);
    std::vector<term::ParsedTerm> goals;
    // 8 clients x 8 jobs: keyed lookups (first argument bound),
    // round-robin over the stored predicates.
    Rng rng(41);
    for (int c = 0; c < 8; ++c) {
        for (int j = 0; j < 8; ++j) {
            std::string pred =
                "p" + std::to_string((c + j) % spec.predicates);
            std::string key =
                "a" + std::to_string(rng.below(spec.atomVocabulary));
            goals.push_back(reader.parseTerm(pred + "(" + key + ", B)"));
        }
    }
    std::vector<Request> batch;
    for (const term::ParsedTerm &g : goals)
        batch.push_back(Request{&g.arena, g.root, std::nullopt});

    Table t("Batched multi-client retrieval: wall-clock vs workers "
            "(64 jobs, auto mode)");
    t.header({"Workers", "Wall time", "Jobs/s", "Speedup",
              "Identical results"});
    std::vector<crs::RetrievalResult> baseline;
    double base_seconds = 0.0;
    for (std::uint32_t workers : {1u, 2u, 4u, 8u}) {
        crs::CrsConfig config;
        config.workers = workers;
        knobs.apply(config);
        crs::ClauseRetrievalServer server(sym, store, config);
        server.retrieveMany(batch);    // warm-up

        auto start = std::chrono::steady_clock::now();
        std::vector<crs::RetrievalResult> results =
            server.retrieveMany(batch);
        auto stop = std::chrono::steady_clock::now();
        double seconds =
            std::chrono::duration<double>(stop - start).count();

        bool identical = true;
        if (workers == 1) {
            baseline = results;
            base_seconds = seconds;
        } else {
            for (std::size_t i = 0; i < results.size(); ++i) {
                identical = identical &&
                    results[i].candidates == baseline[i].candidates &&
                    results[i].answers == baseline[i].answers;
            }
        }

        char wall[32], jps[32], speedup[32];
        std::snprintf(wall, sizeof(wall), "%.1f ms", seconds * 1e3);
        std::snprintf(jps, sizeof(jps), "%.0f",
                      static_cast<double>(batch.size()) / seconds);
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      base_seconds / seconds);
        t.row({std::to_string(workers), wall, jps, speedup,
               identical ? "yes" : "NO"});

        Tick queue_wait = 0;
        for (const crs::RetrievalResult &r : results)
            queue_wait += r.breakdown.queueWait;
        json::Value row = json::Value::object();
        row.set("sweep", "batched_front_door");
        row.set("workers", workers);
        row.set("sliced", knobs.sliced);
        if (knobs.batchWidth > 0)
            row.set("batch_width", knobs.batchWidth);
        row.set("wall_seconds", seconds);
        row.set("identical", identical);
        row.set("total_queue_wait_ticks", queue_wait);
        row.set("queries",
                static_cast<std::uint64_t>(
                    server.metrics().counter("crs.queries").value()));
        json_rows.push(std::move(row));
    }
    t.print(std::cout);
    std::printf("\n");
}

/**
 * The cache-hierarchy payoff on a multi-client workload: clients keep
 * re-asking a small set of hot goals (8 distinct goals, 8 times each).
 * A cold / cache-disabled server pays the full index scan every time;
 * a warm server serves the repeats from the L3 goal cache at the
 * modeled lookup cost.  The sweep reports total simulated service time
 * cold vs warm, and re-runs the warm server with --cache-bypass
 * semantics to show a bypassed request reproduces the cold numbers
 * bit-for-bit.
 */
void
repeatedGoalCacheSweep(json::Value &json_rows,
                       const bench::CacheKnobs &knobs)
{
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 4;
    spec.clausesPerPredicate = 2000;
    spec.arityMin = 2;
    spec.arityMax = 2;
    spec.atomVocabulary = 800;
    spec.seed = 23;
    term::Program program = kbgen.generate(spec);
    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();
    knobs.apply(store);

    // 8 hot goals, 8 repeats each, round-robin (so repeats are spread
    // across the run, not back-to-back).
    term::TermReader reader(sym);
    std::vector<term::ParsedTerm> goals;
    Rng rng(59);
    for (int g = 0; g < 8; ++g) {
        std::string pred = "p" + std::to_string(g % spec.predicates);
        std::string key =
            "a" + std::to_string(rng.below(spec.atomVocabulary));
        goals.push_back(reader.parseTerm(pred + "(" + key + ", B)"));
    }

    auto run = [&](crs::ClauseRetrievalServer &server, bool bypass) {
        struct Totals
        {
            Tick service = 0;
            std::uint64_t answers = 0;
        } totals;
        for (int repeat = 0; repeat < 8; ++repeat) {
            for (const term::ParsedTerm &goal : goals) {
                crs::RetrievalRequest req;
                req.arena = &goal.arena;
                req.goal = goal.root;
                req.bypassCache = bypass;
                crs::RetrievalResponse r = server.serve(req);
                totals.service += r.breakdown.serviceTime();
                totals.answers += r.answers.size();
            }
        }
        return totals;
    };

    crs::ClauseRetrievalServer cold(sym, store);
    auto cold_totals = run(cold, false);

    crs::CrsConfig warm_config;
    warm_config.cache.enabled = true;
    bench::CacheKnobs sized = knobs;
    sized.enabled = true;
    sized.apply(warm_config);
    crs::ClauseRetrievalServer warm(sym, store, warm_config);
    auto warm_totals = run(warm, false);
    // The server is warm now: every bypassed request must still run
    // the full pipeline and reproduce the cache-disabled numbers.
    auto bypass_totals = run(warm, true);

    double speedup = static_cast<double>(cold_totals.service) /
        static_cast<double>(warm_totals.service);
    bool bypass_identical =
        bypass_totals.service == cold_totals.service &&
        bypass_totals.answers == cold_totals.answers;

    Table t("Repeated-goal workload (64 jobs, 8 hot goals): cache "
            "hierarchy payoff");
    t.header({"Run", "Total service time", "Answers", "Speedup"});
    t.row({"cache disabled", bench::formatTime(cold_totals.service),
           std::to_string(cold_totals.answers), "1.00x"});
    char sp[32];
    std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
    t.row({"cache enabled", bench::formatTime(warm_totals.service),
           std::to_string(warm_totals.answers), sp});
    t.row({"warm + bypass", bench::formatTime(bypass_totals.service),
           std::to_string(bypass_totals.answers),
           bypass_identical ? "= cold (exact)" : "MISMATCH"});
    t.print(std::cout);
    std::printf("shape: repeats hit the L3 goal cache at the modeled "
                "lookup cost instead of\nre-scanning the index "
                "(expect >= 2x at the default sizes); bypassed "
                "requests on\nthe warm server reproduce the cold "
                "numbers exactly.\n\n");

    json::Value row = json::Value::object();
    row.set("sweep", "repeated_goal_cache");
    row.set("cold_service_ticks", cold_totals.service);
    row.set("warm_service_ticks", warm_totals.service);
    row.set("bypass_service_ticks", bypass_totals.service);
    row.set("speedup", speedup);
    row.set("bypass_identical", bypass_identical);
    row.set("goal_cache_entries",
            static_cast<std::uint64_t>(warm.goalCacheSize()));
    json_rows.push(std::move(row));
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string json_path = bench::jsonPathArg(argc, argv);
    bench::CacheKnobs cache_knobs = bench::cacheConfigArg(argc, argv);
    bench::SlicedKnobs sliced_knobs = bench::slicedConfigArg(argc, argv);
    json::Value json_rows = json::Value::array();

    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 8;
    spec.clausesPerPredicate = 400;
    spec.arityMin = 2;
    spec.arityMax = 2;
    spec.seed = 6;
    term::Program program = kbgen.generate(spec);

    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();

    struct Workload
    {
        const char *name;
        double updateFraction;
        bool disjoint;  ///< clients use distinct predicates
    };
    const Workload workloads[] = {
        {"read-only, one hot predicate", 0.0, false},
        {"10% updates, one hot predicate", 0.1, false},
        {"50% updates, one hot predicate", 0.5, false},
        {"50% updates, disjoint predicates", 0.5, true},
    };

    for (const Workload &w : workloads) {
        Table t(std::string("Workload: ") + w.name +
                "  (8 jobs per client)");
        t.header({"Clients", "Jobs", "Rounds", "Lock waits",
                  "Makespan"});
        for (std::uint32_t clients : {1u, 2u, 4u, 8u}) {
            crs::ClientSimulation sim(sym, store);
            Rng rng(clients * 31 + 7);
            for (std::uint32_t c = 0; c < clients; ++c) {
                crs::ClientId id = sim.addClient();
                std::uint32_t pred_index = w.disjoint
                    ? c % spec.predicates : 0;
                std::string pred = "p" + std::to_string(pred_index);
                for (int j = 0; j < 8; ++j) {
                    bool update = rng.chance(w.updateFraction);
                    sim.addJob(id, pred + "(A, B)", update);
                }
            }
            crs::SimulationResult r = sim.run();
            t.row({std::to_string(clients),
                   std::to_string(r.totalJobs),
                   std::to_string(r.rounds),
                   std::to_string(r.totalWaits),
                   bench::formatTime(r.makespan)});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    std::printf("shape: pure readers share rounds (waits stay 0 as "
                "clients grow); updates on a\nshared predicate "
                "serialize (waits grow with the client count); "
                "spreading the\nsame update load over disjoint "
                "predicates removes the contention.\n\n");

    batchedFrontDoorSweep(sliced_knobs, json_rows);
    repeatedGoalCacheSweep(json_rows, cache_knobs);
    std::printf("\nhost cores: %u\n",
                std::thread::hardware_concurrency());
    std::printf("shape: batching the clients' pending retrievals "
                "through retrieveMany() lets the\nsharded FS1 scan "
                "and the pipeline overlap turn host cores into "
                "throughput while\nevery client still sees exactly "
                "the sequential answers.  With fewer cores than\n"
                "workers the sweep demonstrates determinism only — "
                "speedup needs real cores.\n");

    if (!bench::writeBenchJson(json_path, "multi_client",
                               std::move(json_rows)))
        return 1;
    return 0;
}
