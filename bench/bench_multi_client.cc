/**
 * @file
 * Experiment C2 — multi-client access through the CRS ("simultaneous
 * access by multiple clients which involves procedures for concurrency
 * control and transaction handling", section 2.2).
 *
 * Sweeps the client count under read-heavy and update-heavy workloads
 * and reports lock waits, rounds, and makespan: readers of one
 * predicate share rounds, updates serialize them, and working sets
 * over disjoint predicates scale without contention.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "crs/client_sim.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "workload/kb_generator.hh"

using namespace clare;

int
main()
{
    setQuiet(true);

    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 8;
    spec.clausesPerPredicate = 400;
    spec.arityMin = 2;
    spec.arityMax = 2;
    spec.seed = 6;
    term::Program program = kbgen.generate(spec);

    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();

    struct Workload
    {
        const char *name;
        double updateFraction;
        bool disjoint;  ///< clients use distinct predicates
    };
    const Workload workloads[] = {
        {"read-only, one hot predicate", 0.0, false},
        {"10% updates, one hot predicate", 0.1, false},
        {"50% updates, one hot predicate", 0.5, false},
        {"50% updates, disjoint predicates", 0.5, true},
    };

    for (const Workload &w : workloads) {
        Table t(std::string("Workload: ") + w.name +
                "  (8 jobs per client)");
        t.header({"Clients", "Jobs", "Rounds", "Lock waits",
                  "Makespan"});
        for (std::uint32_t clients : {1u, 2u, 4u, 8u}) {
            crs::ClientSimulation sim(sym, store);
            Rng rng(clients * 31 + 7);
            for (std::uint32_t c = 0; c < clients; ++c) {
                crs::ClientId id = sim.addClient();
                std::uint32_t pred_index = w.disjoint
                    ? c % spec.predicates : 0;
                std::string pred = "p" + std::to_string(pred_index);
                for (int j = 0; j < 8; ++j) {
                    bool update = rng.chance(w.updateFraction);
                    sim.addJob(id, pred + "(A, B)", update);
                }
            }
            crs::SimulationResult r = sim.run();
            t.row({std::to_string(clients),
                   std::to_string(r.totalJobs),
                   std::to_string(r.rounds),
                   std::to_string(r.totalWaits),
                   bench::formatTime(r.makespan)});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    std::printf("shape: pure readers share rounds (waits stay 0 as "
                "clients grow); updates on a\nshared predicate "
                "serialize (waits grow with the client count); "
                "spreading the\nsame update load over disjoint "
                "predicates removes the contention.\n");
    return 0;
}
