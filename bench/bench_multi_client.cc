/**
 * @file
 * Experiment C2 — multi-client access through the CRS ("simultaneous
 * access by multiple clients which involves procedures for concurrency
 * control and transaction handling", section 2.2).
 *
 * Sweeps the client count under read-heavy and update-heavy workloads
 * and reports lock waits, rounds, and makespan: readers of one
 * predicate share rounds, updates serialize them, and working sets
 * over disjoint predicates scale without contention.
 *
 * The load-generator section takes the same question to the networked
 * tier: it boots a live loopback cluster (backend NetServers behind
 * the predicate-sharded Router) and drives it with concurrent wire
 * clients in closed loop (each client fires its next request when the
 * previous answer lands) and open loop (requests arrive on a fixed
 * schedule at --lg-qps regardless of completion, so queueing delay
 * shows up in the tail).  Latencies land in an obs histogram and are
 * reported as p50/p99/p999; a sample of the wire answers is checked
 * bit-identical to a single-process serve() of the same goals.
 *
 * The write-mix section (--write-mix=P, default 0.10) adds a live
 * writer: an in-process thread streams WAL-backed assertz commits
 * through a LiveStore while reader threads run a closed loop against
 * the same server, sweeping the reader count.  Snapshot-pinned probes
 * must stay bit-identical to the pre-write reference throughout — the
 * MVCC claim under real contention, with read latency percentiles to
 * show readers never stall on the writer.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <thread>

#include "bench_util.hh"
#include "crs/client_sim.hh"
#include "crs/live_update.hh"
#include "crs/server.hh"
#include "crs/store_io.hh"
#include "net/catalog.hh"
#include "net/client.hh"
#include "net/router.hh"
#include "net/server.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/table.hh"
#include "term/term_reader.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

using namespace clare;

namespace {

/**
 * The batched front door: every client's pending retrievals enter one
 * serveBatch() call and the sharded pipeline serves them — FS1 of
 * query k+1 overlapped with FS2 + host unification of query k.  The
 * table sweeps the worker count and reports real wall-clock makespan
 * for the whole batch, checking answers stay bit-identical to the
 * sequential path.
 */
void
batchedFrontDoorSweep(const bench::SlicedKnobs &knobs,
                      json::Value &json_rows)
{
    using Request = crs::RetrievalRequest;

    // A read-heavy working set large enough that retrieval cost is
    // the index scan, as in the paper's disk-resident modules.
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 4;
    spec.clausesPerPredicate = 5000;
    spec.arityMin = 2;
    spec.arityMax = 2;
    spec.atomVocabulary = 2000;
    spec.seed = 19;
    term::Program program = kbgen.generate(spec);
    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    if (knobs.sliced)
        store.buildSlicedIndexes();
    store.finalize();

    term::TermReader reader(sym);
    std::vector<term::ParsedTerm> goals;
    // 8 clients x 8 jobs: keyed lookups (first argument bound),
    // round-robin over the stored predicates.
    Rng rng(41);
    for (int c = 0; c < 8; ++c) {
        for (int j = 0; j < 8; ++j) {
            std::string pred =
                "p" + std::to_string((c + j) % spec.predicates);
            std::string key =
                "a" + std::to_string(rng.below(spec.atomVocabulary));
            goals.push_back(reader.parseTerm(pred + "(" + key + ", B)"));
        }
    }
    std::vector<Request> batch;
    for (const term::ParsedTerm &g : goals) {
        Request r;
        r.arena = &g.arena;
        r.goal = g.root;
        batch.push_back(r);
    }

    Table t("Batched multi-client retrieval: wall-clock vs workers "
            "(64 jobs, auto mode)");
    t.header({"Workers", "Wall time", "Jobs/s", "Speedup",
              "Identical results"});
    std::vector<crs::RetrievalResponse> baseline;
    double base_seconds = 0.0;
    for (std::uint32_t workers : {1u, 2u, 4u, 8u}) {
        crs::CrsConfig config;
        config.workers = workers;
        knobs.apply(config);
        crs::ClauseRetrievalServer server(sym, store, config);
        server.serveBatch(batch);    // warm-up

        auto start = std::chrono::steady_clock::now();
        std::vector<crs::RetrievalResponse> results =
            server.serveBatch(batch);
        auto stop = std::chrono::steady_clock::now();
        double seconds =
            std::chrono::duration<double>(stop - start).count();

        bool identical = true;
        if (workers == 1) {
            baseline = results;
            base_seconds = seconds;
        } else {
            for (std::size_t i = 0; i < results.size(); ++i) {
                identical = identical &&
                    results[i].candidates == baseline[i].candidates &&
                    results[i].answers == baseline[i].answers;
            }
        }

        char wall[32], jps[32], speedup[32];
        std::snprintf(wall, sizeof(wall), "%.1f ms", seconds * 1e3);
        std::snprintf(jps, sizeof(jps), "%.0f",
                      static_cast<double>(batch.size()) / seconds);
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      base_seconds / seconds);
        t.row({std::to_string(workers), wall, jps, speedup,
               identical ? "yes" : "NO"});

        Tick queue_wait = 0;
        for (const crs::RetrievalResponse &r : results)
            queue_wait += r.breakdown.queueWait;
        json::Value row = json::Value::object();
        row.set("sweep", "batched_front_door");
        row.set("workers", workers);
        row.set("sliced", knobs.sliced);
        if (knobs.batchWidth > 0)
            row.set("batch_width", knobs.batchWidth);
        row.set("wall_seconds", seconds);
        row.set("identical", identical);
        row.set("total_queue_wait_ticks", queue_wait);
        row.set("queries",
                static_cast<std::uint64_t>(
                    server.metrics().counter("crs.queries").value()));
        json_rows.push(std::move(row));
    }
    t.print(std::cout);
    std::printf("\n");
}

/**
 * The cache-hierarchy payoff on a multi-client workload: clients keep
 * re-asking a small set of hot goals (8 distinct goals, 8 times each).
 * A cold / cache-disabled server pays the full index scan every time;
 * a warm server serves the repeats from the L3 goal cache at the
 * modeled lookup cost.  The sweep reports total simulated service time
 * cold vs warm, and re-runs the warm server with --cache-bypass
 * semantics to show a bypassed request reproduces the cold numbers
 * bit-for-bit.
 */
void
repeatedGoalCacheSweep(json::Value &json_rows,
                       const bench::CacheKnobs &knobs)
{
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 4;
    spec.clausesPerPredicate = 2000;
    spec.arityMin = 2;
    spec.arityMax = 2;
    spec.atomVocabulary = 800;
    spec.seed = 23;
    term::Program program = kbgen.generate(spec);
    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();
    knobs.apply(store);

    // 8 hot goals, 8 repeats each, round-robin (so repeats are spread
    // across the run, not back-to-back).
    term::TermReader reader(sym);
    std::vector<term::ParsedTerm> goals;
    Rng rng(59);
    for (int g = 0; g < 8; ++g) {
        std::string pred = "p" + std::to_string(g % spec.predicates);
        std::string key =
            "a" + std::to_string(rng.below(spec.atomVocabulary));
        goals.push_back(reader.parseTerm(pred + "(" + key + ", B)"));
    }

    auto run = [&](crs::ClauseRetrievalServer &server, bool bypass) {
        struct Totals
        {
            Tick service = 0;
            std::uint64_t answers = 0;
        } totals;
        for (int repeat = 0; repeat < 8; ++repeat) {
            for (const term::ParsedTerm &goal : goals) {
                crs::RetrievalRequest req;
                req.arena = &goal.arena;
                req.goal = goal.root;
                req.bypassCache = bypass;
                crs::RetrievalResponse r = server.serve(req);
                totals.service += r.breakdown.serviceTime();
                totals.answers += r.answers.size();
            }
        }
        return totals;
    };

    crs::ClauseRetrievalServer cold(sym, store);
    auto cold_totals = run(cold, false);

    crs::CrsConfig warm_config;
    warm_config.cache.enabled = true;
    bench::CacheKnobs sized = knobs;
    sized.enabled = true;
    sized.apply(warm_config);
    crs::ClauseRetrievalServer warm(sym, store, warm_config);
    auto warm_totals = run(warm, false);
    // The server is warm now: every bypassed request must still run
    // the full pipeline and reproduce the cache-disabled numbers.
    auto bypass_totals = run(warm, true);

    double speedup = static_cast<double>(cold_totals.service) /
        static_cast<double>(warm_totals.service);
    bool bypass_identical =
        bypass_totals.service == cold_totals.service &&
        bypass_totals.answers == cold_totals.answers;

    Table t("Repeated-goal workload (64 jobs, 8 hot goals): cache "
            "hierarchy payoff");
    t.header({"Run", "Total service time", "Answers", "Speedup"});
    t.row({"cache disabled", bench::formatTime(cold_totals.service),
           std::to_string(cold_totals.answers), "1.00x"});
    char sp[32];
    std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
    t.row({"cache enabled", bench::formatTime(warm_totals.service),
           std::to_string(warm_totals.answers), sp});
    t.row({"warm + bypass", bench::formatTime(bypass_totals.service),
           std::to_string(bypass_totals.answers),
           bypass_identical ? "= cold (exact)" : "MISMATCH"});
    t.print(std::cout);
    std::printf("shape: repeats hit the L3 goal cache at the modeled "
                "lookup cost instead of\nre-scanning the index "
                "(expect >= 2x at the default sizes); bypassed "
                "requests on\nthe warm server reproduce the cold "
                "numbers exactly.\n\n");

    json::Value row = json::Value::object();
    row.set("sweep", "repeated_goal_cache");
    row.set("cold_service_ticks", cold_totals.service);
    row.set("warm_service_ticks", warm_totals.service);
    row.set("bypass_service_ticks", bypass_totals.service);
    row.set("speedup", speedup);
    row.set("bypass_identical", bypass_identical);
    row.set("goal_cache_entries",
            static_cast<std::uint64_t>(warm.goalCacheSize()));
    json_rows.push(std::move(row));
}

/**
 * Live read/write mix (Experiment C3): one writer thread streams
 * single-clause assertz commits (WAL sync + MVCC publish each) into
 * the hot predicate while N reader threads run keyed lookups in closed
 * loop against the same server.  The op budget is split by
 * @p write_mix.  Throughout the run a snapshot-0 probe goal is served
 * alongside the load and checked bit-identical (answers AND modeled
 * ticks) to the reference captured before the writer started.
 */
void
liveWriteMixSweep(double write_mix, json::Value &json_rows)
{
    constexpr std::uint32_t kOps = 512;
    const auto writes = static_cast<std::uint32_t>(
        write_mix * kOps + 0.5);
    const std::uint32_t reads = kOps - writes;

    Table t("Live write mix (" + std::to_string(writes) + " assertz "
            "commits + " + std::to_string(reads) + " reads, hot "
            "predicate p0)");
    t.header({"Readers", "Wall time", "Reads/s", "Commits/s",
              "Read p50", "Read p99", "Snapshot reads"});

    for (std::uint32_t readers : {1u, 2u, 4u}) {
        // Fresh state per row so every reader count starts from the
        // same store generation.
        term::SymbolTable sym;
        workload::KbGenerator kbgen(sym);
        workload::KbSpec spec;
        spec.predicates = 4;
        spec.clausesPerPredicate = 2000;
        spec.arityMin = 2;
        spec.arityMax = 2;
        spec.atomVocabulary = 800;
        spec.seed = 83;
        term::Program program = kbgen.generate(spec);
        crs::PredicateStore store(sym, scw::CodewordGenerator{});
        store.addProgram(program);
        store.buildSlicedIndexes();
        store.finalize();

        std::string wal_path =
            (std::filesystem::temp_directory_path() /
             ("clare_bench_write_mix_" + std::to_string(readers) +
              ".wal")).string();
        std::filesystem::remove(wal_path);
        crs::LiveStore live(store, sym, wal_path);
        crs::CrsConfig config;
        config.workers = 4;
        crs::ClauseRetrievalServer server(sym, store, config);
        live.attachSink(&server);

        // Pre-parse everything so all symbol interning happens before
        // a second thread exists (the SymbolTable is unsynchronized;
        // afterwards the commit path only performs lookups).
        term::TermReader reader(sym);
        std::vector<term::Clause> stream;
        for (std::uint32_t i = 0; i < writes; ++i)
            stream.push_back(reader.parseClause(
                "p0(live" + std::to_string(i) + ", live" +
                std::to_string(i + 1) + ")."));
        std::vector<term::ParsedTerm> goals;
        Rng rng(97);
        for (int g = 0; g < 32; ++g) {
            std::string pred = "p" + std::to_string(g % spec.predicates);
            std::string key =
                "a" + std::to_string(rng.below(spec.atomVocabulary));
            goals.push_back(reader.parseTerm(pred + "(" + key + ", B)"));
        }
        term::ParsedTerm probe = reader.parseTerm("p0(A, B)");
        crs::RetrievalRequest probe_req;
        probe_req.arena = &probe.arena;
        probe_req.goal = probe.root;
        probe_req.snapshot = 0;
        const crs::RetrievalResponse probe_ref =
            server.serve(probe_req);

        using Clock = std::chrono::steady_clock;
        obs::Histogram latency(
            obs::Histogram::exponential(1.0, 1.5, 40));
        std::atomic<std::uint32_t> next{0};
        std::atomic<bool> snapshot_identical{true};

        auto start = Clock::now();
        std::thread writer([&] {
            for (const term::Clause &clause : stream)
                live.assertz(clause);
        });
        std::vector<std::thread> threads;
        for (std::uint32_t c = 0; c < readers; ++c) {
            threads.emplace_back([&] {
                while (true) {
                    std::uint32_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= reads)
                        break;
                    const term::ParsedTerm &g = goals[i % goals.size()];
                    crs::RetrievalRequest request;
                    request.arena = &g.arena;
                    request.goal = g.root;
                    Clock::time_point begin = Clock::now();
                    server.serve(request);
                    latency.record(
                        std::chrono::duration<double, std::micro>(
                            Clock::now() - begin).count());
                    // Every 16th read re-probes the pinned snapshot:
                    // the pre-write view must survive the writer.
                    if (i % 16 == 0) {
                        crs::RetrievalResponse snap =
                            server.serve(probe_req);
                        if (snap.answers != probe_ref.answers ||
                            snap.elapsed != probe_ref.elapsed) {
                            snapshot_identical.store(
                                false, std::memory_order_relaxed);
                        }
                    }
                }
            });
        }
        writer.join();
        for (std::thread &th : threads)
            th.join();
        double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();

        double p50 = obs::histogramPercentile(latency, 0.50);
        double p99 = obs::histogramPercentile(latency, 0.99);
        bool identical =
            snapshot_identical.load(std::memory_order_relaxed) &&
            store.headGeneration() == writes;
        char wall[32], rps[32], cps[32], p50s[32], p99s[32];
        std::snprintf(wall, sizeof(wall), "%.1f ms", seconds * 1e3);
        std::snprintf(rps, sizeof(rps), "%.0f", reads / seconds);
        std::snprintf(cps, sizeof(cps), "%.0f", writes / seconds);
        std::snprintf(p50s, sizeof(p50s), "%.0f us", p50);
        std::snprintf(p99s, sizeof(p99s), "%.0f us", p99);
        t.row({std::to_string(readers), wall, rps, cps, p50s, p99s,
               identical ? "identical" : "MISMATCH"});

        json::Value row = json::Value::object();
        row.set("sweep", "live_write_mix");
        row.set("write_mix", write_mix);
        row.set("readers", readers);
        row.set("writes", writes);
        row.set("reads", reads);
        row.set("wall_seconds", seconds);
        row.set("reads_per_second", reads / seconds);
        row.set("commits_per_second", writes / seconds);
        row.set("read_p50_us", p50);
        row.set("read_p99_us", p99);
        row.set("snapshot_identical", identical);
        row.set("head_generation", store.headGeneration());
        json_rows.push(std::move(row));

        std::filesystem::remove(wal_path);
        if (!identical) {
            t.print(std::cout);
            std::exit(1);
        }
    }
    t.print(std::cout);
    std::printf("shape: readers never block on the writer (MVCC "
                "publish swaps a version pointer);\nsnapshot-pinned "
                "probes reproduce the pre-write answers and modeled "
                "ticks exactly\nwhile commits land, at every reader "
                "count.\n\n");
}

/** Load-generator knobs (`--lg-*`; `--no-router` skips the section). */
struct LoadGenKnobs
{
    bool enabled = true;
    std::uint32_t clients = 4;    ///< concurrent wire clients
    std::uint32_t requests = 256; ///< per sweep (closed and open)
    double qps = 2000.0;          ///< open-loop arrival rate
};

/** `--write-mix=P`: fraction of the op budget spent as live commits. */
double
writeMixArg(int argc, char **argv)
{
    double mix = 0.1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--write-mix=", 12) == 0)
            mix = std::strtod(argv[i] + 12, nullptr);
    }
    if (mix < 0.0)
        mix = 0.0;
    if (mix > 0.9)
        mix = 0.9;
    return mix;
}

LoadGenKnobs
loadGenConfigArg(int argc, char **argv)
{
    LoadGenKnobs knobs;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-router") == 0)
            knobs.enabled = false;
        else if (std::strncmp(argv[i], "--lg-clients=", 13) == 0)
            knobs.clients = static_cast<std::uint32_t>(
                std::strtoul(argv[i] + 13, nullptr, 10));
        else if (std::strncmp(argv[i], "--lg-requests=", 14) == 0)
            knobs.requests = static_cast<std::uint32_t>(
                std::strtoul(argv[i] + 14, nullptr, 10));
        else if (std::strncmp(argv[i], "--lg-qps=", 9) == 0)
            knobs.qps = std::strtod(argv[i] + 9, nullptr);
    }
    if (knobs.clients == 0)
        knobs.clients = 1;
    return knobs;
}

/** One backend of the in-process cluster: its own schema copy. */
struct InProcessBackend
{
    term::SymbolTable symbols;
    std::unique_ptr<crs::PredicateStore> store;
    std::unique_ptr<crs::ClauseRetrievalServer> server;
    std::unique_ptr<net::NetServer> net;
};

/** Results of one load run against the router. */
struct LoadRunResult
{
    double wallSeconds = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t failures = 0;
    double p50 = 0.0, p99 = 0.0, p999 = 0.0;
};

/**
 * Drive @p total requests through @p port with @p clients threads.
 * Closed loop when @p qps <= 0; otherwise open loop with request i
 * scheduled at i/qps and latency measured from the *scheduled* start
 * (queueing delay is part of the answer, as in any open-loop bench).
 */
LoadRunResult
runLoad(std::uint16_t port, const std::vector<term::ParsedTerm> &goals,
        std::uint32_t clients, std::uint32_t total, double qps)
{
    using Clock = std::chrono::steady_clock;
    obs::Histogram latency(obs::Histogram::exponential(10.0, 1.5, 40));
    std::atomic<std::uint32_t> next{0};
    std::atomic<std::uint64_t> failures{0};

    auto start = Clock::now();
    std::vector<std::thread> threads;
    for (std::uint32_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            net::NetClient client(port, "lg-client-" +
                                            std::to_string(c));
            while (true) {
                std::uint32_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= total)
                    break;
                Clock::time_point begin = Clock::now();
                if (qps > 0.0) {
                    // Open loop: arrivals on the fixed schedule.
                    begin = start + std::chrono::microseconds(
                        static_cast<std::uint64_t>(i * 1e6 / qps));
                    std::this_thread::sleep_until(begin);
                }
                const term::ParsedTerm &g = goals[i % goals.size()];
                crs::RetrievalRequest request;
                request.arena = &g.arena;
                request.goal = g.root;
                try {
                    client.serve(request);
                    latency.record(
                        std::chrono::duration<double, std::micro>(
                            Clock::now() - begin).count());
                } catch (const Error &) {
                    failures.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    LoadRunResult r;
    r.wallSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    r.completed = latency.count();
    r.failures = failures.load();
    r.p50 = obs::histogramPercentile(latency, 0.50);
    r.p99 = obs::histogramPercentile(latency, 0.99);
    r.p999 = obs::histogramPercentile(latency, 0.999);
    return r;
}

/**
 * Boot 2 backends + router on loopback, drive them closed- and
 * open-loop, and verify a sample of wire answers against the local
 * front door.
 */
void
routerLoadSweep(const LoadGenKnobs &knobs, json::Value &json_rows)
{
    // Build and persist a store so every backend (and the verifying
    // local server) opens the identical schema, as real processes do.
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 4;
    spec.clausesPerPredicate = 1000;
    spec.arityMin = 2;
    spec.arityMax = 2;
    spec.atomVocabulary = 500;
    spec.seed = 67;
    term::Program program = kbgen.generate(spec);

    // Goals before saveStore so their symbols persist in the schema.
    term::TermReader reader(sym);
    std::vector<term::ParsedTerm> goals;
    Rng rng(71);
    for (int g = 0; g < 32; ++g) {
        std::string pred = "p" + std::to_string(g % spec.predicates);
        std::string key =
            "a" + std::to_string(rng.below(spec.atomVocabulary));
        goals.push_back(reader.parseTerm(pred + "(" + key + ", B)"));
    }

    crs::PredicateStore built(sym, scw::CodewordGenerator{});
    built.addProgram(program);
    built.finalize();
    std::string dir = (std::filesystem::temp_directory_path() /
                       "clare_bench_lg_store").string();
    std::filesystem::remove_all(dir);
    crs::saveStore(dir, built, sym);

    // 2 backends + router, replication 2: every request has a
    // failover target, and both backends see load.
    std::vector<InProcessBackend> backends(2);
    net::RouterConfig router_config;
    for (InProcessBackend &b : backends) {
        b.store = std::make_unique<crs::PredicateStore>(
            crs::loadStore(dir, b.symbols));
        b.server = std::make_unique<crs::ClauseRetrievalServer>(
            b.symbols, *b.store);
        b.net = std::make_unique<net::NetServer>(b.symbols, *b.store,
                                                 *b.server);
        b.net->start();
        router_config.backendPorts.push_back(b.net->port());
    }
    router_config.replication = 2;
    net::Router router(router_config);
    router.start();

    Table t("Router load generator (2 backends, replication 2, " +
            std::to_string(knobs.clients) + " wire clients, " +
            std::to_string(knobs.requests) + " requests)");
    t.header({"Loop", "Wall time", "QPS", "p50", "p99", "p999",
              "Failures"});
    auto report = [&](const char *loop, double target_qps,
                      const LoadRunResult &r) {
        char wall[32], qv[32], p50[32], p99[32], p999[32];
        std::snprintf(wall, sizeof(wall), "%.1f ms",
                      r.wallSeconds * 1e3);
        std::snprintf(qv, sizeof(qv), "%.0f",
                      static_cast<double>(r.completed) / r.wallSeconds);
        std::snprintf(p50, sizeof(p50), "%.0f us", r.p50);
        std::snprintf(p99, sizeof(p99), "%.0f us", r.p99);
        std::snprintf(p999, sizeof(p999), "%.0f us", r.p999);
        t.row({loop, wall, qv, p50, p99, p999,
               std::to_string(r.failures)});

        json::Value row = json::Value::object();
        row.set("sweep", "router_load");
        row.set("loop", loop);
        row.set("clients", knobs.clients);
        row.set("requests", knobs.requests);
        if (target_qps > 0.0)
            row.set("target_qps", target_qps);
        row.set("wall_seconds", r.wallSeconds);
        row.set("achieved_qps",
                static_cast<double>(r.completed) / r.wallSeconds);
        row.set("completed", r.completed);
        row.set("failures", r.failures);
        row.set("p50_us", r.p50);
        row.set("p99_us", r.p99);
        row.set("p999_us", r.p999);
        json_rows.push(std::move(row));
    };

    report("closed", 0.0,
           runLoad(router.port(), goals, knobs.clients, knobs.requests,
                   0.0));
    report("open", knobs.qps,
           runLoad(router.port(), goals, knobs.clients, knobs.requests,
                   knobs.qps));

    // Exactness spot check: every distinct goal once through the wire
    // vs the local front door, bit-identical field for field.
    crs::ClauseRetrievalServer local(sym, built);
    net::NetClient probe(router.port(), "lg-verify");
    bool identical = true;
    for (const term::ParsedTerm &g : goals) {
        crs::RetrievalRequest request;
        request.arena = &g.arena;
        request.goal = g.root;
        identical = identical &&
            net::responsesIdentical(probe.serve(request),
                                    local.serve(request));
    }
    t.row({"verify", "-", "-", "-", "-", "-",
           identical ? "identical" : "MISMATCH"});
    t.print(std::cout);
    std::printf("shape: closed loop measures service capacity (each "
                "client waits for its answer);\nopen loop at a fixed "
                "arrival rate exposes queueing in p99/p999.  Wire "
                "answers\nmatch the local front door exactly.\n\n");

    json::Value vrow = json::Value::object();
    vrow.set("sweep", "router_load_verify");
    vrow.set("identical", identical);
    vrow.set("relayed", static_cast<std::uint64_t>(
        router.metrics().counter("router.relayed").value()));
    vrow.set("failovers", static_cast<std::uint64_t>(
        router.metrics().counter("router.failovers").value()));
    json_rows.push(std::move(vrow));

    router.stop();
    for (InProcessBackend &b : backends)
        b.net->stop();
    std::filesystem::remove_all(dir);

    if (!identical)
        std::exit(1);
}

/**
 * Data sharding: split the store itself into per-predicate slices
 * (crs::saveStoreSlice + net::ShardCatalog), boot a slice-backed
 * 3-shard x 2-replica cluster behind a catalog-routed Router, and
 * drive a mixed-predicate batch through the scatter/gather path.
 * Reports the per-backend store footprint (dataBytes + indexBytes of
 * the loaded slice vs the full store — the memory claim of ROADMAP
 * item 1) and checks the merged batch bit-identical to a local
 * serveBatch() on the unsharded store.
 */
void
shardedClusterSweep(json::Value &json_rows)
{
    constexpr std::uint32_t kShards = 3;
    constexpr std::uint32_t kReplicas = 2;

    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 12;
    spec.clausesPerPredicate = 1000;
    spec.arityMin = 2;
    spec.arityMax = 2;
    spec.atomVocabulary = 500;
    spec.seed = 73;
    term::Program program = kbgen.generate(spec);

    // Goals before saveStore so their symbols persist in the schema.
    term::TermReader reader(sym);
    std::vector<term::ParsedTerm> goals;
    Rng rng(79);
    for (int g = 0; g < 96; ++g) {
        std::string pred =
            "p" + std::to_string(rng.below(spec.predicates));
        std::string key =
            "a" + std::to_string(rng.below(spec.atomVocabulary));
        goals.push_back(reader.parseTerm(pred + "(" + key + ", B)"));
    }

    crs::PredicateStore built(sym, scw::CodewordGenerator{});
    built.addProgram(program);
    built.finalize();
    std::string dir = (std::filesystem::temp_directory_path() /
                       "clare_bench_shard_store").string();
    std::filesystem::remove_all(dir);
    crs::saveStore(dir + "/full", built, sym);

    // Round-robin the predicates into kShards slices + the catalog.
    net::ShardCatalog catalog;
    {
        const std::vector<term::PredicateId> &preds =
            program.predicates();
        std::vector<std::vector<term::PredicateId>> slices(kShards);
        for (std::size_t i = 0; i < preds.size(); ++i) {
            std::uint32_t shard = static_cast<std::uint32_t>(i % kShards);
            catalog.assign(preds[i], shard);
            slices[shard].push_back(preds[i]);
        }
        for (std::uint32_t s = 0; s < kShards; ++s) {
            std::vector<std::uint32_t> replicas;
            for (std::uint32_t r = 0; r < kReplicas; ++r)
                replicas.push_back(s * kReplicas + r);
            catalog.setReplicas(s, replicas);
            crs::saveStoreSlice(dir + "/slice-" + std::to_string(s),
                                built, sym, slices[s]);
        }
    }

    std::vector<InProcessBackend> backends(kShards * kReplicas);
    net::RouterConfig router_config;
    for (std::uint32_t i = 0; i < kShards * kReplicas; ++i) {
        InProcessBackend &b = backends[i];
        b.store = std::make_unique<crs::PredicateStore>(crs::loadStore(
            dir + "/slice-" + std::to_string(i / kReplicas),
            b.symbols));
        b.server = std::make_unique<crs::ClauseRetrievalServer>(
            b.symbols, *b.store);
        b.net = std::make_unique<net::NetServer>(b.symbols, *b.store,
                                                 *b.server);
        b.net->start();
        router_config.backendPorts.push_back(b.net->port());
    }
    net::Router router(router_config);
    router.setCatalog(catalog);
    router.start();

    const std::uint64_t full_bytes =
        built.dataBytes() + built.indexBytes();

    Table t("Sharded cluster (3 shards x 2 replicas, catalog-routed "
            "scatter/gather)");
    t.header({"Backend", "Store bytes", "Of full", "Predicates"});
    json::Value backend_rows = json::Value::array();
    for (std::uint32_t i = 0; i < backends.size(); ++i) {
        const crs::PredicateStore &s = *backends[i].store;
        std::uint64_t bytes = s.dataBytes() + s.indexBytes();
        char frac[32];
        std::snprintf(frac, sizeof(frac), "%.2fx", full_bytes > 0
                          ? static_cast<double>(bytes) / full_bytes
                          : 0.0);
        t.row({"shard " + std::to_string(i / kReplicas) + " replica " +
                   std::to_string(i % kReplicas),
               std::to_string(bytes), frac,
               std::to_string(s.predicates().size())});
        json::Value row = json::Value::object();
        row.set("sweep", "sharded_cluster_backend");
        row.set("backend", i);
        row.set("shard", i / kReplicas);
        row.set("store_bytes", bytes);
        row.set("full_store_bytes", full_bytes);
        row.set("predicates", s.predicates().size());
        backend_rows.push(std::move(row));
    }
    t.row({"full store", std::to_string(full_bytes), "1.00x",
           std::to_string(built.predicates().size())});

    // The mixed-predicate batch through the wire, merged in batch
    // order, vs the unsharded local batch front door.
    std::vector<crs::RetrievalRequest> batch;
    for (const term::ParsedTerm &g : goals) {
        crs::RetrievalRequest request;
        request.arena = &g.arena;
        request.goal = g.root;
        batch.push_back(request);
    }
    crs::ClauseRetrievalServer local(sym, built);
    net::NetClient client(router.port(), "shard-bench");

    using Clock = std::chrono::steady_clock;
    auto wire_begin = Clock::now();
    std::vector<crs::RetrievalResponse> wire = client.serveBatch(batch);
    double wire_seconds =
        std::chrono::duration<double>(Clock::now() - wire_begin).count();
    auto local_begin = Clock::now();
    std::vector<crs::RetrievalResponse> ref = local.serveBatch(batch);
    double local_seconds =
        std::chrono::duration<double>(Clock::now() - local_begin)
            .count();
    bool identical = wire.size() == ref.size();
    for (std::size_t i = 0; identical && i < wire.size(); ++i)
        identical = net::responsesIdentical(wire[i], ref[i]);

    char wirebuf[32], localbuf[32];
    std::snprintf(wirebuf, sizeof(wirebuf), "%.1f ms",
                  wire_seconds * 1e3);
    std::snprintf(localbuf, sizeof(localbuf), "%.1f ms",
                  local_seconds * 1e3);
    t.row({"batch 96 (wire)", wirebuf, "-",
           identical ? "identical" : "MISMATCH"});
    t.row({"batch 96 (local)", localbuf, "-", "-"});
    t.print(std::cout);
    std::printf("shape: each backend holds ~1/%u of the store (the "
                "full symbol table rides along\nas shared schema), "
                "and the catalog-routed scatter/gather merge is "
                "bit-identical to\nthe unsharded serveBatch().\n\n",
                kShards);

    json::Value row = json::Value::object();
    row.set("sweep", "sharded_cluster");
    row.set("shards", kShards);
    row.set("replicas", kReplicas);
    row.set("backends", std::move(backend_rows));
    row.set("batch_items", batch.size());
    row.set("wire_seconds", wire_seconds);
    row.set("local_seconds", local_seconds);
    row.set("identical", identical);
    row.set("subbatches", static_cast<std::uint64_t>(
        router.metrics().counter("router.subbatches").value()));
    json_rows.push(std::move(row));

    router.stop();
    for (InProcessBackend &b : backends)
        b.net->stop();
    std::filesystem::remove_all(dir);

    if (!identical)
        std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string json_path = bench::jsonPathArg(argc, argv);
    bench::CacheKnobs cache_knobs = bench::cacheConfigArg(argc, argv);
    bench::SlicedKnobs sliced_knobs = bench::slicedConfigArg(argc, argv);
    LoadGenKnobs lg_knobs = loadGenConfigArg(argc, argv);
    json::Value json_rows = json::Value::array();

    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 8;
    spec.clausesPerPredicate = 400;
    spec.arityMin = 2;
    spec.arityMax = 2;
    spec.seed = 6;
    term::Program program = kbgen.generate(spec);

    crs::PredicateStore store(sym, scw::CodewordGenerator{});
    store.addProgram(program);
    store.finalize();

    struct Workload
    {
        const char *name;
        double updateFraction;
        bool disjoint;  ///< clients use distinct predicates
    };
    const Workload workloads[] = {
        {"read-only, one hot predicate", 0.0, false},
        {"10% updates, one hot predicate", 0.1, false},
        {"50% updates, one hot predicate", 0.5, false},
        {"50% updates, disjoint predicates", 0.5, true},
    };

    for (const Workload &w : workloads) {
        Table t(std::string("Workload: ") + w.name +
                "  (8 jobs per client)");
        t.header({"Clients", "Jobs", "Rounds", "Lock waits",
                  "Makespan"});
        for (std::uint32_t clients : {1u, 2u, 4u, 8u}) {
            crs::ClientSimulation sim(sym, store);
            Rng rng(clients * 31 + 7);
            for (std::uint32_t c = 0; c < clients; ++c) {
                crs::ClientId id = sim.addClient();
                std::uint32_t pred_index = w.disjoint
                    ? c % spec.predicates : 0;
                std::string pred = "p" + std::to_string(pred_index);
                for (int j = 0; j < 8; ++j) {
                    bool update = rng.chance(w.updateFraction);
                    sim.addJob(id, pred + "(A, B)", update);
                }
            }
            crs::SimulationResult r = sim.run();
            t.row({std::to_string(clients),
                   std::to_string(r.totalJobs),
                   std::to_string(r.rounds),
                   std::to_string(r.totalWaits),
                   bench::formatTime(r.makespan)});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    std::printf("shape: pure readers share rounds (waits stay 0 as "
                "clients grow); updates on a\nshared predicate "
                "serialize (waits grow with the client count); "
                "spreading the\nsame update load over disjoint "
                "predicates removes the contention.\n\n");

    batchedFrontDoorSweep(sliced_knobs, json_rows);
    repeatedGoalCacheSweep(json_rows, cache_knobs);
    liveWriteMixSweep(writeMixArg(argc, argv), json_rows);
    if (lg_knobs.enabled) {
        routerLoadSweep(lg_knobs, json_rows);
        shardedClusterSweep(json_rows);
    }
    std::printf("\nhost cores: %u\n",
                std::thread::hardware_concurrency());
    std::printf("shape: batching the clients' pending retrievals "
                "through serveBatch() lets the\nsharded FS1 scan "
                "and the pipeline overlap turn host cores into "
                "throughput while\nevery client still sees exactly "
                "the sequential answers.  With fewer cores than\n"
                "workers the sweep demonstrates determinism only — "
                "speedup needs real cores.\n");

    if (!bench::writeBenchJson(json_path, "multi_client",
                               std::move(json_rows)))
        return 1;
    return 0;
}
