/**
 * @file
 * Experiment M1 — the host-interface tables of section 3: the
 * operational-mode encoding of the control register, the filter-select
 * and match-found bits, and the documented driver sequence
 * (Microprogramming -> Set Query -> Search -> Read Result) driven
 * against the board model end to end.
 */

#include <cstdio>
#include <iostream>

#include "clare/board.hh"
#include "storage/clause_file.hh"
#include "support/table.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"

using namespace clare;
using namespace clare::engine;

int
main()
{
    Table modes("Operational modes (control register b0/b1)");
    modes.header({"Operational Mode", "b0", "b1", "register value"});
    for (OperationalMode mode : {OperationalMode::ReadResult,
                                 OperationalMode::Search,
                                 OperationalMode::Microprogramming,
                                 OperationalMode::SetQuery}) {
        std::uint8_t v = ControlRegister::compose(mode,
                                                  FilterSelect::Fs1);
        modes.row({operationalModeName(mode),
                   std::to_string(v & 1), std::to_string((v >> 1) & 1),
                   "0x0" + std::string(1, "0123456789abcdef"[v & 0xf])});
    }
    modes.print(std::cout);

    std::printf("\nFilter select (b2): 0 -> FS1, 1 -> FS2 "
                "(mutually exclusive)\n");
    std::printf("Match found (b7): set by the hardware at the end of a "
                "successful search\n");
    std::printf("VME window: [0x%08x, 0x%08x] (%u bytes; the paper's "
                "'128k' conflicts\nwith its own hex range — we follow "
                "the hex range)\n\n",
                kVmeWindowBase, kVmeWindowEnd, kVmeWindowBytes);

    // Drive the documented FS2 retrieval sequence.
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    storage::ClauseFileBuilder builder(writer);
    for (const auto &c : reader.parseProgram(
             "married_couple(john, mary).\n"
             "married_couple(pat, pat).\n"
             "married_couple(ann, bob).\n"))
        builder.add(c);
    storage::ClauseFile file = builder.finish();

    ClareBoard board{scw::CodewordGenerator{}};
    ClareDriver driver(board);
    term::ParsedQuery q = reader.parseQuery("married_couple(S, S)");
    fs2::Fs2SearchResult result = driver.fs2Search(q.arena, q.goals[0],
                                                   file);

    Table sequence("Driver sequence for an FS2 retrieval "
                   "(married_couple(S,S))");
    sequence.header({"Step", "Mode written", "Effect"});
    const char *effects[] = {
        "query translated to microprogram, loaded into the WCS",
        "query arguments written into the Query Memory",
        "clauses stream through the Double Buffer and TUE",
        "satisfiers read back from the Result Memory",
    };
    for (std::size_t i = 0; i < driver.lastSequence().size(); ++i) {
        sequence.row({std::to_string(i + 1),
                      operationalModeName(driver.lastSequence()[i]),
                      effects[i]});
    }
    sequence.print(std::cout);

    std::printf("\nsearch outcome: %zu satisfier(s); control register = "
                "0x%02x (b7 %s)\n",
                result.acceptedOrdinals.size(),
                board.read8(kVmeWindowBase),
                (board.read8(kVmeWindowBase) & 0x80) ? "set" : "clear");
    std::printf("satisfier 0 is clause ordinal %u: %s\n",
                result.acceptedOrdinals[0],
                file.sourceText(result.acceptedOrdinals[0]).c_str());
    return 0;
}
