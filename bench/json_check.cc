/**
 * @file
 * Validator for bench `--json` output: parses the file with the same
 * json library the exporters use and checks the document shape
 * (top-level object with "bench" and a "results" array).  Exit 0 on a
 * valid document; a diagnostic and exit 1 otherwise.  Used by the
 * CLARE_BENCH_JSON ctest smoke target to round-trip a real bench run.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "support/json.hh"

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: json_check <file.json>\n");
        return 1;
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "json_check: cannot read '%s'\n", argv[1]);
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();

    std::string error;
    std::optional<clare::json::Value> doc =
        clare::json::Value::parse(text, &error);
    if (!doc) {
        std::fprintf(stderr, "json_check: '%s' is not valid JSON: %s\n",
                     argv[1], error.c_str());
        return 1;
    }
    if (!doc->isObject()) {
        std::fprintf(stderr, "json_check: top level is not an object\n");
        return 1;
    }
    const clare::json::Value *bench = doc->find("bench");
    if (bench == nullptr || !bench->isString()) {
        std::fprintf(stderr, "json_check: missing \"bench\" name\n");
        return 1;
    }
    const clare::json::Value *results = doc->find("results");
    if (results == nullptr || !results->isArray() ||
        results->size() == 0) {
        std::fprintf(stderr,
                     "json_check: missing or empty \"results\" array\n");
        return 1;
    }

    std::size_t spans = 0;
    if (const clare::json::Value *s = doc->find("spans"))
        spans = s->size();
    std::printf("json_check: '%s' ok — bench \"%s\", %zu results, "
                "%zu spans\n",
                argv[1], bench->str().c_str(), results->size(), spans);
    return 0;
}
