/**
 * @file
 * Shared helpers for the benchmark harnesses: program-to-store
 * compilation, formatting, and machine-readable JSON export
 * (`--json <path>` on every harness).
 */

#ifndef CLARE_BENCH_BENCH_UTIL_HH
#define CLARE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "crs/server.hh"
#include "crs/store.hh"
#include "fs1/kernels.hh"
#include "support/fault_injector.hh"
#include "support/json.hh"
#include "support/obs.hh"
#include "term/clause.hh"
#include "term/symbol_table.hh"

namespace clare::bench {

/** A compiled store plus its server, owned together. */
struct CompiledStore
{
    std::unique_ptr<crs::PredicateStore> store;
    std::unique_ptr<crs::ClauseRetrievalServer> server;
};

/** Compile a program into a predicate store and bring up a CRS. */
inline CompiledStore
compileStore(term::SymbolTable &symbols, const term::Program &program,
             scw::ScwConfig scw_config = {},
             crs::CrsConfig crs_config = {})
{
    CompiledStore out;
    out.store = std::make_unique<crs::PredicateStore>(
        symbols, scw::CodewordGenerator(scw_config));
    out.store->addProgram(program);
    if (crs_config.fs1.sliced)
        out.store->buildSlicedIndexes();
    out.store->finalize();
    out.server = std::make_unique<crs::ClauseRetrievalServer>(
        symbols, *out.store, crs_config);
    return out;
}

/** One goal through the unified front door. */
inline crs::RetrievalResponse
serveOne(crs::ClauseRetrievalServer &server, const term::TermArena &arena,
         term::TermRef goal, std::optional<crs::SearchMode> mode = {})
{
    crs::RetrievalRequest request;
    request.arena = &arena;
    request.goal = goal;
    request.mode = mode;
    return server.serve(request);
}

/** "12.34 ms" style human duration from ticks. */
inline std::string
formatTime(Tick t)
{
    char buf[64];
    double ns = static_cast<double>(t) / kNanosecond;
    if (ns < 1e3)
        std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
    else if (ns < 1e6)
        std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
    else if (ns < 1e9)
        std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
    return buf;
}

/** "4.25 MB/s" from a bytes-per-second rate. */
inline std::string
formatRate(double bytes_per_second)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f MB/s", bytes_per_second / 1e6);
    return buf;
}

/**
 * Parse `--json <path>` / `--json=<path>` from the harness command
 * line; empty string when absent.  Unknown arguments are ignored so
 * harness-specific flags can coexist.
 */
inline std::string
jsonPathArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            return argv[i + 1];
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            return argv[i] + 7;
    }
    return "";
}

/**
 * Parse the optional fault-injection knobs: `--fault-seed=N` arms the
 * deterministic injector, and `--fault-flip=R` / `--fault-transient=R`
 * / `--fault-delay=R` set the per-chunk fault rates (in [0,1]).
 * Returns nullopt unless --fault-seed was given, so a default run is
 * bit-identical to a fault-free build.
 */
inline std::optional<support::FaultConfig>
faultConfigArg(int argc, char **argv)
{
    std::optional<support::FaultConfig> config;
    auto value = [](const char *arg, const char *name) -> const char * {
        std::size_t n = std::strlen(name);
        if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    double flip = 0, transient = 0, delay = 0;
    for (int i = 1; i < argc; ++i) {
        if (const char *v = value(argv[i], "--fault-seed")) {
            if (!config)
                config.emplace();
            config->seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value(argv[i], "--fault-flip")) {
            flip = std::strtod(v, nullptr);
        } else if (const char *v = value(argv[i], "--fault-transient")) {
            transient = std::strtod(v, nullptr);
        } else if (const char *v = value(argv[i], "--fault-delay")) {
            delay = std::strtod(v, nullptr);
        }
    }
    if (config) {
        config->bitFlipRate = flip;
        config->transientReadRate = transient;
        config->delayRate = delay;
    }
    return config;
}

/**
 * Parsed `--cache-*` knobs shared by the bench harnesses.  Absent
 * flags leave everything disabled, so a default run is bit-identical
 * to a cache-free build.
 */
struct CacheKnobs
{
    /** `--cache`: enable L2/L3 at the server defaults. */
    bool enabled = false;
    /** `--cache-l3=N`: L3 goal-cache capacity (entries; implies on). */
    std::uint32_t l3Capacity = 0;
    /** `--cache-l2=N`: L2 signature + survivor capacity (implies on). */
    std::uint32_t l2Capacity = 0;
    /** `--cache-l1-tracks=N`: L1 track-cache capacity per disk. */
    std::uint32_t l1Tracks = 0;
    /** `--cache-bypass`: set bypassCache on every request served. */
    bool bypass = false;

    /** Fold the L2/L3 knobs into a server config. */
    void
    apply(crs::CrsConfig &config) const
    {
        config.cache.enabled = enabled;
        if (l3Capacity > 0)
            config.cache.goalCapacity = l3Capacity;
        if (l2Capacity > 0) {
            config.cache.signatureCapacity = l2Capacity;
            config.cache.survivorCapacity = l2Capacity;
        }
    }

    /** Configure the store's L1 track caches when requested. */
    void
    apply(crs::PredicateStore &store) const
    {
        if (l1Tracks > 0)
            store.configureDiskCaches({.capacityTracks = l1Tracks});
    }
};

/**
 * Parse the cache-hierarchy knobs: `--cache` enables the server-side
 * caches at their defaults, `--cache-l3=N` / `--cache-l2=N` size the
 * goal cache and the signature/survivor memos (either implies
 * `--cache`), `--cache-l1-tracks=N` sizes the per-disk track cache,
 * and `--cache-bypass` serves every request with bypassCache set.
 */
inline CacheKnobs
cacheConfigArg(int argc, char **argv)
{
    CacheKnobs knobs;
    auto value = [](const char *arg, const char *name) -> const char * {
        std::size_t n = std::strlen(name);
        if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cache") == 0) {
            knobs.enabled = true;
        } else if (const char *v = value(argv[i], "--cache-l3")) {
            knobs.l3Capacity = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
            knobs.enabled = true;
        } else if (const char *v = value(argv[i], "--cache-l2")) {
            knobs.l2Capacity = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
            knobs.enabled = true;
        } else if (const char *v = value(argv[i], "--cache-l1-tracks")) {
            knobs.l1Tracks = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
        } else if (std::strcmp(argv[i], "--cache-bypass") == 0) {
            knobs.bypass = true;
        }
    }
    return knobs;
}

/**
 * Parsed `--sliced` / `--batch-width=K` knobs shared by the bench
 * harnesses.  Absent flags leave both off, so a default run is
 * bit-identical to the row-major scan path.
 */
struct SlicedKnobs
{
    /** `--sliced`: scan through the bit-sliced plane. */
    bool sliced = false;
    /** `--batch-width=K`: group up to K FS1 goals per plane pass
     *  (implies `--sliced`; 0 means "not given"). */
    std::uint32_t batchWidth = 0;
    /** `--kernel=NAME`: force an FS1 block kernel (implies
     *  `--sliced`; Auto means "not given"). */
    fs1::Fs1Kernel kernel = fs1::Fs1Kernel::Auto;
    /** `--fs2-compiled`: dispatch FS2 through the AOT-compiled
     *  microroutines instead of the WCS interpreter. */
    bool fs2Compiled = false;

    /** Fold the knobs into a server config. */
    void
    apply(crs::CrsConfig &config) const
    {
        if (sliced)
            config.fs1.sliced = true;
        if (batchWidth > 0)
            config.batchWidth = batchWidth;
        config.fs1.kernel = kernel;
        config.fs2.compiled = fs2Compiled;
    }
};

/**
 * Parse the bit-sliced scan knobs: `--sliced` turns the word-parallel
 * FS1 kernel on, `--batch-width=K` groups up to K same-predicate FS1
 * goals into one plane pass (and implies `--sliced`),
 * `--kernel=NAME` forces a specific block kernel from the registry
 * (scalar64 / avx2 / avx512 / auto; implies `--sliced`), and
 * `--fs2-compiled` routes FS2 matching through the AOT-compiled
 * microroutines (bit-identical to the interpreter, just faster on the
 * host).  An unknown kernel name exits with the supported list rather
 * than silently falling back.
 */
inline SlicedKnobs
slicedConfigArg(int argc, char **argv)
{
    SlicedKnobs knobs;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sliced") == 0) {
            knobs.sliced = true;
        } else if (std::strncmp(argv[i], "--batch-width=", 14) == 0) {
            knobs.batchWidth = static_cast<std::uint32_t>(
                std::strtoul(argv[i] + 14, nullptr, 10));
            knobs.sliced = true;
        } else if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
            const char *name = argv[i] + 9;
            fs1::Fs1Kernel parsed = fs1::Fs1Kernel::Auto;
            if (!fs1::parseKernelName(name, parsed)) {
                std::fprintf(stderr,
                             "unknown --kernel '%s' (expected auto, "
                             "scalar64, avx2, or avx512)\n",
                             name);
                std::exit(2);
            }
            if (!fs1::kernelSupported(parsed)) {
                std::fprintf(stderr,
                             "--kernel '%s' is not supported on this "
                             "host (use auto)\n",
                             name);
                std::exit(2);
            }
            knobs.kernel = parsed;
            knobs.sliced = true;
        } else if (std::strcmp(argv[i], "--fs2-compiled") == 0) {
            knobs.fs2Compiled = true;
        }
    }
    return knobs;
}

/** One retrieval as a JSON row (shared shape across harnesses). */
inline json::Value
responseJson(const crs::RetrievalResponse &r)
{
    json::Value row = json::Value::object();
    row.set("mode", crs::searchModeSlug(r.mode));
    row.set("candidates", static_cast<std::uint64_t>(r.candidates.size()));
    row.set("answers", static_cast<std::uint64_t>(r.answers.size()));
    row.set("false_drop_rate", r.falseDropRate());
    row.set("elapsed_ticks", r.elapsed);
    row.set("breakdown", crs::toJson(r.breakdown));
    return row;
}

/**
 * Write the harness's machine-readable output: the per-experiment
 * results plus the server's cumulative metrics (and spans, when any
 * were traced).  No-op when @p path is empty.
 */
inline bool
writeBenchJson(const std::string &path, const std::string &bench,
               json::Value results,
               const crs::ClauseRetrievalServer *server = nullptr)
{
    if (path.empty())
        return true;
    json::Value doc = json::Value::object();
    doc.set("bench", bench);
    doc.set("results", std::move(results));
    if (server != nullptr) {
        doc.set("metrics", obs::metricsJson(server->metrics()));
        if (server->tracer().spanCount() > 0)
            doc.set("spans", obs::spansJson(server->tracer()));
    }
    return obs::writeFile(path, doc.dump(2) + "\n");
}

} // namespace clare::bench

#endif // CLARE_BENCH_BENCH_UTIL_HH
