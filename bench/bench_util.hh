/**
 * @file
 * Shared helpers for the benchmark harnesses: program-to-store
 * compilation and formatting.
 */

#ifndef CLARE_BENCH_BENCH_UTIL_HH
#define CLARE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <string>

#include "crs/server.hh"
#include "crs/store.hh"
#include "term/clause.hh"
#include "term/symbol_table.hh"

namespace clare::bench {

/** A compiled store plus its server, owned together. */
struct CompiledStore
{
    std::unique_ptr<crs::PredicateStore> store;
    std::unique_ptr<crs::ClauseRetrievalServer> server;
};

/** Compile a program into a predicate store and bring up a CRS. */
inline CompiledStore
compileStore(term::SymbolTable &symbols, const term::Program &program,
             scw::ScwConfig scw_config = {},
             crs::CrsConfig crs_config = {})
{
    CompiledStore out;
    out.store = std::make_unique<crs::PredicateStore>(
        symbols, scw::CodewordGenerator(scw_config));
    out.store->addProgram(program);
    out.store->finalize();
    out.server = std::make_unique<crs::ClauseRetrievalServer>(
        symbols, *out.store, crs_config);
    return out;
}

/** "12.34 ms" style human duration from ticks. */
inline std::string
formatTime(Tick t)
{
    char buf[64];
    double ns = static_cast<double>(t) / kNanosecond;
    if (ns < 1e3)
        std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
    else if (ns < 1e6)
        std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
    else if (ns < 1e9)
        std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
    return buf;
}

/** "4.25 MB/s" from a bytes-per-second rate. */
inline std::string
formatRate(double bytes_per_second)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f MB/s", bytes_per_second / 1e6);
    return buf;
}

} // namespace clare::bench

#endif // CLARE_BENCH_BENCH_UTIL_HH
