/**
 * @file
 * Experiment D1 — the three false-drop sources of section 2.1:
 *
 *   (1) non-unique encoding — swept via codeword field width,
 *   (2) truncation at 12 encoded arguments — swept via mismatch
 *       position across the argument index,
 *   (3) shared variables — the married_couple(Same,Same) pathology,
 *       swept via the fraction of reflexive couples.
 *
 * For each source the harness reports FS1's candidate set and false
 * drops against the full-unification oracle, and shows FS2 (two-stage
 * mode) removing them.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "scw/analysis.hh"
#include "support/table.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"
#include "unify/oracle.hh"
#include "workload/kb_generator.hh"

using namespace clare;

namespace {

/** FS1 false drops for one query over one stored predicate. */
struct Quality
{
    std::size_t candidates = 0;
    std::size_t answers = 0;

    double
    falseDropRate() const
    {
        return candidates == 0
            ? 0.0
            : static_cast<double>(candidates - answers) /
              static_cast<double>(candidates);
    }
};

Quality
fs1Quality(term::SymbolTable &sym, const term::Program &program,
           const term::PredicateId &pred,
           const term::TermArena &q_arena, term::TermRef goal,
           const scw::ScwConfig &config)
{
    scw::CodewordGenerator gen(config);
    scw::Signature qsig = gen.encode(q_arena, goal);
    Quality quality;
    for (std::size_t i : program.clausesOf(pred)) {
        const term::Clause &clause = program.clause(i);
        bool unifies = unify::wouldUnify(q_arena, goal, clause);
        bool selected = gen.matches(qsig, gen.encode(clause.arena(),
                                                     clause.head()));
        if (selected)
            ++quality.candidates;
        if (unifies)
            ++quality.answers;
        (void)sym;
    }
    return quality;
}

} // namespace

int
main()
{
    term::SymbolTable sym;
    term::TermReader reader(sym);

    // --- source 1: non-unique encoding vs codeword width -----------
    {
        workload::KbGenerator kbgen(sym);
        workload::KbSpec spec;
        spec.predicates = 1;
        spec.clausesPerPredicate = 2000;
        spec.atomVocabulary = 1500;
        spec.seed = 4;
        term::Program program = kbgen.generate(spec);
        const auto &pred = program.predicates()[0];

        // A ground query copied from one stored head.
        const term::Clause &tmpl = program.clause(
            program.clausesOf(pred)[42]);
        term::TermArena q_arena;
        term::TermRef goal = q_arena.import(tmpl.arena(), tmpl.head(),
                                            0);

        Table t("False-drop source 1: non-unique encoding "
                "(field width sweep, 2000 ground clauses)");
        t.header({"Field bits", "Index bytes/entry", "Candidates",
                  "Answers", "Ghost fraction", "Measured P(fm)",
                  "Predicted P(fm)"});
        std::size_t total = program.clausesOf(pred).size();
        for (std::uint32_t bits : {2u, 4u, 8u, 16u, 32u, 64u}) {
            scw::ScwConfig config;
            config.fieldBits = bits;
            Quality q = fs1Quality(sym, program, pred, q_arena, goal,
                                   config);
            scw::CodewordGenerator gen(config);
            // Analytic prediction of the per-clause false-match
            // probability, with corpus-average token density per
            // field on the clause side.
            double clause_tokens = 0.0;
            for (std::size_t i : program.clausesOf(pred)) {
                const term::Clause &c = program.clause(i);
                clause_tokens += scw::measuredTokensPerField(
                    c.arena(), c.head(), config);
            }
            clause_tokens /= static_cast<double>(total);
            double query_tokens = scw::measuredTokensPerField(
                q_arena, goal, config);
            std::uint32_t fields = std::min(
                q_arena.arity(goal), config.encodedArgs);
            double predicted = scw::falseDropProbability(
                config, fields, clause_tokens, query_tokens);
            double measured =
                static_cast<double>(q.candidates - q.answers) /
                static_cast<double>(total - q.answers);
            t.row({std::to_string(bits),
                   std::to_string(gen.signatureBytes()),
                   std::to_string(q.candidates),
                   std::to_string(q.answers),
                   Table::num(q.falseDropRate(), 3),
                   Table::num(measured, 4),
                   Table::num(predicted, 4)});
        }
        t.print(std::cout);
        std::printf("shape: wider codewords -> fewer collision ghosts, "
                    "at index-size cost; the\nmeasured rates track the "
                    "textbook superimposed-coding prediction\n\n");
    }

    // --- source 2: truncation at 12 encoded arguments ---------------
    {
        // Clauses of arity 16 identical except in one position; the
        // query mismatches exactly there.  Positions < 12 are caught
        // by the index; positions >= 12 are invisible (truncated).
        Table t("False-drop source 2: truncation (mismatch position "
                "sweep, arity-16 predicate)");
        t.header({"Mismatch at arg", "Encoded?", "Candidates",
                  "Answers", "False drops"});
        for (std::uint32_t pos : {0u, 5u, 11u, 12u, 13u, 15u}) {
            term::Program program;
            std::string args;
            for (std::uint32_t a = 0; a < 16; ++a)
                args += (a ? "," : "") + std::string("k");
            // 40 clauses differing in argument `pos`.
            for (int c = 0; c < 40; ++c) {
                std::string clause = "t(";
                for (std::uint32_t a = 0; a < 16; ++a) {
                    clause += a ? "," : "";
                    clause += (a == pos)
                        ? "v" + std::to_string(c) : "k";
                }
                clause += ").";
                program.add(reader.parseClause(clause));
            }
            std::string query = "t(";
            for (std::uint32_t a = 0; a < 16; ++a) {
                query += a ? "," : "";
                query += (a == pos) ? "v7" : "k";
            }
            query += ")";
            term::ParsedTerm q = reader.parseTerm(query);
            term::PredicateId pred{sym.lookup("t"), 16};
            Quality quality = fs1Quality(sym, program, pred, q.arena,
                                         q.root, scw::ScwConfig{});
            t.row({std::to_string(pos + 1), pos < 12 ? "yes" : "no",
                   std::to_string(quality.candidates),
                   std::to_string(quality.answers),
                   std::to_string(quality.candidates -
                                  quality.answers)});
        }
        t.print(std::cout);
        std::printf("shape: mismatches beyond the 12th argument are "
                    "invisible to the index\n(39 ghosts); within the "
                    "first 12 the index rejects them\n\n");
    }

    // --- source 3: shared variables (married_couple) ----------------
    {
        Table t("False-drop source 3: shared variables — "
                "married_couple(Same,Same)");
        t.header({"Couples", "Reflexive", "FS1 candidates",
                  "FS1 false-drop rate", "FS1+FS2 candidates",
                  "FS1+FS2 false-drop rate"});
        for (std::uint32_t families : {100u, 400u, 1600u}) {
            term::SymbolTable fsym;
            workload::KbGenerator kbgen(fsym);
            term::Program program = kbgen.generateFamily(families, 3);
            bench::CompiledStore cs = bench::compileStore(fsym, program);

            term::TermReader freader(fsym);
            term::ParsedTerm goal =
                freader.parseTerm("married_couple(S, S)");
            crs::RetrievalResponse fs1 = bench::serveOne(
                *cs.server, goal.arena, goal.root,
                crs::SearchMode::Fs1Only);
            crs::RetrievalResponse two = bench::serveOne(
                *cs.server, goal.arena, goal.root,
                crs::SearchMode::TwoStage);

            term::PredicateId married{fsym.lookup("married_couple"), 2};
            std::size_t total =
                program.clausesOf(married).size();
            t.row({std::to_string(total),
                   std::to_string(fs1.answers.size()),
                   std::to_string(fs1.candidates.size()),
                   Table::num(fs1.falseDropRate(), 3),
                   std::to_string(two.candidates.size()),
                   Table::num(two.falseDropRate(), 3)});
        }
        t.print(std::cout);
        std::printf("shape: the index passes the ENTIRE predicate "
                    "(rate ~1.0); partial test\nunification with "
                    "cross-binding checks reduces it to the true "
                    "answers (rate 0).\n");
    }
    return 0;
}
