/**
 * @file
 * Experiment T1 — Table 1: Execution Times of the FS2 Hardware
 * Functions.
 *
 * The model derives each operation's execution time from the component
 * propagation delays along the figure-6..12 datapath routes; this
 * harness prints the computed values side by side with the published
 * ones and additionally *measures* the per-operation times by driving
 * the full microcoded engine with item pairs that exercise exactly one
 * operation class, confirming the engine charges the same times.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "fs2/datapath.hh"
#include "fs2/fs2_engine.hh"
#include "storage/clause_file.hh"
#include "support/table.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"

using namespace clare;
using unify::TueOp;

namespace {

struct OpScenario
{
    TueOp op;
    std::uint64_t paperNs;
    const char *query;
    const char *clause;
    const char *ignore;     ///< op also present in the scenario
};

/**
 * Measure the time the engine charges for @p scenario's target op by
 * running the scenario and subtracting all other operations' model
 * times (each scenario is chosen so the target op occurs exactly
 * once).
 */
std::uint64_t
measureOp(const OpScenario &scenario)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);

    storage::ClauseFileBuilder builder(writer);
    builder.add(reader.parseClause(std::string(scenario.clause) + "."));
    storage::ClauseFile file = builder.finish();

    term::ParsedQuery q = reader.parseQuery(scenario.query);
    fs2::Fs2Engine engine;
    engine.setQuery(q.arena, q.goals[0]);
    fs2::Fs2SearchResult r = engine.search(file);

    std::uint64_t total = toNanoseconds(r.tueBusyTime);
    for (std::size_t i = 0; i < unify::kTueOpCount; ++i) {
        TueOp other = static_cast<TueOp>(i);
        if (other == scenario.op)
            continue;
        total -= r.ops[i] * fs2::operationTimeNs(other);
    }
    std::uint64_t count = r.ops[static_cast<std::size_t>(scenario.op)];
    return count ? total / count : 0;
}

} // namespace

int
main()
{
    const OpScenario scenarios[] = {
        {TueOp::Match, 105, "p(a)", "p(a)", ""},
        {TueOp::DbStore, 95, "p(a)", "p(X)", ""},
        {TueOp::QueryStore, 115, "p(X)", "p(a)", ""},
        {TueOp::DbFetch, 105, "p(a, a)", "p(X, X)", "DbStore"},
        {TueOp::QueryFetch, 170, "p(S, S)", "p(a, a)", "QueryStore"},
        {TueOp::DbCrossBoundFetch, 170, "f(X, a, b)", "f(A, a, A)", ""},
        {TueOp::QueryCrossBoundFetch, 235, "f(X, X)", "f(A, b)", ""},
    };

    Table table("Table 1: Execution Times of the FS2 Hardware Functions");
    table.header({"Figure", "Operation", "Paper (ns)", "Model (ns)",
                  "Engine-measured (ns)", "Match"});
    bool all_match = true;
    for (const OpScenario &s : scenarios) {
        std::uint64_t model = fs2::operationTimeNs(s.op);
        std::uint64_t measured = measureOp(s);
        bool ok = model == s.paperNs && measured == s.paperNs;
        all_match = all_match && ok;
        table.row({std::to_string(fs2::operationSpec(s.op).figure),
                   tueOpName(s.op), std::to_string(s.paperNs),
                   std::to_string(model), std::to_string(measured),
                   ok ? "yes" : "NO"});
    }
    table.print(std::cout);

    std::printf("\nWorst-case operation: QUERY_CROSS_BOUND_FETCH at "
                "235 ns\n");
    std::printf("Paper's worst-case filter rate (1 byte per op): "
                "%s (paper: ~4.25 MB/s)\n",
                bench::formatRate(fs2::worstCaseFilterRate()).c_str());
    std::printf("Reproduction %s\n",
                all_match ? "MATCHES the paper" : "DIVERGES");
    return all_match ? 0 : 1;
}
