/**
 * @file
 * Experiment T1 — Table 1: Execution Times of the FS2 Hardware
 * Functions.
 *
 * The model derives each operation's execution time from the component
 * propagation delays along the figure-6..12 datapath routes; this
 * harness prints the computed values side by side with the published
 * ones and additionally *measures* the per-operation times by driving
 * the full microcoded engine with item pairs that exercise exactly one
 * operation class, confirming the engine charges the same times.
 *
 * It also sweeps the FS2 dispatch pair — the WCS interpreter against
 * the AOT-compiled microroutines — over a synthetic clause file,
 * checking the two produce bit-identical verdicts and tick streams
 * while reporting the host wall-clock speedup of the compiled path.
 *
 * `--json <path>` exports the table rows and the sweep record.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fs2/datapath.hh"
#include "fs2/fs2_engine.hh"
#include "storage/clause_file.hh"
#include "support/table.hh"
#include "term/term_reader.hh"
#include "term/term_writer.hh"

using namespace clare;
using unify::TueOp;

namespace {

struct OpScenario
{
    TueOp op;
    std::uint64_t paperNs;
    const char *query;
    const char *clause;
    const char *ignore;     ///< op also present in the scenario
};

/**
 * Measure the time the engine charges for @p scenario's target op by
 * running the scenario and subtracting all other operations' model
 * times (each scenario is chosen so the target op occurs exactly
 * once).
 */
std::uint64_t
measureOp(const OpScenario &scenario)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);

    storage::ClauseFileBuilder builder(writer);
    builder.add(reader.parseClause(std::string(scenario.clause) + "."));
    storage::ClauseFile file = builder.finish();

    term::ParsedQuery q = reader.parseQuery(scenario.query);
    fs2::Fs2Engine engine;
    engine.setQuery(q.arena, q.goals[0]);
    fs2::Fs2SearchResult r = engine.search(file);

    std::uint64_t total = toNanoseconds(r.tueBusyTime);
    for (std::size_t i = 0; i < unify::kTueOpCount; ++i) {
        TueOp other = static_cast<TueOp>(i);
        if (other == scenario.op)
            continue;
        total -= r.ops[i] * fs2::operationTimeNs(other);
    }
    std::uint64_t count = r.ops[static_cast<std::size_t>(scenario.op)];
    return count ? total / count : 0;
}

/**
 * The interpreter-vs-compiled sweep record: wall-clock times for the
 * same searches through both dispatch targets, plus the identity
 * check over everything the engine reports.
 */
struct SweepResult
{
    std::size_t clauses = 0;
    std::size_t queries = 0;
    std::size_t iterations = 0;
    double interpretedUs = 0;
    double compiledUs = 0;
    std::uint64_t microInstructions = 0;
    bool identical = false;

    double speedup() const
    {
        return compiledUs > 0 ? interpretedUs / compiledUs : 0;
    }
};

/** Build a mixed-shape clause file for the dispatch sweep. */
storage::ClauseFile
sweepFile(term::TermReader &reader, term::TermWriter &writer,
          std::size_t clause_count)
{
    std::mt19937_64 rng(4242);
    storage::ClauseFileBuilder builder(writer);
    for (std::size_t i = 0; i < clause_count; ++i) {
        std::string head;
        switch (rng() % 5) {
        case 0:
            head = "p(c" + std::to_string(rng() % 40) + ", X, [a, b])";
            break;
        case 1:
            head = "p(f(c" + std::to_string(rng() % 40) + ", Y), Y, Z)";
            break;
        case 2:
            head = "p(X, g(X, c" + std::to_string(rng() % 40) + "), " +
                   std::to_string(rng() % 100) + ")";
            break;
        case 3:
            head = "p(c" + std::to_string(rng() % 40) + ", " +
                   std::to_string(rng() % 100) + ", h(W, W))";
            break;
        default:
            head = "p([c" + std::to_string(rng() % 40) + ", X | T], "
                   "X, T)";
            break;
        }
        builder.add(reader.parseClause(head + "."));
    }
    return builder.finish();
}

/** One full pass: every query searched once; returns the result set. */
std::vector<fs2::Fs2SearchResult>
sweepPass(const fs2::Fs2Config &config, const storage::ClauseFile &file,
          const std::vector<const char *> &queries,
          term::SymbolTable &sym)
{
    std::vector<fs2::Fs2SearchResult> out;
    term::TermReader reader(sym);
    for (const char *text : queries) {
        term::ParsedQuery q = reader.parseQuery(text);
        fs2::Fs2Engine engine(config);
        engine.setQuery(q.arena, q.goals[0]);
        out.push_back(engine.search(file));
    }
    return out;
}

bool
sameResults(const std::vector<fs2::Fs2SearchResult> &a,
            const std::vector<fs2::Fs2SearchResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].acceptedOrdinals != b[i].acceptedOrdinals ||
            a[i].ops != b[i].ops ||
            a[i].microInstructions != b[i].microInstructions ||
            a[i].tueBusyTime != b[i].tueBusyTime ||
            a[i].sequencerTime != b[i].sequencerTime ||
            a[i].elapsed != b[i].elapsed ||
            a[i].clausesExamined != b[i].clausesExamined ||
            a[i].bytesStreamed != b[i].bytesStreamed)
            return false;
    }
    return true;
}

SweepResult
runSweep(std::size_t clause_count, std::size_t iterations)
{
    term::SymbolTable sym;
    term::TermReader reader(sym);
    term::TermWriter writer(sym);
    storage::ClauseFile file = sweepFile(reader, writer, clause_count);

    const std::vector<const char *> queries = {
        "p(c3, V, [a, b])",
        "p(f(c7, Q), Q, R)",
        "p(A, g(A, c11), 42)",
        "p(c19, 55, h(U, U))",
        "p([c23, M | N], M, N)",
        "p(X, Y, Z)",
    };

    fs2::Fs2Config interp;
    interp.level = 3;
    interp.sequencerOverhead = 125 * kNanosecond;
    fs2::Fs2Config compiled = interp;
    compiled.compiled = true;

    // Identity first (one pass is enough: searches are deterministic).
    std::vector<fs2::Fs2SearchResult> ri =
        sweepPass(interp, file, queries, sym);
    std::vector<fs2::Fs2SearchResult> rc =
        sweepPass(compiled, file, queries, sym);

    SweepResult sweep;
    sweep.clauses = file.clauseCount();
    sweep.queries = queries.size();
    sweep.iterations = iterations;
    sweep.identical = sameResults(ri, rc);
    for (const fs2::Fs2SearchResult &r : ri)
        sweep.microInstructions += r.microInstructions;

    // Then timing: the same searches, iterated, for each target.
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    for (std::size_t i = 0; i < iterations; ++i)
        sweepPass(interp, file, queries, sym);
    auto t1 = clock::now();
    for (std::size_t i = 0; i < iterations; ++i)
        sweepPass(compiled, file, queries, sym);
    auto t2 = clock::now();

    auto us = [](auto d) {
        return std::chrono::duration<double, std::micro>(d).count();
    };
    sweep.interpretedUs = us(t1 - t0);
    sweep.compiledUs = us(t2 - t1);
    return sweep;
}

} // namespace

int
main(int argc, char **argv)
{
    const OpScenario scenarios[] = {
        {TueOp::Match, 105, "p(a)", "p(a)", ""},
        {TueOp::DbStore, 95, "p(a)", "p(X)", ""},
        {TueOp::QueryStore, 115, "p(X)", "p(a)", ""},
        {TueOp::DbFetch, 105, "p(a, a)", "p(X, X)", "DbStore"},
        {TueOp::QueryFetch, 170, "p(S, S)", "p(a, a)", "QueryStore"},
        {TueOp::DbCrossBoundFetch, 170, "f(X, a, b)", "f(A, a, A)", ""},
        {TueOp::QueryCrossBoundFetch, 235, "f(X, X)", "f(A, b)", ""},
    };

    Table table("Table 1: Execution Times of the FS2 Hardware Functions");
    table.header({"Figure", "Operation", "Paper (ns)", "Model (ns)",
                  "Engine-measured (ns)", "Match"});
    bool all_match = true;
    json::Value rows = json::Value::array();
    for (const OpScenario &s : scenarios) {
        std::uint64_t model = fs2::operationTimeNs(s.op);
        std::uint64_t measured = measureOp(s);
        bool ok = model == s.paperNs && measured == s.paperNs;
        all_match = all_match && ok;
        table.row({std::to_string(fs2::operationSpec(s.op).figure),
                   tueOpName(s.op), std::to_string(s.paperNs),
                   std::to_string(model), std::to_string(measured),
                   ok ? "yes" : "NO"});
        json::Value row = json::Value::object();
        row.set("kind", "op");
        row.set("figure",
                static_cast<std::uint64_t>(fs2::operationSpec(s.op).figure));
        row.set("operation", tueOpName(s.op));
        row.set("paper_ns", s.paperNs);
        row.set("model_ns", model);
        row.set("measured_ns", measured);
        row.set("match", ok);
        rows.push(std::move(row));
    }
    table.print(std::cout);

    std::printf("\nWorst-case operation: QUERY_CROSS_BOUND_FETCH at "
                "235 ns\n");
    std::printf("Paper's worst-case filter rate (1 byte per op): "
                "%s (paper: ~4.25 MB/s)\n",
                bench::formatRate(fs2::worstCaseFilterRate()).c_str());
    std::printf("Reproduction %s\n",
                all_match ? "MATCHES the paper" : "DIVERGES");

    SweepResult sweep = runSweep(/*clause_count=*/1500,
                                 /*iterations=*/12);
    std::printf("\nFS2 dispatch sweep (%zu clauses x %zu queries x "
                "%zu iters, %llu microinstructions per pass):\n",
                sweep.clauses, sweep.queries, sweep.iterations,
                static_cast<unsigned long long>(sweep.microInstructions));
    std::printf("  interpreter : %10.1f us\n", sweep.interpretedUs);
    std::printf("  compiled    : %10.1f us   (%.2fx, results %s)\n",
                sweep.compiledUs, sweep.speedup(),
                sweep.identical ? "bit-identical" : "DIVERGED");

    // The shared shape is a flat "results" array, so the sweep rides
    // along as one more row after the per-operation ones.
    json::Value sj = json::Value::object();
    sj.set("kind", "fs2_dispatch_sweep");
    sj.set("all_ops_match", all_match);
    sj.set("clauses", static_cast<std::uint64_t>(sweep.clauses));
    sj.set("queries", static_cast<std::uint64_t>(sweep.queries));
    sj.set("iterations", static_cast<std::uint64_t>(sweep.iterations));
    sj.set("micro_instructions_per_pass", sweep.microInstructions);
    sj.set("interpreted_wall_us", sweep.interpretedUs);
    sj.set("compiled_wall_us", sweep.compiledUs);
    sj.set("speedup", sweep.speedup());
    sj.set("identical", sweep.identical);
    rows.push(std::move(sj));
    if (!bench::writeBenchJson(bench::jsonPathArg(argc, argv),
                               "table1_fs2_ops", std::move(rows))) {
        std::fprintf(stderr, "failed to write --json output\n");
        return 1;
    }

    return all_match && sweep.identical ? 0 : 1;
}
