/**
 * @file
 * Experiments F6-F12 — the timing-calculation boxes of figures 6
 * through 12: per-operation datapath routes with per-component
 * delays, cycle-by-cycle critical paths, and the closing comparison
 * or memory write, exactly as the paper prints them.
 */

#include <cstdio>
#include <iostream>

#include "fs2/datapath.hh"
#include "support/table.hh"
#include "unify/tue_op.hh"

using namespace clare;
using unify::TueOp;

namespace {

std::string
routeWithDelays(const fs2::Route &route)
{
    if (route.legs.empty())
        return "(set in an earlier cycle)";
    std::string s;
    for (std::size_t i = 0; i < route.legs.size(); ++i) {
        if (i)
            s += " -> ";
        s += fs2::componentName(route.legs[i]);
        s += "(" + std::to_string(
            fs2::componentDelayNs(route.legs[i])) + ")";
    }
    s += "  = " + std::to_string(route.delayNs());
    return s;
}

const char *
finalActionName(fs2::FinalAction action)
{
    switch (action) {
      case fs2::FinalAction::Comparison: return "comparison";
      case fs2::FinalAction::DbMemoryWrite: return "DB Memory write";
      case fs2::FinalAction::QueryMemoryWrite:
        return "Query Memory write";
    }
    return "?";
}

std::uint64_t
finalActionNs(fs2::FinalAction action)
{
    switch (action) {
      case fs2::FinalAction::Comparison:
        return fs2::componentDelayNs(fs2::Component::Comparator);
      case fs2::FinalAction::DbMemoryWrite:
        return fs2::componentDelayNs(fs2::Component::DbMemoryWrite);
      case fs2::FinalAction::QueryMemoryWrite:
        return fs2::componentDelayNs(fs2::Component::QueryMemoryWrite);
    }
    return 0;
}

} // namespace

int
main()
{
    const struct { TueOp op; std::uint64_t paper; } rows[] = {
        {TueOp::Match, 105},
        {TueOp::DbStore, 95},
        {TueOp::QueryStore, 115},
        {TueOp::DbFetch, 105},
        {TueOp::QueryFetch, 170},
        {TueOp::DbCrossBoundFetch, 170},
        {TueOp::QueryCrossBoundFetch, 235},
    };

    bool all_match = true;
    for (const auto &row : rows) {
        const fs2::OperationSpec &spec = fs2::operationSpec(row.op);
        std::printf("Figure %d: Timing Calculation for the %s "
                    "Operation\n", spec.figure, tueOpName(row.op));
        for (std::size_t c = 0; c < spec.cycles.size(); ++c) {
            if (spec.cycles.size() > 1)
                std::printf("  cycle %zu (critical path %llu ns):\n",
                            c + 1,
                            static_cast<unsigned long long>(
                                spec.cycles[c].delayNs()));
            std::printf("    database route : %s\n",
                        routeWithDelays(spec.cycles[c].dbRoute).c_str());
            std::printf("    query route    : %s\n",
                        routeWithDelays(spec.cycles[c].queryRoute)
                            .c_str());
        }
        std::uint64_t total = spec.executionTimeNs();
        std::printf("    %s (=%llu)\n", finalActionName(spec.finalAction),
                    static_cast<unsigned long long>(
                        finalActionNs(spec.finalAction)));
        std::printf("  execution time = %llu ns   (paper: %llu ns)  %s\n\n",
                    static_cast<unsigned long long>(total),
                    static_cast<unsigned long long>(row.paper),
                    total == row.paper ? "[match]" : "[DIVERGES]");
        all_match = all_match && total == row.paper;
    }

    Table summary("Component propagation delays (from the figures)");
    summary.header({"Component", "Delay (ns)"});
    for (fs2::Component c : {fs2::Component::DoubleBufferOut,
                             fs2::Component::Sel1,
                             fs2::Component::QueryMemoryRead,
                             fs2::Component::QueryMemoryWrite,
                             fs2::Component::DbMemoryRead,
                             fs2::Component::DbMemoryWrite,
                             fs2::Component::Reg1,
                             fs2::Component::Comparator}) {
        summary.row({fs2::componentName(c),
                     std::to_string(fs2::componentDelayNs(c))});
    }
    summary.print(std::cout);

    std::printf("\nAll figure totals %s the paper.\n",
                all_match ? "MATCH" : "DIVERGE from");
    return all_match ? 0 : 1;
}
