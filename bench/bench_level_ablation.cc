/**
 * @file
 * Experiment D2 — the matching-level study of section 2.2: levels 1
 * through 5 trade selectivity against hardware cost; the paper adopts
 * level 3 plus cross-binding checks because levels 4 and 5 are too
 * expensive to build.
 *
 * The harness runs all five levels (and level 3 with cross binding on
 * and off) over the same candidate streams, reporting candidate-set
 * size, false drops surviving to full unification, and the operation
 * mix each level generates — the quantitative version of the paper's
 * design argument.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "fs2/datapath.hh"
#include "support/table.hh"
#include "term/term_writer.hh"
#include "unify/oracle.hh"
#include "unify/term_matcher.hh"
#include "workload/kb_generator.hh"
#include "workload/query_generator.hh"

using namespace clare;
using unify::TueOp;

int
main()
{
    term::SymbolTable sym;
    workload::KbGenerator kbgen(sym);
    workload::KbSpec spec;
    spec.predicates = 1;
    spec.clausesPerPredicate = 3000;
    spec.varProb = 0.2;
    spec.sharedVarProb = 0.35;
    spec.structProb = 0.35;
    spec.listProb = 0.1;
    spec.seed = 12;
    term::Program program = kbgen.generate(spec);
    const auto &pred = program.predicates()[0];

    workload::QuerySpec qspec;
    qspec.boundArgProb = 0.45;
    qspec.sharedVarProb = 0.45;
    qspec.seed = 8;
    workload::QueryGenerator qgen(sym, qspec);
    constexpr int kQueries = 12;
    std::vector<workload::GeneratedQuery> queries;
    for (int i = 0; i < kQueries; ++i)
        queries.push_back(qgen.generate(program, pred));

    // Ground truth per query.
    std::vector<std::vector<bool>> truth(queries.size());
    std::size_t true_total = 0;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        for (std::size_t i : program.clausesOf(pred)) {
            bool u = unify::wouldUnify(queries[qi].arena,
                                       queries[qi].goal,
                                       program.clause(i));
            truth[qi].push_back(u);
            true_total += u;
        }
    }

    struct Config
    {
        const char *name;
        unify::MatchConfig config;
    };
    // Levels 1-4 are the original algorithm (variables match
    // anything); cross-binding checks are the paper's addition, and
    // level 5 is full-depth matching with them built in.
    const Config configs[] = {
        {"level 1 (type only)", {1, false}},
        {"level 2 (+content)", {2, false}},
        {"level 3 (+first-level structures)", {3, false}},
        {"level 3 + cross binding (ADOPTED)", {3, true}},
        {"level 4 (full structures)", {4, false}},
        {"level 5 (full + cross binding)", {5, true}},
    };

    Table t("Matching-level ablation (3000 clauses x 12 queries; "
            "true answers = " + std::to_string(true_total) + ")");
    t.header({"Configuration", "Candidates", "False drops",
              "FD rate", "Datapath ops", "Model ns/clause"});

    for (const Config &cfg : configs) {
        unify::TermMatcher matcher(cfg.config);
        std::size_t candidates = 0;
        std::size_t false_drops = 0;
        unify::TueOpCounts ops{};
        std::uint64_t clauses = 0;
        for (std::size_t qi = 0; qi < queries.size(); ++qi) {
            std::size_t ci = 0;
            for (std::size_t i : program.clausesOf(pred)) {
                const term::Clause &clause = program.clause(i);
                unify::MatchResult r = matcher.match(
                    clause.arena(), clause.head(),
                    queries[qi].arena, queries[qi].goal);
                for (std::size_t o = 0; o < unify::kTueOpCount; ++o)
                    ops[o] += r.opCounts[o];
                ++clauses;
                if (r.hit) {
                    ++candidates;
                    if (!truth[qi][ci])
                        ++false_drops;
                }
                ++ci;
            }
        }
        // Hardware-model cost: Table-1 weighted operation time per
        // clause (levels 4/5 use the same weights — the cost their
        // hardware would need at minimum, with unbounded recursion
        // hardware on top).
        std::uint64_t ns = 0;
        std::uint64_t datapath_ops = 0;
        for (std::size_t o = 0; o < unify::kTueOpCount; ++o) {
            TueOp op = static_cast<TueOp>(o);
            if (op == TueOp::Skip)
                continue;
            ns += ops[o] * fs2::operationTimeNs(op);
            datapath_ops += ops[o];
        }
        double fd_rate = candidates == 0
            ? 0.0
            : static_cast<double>(false_drops) /
              static_cast<double>(candidates);
        t.row({cfg.name, std::to_string(candidates),
               std::to_string(false_drops), Table::num(fd_rate, 3),
               std::to_string(datapath_ops),
               Table::num(static_cast<double>(ns) /
                          static_cast<double>(clauses), 1)});
    }
    t.print(std::cout);

    std::printf("\nshape: selectivity improves monotonically with "
                "level; cross-binding checks\nclose most of the gap to "
                "full-depth matching at a fraction of the hardware\n"
                "complexity — the basis for adopting level 3 + cross "
                "binding.\n");

    // Operation mix of the adopted configuration.
    unify::TermMatcher adopted(unify::MatchConfig{3, true});
    unify::TueOpCounts mix{};
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        for (std::size_t i : program.clausesOf(pred)) {
            const term::Clause &clause = program.clause(i);
            unify::MatchResult r = adopted.match(
                clause.arena(), clause.head(), queries[qi].arena,
                queries[qi].goal);
            for (std::size_t o = 0; o < unify::kTueOpCount; ++o)
                mix[o] += r.opCounts[o];
        }
    }
    Table mixTable("Operation mix, level 3 + cross binding");
    mixTable.header({"Operation", "Count", "ns/op", "Total time"});
    for (std::size_t o = 0; o < unify::kTueOpCount; ++o) {
        TueOp op = static_cast<TueOp>(o);
        if (mix[o] == 0)
            continue;
        std::uint64_t per = op == TueOp::Skip
            ? 0 : fs2::operationTimeNs(op);
        mixTable.row({tueOpName(op), std::to_string(mix[o]),
                      std::to_string(per),
                      bench::formatTime(nanoseconds(per * mix[o]))});
    }
    mixTable.print(std::cout);
    return 0;
}
