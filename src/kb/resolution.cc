#include "kb/resolution.hh"

#include <functional>
#include <memory>

#include "kb/arith.hh"
#include "support/logging.hh"
#include "term/term_writer.hh"
#include "unify/bindings.hh"
#include "unify/unify.hh"

namespace clare::kb {

using term::TermArena;
using term::TermKind;
using term::TermRef;

namespace {

/**
 * A pending goal plus the cut barrier of the clause activation it
 * belongs to.  All body goals of one activation share a barrier; a
 * '!' goal sets it, which (a) stops the clause loops of sibling goals
 * from retrying alternatives and (b) makes the activated goal fail
 * outright instead of trying further clauses.
 */
struct GoalEntry
{
    TermRef term;
    std::shared_ptr<bool> barrier;
};

/** The depth-first SLD search over one runtime arena. */
class SearchState
{
  public:
    SearchState(KnowledgeBase &kb, const SolveOptions &options,
                SolveStats &stats)
        : kb_(kb), options_(options), stats_(stats)
    {}

    TermArena &arena() { return arena_; }
    unify::Bindings &bindings() { return bindings_; }

    /**
     * Solve goals[idx..]; calls @p on_solution for each solution.
     * Returns true when the search should stop (enough solutions or
     * budget exhausted).
     */
    bool
    solve(const std::vector<GoalEntry> &goals, std::size_t idx,
          const std::function<bool()> &on_solution)
    {
        if (idx == goals.size())
            return on_solution();

        const GoalEntry &entry = goals[idx];
        TermRef goal = bindings_.deref(arena_, entry.term);
        TermKind k = arena_.kind(goal);
        if (k == TermKind::Var)
            clare_fatal("unbound variable used as a goal");
        if (k != TermKind::Atom && k != TermKind::Struct)
            clare_fatal("goal must be an atom or structure");

        bool handled = false;
        bool stop = builtin(goals, idx, goal, on_solution, handled);
        if (handled)
            return stop;

        return userPredicate(goals, idx, goal, on_solution);
    }

  private:
    KnowledgeBase &kb_;
    const SolveOptions &options_;
    SolveStats &stats_;
    TermArena arena_;
    unify::Bindings bindings_;

    term::SymbolTable &symbols_ = kb_.symbols();
    term::SymbolId trueSym_ = symbols_.intern("true");
    term::SymbolId failSym_ = symbols_.intern("fail");
    term::SymbolId falseSym_ = symbols_.intern("false");
    term::SymbolId cutSym_ = symbols_.intern("!");

    /** Convert a resolved ':-'/2 or head term into a Clause. */
    term::Clause
    termToClause(term::TermArena &snapshot, TermRef t)
    {
        term::SymbolId neck = symbols_.intern(":-");
        term::SymbolId comma = symbols_.intern(",");
        TermRef head = t;
        std::vector<TermRef> body;
        if (snapshot.kind(t) == TermKind::Struct &&
            snapshot.functor(t) == neck && snapshot.arity(t) == 2) {
            head = snapshot.arg(t, 0);
            TermRef conj = snapshot.arg(t, 1);
            while (snapshot.kind(conj) == TermKind::Struct &&
                   snapshot.functor(conj) == comma &&
                   snapshot.arity(conj) == 2) {
                body.push_back(snapshot.arg(conj, 0));
                conj = snapshot.arg(conj, 1);
            }
            body.push_back(conj);
        }
        // The clause gets its own arena.
        term::TermArena arena;
        TermRef new_head = arena.import(snapshot, head, 0);
        std::vector<TermRef> new_body;
        for (TermRef g : body)
            new_body.push_back(arena.import(snapshot, g, 0));
        return term::Clause(std::move(arena), new_head,
                            std::move(new_body));
    }

    /** Structural (==) equality of two dereferenced terms. */
    bool
    structurallyEqual(TermRef a, TermRef b)
    {
        a = bindings_.deref(arena_, a);
        b = bindings_.deref(arena_, b);
        TermKind ka = arena_.kind(a);
        if (ka != arena_.kind(b))
            return false;
        switch (ka) {
          case TermKind::Var:
            return arena_.varId(a) == arena_.varId(b);
          case TermKind::Atom:
            return arena_.atomSymbol(a) == arena_.atomSymbol(b);
          case TermKind::Int:
            return arena_.intValue(a) == arena_.intValue(b);
          case TermKind::Float:
            return arena_.floatId(a) == arena_.floatId(b);
          case TermKind::Struct: {
            if (arena_.functor(a) != arena_.functor(b) ||
                arena_.arity(a) != arena_.arity(b)) {
                return false;
            }
            for (std::uint32_t i = 0; i < arena_.arity(a); ++i)
                if (!structurallyEqual(arena_.arg(a, i),
                                       arena_.arg(b, i)))
                    return false;
            return true;
          }
          case TermKind::List: {
            if (arena_.arity(a) != arena_.arity(b))
                return false;
            for (std::uint32_t i = 0; i < arena_.arity(a); ++i)
                if (!structurallyEqual(arena_.arg(a, i),
                                       arena_.arg(b, i)))
                    return false;
            TermRef ta = arena_.listTail(a);
            TermRef tb = arena_.listTail(b);
            if ((ta == term::kNoTerm) != (tb == term::kNoTerm))
                return false;
            return ta == term::kNoTerm || structurallyEqual(ta, tb);
          }
        }
        clare_panic("unreachable term kind");
    }

    /** Unify-and-continue helper shared by =/2 and is/2. */
    bool
    unifyContinue(const std::vector<GoalEntry> &goals, std::size_t idx,
                  TermRef a, TermRef b,
                  const std::function<bool()> &on_solution)
    {
        unify::TrailMark mark = bindings_.mark();
        unify::UnifyOptions uopt;
        uopt.occursCheck = options_.occursCheck;
        if (unify::unifyTerms(arena_, a, b, bindings_, uopt)) {
            if (solve(goals, idx + 1, on_solution))
                return true;
        }
        bindings_.undo(mark);
        return false;
    }

    /**
     * Dispatch built-ins.  Sets @p handled when the goal was one;
     * the return value then carries the solve() result.
     */
    bool
    builtin(const std::vector<GoalEntry> &goals, std::size_t idx,
            TermRef goal, const std::function<bool()> &on_solution,
            bool &handled)
    {
        handled = true;
        TermKind k = arena_.kind(goal);

        if (k == TermKind::Atom) {
            term::SymbolId sym = arena_.atomSymbol(goal);
            if (sym == trueSym_)
                return solve(goals, idx + 1, on_solution);
            if (sym == failSym_ || sym == falseSym_)
                return false;
            if (sym == cutSym_) {
                // Commit to the current activation: no further
                // alternatives for any sibling goal or for the
                // activated clause itself.
                if (goals[idx].barrier)
                    *goals[idx].barrier = true;
                return solve(goals, idx + 1, on_solution);
            }
            handled = false;
            return false;
        }

        const std::string &name = symbols_.name(arena_.functor(goal));
        std::uint32_t arity = arena_.arity(goal);

        if (arity == 2 && name == ",") {
            // Conjunction control term (from call/1, parenthesized
            // bodies, or disjunction branches): splice both conjuncts
            // into the goal list under the same cut barrier.
            std::vector<GoalEntry> next;
            next.reserve(goals.size() - idx + 1);
            next.push_back({arena_.arg(goal, 0), goals[idx].barrier});
            next.push_back({arena_.arg(goal, 1), goals[idx].barrier});
            for (std::size_t j = idx + 1; j < goals.size(); ++j)
                next.push_back(goals[j]);
            return solve(next, 0, on_solution);
        }

        if (arity == 2 && name == ";") {
            // Disjunction: try the left branch, then the right.
            for (int side = 0; side < 2; ++side) {
                unify::TrailMark mark = bindings_.mark();
                std::vector<GoalEntry> next;
                next.reserve(goals.size() - idx);
                next.push_back({arena_.arg(goal,
                                           static_cast<std::uint32_t>(
                                               side)),
                                goals[idx].barrier});
                for (std::size_t j = idx + 1; j < goals.size(); ++j)
                    next.push_back(goals[j]);
                if (solve(next, 0, on_solution))
                    return true;
                bindings_.undo(mark);
                if (goals[idx].barrier && *goals[idx].barrier)
                    return false;   // a cut committed to this branch
            }
            return false;
        }

        if (arity == 2) {
            TermRef a = arena_.arg(goal, 0);
            TermRef b = arena_.arg(goal, 1);
            if (name == "=")
                return unifyContinue(goals, idx, a, b, on_solution);
            if (name == "\\=") {
                unify::TrailMark mark = bindings_.mark();
                unify::UnifyOptions uopt;
                uopt.occursCheck = options_.occursCheck;
                bool unified = unify::unifyTerms(arena_, a, b, bindings_,
                                                 uopt);
                bindings_.undo(mark);
                return unified ? false
                               : solve(goals, idx + 1, on_solution);
            }
            if (name == "==") {
                return structurallyEqual(a, b)
                    ? solve(goals, idx + 1, on_solution) : false;
            }
            if (name == "\\==") {
                return structurallyEqual(a, b)
                    ? false : solve(goals, idx + 1, on_solution);
            }
            if (name == "is") {
                Number v = evalArith(symbols_, arena_, b, bindings_);
                TermRef value = v.isFloat
                    ? arena_.makeFloat(symbols_.internFloat(v.floatValue))
                    : arena_.makeInt(v.intValue);
                return unifyContinue(goals, idx, a, value, on_solution);
            }
            if (name == "<" || name == ">" || name == "=<" ||
                name == ">=" || name == "=:=" || name == "=\\=") {
                Number x = evalArith(symbols_, arena_, a, bindings_);
                Number y = evalArith(symbols_, arena_, b, bindings_);
                int c = compareNumbers(x, y);
                bool ok = (name == "<" && c < 0) ||
                          (name == ">" && c > 0) ||
                          (name == "=<" && c <= 0) ||
                          (name == ">=" && c >= 0) ||
                          (name == "=:=" && c == 0) ||
                          (name == "=\\=" && c != 0);
                return ok ? solve(goals, idx + 1, on_solution) : false;
            }
        }

        if (arity == 3 && name == "findall") {
            // findall(Template, Goal, List): collect every solution's
            // resolved template, then unify the list.
            TermRef template_term = arena_.arg(goal, 0);
            TermRef sub_goal = bindings_.deref(arena_,
                                               arena_.arg(goal, 1));
            unify::TrailMark mark = bindings_.mark();
            std::vector<TermRef> collected;
            std::vector<GoalEntry> sub{{sub_goal,
                                        std::make_shared<bool>(false)}};
            solve(sub, 0, [&]() {
                // Copy the instantiated template: later backtracking
                // must not disturb it, so it is rebuilt from resolved
                // form inside the runtime arena with fresh nodes.
                term::TermArena snapshot;
                TermRef resolved = unify::resolveTerm(
                    arena_, template_term, bindings_, snapshot);
                collected.push_back(arena_.import(
                    snapshot, resolved, arena_.varCeiling()));
                return false;   // keep enumerating
            });
            bindings_.undo(mark);
            TermRef list = collected.empty()
                ? arena_.makeAtom(symbols_.intern("[]"))
                : arena_.makeList(collected);
            return unifyContinue(goals, idx, arena_.arg(goal, 2), list,
                                 on_solution);
        }

        if (arity == 3 && name == "between") {
            // between(Lo, Hi, X): check or enumerate.
            Number lo = evalArith(symbols_, arena_,
                                  arena_.arg(goal, 0), bindings_);
            Number hi = evalArith(symbols_, arena_,
                                  arena_.arg(goal, 1), bindings_);
            if (lo.isFloat || hi.isFloat)
                clare_fatal("between/3 requires integer bounds");
            TermRef x = bindings_.deref(arena_, arena_.arg(goal, 2));
            if (arena_.kind(x) != TermKind::Var) {
                if (arena_.kind(x) != TermKind::Int)
                    return false;
                std::int64_t v = arena_.intValue(x);
                return v >= lo.intValue && v <= hi.intValue
                    ? solve(goals, idx + 1, on_solution) : false;
            }
            for (std::int64_t v = lo.intValue; v <= hi.intValue; ++v) {
                unify::TrailMark mark = bindings_.mark();
                bindings_.bind(arena_.varId(x), arena_.makeInt(v));
                if (solve(goals, idx + 1, on_solution))
                    return true;
                bindings_.undo(mark);
                // A cut fired in our activation: stop enumerating.
                if (goals[idx].barrier && *goals[idx].barrier)
                    return false;
            }
            return false;
        }

        if (arity == 1 && (name == "assert" || name == "assertz" ||
                           name == "asserta")) {
            term::TermArena snapshot;
            TermRef resolved = unify::resolveTerm(
                arena_, arena_.arg(goal, 0), bindings_, snapshot);
            term::Clause clause = termToClause(snapshot, resolved);
            if (name == "asserta")
                kb_.asserta(std::move(clause));
            else
                kb_.assertz(std::move(clause));
            return solve(goals, idx + 1, on_solution);
        }

        if (arity == 1 && name == "retract") {
            term::TermArena snapshot;
            TermRef resolved = unify::resolveTerm(
                arena_, arena_.arg(goal, 0), bindings_, snapshot);
            return kb_.retract(snapshot, resolved)
                ? solve(goals, idx + 1, on_solution) : false;
        }

        if (arity == 1) {
            TermRef arg = bindings_.deref(arena_, arena_.arg(goal, 0));
            if (name == "\\+" || name == "not") {
                // Negation as failure: the sub-proof may not bind the
                // caller's variables.
                unify::TrailMark mark = bindings_.mark();
                bool found = false;
                std::vector<GoalEntry> sub{{arg,
                                            std::make_shared<bool>(false)}};
                solve(sub, 0, [&found]() {
                    found = true;
                    return true;    // one witness is enough
                });
                bindings_.undo(mark);
                return found ? false
                             : solve(goals, idx + 1, on_solution);
            }
            if (name == "call") {
                std::vector<GoalEntry> next;
                next.reserve(goals.size() - idx);
                // A called goal is opaque to cut: give it its own
                // barrier.
                next.push_back({arg, std::make_shared<bool>(false)});
                for (std::size_t j = idx + 1; j < goals.size(); ++j)
                    next.push_back(goals[j]);
                return solve(next, 0, on_solution);
            }

            TermKind ak = arena_.kind(arg);
            auto type_check = [&](bool ok) {
                return ok ? solve(goals, idx + 1, on_solution) : false;
            };
            if (name == "var")
                return type_check(ak == TermKind::Var);
            if (name == "nonvar")
                return type_check(ak != TermKind::Var);
            if (name == "atom")
                return type_check(ak == TermKind::Atom);
            if (name == "integer")
                return type_check(ak == TermKind::Int);
            if (name == "float")
                return type_check(ak == TermKind::Float);
            if (name == "number")
                return type_check(ak == TermKind::Int ||
                                  ak == TermKind::Float);
            if (name == "atomic")
                return type_check(ak == TermKind::Atom ||
                                  ak == TermKind::Int ||
                                  ak == TermKind::Float);
            if (name == "compound")
                return type_check(ak == TermKind::Struct ||
                                  ak == TermKind::List);
        }

        handled = false;
        return false;
    }

    /** Resolve a user predicate goal against the knowledge base. */
    bool
    userPredicate(const std::vector<GoalEntry> &goals, std::size_t idx,
                  TermRef goal, const std::function<bool()> &on_solution)
    {
        // Retrieve candidate clauses for the goal as currently
        // instantiated.
        TermArena goal_arena;
        TermRef resolved = unify::resolveTerm(arena_, goal, bindings_,
                                              goal_arena);
        RetrievedClauses retrieved = kb_.clausesFor(goal_arena, resolved,
                                                    options_.forceMode);
        if (retrieved.retrieval) {
            ++stats_.retrievals;
            stats_.candidatesRetrieved +=
                retrieved.retrieval->candidates.size();
            stats_.retrievalFalseDrops +=
                retrieved.retrieval->falseDrops();
            stats_.retrievalTime += retrieved.retrieval->elapsed;
        }

        const std::shared_ptr<bool> &parent_barrier = goals[idx].barrier;
        for (const term::Clause &clause : retrieved.clauses) {
            if (++stats_.steps > options_.maxSteps) {
                stats_.budgetExhausted = true;
                return true;
            }
            term::VarId offset = arena_.varCeiling();
            TermRef head = arena_.import(clause.arena(), clause.head(),
                                         offset);
            unify::TrailMark mark = bindings_.mark();
            unify::UnifyOptions uopt;
            uopt.occursCheck = options_.occursCheck;
            if (unify::unifyTerms(arena_, goal, head, bindings_, uopt)) {
                auto barrier = std::make_shared<bool>(false);
                std::vector<GoalEntry> next;
                next.reserve(clause.body().size() +
                             (goals.size() - idx - 1));
                for (TermRef g : clause.body())
                    next.push_back({arena_.import(clause.arena(), g,
                                                  offset),
                                    barrier});
                for (std::size_t j = idx + 1; j < goals.size(); ++j)
                    next.push_back(goals[j]);
                if (solve(next, 0, on_solution))
                    return true;
                bindings_.undo(mark);
                // A '!' inside the activated clause commits: no
                // further clauses for this goal.
                if (*barrier)
                    return false;
            } else {
                bindings_.undo(mark);
            }
            // A cut in the activation *containing* this goal fired
            // while a sibling backtracked: stop retrying entirely.
            if (parent_barrier && *parent_barrier)
                return false;
        }
        return false;
    }
};

} // namespace

std::vector<Solution>
Solver::solve(std::string_view query_text, SolveOptions options)
{
    term::TermReader reader(kb_.symbols());
    return solve(reader.parseQuery(query_text), options);
}

std::vector<Solution>
Solver::solve(const term::ParsedQuery &query, SolveOptions options)
{
    stats_ = SolveStats{};
    std::vector<Solution> solutions;

    SearchState state(kb_, options, stats_);
    auto query_barrier = std::make_shared<bool>(false);
    std::vector<GoalEntry> goals;
    goals.reserve(query.goals.size());
    for (TermRef g : query.goals)
        goals.push_back({state.arena().import(query.arena, g, 0),
                         query_barrier});

    term::TermWriter writer(kb_.symbols());
    state.solve(goals, 0, [&]() {
        Solution solution;
        for (const auto &kv : query.varNames) {
            TermArena out;
            TermRef v = state.arena().makeVar(kv.second, term::kNoSymbol);
            TermRef resolved = unify::resolveTerm(state.arena(), v,
                                                  state.bindings(), out);
            solution.bindings[kv.first] = writer.write(out, resolved);
        }
        solutions.push_back(std::move(solution));
        return solutions.size() >= options.maxSolutions;
    });
    return solutions;
}

} // namespace clare::kb
