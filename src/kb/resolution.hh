/**
 * @file
 * SLD resolution over the integrated knowledge base.
 *
 * Standard Prolog search: goals are solved left to right, clauses are
 * tried in source order, and backtracking undoes bindings through the
 * trail.  Clause retrieval for large (disk-resident) predicates goes
 * through the CRS/CLARE path; the filters only ever *narrow* the
 * candidate set, so resolution results are identical to exhaustive
 * search — the retrieval statistics the solver accumulates show what
 * the hardware saved.
 *
 * Built-ins: control (',', ';', '!', call/1, \+/not), unification
 * (=, \=, ==, \==), arithmetic (is, <, >, =<, >=, =:=, =\=,
 * between/3), term inspection (var, nonvar, atom, integer, float,
 * number, atomic, compound), solution collection (findall/3), and
 * database updates (assert(z/a), retract).
 *
 * Implementation note: the search is continuation-passing — each
 * resolved goal nests a C++ frame — so native stack depth grows with
 * the *proof size*, not just its depth.  Exponential proofs in the
 * hundreds of thousands of inferences need either a larger thread
 * stack or the maxSteps budget.
 */

#ifndef CLARE_KB_RESOLUTION_HH
#define CLARE_KB_RESOLUTION_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kb/knowledge_base.hh"
#include "support/sim_time.hh"

namespace clare::kb {

/** Solver limits and retrieval forcing. */
struct SolveOptions
{
    std::uint64_t maxSteps = 1'000'000;     ///< unification attempts
    std::uint64_t maxSolutions = UINT64_MAX;
    bool occursCheck = false;
    /** Force a retrieval mode instead of CRS auto-selection. */
    std::optional<crs::SearchMode> forceMode;
};

/** One solution: query variable name -> rendered binding. */
struct Solution
{
    std::map<std::string, std::string> bindings;
};

/** Accumulated solver statistics. */
struct SolveStats
{
    std::uint64_t steps = 0;            ///< head unification attempts
    std::uint64_t retrievals = 0;       ///< CLARE retrievals issued
    std::uint64_t candidatesRetrieved = 0;
    std::uint64_t retrievalFalseDrops = 0;
    Tick retrievalTime = 0;             ///< modeled retrieval latency
    bool budgetExhausted = false;
};

/** The resolution engine. */
class Solver
{
  public:
    explicit Solver(KnowledgeBase &kb) : kb_(kb) {}

    /** Solve a query text ("?-" optional), collecting solutions. */
    std::vector<Solution> solve(std::string_view query_text,
                                SolveOptions options = {});

    /** Solve an already-parsed query. */
    std::vector<Solution> solve(const term::ParsedQuery &query,
                                SolveOptions options = {});

    /** Statistics of the most recent solve() call. */
    const SolveStats &stats() const { return stats_; }

  private:
    KnowledgeBase &kb_;
    SolveStats stats_;
};

} // namespace clare::kb

#endif // CLARE_KB_RESOLUTION_HH
