#include "kb/knowledge_base.hh"

#include "support/logging.hh"
#include "unify/bindings.hh"
#include "unify/unify.hh"

namespace clare::kb {

KnowledgeBase::KnowledgeBase(KbConfig config)
    : config_(config), reader_(symbols_)
{
}

void
KnowledgeBase::consult(std::string_view text)
{
    if (compiled_)
        clare_fatal("consult after compile(): the disk-resident store "
                    "is immutable in this model");
    for (term::Clause &clause : reader_.parseProgram(text))
        program_.add(std::move(clause));
}

void
KnowledgeBase::add(term::Clause clause)
{
    if (compiled_)
        clare_fatal("add after compile(): the disk-resident store is "
                    "immutable in this model");
    program_.add(std::move(clause));
}

void
KnowledgeBase::loadLibrary()
{
    consult(R"prolog(
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).

        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).

        length([], 0).
        length([_|T], N) :- length(T, M), N is M + 1.

        reverse(L, R) :- reverse_acc(L, [], R).
        reverse_acc([], A, A).
        reverse_acc([H|T], A, R) :- reverse_acc(T, [H|A], R).

        last([X], X).
        last([_|T], X) :- last(T, X).

        nth0(N, L, X) :- nth0_walk(L, 0, N, X).
        nth0_walk([X|_], I, I, X).
        nth0_walk([_|T], I, N, X) :- J is I + 1, nth0_walk(T, J, N, X).

        select(X, [X|T], T).
        select(X, [H|T], [H|R]) :- select(X, T, R).

        sum_list([], 0).
        sum_list([H|T], S) :- sum_list(T, R), S is R + H.

        max_list([X], X).
        max_list([H|T], M) :- max_list(T, N), M is max(H, N).

        min_list([X], X).
        min_list([H|T], M) :- min_list(T, N), M is min(H, N).
    )prolog");
}

void
KnowledgeBase::assertz(term::Clause clause)
{
    term::PredicateId pred = clause.predicate();
    if (compiled_ && isLarge(pred)) {
        if (live_ != nullptr) {
            live_->assertz(clause);
            return;
        }
        clare_fatal("assert on disk-resident predicate %s/%u (the "
                    "compiled store is immutable; call "
                    "enableLiveUpdates() for WAL-backed writes)",
                    symbols_.name(pred.functor).c_str(), pred.arity);
    }
    program_.add(std::move(clause));
}

void
KnowledgeBase::asserta(term::Clause clause)
{
    term::PredicateId pred = clause.predicate();
    if (compiled_ && isLarge(pred)) {
        if (live_ != nullptr) {
            live_->asserta(clause);
            return;
        }
        clare_fatal("assert on disk-resident predicate %s/%u (the "
                    "compiled store is immutable; call "
                    "enableLiveUpdates() for WAL-backed writes)",
                    symbols_.name(pred.functor).c_str(), pred.arity);
    }
    program_.addFront(std::move(clause));
}

namespace {

/** Build the right-nested ','/2 conjunction of a clause body. */
term::TermRef
bodyConjunction(term::TermArena &arena, term::SymbolTable &symbols,
                const term::Clause &clause, term::VarId offset)
{
    if (clause.isFact())
        return arena.makeAtom(symbols.intern("true"));
    term::TermRef conj = arena.import(clause.arena(),
                                      clause.body().back(), offset);
    for (std::size_t i = clause.body().size() - 1; i-- > 0;) {
        term::TermRef g = arena.import(clause.arena(),
                                       clause.body()[i], offset);
        term::TermRef args[] = {g, conj};
        conj = arena.makeStruct(symbols.intern(","), args);
    }
    return conj;
}

} // namespace

bool
KnowledgeBase::retract(const term::TermArena &arena,
                       term::TermRef pattern)
{
    // Split the pattern into head and body-conjunction parts.
    term::TermRef head_pat = pattern;
    term::TermRef body_pat = term::kNoTerm;
    term::SymbolId neck = symbols_.intern(":-");
    if (arena.kind(pattern) == term::TermKind::Struct &&
        arena.functor(pattern) == neck && arena.arity(pattern) == 2) {
        head_pat = arena.arg(pattern, 0);
        body_pat = arena.arg(pattern, 1);
    }

    term::PredicateId pred;
    term::TermKind hk = arena.kind(head_pat);
    if (hk == term::TermKind::Atom) {
        pred = term::PredicateId{arena.atomSymbol(head_pat), 0};
    } else if (hk == term::TermKind::Struct) {
        pred = term::PredicateId{arena.functor(head_pat),
                                 arena.arity(head_pat)};
    } else {
        clare_fatal("retract pattern head must be an atom or structure");
    }
    if (compiled_ && isLarge(pred)) {
        if (live_ != nullptr)
            return live_->retract(arena, pattern).has_value();
        clare_fatal("retract on disk-resident predicate %s/%u (the "
                    "compiled store is immutable; call "
                    "enableLiveUpdates() for WAL-backed writes)",
                    symbols_.name(pred.functor).c_str(), pred.arity);
    }

    for (std::size_t ordinal : program_.clausesOf(pred)) {
        const term::Clause &clause = program_.clause(ordinal);
        // A bare-head pattern matches facts only (retract(H) is
        // retract((H :- true))).
        if (body_pat == term::kNoTerm && !clause.isFact())
            continue;

        // Standardize apart and unify head (and body when given).
        term::TermArena scratch;
        term::TermRef goal_head = scratch.import(arena, head_pat, 0);
        term::VarId offset = arena.varCeiling();
        term::TermRef clause_head = scratch.import(clause.arena(),
                                                   clause.head(),
                                                   offset);
        unify::Bindings bindings;
        if (!unify::unifyTerms(scratch, goal_head, clause_head,
                               bindings)) {
            continue;
        }
        if (body_pat != term::kNoTerm) {
            term::TermRef goal_body = scratch.import(arena, body_pat, 0);
            term::TermRef clause_body = bodyConjunction(
                scratch, symbols_, clause, offset);
            if (!unify::unifyTerms(scratch, goal_body, clause_body,
                                   bindings)) {
                continue;
            }
        }
        program_.remove(ordinal);
        return true;
    }
    return false;
}

void
KnowledgeBase::compile()
{
    clare_assert(!compiled_, "knowledge base already compiled");

    // Classify predicates by clause count.
    term::Program large_program;
    for (const term::PredicateId &pred : program_.predicates()) {
        const auto &ordinals = program_.clausesOf(pred);
        if (ordinals.size() >= config_.largeThreshold) {
            largePreds_.push_back(pred);
            for (std::size_t i : ordinals) {
                // Clauses are copied into the store; the in-memory
                // program keeps them too as the source of truth for
                // introspection.
                const term::Clause &c = program_.clause(i);
                term::TermArena arena;
                term::TermRef head = arena.import(c.arena(), c.head(), 0);
                std::vector<term::TermRef> body;
                for (term::TermRef g : c.body())
                    body.push_back(arena.import(c.arena(), g, 0));
                large_program.add(term::Clause(std::move(arena), head,
                                               std::move(body)));
            }
        }
    }

    store_ = std::make_unique<crs::PredicateStore>(
        symbols_, scw::CodewordGenerator(config_.scw), config_.disk);
    store_->addProgram(large_program);
    store_->finalize();
    server_ = std::make_unique<crs::ClauseRetrievalServer>(
        symbols_, *store_, config_.crs);
    compiled_ = true;
}

void
KnowledgeBase::enableLiveUpdates(const std::string &wal_path,
                                 std::uint64_t applied_lsn)
{
    clare_assert(compiled_, "enableLiveUpdates() before compile()");
    clare_assert(live_ == nullptr, "live updates already enabled");
    live_ = std::make_unique<crs::LiveStore>(*store_, symbols_,
                                             wal_path, applied_lsn,
                                             config_.crs.faults);
    live_->attachSink(server_.get());
    // Predicates created (or grown) by WAL replay before this call
    // returned are already published; nothing else to do — readers
    // resolve versions per request.
}

bool
KnowledgeBase::isLarge(const term::PredicateId &pred) const
{
    for (const auto &p : largePreds_)
        if (p == pred)
            return true;
    return false;
}

const crs::PredicateStore &
KnowledgeBase::store() const
{
    clare_assert(store_, "store accessed before compile()");
    return *store_;
}

crs::ClauseRetrievalServer &
KnowledgeBase::server()
{
    clare_assert(server_, "server accessed before compile()");
    return *server_;
}

RetrievedClauses
KnowledgeBase::clausesFor(const term::TermArena &q_arena,
                          term::TermRef goal,
                          std::optional<crs::SearchMode> mode)
{
    term::PredicateId pred;
    if (q_arena.kind(goal) == term::TermKind::Atom) {
        pred = term::PredicateId{q_arena.atomSymbol(goal), 0};
    } else if (q_arena.kind(goal) == term::TermKind::Struct) {
        pred = term::PredicateId{q_arena.functor(goal),
                                 q_arena.arity(goal)};
    } else {
        clare_fatal("goal must be an atom or structure");
    }

    RetrievedClauses out;
    if (compiled_ && isLarge(pred)) {
        crs::RetrievalRequest request;
        request.arena = &q_arena;
        request.goal = goal;
        request.mode = mode;
        crs::RetrievalResponse r = server_->serve(request);
        const crs::StoredPredicate &stored = store_->predicate(pred);
        for (std::uint32_t ordinal : r.candidates) {
            std::string text = stored.clauses.sourceText(ordinal);
            out.clauses.push_back(reader_.parseClause(text));
        }
        out.retrieval = std::move(r);
        return out;
    }

    for (std::size_t i : program_.clausesOf(pred)) {
        const term::Clause &c = program_.clause(i);
        term::TermArena arena;
        term::TermRef head = arena.import(c.arena(), c.head(), 0);
        std::vector<term::TermRef> body;
        for (term::TermRef g : c.body())
            body.push_back(arena.import(c.arena(), g, 0));
        out.clauses.push_back(term::Clause(std::move(arena), head,
                                           std::move(body)));
    }
    return out;
}

} // namespace clare::kb
