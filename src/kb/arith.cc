#include "kb/arith.hh"

#include <cmath>
#include <cstdlib>

#include "support/logging.hh"

namespace clare::kb {

using term::TermArena;
using term::TermKind;
using term::TermRef;

namespace {

Number
evalBinary(const std::string &op, const Number &a, const Number &b)
{
    bool as_float = a.isFloat || b.isFloat;
    if (op == "+") {
        return as_float ? Number::ofFloat(a.asDouble() + b.asDouble())
                        : Number::ofInt(a.intValue + b.intValue);
    }
    if (op == "-") {
        return as_float ? Number::ofFloat(a.asDouble() - b.asDouble())
                        : Number::ofInt(a.intValue - b.intValue);
    }
    if (op == "*") {
        return as_float ? Number::ofFloat(a.asDouble() * b.asDouble())
                        : Number::ofInt(a.intValue * b.intValue);
    }
    if (op == "/") {
        if (as_float) {
            if (b.asDouble() == 0.0)
                clare_fatal("arithmetic: division by zero");
            return Number::ofFloat(a.asDouble() / b.asDouble());
        }
        if (b.intValue == 0)
            clare_fatal("arithmetic: division by zero");
        return Number::ofInt(a.intValue / b.intValue);
    }
    if (op == "mod") {
        if (as_float)
            clare_fatal("arithmetic: mod requires integers");
        if (b.intValue == 0)
            clare_fatal("arithmetic: mod by zero");
        return Number::ofInt(((a.intValue % b.intValue) + b.intValue) %
                             b.intValue);
    }
    if (op == "min") {
        return compareNumbers(a, b) <= 0 ? a : b;
    }
    if (op == "max") {
        return compareNumbers(a, b) >= 0 ? a : b;
    }
    clare_fatal("arithmetic: unknown operator '%s'/2", op.c_str());
}

} // namespace

Number
evalArith(const term::SymbolTable &symbols, const TermArena &arena,
          TermRef t, const unify::Bindings &bindings)
{
    t = bindings.deref(arena, t);
    switch (arena.kind(t)) {
      case TermKind::Int:
        return Number::ofInt(arena.intValue(t));
      case TermKind::Float:
        return Number::ofFloat(symbols.floatValue(arena.floatId(t)));
      case TermKind::Var:
        clare_fatal("arithmetic: expression is not sufficiently "
                    "instantiated");
      case TermKind::Atom:
        clare_fatal("arithmetic: atom '%s' is not a number",
                    symbols.name(arena.atomSymbol(t)).c_str());
      case TermKind::List:
        clare_fatal("arithmetic: a list is not a number");
      case TermKind::Struct: {
        const std::string &op = symbols.name(arena.functor(t));
        if (arena.arity(t) == 1) {
            Number a = evalArith(symbols, arena, arena.arg(t, 0),
                                 bindings);
            if (op == "-") {
                return a.isFloat ? Number::ofFloat(-a.floatValue)
                                 : Number::ofInt(-a.intValue);
            }
            if (op == "abs") {
                return a.isFloat
                    ? Number::ofFloat(std::fabs(a.floatValue))
                    : Number::ofInt(std::llabs(a.intValue));
            }
            clare_fatal("arithmetic: unknown operator '%s'/1",
                        op.c_str());
        }
        if (arena.arity(t) == 2) {
            Number a = evalArith(symbols, arena, arena.arg(t, 0),
                                 bindings);
            Number b = evalArith(symbols, arena, arena.arg(t, 1),
                                 bindings);
            return evalBinary(op, a, b);
        }
        clare_fatal("arithmetic: unknown operator '%s'/%u", op.c_str(),
                    arena.arity(t));
      }
    }
    clare_panic("unreachable term kind");
}

int
compareNumbers(const Number &a, const Number &b)
{
    if (!a.isFloat && !b.isFloat) {
        if (a.intValue < b.intValue)
            return -1;
        return a.intValue > b.intValue ? 1 : 0;
    }
    double x = a.asDouble();
    double y = b.asDouble();
    if (x < y)
        return -1;
    return x > y ? 1 : 0;
}

} // namespace clare::kb
