/**
 * @file
 * Arithmetic evaluation for the is/2 and comparison built-ins.
 *
 * Evaluates ground arithmetic expressions over integers and floats:
 * +, -, *, /, mod, min/2, max/2, abs/1.  Integer division truncates
 * toward zero unless either operand is a float; an unbound variable
 * or non-numeric leaf raises FatalError (Prolog's instantiation /
 * type errors).
 */

#ifndef CLARE_KB_ARITH_HH
#define CLARE_KB_ARITH_HH

#include <cstdint>

#include "term/symbol_table.hh"
#include "term/term.hh"
#include "unify/bindings.hh"

namespace clare::kb {

/** A numeric value: integer or float. */
struct Number
{
    bool isFloat = false;
    std::int64_t intValue = 0;
    double floatValue = 0.0;

    double
    asDouble() const
    {
        return isFloat ? floatValue : static_cast<double>(intValue);
    }

    static Number
    ofInt(std::int64_t v)
    {
        return Number{false, v, 0.0};
    }

    static Number
    ofFloat(double v)
    {
        return Number{true, 0, v};
    }
};

/**
 * Evaluate a (dereferenced) arithmetic expression.
 *
 * @param symbols used to resolve operator names and float values
 * @throws FatalError on unbound variables or non-arithmetic terms
 */
Number evalArith(const term::SymbolTable &symbols,
                 const term::TermArena &arena, term::TermRef t,
                 const unify::Bindings &bindings);

/** Three-way comparison of two numbers (-1, 0, 1). */
int compareNumbers(const Number &a, const Number &b);

} // namespace clare::kb

#endif // CLARE_KB_ARITH_HH
