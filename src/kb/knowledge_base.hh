/**
 * @file
 * The integrated Prolog knowledge base of the PDBM project.
 *
 * Unlike a coupled system, the knowledge base keeps rules and facts of
 * a predicate together in user-specified order, allows mixed relations
 * (ground facts alongside rules), and manages everything under one
 * Prolog system.  Predicates are classified like Prolog-X modules:
 * *small* predicates stay in main memory; *large* predicates are
 * compiled to disk-resident clause files with secondary (codeword)
 * files and retrieved through the Clause Retrieval Server backed by
 * the CLARE filters.
 */

#ifndef CLARE_KB_KNOWLEDGE_BASE_HH
#define CLARE_KB_KNOWLEDGE_BASE_HH

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "crs/live_update.hh"
#include "crs/server.hh"
#include "crs/store.hh"
#include "term/clause.hh"
#include "term/symbol_table.hh"
#include "term/term_reader.hh"

namespace clare::kb {

/** Knowledge base configuration. */
struct KbConfig
{
    /**
     * Predicates with at least this many clauses are compiled to disk
     * (large); smaller ones stay in memory (small).
     */
    std::size_t largeThreshold = 256;

    scw::ScwConfig scw;
    crs::CrsConfig crs;
    storage::DiskGeometry disk = storage::DiskGeometry::fujitsuM2351A();
};

/** Clauses retrieved for a goal, plus retrieval accounting if CLARE ran. */
struct RetrievedClauses
{
    /** Candidate clauses in source order (superset of the unifiers). */
    std::vector<term::Clause> clauses;

    /** Present when the goal hit a large (disk-resident) predicate. */
    std::optional<crs::RetrievalResponse> retrieval;
};

/** The integrated knowledge base. */
class KnowledgeBase
{
  public:
    explicit KnowledgeBase(KbConfig config = {});

    term::SymbolTable &symbols() { return symbols_; }
    const KbConfig &config() const { return config_; }

    /** Parse and add a program text (order preserved). */
    void consult(std::string_view text);

    /**
     * Consult the bundled library of list predicates (append/3,
     * member/2, length/2, reverse/2, last/2, nth0/3, select/3,
     * sum_list/2, max_list/2, min_list/2).  Call before compile().
     */
    void loadLibrary();

    /** Add one clause at the end of the program. */
    void add(term::Clause clause);

    /**
     * @name Dynamic updates (assert/retract).
     *
     * Permitted before compile(), and afterwards for predicates that
     * stayed in memory (small).  A disk-resident predicate becomes
     * updatable once enableLiveUpdates() attaches a WAL-backed
     * crs::LiveStore; without one the update is rejected (the
     * compiled files are immutable, as in the original PDBM model).
     */
    /// @{
    void assertz(term::Clause clause);
    void asserta(term::Clause clause);

    /**
     * Retract the first clause matching @p pattern: either a head
     * term (matches facts) or ':-'(Head, BodyConjunction).
     *
     * @return true if a clause was removed
     */
    bool retract(const term::TermArena &arena, term::TermRef pattern);
    /// @}

    std::size_t clauseCount() const { return program_.size(); }
    const term::Program &program() const { return program_; }

    /**
     * Classify predicates, compile the large ones to the predicate
     * store, and bring up the CRS.  Further consults are rejected
     * (the disk-resident store is immutable in this model; the paper's
     * update path is future work for the PDBM project too).
     */
    void compile();

    bool compiled() const { return compiled_; }

    /**
     * Attach crash-recoverable live updates to the compiled store:
     * opens (or recovers) the WAL at @p wal_path, replays committed
     * records past @p applied_lsn (the manifest watermark of a
     * checkpointed store; 0 otherwise), and routes assert/retract on
     * disk-resident predicates through the MVCC commit path.  Commit
     * invalidations flow into the server's caches automatically.
     */
    void enableLiveUpdates(const std::string &wal_path,
                           std::uint64_t applied_lsn = 0);

    /** The live-update front end (null until enableLiveUpdates()). */
    crs::LiveStore *liveStore() { return live_.get(); }

    /** Is the predicate disk-resident (after compile())? */
    bool isLarge(const term::PredicateId &pred) const;

    /**
     * Clauses whose heads could match the goal, in source order.  For
     * small predicates this is the in-memory clause list; for large
     * ones it is a CLARE retrieval (mode chosen by the CRS unless
     * forced).
     */
    RetrievedClauses clausesFor(const term::TermArena &q_arena,
                                term::TermRef goal,
                                std::optional<crs::SearchMode> mode = {});

    /** The predicate store (after compile()). */
    const crs::PredicateStore &store() const;

    /** The retrieval server (after compile()). */
    crs::ClauseRetrievalServer &server();

  private:
    KbConfig config_;
    term::SymbolTable symbols_;
    term::TermReader reader_;
    term::Program program_;
    bool compiled_ = false;
    std::vector<term::PredicateId> largePreds_;
    std::unique_ptr<crs::PredicateStore> store_;
    std::unique_ptr<crs::ClauseRetrievalServer> server_;
    std::unique_ptr<crs::LiveStore> live_;
};

} // namespace clare::kb

#endif // CLARE_KB_KNOWLEDGE_BASE_HH
