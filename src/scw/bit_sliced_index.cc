#include "scw/bit_sliced_index.hh"

#include "support/crc32.hh"
#include "support/errors.hh"
#include "support/logging.hh"

namespace clare::scw {

namespace {

constexpr std::uint8_t kMagic[4] = {'C', 'L', 'S', 'X'};
constexpr std::uint32_t kSectionVersion = 1;

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &in, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
    return v;
}

/** 4 magic + 4 version + 8 count + 4 fields + 4 fieldBits + 8 words. */
constexpr std::size_t kHeaderBytes = 32;

} // namespace

void
BitSlicedIndex::loadAddresses(const SecondaryFile &index)
{
    const std::vector<std::uint8_t> &image = index.image();
    const std::size_t entry_bytes = index.entryBytes();
    clauseOffsets_.resize(count_);
    ordinals_.resize(count_);
    for (std::size_t i = 0; i < count_; ++i) {
        // The addresses are the trailing 8 bytes of each record (u32
        // clause offset then u32 ordinal, little endian).
        std::size_t at = (i + 1) * entry_bytes - 8;
        clauseOffsets_[i] = getU32(image, at);
        ordinals_[i] = getU32(image, at + 4);
    }
}

BitSlicedIndex
BitSlicedIndex::build(const CodewordGenerator &generator,
                      const SecondaryFile &index)
{
    BitSlicedIndex plane;
    plane.fields_ = generator.config().encodedArgs;
    plane.fieldBits_ = generator.config().fieldBits;
    plane.count_ = index.entryCount();
    plane.words_ = (plane.count_ + 63) / 64;
    plane.bits_.assign(
        (static_cast<std::size_t>(plane.fields_) * plane.fieldBits_ +
         plane.fields_) * plane.words_, 0);
    plane.loadAddresses(index);

    IndexEntry scratch;
    for (std::size_t i = 0; i < plane.count_; ++i) {
        index.entryInto(generator, i, scratch);
        const std::uint64_t entry_bit = std::uint64_t{1} << (i % 64);
        const std::size_t entry_word = i / 64;
        std::uint64_t *base = plane.bits_.data();
        for (std::uint32_t f = 0; f < plane.fields_; ++f) {
            const BitVec &code = scratch.signature.fields[f];
            for (std::uint32_t b = 0; b < plane.fieldBits_; ++b) {
                if (code.test(b))
                    base[(static_cast<std::size_t>(f) * plane.fieldBits_
                          + b) * plane.words_ + entry_word] |= entry_bit;
            }
            if (scratch.signature.masked(f))
                base[(static_cast<std::size_t>(plane.fields_) *
                          plane.fieldBits_ + f) * plane.words_ +
                     entry_word] |= entry_bit;
        }
    }
    return plane;
}

std::size_t
BitSlicedIndex::serializedBytes() const
{
    return kHeaderBytes + bits_.size() * 8 + 4;
}

void
BitSlicedIndex::serialize(std::vector<std::uint8_t> &out) const
{
    const std::size_t start = out.size();
    out.insert(out.end(), kMagic, kMagic + 4);
    putU32(out, kSectionVersion);
    putU64(out, count_);
    putU32(out, fields_);
    putU32(out, fieldBits_);
    putU64(out, words_);
    for (std::uint64_t w : bits_)
        putU64(out, w);
    // The section CRC covers the header and every plane word.  The
    // page framing around the whole .idx payload catches random
    // flips; this one catches *logical* damage — e.g. a section
    // spliced from a different store — that arrives with valid pages.
    putU32(out, support::crc32(out.data() + start, out.size() - start));
}

BitSlicedIndex
BitSlicedIndex::deserialize(const std::vector<std::uint8_t> &in,
                            std::size_t &offset,
                            const CodewordGenerator &generator,
                            const SecondaryFile &index,
                            const std::string &origin)
{
    auto corrupt = [&](const std::string &why) -> CorruptionError {
        return CorruptionError(origin, kNoFilePosition, kNoFilePosition,
                               "sliced plane section: " + why);
    };
    const std::size_t start = offset;
    if (in.size() - offset < kHeaderBytes)
        throw corrupt("truncated header (" +
                      std::to_string(in.size() - offset) + " bytes)");
    for (int i = 0; i < 4; ++i)
        if (in[offset + i] != kMagic[i])
            throw corrupt("bad magic");
    std::uint32_t version = getU32(in, offset + 4);
    if (version != kSectionVersion)
        throw corrupt("unsupported section version " +
                      std::to_string(version));

    BitSlicedIndex plane;
    plane.count_ = static_cast<std::size_t>(getU64(in, offset + 8));
    plane.fields_ = getU32(in, offset + 16);
    plane.fieldBits_ = getU32(in, offset + 20);
    plane.words_ = static_cast<std::size_t>(getU64(in, offset + 24));

    if (plane.count_ != index.entryCount())
        throw corrupt("holds " + std::to_string(plane.count_) +
                      " entries, secondary file holds " +
                      std::to_string(index.entryCount()));
    if (plane.fields_ != generator.config().encodedArgs ||
        plane.fieldBits_ != generator.config().fieldBits)
        throw corrupt("plane dimensions " +
                      std::to_string(plane.fields_) + "x" +
                      std::to_string(plane.fieldBits_) +
                      " disagree with the scw configuration");
    if (plane.words_ != (plane.count_ + 63) / 64)
        throw corrupt("word count " + std::to_string(plane.words_) +
                      " disagrees with the entry count");

    const std::size_t rows =
        static_cast<std::size_t>(plane.fields_) * plane.fieldBits_ +
        plane.fields_;
    const std::size_t body = kHeaderBytes + rows * plane.words_ * 8;
    if (in.size() - start < body + 4)
        throw corrupt("truncated plane words");
    std::uint32_t stored_crc = getU32(in, start + body);
    std::uint32_t got_crc = support::crc32(in.data() + start, body);
    if (stored_crc != got_crc)
        throw corrupt("checksum mismatch (stored " +
                      std::to_string(stored_crc) + ", computed " +
                      std::to_string(got_crc) + ")");

    plane.bits_.resize(rows * plane.words_);
    for (std::size_t w = 0; w < plane.bits_.size(); ++w)
        plane.bits_[w] = getU64(in, start + kHeaderBytes + w * 8);
    plane.loadAddresses(index);
    offset = start + body + 4;
    return plane;
}

bool
BitSlicedIndex::operator==(const BitSlicedIndex &other) const
{
    return fields_ == other.fields_ && fieldBits_ == other.fieldBits_ &&
        count_ == other.count_ && words_ == other.words_ &&
        bits_ == other.bits_ &&
        clauseOffsets_ == other.clauseOffsets_ &&
        ordinals_ == other.ordinals_;
}

} // namespace clare::scw
