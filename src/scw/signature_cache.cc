#include "scw/signature_cache.hh"

namespace clare::scw {

SignatureCache::SignatureCache(std::size_t capacity) : cache_(capacity)
{
}

std::optional<Signature>
SignatureCache::find(const std::string &key, const obs::Observer &obs)
{
    std::optional<Signature> found;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (Signature *sig = cache_.get(key))
            found = *sig;
    }
    if (obs.metrics != nullptr) {
        if (found)
            ++obs.metrics->counter("scw.cache.sig_hits",
                                   "query signatures served from the "
                                   "encode memo");
        else
            ++obs.metrics->counter("scw.cache.sig_misses",
                                   "query signatures encoded from "
                                   "scratch");
    }
    return found;
}

void
SignatureCache::put(const std::string &key, const Signature &signature)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.put(key, signature);
}

std::size_t
SignatureCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

void
SignatureCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

} // namespace clare::scw
