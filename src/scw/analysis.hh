/**
 * @file
 * Analytic false-drop model for the SCW+MB scheme.
 *
 * The paper's companion work (Wong, TR 88/6; Ramamohanarao & Shepherd)
 * derives expected false-drop rates from codeword parameters.  The
 * standard superimposed-coding analysis:
 *
 *   - a field of w bits receives n tokens, each setting k (not
 *     necessarily distinct) hashed bits, so a given bit stays clear
 *     with probability (1 - 1/w)^(n k) and the expected fill factor is
 *     p = 1 - (1 - 1/w)^(n k);
 *   - a query token's k bits are all covered by an *unrelated* clause
 *     field with probability ~ p^k, and a query field carrying q
 *     tokens false-matches with probability ~ p^(q k);
 *   - a clause false-drops when every constrained field false-matches:
 *     the product over the query's ground fields (masked clause fields
 *     match trivially and contribute factor 1).
 *
 * These estimates ignore bit-overlap correlations, which is the
 * textbook approximation; the false-drop bench compares them against
 * measured rates.
 */

#ifndef CLARE_SCW_ANALYSIS_HH
#define CLARE_SCW_ANALYSIS_HH

#include <cstdint>

#include "scw/codeword.hh"

namespace clare::scw {

/** Expected fill factor of a w-bit field after n tokens of k bits. */
double expectedFillFactor(std::uint32_t field_bits,
                          std::uint32_t bits_per_term,
                          double tokens_per_field);

/**
 * Probability that one *unrelated* clause field false-matches a query
 * field carrying @p query_tokens tokens.
 */
double fieldFalseMatchProbability(const ScwConfig &config,
                                  double clause_tokens_per_field,
                                  double query_tokens_per_field);

/**
 * Expected whole-signature false-drop probability for a query with
 * @p constrained_fields ground fields, against clauses whose fields
 * carry @p clause_tokens_per_field tokens on average and are masked
 * (variable-bearing) with probability @p clause_mask_probability.
 */
double falseDropProbability(const ScwConfig &config,
                            std::uint32_t constrained_fields,
                            double clause_tokens_per_field,
                            double query_tokens_per_field,
                            double clause_mask_probability = 0.0);

/** Average token count per encoded argument of a clause head. */
double measuredTokensPerField(const term::TermArena &arena,
                              term::TermRef head,
                              const ScwConfig &config);

} // namespace clare::scw

#endif // CLARE_SCW_ANALYSIS_HH
