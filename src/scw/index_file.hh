/**
 * @file
 * The secondary (index) file: fixed-size records associating each
 * clause's codeword signature with its address in the compiled clause
 * file.  FS1 scans this file — much smaller than the clause file —
 * and emits the addresses of clauses whose codewords match the query.
 *
 * Record layout: signature wire form, then u32 clause offset, then
 * u32 clause ordinal.
 */

#ifndef CLARE_SCW_INDEX_FILE_HH
#define CLARE_SCW_INDEX_FILE_HH

#include <cstdint>
#include <vector>

#include "scw/codeword.hh"
#include "storage/clause_file.hh"

namespace clare::scw {

/** One decoded index entry. */
struct IndexEntry
{
    Signature signature;
    std::uint32_t clauseOffset = 0;
    std::uint32_t ordinal = 0;
};

/** An immutable secondary file image plus decode helpers. */
class SecondaryFile
{
  public:
    SecondaryFile() = default;

    /**
     * Build the secondary file for a compiled clause file, parsing
     * each record's source text is not needed: signatures are produced
     * from the already-parsed clauses by the caller, so this overload
     * takes them directly.
     */
    static SecondaryFile build(const CodewordGenerator &generator,
                               const std::vector<Signature> &signatures,
                               const storage::ClauseFile &clauses);

    /** Reconstruct from a persisted image (store loading path). */
    static SecondaryFile fromImage(std::vector<std::uint8_t> image,
                                   std::size_t entry_count,
                                   std::size_t entry_bytes);

    const std::vector<std::uint8_t> &image() const { return image_; }
    std::size_t entryCount() const { return count_; }
    std::size_t entryBytes() const { return entryBytes_; }

    /** Decode entry @p i (requires the generator that built it). */
    IndexEntry entry(const CodewordGenerator &generator,
                     std::size_t i) const;

  private:
    std::vector<std::uint8_t> image_;
    std::size_t count_ = 0;
    std::size_t entryBytes_ = 0;
};

} // namespace clare::scw

#endif // CLARE_SCW_INDEX_FILE_HH
