/**
 * @file
 * The secondary (index) file: fixed-size records associating each
 * clause's codeword signature with its address in the compiled clause
 * file.  FS1 scans this file — much smaller than the clause file —
 * and emits the addresses of clauses whose codewords match the query.
 *
 * Record layout: signature wire form, then u32 clause offset, then
 * u32 clause ordinal.
 */

#ifndef CLARE_SCW_INDEX_FILE_HH
#define CLARE_SCW_INDEX_FILE_HH

#include <cstdint>
#include <vector>

#include "scw/codeword.hh"
#include "storage/clause_file.hh"

namespace clare::scw {

/** One decoded index entry. */
struct IndexEntry
{
    Signature signature;
    std::uint32_t clauseOffset = 0;
    std::uint32_t ordinal = 0;
};

/**
 * A contiguous half-open run of index entries — the unit of work one
 * FS1 scan worker takes.  Shards of one file are contiguous and
 * ordered, so concatenating per-shard hit lists in shard order
 * reproduces the sequential scan order exactly.
 */
struct EntryRange
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
};

/** An immutable secondary file image plus decode helpers. */
class SecondaryFile
{
  public:
    SecondaryFile() = default;

    /**
     * Build the secondary file for a compiled clause file, parsing
     * each record's source text is not needed: signatures are produced
     * from the already-parsed clauses by the caller, so this overload
     * takes them directly.
     */
    static SecondaryFile build(const CodewordGenerator &generator,
                               const std::vector<Signature> &signatures,
                               const storage::ClauseFile &clauses);

    /** Reconstruct from a persisted image (store loading path). */
    static SecondaryFile fromImage(std::vector<std::uint8_t> image,
                                   std::size_t entry_count,
                                   std::size_t entry_bytes);

    const std::vector<std::uint8_t> &image() const { return image_; }
    std::size_t entryCount() const { return count_; }
    std::size_t entryBytes() const { return entryBytes_; }

    /** Decode entry @p i (requires the generator that built it). */
    IndexEntry entry(const CodewordGenerator &generator,
                     std::size_t i) const;

    /**
     * Decode entry @p i into @p scratch, reusing its signature's field
     * vectors — the allocation-free variant the streaming scan loops
     * use (one scratch entry hoisted out of the loop).
     */
    void entryInto(const CodewordGenerator &generator, std::size_t i,
                   IndexEntry &scratch) const;

    /**
     * Partition the file into at most @p shards contiguous ranges of
     * near-equal size (never more ranges than entries; an empty file
     * yields no ranges).
     */
    std::vector<EntryRange> shardRanges(std::size_t shards) const;

    /** Bytes occupied by the entries of @p range. */
    std::size_t rangeBytes(const EntryRange &range) const
    {
        return range.size() * entryBytes_;
    }

  private:
    std::vector<std::uint8_t> image_;
    std::size_t count_ = 0;
    std::size_t entryBytes_ = 0;
};

} // namespace clare::scw

#endif // CLARE_SCW_INDEX_FILE_HH
