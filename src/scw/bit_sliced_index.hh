/**
 * @file
 * Transposed (bit-sliced) layout of a secondary file — the software
 * analogue of widening the FS1 match plane.
 *
 * The row-major SecondaryFile stores one signature per entry; deciding
 * an entry means decoding all of its fields.  This index stores the
 * *transpose*: for every field f and every code-bit position b, one
 * bitmap over entries whose bit (f, b) is set, plus one mask-bit
 * bitmap per field.  The SCW+MB rule for a query then needs only the
 * planes whose query bit is actually set —
 *
 *     survivors &= (AND over b in Q_f of plane[f][b])  |  mask[f]
 *
 * — evaluated 64 entries per 64-bit word operation, and one pass over
 * the planes can answer many queries at once (multi-query batch
 * scanning).  The plane is persisted as index format v3: the framed
 * .idx payload carries the entry records followed by a "CLSX" section
 * holding the plane words under their own CRC.
 *
 * Entry addresses (clause offset + ordinal) are kept as flat arrays so
 * survivor extraction never touches the row-major image.
 */

#ifndef CLARE_SCW_BIT_SLICED_INDEX_HH
#define CLARE_SCW_BIT_SLICED_INDEX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "scw/index_file.hh"

namespace clare::scw {

/** The transposed plane of one predicate's secondary file. */
class BitSlicedIndex
{
  public:
    BitSlicedIndex() = default;

    /** Transpose a secondary file (one-time cost per predicate). */
    static BitSlicedIndex build(const CodewordGenerator &generator,
                                const SecondaryFile &index);

    std::size_t entryCount() const { return count_; }
    std::uint32_t fields() const { return fields_; }
    std::uint32_t fieldBits() const { return fieldBits_; }
    /** 64-bit words per plane row (= ceil(entryCount / 64)). */
    std::size_t planeWords() const { return words_; }

    /** Row of entry-bitmap words for code bit @p bit of @p field. */
    const std::uint64_t *codePlane(std::uint32_t field,
                                   std::uint32_t bit) const
    {
        return bits_.data() +
            (static_cast<std::size_t>(field) * fieldBits_ + bit) *
                words_;
    }

    /** Row of mask-bit words for @p field. */
    const std::uint64_t *maskPlane(std::uint32_t field) const
    {
        return bits_.data() +
            (static_cast<std::size_t>(fields_) * fieldBits_ + field) *
                words_;
    }

    std::uint32_t clauseOffset(std::size_t entry) const
    {
        return clauseOffsets_[entry];
    }

    std::uint32_t ordinal(std::size_t entry) const
    {
        return ordinals_[entry];
    }

    /**
     * Append the persisted plane section ("CLSX" magic, dimensions,
     * plane words, section CRC) to @p out.  Entry addresses are not
     * serialized — they are re-derived from the entry records on load.
     */
    void serialize(std::vector<std::uint8_t> &out) const;

    /** Bytes serialize() appends for these dimensions. */
    std::size_t serializedBytes() const;

    /**
     * Parse a CLSX section at @p offset of @p in (advanced past it).
     * The dimensions must agree with @p generator and @p index — a
     * plane that disagrees with the entries it was transposed from
     * would silently return wrong survivors.
     *
     * @throws CorruptionError naming @p origin on a bad magic,
     *         dimension mismatch, truncation, or section-CRC failure
     */
    static BitSlicedIndex deserialize(const std::vector<std::uint8_t> &in,
                                      std::size_t &offset,
                                      const CodewordGenerator &generator,
                                      const SecondaryFile &index,
                                      const std::string &origin);

    /** Plane-for-plane equality (tests: round-trip fidelity). */
    bool operator==(const BitSlicedIndex &other) const;

  private:
    std::uint32_t fields_ = 0;
    std::uint32_t fieldBits_ = 0;
    std::size_t count_ = 0;
    std::size_t words_ = 0;
    /**
     * All rows contiguously: fields_ * fieldBits_ code-plane rows
     * (field-major), then fields_ mask-plane rows, each words_ long.
     * Bits at positions >= count_ are zero in every row.
     */
    std::vector<std::uint64_t> bits_;
    std::vector<std::uint32_t> clauseOffsets_;
    std::vector<std::uint32_t> ordinals_;

    /** Re-derive the address arrays from the entry records. */
    void loadAddresses(const SecondaryFile &index);
};

} // namespace clare::scw

#endif // CLARE_SCW_BIT_SLICED_INDEX_HH
