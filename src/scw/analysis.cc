#include "scw/analysis.hh"

#include <cmath>

#include "support/logging.hh"

namespace clare::scw {

double
expectedFillFactor(std::uint32_t field_bits, std::uint32_t bits_per_term,
                   double tokens_per_field)
{
    clare_assert(field_bits > 0, "field width must be positive");
    double clear = std::pow(1.0 - 1.0 / field_bits,
                            bits_per_term * tokens_per_field);
    return 1.0 - clear;
}

double
fieldFalseMatchProbability(const ScwConfig &config,
                           double clause_tokens_per_field,
                           double query_tokens_per_field)
{
    double fill = expectedFillFactor(config.fieldBits,
                                     config.bitsPerTerm,
                                     clause_tokens_per_field);
    // Every one of the query's ~q*k hashed bits must land on a set
    // bit of the unrelated clause field.
    return std::pow(fill,
                    config.bitsPerTerm * query_tokens_per_field);
}

double
falseDropProbability(const ScwConfig &config,
                     std::uint32_t constrained_fields,
                     double clause_tokens_per_field,
                     double query_tokens_per_field,
                     double clause_mask_probability)
{
    double per_field = fieldFalseMatchProbability(
        config, clause_tokens_per_field, query_tokens_per_field);
    // A masked clause field matches regardless.
    double effective = clause_mask_probability +
        (1.0 - clause_mask_probability) * per_field;
    return std::pow(effective, constrained_fields);
}

namespace {

double
countTokens(const term::TermArena &arena, term::TermRef t)
{
    switch (arena.kind(t)) {
      case term::TermKind::Atom:
      case term::TermKind::Int:
      case term::TermKind::Float:
        return 1.0;
      case term::TermKind::Var:
        return 0.0;
      case term::TermKind::Struct:
      case term::TermKind::List: {
        double n = 1.0;     // the functor / list marker
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            n += countTokens(arena, arena.arg(t, i));
        return n;
      }
    }
    clare_panic("unreachable term kind");
}

} // namespace

double
measuredTokensPerField(const term::TermArena &arena, term::TermRef head,
                       const ScwConfig &config)
{
    if (arena.kind(head) != term::TermKind::Struct)
        return 0.0;
    std::uint32_t n = std::min(arena.arity(head), config.encodedArgs);
    if (n == 0)
        return 0.0;
    double total = 0.0;
    for (std::uint32_t i = 0; i < n; ++i)
        total += countTokens(arena, arena.arg(head, i));
    return total / n;
}

} // namespace clare::scw
