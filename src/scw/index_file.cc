#include "scw/index_file.hh"

#include <algorithm>

#include "support/logging.hh"

namespace clare::scw {

SecondaryFile
SecondaryFile::build(const CodewordGenerator &generator,
                     const std::vector<Signature> &signatures,
                     const storage::ClauseFile &clauses)
{
    clare_assert(signatures.size() == clauses.clauseCount(),
                 "signature count %zu != clause count %zu",
                 signatures.size(), clauses.clauseCount());
    SecondaryFile file;
    file.entryBytes_ = generator.signatureBytes() + 8;
    file.count_ = signatures.size();
    file.image_.reserve(file.entryBytes_ * file.count_);
    for (std::size_t i = 0; i < signatures.size(); ++i) {
        generator.serialize(signatures[i], file.image_);
        std::uint32_t off = clauses.record(i).offset;
        std::uint32_t ord = clauses.record(i).ordinal;
        for (int b = 0; b < 4; ++b)
            file.image_.push_back(
                static_cast<std::uint8_t>(off >> (8 * b)));
        for (int b = 0; b < 4; ++b)
            file.image_.push_back(
                static_cast<std::uint8_t>(ord >> (8 * b)));
    }
    return file;
}

SecondaryFile
SecondaryFile::fromImage(std::vector<std::uint8_t> image,
                         std::size_t entry_count,
                         std::size_t entry_bytes)
{
    clare_assert(image.size() == entry_count * entry_bytes,
                 "index image of %zu bytes does not hold %zu entries "
                 "of %zu bytes", image.size(), entry_count, entry_bytes);
    SecondaryFile file;
    file.image_ = std::move(image);
    file.count_ = entry_count;
    file.entryBytes_ = entry_bytes;
    return file;
}

std::vector<EntryRange>
SecondaryFile::shardRanges(std::size_t shards) const
{
    std::vector<EntryRange> ranges;
    if (count_ == 0 || shards == 0)
        return ranges;
    shards = std::min(shards, count_);
    ranges.reserve(shards);
    std::size_t base = count_ / shards;
    std::size_t extra = count_ % shards;    // first `extra` shards get +1
    std::size_t at = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        std::size_t len = base + (s < extra ? 1 : 0);
        ranges.push_back(EntryRange{at, at + len});
        at += len;
    }
    return ranges;
}

IndexEntry
SecondaryFile::entry(const CodewordGenerator &generator,
                     std::size_t i) const
{
    IndexEntry e;
    entryInto(generator, i, e);
    return e;
}

void
SecondaryFile::entryInto(const CodewordGenerator &generator,
                         std::size_t i, IndexEntry &scratch) const
{
    clare_assert(i < count_, "index entry %zu out of range", i);
    std::size_t at = i * entryBytes_;
    generator.deserializeInto(image_, at, scratch.signature);
    scratch.clauseOffset = 0;
    scratch.ordinal = 0;
    for (int b = 0; b < 4; ++b)
        scratch.clauseOffset |=
            static_cast<std::uint32_t>(image_[at + b]) << (8 * b);
    at += 4;
    for (int b = 0; b < 4; ++b)
        scratch.ordinal |=
            static_cast<std::uint32_t>(image_[at + b]) << (8 * b);
}

} // namespace clare::scw
