/**
 * @file
 * L2a of the retrieval cache hierarchy: a memo of encoded query
 * signatures, keyed by the goal's canonical (renaming-invariant) key.
 *
 * Encoding a goal hashes every token of every argument; a repeated
 * goal — or a renamed variant of one, since variables contribute only
 * mask bits — re-derives exactly the same Signature.  The memo makes
 * that re-derivation a lookup.  It is shared by concurrent FS1 scans,
 * so all access is mutex-guarded; results are unaffected by hit/miss
 * outcome (the memoized signature equals the recomputed one), only
 * wall-clock work is saved.
 */

#ifndef CLARE_SCW_SIGNATURE_CACHE_HH
#define CLARE_SCW_SIGNATURE_CACHE_HH

#include <mutex>
#include <optional>
#include <string>

#include "scw/codeword.hh"
#include "support/lru.hh"
#include "support/obs.hh"

namespace clare::scw {

/** Canonical-goal-key → encoded Signature memo (LRU-bounded). */
class SignatureCache
{
  public:
    explicit SignatureCache(std::size_t capacity);

    /**
     * Look up a memoized signature; counts scw.cache.sig_hits /
     * scw.cache.sig_misses into @p obs when provided.
     */
    std::optional<Signature> find(const std::string &key,
                                  const obs::Observer &obs = {});

    /** Memoize an encoded signature. */
    void put(const std::string &key, const Signature &signature);

    std::size_t size() const;

    void clear();

  private:
    mutable std::mutex mutex_;
    support::LruCache<std::string, Signature> cache_;
};

} // namespace clare::scw

#endif // CLARE_SCW_SIGNATURE_CACHE_HH
