#include "scw/codeword.hh"

#include "support/logging.hh"

namespace clare::scw {

using term::TermArena;
using term::TermKind;
using term::TermRef;

namespace {

/** splitmix64 finalizer used as the token hash. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Distinct token spaces for the different term constituents. */
enum class TokenKind : std::uint64_t
{
    Atom = 1,
    Int = 2,
    Float = 3,
    Functor = 4,
    ListMark = 5,
};

std::uint64_t
token(TokenKind kind, std::uint64_t value)
{
    // Mix the raw value before folding the kind tag in.  XORing the
    // tag into the top byte of the *raw* value let any value with high
    // bits set (a large integer, say) alias a token of another kind —
    // e.g. Int 7<<56 collided with the ListMark token — inflating
    // false drops.  After mixing, a cross-kind collision requires a
    // full 64-bit hash collision instead of eight crafted bits.
    // Changing this function changes every stored signature, so it is
    // coupled to kIndexFormatVersion.
    return mix(mix(value) ^ (static_cast<std::uint64_t>(kind) << 56) ^
               static_cast<std::uint64_t>(kind));
}

bool
containsVariable(const TermArena &arena, TermRef t)
{
    switch (arena.kind(t)) {
      case TermKind::Var:
        return true;
      case TermKind::Struct:
      case TermKind::List:
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            if (containsVariable(arena, arena.arg(t, i)))
                return true;
        if (arena.kind(t) == TermKind::List &&
            arena.listTail(t) != term::kNoTerm) {
            return true;    // unterminated list: the tail is a var
        }
        return false;
      default:
        return false;
    }
}

} // namespace

CodewordGenerator::CodewordGenerator(ScwConfig config)
    : config_(config)
{
    clare_assert(config_.fieldBits >= 2, "fieldBits must be >= 2");
    clare_assert(config_.bitsPerTerm >= 1, "bitsPerTerm must be >= 1");
    clare_assert(config_.encodedArgs >= 1 && config_.encodedArgs <= 32,
                 "encodedArgs must be in 1..32");
}

void
CodewordGenerator::hashToken(std::uint64_t tok, BitVec &field) const
{
    for (std::uint32_t j = 0; j < config_.bitsPerTerm; ++j) {
        std::uint64_t h = mix(tok ^ mix(config_.seed + j));
        field.set(h % config_.fieldBits);
    }
}

void
CodewordGenerator::encodeTermInto(const TermArena &arena, TermRef t,
                                  BitVec &field) const
{
    switch (arena.kind(t)) {
      case TermKind::Atom:
        hashToken(token(TokenKind::Atom, arena.atomSymbol(t)), field);
        return;
      case TermKind::Int:
        hashToken(token(TokenKind::Int,
                        static_cast<std::uint64_t>(arena.intValue(t))),
                  field);
        return;
      case TermKind::Float:
        hashToken(token(TokenKind::Float, arena.floatId(t)), field);
        return;
      case TermKind::Var:
        // Variables are invisible to the superimposed code.
        return;
      case TermKind::Struct: {
        std::uint64_t f = (static_cast<std::uint64_t>(arena.functor(t))
                           << 8) | arena.arity(t);
        hashToken(token(TokenKind::Functor, f), field);
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            encodeTermInto(arena, arena.arg(t, i), field);
        return;
      }
      case TermKind::List: {
        hashToken(token(TokenKind::ListMark, 0), field);
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            encodeTermInto(arena, arena.arg(t, i), field);
        return;
      }
    }
    clare_panic("unreachable term kind");
}

Signature
CodewordGenerator::encode(const TermArena &arena,
                          TermRef head_or_goal) const
{
    Signature sig;
    std::uint32_t arity = 0;
    if (arena.kind(head_or_goal) == TermKind::Struct)
        arity = arena.arity(head_or_goal);
    std::uint32_t n = std::min(arity, config_.encodedArgs);

    sig.fields.reserve(config_.encodedArgs);
    for (std::uint32_t f = 0; f < config_.encodedArgs; ++f)
        sig.fields.emplace_back(config_.fieldBits);

    for (std::uint32_t f = 0; f < n; ++f) {
        TermRef arg = arena.arg(head_or_goal, f);
        // An argument containing *any* variable sets the field's mask
        // bit: a clause-side variable can be instantiated to anything,
        // so the field must match everything or the index would
        // falsely dismiss unifiable clauses.  (For whole-argument
        // variables nothing is encoded at all; for var-bearing
        // structures the ground parts are still superimposed, which
        // keeps the query side selective when possible.)
        if (containsVariable(arena, arg))
            sig.maskBits |= (1u << f);
        if (arena.kind(arg) != TermKind::Var)
            encodeTermInto(arena, arg, sig.fields[f]);
    }
    // Arguments beyond the hardware limit are simply not encoded
    // (truncation): their fields stay empty and unmasked, which makes
    // them unconstraining on the query side and unconstrained on the
    // clause side.
    return sig;
}

bool
CodewordGenerator::matches(const Signature &query,
                           const Signature &clause) const
{
    clare_assert(query.fields.size() == clause.fields.size(),
                 "signature layout mismatch");
    for (std::uint32_t f = 0; f < query.fields.size(); ++f) {
        // A masked clause field (the clause argument contains a
        // variable) matches anything.  A query field needs no mask
        // check: a fully-variable query argument encodes no bits and
        // the empty code is a subset of every clause code, while the
        // ground tokens of a partially-ground query argument genuinely
        // must appear in an unmasked clause field.
        if (clause.masked(f))
            continue;
        if (!query.fields[f].subsetOf(clause.fields[f]))
            return false;
    }
    return true;
}

std::size_t
CodewordGenerator::signatureBytes() const
{
    return config_.encodedArgs * BitVec::serializedBytes(config_.fieldBits)
        + 4;
}

void
CodewordGenerator::serialize(const Signature &sig,
                             std::vector<std::uint8_t> &out) const
{
    clare_assert(sig.fields.size() == config_.encodedArgs,
                 "serializing a signature of the wrong layout");
    for (const auto &field : sig.fields)
        field.serialize(out);
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(sig.maskBits >> (8 * i)));
}

Signature
CodewordGenerator::deserialize(const std::vector<std::uint8_t> &in,
                               std::size_t &offset) const
{
    Signature sig;
    deserializeInto(in, offset, sig);
    return sig;
}

void
CodewordGenerator::deserializeInto(const std::vector<std::uint8_t> &in,
                                   std::size_t &offset,
                                   Signature &sig) const
{
    sig.fields.resize(config_.encodedArgs);
    for (std::uint32_t f = 0; f < config_.encodedArgs; ++f)
        sig.fields[f].deserializeInto(in, offset, config_.fieldBits);
    clare_assert(offset + 4 <= in.size(), "signature mask truncated");
    sig.maskBits = 0;
    for (int i = 0; i < 4; ++i)
        sig.maskBits |= static_cast<std::uint32_t>(in[offset++]) << (8 * i);
}

} // namespace clare::scw
