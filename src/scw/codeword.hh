/**
 * @file
 * Superimposed codewords plus mask bits (SCW+MB) — the indexing scheme
 * scanned by the first stage filter (section 2.1).
 *
 * Each of the first `encodedArgs` (hardware limit: 12) arguments of a
 * clause head or query owns a field of `fieldBits` bits.  A ground
 * argument superimposes `bitsPerTerm` hashed bits per token (atom,
 * integer, float, functor) recursively over its content.  Variables
 * contribute no bits; an argument that *is* a variable sets the
 * field's mask bit, meaning "matches anything".
 *
 * The match rule for a query signature against a clause signature is,
 * per field: pass if the query's mask bit is set (unconstrained), or
 * the clause's mask bit is set (clause matches anything), or the
 * query's field code is a subset of the clause's.  Arguments beyond
 * `encodedArgs` are not represented at all.
 *
 * This reproduces the paper's three false-drop sources exactly:
 * non-unique encoding (hash collisions / superimposition), truncation
 * at 12 arguments, and shared variables (which are simply invisible to
 * the code — the married_couple(S,S) query matches every clause).
 */

#ifndef CLARE_SCW_CODEWORD_HH
#define CLARE_SCW_CODEWORD_HH

#include <cstdint>
#include <vector>

#include "support/bitvec.hh"
#include "term/term.hh"

namespace clare::scw {

/**
 * Version of the signature encoding (token hashing + wire layout).
 * Bumped whenever stored signatures change meaning so persisted
 * secondary files from older builds are rejected and regenerated
 * rather than silently misinterpreted.
 *
 *  1 — original scheme; token kinds XORed into the raw value's top
 *      byte (aliased across kinds for values with high bits set)
 *  2 — token values mixed before the kind tag is combined
 *  3 — same token hashing and entry wire layout as v2; the persisted
 *      .idx payload additionally carries the transposed (bit-sliced)
 *      plane section after the entry records
 */
constexpr int kIndexFormatVersion = 3;

/**
 * Oldest index format whose entries this build decodes identically.
 * v2 and v3 share the token hashing and entry layout — a v3 loader
 * reads a v2 store and simply rebuilds the sliced plane in memory.
 */
constexpr int kIndexFormatVersionCompat = 2;

/** Tunable parameters of the SCW+MB scheme. */
struct ScwConfig
{
    std::uint32_t fieldBits = 16;   ///< bits per argument field
    std::uint32_t bitsPerTerm = 2;  ///< hash bits set per token
    std::uint32_t encodedArgs = 12; ///< hardware encoding limit
    std::uint64_t seed = 0x5ca1ab1e5ca1ab1eULL;
};

/** A signature: per-argument field codes plus variable mask bits. */
struct Signature
{
    std::vector<BitVec> fields;
    std::uint32_t maskBits = 0;     ///< bit f set = argument f is a var

    bool masked(std::uint32_t field) const
    {
        return (maskBits >> field) & 1;
    }
};

/** Generates signatures and evaluates the SCW+MB match rule. */
class CodewordGenerator
{
  public:
    explicit CodewordGenerator(ScwConfig config = {});

    const ScwConfig &config() const { return config_; }

    /**
     * Encode the arguments of a clause head or query goal (an atom or
     * structure term).
     */
    Signature encode(const term::TermArena &arena,
                     term::TermRef head_or_goal) const;

    /** SCW+MB match rule: could the clause satisfy the query? */
    bool matches(const Signature &query, const Signature &clause) const;

    /** Serialized size of one signature in bytes. */
    std::size_t signatureBytes() const;

    /** Append a signature's wire form to a byte buffer. */
    void serialize(const Signature &sig,
                   std::vector<std::uint8_t> &out) const;

    /** Decode a signature at @p offset, advancing it. */
    Signature deserialize(const std::vector<std::uint8_t> &in,
                          std::size_t &offset) const;

    /**
     * In-place decode into @p sig, reusing its field vectors so a
     * scan loop decoding entries into one scratch signature performs
     * no per-entry allocation.
     */
    void deserializeInto(const std::vector<std::uint8_t> &in,
                         std::size_t &offset, Signature &sig) const;

  private:
    ScwConfig config_;

    void hashToken(std::uint64_t token, BitVec &field) const;
    void encodeTermInto(const term::TermArena &arena, term::TermRef t,
                        BitVec &field) const;
};

} // namespace clare::scw

#endif // CLARE_SCW_CODEWORD_HH
