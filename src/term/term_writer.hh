/**
 * @file
 * Canonical text rendering of terms and clauses (Edinburgh syntax).
 */

#ifndef CLARE_TERM_TERM_WRITER_HH
#define CLARE_TERM_TERM_WRITER_HH

#include <string>

#include "term/symbol_table.hh"
#include "term/term.hh"

namespace clare::term {

class Clause;

/**
 * Renders terms against a symbol table.  Atoms that are not valid
 * unquoted identifiers are single-quoted; variables print their source
 * name when one exists, otherwise "_Gn".
 */
class TermWriter
{
  public:
    explicit TermWriter(const SymbolTable &symbols) : symbols_(symbols) {}

    /** Render one term. */
    std::string write(const TermArena &arena, TermRef t) const;

    /** Render a clause, "head." or "head :- g1, g2.". */
    std::string writeClause(const Clause &clause) const;

  private:
    const SymbolTable &symbols_;

    void writeTerm(const TermArena &arena, TermRef t,
                   std::string &out) const;
    void writeAtomText(const std::string &name, std::string &out) const;
    int termPrecedence(const TermArena &arena, TermRef t) const;
    void writeOperand(const TermArena &arena, TermRef t, int max_prec,
                      bool infix_context, std::string &out) const;
};

} // namespace clare::term

#endif // CLARE_TERM_TERM_WRITER_HH
