/**
 * @file
 * Clauses, predicates and programs.
 *
 * A Clause owns its term arena: every clause is independently
 * relocatable and can be imported into a runtime arena (standardized
 * apart) during resolution.  A Program groups clauses by predicate
 * (functor/arity) while preserving the *global, user-specified clause
 * order* — a property the paper's integrated knowledge base requires
 * and coupled Prolog/DB systems lose.
 */

#ifndef CLARE_TERM_CLAUSE_HH
#define CLARE_TERM_CLAUSE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "term/symbol_table.hh"
#include "term/term.hh"

namespace clare::term {

/** Identity of a predicate: functor symbol plus arity. */
struct PredicateId
{
    SymbolId functor = kNoSymbol;
    std::uint32_t arity = 0;

    auto operator<=>(const PredicateId &) const = default;
};

/** A clause: a head and zero or more body goals, over one arena. */
class Clause
{
  public:
    Clause() = default;

    /** Construct from an arena (moved in), head, and body goals. */
    Clause(TermArena arena, TermRef head, std::vector<TermRef> body);

    const TermArena &arena() const { return arena_; }
    TermRef head() const { return head_; }
    const std::vector<TermRef> &body() const { return body_; }

    /** True for a clause with no body goals. */
    bool isFact() const { return body_.empty(); }

    /**
     * True for a ground fact: no body and no variables anywhere in the
     * head.  Ground facts are what a coupled system would push to its
     * extensional database.
     */
    bool isGroundFact() const;

    /** Number of distinct variables in the clause. */
    VarId varCount() const { return arena_.varCeiling(); }

    /** The predicate this clause belongs to. */
    PredicateId predicate() const;

  private:
    TermArena arena_;
    TermRef head_ = kNoTerm;
    std::vector<TermRef> body_;

    static bool groundTerm(const TermArena &arena, TermRef t);
};

/**
 * An ordered set of clauses.  Clause order is the order of addition
 * (source order); per-predicate views preserve that relative order.
 */
class Program
{
  public:
    /** Append a clause, returning its global ordinal. */
    std::size_t add(Clause clause);

    /**
     * Add a clause at the *front* of its predicate's clause list
     * (asserta).  The clause still gets the next global ordinal; only
     * the per-predicate order puts it first.
     */
    std::size_t addFront(Clause clause);

    /**
     * Remove a clause from its predicate's list (retract).  The
     * stored clause data remains addressable by ordinal; it is simply
     * no longer part of the predicate.
     */
    void remove(std::size_t ordinal);

    std::size_t size() const { return clauses_.size(); }
    const Clause &clause(std::size_t i) const;

    /** Global ordinals of a predicate's clauses, in source order. */
    const std::vector<std::size_t> &
    clausesOf(const PredicateId &pred) const;

    /** All predicates, in first-appearance order. */
    const std::vector<PredicateId> &predicates() const { return preds_; }

    /**
     * True if the predicate mixes ground facts with rules or non-ground
     * facts — the "mixed relation" case coupled systems disallow.
     */
    bool isMixedRelation(const PredicateId &pred) const;

  private:
    std::vector<Clause> clauses_;
    std::vector<PredicateId> preds_;
    std::map<PredicateId, std::vector<std::size_t>> byPred_;

    static const std::vector<std::size_t> kEmpty;
};

} // namespace clare::term

#endif // CLARE_TERM_CLAUSE_HH
