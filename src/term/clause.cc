#include "term/clause.hh"

#include <algorithm>

#include "support/logging.hh"

namespace clare::term {

const std::vector<std::size_t> Program::kEmpty;

Clause::Clause(TermArena arena, TermRef head, std::vector<TermRef> body)
    : arena_(std::move(arena)), head_(head), body_(std::move(body))
{
    TermKind k = arena_.kind(head_);
    if (k != TermKind::Atom && k != TermKind::Struct)
        clare_fatal("clause head must be an atom or structure, got %s",
                    termKindName(k));
}

bool
Clause::groundTerm(const TermArena &arena, TermRef t)
{
    switch (arena.kind(t)) {
      case TermKind::Atom:
      case TermKind::Int:
      case TermKind::Float:
        return true;
      case TermKind::Var:
        return false;
      case TermKind::Struct:
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            if (!groundTerm(arena, arena.arg(t, i)))
                return false;
        return true;
      case TermKind::List:
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            if (!groundTerm(arena, arena.arg(t, i)))
                return false;
        return arena.isTerminatedList(t);
    }
    clare_panic("unreachable term kind");
}

bool
Clause::isGroundFact() const
{
    return isFact() && groundTerm(arena_, head_);
}

PredicateId
Clause::predicate() const
{
    if (arena_.kind(head_) == TermKind::Atom)
        return PredicateId{arena_.atomSymbol(head_), 0};
    return PredicateId{arena_.functor(head_), arena_.arity(head_)};
}

std::size_t
Program::add(Clause clause)
{
    PredicateId pred = clause.predicate();
    std::size_t ordinal = clauses_.size();
    clauses_.push_back(std::move(clause));
    auto it = byPred_.find(pred);
    if (it == byPred_.end()) {
        preds_.push_back(pred);
        it = byPred_.emplace(pred, std::vector<std::size_t>{}).first;
    }
    it->second.push_back(ordinal);
    return ordinal;
}

std::size_t
Program::addFront(Clause clause)
{
    PredicateId pred = clause.predicate();
    std::size_t ordinal = clauses_.size();
    clauses_.push_back(std::move(clause));
    auto it = byPred_.find(pred);
    if (it == byPred_.end()) {
        preds_.push_back(pred);
        it = byPred_.emplace(pred, std::vector<std::size_t>{}).first;
    }
    it->second.insert(it->second.begin(), ordinal);
    return ordinal;
}

void
Program::remove(std::size_t ordinal)
{
    clare_assert(ordinal < clauses_.size(),
                 "removing unknown clause %zu", ordinal);
    PredicateId pred = clauses_[ordinal].predicate();
    auto it = byPred_.find(pred);
    clare_assert(it != byPred_.end(), "clause predicate not indexed");
    auto &ordinals = it->second;
    auto pos = std::find(ordinals.begin(), ordinals.end(), ordinal);
    clare_assert(pos != ordinals.end(), "clause already removed");
    ordinals.erase(pos);
}

const Clause &
Program::clause(std::size_t i) const
{
    clare_assert(i < clauses_.size(), "clause ordinal %zu out of range", i);
    return clauses_[i];
}

const std::vector<std::size_t> &
Program::clausesOf(const PredicateId &pred) const
{
    auto it = byPred_.find(pred);
    return it == byPred_.end() ? kEmpty : it->second;
}

bool
Program::isMixedRelation(const PredicateId &pred) const
{
    bool sawGround = false;
    bool sawOther = false;
    for (std::size_t i : clausesOf(pred)) {
        if (clauses_[i].isGroundFact())
            sawGround = true;
        else
            sawOther = true;
    }
    return sawGround && sawOther;
}

} // namespace clare::term
