#include "term/symbol_table.hh"

#include "support/logging.hh"

namespace clare::term {

SymbolTable::SymbolTable()
{
    SymbolId nil = intern("[]");
    SymbolId dot = intern(".");
    clare_assert(nil == kNil && dot == kDot,
                 "reserved symbol ids misallocated");
}

SymbolId
SymbolTable::intern(std::string_view name)
{
    auto it = byName_.find(std::string(name));
    if (it != byName_.end())
        return it->second;
    SymbolId id = static_cast<SymbolId>(names_.size());
    names_.emplace_back(name);
    byName_.emplace(std::string(name), id);
    return id;
}

SymbolId
SymbolTable::lookup(std::string_view name) const
{
    auto it = byName_.find(std::string(name));
    return it == byName_.end() ? kNoSymbol : it->second;
}

const std::string &
SymbolTable::name(SymbolId id) const
{
    clare_assert(id < names_.size(), "symbol id %u out of range", id);
    return names_[id];
}

FloatId
SymbolTable::internFloat(double value)
{
    auto it = byFloat_.find(value);
    if (it != byFloat_.end())
        return it->second;
    FloatId id = static_cast<FloatId>(floats_.size());
    floats_.push_back(value);
    byFloat_.emplace(value, id);
    return id;
}

double
SymbolTable::floatValue(FloatId id) const
{
    clare_assert(id < floats_.size(), "float id %u out of range", id);
    return floats_[id];
}

} // namespace clare::term
