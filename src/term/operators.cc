#include "term/operators.hh"

#include <map>

namespace clare::term {

const OperatorInfo *
infixOperator(const std::string &name)
{
    static const std::map<std::string, OperatorInfo> table = {
        {"=", {700, false}},   {"\\=", {700, false}},
        {"==", {700, false}},  {"\\==", {700, false}},
        {"=:=", {700, false}}, {"=\\=", {700, false}},
        {"<", {700, false}},   {">", {700, false}},
        {"=<", {700, false}},  {">=", {700, false}},
        {"is", {700, false}},
        {"+", {500, true}},    {"-", {500, true}},
        {"*", {400, true}},    {"/", {400, true}},
        {"mod", {400, true}},
        {":-", {1200, false}},
        {";", {1100, false, true}},
        {",", {1000, false, true}},
    };
    auto it = table.find(name);
    return it == table.end() ? nullptr : &it->second;
}

bool
isPrefixNot(const std::string &name)
{
    return name == "\\+";
}

} // namespace clare::term
