/**
 * @file
 * Interned symbol table shared by a knowledge base.
 *
 * In the CLARE PIF format the content field of an atom or float is a
 * symbol-table offset, and structure functors are symbol-table offsets
 * too; the FS2 comparator then only ever compares 32-bit offsets.  This
 * class provides that mapping: every distinct atom name and every
 * distinct float value is interned once and identified by a dense
 * 32-bit id.
 */

#ifndef CLARE_TERM_SYMBOL_TABLE_HH
#define CLARE_TERM_SYMBOL_TABLE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace clare::term {

/** Dense identifier of an interned atom name. */
using SymbolId = std::uint32_t;

/** Dense identifier of an interned float value. */
using FloatId = std::uint32_t;

/** Sentinel for "no symbol". */
constexpr SymbolId kNoSymbol = 0xffffffffu;

/**
 * Interns atom names and float constants.
 *
 * Ids are dense and stable; the table is append-only.  Atom id 0 is
 * always '[]' (the empty list) and id 1 is always '.' (the list
 * constructor), mirroring the reserved entries a compiled Prolog
 * system keeps.
 */
class SymbolTable
{
  public:
    SymbolTable();

    /** Intern an atom name, returning its id (idempotent). */
    SymbolId intern(std::string_view name);

    /** Look up an atom without interning; kNoSymbol if absent. */
    SymbolId lookup(std::string_view name) const;

    /** The text of an interned atom. */
    const std::string &name(SymbolId id) const;

    /** Intern a float constant, returning its id (idempotent). */
    FloatId internFloat(double value);

    /** The value of an interned float. */
    double floatValue(FloatId id) const;

    std::size_t atomCount() const { return names_.size(); }
    std::size_t floatCount() const { return floats_.size(); }

    /** Reserved id of the empty-list atom '[]'. */
    static constexpr SymbolId kNil = 0;
    /** Reserved id of the list functor '.'. */
    static constexpr SymbolId kDot = 1;

  private:
    std::vector<std::string> names_;
    std::unordered_map<std::string, SymbolId> byName_;
    std::vector<double> floats_;
    std::unordered_map<double, FloatId> byFloat_;
};

} // namespace clare::term

#endif // CLARE_TERM_SYMBOL_TABLE_HH
