#include "term/term_writer.hh"

#include <cctype>
#include <cstdio>

#include "support/logging.hh"
#include "term/clause.hh"
#include "term/operators.hh"

namespace clare::term {

namespace {

bool
isUnquotedAtom(const std::string &name)
{
    if (name.empty())
        return false;
    if (name == "[]" || name == "." || name == "!" || name == ";")
        return true;
    if (std::islower(static_cast<unsigned char>(name[0]))) {
        for (char c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
                return false;
        }
        return true;
    }
    // Symbolic atoms made purely of symbol chars.
    const std::string symbolChars = "+-*/\\^<>=~:.?@#&";
    for (char c : name) {
        if (symbolChars.find(c) == std::string::npos)
            return false;
    }
    return true;
}

} // namespace

std::string
TermWriter::write(const TermArena &arena, TermRef t) const
{
    std::string out;
    writeTerm(arena, t, out);
    return out;
}

void
TermWriter::writeAtomText(const std::string &name, std::string &out) const
{
    if (isUnquotedAtom(name)) {
        out += name;
        return;
    }
    out += '\'';
    for (char c : name) {
        if (c == '\'' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '\'';
}

void
TermWriter::writeTerm(const TermArena &arena, TermRef t,
                      std::string &out) const
{
    switch (arena.kind(t)) {
      case TermKind::Atom:
        writeAtomText(symbols_.name(arena.atomSymbol(t)), out);
        return;
      case TermKind::Int: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(arena.intValue(t)));
        out += buf;
        return;
      }
      case TermKind::Float: {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%g",
                      symbols_.floatValue(arena.floatId(t)));
        out += buf;
        // Ensure it reads back as a float, not an integer.
        std::string s(buf);
        if (s.find('.') == std::string::npos &&
            s.find('e') == std::string::npos &&
            s.find("inf") == std::string::npos &&
            s.find("nan") == std::string::npos) {
            out += ".0";
        }
        return;
      }
      case TermKind::Var:
        if (arena.isAnonymous(t)) {
            out += "_G";
            out += std::to_string(arena.varId(t));
        } else {
            out += symbols_.name(arena.varName(t));
        }
        return;
      case TermKind::Struct: {
        const std::string &name = symbols_.name(arena.functor(t));
        // Render operator structures infix (they were parsed that
        // way), with precedence-aware parenthesization so the output
        // reads back identically.
        if (arena.arity(t) == 2) {
            if (const OperatorInfo *op = infixOperator(name)) {
                writeOperand(arena, arena.arg(t, 0),
                             op->yfx ? op->prec : op->prec - 1, true,
                             out);
                if (std::isalpha(static_cast<unsigned char>(name[0]))) {
                    out += ' ';
                    out += name;
                    out += ' ';
                } else {
                    out += name;
                }
                writeOperand(arena, arena.arg(t, 1),
                             op->xfy ? op->prec : op->prec - 1,
                             true, out);
                return;
            }
        }
        if (arena.arity(t) == 1 && isPrefixNot(name)) {
            out += name;
            out += ' ';
            writeOperand(arena, arena.arg(t, 0), kPrefixNotPrecedence,
                         true, out);
            return;
        }
        writeAtomText(name, out);
        out += '(';
        for (std::uint32_t i = 0; i < arena.arity(t); ++i) {
            if (i)
                out += ',';
            writeOperand(arena, arena.arg(t, i), 999, false, out);
        }
        out += ')';
        return;
      }
      case TermKind::List: {
        out += '[';
        for (std::uint32_t i = 0; i < arena.arity(t); ++i) {
            if (i)
                out += ',';
            writeOperand(arena, arena.arg(t, i), 999, false, out);
        }
        if (!arena.isTerminatedList(t)) {
            out += '|';
            writeTerm(arena, arena.listTail(t), out);
        }
        out += ']';
        return;
      }
    }
    clare_panic("unreachable term kind");
}

/** Precedence of a term when used as an operand (0 for non-ops). */
int
TermWriter::termPrecedence(const TermArena &arena, TermRef t) const
{
    if (arena.kind(t) != TermKind::Struct)
        return 0;
    const std::string &name = symbols_.name(arena.functor(t));
    if (arena.arity(t) == 2) {
        if (const OperatorInfo *op = infixOperator(name))
            return op->prec;
    }
    if (arena.arity(t) == 1 && isPrefixNot(name))
        return kPrefixNotPrecedence;
    return 0;
}

void
TermWriter::writeOperand(const TermArena &arena, TermRef t,
                         int max_prec, bool infix_context,
                         std::string &out) const
{
    // Negative numeric literals need parentheses as operands: "1--3"
    // would not lex.
    bool negative_literal =
        (arena.kind(t) == TermKind::Int && arena.intValue(t) < 0) ||
        (arena.kind(t) == TermKind::Float &&
         symbols_.floatValue(arena.floatId(t)) < 0);
    // A bare symbolic atom next to a symbolic operator would lex as
    // one longer symbolic token ("*+"), so such operands are
    // parenthesized.
    bool symbolic_atom = false;
    if (arena.kind(t) == TermKind::Atom) {
        const std::string &name = symbols_.name(arena.atomSymbol(t));
        // Operator-*named* atoms also confuse re-parsing even when
        // alphanumeric ("is-1" would lex -1 as a literal), so they
        // are parenthesized too.
        symbolic_atom = (!name.empty() &&
            std::string("+-*/\\^<>=~:.?@#&").find(name[0]) !=
                std::string::npos) ||
            infixOperator(name) != nullptr;
    }
    // The literal/atom lexing hazards only exist next to an infix
    // operator; in argument positions only precedence matters.
    bool parens = (infix_context && (negative_literal || symbolic_atom))
        || termPrecedence(arena, t) > max_prec;
    if (parens)
        out += '(';
    writeTerm(arena, t, out);
    if (parens)
        out += ')';
}

std::string
TermWriter::writeClause(const Clause &clause) const
{
    std::string out = write(clause.arena(), clause.head());
    if (!clause.isFact()) {
        out += " :- ";
        for (std::size_t i = 0; i < clause.body().size(); ++i) {
            if (i)
                out += ", ";
            out += write(clause.arena(), clause.body()[i]);
        }
    }
    // A trailing symbolic character would merge with the clause dot
    // ("+." lexes as one symbolic atom); separate them.
    if (!out.empty() &&
        std::string("+-*/\\^<>=~:?@#&").find(out.back()) !=
            std::string::npos) {
        out += ' ';
    }
    out += '.';
    return out;
}

} // namespace clare::term
