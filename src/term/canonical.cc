#include "term/canonical.hh"

#include <map>

namespace clare::term {

namespace {

void
appendU64(std::string &out, std::uint64_t v)
{
    // Variable-width little-endian with a terminator byte outside the
    // 7-bit payload range, so adjacent numbers can never run together.
    while (v >= 0x80) {
        out.push_back(static_cast<char>(v & 0x7f));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v | 0x80));
}

struct Canonicalizer
{
    const TermArena &arena;
    std::string out;
    /** First-occurrence numbering of named variables. */
    std::map<VarId, std::uint32_t> varNumber;
    std::uint32_t nextVar = 0;

    void
    walk(TermRef t)
    {
        switch (arena.kind(t)) {
          case TermKind::Atom:
            out.push_back('a');
            appendU64(out, arena.atomSymbol(t));
            return;
          case TermKind::Int:
            out.push_back('i');
            appendU64(out, static_cast<std::uint64_t>(arena.intValue(t)));
            return;
          case TermKind::Float:
            out.push_back('f');
            appendU64(out, arena.floatId(t));
            return;
          case TermKind::Var: {
            out.push_back('v');
            // Anonymous variables are never shared, so each occurrence
            // gets a fresh number: p(_, _) keys like p(X, Y), and both
            // differ from p(X, X).
            std::uint32_t n;
            if (arena.isAnonymous(t)) {
                n = nextVar++;
            } else {
                auto [it, fresh] =
                    varNumber.try_emplace(arena.varId(t), nextVar);
                if (fresh)
                    ++nextVar;
                n = it->second;
            }
            appendU64(out, n);
            return;
          }
          case TermKind::Struct: {
            out.push_back('s');
            appendU64(out, arena.functor(t));
            appendU64(out, arena.arity(t));
            for (std::uint32_t i = 0; i < arena.arity(t); ++i)
                walk(arena.arg(t, i));
            return;
          }
          case TermKind::List: {
            out.push_back('l');
            appendU64(out, arena.arity(t));
            for (std::uint32_t i = 0; i < arena.arity(t); ++i)
                walk(arena.arg(t, i));
            if (arena.listTail(t) == kNoTerm) {
                out.push_back('.');
            } else {
                out.push_back('|');
                walk(arena.listTail(t));
            }
            return;
          }
        }
    }
};

} // namespace

std::string
canonicalKey(const TermArena &arena, TermRef t)
{
    Canonicalizer c{arena};
    c.walk(t);
    return std::move(c.out);
}

std::uint64_t
canonicalHash(const TermArena &arena, TermRef t)
{
    std::string key = canonicalKey(arena, t);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char ch : key) {
        h ^= ch;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace clare::term
