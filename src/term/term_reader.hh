/**
 * @file
 * A reader for a practical subset of Edinburgh Prolog syntax.
 *
 * Supported: atoms (unquoted, quoted, symbolic), integers, floats,
 * variables (named and anonymous), structures, proper and partial
 * lists, clauses ("head." / "head :- g1, g2."), queries with an
 * optional "?-" prefix, "X = Y" sugar for =(X,Y), and both %-line and
 * C-style block comments.  Operator-precedence parsing beyond '=' is
 * deliberately out of scope: CLARE filters compiled clause heads, and
 * head terms never need a full operator table.
 */

#ifndef CLARE_TERM_TERM_READER_HH
#define CLARE_TERM_TERM_READER_HH

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "term/clause.hh"
#include "term/symbol_table.hh"
#include "term/term.hh"

namespace clare::term {

/** Result of parsing one standalone term. */
struct ParsedTerm
{
    TermArena arena;
    TermRef root = kNoTerm;
    /** Source-name to VarId map (anonymous vars not included). */
    std::map<std::string, VarId> varNames;
};

/** Result of parsing a query: a conjunction of goals. */
struct ParsedQuery
{
    TermArena arena;
    std::vector<TermRef> goals;
    std::map<std::string, VarId> varNames;
};

/**
 * Parses text into terms, clauses, and programs, interning symbols in
 * the supplied table.  Malformed input raises FatalError with a
 * line-numbered message.
 */
class TermReader
{
  public:
    explicit TermReader(SymbolTable &symbols) : symbols_(symbols) {}

    /** Parse exactly one term; trailing input is an error. */
    ParsedTerm parseTerm(std::string_view text) const;

    /** Parse exactly one clause terminated by '.'. */
    Clause parseClause(std::string_view text) const;

    /** Parse a sequence of clauses (a program / consulted file). */
    std::vector<Clause> parseProgram(std::string_view text) const;

    /** Parse a query: optional "?-", goals, optional final '.'. */
    ParsedQuery parseQuery(std::string_view text) const;

  private:
    SymbolTable &symbols_;
};

} // namespace clare::term

#endif // CLARE_TERM_TERM_READER_HH
