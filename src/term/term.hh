/**
 * @file
 * Arena-based Prolog term representation.
 *
 * Terms are immutable nodes in a TermArena, referenced by dense 32-bit
 * TermRef handles.  The shapes mirror what the CLARE Pseudo In-line
 * Format can express: atoms, integers, floats, variables (named or
 * anonymous), structures, and lists that are either *terminated*
 * (proper, ending in []) or *unterminated* (ending in a tail
 * variable, e.g. [a,b|T]).
 *
 * Lists are stored flattened: a span of element terms plus an optional
 * tail variable.  This matches the PIF encoding, where a list item
 * carries an arity and its elements follow in-line.
 */

#ifndef CLARE_TERM_TERM_HH
#define CLARE_TERM_TERM_HH

#include <cstdint>
#include <span>
#include <vector>

#include "term/symbol_table.hh"

namespace clare::term {

/** Handle to a term node within a TermArena. */
using TermRef = std::uint32_t;

/** Sentinel for "no term" (e.g. the tail of a proper list). */
constexpr TermRef kNoTerm = 0xffffffffu;

/** Identifier of a variable within one clause or query. */
using VarId = std::uint32_t;

/** The six term shapes. */
enum class TermKind : std::uint8_t
{
    Atom,
    Int,
    Float,
    Var,
    Struct,
    List,
};

/** Human-readable name of a TermKind. */
const char *termKindName(TermKind kind);

/**
 * Owns term nodes.  Construction is append-only; nodes are immutable
 * once created.  An arena is independent of any symbol table: it only
 * stores ids, so the same arena can be printed against any table that
 * interned the ids.
 */
class TermArena
{
  public:
    /** Number of nodes in the arena. */
    std::size_t size() const { return nodes_.size(); }

    /** @name Constructors for each term shape. */
    /// @{
    TermRef makeAtom(SymbolId sym);
    TermRef makeInt(std::int64_t value);
    TermRef makeFloat(FloatId id);

    /**
     * Make a variable.  @p name is the interned source name, or
     * kNoSymbol for an anonymous variable ('_').  Anonymous variables
     * still get a VarId but are never shared.
     */
    TermRef makeVar(VarId var, SymbolId name = kNoSymbol);

    TermRef makeStruct(SymbolId functor, std::span<const TermRef> args);

    /**
     * Make a list with the given elements and tail.  @p tail is
     * kNoTerm for a terminated (proper) list, or a Var term for an
     * unterminated list.  An empty terminated list should instead be
     * the atom '[]' (use makeAtom(SymbolTable::kNil)).
     */
    TermRef makeList(std::span<const TermRef> elems, TermRef tail = kNoTerm);
    /// @}

    /** @name Accessors (each checks the node kind). */
    /// @{
    TermKind kind(TermRef t) const;
    SymbolId atomSymbol(TermRef t) const;
    std::int64_t intValue(TermRef t) const;
    FloatId floatId(TermRef t) const;
    VarId varId(TermRef t) const;
    SymbolId varName(TermRef t) const;
    bool isAnonymous(TermRef t) const;
    SymbolId functor(TermRef t) const;
    /** Arity of a Struct, or element count of a List. */
    std::uint32_t arity(TermRef t) const;
    TermRef arg(TermRef t, std::uint32_t i) const;
    /** Tail of a List: kNoTerm if terminated. */
    TermRef listTail(TermRef t) const;
    bool isTerminatedList(TermRef t) const;
    /// @}

    /**
     * Copy a term (recursively) from another arena into this one,
     * adding @p var_offset to every variable id so that the copy is
     * standardized apart from terms already present.
     *
     * @return the handle of the copied root in this arena.
     */
    TermRef import(const TermArena &src, TermRef t, VarId var_offset);

    /** Deep structural equality between terms of two arenas. */
    static bool equal(const TermArena &a, TermRef ta,
                      const TermArena &b, TermRef tb);

    /** Largest VarId used plus one (0 if no variables). */
    VarId varCeiling() const { return varCeiling_; }

  private:
    struct Node
    {
        TermKind kind;
        std::uint32_t a;        // symbol / float id / var id / low int bits
        std::uint32_t b;        // name / high int bits / list tail
        std::uint32_t argsBegin;
        std::uint32_t argsCount;
    };

    std::vector<Node> nodes_;
    std::vector<TermRef> args_;
    VarId varCeiling_ = 0;

    const Node &node(TermRef t) const;
    TermRef push(Node n);
};

} // namespace clare::term

#endif // CLARE_TERM_TERM_HH
