/**
 * @file
 * The operator table shared by the reader (precedence parsing) and
 * the writer (infix rendering).  Standard Prolog precedences for the
 * operators the PDBM subset supports:
 *
 *   1200 xfx: :-
 *   1100 xfy: ;
 *   1000 xfy: ','         (as a term constructor, inside parentheses)
 *   700 xfx:  =  \=  ==  \==  =:=  =\=  <  >  =<  >=  is
 *   500 yfx:  +  -
 *   400 yfx:  *  /  mod
 *   900 fy :  \+          (prefix)
 */

#ifndef CLARE_TERM_OPERATORS_HH
#define CLARE_TERM_OPERATORS_HH

#include <string>

namespace clare::term {

/** Descriptor of an infix operator. */
struct OperatorInfo
{
    int prec;
    bool yfx;   ///< left-associative (left operand may equal prec)
    bool xfy = false;   ///< right-associative (right operand may
                        ///< equal prec): ',' and ';'
};

/** Look up an infix operator; nullptr when @p name is not one. */
const OperatorInfo *infixOperator(const std::string &name);

/** Precedence of the prefix \+ operator. */
constexpr int kPrefixNotPrecedence = 900;

/** Is @p name the prefix negation operator? */
bool isPrefixNot(const std::string &name);

} // namespace clare::term

#endif // CLARE_TERM_OPERATORS_HH
