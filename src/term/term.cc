#include "term/term.hh"

#include <algorithm>

#include "support/logging.hh"

namespace clare::term {

const char *
termKindName(TermKind kind)
{
    switch (kind) {
      case TermKind::Atom: return "atom";
      case TermKind::Int: return "int";
      case TermKind::Float: return "float";
      case TermKind::Var: return "var";
      case TermKind::Struct: return "struct";
      case TermKind::List: return "list";
    }
    return "?";
}

const TermArena::Node &
TermArena::node(TermRef t) const
{
    clare_assert(t < nodes_.size(), "term ref %u out of range", t);
    return nodes_[t];
}

TermRef
TermArena::push(Node n)
{
    TermRef r = static_cast<TermRef>(nodes_.size());
    nodes_.push_back(n);
    return r;
}

TermRef
TermArena::makeAtom(SymbolId sym)
{
    return push(Node{TermKind::Atom, sym, 0, 0, 0});
}

TermRef
TermArena::makeInt(std::int64_t value)
{
    std::uint64_t u = static_cast<std::uint64_t>(value);
    return push(Node{TermKind::Int,
                     static_cast<std::uint32_t>(u & 0xffffffffu),
                     static_cast<std::uint32_t>(u >> 32), 0, 0});
}

TermRef
TermArena::makeFloat(FloatId id)
{
    return push(Node{TermKind::Float, id, 0, 0, 0});
}

TermRef
TermArena::makeVar(VarId var, SymbolId name)
{
    varCeiling_ = std::max(varCeiling_, var + 1);
    return push(Node{TermKind::Var, var, name, 0, 0});
}

TermRef
TermArena::makeStruct(SymbolId functor, std::span<const TermRef> args)
{
    clare_assert(!args.empty(), "a structure must have at least one arg");
    std::uint32_t begin = static_cast<std::uint32_t>(args_.size());
    args_.insert(args_.end(), args.begin(), args.end());
    return push(Node{TermKind::Struct, functor, 0, begin,
                     static_cast<std::uint32_t>(args.size())});
}

TermRef
TermArena::makeList(std::span<const TermRef> elems, TermRef tail)
{
    clare_assert(!elems.empty(),
                 "an empty list is the atom '[]', not a List node");
    // The parser only produces variable tails; the unifier may build
    // residual lists whose tail is an arbitrary term (improper lists
    // are tolerated at runtime, as in standard Prolog).
    std::uint32_t begin = static_cast<std::uint32_t>(args_.size());
    args_.insert(args_.end(), elems.begin(), elems.end());
    return push(Node{TermKind::List, 0, tail, begin,
                     static_cast<std::uint32_t>(elems.size())});
}

TermKind
TermArena::kind(TermRef t) const
{
    return node(t).kind;
}

SymbolId
TermArena::atomSymbol(TermRef t) const
{
    const Node &n = node(t);
    clare_assert(n.kind == TermKind::Atom, "not an atom");
    return n.a;
}

std::int64_t
TermArena::intValue(TermRef t) const
{
    const Node &n = node(t);
    clare_assert(n.kind == TermKind::Int, "not an int");
    std::uint64_t u = (static_cast<std::uint64_t>(n.b) << 32) | n.a;
    return static_cast<std::int64_t>(u);
}

FloatId
TermArena::floatId(TermRef t) const
{
    const Node &n = node(t);
    clare_assert(n.kind == TermKind::Float, "not a float");
    return n.a;
}

VarId
TermArena::varId(TermRef t) const
{
    const Node &n = node(t);
    clare_assert(n.kind == TermKind::Var, "not a var");
    return n.a;
}

SymbolId
TermArena::varName(TermRef t) const
{
    const Node &n = node(t);
    clare_assert(n.kind == TermKind::Var, "not a var");
    return n.b;
}

bool
TermArena::isAnonymous(TermRef t) const
{
    return varName(t) == kNoSymbol;
}

SymbolId
TermArena::functor(TermRef t) const
{
    const Node &n = node(t);
    clare_assert(n.kind == TermKind::Struct, "not a struct");
    return n.a;
}

std::uint32_t
TermArena::arity(TermRef t) const
{
    const Node &n = node(t);
    clare_assert(n.kind == TermKind::Struct || n.kind == TermKind::List,
                 "arity of a non-complex term");
    return n.argsCount;
}

TermRef
TermArena::arg(TermRef t, std::uint32_t i) const
{
    const Node &n = node(t);
    clare_assert(n.kind == TermKind::Struct || n.kind == TermKind::List,
                 "arg of a non-complex term");
    clare_assert(i < n.argsCount, "arg index %u out of range (%u)",
                 i, n.argsCount);
    return args_[n.argsBegin + i];
}

TermRef
TermArena::listTail(TermRef t) const
{
    const Node &n = node(t);
    clare_assert(n.kind == TermKind::List, "not a list");
    return n.b;
}

bool
TermArena::isTerminatedList(TermRef t) const
{
    return listTail(t) == kNoTerm;
}

TermRef
TermArena::import(const TermArena &src, TermRef t, VarId var_offset)
{
    const Node &n = src.node(t);
    switch (n.kind) {
      case TermKind::Atom:
        return makeAtom(n.a);
      case TermKind::Int:
        return push(Node{TermKind::Int, n.a, n.b, 0, 0});
      case TermKind::Float:
        return makeFloat(n.a);
      case TermKind::Var:
        return makeVar(n.a + var_offset, n.b);
      case TermKind::Struct: {
        std::vector<TermRef> args;
        args.reserve(n.argsCount);
        for (std::uint32_t i = 0; i < n.argsCount; ++i)
            args.push_back(import(src, src.args_[n.argsBegin + i],
                                  var_offset));
        return makeStruct(n.a, args);
      }
      case TermKind::List: {
        std::vector<TermRef> elems;
        elems.reserve(n.argsCount);
        for (std::uint32_t i = 0; i < n.argsCount; ++i)
            elems.push_back(import(src, src.args_[n.argsBegin + i],
                                   var_offset));
        TermRef tail = n.b == kNoTerm
            ? kNoTerm : import(src, n.b, var_offset);
        return makeList(elems, tail);
      }
    }
    clare_panic("unreachable term kind");
}

bool
TermArena::equal(const TermArena &a, TermRef ta,
                 const TermArena &b, TermRef tb)
{
    const Node &na = a.node(ta);
    const Node &nb = b.node(tb);
    if (na.kind != nb.kind)
        return false;
    switch (na.kind) {
      case TermKind::Atom:
      case TermKind::Float:
        return na.a == nb.a;
      case TermKind::Int:
        return na.a == nb.a && na.b == nb.b;
      case TermKind::Var:
        return na.a == nb.a;
      case TermKind::Struct:
        if (na.a != nb.a || na.argsCount != nb.argsCount)
            return false;
        for (std::uint32_t i = 0; i < na.argsCount; ++i)
            if (!equal(a, a.args_[na.argsBegin + i],
                       b, b.args_[nb.argsBegin + i]))
                return false;
        return true;
      case TermKind::List:
        if (na.argsCount != nb.argsCount)
            return false;
        if ((na.b == kNoTerm) != (nb.b == kNoTerm))
            return false;
        for (std::uint32_t i = 0; i < na.argsCount; ++i)
            if (!equal(a, a.args_[na.argsBegin + i],
                       b, b.args_[nb.argsBegin + i]))
                return false;
        if (na.b != kNoTerm && !equal(a, na.b, b, nb.b))
            return false;
        return true;
    }
    clare_panic("unreachable term kind");
}

} // namespace clare::term
