#include "term/term_reader.hh"

#include <cctype>
#include <cstdlib>

#include "support/logging.hh"
#include "term/operators.hh"

namespace clare::term {

namespace {

/** Token categories produced by the lexer. */
enum class Tok
{
    Atom,       // unquoted, quoted or symbolic atom text
    Var,        // variable name (starts uppercase or '_')
    Int,
    Float,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Bar,
    Neck,       // :-
    QueryNeck,  // ?-
    EndClause,  // '.' followed by layout or EOF
    End,        // end of input
};

struct Token
{
    Tok kind;
    std::string text;
    std::int64_t intValue = 0;
    double floatValue = 0.0;
    int line = 0;
};

using OpInfo = OperatorInfo;

inline const OpInfo *
infixOp(const std::string &name)
{
    return infixOperator(name);
}

/** Hand-written lexer over the input text. */
class Lexer
{
  public:
    explicit Lexer(std::string_view text) : text_(text) {}

    const Token &peek()
    {
        if (!hasTok_) {
            tok_ = lex();
            hasTok_ = true;
        }
        return tok_;
    }

    /** Does a token kind end a term (so '-' after it is infix)? */
    static bool
    endsTerm(Tok kind)
    {
        switch (kind) {
          case Tok::Atom:
          case Tok::Var:
          case Tok::Int:
          case Tok::Float:
          case Tok::RParen:
          case Tok::RBracket:
            return true;
          default:
            return false;
        }
    }

    Token take()
    {
        Token t = peek();
        hasTok_ = false;
        // An operator atom does not end a term: after "1 + " a '-3'
        // is a negative literal again.
        prevEndsTerm_ = endsTerm(t.kind) &&
            !(t.kind == Tok::Atom && infixOp(t.text));
        return t;
    }

    int line() const { return line_; }

  private:
    std::string_view text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    Token tok_;
    bool hasTok_ = false;
    bool prevEndsTerm_ = false;

    bool atEnd() const { return pos_ >= text_.size(); }
    char cur() const { return text_[pos_]; }
    char
    lookahead(std::size_t n) const
    {
        return pos_ + n < text_.size() ? text_[pos_ + n] : '\0';
    }

    void
    advance()
    {
        if (text_[pos_] == '\n')
            ++line_;
        ++pos_;
    }

    void
    skipLayout()
    {
        while (!atEnd()) {
            char c = cur();
            if (std::isspace(static_cast<unsigned char>(c))) {
                advance();
            } else if (c == '%') {
                while (!atEnd() && cur() != '\n')
                    advance();
            } else if (c == '/' && lookahead(1) == '*') {
                advance();
                advance();
                while (!atEnd() &&
                       !(cur() == '*' && lookahead(1) == '/')) {
                    advance();
                }
                if (atEnd())
                    clare_fatal("unterminated block comment at line %d",
                                line_);
                advance();
                advance();
            } else {
                break;
            }
        }
    }

    Token
    make(Tok kind, std::string text = "")
    {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.line = line_;
        return t;
    }

    Token lexNumber(bool negative);
    Token lexQuotedAtom();
    Token lex();
};

Token
Lexer::lexNumber(bool negative)
{
    std::size_t start = pos_;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(cur())))
        advance();
    bool isFloat = false;
    if (!atEnd() && cur() == '.' &&
        std::isdigit(static_cast<unsigned char>(lookahead(1)))) {
        isFloat = true;
        advance();
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(cur())))
            advance();
    }
    if (!atEnd() && (cur() == 'e' || cur() == 'E')) {
        std::size_t mark = pos_;
        advance();
        if (!atEnd() && (cur() == '+' || cur() == '-'))
            advance();
        if (!atEnd() && std::isdigit(static_cast<unsigned char>(cur()))) {
            isFloat = true;
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(cur()))) {
                advance();
            }
        } else {
            pos_ = mark;
        }
    }
    std::string digits(text_.substr(start, pos_ - start));
    if (isFloat) {
        Token t = make(Tok::Float, digits);
        t.floatValue = std::strtod(digits.c_str(), nullptr);
        if (negative)
            t.floatValue = -t.floatValue;
        return t;
    }
    Token t = make(Tok::Int, digits);
    t.intValue = std::strtoll(digits.c_str(), nullptr, 10);
    if (negative)
        t.intValue = -t.intValue;
    return t;
}

Token
Lexer::lexQuotedAtom()
{
    advance(); // opening quote
    std::string text;
    while (true) {
        if (atEnd())
            clare_fatal("unterminated quoted atom at line %d", line_);
        char c = cur();
        if (c == '\\') {
            advance();
            if (atEnd())
                clare_fatal("dangling escape in quoted atom at line %d",
                            line_);
            char e = cur();
            switch (e) {
              case 'n': text += '\n'; break;
              case 't': text += '\t'; break;
              case '\\': text += '\\'; break;
              case '\'': text += '\''; break;
              default: text += e; break;
            }
            advance();
        } else if (c == '\'') {
            advance();
            if (!atEnd() && cur() == '\'') {  // '' escape
                text += '\'';
                advance();
                continue;
            }
            break;
        } else {
            text += c;
            advance();
        }
    }
    return make(Tok::Atom, text);
}

Token
Lexer::lex()
{
    skipLayout();
    if (atEnd())
        return make(Tok::End);

    char c = cur();

    if (c == '(') { advance(); return make(Tok::LParen); }
    if (c == ')') { advance(); return make(Tok::RParen); }
    if (c == '[') { advance(); return make(Tok::LBracket); }
    if (c == ']') { advance(); return make(Tok::RBracket); }
    if (c == ',') { advance(); return make(Tok::Comma); }
    if (c == '|') { advance(); return make(Tok::Bar); }
    if (c == '!' || c == ';') {
        advance();
        return make(Tok::Atom, std::string(1, c));
    }
    if (c == '\'')
        return lexQuotedAtom();

    if (c == ':' && lookahead(1) == '-') {
        advance();
        advance();
        return make(Tok::Neck);
    }
    if (c == '?' && lookahead(1) == '-') {
        advance();
        advance();
        return make(Tok::QueryNeck);
    }

    if (c == '.') {
        char n = lookahead(1);
        if (n == '\0' || std::isspace(static_cast<unsigned char>(n)) ||
            n == '%') {
            advance();
            return make(Tok::EndClause);
        }
        // Otherwise fall through to symbolic atom handling below.
    }

    if (std::isdigit(static_cast<unsigned char>(c)))
        return lexNumber(false);

    // A '-' immediately followed by a digit is a negative literal,
    // but only where a term is expected ("f(-3)"), not after a
    // complete term ("X-3" is the infix operator).
    if (c == '-' && !prevEndsTerm_ &&
        std::isdigit(static_cast<unsigned char>(lookahead(1)))) {
        advance();
        return lexNumber(true);
    }

    if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = pos_;
        while (!atEnd() &&
               (std::isalnum(static_cast<unsigned char>(cur())) ||
                cur() == '_')) {
            advance();
        }
        return make(Tok::Var, std::string(text_.substr(start,
                                                       pos_ - start)));
    }

    if (std::islower(static_cast<unsigned char>(c))) {
        std::size_t start = pos_;
        while (!atEnd() &&
               (std::isalnum(static_cast<unsigned char>(cur())) ||
                cur() == '_')) {
            advance();
        }
        return make(Tok::Atom, std::string(text_.substr(start,
                                                        pos_ - start)));
    }

    // Symbolic atom (run of symbol characters); '=' alone is special.
    const std::string symbolChars = "+-*/\\^<>=~:.?@#&";
    if (symbolChars.find(c) != std::string::npos) {
        std::size_t start = pos_;
        while (!atEnd() && symbolChars.find(cur()) != std::string::npos)
            advance();
        return make(Tok::Atom,
                    std::string(text_.substr(start, pos_ - start)));
    }

    clare_fatal("unexpected character '%c' (0x%02x) at line %d",
                c, static_cast<unsigned char>(c), line_);
}

/** Recursive-descent parser building into a fresh arena per clause. */
class Parser
{
  public:
    Parser(SymbolTable &symbols, Lexer &lexer)
        : symbols_(symbols), lexer_(lexer)
    {}

    TermArena &arena() { return arena_; }
    std::map<std::string, VarId> &varNames() { return varNames_; }

    /**
     * Parse a term with infix operators up to @p max_prec (standard
     * Prolog operator precedences: 700 for =, is and the comparisons,
     * 500 for +/-, 400 for * / mod).  Argument and list-element
     * contexts use 999; goal and head contexts use 1200.
     */
    TermRef
    parseExpr(int max_prec)
    {
        TermRef left = parsePrimary();
        int left_prec = 0;
        while (lexer_.peek().kind == Tok::Atom ||
               lexer_.peek().kind == Tok::Neck ||
               lexer_.peek().kind == Tok::Comma) {
            Tok peek_kind = lexer_.peek().kind;
            std::string op_name = peek_kind == Tok::Neck ? ":-"
                : peek_kind == Tok::Comma ? ","
                : lexer_.peek().text;
            const OpInfo *op = infixOp(op_name);
            if (!op || op->prec > max_prec)
                break;
            // yfx allows an equal-precedence left operand (left
            // associativity); xfx does not.
            if (left_prec > (op->yfx ? op->prec : op->prec - 1))
                break;
            std::string name = op_name;
            lexer_.take();
            TermRef right = parseExpr(op->xfy ? op->prec
                                              : op->prec - 1);
            TermRef args[] = {left, right};
            left = arena_.makeStruct(symbols_.intern(name), args);
            left_prec = op->prec;
        }
        return left;
    }

    /** Parse "head [:- goals] ." and build a Clause. */
    Clause
    parseClause()
    {
        TermRef head = parseExpr(1199);
        std::vector<TermRef> body;
        if (lexer_.peek().kind == Tok::Neck) {
            lexer_.take();
            body = parseGoals();
        }
        expect(Tok::EndClause, "'.' at end of clause");
        return Clause(std::move(arena_), head, std::move(body));
    }

    /**
     * Parse a goal conjunction.  With ',' an xfy-1000 operator, one
     * parseExpr(1200) consumes the whole conjunction; the resulting
     * right-nested ','/2 spine is flattened into the goal list
     * (disjunctions and other control terms stay nested for the
     * solver).
     */
    std::vector<TermRef>
    parseGoals()
    {
        std::vector<TermRef> goals;
        TermRef conj = parseExpr(1200);
        SymbolId comma = symbols_.intern(",");
        while (arena_.kind(conj) == TermKind::Struct &&
               arena_.functor(conj) == comma &&
               arena_.arity(conj) == 2) {
            goals.push_back(arena_.arg(conj, 0));
            conj = arena_.arg(conj, 1);
        }
        goals.push_back(conj);
        return goals;
    }

    void
    expect(Tok kind, const char *what)
    {
        Token t = lexer_.take();
        if (t.kind != kind)
            clare_fatal("expected %s at line %d (got '%s')",
                        what, t.line, t.text.c_str());
    }

    bool atEnd() { return lexer_.peek().kind == Tok::End; }

  private:
    SymbolTable &symbols_;
    Lexer &lexer_;
    TermArena arena_;
    std::map<std::string, VarId> varNames_;
    VarId nextVar_ = 0;

    /** Can a token begin a term (prefix-operator operand check)? */
    static bool
    startsTerm(Tok kind)
    {
        switch (kind) {
          case Tok::Atom:
          case Tok::Var:
          case Tok::Int:
          case Tok::Float:
          case Tok::LParen:
          case Tok::LBracket:
            return true;
          default:
            return false;
        }
    }

    TermRef
    makeVariable(const std::string &name)
    {
        if (name == "_")
            return arena_.makeVar(nextVar_++, kNoSymbol);
        auto it = varNames_.find(name);
        if (it == varNames_.end())
            it = varNames_.emplace(name, nextVar_++).first;
        return arena_.makeVar(it->second, symbols_.intern(name));
    }

    TermRef
    parsePrimary()
    {
        Token t = lexer_.take();
        switch (t.kind) {
          case Tok::Int:
            return arena_.makeInt(t.intValue);
          case Tok::Float:
            return arena_.makeFloat(symbols_.internFloat(t.floatValue));
          case Tok::Var:
            return makeVariable(t.text);
          case Tok::Atom: {
            SymbolId sym = symbols_.intern(t.text);
            // Prefix negation-as-failure operator (fy 900).
            if (t.text == "\\+" && startsTerm(lexer_.peek().kind)) {
                TermRef arg = parseExpr(900);
                return arena_.makeStruct(sym, std::span(&arg, 1));
            }
            if (lexer_.peek().kind == Tok::LParen) {
                lexer_.take();
                std::vector<TermRef> args;
                args.push_back(parseExpr(999));
                while (lexer_.peek().kind == Tok::Comma) {
                    lexer_.take();
                    args.push_back(parseExpr(999));
                }
                expect(Tok::RParen, "')'");
                return arena_.makeStruct(sym, args);
            }
            return arena_.makeAtom(sym);
          }
          case Tok::LBracket:
            return parseListBody(t.line);
          case Tok::LParen: {
            TermRef inner = parseExpr(1200);
            expect(Tok::RParen, "')'");
            return inner;
          }
          default:
            clare_fatal("unexpected token '%s' at line %d",
                        t.text.c_str(), t.line);
        }
    }

    TermRef
    parseListBody(int line)
    {
        if (lexer_.peek().kind == Tok::RBracket) {
            lexer_.take();
            return arena_.makeAtom(SymbolTable::kNil);
        }
        std::vector<TermRef> elems;
        elems.push_back(parseExpr(999));
        while (lexer_.peek().kind == Tok::Comma) {
            lexer_.take();
            elems.push_back(parseExpr(999));
        }
        TermRef tail = kNoTerm;
        if (lexer_.peek().kind == Tok::Bar) {
            lexer_.take();
            Token t = lexer_.peek();
            if (t.kind == Tok::Var) {
                lexer_.take();
                tail = makeVariable(t.text);
            } else if (t.kind == Tok::LBracket) {
                // [a|[b,c]] — splice the nested list.
                lexer_.take();
                TermRef nested = parseListBody(t.line);
                expect(Tok::RBracket, "']'");
                return spliceTail(std::move(elems), nested, line);
            } else {
                clare_fatal("list tail must be a variable or list "
                            "at line %d", t.line);
            }
        }
        expect(Tok::RBracket, "']'");
        return arena_.makeList(elems, tail);
    }

    TermRef
    spliceTail(std::vector<TermRef> elems, TermRef nested, int line)
    {
        if (arena_.kind(nested) == TermKind::Atom) {
            if (arena_.atomSymbol(nested) != SymbolTable::kNil)
                clare_fatal("list tail must be a list at line %d", line);
            return arena_.makeList(elems, kNoTerm);
        }
        clare_assert(arena_.kind(nested) == TermKind::List,
                     "nested tail must be a list node");
        for (std::uint32_t i = 0; i < arena_.arity(nested); ++i)
            elems.push_back(arena_.arg(nested, i));
        return arena_.makeList(elems, arena_.listTail(nested));
    }
};

} // namespace

ParsedTerm
TermReader::parseTerm(std::string_view text) const
{
    Lexer lexer(text);
    Parser parser(symbols_, lexer);
    ParsedTerm result;
    result.root = parser.parseExpr(1200);
    if (!parser.atEnd()) {
        // Tolerate one trailing end-of-clause dot.
        if (lexer.peek().kind == Tok::EndClause)
            lexer.take();
        if (!parser.atEnd())
            clare_fatal("trailing input after term at line %d",
                        lexer.line());
    }
    result.varNames = parser.varNames();
    result.arena = std::move(parser.arena());
    return result;
}

Clause
TermReader::parseClause(std::string_view text) const
{
    Lexer lexer(text);
    Parser parser(symbols_, lexer);
    Clause clause = parser.parseClause();
    if (!parser.atEnd())
        clare_fatal("trailing input after clause at line %d",
                    lexer.line());
    return clause;
}

std::vector<Clause>
TermReader::parseProgram(std::string_view text) const
{
    std::vector<Clause> clauses;
    Lexer lexer(text);
    while (true) {
        if (lexer.peek().kind == Tok::End)
            break;
        Parser parser(symbols_, lexer);
        clauses.push_back(parser.parseClause());
    }
    return clauses;
}

ParsedQuery
TermReader::parseQuery(std::string_view text) const
{
    Lexer lexer(text);
    if (lexer.peek().kind == Tok::QueryNeck)
        lexer.take();
    Parser parser(symbols_, lexer);
    ParsedQuery result;
    result.goals = parser.parseGoals();
    if (lexer.peek().kind == Tok::EndClause)
        lexer.take();
    if (!parser.atEnd())
        clare_fatal("trailing input after query at line %d", lexer.line());
    result.varNames = parser.varNames();
    result.arena = std::move(parser.arena());
    return result;
}

} // namespace clare::term
