/**
 * @file
 * Canonical term keys and hashes for the retrieval caches.
 *
 * Two goals retrieve the same clauses whenever they are identical up
 * to a consistent renaming of their variables: p(X, Y) and p(A, B)
 * produce the same candidate and answer ordinals, while p(X, X)
 * (shared variable) does not.  The canonical key captures exactly
 * that equivalence: variables are numbered densely by first
 * occurrence, anonymous variables are always fresh (they can never be
 * shared), and every other node contributes its kind plus stable ids.
 *
 * canonicalKey() is an exact, collision-free byte string — the cache
 * key.  canonicalHash() is a 64-bit FNV-1a of the key for callers
 * that only need a fingerprint.
 */

#ifndef CLARE_TERM_CANONICAL_HH
#define CLARE_TERM_CANONICAL_HH

#include <cstdint>
#include <string>

#include "term/term.hh"

namespace clare::term {

/**
 * Exact renaming-invariant key of @p t.  Terms of possibly different
 * arenas have equal keys iff they are structurally equal up to a
 * consistent renaming of named variables.
 */
std::string canonicalKey(const TermArena &arena, TermRef t);

/** 64-bit FNV-1a hash of canonicalKey(). */
std::uint64_t canonicalHash(const TermArena &arena, TermRef t);

} // namespace clare::term

#endif // CLARE_TERM_CANONICAL_HH
