/**
 * @file
 * Synthetic query generation against generated knowledge bases.
 *
 * Queries are derived from stored clause heads so that a controllable
 * fraction has non-empty answer sets: a generated query takes an
 * existing head and rewrites each argument as either the original
 * ground value (a bound argument), a fresh variable, a shared
 * variable, or a perturbed value (guaranteeing mismatches).
 */

#ifndef CLARE_WORKLOAD_QUERY_GENERATOR_HH
#define CLARE_WORKLOAD_QUERY_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "support/random.hh"
#include "term/clause.hh"
#include "term/symbol_table.hh"
#include "term/term.hh"

namespace clare::workload {

/** Parameters of query synthesis. */
struct QuerySpec
{
    double boundArgProb = 0.5;      ///< keep the original argument
    double sharedVarProb = 0.1;     ///< variable repeated across args
    double perturbProb = 0.1;       ///< replace with a mismatching atom
    std::uint64_t seed = 99;
};

/** A generated query goal. */
struct GeneratedQuery
{
    term::TermArena arena;
    term::TermRef goal = term::kNoTerm;
};

/** Generates query goals from a program's clause heads. */
class QueryGenerator
{
  public:
    QueryGenerator(term::SymbolTable &symbols, const QuerySpec &spec)
        : symbols_(symbols), spec_(spec), rng_(spec.seed)
    {}

    /**
     * Build one query against @p pred using a random clause of
     * @p program as the template.
     */
    GeneratedQuery generate(const term::Program &program,
                            const term::PredicateId &pred);

  private:
    term::SymbolTable &symbols_;
    QuerySpec spec_;
    Rng rng_;
};

} // namespace clare::workload

#endif // CLARE_WORKLOAD_QUERY_GENERATOR_HH
