#include "workload/query_generator.hh"

#include "support/logging.hh"

namespace clare::workload {

using term::TermArena;
using term::TermRef;

GeneratedQuery
QueryGenerator::generate(const term::Program &program,
                         const term::PredicateId &pred)
{
    const auto &ordinals = program.clausesOf(pred);
    clare_assert(!ordinals.empty(), "no clauses for query template");
    const term::Clause &tmpl = program.clause(
        ordinals[rng_.below(ordinals.size())]);

    GeneratedQuery out;
    TermRef head = out.arena.import(tmpl.arena(), tmpl.head(),
                                    /*var_offset=*/0);
    std::uint32_t arity = out.arena.arity(head);

    std::uint32_t next_var = out.arena.varCeiling();
    std::vector<term::VarId> shared_pool;
    std::vector<TermRef> args;
    args.reserve(arity);

    for (std::uint32_t i = 0; i < arity; ++i) {
        TermRef orig = out.arena.arg(head, i);
        double roll = rng_.uniform();
        if (roll < spec_.boundArgProb) {
            args.push_back(orig);
            continue;
        }
        roll -= spec_.boundArgProb;
        if (roll < spec_.perturbProb) {
            args.push_back(out.arena.makeAtom(symbols_.intern(
                "zzz_mismatch_" + std::to_string(rng_.below(1u << 20)))));
            continue;
        }
        roll -= spec_.perturbProb;
        if (!shared_pool.empty() && rng_.chance(spec_.sharedVarProb)) {
            term::VarId v = rng_.pick(shared_pool);
            args.push_back(out.arena.makeVar(
                v, symbols_.intern("Q" + std::to_string(v))));
            continue;
        }
        term::VarId v = next_var++;
        shared_pool.push_back(v);
        args.push_back(out.arena.makeVar(
            v, symbols_.intern("Q" + std::to_string(v))));
    }

    term::SymbolId functor = pred.arity == 0
        ? pred.functor : out.arena.functor(head);
    out.goal = arity == 0
        ? out.arena.makeAtom(functor)
        : out.arena.makeStruct(functor, args);
    return out;
}

} // namespace clare::workload
