/**
 * @file
 * Synthetic knowledge-base generation.
 *
 * The paper's target scale comes from D.H.D. Warren's medium-size
 * estimate — "of the order of 3000 predicates, 30000 rules, 3000000
 * facts, and 30 Mbytes total size" — and its benchmarks [6,7] sweep
 * database size and fact/rule mix.  These generators produce KBs with
 * controlled predicate counts, arity, constant vocabulary, structure
 * and list density, variable density, shared-variable probability and
 * rule fraction, all deterministically seeded; plus a concrete family
 * KB featuring the motivating married_couple predicate.
 */

#ifndef CLARE_WORKLOAD_KB_GENERATOR_HH
#define CLARE_WORKLOAD_KB_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/random.hh"
#include "term/clause.hh"
#include "term/symbol_table.hh"

namespace clare::workload {

/** Parameters of a synthetic knowledge base. */
struct KbSpec
{
    std::uint32_t predicates = 4;
    std::uint32_t clausesPerPredicate = 1000;
    std::uint32_t arityMin = 2;
    std::uint32_t arityMax = 4;
    std::uint32_t atomVocabulary = 200;     ///< distinct constants
    std::uint32_t integerRange = 1000;      ///< ints drawn from [0, n)
    double structProb = 0.15;   ///< argument is a structure
    double listProb = 0.05;     ///< argument is a list
    double floatProb = 0.02;    ///< argument is a float
    double intProb = 0.15;      ///< argument is an integer
    double varProb = 0.0;       ///< argument is a variable (non-ground)
    double sharedVarProb = 0.0; ///< a new variable reuses an earlier one
    double ruleFraction = 0.0;  ///< clauses that carry a body
    std::uint32_t structArityMax = 3;
    std::uint32_t listLenMax = 4;
    std::uint64_t seed = 1;

    /** Scaled-down Warren profile (ratios preserved, size bounded). */
    static KbSpec warren(std::uint32_t facts_per_predicate,
                         std::uint32_t predicates);
};

/** Generates programs from a spec. */
class KbGenerator
{
  public:
    explicit KbGenerator(term::SymbolTable &symbols)
        : symbols_(symbols)
    {}

    /** Generate a full synthetic program. */
    term::Program generate(const KbSpec &spec);

    /**
     * Generate one predicate's clauses (functor "p<index>") into an
     * existing program.
     */
    void generatePredicate(term::Program &program, const KbSpec &spec,
                           std::uint32_t index, Rng &rng);

    /**
     * A family knowledge base: person/parent facts plus the
     * married_couple/2 predicate (including some reflexive couples so
     * the shared-variable query has genuine answers) and ancestor
     * rules.
     *
     * @param families number of family units generated
     */
    term::Program generateFamily(std::uint32_t families,
                                 std::uint64_t seed = 7);

  private:
    term::SymbolTable &symbols_;

    term::TermRef makeArg(term::TermArena &arena, const KbSpec &spec,
                          Rng &rng, std::uint32_t &next_var,
                          std::vector<term::VarId> &used_vars,
                          int depth);
};

} // namespace clare::workload

#endif // CLARE_WORKLOAD_KB_GENERATOR_HH
