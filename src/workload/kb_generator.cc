#include "workload/kb_generator.hh"

#include "support/logging.hh"

namespace clare::workload {

using term::TermArena;
using term::TermRef;

KbSpec
KbSpec::warren(std::uint32_t facts_per_predicate,
               std::uint32_t predicates)
{
    // Warren's profile: 3000 predicates, 30000 rules, 3000000 facts —
    // i.e. ~1000 facts and ~10 rules per predicate, so a rule fraction
    // of about 1%.
    KbSpec spec;
    spec.predicates = predicates;
    spec.clausesPerPredicate = facts_per_predicate;
    spec.ruleFraction = 0.01;
    spec.varProb = 0.02;
    spec.structProb = 0.2;
    spec.listProb = 0.05;
    spec.arityMin = 2;
    spec.arityMax = 5;
    spec.atomVocabulary = 500;
    return spec;
}

TermRef
KbGenerator::makeArg(TermArena &arena, const KbSpec &spec, Rng &rng,
                     std::uint32_t &next_var,
                     std::vector<term::VarId> &used_vars, int depth)
{
    double roll = rng.uniform();

    if (roll < spec.varProb) {
        // A variable argument; possibly a reuse of an earlier one.
        if (!used_vars.empty() && rng.chance(spec.sharedVarProb)) {
            term::VarId v = rng.pick(used_vars);
            return arena.makeVar(v, symbols_.intern(
                "V" + std::to_string(v)));
        }
        term::VarId v = next_var++;
        used_vars.push_back(v);
        return arena.makeVar(v, symbols_.intern("V" + std::to_string(v)));
    }
    roll -= spec.varProb;

    if (depth < 2 && roll < spec.structProb) {
        std::uint32_t arity = static_cast<std::uint32_t>(
            rng.range(1, spec.structArityMax));
        term::SymbolId functor = symbols_.intern(
            "f" + std::to_string(rng.below(spec.atomVocabulary / 4 + 1)));
        std::vector<TermRef> args;
        for (std::uint32_t i = 0; i < arity; ++i)
            args.push_back(makeArg(arena, spec, rng, next_var, used_vars,
                                   depth + 1));
        return arena.makeStruct(functor, args);
    }
    roll -= spec.structProb;

    if (depth < 2 && roll < spec.listProb) {
        std::uint32_t len = static_cast<std::uint32_t>(
            rng.range(1, spec.listLenMax));
        std::vector<TermRef> elems;
        for (std::uint32_t i = 0; i < len; ++i)
            elems.push_back(makeArg(arena, spec, rng, next_var,
                                    used_vars, depth + 1));
        return arena.makeList(elems);
    }
    roll -= spec.listProb;

    if (roll < spec.intProb)
        return arena.makeInt(static_cast<std::int64_t>(
            rng.below(spec.integerRange)));
    roll -= spec.intProb;

    if (roll < spec.floatProb)
        return arena.makeFloat(symbols_.internFloat(
            static_cast<double>(rng.below(1000)) / 8.0));

    return arena.makeAtom(symbols_.intern(
        "a" + std::to_string(rng.below(spec.atomVocabulary))));
}

void
KbGenerator::generatePredicate(term::Program &program, const KbSpec &spec,
                               std::uint32_t index, Rng &rng)
{
    std::string functor_name = "p" + std::to_string(index);
    term::SymbolId functor = symbols_.intern(functor_name);
    std::uint32_t arity = static_cast<std::uint32_t>(
        rng.range(spec.arityMin, spec.arityMax));

    for (std::uint32_t c = 0; c < spec.clausesPerPredicate; ++c) {
        TermArena arena;
        std::uint32_t next_var = 0;
        std::vector<term::VarId> used_vars;
        std::vector<TermRef> args;
        for (std::uint32_t a = 0; a < arity; ++a)
            args.push_back(makeArg(arena, spec, rng, next_var, used_vars,
                                   0));
        TermRef head = arena.makeStruct(functor, args);

        std::vector<TermRef> body;
        if (rng.chance(spec.ruleFraction)) {
            // A one-goal body calling the same predicate with fresh
            // variables (rule heads share the head's variables too).
            std::vector<TermRef> goal_args;
            for (std::uint32_t a = 0; a < arity; ++a) {
                term::VarId v = next_var++;
                goal_args.push_back(arena.makeVar(
                    v, symbols_.intern("B" + std::to_string(v))));
            }
            body.push_back(arena.makeStruct(functor, goal_args));
        }
        program.add(term::Clause(std::move(arena), head,
                                 std::move(body)));
    }
}

term::Program
KbGenerator::generate(const KbSpec &spec)
{
    term::Program program;
    Rng rng(spec.seed);
    for (std::uint32_t p = 0; p < spec.predicates; ++p)
        generatePredicate(program, spec, p, rng);
    return program;
}

term::Program
KbGenerator::generateFamily(std::uint32_t families, std::uint64_t seed)
{
    term::Program program;
    Rng rng(seed);
    term::SymbolId married = symbols_.intern("married_couple");
    term::SymbolId parent = symbols_.intern("parent");
    term::SymbolId person = symbols_.intern("person");

    auto name = [&](const char *stem, std::uint32_t i) {
        return symbols_.intern(std::string(stem) + std::to_string(i));
    };

    for (std::uint32_t f = 0; f < families; ++f) {
        term::SymbolId husband = name("h", f);
        term::SymbolId wife = name("w", f);

        {
            TermArena arena;
            TermRef args[] = {arena.makeAtom(husband),
                              arena.makeAtom(wife)};
            TermRef head = arena.makeStruct(married, args);
            program.add(term::Clause(std::move(arena), head, {}));
        }
        // A small fraction of "couples" share a single entry — the
        // married_couple(S,S) query's true answers.
        if (rng.chance(0.02)) {
            TermArena arena;
            term::SymbolId solo = name("s", f);
            TermRef args[] = {arena.makeAtom(solo), arena.makeAtom(solo)};
            TermRef head = arena.makeStruct(married, args);
            program.add(term::Clause(std::move(arena), head, {}));
        }

        std::uint32_t children = static_cast<std::uint32_t>(
            rng.range(0, 3));
        for (std::uint32_t c = 0; c < children; ++c) {
            term::SymbolId child = symbols_.intern(
                "c" + std::to_string(f) + "_" + std::to_string(c));
            for (term::SymbolId par : {husband, wife}) {
                TermArena arena;
                TermRef args[] = {arena.makeAtom(par),
                                  arena.makeAtom(child)};
                TermRef head = arena.makeStruct(parent, args);
                program.add(term::Clause(std::move(arena), head, {}));
            }
            TermArena arena;
            TermRef arg = arena.makeAtom(child);
            TermRef head = arena.makeStruct(person,
                                            std::span(&arg, 1));
            program.add(term::Clause(std::move(arena), head, {}));
        }
    }

    // ancestor/2 rules: the classic mixed relation (rules in the same
    // predicate space as disk-resident facts elsewhere).
    term::SymbolId ancestor = symbols_.intern("ancestor");
    {
        TermArena arena;
        TermRef x = arena.makeVar(0, symbols_.intern("X"));
        TermRef y = arena.makeVar(1, symbols_.intern("Y"));
        TermRef head_args[] = {x, y};
        TermRef head = arena.makeStruct(ancestor, head_args);
        TermRef x2 = arena.makeVar(0, symbols_.intern("X"));
        TermRef y2 = arena.makeVar(1, symbols_.intern("Y"));
        TermRef goal_args[] = {x2, y2};
        TermRef goal = arena.makeStruct(parent, goal_args);
        program.add(term::Clause(std::move(arena), head, {goal}));
    }
    {
        TermArena arena;
        TermRef x = arena.makeVar(0, symbols_.intern("X"));
        TermRef y = arena.makeVar(1, symbols_.intern("Y"));
        TermRef z = arena.makeVar(2, symbols_.intern("Z"));
        TermRef head_args[] = {x, y};
        TermRef head = arena.makeStruct(ancestor, head_args);
        TermRef g1_args[] = {arena.makeVar(0, symbols_.intern("X")),
                             arena.makeVar(2, symbols_.intern("Z"))};
        TermRef g1 = arena.makeStruct(parent, g1_args);
        TermRef g2_args[] = {arena.makeVar(2, symbols_.intern("Z")),
                             arena.makeVar(1, symbols_.intern("Y"))};
        TermRef g2 = arena.makeStruct(ancestor, g2_args);
        program.add(term::Clause(std::move(arena), head, {g1, g2}));
        (void)y;
        (void)z;
    }
    return program;
}

} // namespace clare::workload
