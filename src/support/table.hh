/**
 * @file
 * ASCII table rendering for benchmark harnesses.
 *
 * The benches reproduce the paper's tables (Table 1, the figure timing
 * breakdowns, etc.) and print them in an aligned, titled format so the
 * output can be compared side by side with the published numbers.
 */

#ifndef CLARE_SUPPORT_TABLE_HH
#define CLARE_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace clare {

/** An aligned ASCII table with a title, a header row, and data rows. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers (defines the column count). */
    void header(std::vector<std::string> cols);

    /** Append a data row; must match the header column count. */
    void row(std::vector<std::string> cells);

    /** Append a separator rule between row groups. */
    void rule();

    /** Render with box-drawing, padded to column widths. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

    /** Format a double with the given precision (helper for cells). */
    static std::string num(double v, int precision = 2);

    /** Format an integer (helper for cells). */
    static std::string num(std::uint64_t v);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool isRule = false;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace clare

#endif // CLARE_SUPPORT_TABLE_HH
