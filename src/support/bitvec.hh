/**
 * @file
 * A fixed-width dynamic bit vector used for superimposed codewords.
 *
 * std::bitset needs a compile-time width, but codeword width is an
 * experiment parameter (the false-drop bench sweeps it), so codewords
 * are built on this small runtime-width vector instead.
 */

#ifndef CLARE_SUPPORT_BITVEC_HH
#define CLARE_SUPPORT_BITVEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace clare {

/** Runtime-width bit vector with the operations codeword matching needs. */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct an all-zero vector of the given width in bits. */
    explicit BitVec(std::size_t width);

    std::size_t width() const { return width_; }

    void set(std::size_t bit);
    void clear(std::size_t bit);
    bool test(std::size_t bit) const;

    /** Number of set bits. */
    std::size_t popcount() const;

    /** True if no bit is set. */
    bool none() const;

    /** this |= other (widths must match). */
    BitVec &operator|=(const BitVec &other);

    /** this &= other (widths must match). */
    BitVec &operator&=(const BitVec &other);

    /**
     * Codeword inclusion test: every set bit of this is also set in
     * other.  This is the superimposed-codeword match condition
     * (query-code subset of clause-code).
     */
    bool subsetOf(const BitVec &other) const;

    /**
     * `(a & ~b) == 0`, word-wise with early exit — the FS1 match
     * plane's per-field AND condition.  Equivalent to a.subsetOf(b);
     * exposed by name so the matcher code reads like the hardware
     * equation.  Widths must match.
     */
    static bool andNotIsZero(const BitVec &a, const BitVec &b);

    /** Number of 64-bit words backing this vector. */
    std::size_t wordCount() const { return words_.size(); }

    /** Word @p i of the backing storage (bit b lives in word b/64). */
    std::uint64_t word(std::size_t i) const { return words_[i]; }

    bool operator==(const BitVec &other) const;

    /** Binary rendering, most significant word first (for debugging). */
    std::string toString() const;

    /** Serialize into a byte stream (little endian words). */
    void serialize(std::vector<std::uint8_t> &out) const;

    /** Deserialize width bits from a byte stream at offset; advances it. */
    static BitVec deserialize(const std::vector<std::uint8_t> &in,
                              std::size_t &offset, std::size_t width);

    /**
     * In-place deserialize: overwrite this vector with @p width bits
     * read at @p offset (advanced past them).  Reuses the backing
     * words when the width already matches, so a scan loop decoding
     * entries into a scratch vector performs no per-entry allocation.
     */
    void deserializeInto(const std::vector<std::uint8_t> &in,
                         std::size_t &offset, std::size_t width);

    /** Number of bytes the serialized form occupies for a given width. */
    static std::size_t serializedBytes(std::size_t width);

  private:
    std::size_t width_ = 0;
    std::vector<std::uint64_t> words_;

    void checkBit(std::size_t bit) const;
};

} // namespace clare

#endif // CLARE_SUPPORT_BITVEC_HH
