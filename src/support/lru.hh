/**
 * @file
 * A small intrusive-free LRU cache template — the shared substrate of
 * the retrieval cache hierarchy (L1 disk track cache, L2 signature /
 * survivor memos, L3 goal-result cache).
 *
 * The template is deliberately minimal and NOT thread-safe: every
 * owner wraps it in its own mutex, because the locking granularity
 * differs per level (the disk model locks per read, the goal cache
 * locks per retrieval).  Eviction is strict least-recently-used:
 * get() and put() both promote the touched entry to most-recent.
 */

#ifndef CLARE_SUPPORT_LRU_HH
#define CLARE_SUPPORT_LRU_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace clare::support {

/**
 * Capacity-bounded LRU map.  Keys must be hashable and equality-
 * comparable; values are stored by copy/move.  A capacity of 0 makes
 * every operation a no-op (the disabled state), so callers can keep
 * one code path for "cache off" and "cache on".
 */
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache
{
  public:
    explicit LruCache(std::size_t capacity = 0) : capacity_(capacity) {}

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return order_.size(); }
    bool enabled() const { return capacity_ > 0; }

    /** Cumulative evictions since construction or clear(). */
    std::uint64_t evictions() const { return evictions_; }

    /** Look up and promote; nullptr on miss (pointer stays valid
     *  until the next mutating call). */
    Value *
    get(const Key &key)
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return nullptr;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->second;
    }

    /** Lookup without promotion (for prediction passes). */
    bool
    contains(const Key &key) const
    {
        return map_.find(key) != map_.end();
    }

    /**
     * Insert or overwrite, promoting to most-recent.  Returns true
     * when the insertion evicted the least-recent entry.
     */
    bool
    put(Key key, Value value)
    {
        if (capacity_ == 0)
            return false;
        auto it = map_.find(key);
        if (it != map_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return false;
        }
        bool evicted = false;
        if (order_.size() >= capacity_) {
            map_.erase(order_.back().first);
            order_.pop_back();
            ++evictions_;
            evicted = true;
        }
        order_.emplace_front(std::move(key), std::move(value));
        map_.emplace(order_.front().first, order_.begin());
        return evicted;
    }

    /** Remove one entry; false when absent. */
    bool
    erase(const Key &key)
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return false;
        order_.erase(it->second);
        map_.erase(it);
        return true;
    }

    /**
     * Remove every entry whose (key, value) satisfies @p pred — the
     * per-predicate invalidation primitive.  Returns the number of
     * entries removed.
     */
    template <typename Pred>
    std::size_t
    eraseIf(Pred pred)
    {
        std::size_t removed = 0;
        for (auto it = order_.begin(); it != order_.end();) {
            if (pred(it->first, it->second)) {
                map_.erase(it->first);
                it = order_.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
        return removed;
    }

    void
    clear()
    {
        map_.clear();
        order_.clear();
    }

  private:
    std::size_t capacity_;
    std::uint64_t evictions_ = 0;
    /** Most-recent first. */
    std::list<std::pair<Key, Value>> order_;
    std::unordered_map<Key,
                       typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        map_;
};

} // namespace clare::support

#endif // CLARE_SUPPORT_LRU_HH
