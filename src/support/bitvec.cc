#include "support/bitvec.hh"

#include <algorithm>
#include <bit>

#include "support/logging.hh"

namespace clare {

BitVec::BitVec(std::size_t width)
    : width_(width), words_((width + 63) / 64, 0)
{
}

void
BitVec::checkBit(std::size_t bit) const
{
    clare_assert(bit < width_, "bit %zu out of range (width %zu)",
                 bit, width_);
}

void
BitVec::set(std::size_t bit)
{
    checkBit(bit);
    words_[bit / 64] |= (std::uint64_t{1} << (bit % 64));
}

void
BitVec::clear(std::size_t bit)
{
    checkBit(bit);
    words_[bit / 64] &= ~(std::uint64_t{1} << (bit % 64));
}

bool
BitVec::test(std::size_t bit) const
{
    checkBit(bit);
    return (words_[bit / 64] >> (bit % 64)) & 1;
}

std::size_t
BitVec::popcount() const
{
    std::size_t n = 0;
    for (std::uint64_t w : words_)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

bool
BitVec::none() const
{
    for (std::uint64_t w : words_)
        if (w)
            return false;
    return true;
}

BitVec &
BitVec::operator|=(const BitVec &other)
{
    clare_assert(width_ == other.width_, "width mismatch %zu vs %zu",
                 width_, other.width_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
    return *this;
}

BitVec &
BitVec::operator&=(const BitVec &other)
{
    clare_assert(width_ == other.width_, "width mismatch %zu vs %zu",
                 width_, other.width_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
    return *this;
}

bool
BitVec::subsetOf(const BitVec &other) const
{
    return andNotIsZero(*this, other);
}

bool
BitVec::andNotIsZero(const BitVec &a, const BitVec &b)
{
    clare_assert(a.width_ == b.width_, "width mismatch %zu vs %zu",
                 a.width_, b.width_);
    for (std::size_t i = 0; i < a.words_.size(); ++i)
        if (a.words_[i] & ~b.words_[i])
            return false;
    return true;
}

bool
BitVec::operator==(const BitVec &other) const
{
    return width_ == other.width_ && words_ == other.words_;
}

std::string
BitVec::toString() const
{
    std::string s;
    s.reserve(width_);
    for (std::size_t i = width_; i-- > 0;)
        s.push_back(test(i) ? '1' : '0');
    return s;
}

void
BitVec::serialize(std::vector<std::uint8_t> &out) const
{
    std::size_t bytes = serializedBytes(width_);
    for (std::size_t b = 0; b < bytes; ++b) {
        std::size_t word = b / 8;
        std::size_t shift = (b % 8) * 8;
        out.push_back(static_cast<std::uint8_t>(words_[word] >> shift));
    }
}

BitVec
BitVec::deserialize(const std::vector<std::uint8_t> &in,
                    std::size_t &offset, std::size_t width)
{
    BitVec v;
    v.deserializeInto(in, offset, width);
    return v;
}

void
BitVec::deserializeInto(const std::vector<std::uint8_t> &in,
                        std::size_t &offset, std::size_t width)
{
    if (width_ != width) {
        width_ = width;
        words_.resize((width + 63) / 64);
    }
    std::fill(words_.begin(), words_.end(), 0);
    std::size_t bytes = serializedBytes(width);
    clare_assert(offset + bytes <= in.size(),
                 "bitvec deserialize overrun at offset %zu", offset);
    for (std::size_t b = 0; b < bytes; ++b) {
        std::size_t word = b / 8;
        std::size_t shift = (b % 8) * 8;
        words_[word] |= static_cast<std::uint64_t>(in[offset + b]) << shift;
    }
    offset += bytes;
}

std::size_t
BitVec::serializedBytes(std::size_t width)
{
    return (width + 7) / 8;
}

} // namespace clare
