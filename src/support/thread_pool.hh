/**
 * @file
 * A reusable worker pool for the parallel retrieval pipeline.
 *
 * Two primitives cover every use in the simulator:
 *
 *  - async(fn): run a callable on a worker thread, returning a future
 *    for its result.  The retrieval server uses this to overlap the
 *    FS1 index scan of query k+1 with the FS2 filtering and host
 *    unification of query k.
 *
 *  - parallelFor(count, fn): apply fn(i) for i in [0, count) across
 *    the workers.  The *calling* thread participates in the loop, so
 *    the construct is deadlock-free even when issued from inside a
 *    worker task or when every worker is busy: the caller can always
 *    drain the remaining indices itself.
 *
 * Iteration order across threads is unspecified; callers that need
 * deterministic output must write into per-index slots and merge in
 * index order (the FS1 shard scan does exactly this).
 */

#ifndef CLARE_SUPPORT_THREAD_POOL_HH
#define CLARE_SUPPORT_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace clare::support {

class ThreadPool
{
  public:
    /**
     * @param threads number of worker threads; 0 makes every
     *        operation run inline on the calling thread (useful for
     *        forcing the sequential path in tests)
     */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const { return workers_; }

    /** Run @p fn on a worker (inline when the pool has no workers). */
    template <typename F>
    auto
    async(F fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::move(fn));
        std::future<R> result = task->get_future();
        if (workers_ == 0) {
            (*task)();
            return result;
        }
        enqueue([task] { (*task)(); });
        return result;
    }

    /**
     * Apply @p fn to every index in [0, count).  Blocks until all
     * indices are done; the calling thread works alongside the pool.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

  private:
    struct ForState;

    void enqueue(std::function<void()> job);
    void workerLoop();
    static void runIndices(ForState &state);

    unsigned workers_ = 0;
    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> jobs_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

} // namespace clare::support

#endif // CLARE_SUPPORT_THREAD_POOL_HH
