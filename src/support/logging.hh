/**
 * @file
 * Status and error reporting for the CLARE simulator.
 *
 * Follows the gem5 convention: panic() marks an internal simulator bug
 * and aborts; fatal() marks a user error (bad configuration, malformed
 * input) and throws a FatalError so that embedders and tests can catch
 * it; warn() and inform() report non-fatal conditions to stderr.
 */

#ifndef CLARE_SUPPORT_LOGGING_HH
#define CLARE_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

#include "support/errors.hh"

namespace clare {

/** Exception thrown by fatal() for user-level errors. */
class FatalError : public Error
{
  public:
    explicit FatalError(const std::string &msg)
        : Error(msg)
    {}
};

namespace detail {

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Report an internal simulator bug and abort.  Use only for conditions
 * that should never occur regardless of user input.
 */
[[noreturn]] void panicAt(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Report a user error (bad configuration, malformed knowledge base,
 * invalid query) by throwing FatalError.
 */
[[noreturn]] void fatalAt(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Report a suspicious but survivable condition on stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status on stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benches). */
void setQuiet(bool quiet);

#define clare_panic(...) ::clare::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define clare_fatal(...) ::clare::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an invariant; failure is a simulator bug (panics). */
#define clare_assert(cond, fmt, ...)                                         \
    do {                                                                     \
        if (!(cond))                                                         \
            ::clare::panicAt(__FILE__, __LINE__,                             \
                             "assertion '%s' failed: " fmt,                  \
                             #cond __VA_OPT__(,) __VA_ARGS__);               \
    } while (0)

} // namespace clare

#endif // CLARE_SUPPORT_LOGGING_HH
