#include "support/stats.hh"

#include <algorithm>
#include <iomanip>

namespace clare {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

double
Distribution::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

Scalar &
StatGroup::scalar(const std::string &name, const std::string &desc)
{
    auto it = scalars_.find(name);
    if (it == scalars_.end()) {
        order_.push_back(name);
        it = scalars_.emplace(name, ScalarEntry{Scalar{}, desc}).first;
    }
    return it->second.stat;
}

Distribution &
StatGroup::distribution(const std::string &name, const std::string &desc)
{
    auto it = dists_.find(name);
    if (it == dists_.end()) {
        order_.push_back(name);
        it = dists_.emplace(name, DistEntry{Distribution{}, desc}).first;
    }
    return it->second.stat;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &name : order_) {
        auto sit = scalars_.find(name);
        if (sit != scalars_.end()) {
            os << std::left << std::setw(44) << (name_ + "." + name)
               << std::right << std::setw(16) << sit->second.stat.value();
            if (!sit->second.desc.empty())
                os << "  # " << sit->second.desc;
            os << '\n';
            continue;
        }
        auto dit = dists_.find(name);
        if (dit != dists_.end()) {
            const Distribution &d = dit->second.stat;
            os << std::left << std::setw(44)
               << (name_ + "." + name + ".mean")
               << std::right << std::setw(16) << d.mean();
            if (!dit->second.desc.empty())
                os << "  # " << dit->second.desc;
            os << '\n';
            os << std::left << std::setw(44)
               << (name_ + "." + name + ".count")
               << std::right << std::setw(16) << d.count() << '\n';
        }
    }
}

void
StatGroup::reset()
{
    for (auto &kv : scalars_)
        kv.second.stat.reset();
    for (auto &kv : dists_)
        kv.second.stat.reset();
}

} // namespace clare
