#include "support/stats.hh"

#include <algorithm>
#include <iomanip>

namespace clare {

Distribution::Distribution(const Distribution &other)
{
    *this = other;
}

Distribution &
Distribution::operator=(const Distribution &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mutex_, other.mutex_);
    count_ = other.count_;
    sum_ = other.sum_;
    min_ = other.min_;
    max_ = other.max_;
    return *this;
}

void
Distribution::sample(double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Distribution::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

std::uint64_t
Distribution::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
Distribution::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double
Distribution::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return min_;
}

double
Distribution::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

double
Distribution::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

Scalar &
StatGroup::scalar(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = scalars_.find(name);
    if (it == scalars_.end()) {
        order_.push_back(name);
        it = scalars_.emplace(name, ScalarEntry{Scalar{}, desc}).first;
    }
    return it->second.stat;
}

Distribution &
StatGroup::distribution(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = dists_.find(name);
    if (it == dists_.end()) {
        order_.push_back(name);
        it = dists_.emplace(name, DistEntry{Distribution{}, desc}).first;
    }
    return it->second.stat;
}

void
StatGroup::dump(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &name : order_) {
        auto sit = scalars_.find(name);
        if (sit != scalars_.end()) {
            os << std::left << std::setw(44) << (name_ + "." + name)
               << std::right << std::setw(16) << sit->second.stat.value();
            if (!sit->second.desc.empty())
                os << "  # " << sit->second.desc;
            os << '\n';
            continue;
        }
        auto dit = dists_.find(name);
        if (dit != dists_.end()) {
            const Distribution &d = dit->second.stat;
            os << std::left << std::setw(44)
               << (name_ + "." + name + ".mean")
               << std::right << std::setw(16) << d.mean();
            if (!dit->second.desc.empty())
                os << "  # " << dit->second.desc;
            os << '\n';
            os << std::left << std::setw(44)
               << (name_ + "." + name + ".count")
               << std::right << std::setw(16) << d.count() << '\n';
        }
    }
}

void
StatGroup::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &kv : scalars_)
        kv.second.stat.reset();
    for (auto &kv : dists_)
        kv.second.stat.reset();
}

} // namespace clare
