/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for the
 * checksummed on-disk page framing and the runtime DMA integrity
 * checks.  CRC-32 detects every single-bit and every burst error up
 * to 32 bits within a page, which covers the fault model's injected
 * bit flips exactly.
 */

#ifndef CLARE_SUPPORT_CRC32_HH
#define CLARE_SUPPORT_CRC32_HH

#include <cstdint>
#include <vector>

namespace clare::support {

/**
 * Page granularity shared by the on-disk framing and the runtime
 * integrity checks: one checksum per 4 KB page.
 */
constexpr std::uint32_t kChecksumPageBytes = 4096;

/** CRC-32 of a byte range; chainable via @p seed (pass a prior crc). */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size,
                    std::uint32_t seed = 0);

/**
 * One CRC-32 per @p page_bytes page of @p data (the final page may be
 * short).  An empty range yields an empty vector.
 */
std::vector<std::uint32_t> pageChecksums(
    const std::uint8_t *data, std::size_t size,
    std::uint32_t page_bytes = kChecksumPageBytes);

} // namespace clare::support

#endif // CLARE_SUPPORT_CRC32_HH
