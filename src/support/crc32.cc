#include "support/crc32.hh"

#include <array>

#include "support/logging.hh"

namespace clare::support {

namespace {

std::array<std::uint32_t, 256>
buildTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = buildTable();
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::vector<std::uint32_t>
pageChecksums(const std::uint8_t *data, std::size_t size,
              std::uint32_t page_bytes)
{
    clare_assert(page_bytes > 0, "checksum pages must be non-empty");
    std::vector<std::uint32_t> crcs;
    crcs.reserve((size + page_bytes - 1) / page_bytes);
    for (std::size_t at = 0; at < size; at += page_bytes) {
        std::size_t n = std::min<std::size_t>(page_bytes, size - at);
        crcs.push_back(crc32(data + at, n));
    }
    return crcs;
}

} // namespace clare::support
