#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace clare {

namespace {
bool quietMode = false;
} // namespace

namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw FatalError(detail::format("fatal: %s @ %s:%d", msg.c_str(),
                                    file, line));
}

void
warnImpl(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

void
panicAt(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::panicImpl(file, line, msg);
}

void
fatalAt(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::fatalImpl(file, line, msg);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::warnImpl(msg);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::informImpl(msg);
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace clare
