#include "support/obs.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace clare::obs {

// ---------------------------------------------------------------------
// Tracer.
// ---------------------------------------------------------------------

void
Tracer::record(SpanRecord rec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(rec));
}

std::vector<SpanRecord>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::size_t
Tracer::spanCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
}

std::uint64_t
Tracer::sinceEpochNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

// ---------------------------------------------------------------------
// ScopedSpan.
// ---------------------------------------------------------------------

namespace {

/** The innermost open span of this thread (implicit parenting). */
thread_local SpanId tCurrentSpan = 0;

} // namespace

SpanId
currentSpan()
{
    return tCurrentSpan;
}

ScopedSpan::ScopedSpan(Tracer *tracer, std::string name)
{
    open(tracer, std::move(name), tCurrentSpan);
}

ScopedSpan::ScopedSpan(Tracer *tracer, std::string name, SpanId parent)
{
    open(tracer, std::move(name), parent);
}

void
ScopedSpan::open(Tracer *tracer, std::string name, SpanId parent)
{
    if (tracer == nullptr)
        return;
    tracer_ = tracer;
    open_ = true;
    rec_.id = tracer->allocate();
    rec_.parent = parent;
    rec_.name = std::move(name);
    rec_.wallStartNs = tracer->sinceEpochNs();
    prevCurrent_ = tCurrentSpan;
    tCurrentSpan = rec_.id;
}

ScopedSpan &
ScopedSpan::attr(std::string key, AttrValue value)
{
    if (open_)
        rec_.attrs.push_back(SpanAttr{std::move(key), std::move(value)});
    return *this;
}

void
ScopedSpan::finish()
{
    if (!open_)
        return;
    open_ = false;
    rec_.wallNs = tracer_->sinceEpochNs() - rec_.wallStartNs;
    tCurrentSpan = prevCurrent_;
    tracer_->record(std::move(rec_));
}

// ---------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1)
{
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        clare_assert(bounds_[i - 1] < bounds_[i],
                     "histogram bounds must be ascending");
}

void
Histogram::record(double v)
{
    std::size_t bucket = static_cast<std::size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    // upper_bound finds the first bound strictly greater; a sample
    // exactly on a bound belongs to that bound's bucket.
    if (bucket > 0 && bounds_[bucket - 1] == v)
        --bucket;
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t expected = sumBits_.load(std::memory_order_relaxed);
    while (true) {
        double updated = std::bit_cast<double>(expected) + v;
        if (sumBits_.compare_exchange_weak(
                expected, std::bit_cast<std::uint64_t>(updated),
                std::memory_order_relaxed)) {
            break;
        }
    }
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    clare_assert(i < counts_.size(), "histogram bucket %zu out of range",
                 i);
    return counts_[i].load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return std::bit_cast<double>(
        sumBits_.load(std::memory_order_relaxed));
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sumBits_.store(0, std::memory_order_relaxed);
}

std::vector<double>
Histogram::exponential(double first, double factor, std::size_t n)
{
    clare_assert(first > 0 && factor > 1,
                 "exponential bounds need first > 0 and factor > 1");
    std::vector<double> bounds;
    bounds.reserve(n);
    double v = first;
    for (std::size_t i = 0; i < n; ++i) {
        bounds.push_back(v);
        v *= factor;
    }
    return bounds;
}

double
histogramPercentile(const Histogram &h, double q)
{
    clare_assert(q >= 0.0 && q <= 1.0, "quantile %f out of [0,1]", q);
    std::uint64_t total = h.count();
    if (total == 0)
        return 0.0;
    // Rank of the target sample (1-based, ceil so q=1 is the max).
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (rank == 0)
        rank = 1;

    const std::vector<double> &bounds = h.bounds();
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < h.buckets(); ++i) {
        std::uint64_t in_bucket = h.bucketCount(i);
        if (seen + in_bucket < rank) {
            seen += in_bucket;
            continue;
        }
        if (i >= bounds.size())    // overflow bucket: pin to last bound
            return bounds.empty() ? 0.0 : bounds.back();
        double lo = i == 0 ? 0.0 : bounds[i - 1];
        double hi = bounds[i];
        double frac = static_cast<double>(rank - seen) /
            static_cast<double>(in_bucket);
        return lo + (hi - lo) * frac;
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

// ---------------------------------------------------------------------
// MetricsRegistry.
// ---------------------------------------------------------------------

namespace {

template <typename Entries, typename Make>
auto &
findOrCreate(Entries &entries, const std::string &name,
             const std::string &desc, Make make)
{
    for (auto &entry : entries)
        if (entry.name == name)
            return *entry.instrument;
    entries.push_back({name, desc, make()});
    return *entries.back().instrument;
}

} // namespace

Counter &
MetricsRegistry::counter(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return findOrCreate(counters_, name, desc,
                        [] { return std::make_unique<Counter>(); });
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return findOrCreate(gauges_, name, desc,
                        [] { return std::make_unique<Gauge>(); });
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds,
                           const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return findOrCreate(histograms_, name, desc, [&] {
        return std::make_unique<Histogram>(std::move(bounds));
    });
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : counters_)
        entry.instrument->reset();
    for (auto &entry : gauges_)
        entry.instrument->reset();
    for (auto &entry : histograms_)
        entry.instrument->reset();
}

std::vector<MetricsRegistry::CounterView>
MetricsRegistry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<CounterView> out;
    out.reserve(counters_.size());
    for (const auto &entry : counters_)
        out.push_back({entry.name, entry.desc,
                       entry.instrument->value()});
    return out;
}

std::vector<MetricsRegistry::GaugeView>
MetricsRegistry::gauges() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<GaugeView> out;
    out.reserve(gauges_.size());
    for (const auto &entry : gauges_)
        out.push_back({entry.name, entry.desc,
                       entry.instrument->value()});
    return out;
}

std::vector<MetricsRegistry::HistogramView>
MetricsRegistry::histograms() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<HistogramView> out;
    out.reserve(histograms_.size());
    for (const auto &entry : histograms_) {
        HistogramView view;
        view.name = entry.name;
        view.desc = entry.desc;
        view.bounds = entry.instrument->bounds();
        view.counts.reserve(entry.instrument->buckets());
        for (std::size_t i = 0; i < entry.instrument->buckets(); ++i)
            view.counts.push_back(entry.instrument->bucketCount(i));
        view.count = entry.instrument->count();
        view.sum = entry.instrument->sum();
        out.push_back(std::move(view));
    }
    return out;
}

// ---------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------

namespace {

json::Value
attrJson(const AttrValue &value)
{
    if (const auto *u = std::get_if<std::uint64_t>(&value))
        return json::Value(*u);
    if (const auto *i = std::get_if<std::int64_t>(&value))
        return json::Value(*i);
    if (const auto *d = std::get_if<double>(&value))
        return json::Value(*d);
    return json::Value(std::get<std::string>(value));
}

} // namespace

json::Value
metricsJson(const MetricsRegistry &metrics)
{
    json::Value doc = json::Value::object();

    json::Value counters = json::Value::array();
    for (const auto &view : metrics.counters()) {
        json::Value c = json::Value::object();
        c.set("name", view.name);
        if (!view.desc.empty())
            c.set("desc", view.desc);
        c.set("value", view.value);
        counters.push(std::move(c));
    }
    doc.set("counters", std::move(counters));

    json::Value gauges = json::Value::array();
    for (const auto &view : metrics.gauges()) {
        json::Value g = json::Value::object();
        g.set("name", view.name);
        if (!view.desc.empty())
            g.set("desc", view.desc);
        g.set("value", view.value);
        gauges.push(std::move(g));
    }
    doc.set("gauges", std::move(gauges));

    json::Value histograms = json::Value::array();
    for (const auto &view : metrics.histograms()) {
        json::Value h = json::Value::object();
        h.set("name", view.name);
        if (!view.desc.empty())
            h.set("desc", view.desc);
        json::Value bounds = json::Value::array();
        for (double b : view.bounds)
            bounds.push(b);
        h.set("bounds", std::move(bounds));
        json::Value counts = json::Value::array();
        for (std::uint64_t c : view.counts)
            counts.push(c);
        h.set("counts", std::move(counts));
        h.set("count", view.count);
        h.set("sum", view.sum);
        histograms.push(std::move(h));
    }
    doc.set("histograms", std::move(histograms));
    return doc;
}

json::Value
spansJson(const Tracer &tracer)
{
    json::Value spans = json::Value::array();
    for (const SpanRecord &rec : tracer.snapshot()) {
        json::Value s = json::Value::object();
        s.set("id", rec.id);
        s.set("parent", rec.parent);
        s.set("name", rec.name);
        s.set("wall_start_ns", rec.wallStartNs);
        s.set("wall_ns", rec.wallNs);
        s.set("sim_ticks", rec.simTicks);
        if (!rec.attrs.empty()) {
            json::Value attrs = json::Value::object();
            for (const SpanAttr &attr : rec.attrs)
                attrs.set(attr.key, attrJson(attr.value));
            s.set("attrs", std::move(attrs));
        }
        spans.push(std::move(s));
    }
    return spans;
}

json::Value
exportJson(const MetricsRegistry *metrics, const Tracer *tracer)
{
    json::Value doc = json::Value::object();
    if (metrics != nullptr)
        doc.set("metrics", metricsJson(*metrics));
    if (tracer != nullptr)
        doc.set("spans", spansJson(*tracer));
    return doc;
}

std::string
metricsCsv(const MetricsRegistry &metrics)
{
    std::string out = "kind,name,value\n";
    char buf[64];
    for (const auto &view : metrics.counters()) {
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(view.value));
        out += "counter," + view.name + "," + buf + "\n";
    }
    for (const auto &view : metrics.gauges()) {
        std::snprintf(buf, sizeof(buf), "%.17g", view.value);
        out += "gauge," + view.name + "," + buf + "\n";
    }
    for (const auto &view : metrics.histograms()) {
        for (std::size_t i = 0; i < view.counts.size(); ++i) {
            std::string bucket;
            if (i < view.bounds.size()) {
                std::snprintf(buf, sizeof(buf), "%g", view.bounds[i]);
                bucket = std::string("le_") + buf;
            } else {
                bucket = "overflow";
            }
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(
                              view.counts[i]));
            out += "histogram," + view.name + "." + bucket + "," + buf +
                "\n";
        }
    }
    return out;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot open '%s' for writing", path.c_str());
        return false;
    }
    std::size_t written = std::fwrite(content.data(), 1, content.size(),
                                      f);
    std::fclose(f);
    if (written != content.size()) {
        warn("short write to '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace clare::obs
