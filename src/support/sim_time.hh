/**
 * @file
 * Simulated-time representation.
 *
 * The CLARE hardware timing model works at the granularity of gate and
 * memory propagation delays (tens of nanoseconds), but rate computations
 * divide byte counts by times, so the base tick is one picosecond to
 * keep integer arithmetic exact.
 */

#ifndef CLARE_SUPPORT_SIM_TIME_HH
#define CLARE_SUPPORT_SIM_TIME_HH

#include <cstdint>

namespace clare {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Ticks per picosecond / nanosecond / microsecond / millisecond / second. */
constexpr Tick kPicosecond = 1;
constexpr Tick kNanosecond = 1000 * kPicosecond;
constexpr Tick kMicrosecond = 1000 * kNanosecond;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;

/** Convert a nanosecond count to ticks. */
constexpr Tick
nanoseconds(std::uint64_t ns)
{
    return ns * kNanosecond;
}

/** Convert ticks to (truncated) nanoseconds. */
constexpr std::uint64_t
toNanoseconds(Tick t)
{
    return t / kNanosecond;
}

/** Convert ticks to seconds as a double (for rate computations). */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/**
 * Bytes-per-second rate given a byte count and an elapsed time.
 * Returns 0 for a zero elapsed time.
 */
constexpr double
bytesPerSecond(std::uint64_t bytes, Tick elapsed)
{
    return elapsed == 0
        ? 0.0
        : static_cast<double>(bytes) / toSeconds(elapsed);
}

/**
 * A monotonically advancing simulated clock.  Components share a clock
 * by reference; advancing never moves backwards.
 */
class SimClock
{
  public:
    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Advance the clock by a delta. */
    void advance(Tick delta) { now_ += delta; }

    /**
     * Advance the clock to an absolute time if that time is in the
     * future; otherwise leave it unchanged.
     *
     * @return the amount of time actually waited.
     */
    Tick
    advanceTo(Tick when)
    {
        if (when <= now_)
            return 0;
        Tick waited = when - now_;
        now_ = when;
        return waited;
    }

    /** Reset to time zero (between independent experiment runs). */
    void reset() { now_ = 0; }

  private:
    Tick now_ = 0;
};

} // namespace clare

#endif // CLARE_SUPPORT_SIM_TIME_HH
