#include "support/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/logging.hh"

namespace clare::json {

bool
Value::boolean() const
{
    clare_assert(kind_ == Kind::Bool, "json value is not a bool");
    return bool_;
}

double
Value::number() const
{
    clare_assert(kind_ == Kind::Number, "json value is not a number");
    return num_;
}

const std::string &
Value::str() const
{
    clare_assert(kind_ == Kind::String, "json value is not a string");
    return str_;
}

std::size_t
Value::size() const
{
    if (kind_ == Kind::Array)
        return items_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    return 0;
}

Value &
Value::push(Value v)
{
    clare_assert(kind_ == Kind::Array, "json push on a non-array");
    items_.push_back(std::move(v));
    return *this;
}

const Value &
Value::at(std::size_t i) const
{
    clare_assert(kind_ == Kind::Array && i < items_.size(),
                 "json array index %zu out of range", i);
    return items_[i];
}

Value &
Value::set(const std::string &key, Value v)
{
    clare_assert(kind_ == Kind::Object, "json set on a non-object");
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(v));
    return *this;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &member : members_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

// ---------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
appendNumber(std::string &out, double v)
{
    // Integral values within the double-exact range print as
    // integers so tick counts survive a round trip textually.
    if (std::isfinite(v) && v == std::floor(v) &&
        std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::Number:
        appendNumber(out, num_);
        return;
      case Kind::String:
        escapeString(out, str_);
        return;
      case Kind::Array: {
        if (items_.empty()) {
            out += "[]";
            return;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i > 0)
                out.push_back(',');
            newlineIndent(out, indent, depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out.push_back(']');
        return;
      }
      case Kind::Object: {
        if (members_.empty()) {
            out += "{}";
            return;
        }
        out.push_back('{');
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i > 0)
                out.push_back(',');
            newlineIndent(out, indent, depth + 1);
            escapeString(out, members_[i].first);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out.push_back('}');
        return;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------
// Parsing: a plain recursive-descent parser over the whole text.
// ---------------------------------------------------------------------

namespace {

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;
    bool failed = false;

    bool
    fail(const std::string &why)
    {
        if (!failed) {
            failed = true;
            error = why + " at offset " + std::to_string(pos);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail(std::string("bad literal"));
        pos += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                return fail("dangling escape");
            char e = text[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // Encode the code point as UTF-8 (surrogate pairs are
                // passed through as two separate 3-byte sequences —
                // good enough for the ASCII-centric dumps we write).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            ++pos;
        }
        if (pos == start)
            return fail("expected a number");
        char *end = nullptr;
        std::string slice = text.substr(start, pos - start);
        double v = std::strtod(slice.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number");
        out = Value(v);
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > 128)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == 'n')
            return literal("null", 4) && ((out = Value()), true);
        if (c == 't')
            return literal("true", 4) && ((out = Value(true)), true);
        if (c == 'f')
            return literal("false", 5) && ((out = Value(false)), true);
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
        }
        if (c == '[') {
            ++pos;
            out = Value::array();
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Value item;
                if (!parseValue(item, depth + 1))
                    return false;
                out.push(std::move(item));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '{') {
            ++pos;
            out = Value::object();
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return false;
                Value member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.set(key, std::move(member));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(out);
        return fail("unexpected character");
    }
};

} // namespace

std::optional<Value>
Value::parse(const std::string &text, std::string *error)
{
    Parser p{text, 0, {}};
    Value v;
    if (!p.parseValue(v, 0)) {
        if (error != nullptr)
            *error = p.error;
        return std::nullopt;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        p.fail("trailing garbage");
        if (error != nullptr)
            *error = p.error;
        return std::nullopt;
    }
    return v;
}

} // namespace clare::json
