/**
 * @file
 * Runtime CPU feature detection for the SIMD-dispatched kernels.
 *
 * The FS1 kernel registry picks the widest vector unit the host
 * offers at startup; everything downstream of the pick is required to
 * be bit-identical, so detection only ever changes host CPU cost,
 * never results.  Detection is done once and cached — the answer
 * cannot change while the process runs.
 */

#ifndef CLARE_SUPPORT_CPU_HH
#define CLARE_SUPPORT_CPU_HH

namespace clare::support {

/** Vector ISA extensions usable by the word-parallel kernels. */
struct CpuFeatures
{
    /** 256-bit integer ops (4 plane words per op). */
    bool avx2 = false;
    /** AVX-512 foundation: 512-bit integer ops (8 words per op). */
    bool avx512f = false;
};

/** The host's features, probed once on first use. */
const CpuFeatures &cpuFeatures();

} // namespace clare::support

#endif // CLARE_SUPPORT_CPU_HH
