#include "support/fault_injector.hh"

#include <cstdlib>
#include <mutex>

#include "support/logging.hh"

namespace clare::support {

namespace {

/** splitmix64 finalizer: the avalanche step used throughout. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
hashString(std::string_view s)
{
    // FNV-1a, then avalanched.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s)
        h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
    return mix(h);
}

/** Salts separating the independent decision families per chunk. */
constexpr std::uint64_t kSaltTransient = 0x1;
constexpr std::uint64_t kSaltBitFlip = 0x2;
constexpr std::uint64_t kSaltBitIndex = 0x3;
constexpr std::uint64_t kSaltDelay = 0x4;
constexpr std::uint64_t kSaltTruncate = 0x5;
constexpr std::uint64_t kSaltTruncateSize = 0x6;
constexpr std::uint64_t kSaltFrame = 0x7;
constexpr std::uint64_t kSaltFrameCut = 0x8;

} // namespace

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config)
{
    clare_assert(config_.chunkBytes > 0,
                 "fault chunk granularity must be positive");
}

std::uint64_t
FaultInjector::hash(std::string_view site, std::uint64_t key,
                    std::uint64_t salt) const
{
    std::uint64_t h = mix(config_.seed ^ hashString(site));
    h = mix(h ^ key);
    return mix(h ^ salt);
}

double
FaultInjector::roll(std::string_view site, std::uint64_t key,
                    std::uint64_t salt) const
{
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>(hash(site, key, salt) >> 11) *
        0x1.0p-53;
}

bool
FaultInjector::transientError(std::string_view site, std::uint64_t key,
                              std::uint32_t attempt) const
{
    if (config_.transientReadRate <= 0)
        return false;
    bool hit = roll(site, key, kSaltTransient + 0x100ULL * attempt) <
        config_.transientReadRate;
    noteSite(site, hit);
    return hit;
}

bool
FaultInjector::corruptChunk(std::string_view site,
                            std::uint64_t key) const
{
    if (config_.bitFlipRate <= 0)
        return false;
    bool hit = roll(site, key, kSaltBitFlip) < config_.bitFlipRate;
    noteSite(site, hit);
    return hit;
}

std::uint64_t
FaultInjector::flipBit(std::string_view site, std::uint64_t key,
                       std::uint8_t *data, std::size_t size) const
{
    clare_assert(size > 0, "cannot flip a bit of an empty chunk");
    std::uint64_t bit = hash(site, key, kSaltBitIndex) % (size * 8);
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    return bit;
}

Tick
FaultInjector::chunkDelay(std::string_view site, std::uint64_t key) const
{
    if (config_.delayRate <= 0)
        return 0;
    bool hit = roll(site, key, kSaltDelay) < config_.delayRate;
    noteSite(site, hit);
    return hit ? config_.delayTicks : 0;
}

std::uint64_t
FaultInjector::truncatedSize(std::string_view site,
                             std::string_view path,
                             std::uint64_t size) const
{
    if (config_.truncateRate <= 0 || size == 0)
        return size;
    std::uint64_t key = hashString(path);
    bool hit = roll(site, key, kSaltTruncate) < config_.truncateRate;
    noteSite(site, hit);
    if (!hit)
        return size;
    // Cut somewhere in [0, size): a short read never grows the file.
    return hash(site, key, kSaltTruncateSize) % size;
}

RangeFaults
FaultInjector::rangeFaults(std::string_view site, std::uint64_t offset,
                           std::uint64_t length,
                           std::uint32_t max_attempts) const
{
    RangeFaults out;
    if (length == 0 || !config_.anyFaults())
        return out;
    clare_assert(max_attempts >= 1, "need at least one read attempt");
    std::uint64_t first = chunkKey(offset);
    std::uint64_t last = chunkKey(offset + length - 1);
    for (std::uint64_t key = first; key <= last; ++key) {
        std::uint32_t attempt = 0;
        while (attempt < max_attempts &&
               transientError(site, key, attempt)) {
            ++attempt;
        }
        out.retries += attempt;
        if (attempt == max_attempts)
            out.permanent = true;
        if (corruptChunk(site, key))
            ++out.corruptChunks;
        out.delayTicks += chunkDelay(site, key);
    }
    return out;
}

FrameFault
FaultInjector::frameFault(std::string_view site, std::uint64_t key) const
{
    if (!config_.anyFrameFaults())
        return FrameFault::None;
    // One roll, one fault: the classes partition [0, sum of rates), so
    // each fires with exactly its configured rate (assuming the rates
    // sum below 1, the only sane configuration).
    double r = roll(site, key, kSaltFrame);
    FrameFault fault = FrameFault::None;
    if (r < config_.frameDropRate)
        fault = FrameFault::Drop;
    else if ((r -= config_.frameDropRate) < config_.frameTruncateRate)
        fault = FrameFault::Truncate;
    else if ((r -= config_.frameTruncateRate) < config_.frameCorruptRate)
        fault = FrameFault::Corrupt;
    else if ((r -= config_.frameCorruptRate) < config_.frameDelayRate)
        fault = FrameFault::Delay;
    noteSite(site, fault != FrameFault::None);
    return fault;
}

std::uint64_t
FaultInjector::truncatedFrameBytes(std::string_view site,
                                   std::uint64_t key,
                                   std::uint64_t frame_bytes) const
{
    if (frame_bytes == 0)
        return 0;
    return hash(site, key, kSaltFrameCut) % frame_bytes;
}

std::optional<std::uint64_t>
FaultInjector::killOffset(std::string_view site, std::uint64_t lo,
                          std::uint64_t hi) const
{
    if (config_.killSite.empty() || site != config_.killSite)
        return std::nullopt;
    bool hit = lo <= config_.killAtByte && config_.killAtByte < hi;
    noteSite(site, hit);
    if (!hit)
        return std::nullopt;
    return config_.killAtByte;
}

void
FaultInjector::noteSite(std::string_view site, bool triggered) const
{
    std::lock_guard<std::mutex> lock(sitesMutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) {
        it = sites_.emplace(std::string(site), SiteReport{}).first;
        it->second.site = std::string(site);
    }
    ++it->second.consulted;
    if (triggered)
        ++it->second.triggered;
}

std::vector<SiteReport>
FaultInjector::sites() const
{
    std::lock_guard<std::mutex> lock(sitesMutex_);
    std::vector<SiteReport> out;
    out.reserve(sites_.size());
    for (const auto &[name, report] : sites_)
        out.push_back(report);
    return out;
}

const FaultInjector *
envFaultInjector()
{
    static std::once_flag once;
    static const FaultInjector *injector = nullptr;
    std::call_once(once, [] {
        const char *seed = std::getenv("CLARE_FAULT_SEED");
        if (seed == nullptr)
            return;
        FaultConfig config;
        config.seed = std::strtoull(seed, nullptr, 0);
        auto rate = [](const char *name, double fallback) {
            const char *v = std::getenv(name);
            return v != nullptr ? std::strtod(v, nullptr) : fallback;
        };
        config.bitFlipRate = rate("CLARE_FAULT_BITFLIP", 0.0);
        config.transientReadRate = rate("CLARE_FAULT_TRANSIENT", 0.0);
        config.delayRate = rate("CLARE_FAULT_DELAY", 0.0);
        config.truncateRate = rate("CLARE_FAULT_TRUNCATE", 0.0);
        injector = new FaultInjector(config);
    });
    return injector;
}

} // namespace clare::support
