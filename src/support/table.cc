#include "support/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "support/logging.hh"

namespace clare {

void
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    clare_assert(header_.empty() || cells.size() == header_.size(),
                 "row has %zu cells, header has %zu",
                 cells.size(), header_.size());
    rows_.push_back(Row{std::move(cells), false});
}

void
Table::rule()
{
    rows_.push_back(Row{{}, true});
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i)
        widths[i] = header_[i].size();
    for (const auto &r : rows_) {
        if (r.isRule)
            continue;
        for (std::size_t i = 0; i < r.cells.size(); ++i)
            widths[i] = std::max(widths[i], r.cells[i].size());
    }

    auto hline = [&](char c) {
        os << '+';
        for (std::size_t w : widths) {
            for (std::size_t i = 0; i < w + 2; ++i)
                os << c;
            os << '+';
        }
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << ' ' << cell;
            for (std::size_t p = cell.size(); p < widths[i] + 1; ++p)
                os << ' ';
            os << '|';
        }
        os << '\n';
    };

    os << "== " << title_ << " ==\n";
    hline('-');
    line(header_);
    hline('=');
    for (const auto &r : rows_) {
        if (r.isRule)
            hline('-');
        else
            line(r.cells);
    }
    hline('-');
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::num(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace clare
