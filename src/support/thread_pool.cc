#include "support/thread_pool.hh"

namespace clare::support {

/** Shared progress of one parallelFor: index cursor + completion. */
struct ThreadPool::ForState
{
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t count = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    std::mutex mutex;
    std::condition_variable finished;
};

ThreadPool::ThreadPool(unsigned threads) : workers_(threads)
{
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobs_.push_back(std::move(job));
    }
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || !jobs_.empty();
            });
            if (jobs_.empty())
                return;     // stopping and drained
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        job();
    }
}

/** Pull indices from the shared cursor until they run out. */
void
ThreadPool::runIndices(ForState &state)
{
    for (;;) {
        std::size_t i = state.next.fetch_add(1,
                                             std::memory_order_relaxed);
        if (i >= state.count)
            return;
        (*state.fn)(i);
        std::size_t finished =
            state.done.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (finished == state.count) {
            // The waiter re-checks `done` under the mutex; taking the
            // lock here orders this notify after its wait.
            std::lock_guard<std::mutex> lock(state.mutex);
            state.finished.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers_ == 0 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    auto state = std::make_shared<ForState>();
    state->count = count;
    state->fn = &fn;

    // `fn` stays alive: the caller blocks below until every index is
    // done, and helpers that start after completion exit immediately.
    std::size_t helpers = std::min<std::size_t>(workers_, count - 1);
    for (std::size_t h = 0; h < helpers; ++h)
        enqueue([state] { runIndices(*state); });

    runIndices(*state);

    std::unique_lock<std::mutex> lock(state->mutex);
    state->finished.wait(lock, [&] {
        return state->done.load(std::memory_order_acquire) == count;
    });
}

} // namespace clare::support
