/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Experiments must be reproducible run-to-run, so all stochastic
 * workload generation draws from an explicitly seeded xoshiro256**
 * generator rather than std::random_device.
 */

#ifndef CLARE_SUPPORT_RANDOM_HH
#define CLARE_SUPPORT_RANDOM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace clare {

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * implementation, re-expressed).  Fast, high-quality, and trivially
 * seedable via splitmix64.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p. */
    bool chance(double p);

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[below(v.size())];
    }

    /** Geometric-ish small value: number of successes before failure. */
    std::uint32_t geometric(double p, std::uint32_t cap);

    /** Random lowercase identifier of given length. */
    std::string identifier(std::size_t len);

  private:
    std::uint64_t s_[4];
};

} // namespace clare

#endif // CLARE_SUPPORT_RANDOM_HH
