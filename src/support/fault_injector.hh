/**
 * @file
 * Deterministic, seeded fault injection for the storage subsystem.
 *
 * The paper's argument assumes the disk is an ideal channel; a
 * production service cannot.  This injector models the classic
 * storage fault classes — bit flips in delivered DMA chunks,
 * transient (retryable) read errors, delayed chunk delivery, and
 * truncated files — so every layer above the disk can be exercised
 * against them reproducibly.
 *
 * Every decision is a *pure function* of (seed, site, key, salt): the
 * same seed replays the same faults at the same byte locations
 * regardless of query order, batching, or which pool thread performs
 * the read.  That property is what makes a failure found in a fuzz
 * sweep a one-line reproduction (`FaultConfig{.seed = N, ...}`)
 * instead of a heisenbug.
 *
 * Sites name the channel being faulted ("disk.index", "disk.data",
 * "file"); keys are chunk indices derived from absolute byte offsets,
 * so a fault is pinned to a disk location, not to an access sequence.
 */

#ifndef CLARE_SUPPORT_FAULT_INJECTOR_HH
#define CLARE_SUPPORT_FAULT_INJECTOR_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/sim_time.hh"

namespace clare::support {

/** Rates and shapes of the injected faults (all default to "off"). */
struct FaultConfig
{
    /** Replay seed; two runs with equal configs inject equal faults. */
    std::uint64_t seed = 0;

    /**
     * Chunk granularity of the per-chunk decisions below.  Matches
     * the checksum page size by default so one flipped chunk maps to
     * one failed page checksum.
     */
    std::uint32_t chunkBytes = 4096;

    /** P(one bit flip) per delivered chunk. */
    double bitFlipRate = 0.0;

    /**
     * P(transient read error) per chunk *attempt*.  A retry redraws,
     * so a chunk read fails permanently only if every bounded attempt
     * draws an error (probability rate^maxAttempts).
     */
    double transientReadRate = 0.0;

    /** P(delivery delay) per chunk, adding delayTicks to delivery. */
    double delayRate = 0.0;
    Tick delayTicks = kMillisecond;

    /** P(short read) per whole-file read (storage::readBytes). */
    double truncateRate = 0.0;

    // ----- Wire faults (the network is not an ideal channel either).
    // Drawn per *outbound frame* by the serving tier, keyed by the
    // connection's frame sequence number, so a given seed poisons the
    // same frames of a connection regardless of wall-clock timing.
    // Disjoint from the disk rates above: a NetServer's wire injector
    // and a CRS's disk injector are separate objects.

    /** P(frame silently dropped, connection closed) per frame. */
    double frameDropRate = 0.0;
    /** P(frame cut short mid-payload, connection closed) per frame. */
    double frameTruncateRate = 0.0;
    /** P(one bit flipped after the CRC was computed) per frame. */
    double frameCorruptRate = 0.0;
    /** P(slow peer: delivery stalled frameDelayMillis) per frame. */
    double frameDelayRate = 0.0;
    std::uint32_t frameDelayMillis = 50;

    // ----- Crash kill point (the process is not immortal either).
    // Unlike the rates above this is not probabilistic: the fuzzer
    // sweeps killAtByte over every offset of a durable write stream,
    // proving commit/checkpoint atomicity at *every* byte, not a
    // sampled few.  Deliberately excluded from anyFaults(): a
    // kill-only injector must not flip the CRS onto its disk-fault
    // modeling paths.

    /**
     * Durable-write site the kill point is armed on ("wal.commit",
     * "checkpoint"); empty = no kill point.
     */
    std::string killSite;
    /**
     * Cumulative byte offset of that site's write stream (counted
     * from injector-visible write #0 of the process run) at which the
     * write stops and CrashError is thrown.
     */
    std::uint64_t killAtByte = 0;

    bool
    anyFaults() const
    {
        return bitFlipRate > 0 || transientReadRate > 0 ||
            delayRate > 0 || truncateRate > 0 || anyFrameFaults();
    }

    bool
    anyFrameFaults() const
    {
        return frameDropRate > 0 || frameTruncateRate > 0 ||
            frameCorruptRate > 0 || frameDelayRate > 0;
    }
};

/** What (if anything) happens to one outbound frame. */
enum class FrameFault : std::uint8_t
{
    None,     ///< delivered intact
    Drop,     ///< never sent; connection closed
    Truncate, ///< header + partial payload sent; connection closed
    Corrupt,  ///< one bit flipped after the CRC was computed
    Delay,    ///< delivered intact, frameDelayMillis late
};

/**
 * Coverage of one injection site: how often it consulted the oracle
 * while its fault family was armed, and how often a fault actually
 * fired there.  A fuzz sweep that leaves an armed site with zero
 * triggers has gone silently dead — the suites assert against that.
 */
struct SiteReport
{
    std::string site;
    std::uint64_t consulted = 0;
    std::uint64_t triggered = 0;
};

/** Aggregate fault outcome over a modeled byte range (one stream). */
struct RangeFaults
{
    /** Chunk re-reads forced by transient errors (re-seek each). */
    std::uint32_t retries = 0;
    /** Chunks whose delivered copy carries a bit flip. */
    std::uint32_t corruptChunks = 0;
    /** Total injected delivery delay. */
    Tick delayTicks = 0;
    /** A chunk failed every bounded attempt (device unreadable). */
    bool permanent = false;
};

/** The deterministic fault oracle. */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig config = {});

    const FaultConfig &config() const { return config_; }

    /** Chunk key of an absolute byte offset. */
    std::uint64_t
    chunkKey(std::uint64_t offset) const
    {
        return offset / config_.chunkBytes;
    }

    /** Does attempt @p attempt at chunk @p key draw a transient error? */
    bool transientError(std::string_view site, std::uint64_t key,
                        std::uint32_t attempt) const;

    /** Does the delivered copy of chunk @p key carry a bit flip? */
    bool corruptChunk(std::string_view site, std::uint64_t key) const;

    /**
     * Flip the deterministic fault bit of chunk @p key in @p data
     * (the caller's scratch copy, never a master image).
     *
     * @return the flipped bit index
     */
    std::uint64_t flipBit(std::string_view site, std::uint64_t key,
                          std::uint8_t *data, std::size_t size) const;

    /** Injected delivery delay of chunk @p key (0 = on time). */
    Tick chunkDelay(std::string_view site, std::uint64_t key) const;

    /**
     * Possibly-truncated size of a whole-file read of @p size bytes
     * (file key = hash of the path).  Returns @p size when the file
     * is spared.
     */
    std::uint64_t truncatedSize(std::string_view site,
                                std::string_view path,
                                std::uint64_t size) const;

    /**
     * Fold the per-chunk decisions over the chunks covering
     * [offset, offset + length): the analytic form of a stream, used
     * where the pipeline models a disk read without materializing
     * the bytes.  Chunk boundaries are absolute (offset-aligned to
     * chunkBytes), so overlapping ranges agree on their shared
     * chunks.
     */
    RangeFaults rangeFaults(std::string_view site, std::uint64_t offset,
                            std::uint64_t length,
                            std::uint32_t max_attempts) const;

    /**
     * The wire decision: what happens to outbound frame number @p key
     * of channel @p site (e.g. "wire.conn").  At most one fault class
     * fires per frame, drawn in severity order (drop, truncate,
     * corrupt, delay) so rates compose predictably.
     */
    FrameFault frameFault(std::string_view site, std::uint64_t key) const;

    /**
     * Where a Truncate fault cuts an outbound frame of @p frame_bytes
     * bytes: a prefix length in [0, frame_bytes).
     */
    std::uint64_t truncatedFrameBytes(std::string_view site,
                                      std::uint64_t key,
                                      std::uint64_t frame_bytes) const;

    /**
     * Does the durable write covering cumulative bytes [lo, hi) of
     * @p site hit the armed kill point?  Returns the cumulative
     * offset to stop at (write bytes [lo, offset), persist them, then
     * throw CrashError) or nullopt when the write survives.  Counts
     * as a consult whenever a kill point is armed on @p site.
     */
    std::optional<std::uint64_t> killOffset(std::string_view site,
                                            std::uint64_t lo,
                                            std::uint64_t hi) const;

    /**
     * Site-coverage report: every site that consulted the oracle
     * while its fault family was armed, with consult/trigger counts,
     * sorted by site name.  Thread-safe snapshot.
     */
    std::vector<SiteReport> sites() const;

  private:
    /** The decision hash: uniform in [0,1) per (site, key, salt). */
    double roll(std::string_view site, std::uint64_t key,
                std::uint64_t salt) const;

    std::uint64_t hash(std::string_view site, std::uint64_t key,
                       std::uint64_t salt) const;

    /**
     * Record one oracle consult at @p site (armed fault family only)
     * and whether it fired.  Mutable bookkeeping behind a mutex: the
     * decision methods stay const and pure, the coverage report is a
     * side channel.
     */
    void noteSite(std::string_view site, bool triggered) const;

    FaultConfig config_;

    mutable std::mutex sitesMutex_;
    mutable std::map<std::string, SiteReport, std::less<>> sites_;
};

/**
 * Process-global injector configured from the environment, or null
 * when CLARE_FAULT_SEED is unset.  Consulted by the CRS only in
 * -DCLARE_FAULT_INJECT builds, so release binaries carry no hook.
 * Knobs: CLARE_FAULT_SEED, CLARE_FAULT_BITFLIP, CLARE_FAULT_TRANSIENT,
 * CLARE_FAULT_DELAY, CLARE_FAULT_TRUNCATE (rates in [0,1]).
 */
const FaultInjector *envFaultInjector();

} // namespace clare::support

#endif // CLARE_SUPPORT_FAULT_INJECTOR_HH
