#include "support/cpu.hh"

namespace clare::support {

namespace {

CpuFeatures
probe()
{
    CpuFeatures features;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    // __builtin_cpu_supports folds in the XGETBV/OS-save checks, so a
    // kernel that disabled AVX state reports the feature as absent.
    __builtin_cpu_init();
    features.avx2 = __builtin_cpu_supports("avx2");
    features.avx512f = __builtin_cpu_supports("avx512f");
#endif
    return features;
}

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures features = probe();
    return features;
}

} // namespace clare::support
