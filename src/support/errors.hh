/**
 * @file
 * The typed error taxonomy of the CLARE pipeline.
 *
 * Every recoverable failure the system reports derives from
 * clare::Error, so embedders can catch one type at the top of a
 * request loop.  The taxonomy distinguishes *where* a failure lives:
 *
 *   Error                the root (also the base of FatalError and
 *                        crs::ConfigError)
 *   +-- IoError          the operating system failed us: a file that
 *                        cannot be opened, a short read/write, a
 *                        modeled device whose bounded retries were
 *                        exhausted
 *       +-- CorruptionError  the bytes arrived but are wrong: bad
 *                        magic/version, a failed page checksum, a
 *                        truncated image, a manifest that disagrees
 *                        with its directory — carries the file, the
 *                        checksum page, and the byte offset
 *   +-- CrashError       a simulated process crash at an injector
 *                        kill point (durable bytes up to the kill
 *                        offset are on disk, nothing after) — thrown
 *                        by the WAL/checkpoint write paths so the
 *                        crash-recovery fuzzers can die and reload
 *                        in-process
 */

#ifndef CLARE_SUPPORT_ERRORS_HH
#define CLARE_SUPPORT_ERRORS_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace clare {

/** Root of every typed CLARE error. */
class Error : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Sentinel for "no page / offset applies to this failure". */
constexpr std::uint64_t kNoFilePosition = ~0ULL;

/** An I/O operation failed at the operating-system or device level. */
class IoError : public Error
{
  public:
    IoError(std::string file, const std::string &why)
        : Error(file + ": " + why), file_(std::move(file))
    {}

    /** Path (or device name) the failure occurred on. */
    const std::string &file() const { return file_; }

  private:
    std::string file_;
};

/**
 * Bytes were read but fail validation (magic, version, checksum,
 * structural walk).  Page and offset are kNoFilePosition when the
 * failure is not localized (e.g. a header-level mismatch).
 */
class CorruptionError : public IoError
{
  public:
    CorruptionError(std::string file, std::uint64_t page,
                    std::uint64_t offset, const std::string &why)
        : IoError(std::move(file),
                  describe(page, offset) + why),
          page_(page), offset_(offset)
    {}

    /** Checksum page the corruption was detected in. */
    std::uint64_t page() const { return page_; }
    /** Byte offset within the file, when known. */
    std::uint64_t offset() const { return offset_; }

  private:
    static std::string
    describe(std::uint64_t page, std::uint64_t offset)
    {
        std::string at;
        if (page != kNoFilePosition)
            at += "page " + std::to_string(page) + ", ";
        if (offset != kNoFilePosition)
            at += "offset " + std::to_string(offset) + ", ";
        return at;
    }

    std::uint64_t page_;
    std::uint64_t offset_;
};

/**
 * A simulated crash: the fault injector's kill point fired inside a
 * durable write.  Everything up to byte offset() of the named site's
 * cumulative write stream is persisted; nothing after it is.  The
 * crash-recovery fuzzers catch this, reopen the store, and assert the
 * recovered answer set equals exactly the pre- or post-commit state.
 */
class CrashError : public Error
{
  public:
    CrashError(std::string site, std::uint64_t offset)
        : Error("simulated crash at " + site + " byte " +
                std::to_string(offset)),
          site_(std::move(site)), offset_(offset)
    {}

    /** Kill site the crash fired in (e.g. "wal.commit"). */
    const std::string &site() const { return site_; }
    /** Cumulative durable byte offset the write stopped at. */
    std::uint64_t offset() const { return offset_; }

  private:
    std::string site_;
    std::uint64_t offset_;
};

} // namespace clare

#endif // CLARE_SUPPORT_ERRORS_HH
