/**
 * @file
 * A minimal JSON document model: build, serialize, and parse.
 *
 * The observability exporter writes metrics/span dumps and the bench
 * harnesses write `--json` result files with it; the round-trip tests
 * and the `json_check` smoke tool parse them back.  The model is
 * deliberately small — ordered objects, double-precision numbers,
 * UTF-8 pass-through strings — not a general-purpose JSON library.
 */

#ifndef CLARE_SUPPORT_JSON_HH
#define CLARE_SUPPORT_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace clare::json {

/** One JSON value; arrays and objects own their children. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Number), num_(d) {}
    Value(std::uint64_t n)
        : kind_(Kind::Number), num_(static_cast<double>(n)) {}
    Value(std::int64_t n)
        : kind_(Kind::Number), num_(static_cast<double>(n)) {}
    Value(int n) : kind_(Kind::Number), num_(n) {}
    Value(unsigned n) : kind_(Kind::Number), num_(n) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}

    static Value array() { return Value(Kind::Array); }
    static Value object() { return Value(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Scalar accessors; fatal on kind mismatch. */
    bool boolean() const;
    double number() const;
    const std::string &str() const;

    /** Array/object element count (0 for scalars). */
    std::size_t size() const;

    /** Append to an array; returns *this for chaining. */
    Value &push(Value v);
    /** Array element access (fatal out of range). */
    const Value &at(std::size_t i) const;

    /** Set an object member (replacing an existing key). */
    Value &set(const std::string &key, Value v);
    /** Look up an object member; null when absent or not an object. */
    const Value *find(const std::string &key) const;
    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Value>> &members() const
    {
        return members_;
    }

    /**
     * Serialize.  @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits a compact single line.
     */
    std::string dump(int indent = 0) const;

    /**
     * Parse a complete JSON document.  Returns nullopt on malformed
     * input and, when @p error is non-null, describes the failure
     * with an offset.
     */
    static std::optional<Value> parse(const std::string &text,
                                      std::string *error = nullptr);

  private:
    explicit Value(Kind kind) : kind_(kind) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

} // namespace clare::json

#endif // CLARE_SUPPORT_JSON_HH
