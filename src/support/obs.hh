/**
 * @file
 * Pipeline observability: a lightweight span tracer, a metrics
 * registry, and JSON/CSV exporters.
 *
 * The retrieval pipeline is instrumented at every layer — FS1 shard
 * scans, FS2 streams and double-buffer fills, disk transfers, host
 * unification, and per-query roots in the CRS — and this module is
 * the common substrate:
 *
 *  - Spans are RAII-scoped (ScopedSpan) and dual-clocked: wall time is
 *    measured on the host's steady clock, simulated time is attached
 *    by the component that computed it (the pipeline's Tick model is
 *    analytic, not sampled).  Parents nest implicitly through a
 *    thread-local current span, or explicitly by id for work handed
 *    to pool workers.
 *
 *  - Metrics are registered by name: monotonically increasing
 *    counters, last-value gauges, and fixed-bucket histograms.  All
 *    updates are lock-free atomics so engines shared by the parallel
 *    retrieval pipeline can account concurrently; registration takes
 *    a registry lock and returns references that stay valid for the
 *    registry's lifetime.
 *
 *  - Exporters render a registry and/or tracer as a json::Value tree
 *    (machine-diffable bench output) or CSV rows.
 *
 * Producers receive an Observer — a {tracer, metrics} pointer pair —
 * and must accept a null tracer (tracing is per-request opt-in) and a
 * null metrics registry (standalone engine use).
 */

#ifndef CLARE_SUPPORT_OBS_HH
#define CLARE_SUPPORT_OBS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "support/json.hh"
#include "support/sim_time.hh"

namespace clare::obs {

/** Span identifier; 0 means "no span". */
using SpanId = std::uint64_t;

/** Attribute payload attached to a span. */
using AttrValue =
    std::variant<std::uint64_t, std::int64_t, double, std::string>;

struct SpanAttr
{
    std::string key;
    AttrValue value;
};

/** A finished span as stored by the tracer. */
struct SpanRecord
{
    SpanId id = 0;
    SpanId parent = 0;
    std::string name;
    /** Wall-clock start, ns since the tracer's epoch. */
    std::uint64_t wallStartNs = 0;
    /** Wall-clock duration in ns. */
    std::uint64_t wallNs = 0;
    /** Simulated duration attached by the producer (0 if none). */
    Tick simTicks = 0;
    std::vector<SpanAttr> attrs;
};

/**
 * Collects finished spans.  Allocation of ids and appending records
 * are thread-safe; one tracer serves the whole retrieval pipeline.
 */
class Tracer
{
  public:
    Tracer() : epoch_(std::chrono::steady_clock::now()) {}

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Reserve the next span id. */
    SpanId
    allocate()
    {
        return next_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Append a finished span. */
    void record(SpanRecord rec);

    /** Copy of every finished span, in completion order. */
    std::vector<SpanRecord> snapshot() const;

    std::size_t spanCount() const;

    /** Drop all recorded spans (ids keep increasing). */
    void clear();

    /** Nanoseconds of wall time since this tracer was constructed. */
    std::uint64_t sinceEpochNs() const;

  private:
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<SpanId> next_{1};
    mutable std::mutex mutex_;
    std::vector<SpanRecord> spans_;
};

/** The calling thread's innermost open span (0 outside any span). */
SpanId currentSpan();

/**
 * RAII span.  A default-constructed or null-tracer span is inert and
 * costs a few branches; an active span measures wall time from
 * construction to finish()/destruction and records itself into the
 * tracer.  While open it is the thread's current span, so same-thread
 * children nest under it automatically.
 */
class ScopedSpan
{
  public:
    ScopedSpan() = default;

    /** Open a span whose parent is the thread's current span. */
    ScopedSpan(Tracer *tracer, std::string name);

    /** Open a span under an explicit parent (0 for a root). */
    ScopedSpan(Tracer *tracer, std::string name, SpanId parent);

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan() { finish(); }

    bool active() const { return open_; }

    /** This span's id (0 when inert). */
    SpanId id() const { return rec_.id; }

    /** Attach simulated duration. */
    void addSimTicks(Tick t) { rec_.simTicks += t; }
    void setSimTicks(Tick t) { rec_.simTicks = t; }

    /** Attach an attribute (no-op when inert). */
    ScopedSpan &attr(std::string key, AttrValue value);

    /** Close and record the span now (idempotent). */
    void finish();

  private:
    void open(Tracer *tracer, std::string name, SpanId parent);

    Tracer *tracer_ = nullptr;
    bool open_ = false;
    SpanRecord rec_;
    SpanId prevCurrent_ = 0;
};

// ---------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------

/** A monotonically increasing counter (relaxed atomic). */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    Counter &
    operator+=(std::uint64_t n)
    {
        add(n);
        return *this;
    }

    Counter &
    operator++()
    {
        add(1);
        return *this;
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A last-value gauge. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * A fixed-bucket histogram.  Bucket i counts samples <= bounds[i]
 * (bounds ascending); one extra overflow bucket counts the rest.
 * record() is lock-free.
 */
class Histogram
{
  public:
    /** @param bounds ascending bucket upper bounds (may be empty) */
    explicit Histogram(std::vector<double> bounds);

    void record(double v);

    const std::vector<double> &bounds() const { return bounds_; }

    /** Bucket count including the overflow bucket. */
    std::size_t buckets() const { return counts_.size(); }

    std::uint64_t bucketCount(std::size_t i) const;

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const;

    void reset();

    /**
     * Geometric bucket bounds: first, first*factor, ... (n values).
     * The default metrics use these for latency distributions.
     */
    static std::vector<double> exponential(double first, double factor,
                                           std::size_t n);

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> count_{0};
    /** Sum of samples, stored as a double bit pattern (CAS updates). */
    std::atomic<std::uint64_t> sumBits_{0};
};

/**
 * Estimated value at quantile @p q in [0, 1] (0.5 = median, 0.99 =
 * p99) from the histogram's bucket counts, linearly interpolated
 * inside the containing bucket.  Samples landing in the overflow
 * bucket pin the estimate to the last finite bound — pick bounds that
 * cover the tail you care about.  Returns 0 for an empty histogram.
 */
double histogramPercentile(const Histogram &h, double q);

/**
 * A named collection of metrics.  Registration returns references
 * valid for the registry's lifetime; looking up an existing name
 * returns the same instrument.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name,
                     const std::string &desc = "");
    Gauge &gauge(const std::string &name, const std::string &desc = "");
    /** @p bounds is used only when the histogram is first created. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds,
                         const std::string &desc = "");

    /** Zero every instrument (registrations persist). */
    void reset();

    // Read-side snapshots, in registration order.
    struct CounterView
    {
        std::string name, desc;
        std::uint64_t value;
    };
    struct GaugeView
    {
        std::string name, desc;
        double value;
    };
    struct HistogramView
    {
        std::string name, desc;
        std::vector<double> bounds;
        std::vector<std::uint64_t> counts;
        std::uint64_t count;
        double sum;
    };

    std::vector<CounterView> counters() const;
    std::vector<GaugeView> gauges() const;
    std::vector<HistogramView> histograms() const;

  private:
    template <typename T> struct Entry
    {
        std::string name, desc;
        std::unique_ptr<T> instrument;
    };

    mutable std::mutex mutex_;
    std::vector<Entry<Counter>> counters_;
    std::vector<Entry<Gauge>> gauges_;
    std::vector<Entry<Histogram>> histograms_;
};

// ---------------------------------------------------------------------
// The producer-facing handle and the exporters.
// ---------------------------------------------------------------------

/**
 * What instrumented components receive: both pointers optional.  A
 * null tracer disables spans (per-request opt-in); a null registry
 * disables metrics (standalone engine use).
 */
struct Observer
{
    Tracer *tracer = nullptr;
    MetricsRegistry *metrics = nullptr;

    bool tracing() const { return tracer != nullptr; }
};

/** Render a registry as {"counters": [...], "gauges": ..., ...}. */
json::Value metricsJson(const MetricsRegistry &metrics);

/** Render a tracer's spans as an array of span objects. */
json::Value spansJson(const Tracer &tracer);

/** Combined export; either argument may be null. */
json::Value exportJson(const MetricsRegistry *metrics,
                       const Tracer *tracer);

/** "kind,name,value" CSV rows (histogram buckets flattened). */
std::string metricsCsv(const MetricsRegistry &metrics);

/** Write a string to a file; false (with a warning) on failure. */
bool writeFile(const std::string &path, const std::string &content);

} // namespace clare::obs

#endif // CLARE_SUPPORT_OBS_HH
