#include "support/random.hh"

#include <bit>

#include "support/logging.hh"

namespace clare {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = std::rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    clare_assert(bound > 0, "Rng::below bound must be positive");
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    clare_assert(lo <= hi, "Rng::range requires lo <= hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint32_t
Rng::geometric(double p, std::uint32_t cap)
{
    std::uint32_t n = 0;
    while (n < cap && chance(p))
        ++n;
    return n;
}

std::string
Rng::identifier(std::size_t len)
{
    std::string s;
    s.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
        s.push_back(static_cast<char>('a' + below(26)));
    return s;
}

} // namespace clare
