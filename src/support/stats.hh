/**
 * @file
 * Lightweight statistics package for the CLARE simulator.
 *
 * Components declare named scalar counters and histograms inside a
 * StatGroup; harnesses dump groups in a uniform text format.  Modeled
 * loosely on the gem5 stats package but deliberately minimal.
 */

#ifndef CLARE_SUPPORT_STATS_HH
#define CLARE_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace clare {

/** A named monotonically increasing (or settable) scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A simple sample accumulator: count, sum, min, max, mean. */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }
    double mean() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named collection of statistics.  Registration returns references
 * that stay valid for the lifetime of the group.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register (or look up) a scalar statistic by name. */
    Scalar &scalar(const std::string &name, const std::string &desc = "");

    /** Register (or look up) a distribution statistic by name. */
    Distribution &distribution(const std::string &name,
                               const std::string &desc = "");

    /** Dump all statistics, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

    /** Reset all statistics to zero. */
    void reset();

    const std::string &name() const { return name_; }

  private:
    struct ScalarEntry { Scalar stat; std::string desc; };
    struct DistEntry { Distribution stat; std::string desc; };

    std::string name_;
    std::vector<std::string> order_;
    std::map<std::string, ScalarEntry> scalars_;
    std::map<std::string, DistEntry> dists_;
};

} // namespace clare

#endif // CLARE_SUPPORT_STATS_HH
