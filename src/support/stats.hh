/**
 * @file
 * Lightweight statistics package for the CLARE simulator.
 *
 * Components declare named scalar counters and histograms inside a
 * StatGroup; harnesses dump groups in a uniform text format.  Modeled
 * loosely on the gem5 stats package but deliberately minimal.
 *
 * Updates are thread-safe: scalars are relaxed atomics and
 * distributions/registration take a group-internal lock, so engines
 * shared by the parallel retrieval pipeline can account concurrently.
 * Bulk producers (e.g. the sharded FS1 scan) should still accumulate
 * into locals per worker and merge once — atomics make concurrent
 * updates correct, not free.
 */

#ifndef CLARE_SUPPORT_STATS_HH
#define CLARE_SUPPORT_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace clare {

/** A named monotonically increasing (or settable) scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;
    Scalar(const Scalar &other) : value_(other.value()) {}
    Scalar &operator=(const Scalar &other)
    {
        set(other.value());
        return *this;
    }

    Scalar &
    operator++()
    {
        value_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }

    Scalar &
    operator+=(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
        return *this;
    }

    void set(std::uint64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A simple sample accumulator: count, sum, min, max, mean. */
class Distribution
{
  public:
    Distribution() = default;
    Distribution(const Distribution &other);
    Distribution &operator=(const Distribution &other);

    void sample(double v);
    void reset();

    std::uint64_t count() const;
    double sum() const;
    double min() const;
    double max() const;
    double mean() const;

  private:
    mutable std::mutex mutex_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named collection of statistics.  Registration returns references
 * that stay valid for the lifetime of the group.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register (or look up) a scalar statistic by name. */
    Scalar &scalar(const std::string &name, const std::string &desc = "");

    /** Register (or look up) a distribution statistic by name. */
    Distribution &distribution(const std::string &name,
                               const std::string &desc = "");

    /** Dump all statistics, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

    /** Reset all statistics to zero. */
    void reset();

    const std::string &name() const { return name_; }

  private:
    struct ScalarEntry { Scalar stat; std::string desc; };
    struct DistEntry { Distribution stat; std::string desc; };

    std::string name_;
    mutable std::mutex mutex_;  ///< guards registration, not updates
    std::vector<std::string> order_;
    std::map<std::string, ScalarEntry> scalars_;
    std::map<std::string, DistEntry> dists_;
};

} // namespace clare

#endif // CLARE_SUPPORT_STATS_HH
