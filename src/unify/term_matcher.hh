/**
 * @file
 * Software reference implementation of partial test unification at
 * matching levels 1 through 5 (section 2.2 of the paper).
 *
 * The five levels trade selectivity against hardware cost:
 *
 *   Level 1 — type only.
 *   Level 2 — type and content, ignoring complex structures.
 *   Level 3 — type and content, catering for first-level structures.
 *   Level 4 — type and content, including full structures.
 *   Level 5 — level 4 plus variable cross-binding checks.
 *
 * The paper adopts level 3 *with cross-binding checks added*; that
 * configuration (level=3, crossBinding=true) is what the FS2 hardware
 * implements, and the PIF stream matcher must agree with it.
 *
 * A partial matcher is a *filter*: it may accept clauses that full
 * unification later rejects (false drops), but it must never reject a
 * clause that would unify (no false dismissals).  That invariant is
 * property-tested against the full unifier.
 */

#ifndef CLARE_UNIFY_TERM_MATCHER_HH
#define CLARE_UNIFY_TERM_MATCHER_HH

#include "term/term.hh"
#include "unify/tue_op.hh"

namespace clare::unify {

/** Configuration of the reference partial matcher. */
struct MatchConfig
{
    /** Matching level, 1-5. */
    int level = 3;

    /**
     * Track variable bindings (first/subsequent occurrences) and check
     * cross bindings.  When false every variable occurrence matches
     * anything, which is the "original algorithm" the paper extends.
     * Level 5 implies cross-binding checks regardless of this flag.
     */
    bool crossBinding = true;
};

/** Result of matching one clause head against a query goal. */
struct MatchResult
{
    bool hit = false;
    TueOpCounts opCounts{};

    std::uint64_t
    count(TueOp op) const
    {
        return opCounts[static_cast<std::size_t>(op)];
    }
};

/**
 * Reference partial test unification over terms.
 *
 * Matches the arguments of a query goal against the arguments of a
 * clause head.  Both terms must be atoms or structures; a functor or
 * arity mismatch is an immediate miss (the predicate-level test the
 * clause file organization already guarantees in practice).
 */
class TermMatcher
{
  public:
    explicit TermMatcher(MatchConfig config = {});

    /**
     * @param db_arena,db_head the clause head (database side)
     * @param q_arena,q_goal the query goal
     */
    MatchResult match(const term::TermArena &db_arena,
                      term::TermRef db_head,
                      const term::TermArena &q_arena,
                      term::TermRef q_goal) const;

    const MatchConfig &config() const { return config_; }

  private:
    MatchConfig config_;
};

} // namespace clare::unify

#endif // CLARE_UNIFY_TERM_MATCHER_HH
