/**
 * @file
 * Partial test unification over PIF item streams — the functional
 * model of what the FS2 Test Unification Engine computes.
 *
 * This matcher consumes the compiled argument stream of a database
 * clause head and of a query goal, applying the figure-1 algorithm:
 *
 *  - simple terms compare by tag and content (one MATCH),
 *  - in-line complex terms compare headers then first-level elements,
 *  - pointer complex terms compare headers only,
 *  - variables store on first occurrence and fetch-then-match on
 *    subsequent occurrences, following cross-binding chains to the
 *    ultimate association,
 *  - anonymous variables skip.
 *
 * It is a conservative filter: a miss guarantees full unification
 * would fail; a hit may still be a false drop.  Alongside the verdict
 * it returns the exact TUE operation counts, which drive the timing
 * model (Table 1 execution times) in the FS2 engine.
 *
 * The level parameter (1-3) selects the comparison depth studied in
 * section 2.2; the hardware configuration is level 3 with
 * cross-binding checks on.
 */

#ifndef CLARE_UNIFY_PIF_MATCHER_HH
#define CLARE_UNIFY_PIF_MATCHER_HH

#include "pif/encoder.hh"
#include "unify/tue_op.hh"

namespace clare::unify {

/** Configuration of the stream matcher (level must be 1, 2 or 3). */
struct PifMatchConfig
{
    int level = 3;
    bool crossBinding = true;
};

/** Verdict plus operation counts for one clause/query pair. */
struct PifMatchResult
{
    bool hit = false;
    TueOpCounts opCounts{};

    std::uint64_t
    count(TueOp op) const
    {
        return opCounts[static_cast<std::size_t>(op)];
    }

    /** Total TUE datapath operations (excludes Skip). */
    std::uint64_t datapathOps() const;
};

/** Stream-level partial test unification (the FS2 functional model). */
class PifMatcher
{
  public:
    explicit PifMatcher(PifMatchConfig config = {});

    /**
     * Match a compiled clause-head argument stream against a compiled
     * query argument stream.  The two streams must have the same
     * argument count (same predicate arity).
     */
    PifMatchResult match(const pif::EncodedArgs &db,
                         const pif::EncodedArgs &query) const;

    const PifMatchConfig &config() const { return config_; }

  private:
    PifMatchConfig config_;
};

} // namespace clare::unify

#endif // CLARE_UNIFY_PIF_MATCHER_HH
