#include "unify/pair_engine.hh"

#include "support/logging.hh"

namespace clare::unify {

using pif::isDbVarItem;
using pif::isNamedVarItem;
using pif::isQueryVarItem;
using pif::PifItem;
using pif::TagClass;
using pif::tagClass;

bool
compareListHeaders(int level, const PifItem &a, const PifItem &b)
{
    if (level <= 2)
        return true;

    std::uint32_t aa = pif::tagArity(a.tag);
    std::uint32_t ab = pif::tagArity(b.tag);
    bool a_unterm = pif::isUntermListTag(a.tag);
    bool b_unterm = pif::isUntermListTag(b.tag);
    bool a_sat = !pif::isInlineComplexTag(a.tag) &&
        aa == pif::kMaxInlineArity;
    bool b_sat = !pif::isInlineComplexTag(b.tag) &&
        ab == pif::kMaxInlineArity;

    if (!a_unterm && !b_unterm)
        return aa == ab || a_sat || b_sat;
    if (a_unterm && b_unterm)
        return true;
    const bool a_is_unterm = a_unterm;
    std::uint32_t unterm_arity = a_is_unterm ? aa : ab;
    std::uint32_t term_arity = a_is_unterm ? ab : aa;
    bool term_sat = a_is_unterm ? b_sat : a_sat;
    return unterm_arity <= term_arity || term_sat;
}

bool
compareItemHeaders(int level, const PifItem &a, const PifItem &b)
{
    bool a_list = pif::isListTag(a.tag);
    bool b_list = pif::isListTag(b.tag);
    if (a_list || b_list) {
        if (!(a_list && b_list))
            return false;
        return compareListHeaders(level, a, b);
    }

    TagClass ca = tagClass(a.tag);
    TagClass cb = tagClass(b.tag);
    bool a_struct = ca == TagClass::StructInline ||
        ca == TagClass::StructPointer;
    bool b_struct = cb == TagClass::StructInline ||
        cb == TagClass::StructPointer;
    if (a_struct || b_struct) {
        if (!(a_struct && b_struct))
            return false;
        if (level <= 1)
            return true;
        if (a.content != b.content)
            return false;
        std::uint32_t aa = pif::tagArity(a.tag);
        std::uint32_t ab = pif::tagArity(b.tag);
        if (aa == ab)
            return true;
        bool a_big = ca == TagClass::StructPointer &&
            aa == pif::kMaxInlineArity;
        bool b_big = cb == TagClass::StructPointer &&
            ab == pif::kMaxInlineArity;
        return a_big || b_big;
    }

    if (ca != cb)
        return false;
    if (level <= 1)
        return true;
    return a.tag == b.tag && a.content == b.content;
}

PairEngine::PairEngine(int level, bool cross_binding)
    : level_(level), crossBinding_(cross_binding)
{
    clare_assert(level >= 1 && level <= 3,
                 "PairEngine level must be 1-3, got %d", level);
}

void
PairEngine::reset(std::uint32_t db_slots, std::uint32_t query_slots)
{
    dbCells_.assign(db_slots, Cell{});
    qCells_.assign(query_slots, Cell{});
}

PairEngine::Cell &
PairEngine::cellFor(const PifItem &item)
{
    if (isDbVarItem(item)) {
        clare_assert(item.content < dbCells_.size(),
                     "db var slot %u out of range", item.content);
        return dbCells_[item.content];
    }
    clare_assert(isQueryVarItem(item), "cellFor on non-var item");
    clare_assert(item.content < qCells_.size(),
                 "query var slot %u out of range", item.content);
    return qCells_[item.content];
}

bool
PairEngine::ultimate(PifItem item, PifItem &out)
{
    std::size_t guard = dbCells_.size() + qCells_.size() + 2;
    while (isNamedVarItem(item)) {
        if (guard-- == 0)
            return false;   // cyclic chain: treat as unbound
        Cell &cell = cellFor(item);
        if (!cell.bound)
            return false;
        item = cell.value;
    }
    if (pif::isAnonVarItem(item))
        return false;
    out = item;
    return true;
}

bool
PairEngine::matchDbVar(const PifItem &db_item, const PifItem &q_item,
                       const OpSink &sink)
{
    Cell &cell = cellFor(db_item);
    if (tagClass(db_item.tag) == TagClass::FirstDbVar) {
        sink(TueOp::DbStore);
        cell.bound = true;
        cell.value = q_item;
        return true;
    }
    // Subsequent DB variable: fetch then match.
    if (!cell.bound) {
        sink(TueOp::DbFetch);
        return true;
    }
    PifItem value = cell.value;
    if (isNamedVarItem(value)) {
        sink(TueOp::DbCrossBoundFetch);
        PifItem final_value;
        if (!ultimate(value, final_value))
            return true;
        if (isNamedVarItem(q_item)) {
            PifItem q_final;
            if (!ultimate(q_item, q_final))
                return true;
            return compareItemHeaders(level_, final_value, q_final);
        }
        return compareItemHeaders(level_, final_value, q_item);
    }
    sink(TueOp::DbFetch);
    if (isNamedVarItem(q_item)) {
        // The binding stands in for the database side against the
        // query-variable rules.
        return matchPair(value, q_item, sink);
    }
    return compareItemHeaders(level_, value, q_item);
}

bool
PairEngine::matchQueryVar(const PifItem &db_item, const PifItem &q_item,
                          const OpSink &sink)
{
    Cell &cell = cellFor(q_item);
    if (tagClass(q_item.tag) == TagClass::FirstQueryVar) {
        sink(TueOp::QueryStore);
        cell.bound = true;
        cell.value = db_item;
        return true;
    }
    if (!cell.bound) {
        sink(TueOp::QueryFetch);
        return true;
    }
    PifItem value = cell.value;
    if (isNamedVarItem(value)) {
        sink(TueOp::QueryCrossBoundFetch);
        PifItem final_value;
        if (!ultimate(value, final_value))
            return true;
        return compareItemHeaders(level_, final_value, db_item);
    }
    sink(TueOp::QueryFetch);
    return compareItemHeaders(level_, value, db_item);
}

bool
PairEngine::matchPair(const PifItem &db_item, const PifItem &q_item,
                      const OpSink &sink)
{
    if (pif::isAnonVarItem(db_item) || pif::isAnonVarItem(q_item)) {
        sink(TueOp::Skip);
        return true;
    }

    // Two first-occurrence variables bind to each other: the database
    // cell records the query variable and vice versa.  This mutual
    // cross binding is what later makes the DB_/QUERY_CROSS_BOUND_
    // FETCH operations (figures 11 and 12) fire on subsequent
    // occurrences; the ultimate-association walk treats the resulting
    // two-element cycle as "still unbound".
    if (crossBinding_ &&
        tagClass(db_item.tag) == TagClass::FirstDbVar &&
        tagClass(q_item.tag) == TagClass::FirstQueryVar) {
        sink(TueOp::DbStore);
        Cell &db_cell = cellFor(db_item);
        db_cell.bound = true;
        db_cell.value = q_item;
        sink(TueOp::QueryStore);
        Cell &q_cell = cellFor(q_item);
        q_cell.bound = true;
        q_cell.value = db_item;
        return true;
    }

    if (isDbVarItem(db_item)) {
        if (!crossBinding_) {
            sink(TueOp::Skip);
            return true;
        }
        return matchDbVar(db_item, q_item, sink);
    }

    if (isQueryVarItem(q_item)) {
        if (!crossBinding_) {
            sink(TueOp::Skip);
            return true;
        }
        return matchQueryVar(db_item, q_item, sink);
    }

    sink(TueOp::Match);
    return compareItemHeaders(level_, db_item, q_item);
}

} // namespace clare::unify
