/**
 * @file
 * Full (Robinson) unification over arena terms.
 *
 * This is the host-side operation the CLARE filters exist to avoid
 * running over the whole knowledge base: the filters pass a superset
 * of the clauses that full unification accepts, and the host applies
 * this unifier only to the survivors.
 *
 * The unifier may extend the arena: unifying a terminated list with a
 * shorter unterminated list binds the tail variable to a freshly built
 * residual list node.
 */

#ifndef CLARE_UNIFY_UNIFY_HH
#define CLARE_UNIFY_UNIFY_HH

#include "term/term.hh"
#include "unify/bindings.hh"

namespace clare::unify {

/** Options controlling unification. */
struct UnifyOptions
{
    /**
     * Perform the occurs check.  Standard Prolog omits it for speed;
     * the resolution engine runs with it off by default.
     */
    bool occursCheck = false;
};

/**
 * Unify two terms of the same arena under the given bindings.
 *
 * On failure the bindings are rolled back to their state at entry;
 * on success the new bindings remain (callers use Bindings::mark /
 * undo to manage choice points).
 *
 * @return true iff the terms unify.
 */
bool unifyTerms(term::TermArena &arena, term::TermRef a, term::TermRef b,
                Bindings &bindings, const UnifyOptions &options = {});

/**
 * Resolve a term to its fully dereferenced, bindings-applied form as a
 * fresh subterm in @p out (used to report solutions).  Unbound
 * variables are copied through.
 */
term::TermRef resolveTerm(const term::TermArena &arena, term::TermRef t,
                          const Bindings &bindings,
                          term::TermArena &out);

} // namespace clare::unify

#endif // CLARE_UNIFY_UNIFY_HH
