#include "unify/term_matcher.hh"

#include <algorithm>
#include <vector>

#include "pif/encoder.hh"
#include "support/logging.hh"
#include "unify/pif_matcher.hh"

namespace clare::unify {

using term::TermArena;
using term::TermKind;
using term::TermRef;

namespace {

/** Which side of the match a stored binding came from. */
enum class Side : std::uint8_t { Db, Query };

/** A level-4/5 binding cell: a term of either side, or unbound. */
struct TCell
{
    bool bound = false;
    Side side = Side::Db;
    TermRef term = term::kNoTerm;
};

/**
 * Recursive matcher for levels 4 and 5, which the paper's hardware
 * deliberately does not implement (cost and complexity); this software
 * version exists for the level-ablation experiment.
 */
class DeepMatcher
{
  public:
    DeepMatcher(const MatchConfig &config, const TermArena &db,
                const TermArena &query)
        : config_(config), db_(db), q_(query),
          crossBinding_(config.level >= 5 || config.crossBinding),
          dbCells_(db.varCeiling()), qCells_(q_.varCeiling())
    {}

    bool
    run(TermRef db_head, TermRef q_goal, TueOpCounts &counts)
    {
        bool hit = true;
        std::uint32_t arity = db_.arity(db_head);
        for (std::uint32_t i = 0; i < arity; ++i) {
            if (!matchPair(db_.arg(db_head, i), q_.arg(q_goal, i))) {
                hit = false;
                break;
            }
        }
        counts = counts_;
        return hit;
    }

  private:
    const MatchConfig &config_;
    const TermArena &db_;
    const TermArena &q_;
    bool crossBinding_;
    std::vector<TCell> dbCells_;
    std::vector<TCell> qCells_;
    TueOpCounts counts_{};

    void op(TueOp o) { ++counts_[static_cast<std::size_t>(o)]; }

    const TermArena &arenaOf(Side s) const { return s == Side::Db ? db_ : q_; }

    std::vector<TCell> &
    cellsOf(Side s)
    {
        return s == Side::Db ? dbCells_ : qCells_;
    }

    /**
     * Follow variable bindings across sides to the ultimate value.
     * Returns false when the chain ends unbound.
     */
    bool
    ultimate(Side side, TermRef t, Side &out_side, TermRef &out)
    {
        std::size_t guard = dbCells_.size() + qCells_.size() + 2;
        while (arenaOf(side).kind(t) == TermKind::Var) {
            if (guard-- == 0)
                return false;
            const TermArena &arena = arenaOf(side);
            if (arena.isAnonymous(t))
                return false;
            TCell &cell = cellsOf(side)[arena.varId(t)];
            if (!cell.bound)
                return false;
            side = cell.side;
            t = cell.term;
        }
        out_side = side;
        out = t;
        return true;
    }

    /** Variable-insensitive deep comparison of two resolved values. */
    bool
    compareValues(Side sa, TermRef a, Side sb, TermRef b)
    {
        const TermArena &aa = arenaOf(sa);
        const TermArena &ab = arenaOf(sb);
        TermKind ka = aa.kind(a);
        TermKind kb = ab.kind(b);
        if (ka == TermKind::Var || kb == TermKind::Var)
            return true;
        if (ka == TermKind::List && kb == TermKind::List)
            return compareListsDeep(sa, a, sb, b, /*asValues=*/true);
        if (ka != kb)
            return false;
        switch (ka) {
          case TermKind::Atom:
            return aa.atomSymbol(a) == ab.atomSymbol(b);
          case TermKind::Int:
            return aa.intValue(a) == ab.intValue(b);
          case TermKind::Float:
            return aa.floatId(a) == ab.floatId(b);
          case TermKind::Struct: {
            if (aa.functor(a) != ab.functor(b) ||
                aa.arity(a) != ab.arity(b)) {
                return false;
            }
            for (std::uint32_t i = 0; i < aa.arity(a); ++i)
                if (!compareValues(sa, aa.arg(a, i), sb, ab.arg(b, i)))
                    return false;
            return true;
          }
          default:
            clare_panic("unreachable kind");
        }
    }

    /**
     * Deep list comparison.  When @p asValues the element comparisons
     * are variable-insensitive; otherwise they are full matchPair
     * comparisons with variable tracking.
     */
    bool
    compareListsDeep(Side sa, TermRef a, Side sb, TermRef b, bool asValues)
    {
        const TermArena &aa = arenaOf(sa);
        const TermArena &ab = arenaOf(sb);
        std::uint32_t na = aa.arity(a);
        std::uint32_t nb = ab.arity(b);
        bool ua = !aa.isTerminatedList(a);
        bool ub = !ab.isTerminatedList(b);
        if (!ua && !ub && na != nb)
            return false;
        if (!ua && ub && nb > na)
            return false;
        if (ua && !ub && na > nb)
            return false;
        std::uint32_t common = std::min(na, nb);
        for (std::uint32_t i = 0; i < common; ++i) {
            bool ok = asValues
                ? compareValues(sa, aa.arg(a, i), sb, ab.arg(b, i))
                : (sa == Side::Db
                   ? matchPair(aa.arg(a, i), ab.arg(b, i))
                   : matchPair(ab.arg(b, i), aa.arg(a, i)));
            if (!ok)
                return false;
        }
        // Tail variables are not tracked (cf. the stream matcher):
        // the hardware counters carry only explicit arities.
        return true;
    }

    /** Full matching of a db-side term against a query-side term. */
    bool
    matchPair(TermRef db_term, TermRef q_term)
    {
        TermKind dk = db_.kind(db_term);
        TermKind qk = q_.kind(q_term);

        if ((dk == TermKind::Var && db_.isAnonymous(db_term)) ||
            (qk == TermKind::Var && q_.isAnonymous(q_term))) {
            op(TueOp::Skip);
            return true;
        }

        if (dk == TermKind::Var)
            return matchVar(Side::Db, db_term, Side::Query, q_term);
        if (qk == TermKind::Var)
            return matchVar(Side::Query, q_term, Side::Db, db_term);

        op(TueOp::Match);
        if (dk == TermKind::List && qk == TermKind::List)
            return compareListsDeep(Side::Db, db_term, Side::Query, q_term,
                                    /*asValues=*/false);
        if (dk != qk)
            return false;
        switch (dk) {
          case TermKind::Atom:
            return db_.atomSymbol(db_term) == q_.atomSymbol(q_term);
          case TermKind::Int:
            return db_.intValue(db_term) == q_.intValue(q_term);
          case TermKind::Float:
            return db_.floatId(db_term) == q_.floatId(q_term);
          case TermKind::Struct: {
            if (db_.functor(db_term) != q_.functor(q_term) ||
                db_.arity(db_term) != q_.arity(q_term)) {
                return false;
            }
            for (std::uint32_t i = 0; i < db_.arity(db_term); ++i)
                if (!matchPair(db_.arg(db_term, i), q_.arg(q_term, i)))
                    return false;
            return true;
          }
          default:
            clare_panic("unreachable kind");
        }
    }

    /** Variable handling (fig. 1 cases 5 and 6) on the var's side. */
    bool
    matchVar(Side var_side, TermRef var_term, Side other_side,
             TermRef other)
    {
        if (!crossBinding_) {
            op(TueOp::Skip);
            return true;
        }
        const TermArena &arena = arenaOf(var_side);
        TCell &cell = cellsOf(var_side)[arena.varId(var_term)];
        bool is_db = var_side == Side::Db;
        if (!cell.bound) {
            op(is_db ? TueOp::DbStore : TueOp::QueryStore);
            cell.bound = true;
            cell.side = other_side;
            cell.term = other;
            return true;
        }
        Side vside = cell.side;
        TermRef value = cell.term;
        if (arenaOf(vside).kind(value) == TermKind::Var) {
            op(is_db ? TueOp::DbCrossBoundFetch
                     : TueOp::QueryCrossBoundFetch);
            Side fs;
            TermRef fv;
            if (!ultimate(vside, value, fs, fv))
                return true;
            // Resolve the other side through its bindings as well.
            Side os = other_side;
            TermRef ov = other;
            if (arenaOf(os).kind(ov) == TermKind::Var &&
                !ultimate(os, ov, os, ov)) {
                return true;
            }
            return compareValues(fs, fv, os, ov);
        }
        op(is_db ? TueOp::DbFetch : TueOp::QueryFetch);
        Side os = other_side;
        TermRef ov = other;
        if (arenaOf(os).kind(ov) == TermKind::Var &&
            !ultimate(os, ov, os, ov)) {
            return true;
        }
        return compareValues(vside, value, os, ov);
    }
};

} // namespace

TermMatcher::TermMatcher(MatchConfig config)
    : config_(config)
{
    clare_assert(config_.level >= 1 && config_.level <= 5,
                 "matching level must be 1-5, got %d", config_.level);
}

MatchResult
TermMatcher::match(const TermArena &db_arena, TermRef db_head,
                   const TermArena &q_arena, TermRef q_goal) const
{
    MatchResult result;

    // Predicate-level test: functor and arity must agree.
    TermKind dk = db_arena.kind(db_head);
    TermKind qk = q_arena.kind(q_goal);
    auto functor_of = [](const TermArena &a, TermRef t) {
        return a.kind(t) == TermKind::Atom ? a.atomSymbol(t) : a.functor(t);
    };
    auto arity_of = [](const TermArena &a, TermRef t) {
        return a.kind(t) == TermKind::Atom ? 0u : a.arity(t);
    };
    if (dk == TermKind::Var || qk == TermKind::Var ||
        functor_of(db_arena, db_head) != functor_of(q_arena, q_goal) ||
        arity_of(db_arena, db_head) != arity_of(q_arena, q_goal)) {
        result.hit = false;
        return result;
    }
    if (arity_of(db_arena, db_head) == 0) {
        result.hit = true;
        return result;
    }

    if (config_.level <= 3) {
        // Delegate to the stream matcher so that the reference and the
        // hardware-functional semantics agree by construction.
        pif::Encoder encoder;
        pif::EncodedArgs db = encoder.encodeArgs(db_arena, db_head,
                                                 pif::Side::Db);
        pif::EncodedArgs q = encoder.encodeArgs(q_arena, q_goal,
                                                pif::Side::Query);
        PifMatcher matcher(PifMatchConfig{config_.level,
                                          config_.crossBinding});
        PifMatchResult r = matcher.match(db, q);
        result.hit = r.hit;
        result.opCounts = r.opCounts;
        return result;
    }

    DeepMatcher deep(config_, db_arena, q_arena);
    result.hit = deep.run(db_head, q_goal, result.opCounts);
    return result;
}

} // namespace clare::unify
