#include "unify/unify.hh"

#include <vector>

#include "support/logging.hh"
#include "term/symbol_table.hh"

namespace clare::unify {

using term::kNoTerm;
using term::SymbolTable;
using term::TermArena;
using term::TermKind;
using term::TermRef;
using term::VarId;

namespace {

/** A list normalized against the current bindings. */
struct FlatList
{
    std::vector<TermRef> elems;
    /** kNoTerm when nil-terminated, else the (deref'd) tail term. */
    TermRef tail = kNoTerm;
};

/**
 * Flatten a list, following bound tail variables so that the element
 * count reflects the bindings in force.
 */
FlatList
flattenList(const TermArena &arena, TermRef t, const Bindings &bindings)
{
    FlatList flat;
    while (true) {
        clare_assert(arena.kind(t) == TermKind::List,
                     "flattenList on non-list");
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            flat.elems.push_back(arena.arg(t, i));
        TermRef tail = arena.listTail(t);
        if (tail == kNoTerm)
            return flat;
        tail = bindings.deref(arena, tail);
        if (arena.kind(tail) == TermKind::List) {
            t = tail;
            continue;
        }
        if (arena.kind(tail) == TermKind::Atom &&
            arena.atomSymbol(tail) == SymbolTable::kNil) {
            return flat;
        }
        flat.tail = tail;
        return flat;
    }
}

bool
occurs(const TermArena &arena, VarId var, TermRef t,
       const Bindings &bindings)
{
    t = bindings.deref(arena, t);
    switch (arena.kind(t)) {
      case TermKind::Var:
        return arena.varId(t) == var;
      case TermKind::Struct:
      case TermKind::List: {
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            if (occurs(arena, var, arena.arg(t, i), bindings))
                return true;
        if (arena.kind(t) == TermKind::List &&
            arena.listTail(t) != kNoTerm) {
            return occurs(arena, var, arena.listTail(t), bindings);
        }
        return false;
      }
      default:
        return false;
    }
}

bool unifyRec(TermArena &arena, TermRef a, TermRef b, Bindings &bindings,
              const UnifyOptions &options);

bool
bindVar(TermArena &arena, TermRef var_term, TermRef value,
        Bindings &bindings, const UnifyOptions &options)
{
    VarId var = arena.varId(var_term);
    if (arena.kind(value) == TermKind::Var && arena.varId(value) == var)
        return true;
    if (options.occursCheck && occurs(arena, var, value, bindings))
        return false;
    bindings.bind(var, value);
    return true;
}

bool
unifyLists(TermArena &arena, TermRef a, TermRef b, Bindings &bindings,
           const UnifyOptions &options)
{
    FlatList fa = flattenList(arena, a, bindings);
    FlatList fb = flattenList(arena, b, bindings);
    std::size_t common = std::min(fa.elems.size(), fb.elems.size());
    for (std::size_t i = 0; i < common; ++i)
        if (!unifyRec(arena, fa.elems[i], fb.elems[i], bindings, options))
            return false;

    auto tail_or_nil = [&](const FlatList &f) {
        return f.tail != kNoTerm
            ? f.tail : arena.makeAtom(SymbolTable::kNil);
    };

    if (fa.elems.size() == fb.elems.size())
        return unifyRec(arena, tail_or_nil(fa), tail_or_nil(fb),
                        bindings, options);

    const FlatList &longer = fa.elems.size() > fb.elems.size() ? fa : fb;
    const FlatList &shorter = fa.elems.size() > fb.elems.size() ? fb : fa;
    std::vector<TermRef> rest(longer.elems.begin() +
                              static_cast<std::ptrdiff_t>(common),
                              longer.elems.end());
    TermRef residual = arena.makeList(rest, longer.tail);
    return unifyRec(arena, residual, tail_or_nil(shorter), bindings,
                    options);
}

bool
unifyRec(TermArena &arena, TermRef a, TermRef b, Bindings &bindings,
         const UnifyOptions &options)
{
    a = bindings.deref(arena, a);
    b = bindings.deref(arena, b);
    TermKind ka = arena.kind(a);
    TermKind kb = arena.kind(b);

    if (ka == TermKind::Var)
        return bindVar(arena, a, b, bindings, options);
    if (kb == TermKind::Var)
        return bindVar(arena, b, a, bindings, options);

    if (ka == TermKind::List && kb == TermKind::List)
        return unifyLists(arena, a, b, bindings, options);
    if (ka != kb)
        return false;

    switch (ka) {
      case TermKind::Atom:
        return arena.atomSymbol(a) == arena.atomSymbol(b);
      case TermKind::Int:
        return arena.intValue(a) == arena.intValue(b);
      case TermKind::Float:
        return arena.floatId(a) == arena.floatId(b);
      case TermKind::Struct: {
        if (arena.functor(a) != arena.functor(b) ||
            arena.arity(a) != arena.arity(b)) {
            return false;
        }
        for (std::uint32_t i = 0; i < arena.arity(a); ++i)
            if (!unifyRec(arena, arena.arg(a, i), arena.arg(b, i),
                          bindings, options))
                return false;
        return true;
      }
      default:
        clare_panic("unreachable kind in unifyRec");
    }
}

} // namespace

bool
unifyTerms(TermArena &arena, TermRef a, TermRef b, Bindings &bindings,
           const UnifyOptions &options)
{
    bindings.grow(arena.varCeiling());
    TrailMark mark = bindings.mark();
    if (unifyRec(arena, a, b, bindings, options))
        return true;
    bindings.undo(mark);
    return false;
}

TermRef
resolveTerm(const TermArena &arena, TermRef t, const Bindings &bindings,
            TermArena &out)
{
    t = bindings.deref(arena, t);
    switch (arena.kind(t)) {
      case TermKind::Atom:
        return out.makeAtom(arena.atomSymbol(t));
      case TermKind::Int:
        return out.makeInt(arena.intValue(t));
      case TermKind::Float:
        return out.makeFloat(arena.floatId(t));
      case TermKind::Var:
        return out.makeVar(arena.varId(t), arena.varName(t));
      case TermKind::Struct: {
        std::vector<TermRef> args;
        args.reserve(arena.arity(t));
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            args.push_back(resolveTerm(arena, arena.arg(t, i), bindings,
                                       out));
        return out.makeStruct(arena.functor(t), args);
      }
      case TermKind::List: {
        std::vector<TermRef> elems;
        elems.reserve(arena.arity(t));
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            elems.push_back(resolveTerm(arena, arena.arg(t, i), bindings,
                                        out));
        TermRef tail = arena.listTail(t);
        TermRef out_tail = kNoTerm;
        if (tail != kNoTerm) {
            tail = bindings.deref(arena, tail);
            if (!(arena.kind(tail) == TermKind::Atom &&
                  arena.atomSymbol(tail) == SymbolTable::kNil)) {
                out_tail = resolveTerm(arena, tail, bindings, out);
            }
        }
        // Collapse a resolved list tail into a flat list.
        if (out_tail != kNoTerm && out.kind(out_tail) == TermKind::List) {
            for (std::uint32_t i = 0; i < out.arity(out_tail); ++i)
                elems.push_back(out.arg(out_tail, i));
            out_tail = out.listTail(out_tail);
        }
        return out.makeList(elems, out_tail);
      }
    }
    clare_panic("unreachable kind in resolveTerm");
}

} // namespace clare::unify
