#include "unify/oracle.hh"

#include "unify/bindings.hh"
#include "unify/unify.hh"

namespace clare::unify {

bool
wouldUnify(const term::TermArena &q_arena, term::TermRef q_goal,
           const term::Clause &clause)
{
    // Scratch arena: goal first, then the clause head standardized
    // apart by offsetting its variable ids past the goal's.
    term::TermArena scratch;
    term::TermRef goal = scratch.import(q_arena, q_goal, 0);
    term::VarId offset = q_arena.varCeiling();
    term::TermRef head = scratch.import(clause.arena(), clause.head(),
                                        offset);
    Bindings bindings;
    return unifyTerms(scratch, goal, head, bindings);
}

} // namespace clare::unify
