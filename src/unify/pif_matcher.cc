#include "unify/pif_matcher.hh"

#include <algorithm>

#include "support/logging.hh"
#include "unify/pair_engine.hh"

namespace clare::unify {

using pif::EncodedArgs;
using pif::PifItem;

std::uint64_t
PifMatchResult::datapathOps() const
{
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < kTueOpCount; ++i)
        if (static_cast<TueOp>(i) != TueOp::Skip)
            n += opCounts[i];
    return n;
}

PifMatcher::PifMatcher(PifMatchConfig config)
    : config_(config)
{
    clare_assert(config_.level >= 1 && config_.level <= 3,
                 "PifMatcher level must be 1-3, got %d", config_.level);
}

PifMatchResult
PifMatcher::match(const EncodedArgs &db, const EncodedArgs &query) const
{
    clare_assert(db.argCount() == query.argCount(),
                 "argument count mismatch: db %zu vs query %zu",
                 db.argCount(), query.argCount());

    PifMatchResult result;
    OpSink sink = [&result](TueOp op) {
        ++result.opCounts[static_cast<std::size_t>(op)];
    };

    PairEngine engine(config_.level, config_.crossBinding);
    engine.reset(db.varSlots, query.varSlots);

    bool hit = true;
    std::size_t di = 0;
    std::size_t qi = 0;
    for (std::size_t a = 0; a < db.argCount() && hit; ++a) {
        clare_assert(di == db.argIndex[a] && qi == query.argIndex[a],
                     "argument index walk out of sync");
        const PifItem &dh = db.items[di];
        const PifItem &qh = query.items[qi];

        if (!engine.matchPair(dh, qh, sink)) {
            hit = false;    // hardware rejects at first mismatch
            break;
        }

        // Walk first-level elements when both headers are in-line
        // complex terms and the level compares that deep.
        if (config_.level >= 3 &&
            pif::isInlineComplexTag(dh.tag) &&
            pif::isInlineComplexTag(qh.tag) &&
            !pif::isNamedVarItem(dh) && !pif::isNamedVarItem(qh)) {
            std::uint32_t dn = pif::tagArity(dh.tag);
            std::uint32_t qn = pif::tagArity(qh.tag);
            std::uint32_t common = std::min(dn, qn);
            for (std::uint32_t i = 0; i < common && hit; ++i) {
                if (!engine.matchPair(db.items[di + 1 + i],
                                      query.items[qi + 1 + i], sink)) {
                    hit = false;
                }
            }
            if (!hit)
                break;
        }

        di += pif::itemWidth(db.items, di);
        qi += pif::itemWidth(query.items, qi);
    }

    result.hit = hit;
    return result;
}

} // namespace clare::unify
