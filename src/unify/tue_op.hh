/**
 * @file
 * The seven Test Unification Engine hardware operations (plus the
 * anonymous-variable skip), shared between the reference matcher, the
 * FS2 functional model, and the microarchitectural model.
 */

#ifndef CLARE_UNIFY_TUE_OP_HH
#define CLARE_UNIFY_TUE_OP_HH

#include <array>
#include <cstdint>

namespace clare::unify {

/**
 * TUE datapath operations as defined in sections 3.3.1-3.3.7 of the
 * paper.  Skip is not a datapath operation: it is the sequencer
 * consuming an anonymous variable without engaging the TUE.
 */
enum class TueOp : std::uint8_t
{
    Match,                  ///< Fig. 6, cases 1-4
    DbStore,                ///< Fig. 7, case 5a
    QueryStore,             ///< Fig. 8, case 6a
    DbFetch,                ///< Fig. 9, case 5b
    QueryFetch,             ///< Fig. 10, case 6b
    DbCrossBoundFetch,      ///< Fig. 11, case 5c
    QueryCrossBoundFetch,   ///< Fig. 12, case 6c
    Skip,                   ///< anonymous variable, no TUE activity
};

/** Number of TueOp values (for counter arrays). */
constexpr std::size_t kTueOpCount = 8;

/** Per-operation counters indexed by TueOp. */
using TueOpCounts = std::array<std::uint64_t, kTueOpCount>;

/** Human-readable operation name as printed in Table 1. */
constexpr const char *
tueOpName(TueOp op)
{
    switch (op) {
      case TueOp::Match: return "MATCH";
      case TueOp::DbStore: return "DB_STORE";
      case TueOp::QueryStore: return "QUERY_STORE";
      case TueOp::DbFetch: return "DB_FETCH";
      case TueOp::QueryFetch: return "QUERY_FETCH";
      case TueOp::DbCrossBoundFetch: return "DB_CROSS_BOUND_FETCH";
      case TueOp::QueryCrossBoundFetch: return "QUERY_CROSS_BOUND_FETCH";
      case TueOp::Skip: return "SKIP";
    }
    return "?";
}

} // namespace clare::unify

#endif // CLARE_UNIFY_TUE_OP_HH
