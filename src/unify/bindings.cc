#include "unify/bindings.hh"

#include "support/logging.hh"

namespace clare::unify {

using term::kNoTerm;
using term::TermArena;
using term::TermKind;
using term::TermRef;
using term::VarId;

void
Bindings::grow(VarId ceiling)
{
    if (values_.size() < ceiling)
        values_.resize(ceiling, kNoTerm);
}

bool
Bindings::isBound(VarId var) const
{
    return var < values_.size() && values_[var] != kNoTerm;
}

TermRef
Bindings::value(VarId var) const
{
    clare_assert(isBound(var), "reading unbound variable %u", var);
    return values_[var];
}

void
Bindings::bind(VarId var, TermRef value)
{
    grow(var + 1);
    clare_assert(values_[var] == kNoTerm, "rebinding variable %u", var);
    values_[var] = value;
    trail_.push_back(var);
}

void
Bindings::undo(TrailMark mark)
{
    clare_assert(mark <= trail_.size(), "trail mark %zu beyond trail",
                 mark);
    while (trail_.size() > mark) {
        values_[trail_.back()] = kNoTerm;
        trail_.pop_back();
    }
}

TermRef
Bindings::deref(const TermArena &arena, TermRef t) const
{
    while (arena.kind(t) == TermKind::Var) {
        VarId var = arena.varId(t);
        if (!isBound(var))
            return t;
        t = value(var);
    }
    return t;
}

} // namespace clare::unify
